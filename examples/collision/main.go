// Collision: two clients transmit overlapping frames at one AP, and
// successive interference cancellation (§4.3.5) recovers the angle of
// arrival of both — as long as the preambles themselves don't overlap.
//
//	go run ./examples/collision
package main

import (
	"fmt"
	"log"

	"repro/internal/testbed"
)

func main() {
	tb := testbed.New()
	r, err := tb.RunCollision(2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.String())
	fmt.Println()
	fmt.Println("The combined spectrum carries both transmitters' bearings;")
	fmt.Println("removing the first packet's peaks isolates the second packet,")
	fmt.Println("so a busy carrier-sense network still yields per-client AoA.")
}
