// Quickstart: localize one WiFi client with three ArrayTrack APs.
//
// This walks the whole pipeline end to end on a minimal scene —
// simulate a client's 802.11 preamble arriving at three 8-antenna APs,
// compute multipath-suppressed AoA spectra, and fuse them into a
// position estimate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/array"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/wifi"
)

func main() {
	lambda := wifi.Wavelength()
	rng := rand.New(rand.NewSource(1))

	// A 20 m × 12 m room with drywall partitions and a couple of
	// scattering objects.
	var plan geom.Floorplan
	plan.AddRect(geom.Pt(0, 0), geom.Pt(20, 12), geom.Drywall)
	model := &channel.Model{
		Plan:           &plan,
		Wavelength:     lambda,
		MaxReflections: 2,
		WallRoughness:  0.5,
		Scatterers: []channel.Scatterer{
			{Pos: geom.Pt(6, 9), Coeff: 0.15},
			{Pos: geom.Pt(14, 3), Coeff: 0.15},
		},
	}

	// Three APs along the walls, arrays broadside into the room, with
	// the ninth antenna for symmetry removal.
	sites := []struct {
		pos    geom.Point
		orient float64
	}{
		{geom.Pt(2, 0.5), 0},
		{geom.Pt(19.5, 6), math.Pi / 2},
		{geom.Pt(10, 11.5), math.Pi},
	}
	var aps []*core.AP
	for _, s := range sites {
		arr := array.NewLinear(s.pos, s.orient, 8, lambda)
		arr.NinthAntenna = true
		aps = append(aps, &core.AP{Array: arr})
	}

	// The client transmits three frames from (13, 7.5), drifting a few
	// centimetres between them — enough for multipath suppression.
	client := geom.Pt(13, 7.5)
	preamble := wifi.Preamble40()
	captures := make([][]core.FrameCapture, len(aps))
	for i, ap := range aps {
		pos := client
		for f := 0; f < 3; f++ {
			rec := model.Receive(pos, ap.Array, preamble, channel.RxConfig{
				TxPowerDBm:    15,
				NoiseFloorDBm: -85,
				Rng:           rng,
			})
			captures[i] = append(captures[i], core.FrameCapture{Streams: rec.Samples})
			pos = client.Add(geom.Vec{X: rng.Float64()*0.06 - 0.03, Y: rng.Float64()*0.06 - 0.03})
		}
	}

	// Run the backend: per-AP spectra, then maximum-likelihood
	// synthesis over the room.
	cfg := core.DefaultConfig(lambda)
	pos, specs, err := core.LocateClient(aps, captures, plan.Min, plan.Max, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("true position      %v\n", client)
	fmt.Printf("estimated position %v\n", pos)
	fmt.Printf("error              %.0f cm\n\n", pos.Dist(client)*100)
	for i, s := range specs {
		truth := s.Pos.Bearing(client)
		fmt.Printf("AP %d: true bearing %5.1f°, spectrum peak value there %.2f\n",
			i+1, geom.Deg(truth), s.Spectrum.At(truth))
	}
}
