// Office tracking: follow a client walking through the simulated office
// testbed, re-localizing at every step with all six APs — the
// augmented-reality navigation scenario the paper's introduction
// motivates.
//
//	go run ./examples/office-tracking
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/testbed"
)

func main() {
	tb := testbed.New()
	rng := rand.New(rand.NewSource(7))
	capOpt := testbed.DefaultCaptureOptions()
	cfg := core.DefaultConfig(tb.Wavelength)
	aps := tb.APsFor([]int{0, 1, 2, 3, 4, 5}, capOpt)

	// A walk along the office corridor: from the left wing, past the
	// pillars, to the lab on the right.
	waypoints := []geom.Point{
		{X: 4, Y: 6}, {X: 8, Y: 6.5}, {X: 12, Y: 6.5}, {X: 16, Y: 6},
		{X: 20, Y: 6.5}, {X: 24, Y: 7}, {X: 28, Y: 7}, {X: 32, Y: 7.5},
	}

	fmt.Println("step   true position      estimate           error")
	var errs []float64
	for i, wp := range waypoints {
		var captures [][]core.FrameCapture
		for _, site := range tb.Sites {
			captures = append(captures, tb.CaptureClient(wp, site, capOpt, rng))
		}
		pos, _, err := core.LocateClient(aps, captures, tb.Plan.Min, tb.Plan.Max, cfg)
		if err != nil {
			log.Fatal(err)
		}
		e := pos.Dist(wp) * 100
		errs = append(errs, e)
		fmt.Printf("%4d   %-18v %-18v %5.0f cm\n", i+1, wp, pos, e)
	}
	fmt.Printf("\ntrack summary: %v\n", stats.Summarize(errs))
}
