// Calibration: demonstrate why AoA is impossible on an uncalibrated
// array and how the paper's splitter-swap procedure (§3) fixes it.
//
// Each radio front end adds an unknown downconversion phase. Without
// calibration the MUSIC spectrum is garbage; after the two-measurement
// swap calibration the true bearing reappears.
//
//	go run ./examples/calibration
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/array"
	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/music"
	"repro/internal/wifi"
)

func main() {
	lambda := wifi.Wavelength()
	rng := rand.New(rand.NewSource(99))

	// An 8-antenna AP whose radios carry random unknown phase offsets.
	arr := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	arr.RandomizePhaseOffsets(rng)

	// A free-space client at a 62° bearing.
	client := geom.Pt(4, 7.5)
	truth := arr.Pos.Bearing(client)
	model := &channel.Model{Wavelength: lambda}
	rec := model.Receive(client, arr, wifi.Preamble40(), channel.RxConfig{
		TxPowerDBm:    10,
		NoiseFloorDBm: -90,
		Rng:           rng,
	})

	opts := music.Options{
		Wavelength:      lambda,
		SmoothingGroups: 2,
		MaxSamples:      10,
		SampleOffset:    100,
		ForwardBackward: true,
	}

	uncal, err := music.ComputeSpectrum(arr, rec.Samples, opts)
	if err != nil {
		log.Fatal(err)
	}
	_, bin := uncal.Max()
	fmt.Printf("true bearing                 %6.1f°\n", geom.Deg(truth))
	fmt.Printf("uncalibrated spectrum peak   %6.1f°  (meaningless)\n", geom.Deg(uncal.Theta(bin)))

	// Calibrate with the USRP2-style tone source: imperfect cables,
	// two runs per radio pair with the external paths exchanged
	// (Equations 9–12).
	tone := &array.CalibrationTone{
		ExternalPhases: array.NewImperfectCables(8, 0.25, rng),
		PhaseNoise:     0.01,
		Rng:            rng,
	}
	measured, err := array.Calibrate(arr, tone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibration residual         %6.3f rad\n", array.OffsetError(arr, measured))

	opts.CalibrationOffsets = measured
	cal, err := music.ComputeSpectrum(arr, rec.Samples, opts)
	if err != nil {
		log.Fatal(err)
	}
	_, bin = cal.Max()
	peak := geom.Deg(cal.Theta(bin))
	fmt.Printf("calibrated spectrum peak     %6.1f°", peak)
	if math.Abs(peak-geom.Deg(truth)) < 3 || math.Abs(360-peak-geom.Deg(truth)) < 3 {
		fmt.Println("  ✓ matches the true bearing (or its mirror)")
	} else {
		fmt.Println()
	}
}
