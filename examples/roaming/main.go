// Roaming: a client walks the office while the production pipeline —
// engine worker pool, pooled workspaces, steering cache, and the
// per-client Kalman tracker — streams smoothed track updates alongside
// the raw fixes, gating out the occasional catastrophic
// (mirror/end-fire) fix. This is the real-time tracking application of
// the paper's introduction, running on the same engine+tracker API the
// server uses.
//
//	go run ./examples/roaming
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/testbed"
)

func main() {
	tb := testbed.New()
	rng := rand.New(rand.NewSource(12))
	capOpt := testbed.DefaultCaptureOptions()
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = 0.25 // coarser synthesis keeps the walk brisk
	aps := tb.APsFor([]int{0, 1, 2, 3, 4, 5}, capOpt)

	// Walking pace: 1.2 m/s, a fix every second.
	const dt = 1.0
	tracker := engine.NewTracker(engine.TrackerOptions{ProcessNoise: 0.3, MeasSigma: 0.8, Gate: 3})
	eng := engine.New(engine.Options{Config: cfg, Tracker: tracker})
	defer eng.Close()

	// The streaming side: every smoothed update also arrives on the
	// tracker's subscription, exactly as a dashboard would consume it.
	updates, cancel := tracker.Subscribe(64)
	defer cancel()

	base := time.Unix(1700000000, 0)
	fmt.Println("step   truth              raw fix      smoothed     raw err  track err")
	var rawErrs, trackErrs []float64
	for i := 0; i < 24; i++ {
		// An L-shaped walk: east along the corridor, then north.
		var truth geom.Point
		if i < 16 {
			truth = geom.Pt(4+1.2*float64(i), 6.5)
		} else {
			truth = geom.Pt(4+1.2*15, 6.5+1.2*float64(i-15))
		}

		var captures [][]core.FrameCapture
		for _, site := range tb.Sites {
			captures = append(captures, tb.CaptureClient(truth, site, capOpt, rng))
		}
		res := eng.Locate(engine.Request{
			ClientID: 1,
			APs:      aps,
			Captures: captures,
			Min:      tb.Plan.Min,
			Max:      tb.Plan.Max,
			Time:     base.Add(time.Duration(float64(i) * dt * float64(time.Second))),
		})
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		upd := <-updates // the same TrackUpdate res.Track carries
		rawE := res.Pos.Dist(truth) * 100
		trkE := upd.Smoothed.Dist(truth) * 100
		rawErrs = append(rawErrs, rawE)
		trackErrs = append(trackErrs, trkE)
		fmt.Printf("%4d   %-18v %-12s %-12s %6.0fcm %8.0fcm\n",
			i+1, truth, short(res.Pos), short(upd.Smoothed), rawE, trkE)
	}
	fmt.Printf("\nraw fixes:  %v\n", stats.Summarize(rawErrs))
	fmt.Printf("tracked:    %v\n", stats.Summarize(trackErrs))
	ts := tracker.Stats()
	es := eng.Stats()
	fmt.Printf("fixes rejected by the gate: %d  (engine: %d submitted, %d fixes, %d tracked clients)\n",
		ts.GateRejects, es.Submitted, es.Fixes, es.TrackedClients)
	if stats.Median(trackErrs) > stats.Median(rawErrs)*1.5 {
		fmt.Println("note: tracking lagged the walk this run; tune process noise upward")
	}
}

func short(p geom.Point) string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }
