// Roaming: a client walks the office while a constant-velocity Kalman
// tracker smooths the per-frame ArrayTrack fixes, gating out the
// occasional catastrophic (mirror/end-fire) fix — the real-time
// tracking application of the paper's introduction.
//
//	go run ./examples/roaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/track"
)

func main() {
	tb := testbed.New()
	rng := rand.New(rand.NewSource(12))
	capOpt := testbed.DefaultCaptureOptions()
	cfg := core.DefaultConfig(tb.Wavelength)
	aps := tb.APsFor([]int{0, 1, 2, 3, 4, 5}, capOpt)

	// Walking pace: 1.2 m/s, a fix every second.
	const dt = 1.0
	tracker := track.NewTrack(1.0, 0.5, 4)

	fmt.Println("step   truth              raw fix      smoothed     raw err  track err")
	var rawErrs, trackErrs []float64
	for i := 0; i < 24; i++ {
		// An L-shaped walk: east along the corridor, then north.
		var truth geom.Point
		if i < 16 {
			truth = geom.Pt(4+1.2*float64(i), 6.5)
		} else {
			truth = geom.Pt(4+1.2*15, 6.5+1.2*float64(i-15))
		}

		var captures [][]core.FrameCapture
		for _, site := range tb.Sites {
			captures = append(captures, tb.CaptureClient(truth, site, capOpt, rng))
		}
		fix, _, err := core.LocateClient(aps, captures, tb.Plan.Min, tb.Plan.Max, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracker.Add(fix, dt); err != nil {
			log.Fatal(err)
		}
		smoothed := tracker.Trail[len(tracker.Trail)-1]
		rawE := fix.Dist(truth) * 100
		trkE := smoothed.Dist(truth) * 100
		rawErrs = append(rawErrs, rawE)
		trackErrs = append(trackErrs, trkE)
		fmt.Printf("%4d   %-18v %-12s %-12s %6.0fcm %8.0fcm\n",
			i+1, truth, short(fix), short(smoothed), rawE, trkE)
	}
	fmt.Printf("\nraw fixes:  %v\n", stats.Summarize(rawErrs))
	fmt.Printf("tracked:    %v\n", stats.Summarize(trackErrs))
	fmt.Printf("fixes rejected by the gate: %d\n", tracker.Filter.Rejected())
	if stats.Median(trackErrs) > stats.Median(rawErrs)*1.5 {
		fmt.Println("note: tracking lagged the walk this run; tune process noise upward")
	}
}

func short(p geom.Point) string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }
