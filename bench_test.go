package arraytrack

// One benchmark per table/figure of the paper's evaluation (§4), plus
// ablation benches for the design choices DESIGN.md calls out. Each
// bench regenerates its artifact through the testbed experiment runners
// and reports the headline quantity (median location error, stability
// percentage, detection rate, …) as a custom benchmark metric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/music"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// benchAccuracyOpts returns a sweep sized for benchmarking: a
// representative client sample and capped combinations so one iteration
// stays in the hundreds of milliseconds.
func benchAccuracyOpts() testbed.AccuracyOptions {
	opt := testbed.DefaultAccuracyOptions()
	opt.MaxClients = 12
	opt.MaxCombos = 4
	return opt
}

func BenchmarkTable1PeakStability(b *testing.B) {
	tb := testbed.New()
	var directSamePct float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := tb.RunTable1(30, 11)
		if err != nil {
			b.Fatal(err)
		}
		// Rows 0 and 1 are the "direct same" outcomes.
		directSamePct = pctFromRow(r.Lines[0]) + pctFromRow(r.Lines[1])
	}
	b.ReportMetric(directSamePct, "direct-same-%")
}

func pctFromRow(row string) float64 {
	f := strings.Fields(row)
	var v float64
	if len(f) > 0 {
		s := strings.TrimSuffix(f[len(f)-1], "%")
		var x float64
		for _, c := range s {
			if c >= '0' && c <= '9' {
				x = x*10 + float64(c-'0')
			}
		}
		v = x
	}
	return v
}

func BenchmarkFig7SpatialSmoothing(b *testing.B) {
	tb := testbed.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunFig7(7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Unoptimized(b *testing.B) {
	tb := testbed.New()
	var median float64
	for i := 0; i < b.N; i++ {
		opt := benchAccuracyOpts()
		opt.APCounts = []int{3, 6}
		_, res, err := tb.RunFig13(opt)
		if err != nil {
			b.Fatal(err)
		}
		median = stats.Median(res.ErrorsCM[6])
	}
	b.ReportMetric(median, "median-cm-6AP")
}

func BenchmarkFig14Heatmaps(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunFig14(20, 14); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15ArrayTrack(b *testing.B) {
	tb := testbed.New()
	var median float64
	for i := 0; i < b.N; i++ {
		opt := benchAccuracyOpts()
		opt.APCounts = []int{3, 6}
		_, res, err := tb.RunFig15(opt)
		if err != nil {
			b.Fatal(err)
		}
		median = stats.Median(res.ErrorsCM[6])
	}
	b.ReportMetric(median, "median-cm-6AP")
}

func BenchmarkFig16Antennas(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		opt := benchAccuracyOpts()
		opt.MaxClients = 8
		if _, err := tb.RunFig16(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17Pillars(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunFig17(17); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18Robustness(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		opt := benchAccuracyOpts()
		opt.MaxClients = 8
		if _, err := tb.RunFig18(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19Samples(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunFig19(19); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20SNR(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunFig20(20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollisionSIC(b *testing.B) {
	tb := testbed.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunCollision(22); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatencyPipeline(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunLatency(23); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectionSNR(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunDetection(20, 21); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineRSS(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		opt := benchAccuracyOpts()
		opt.MaxClients = 8
		if _, err := tb.RunBaselineComparison(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches: one per design knob, reporting the median error so
// regressions in any pipeline stage surface as metric shifts.

func benchAblationVariant(b *testing.B, mutate func(*core.Config)) {
	tb := testbed.New()
	var median float64
	for i := 0; i < b.N; i++ {
		opt := benchAccuracyOpts()
		opt.APCounts = []int{3}
		opt.MaxClients = 8
		opt.Pipeline = core.DefaultConfig(tb.Wavelength)
		mutate(&opt.Pipeline)
		res, _, err := tb.RunAccuracy(opt)
		if err != nil {
			b.Fatal(err)
		}
		median = stats.Median(res.ErrorsCM[3])
	}
	b.ReportMetric(median, "median-cm-3AP")
}

func BenchmarkAblationFull(b *testing.B) {
	benchAblationVariant(b, func(*core.Config) {})
}

func BenchmarkAblationNoWeighting(b *testing.B) {
	benchAblationVariant(b, func(c *core.Config) { c.UseWeighting = false })
}

func BenchmarkAblationNoSuppression(b *testing.B) {
	benchAblationVariant(b, func(c *core.Config) { c.UseSuppression = false })
}

func BenchmarkAblationNoSymmetryRemoval(b *testing.B) {
	benchAblationVariant(b, func(c *core.Config) { c.UseSymmetryRemoval = false })
}

func BenchmarkAblationNoForwardBackward(b *testing.B) {
	benchAblationVariant(b, func(c *core.Config) { c.ForwardBackward = false })
}

func BenchmarkAblationSmoothingNG1(b *testing.B) {
	benchAblationVariant(b, func(c *core.Config) { c.SmoothingGroups = 1 })
}

func BenchmarkAblationSmoothingNG3(b *testing.B) {
	benchAblationVariant(b, func(c *core.Config) { c.SmoothingGroups = 3 })
}

// Throughput benches: the concurrent engine versus the seed's serial
// loop, at the batch sizes of the paper's many-clients scenario. The
// fixture (capture synthesis through the channel model) is built once
// and shared; requests beyond 41 clients cycle the testbed positions.

var (
	throughputOnce sync.Once
	throughputBase []engine.Request
	throughputTB   *testbed.Testbed
	throughputOpt  testbed.ThroughputOptions
)

func throughputRequests(b *testing.B, n int) []engine.Request {
	b.Helper()
	throughputOnce.Do(func() {
		throughputTB = testbed.New()
		throughputOpt = testbed.DefaultThroughputOptions()
		throughputBase = throughputTB.ThroughputRequests(256, throughputOpt)
	})
	if n > len(throughputBase) {
		b.Fatalf("fixture holds %d requests, need %d", len(throughputBase), n)
	}
	return throughputBase[:n]
}

var throughputClientCounts = []int{1, 8, 64, 256}

// BenchmarkLocateSerial is the seed path: one client after another,
// one AP at a time, steering vectors recomputed for every bin, every
// intermediate allocated per frame. Compare against
// BenchmarkLocateStreaming for the workspace-path allocs/op reduction.
func BenchmarkLocateSerial(b *testing.B) {
	for _, n := range throughputClientCounts {
		b.Run(fmt.Sprintf("clients-%d", n), func(b *testing.B) {
			reqs := throughputRequests(b, n)
			cfg := core.DefaultConfig(throughputTB.Wavelength)
			cfg.GridCell = throughputOpt.GridCell
			cfg.Steering = nil
			cfg.APWorkers = 0
			cfg.Workspaces = nil
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range reqs {
					if _, _, err := core.LocateClient(q.APs, q.Captures, q.Min, q.Max, cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "fixes/sec")
		})
	}
}

// BenchmarkLocateStreaming is the refactored steady-state path: the
// same serial loop with the steering cache and the pooled workspaces —
// what one engine worker runs per job. The allocs/op column versus
// BenchmarkLocateSerial is the headline of this PR's workspace
// refactor (≥3x fewer even against the cache-only variant).
func BenchmarkLocateStreaming(b *testing.B) {
	for _, n := range throughputClientCounts {
		b.Run(fmt.Sprintf("clients-%d", n), func(b *testing.B) {
			reqs := throughputRequests(b, n)
			cfg := core.DefaultConfig(throughputTB.Wavelength)
			cfg.GridCell = throughputOpt.GridCell
			cfg.APWorkers = 0
			// Warm caches and the workspace pool.
			q0 := reqs[0]
			if _, _, err := core.LocateClient(q0.APs, q0.Captures, q0.Min, q0.Max, cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range reqs {
					if _, _, err := core.LocateClient(q.APs, q.Captures, q.Min, q.Max, cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "fixes/sec")
		})
	}
}

// BenchmarkLocateBatch is the engine: a worker pool across clients
// with the shared steering cache.
func BenchmarkLocateBatch(b *testing.B) {
	for _, n := range throughputClientCounts {
		b.Run(fmt.Sprintf("clients-%d", n), func(b *testing.B) {
			reqs := throughputRequests(b, n)
			cfg := core.DefaultConfig(throughputTB.Wavelength)
			cfg.GridCell = throughputOpt.GridCell
			eng := engine.New(engine.Options{Config: cfg})
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range eng.LocateBatch(reqs) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "fixes/sec")
		})
	}
}

// BenchmarkComputeSpectrum isolates the per-spectrum wins on the
// hottest single computation: one MUSIC spectrum for one frame.
// "uncached" is the seed path; "cached" adds the steering table;
// "workspace" adds the per-worker scratch state — the steady-state
// engine path, allocating only the escaping spectrum.
func BenchmarkComputeSpectrum(b *testing.B) {
	reqs := throughputRequests(b, 1)
	ap := reqs[0].APs[0]
	streams := reqs[0].Captures[0][0].Streams[:ap.Array.N]
	for _, mode := range []string{"uncached", "cached", "workspace"} {
		b.Run(mode, func(b *testing.B) {
			opt := music.Options{
				Wavelength:      throughputTB.Wavelength,
				SmoothingGroups: 2,
				MaxSamples:      10,
				SampleOffset:    100,
				ForwardBackward: true,
			}
			var ws *music.Workspace
			if mode != "uncached" {
				opt.Steering = music.NewSteeringCache()
			}
			if mode == "workspace" {
				ws = music.NewWorkspace()
				if _, err := music.ComputeSpectrumWS(ws, ap.Array, streams, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := music.ComputeSpectrumWS(ws, ap.Array, streams, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchSynthScene processes the first throughput fixture request into
// AP spectra, the input of the synthesis layer.
func benchSynthScene(b *testing.B) ([]core.APSpectrum, geom.Point, geom.Point) {
	b.Helper()
	q := throughputRequests(b, 1)[0]
	cfg := core.DefaultConfig(throughputTB.Wavelength)
	var specs []core.APSpectrum
	for i, ap := range q.APs {
		if len(q.Captures[i]) == 0 {
			continue
		}
		s, err := core.ProcessAP(ap, q.Captures[i], cfg)
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, core.APSpectrum{Pos: ap.Array.Pos, Spectrum: s})
	}
	return specs, q.Min, q.Max
}

// BenchmarkComputeHeatmap is the synthesis-layer headline: the seed
// product-domain grid versus the staged SynthGrid (cached bearing
// LUTs + log-domain flat accumulation), single-threaded and sharded,
// plus the two complete estimators (grid search + hill climb). The
// paper's 10 cm pitch over the full testbed floor. "grid" vs "seed"
// ns/op is the ≥5x acceptance criterion, gated hard by
// TestSynthGridSpeedupGate; allocs/op on the staged rows is the ≤2
// criterion, gated by TestSynthGridSteadyStateAllocs.
func BenchmarkComputeHeatmap(b *testing.B) {
	specs, min, max := benchSynthScene(b)
	const cell = 0.10
	newGrid := func(workers int) *core.SynthGrid {
		sg, err := core.NewSynthGrid(min, max, core.SynthOptions{Cell: cell, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		var h core.Heatmap
		if err := sg.LogHeatmapInto(&h, specs); err != nil { // warm LUTs
			b.Fatal(err)
		}
		return sg
	}

	b.Run("seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ComputeHeatmap(specs, min, max, cell); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("grid", func(b *testing.B) {
		sg := newGrid(1)
		var h core.Heatmap
		if err := sg.LogHeatmapInto(&h, specs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sg.LogHeatmapInto(&h, specs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("grid-workers-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		sg := newGrid(runtime.GOMAXPROCS(0))
		var h core.Heatmap
		if err := sg.LogHeatmapInto(&h, specs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sg.LogHeatmapInto(&h, specs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("localize-seed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Localize(specs, min, max, cell); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("localize-coarse2fine", func(b *testing.B) {
		sg := newGrid(1)
		if _, err := sg.Localize(specs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sg.Localize(specs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRegionLocalize times ad-hoc region fixes through the
// bounded synthesis cache. "warm" is the steady interactive case: the
// same box re-queried against cached LUTs (the ≤2 allocs/op gate path,
// enforced by TestRegionSteadyStateAllocs). "sliced" constructs the
// grid per fix and derives its LUTs by slicing the cached full-grid
// entries — the first-query cost of a fresh box once the floor is
// warm. "churn" cycles 32 distinct boxes against a budget sized to
// force eviction on nearly every query — the worst case the
// accounting gate bounds.
func BenchmarkRegionLocalize(b *testing.B) {
	specs, min, max := benchSynthScene(b)
	const cell = 0.10
	mkRegion := func(i int) core.Region {
		x0 := 2 + float64(i%8)*3.5
		y0 := 1 + float64(i/8%4)*2.5
		return core.Region{Min: geom.Pt(x0, y0), Max: geom.Pt(x0+8, y0+5)}
	}

	b.Run("warm", func(b *testing.B) {
		cache := core.NewSynthCacheBudget(64 << 20)
		sg, err := core.NewSynthGridRegion(min, max, mkRegion(0), core.SynthOptions{Cell: cell, Workers: 1, Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sg.Localize(specs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sg.Localize(specs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sliced", func(b *testing.B) {
		cache := core.NewSynthCacheBudget(64 << 20)
		full, err := core.NewSynthGrid(min, max, core.SynthOptions{Cell: cell, Workers: 1, Cache: cache})
		if err != nil {
			b.Fatal(err)
		}
		var h core.Heatmap
		if err := full.LogHeatmapInto(&h, specs); err != nil { // warm the parent LUTs
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sg, err := core.NewSynthGridRegion(min, max, mkRegion(i%32), core.SynthOptions{Cell: cell, Workers: 1, Cache: cache})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sg.Localize(specs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("churn", func(b *testing.B) {
		cache := core.NewSynthCacheBudget(1 << 20)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sg, err := core.NewSynthGridRegion(min, max, mkRegion(i%32), core.SynthOptions{Cell: cell, Workers: 1, Cache: cache})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sg.Localize(specs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Extension benches: the future-work and discussion features.

func BenchmarkThreeDLocalization(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunThreeD(31); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCircularVsLinear(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunCircular(32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCalibrationSweep(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunCalibrationSweep(33); err != nil {
			b.Fatal(err)
		}
	}
}
