package arraytrack

// One benchmark per table/figure of the paper's evaluation (§4), plus
// ablation benches for the design choices DESIGN.md calls out. Each
// bench regenerates its artifact through the testbed experiment runners
// and reports the headline quantity (median location error, stability
// percentage, detection rate, …) as a custom benchmark metric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// benchAccuracyOpts returns a sweep sized for benchmarking: a
// representative client sample and capped combinations so one iteration
// stays in the hundreds of milliseconds.
func benchAccuracyOpts() testbed.AccuracyOptions {
	opt := testbed.DefaultAccuracyOptions()
	opt.MaxClients = 12
	opt.MaxCombos = 4
	return opt
}

func BenchmarkTable1PeakStability(b *testing.B) {
	tb := testbed.New()
	var directSamePct float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := tb.RunTable1(30, 11)
		if err != nil {
			b.Fatal(err)
		}
		// Rows 0 and 1 are the "direct same" outcomes.
		directSamePct = pctFromRow(r.Lines[0]) + pctFromRow(r.Lines[1])
	}
	b.ReportMetric(directSamePct, "direct-same-%")
}

func pctFromRow(row string) float64 {
	f := strings.Fields(row)
	var v float64
	if len(f) > 0 {
		s := strings.TrimSuffix(f[len(f)-1], "%")
		var x float64
		for _, c := range s {
			if c >= '0' && c <= '9' {
				x = x*10 + float64(c-'0')
			}
		}
		v = x
	}
	return v
}

func BenchmarkFig7SpatialSmoothing(b *testing.B) {
	tb := testbed.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunFig7(7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Unoptimized(b *testing.B) {
	tb := testbed.New()
	var median float64
	for i := 0; i < b.N; i++ {
		opt := benchAccuracyOpts()
		opt.APCounts = []int{3, 6}
		_, res, err := tb.RunFig13(opt)
		if err != nil {
			b.Fatal(err)
		}
		median = stats.Median(res.ErrorsCM[6])
	}
	b.ReportMetric(median, "median-cm-6AP")
}

func BenchmarkFig14Heatmaps(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunFig14(20, 14); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15ArrayTrack(b *testing.B) {
	tb := testbed.New()
	var median float64
	for i := 0; i < b.N; i++ {
		opt := benchAccuracyOpts()
		opt.APCounts = []int{3, 6}
		_, res, err := tb.RunFig15(opt)
		if err != nil {
			b.Fatal(err)
		}
		median = stats.Median(res.ErrorsCM[6])
	}
	b.ReportMetric(median, "median-cm-6AP")
}

func BenchmarkFig16Antennas(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		opt := benchAccuracyOpts()
		opt.MaxClients = 8
		if _, err := tb.RunFig16(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17Pillars(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunFig17(17); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18Robustness(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		opt := benchAccuracyOpts()
		opt.MaxClients = 8
		if _, err := tb.RunFig18(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19Samples(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunFig19(19); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20SNR(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunFig20(20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollisionSIC(b *testing.B) {
	tb := testbed.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunCollision(22); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatencyPipeline(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunLatency(23); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectionSNR(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunDetection(20, 21); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineRSS(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		opt := benchAccuracyOpts()
		opt.MaxClients = 8
		if _, err := tb.RunBaselineComparison(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches: one per design knob, reporting the median error so
// regressions in any pipeline stage surface as metric shifts.

func benchAblationVariant(b *testing.B, mutate func(*core.Config)) {
	tb := testbed.New()
	var median float64
	for i := 0; i < b.N; i++ {
		opt := benchAccuracyOpts()
		opt.APCounts = []int{3}
		opt.MaxClients = 8
		opt.Pipeline = core.DefaultConfig(tb.Wavelength)
		mutate(&opt.Pipeline)
		res, _, err := tb.RunAccuracy(opt)
		if err != nil {
			b.Fatal(err)
		}
		median = stats.Median(res.ErrorsCM[3])
	}
	b.ReportMetric(median, "median-cm-3AP")
}

func BenchmarkAblationFull(b *testing.B) {
	benchAblationVariant(b, func(*core.Config) {})
}

func BenchmarkAblationNoWeighting(b *testing.B) {
	benchAblationVariant(b, func(c *core.Config) { c.UseWeighting = false })
}

func BenchmarkAblationNoSuppression(b *testing.B) {
	benchAblationVariant(b, func(c *core.Config) { c.UseSuppression = false })
}

func BenchmarkAblationNoSymmetryRemoval(b *testing.B) {
	benchAblationVariant(b, func(c *core.Config) { c.UseSymmetryRemoval = false })
}

func BenchmarkAblationNoForwardBackward(b *testing.B) {
	benchAblationVariant(b, func(c *core.Config) { c.ForwardBackward = false })
}

func BenchmarkAblationSmoothingNG1(b *testing.B) {
	benchAblationVariant(b, func(c *core.Config) { c.SmoothingGroups = 1 })
}

func BenchmarkAblationSmoothingNG3(b *testing.B) {
	benchAblationVariant(b, func(c *core.Config) { c.SmoothingGroups = 3 })
}

// Extension benches: the future-work and discussion features.

func BenchmarkThreeDLocalization(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunThreeD(31); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCircularVsLinear(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunCircular(32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCalibrationSweep(b *testing.B) {
	tb := testbed.New()
	for i := 0; i < b.N; i++ {
		if _, err := tb.RunCalibrationSweep(33); err != nil {
			b.Fatal(err)
		}
	}
}
