// Command atbench regenerates the paper's tables and figures from the
// simulated testbed. Each experiment prints a text artifact whose rows
// correspond to the paper's plot series.
//
// Usage:
//
//	atbench -exp fig13          # one experiment
//	atbench -exp all            # everything (several minutes)
//	atbench -exp fig15 -fast    # capped sweep for a quick look
//	atbench -list               # enumerate experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/testbed"
)

type experiment struct {
	id, desc string
	run      func(tb *testbed.Testbed, fast bool) (*testbed.Report, error)
}

func accuracyOpts(fast bool) testbed.AccuracyOptions {
	opt := testbed.DefaultAccuracyOptions()
	if fast {
		opt.MaxClients = 10
		opt.MaxCombos = 4
	}
	return opt
}

var experiments = []experiment{
	{"table1", "peak stability under 5 cm movement", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		n := 100
		if fast {
			n = 25
		}
		return tb.RunTable1(n, 11)
	}},
	{"fig7", "spatial smoothing sweep", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunFig7(7)
	}},
	{"fig13", "unoptimized location error CDF, 3–6 APs", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		r, _, err := tb.RunFig13(accuracyOpts(fast))
		return r, err
	}},
	{"fig14", "likelihood heatmaps, 1–6 APs", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunFig14(20, 14)
	}},
	{"fig15", "full ArrayTrack location error CDF, 3–6 APs", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		r, _, err := tb.RunFig15(accuracyOpts(fast))
		return r, err
	}},
	{"fig16", "location error vs antenna count", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		return tb.RunFig16(accuracyOpts(fast))
	}},
	{"fig17", "spectra with pillar blocking", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunFig17(17)
	}},
	{"fig18", "robustness to height and orientation", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		return tb.RunFig18(accuracyOpts(fast))
	}},
	{"fig19", "spectrum stability vs sample count", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunFig19(19)
	}},
	{"fig20", "spectra vs SNR", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunFig20(20)
	}},
	{"detect", "packet detection rate vs SNR", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		n := 100
		if fast {
			n = 20
		}
		return tb.RunDetection(n, 21)
	}},
	{"collision", "colliding frames and SIC", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunCollision(22)
	}},
	{"latency", "end-to-end latency budget", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunLatency(23)
	}},
	{"heighterr", "Appendix A height error model", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunHeightError()
	}},
	{"baseline", "ArrayTrack vs RSS baselines", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		return tb.RunBaselineComparison(accuracyOpts(fast))
	}},
	{"threed", "3-D localization with vertical arrays", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunThreeD(31)
	}},
	{"circular", "linear vs circular array geometry", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunCircular(32)
	}},
	{"calib", "accuracy vs residual calibration error", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunCalibrationSweep(33)
	}},
	{"throughput", "multi-client fixes/sec: seed-serial vs cached vs engine", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := testbed.DefaultThroughputOptions()
		if fast {
			opt.ClientCounts = []int{1, 8, 32}
		}
		return tb.RunThroughput(opt)
	}},
	{"ablation", "pipeline ablations", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := accuracyOpts(fast)
		opt.APCounts = []int{3}
		if !fast {
			opt.MaxCombos = 8
		}
		r, _, err := tb.RunAblation(opt)
		return r, err
	}},
}

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	fast := flag.Bool("fast", false, "cap sweep sizes for a quick run")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-10s %s\n", e.id, e.desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	tb := testbed.New()
	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.id {
			continue
		}
		ran = true
		start := time.Now()
		r, err := e.run(tb, *fast)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Print(r.String())
		fmt.Printf("(%s in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
}
