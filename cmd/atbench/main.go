// Command atbench regenerates the paper's tables and figures from the
// simulated testbed. Each experiment prints a text artifact whose rows
// correspond to the paper's plot series.
//
// Usage:
//
//	atbench -exp fig13          # one experiment
//	atbench -exp all            # everything (several minutes)
//	atbench -exp fig15 -fast    # capped sweep for a quick look
//	atbench -exp perf -json bench.json   # machine-readable perf rows
//	atbench -list               # enumerate experiments
//
// With -json <path>, every run experiment's headline metrics
// (fixes/sec, latency percentiles, allocs/op, tracking RMSE, …) are
// also written as a JSON document — the repo's perf trajectory format,
// uploaded as a CI artifact so numbers are diffable across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/testbed"
)

type experiment struct {
	id, desc string
	run      func(tb *testbed.Testbed, fast bool) (*testbed.Report, error)
}

func accuracyOpts(fast bool) testbed.AccuracyOptions {
	opt := testbed.DefaultAccuracyOptions()
	if fast {
		opt.MaxClients = 10
		opt.MaxCombos = 4
	}
	return opt
}

var experiments = []experiment{
	{"table1", "peak stability under 5 cm movement", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		n := 100
		if fast {
			n = 25
		}
		return tb.RunTable1(n, 11)
	}},
	{"fig7", "spatial smoothing sweep", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunFig7(7)
	}},
	{"fig13", "unoptimized location error CDF, 3–6 APs", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		r, _, err := tb.RunFig13(accuracyOpts(fast))
		return r, err
	}},
	{"fig14", "likelihood heatmaps, 1–6 APs", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunFig14(20, 14)
	}},
	{"fig15", "full ArrayTrack location error CDF, 3–6 APs", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		r, _, err := tb.RunFig15(accuracyOpts(fast))
		return r, err
	}},
	{"fig16", "location error vs antenna count", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		return tb.RunFig16(accuracyOpts(fast))
	}},
	{"fig17", "spectra with pillar blocking", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunFig17(17)
	}},
	{"fig18", "robustness to height and orientation", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		return tb.RunFig18(accuracyOpts(fast))
	}},
	{"fig19", "spectrum stability vs sample count", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunFig19(19)
	}},
	{"fig20", "spectra vs SNR", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunFig20(20)
	}},
	{"detect", "packet detection rate vs SNR", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		n := 100
		if fast {
			n = 20
		}
		return tb.RunDetection(n, 21)
	}},
	{"collision", "colliding frames and SIC", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunCollision(22)
	}},
	{"latency", "end-to-end latency budget", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunLatency(23)
	}},
	{"heighterr", "Appendix A height error model", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunHeightError()
	}},
	{"baseline", "ArrayTrack vs RSS baselines", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		return tb.RunBaselineComparison(accuracyOpts(fast))
	}},
	{"threed", "3-D localization with vertical arrays", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunThreeD(31)
	}},
	{"circular", "linear vs circular array geometry", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunCircular(32)
	}},
	{"calib", "accuracy vs residual calibration error", func(tb *testbed.Testbed, _ bool) (*testbed.Report, error) {
		return tb.RunCalibrationSweep(33)
	}},
	{"throughput", "multi-client fixes/sec: seed-serial vs cached vs engine", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := testbed.DefaultThroughputOptions()
		if fast {
			opt.ClientCounts = []int{1, 8, 32}
		}
		return tb.RunThroughput(opt)
	}},
	{"tracking", "roaming client: raw fixes vs Kalman-smoothed track", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := testbed.DefaultTrackingOptions()
		if fast {
			opt.Steps = 12
			opt.Sites = []int{0, 1, 3, 5}
		}
		r, _, err := tb.RunTracking(opt)
		return r, err
	}},
	{"perf", "workspace-path allocs/op and per-fix latency", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := testbed.DefaultPerfOptions()
		if fast {
			opt.Clients = 8
			opt.AllocRuns = 10
		}
		return tb.RunPerf(opt)
	}},
	{"synth", "staged heatmap synthesis: LUT + log-domain vs seed", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := testbed.DefaultSynthOptions()
		if fast {
			opt.MaxClients = 3
			opt.Cells = []float64{0.50, 0.25}
			opt.Trials = 2
		}
		return tb.RunSynth(opt)
	}},
	{"regions", "ad-hoc region queries: bounded cache + latency lane", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := testbed.DefaultRegionsOptions()
		if fast {
			opt.MaxClients = 3
			opt.Queries = 120
			opt.Budgets = []int64{1 << 20, 32 << 20}
			opt.BatchJobs = 24
			opt.PriorityJobs = 6
		}
		return tb.RunRegions(opt)
	}},
	{"sched", "engine scheduler + track-guided predictive localization", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := testbed.DefaultSchedOptions()
		if fast {
			opt.Steps = 10
			opt.Sites = []int{0, 2, 4, 5}
			opt.BatchJobs = 12
			opt.PriorityJobs = 6
			opt.FloodMillis = 150
			opt.Trials = 2
		}
		return tb.RunSched(opt)
	}},
	{"ops", "kill→snapshot→restore mid-walk: zero tracks lost, identical RMSE", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := testbed.DefaultOpsOptions()
		if fast {
			opt.Steps = 10
			opt.KillStep = 5
			opt.Sites = []int{0, 1, 3, 5}
		}
		r, _, err := tb.RunOps(opt)
		return r, err
	}},
	{"chaos", "hostile network: AP kill, slow-loris, corrupted frames, overload", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := testbed.DefaultChaosOptions()
		if fast {
			opt.Steps = 6
			opt.KillStep = 3
			opt.Capture.Antennas = 4
			opt.GridCell = 0.5
			opt.BurstJobs = 12
			opt.ShedAfter = time.Millisecond
		}
		r, _, err := tb.RunChaos(opt)
		return r, err
	}},
	{"cluster", "sharded cluster: bit-identical fan-in, zero-loss mid-walk migration, scaling", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := testbed.DefaultClusterOptions()
		if fast {
			opt.Steps = 8
			opt.MigrateStep = 4
			opt.Sites = []int{0, 1, 3, 5}
			opt.ThroughputClients = 8
			opt.ThroughputFixes = 2
		}
		r, _, err := tb.RunCluster(opt)
		return r, err
	}},
	{"ingest", "flood ingest: v3 batch + pooled decode vs seed per-record path", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := testbed.DefaultIngestOptions()
		if fast {
			opt.Captures = 2048
			opt.Trials = 3
			opt.Shapes = []testbed.IngestShape{{Antennas: 8, Samples: 16}}
			opt.BatchSizes = []int{32, 128}
		}
		return tb.RunIngest(opt)
	}},
	{"kernels", "numeric kernels: packed eig, guarded climb, heap B&B, two-choice cache", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := testbed.DefaultKernelsOptions()
		if fast {
			opt.MaxClients = 2
			opt.Trials = 3
			opt.Rounds = 2
			opt.DenseCell = 0.04
		}
		return tb.RunKernels(opt)
	}},
	{"ablation", "pipeline ablations", func(tb *testbed.Testbed, fast bool) (*testbed.Report, error) {
		opt := accuracyOpts(fast)
		opt.APCounts = []int{3}
		if !fast {
			opt.MaxCombos = 8
		}
		r, _, err := tb.RunAblation(opt)
		return r, err
	}},
}

// jsonExperiment is one experiment's machine-readable record.
type jsonExperiment struct {
	ID      string           `json:"id"`
	Title   string           `json:"title"`
	Seconds float64          `json:"seconds"`
	Metrics []testbed.Metric `json:"metrics,omitempty"`
}

// jsonDoc is the -json output: the BENCH_*.json perf-trajectory
// format.
type jsonDoc struct {
	GeneratedUnix int64            `json:"generated_unix"`
	GoVersion     string           `json:"go_version"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	Fast          bool             `json:"fast"`
	Experiments   []jsonExperiment `json:"experiments"`
}

func writeJSON(path string, doc jsonDoc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	exp := flag.String("exp", "", "experiment id (or 'all')")
	fast := flag.Bool("fast", false, "cap sweep sizes for a quick run")
	list := flag.Bool("list", false, "list experiments")
	jsonPath := flag.String("json", "", "also write run results as machine-readable JSON to this path")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-10s %s\n", e.id, e.desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	tb := testbed.New()
	doc := jsonDoc{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Fast:          *fast,
	}
	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.id {
			continue
		}
		ran = true
		start := time.Now()
		r, err := e.run(tb, *fast)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Print(r.String())
		fmt.Printf("(%s in %v)\n\n", e.id, elapsed.Round(time.Millisecond))
		doc.Experiments = append(doc.Experiments, jsonExperiment{
			ID:      r.ID,
			Title:   r.Title,
			Seconds: elapsed.Seconds(),
			Metrics: r.Metrics,
		})
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, doc); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments)\n", *jsonPath, len(doc.Experiments))
	}
}
