package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
)

// listenOn opens a listener for addr: "unix:/path/to.sock" binds a
// unix socket (removing a stale one first), anything else is a TCP
// address.
func listenOn(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("remove stale socket %s: %w", path, err)
		}
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

// dialShard dials a shard's data address, "unix:/path" or host:port.
func dialShard(addr string) (net.Conn, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Dial("unix", path)
	}
	return net.Dial("tcp", addr)
}

// parseShardFlag parses "-shard i/N" into (index, total).
func parseShardFlag(s string) (int, int, error) {
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard wants i/N, got %q", s)
	}
	idx, err1 := strconv.Atoi(i)
	total, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil || total < 1 || idx < 0 || idx >= total {
		return 0, 0, fmt.Errorf("-shard wants i/N with 0 <= i < N, got %q", s)
	}
	return idx, total, nil
}

// routerFlags are the -router mode's extra knobs.
type routerFlags struct {
	shards   *string
	shardOps *string
	mapOver  *int
}

func registerRouterFlags() routerFlags {
	return routerFlags{
		shards: flag.String("shards", "",
			"router mode: comma-separated shard data addresses (unix:/path or host:port), in shard order"),
		shardOps: flag.String("shard-ops", "",
			"router mode: comma-separated shard ops base URLs (http://host:port), same order as -shards"),
		mapOver: flag.Int("map-shards", 0,
			"router mode: shards covered by the initial map (0 = all of -shards; grow later via POST /cluster/rebalance)"),
	}
}

// runRouter is the -router entrypoint: fan AP capture traffic out to
// the shard backends by client ID, and serve the rebalance trigger on
// -http. Blocks until ctx is done.
func runRouter(ctx context.Context, listen, httpAddr string, rf routerFlags) error {
	dataAddrs := strings.Split(*rf.shards, ",")
	opsAddrs := strings.Split(*rf.shardOps, ",")
	if *rf.shards == "" || *rf.shardOps == "" || len(dataAddrs) != len(opsAddrs) {
		return fmt.Errorf("router mode wants matching -shards and -shard-ops lists (%d vs %d entries)",
			len(dataAddrs), len(opsAddrs))
	}
	shards := make([]cluster.Shard, len(dataAddrs))
	for i, addr := range dataAddrs {
		conn, err := dialShard(strings.TrimSpace(addr))
		if err != nil {
			return fmt.Errorf("shard %d data: %w", i, err)
		}
		defer conn.Close()
		shards[i] = cluster.Shard{
			Data: conn,
			Ctl:  &cluster.HTTPShard{Base: strings.TrimSpace(opsAddrs[i])},
		}
	}
	mapOver := *rf.mapOver
	if mapOver == 0 {
		mapOver = len(shards)
	}
	m, err := cluster.NewShardMap(1, mapOver, 0)
	if err != nil {
		return err
	}
	router, err := cluster.NewRouter(m, shards)
	if err != nil {
		return err
	}

	l, err := listenOn(listen)
	if err != nil {
		return err
	}
	log.Printf("ArrayTrack router listening on %s: %d shards, map v%d over %d",
		l.Addr(), len(shards), m.Version, m.Shards)

	if httpAddr != "" {
		hl, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: routerOpsHandler(router)}
		log.Printf("router ops on http://%s (/cluster/map /cluster/stats POST /cluster/rebalance)", hl.Addr())
		go func() {
			if err := hs.Serve(hl); err != nil && err != http.ErrServerClosed {
				log.Printf("router ops: %v", err)
			}
		}()
		defer func() {
			shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			hs.Shutdown(shutCtx)
			cancel()
		}()
	}

	go func() {
		<-ctx.Done()
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			if err := router.ServeConn(conn); err != nil {
				log.Printf("ap conn %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// routerOpsHandler is the router's control surface:
//
//	GET  /healthz           200 ok
//	GET  /cluster/map       {"version":V,"shards":N}
//	GET  /cluster/stats     router counters
//	POST /cluster/rebalance {"version":V,"shards":N} -> swap the map,
//	                        migrating every client whose owner changes
func routerOpsHandler(router *cluster.Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /cluster/map", func(w http.ResponseWriter, _ *http.Request) {
		m := router.Map()
		writeJSON(w, map[string]any{"version": m.Version, "shards": m.Shards})
	})
	mux.HandleFunc("GET /cluster/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, router.Stats())
	})
	mux.HandleFunc("POST /cluster/rebalance", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Version uint64 `json:"version"`
			Shards  int    `json:"shards"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, "bad rebalance body: "+err.Error(), http.StatusBadRequest)
			return
		}
		next, err := cluster.NewShardMap(body.Version, body.Shards, 0)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := router.Rebalance(next)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		log.Printf("rebalance to v%d/%d shards: moved %d clients, %d tracks, %d pending captures (%d held flushed)",
			body.Version, body.Shards, st.MovedClients, st.MovedTracks, st.MovedPending, st.HeldFlushed)
		writeJSON(w, st)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
