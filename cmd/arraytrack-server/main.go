// Command arraytrack-server is the central ArrayTrack backend (Figure
// 1, right half): it accepts capture records from AP nodes over TCP,
// groups them per client, localizes once a quorum of APs has reported,
// and streams both the raw fix and the Kalman-smoothed track for every
// client.
//
// AP identities 1–6 map to the simulated testbed's sites, so the server
// knows each reporting array's position and orientation.
//
// Steady-state serving is predictive by default: a client with a live
// Kalman track is localized inside its prediction's gate region and
// verified, falling back to the full grid otherwise (-predict=false
// restores unconditional full-grid serving). The scheduler applies
// per-client admission quotas (-client-quota) and batch-queue ageing
// (-age-limit) so neither a hostile flood nor the latency lane can
// starve anyone.
//
//	arraytrack-server -listen :7100 -quorum 3
//
// The same binary scales out: each shard runs a normal backend (on a
// TCP or unix:/path socket, tagged with -shard i/N), and one -router
// process fans AP traffic out to the shards by hashed client ID,
// migrating tracks losslessly when the map grows:
//
//	arraytrack-server -shard 0/2 -listen unix:/run/at/s0.sock -http :9100 ...
//	arraytrack-server -shard 1/2 -listen unix:/run/at/s1.sock -http :9101 ...
//	arraytrack-server -router -listen :7100 -http :9099 \
//	    -shards unix:/run/at/s0.sock,unix:/run/at/s1.sock \
//	    -shard-ops http://127.0.0.1:9100,http://127.0.0.1:9101 -map-shards 1
//	curl -X POST localhost:9099/cluster/rebalance -d '{"version":2,"shards":2}'
//
// The server runs like a service: SIGINT/SIGTERM triggers a graceful
// drain (stop accepting, flush every in-flight job, write the -snapshot
// tracker image, exit 0) and -restore resumes those tracks
// bit-identically on the next start. -http serves Prometheus metrics,
// per-client track introspection, and the hot-reloadable knobs;
// -knobs names a JSON knobs file applied at startup and re-applied on
// SIGHUP. Engine and tracker counters are also logged every
// -stats-every interval and, on Unix, dumped on demand with SIGUSR1.
// Pair with cmd/arraytrack-ap.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/music"
	"repro/internal/ops"
	"repro/internal/server"
	"repro/internal/testbed"
)

// applyKnobsFile loads a JSON ops.Knobs document and pushes it onto
// the serving process; used at startup and on SIGHUP.
func applyKnobsFile(srv *ops.Server, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Printf("knobs: %v", err)
		return
	}
	var k ops.Knobs
	if err := json.Unmarshal(data, &k); err != nil {
		log.Printf("knobs: parse %s: %v", path, err)
		return
	}
	log.Printf("knobs: applied %v from %s", srv.Apply(k), path)
}

func logStats(eng *engine.Engine, backend *server.Backend) {
	st := eng.Stats()
	log.Printf("stats: submitted=%d (prio=%d) completed=%d fixes=%d failures=%d rejected=%d (quota=%d) tracked=%d gate_rejects=%d queued=%d prio_queued=%d pending_clients=%d workers=%d",
		st.Submitted, st.PrioritySubmitted, st.Completed, st.Fixes, st.Failures, st.Rejected, st.QuotaRejected,
		st.TrackedClients, st.TrackRejects, st.Queued, st.PriorityQueued, backend.PendingClients(), st.Workers)
	log.Printf("sched: aged=%d stolen=%d | predictive: served=%d fallbacks no_track=%d border=%d gate=%d error=%d",
		st.AgedBatch, st.PriorityStolen, st.Predicted,
		st.PredictFallbackNoTrack, st.PredictFallbackBorder, st.PredictFallbackGate, st.PredictFallbackError)
	log.Printf("synth cache: entries=%d bytes=%d budget=%d hits=%d misses=%d evictions=%d slices=%d second_choice=%d spills=%d dense_evictions=%d",
		st.SynthLUTs, st.SynthBytes, st.SynthBudget, st.SynthHits, st.SynthMisses, st.SynthEvictions, st.SynthSlices,
		st.SynthSecondChoice, st.SynthSpills, st.SynthDenseEvictions)
	log.Printf("steering cache: entries=%d bytes=%d budget=%d hits=%d misses=%d evictions=%d",
		st.SteeringTables, st.SteeringBytes, st.SteeringBudget, st.SteeringHits, st.SteeringMisses, st.SteeringEvictions)
	if u := backend.UDP(); u.Datagrams > 0 || u.Bad > 0 {
		log.Printf("udp feed: datagrams=%d captures=%d bad=%d seq_gaps=%d reorders=%d",
			u.Datagrams, u.Captures, u.Bad, u.SeqGaps, u.SeqReorders)
	}
	h := backend.Health()
	log.Printf("health: conn_errors=%d deadline_reaped=%d quarantines=%d (active=%d, dropped=%d) degraded_flushes=%d stale_dropped=%d shed=%d degraded_fixes=%d leased_workspaces=%d",
		h.ConnErrors, h.DeadlineReaped, h.Quarantines, h.Quarantined, h.QuarantinedDropped,
		h.DegradedFlushes, h.StaleDropped, st.Shed, st.DegradedFixes, server.LeasedIngestWorkspaces())
}

func main() {
	listen := flag.String("listen", ":7100", "listen address (host:port TCP, or unix:/path/to.sock)")
	quorum := flag.Int("quorum", 3, "distinct APs required before localizing")
	shardFlag := flag.String("shard", "",
		"serve as shard i of an N-shard cluster, e.g. -shard 0/4 (informational: sharding is enforced by the router)")
	routerMode := flag.Bool("router", false,
		"run as the cluster router instead of a backend: fan AP traffic out to -shards by client ID")
	rf := registerRouterFlags()
	window := flag.Duration("window", time.Second, "capture grouping window")
	workers := flag.Int("workers", 0, "localization worker pool size (0 = GOMAXPROCS)")
	estimator := flag.String("estimator", "music", "AoA estimator: music, bartlett, or baseline")
	trackTTL := flag.Duration("track-ttl", 30*time.Second, "evict a client's track after this much silence")
	statsEvery := flag.Duration("stats-every", 30*time.Second, "period for the stats log line (0 disables)")
	synthBudget := flag.Int64("synth-cache-budget", core.DefaultSynthCacheBudget,
		"byte budget for the synthesis LUT cache (ad-hoc region queries churn it; 0 = unbounded)")
	steeringBudget := flag.Int64("steering-cache-budget", music.DefaultSteeringCacheBudget,
		"byte budget for the steering-vector table cache (0 = unbounded)")
	clientQuota := flag.Int("client-quota", 16,
		"max jobs one client may hold admitted-but-uncompleted across both scheduler lanes (0 = unlimited)")
	ageLimit := flag.Duration("age-limit", 0,
		"batch job head-of-line wait beyond which it is served ahead of priority traffic (0 = scheduler default, negative disables)")
	predict := flag.Bool("predict", true,
		"serve clients with live tracks from the track-guided predictive region (verified, full-grid fallback)")
	predictSigma := flag.Float64("predict-sigma", engine.DefaultPredictSigma,
		"gate-covariance inflation for the predictive search region, in sigmas (clamped up to the tracker gate)")
	httpAddr := flag.String("http", "",
		"ops HTTP listen address for /metrics, /clients, /knobs, /healthz (empty disables)")
	snapshotPath := flag.String("snapshot", "",
		"write the tracker snapshot here after the graceful drain (empty disables)")
	restorePath := flag.String("restore", "",
		"restore tracker state from this snapshot at startup (empty disables)")
	knobsPath := flag.String("knobs", "",
		"JSON knobs file applied at startup and re-applied on SIGHUP (empty disables)")
	udpAddr := flag.String("udp", "",
		"also accept batch-frame capture datagrams on this UDP address (empty disables)")
	degradedQuorum := flag.Int("degraded-quorum", 0,
		"serve a stuck group once it has this many distinct APs (< quorum) for -degraded-after; fixes are flagged degraded (0 = strict quorum only)")
	degradedAfter := flag.Duration("degraded-after", server.DefaultDegradedAfter,
		"stuck-group age that triggers a degraded flush (with -degraded-quorum)")
	idleTimeout := flag.Duration("idle-timeout", 30*time.Second,
		"reap an AP connection after this long without a byte (0 disables)")
	apErrorBudget := flag.Int("ap-error-budget", 0,
		"connection/decode errors within 10s that quarantine an AP (0 disables quarantine)")
	quarantineCooldown := flag.Duration("quarantine-cooldown", server.DefaultQuarantineCooldown,
		"how long a quarantined AP stays isolated before readmission")
	shedAfter := flag.Duration("shed-after", 0,
		"fail batch jobs queued longer than this with an overload error instead of serving stale fixes (0 disables)")
	flag.Parse()

	if *routerMode {
		ctx, stop := signal.NotifyContext(context.Background(), shutdownSignals()...)
		defer stop()
		if err := runRouter(ctx, *listen, *httpAddr, rf); err != nil {
			log.Fatal(err)
		}
		return
	}
	shardIdx, shardN := 0, 1
	if *shardFlag != "" {
		var err error
		if shardIdx, shardN, err = parseShardFlag(*shardFlag); err != nil {
			log.Fatal(err)
		}
	}

	tb := testbed.New()
	capOpt := testbed.DefaultCaptureOptions()
	cfg := core.DefaultConfig(tb.Wavelength)
	est, err := music.EstimatorByName(*estimator)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Estimator = est
	if *synthBudget != core.SharedSynthCache().Budget() {
		cfg.SynthCache = core.NewSynthCacheBudget(*synthBudget)
	}
	if *steeringBudget != music.SharedSteeringCache().Budget() {
		cfg.Steering = music.NewSteeringCacheBudget(*steeringBudget)
	}

	tracker := engine.NewTracker(engine.TrackerOptions{TTL: *trackTTL})
	if *restorePath != "" {
		snap, err := ops.Load(*restorePath)
		if err != nil {
			log.Fatal(err)
		}
		n := tracker.Restore(snap.Tracks)
		log.Printf("restored %d/%d client tracks from %s (saved %s)",
			n, len(snap.Tracks), *restorePath, time.Unix(0, snap.SavedUnixNano).Format(time.RFC3339))
	}
	eng := engine.New(engine.Options{
		Workers:      *workers,
		Config:       cfg,
		Tracker:      tracker,
		ClientQuota:  *clientQuota,
		AgeLimit:     *ageLimit,
		Predict:      *predict,
		PredictSigma: *predictSigma,
		ShedAfter:    *shedAfter,
	})
	defer eng.Close()

	sink := &engine.CaptureSink{
		Engine: eng,
		Resolve: func(apID uint32) *core.AP {
			idx := int(apID) - 1
			if idx < 0 || idx >= len(tb.Sites) {
				log.Printf("unknown AP id %d, skipping", apID)
				return nil
			}
			return &core.AP{Array: tb.NewArray(tb.Sites[idx], capOpt)}
		},
		Min: tb.Plan.Min,
		Max: tb.Plan.Max,
		OnResult: func(r engine.Result) {
			if r.Err != nil {
				log.Printf("client %d: localization failed: %v", r.ClientID, r.Err)
				return
			}
			how := "full-grid"
			if r.Predicted {
				how = "track-guided"
			}
			if r.Degraded {
				how += ", degraded"
			}
			fmt.Printf("client %d located at %v  (%d APs, %s)\n",
				r.ClientID, r.Pos, len(r.Spectra), how)
		},
		OnTrack: func(u engine.TrackUpdate) {
			status := "tracked"
			if !u.Accepted {
				status = "gated"
			}
			fmt.Printf("client %d %s at (%.2f,%.2f) vel (%.2f,%.2f) m/s  raw (%.2f,%.2f)\n",
				u.ClientID, status, u.Smoothed.X, u.Smoothed.Y, u.Vel.X, u.Vel.Y, u.Raw.X, u.Raw.Y)
		},
	}
	backend := server.NewBackendDispatcher(*quorum, *window, sink)
	backend.IdleTimeout = *idleTimeout
	backend.DegradedQuorum = *degradedQuorum
	backend.DegradedAfter = *degradedAfter
	backend.ErrorBudget = *apErrorBudget
	backend.Cooldown = *quarantineCooldown

	l, err := listenOn(*listen)
	if err != nil {
		log.Fatal(err)
	}
	if shardN > 1 {
		log.Printf("ArrayTrack shard %d/%d listening on %s (quorum %d, estimator %s)",
			shardIdx, shardN, l.Addr(), *quorum, est.Name())
	} else {
		log.Printf("ArrayTrack server listening on %s (quorum %d, estimator %s)", l.Addr(), *quorum, est.Name())
	}

	ctx, stop := signal.NotifyContext(context.Background(), shutdownSignals()...)
	defer stop()

	if *udpAddr != "" {
		pc, err := net.ListenPacket("udp", *udpAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("UDP capture feed on %s (batch-frame datagrams)", pc.LocalAddr())
		go func() {
			if err := backend.ServeUDP(ctx, pc); err != nil && ctx.Err() == nil {
				log.Printf("udp feed: %v", err)
			}
		}()
	}

	// The degraded-serving janitor: without it, a group stuck below
	// quorum would only be examined when its client's next capture
	// arrives — exactly what never happens once an AP dies.
	if *degradedQuorum > 0 {
		go func() {
			t := time.NewTicker(*degradedAfter / 2)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if flushed, dropped := backend.Sweep(); flushed > 0 || dropped > 0 {
						log.Printf("sweep: %d degraded flushes, %d stale groups dropped", flushed, dropped)
					}
				}
			}
		}()
		log.Printf("degraded serving: quorum %d after %v (sweep every %v)",
			*degradedQuorum, *degradedAfter, *degradedAfter/2)
	}

	opsSrv := &ops.Server{
		Engine:         eng,
		SynthCache:     cfg.SynthCache,
		Steering:       cfg.Steering,
		PendingClients: backend.PendingClients,
		Backend:        backend,
		Sink:           sink,
	}
	if *knobsPath != "" {
		applyKnobsFile(opsSrv, *knobsPath)
		notifyReloadSignal(ctx, func() { applyKnobsFile(opsSrv, *knobsPath) })
	}
	var httpSrv *http.Server
	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		httpSrv = &http.Server{Handler: opsSrv.Handler()}
		log.Printf("ops endpoint on http://%s (/metrics /clients /knobs /healthz)", hl.Addr())
		go func() {
			if err := httpSrv.Serve(hl); err != nil && err != http.ErrServerClosed {
				log.Printf("ops endpoint: %v", err)
			}
		}()
	}

	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					logStats(eng, backend)
				}
			}
		}()
	}
	notifyStatsSignal(ctx, func() { logStats(eng, backend) })

	if err := backend.Serve(ctx, l); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}

	// Graceful drain: the listener is already closed (Serve returned),
	// so no new captures arrive; Drain flushes every admitted job
	// through the scheduler and waits for the workers, leaving the
	// tracker quiescent for the snapshot.
	log.Print("draining: flushing in-flight jobs")
	eng.Drain()
	if *snapshotPath != "" {
		snap := ops.NewSnapshot(tracker, time.Now().UnixNano())
		if err := ops.Save(*snapshotPath, snap); err != nil {
			log.Fatal(err)
		}
		log.Printf("snapshot: %d client tracks written to %s", len(snap.Tracks), *snapshotPath)
	}
	if httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		httpSrv.Shutdown(shutCtx)
		cancel()
	}
	log.Print("drained, exiting")
}
