// Command arraytrack-server is the central ArrayTrack backend (Figure
// 1, right half): it accepts capture records from AP nodes over TCP,
// groups them per client, and prints a location estimate once a quorum
// of APs has reported.
//
// AP identities 1–6 map to the simulated testbed's sites, so the server
// knows each reporting array's position and orientation.
//
//	arraytrack-server -listen :7100 -quorum 3
//
// Pair with cmd/arraytrack-ap.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/testbed"
)

func main() {
	listen := flag.String("listen", ":7100", "TCP listen address")
	quorum := flag.Int("quorum", 3, "distinct APs required before localizing")
	window := flag.Duration("window", time.Second, "capture grouping window")
	workers := flag.Int("workers", 0, "localization worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	tb := testbed.New()
	capOpt := testbed.DefaultCaptureOptions()
	cfg := core.DefaultConfig(tb.Wavelength)

	eng := engine.New(engine.Options{Workers: *workers, Config: cfg})
	defer eng.Close()

	sink := &engine.CaptureSink{
		Engine: eng,
		Resolve: func(apID uint32) *core.AP {
			idx := int(apID) - 1
			if idx < 0 || idx >= len(tb.Sites) {
				log.Printf("unknown AP id %d, skipping", apID)
				return nil
			}
			return &core.AP{Array: tb.NewArray(tb.Sites[idx], capOpt)}
		},
		Min: tb.Plan.Min,
		Max: tb.Plan.Max,
		OnResult: func(r engine.Result) {
			if r.Err != nil {
				log.Printf("client %d: localization failed: %v", r.ClientID, r.Err)
				return
			}
			fmt.Printf("client %d located at %v  (%d APs)\n",
				r.ClientID, r.Pos, len(r.Spectra))
		},
	}
	backend := server.NewBackendDispatcher(*quorum, *window, sink)

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ArrayTrack server listening on %s (quorum %d)", l.Addr(), *quorum)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := backend.Serve(ctx, l); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}
