// Command arraytrack-server is the central ArrayTrack backend (Figure
// 1, right half): it accepts capture records from AP nodes over TCP,
// groups them per client, and prints a location estimate once a quorum
// of APs has reported.
//
// AP identities 1–6 map to the simulated testbed's sites, so the server
// knows each reporting array's position and orientation.
//
//	arraytrack-server -listen :7100 -quorum 3
//
// Pair with cmd/arraytrack-ap.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/testbed"
)

func main() {
	listen := flag.String("listen", ":7100", "TCP listen address")
	quorum := flag.Int("quorum", 3, "distinct APs required before localizing")
	window := flag.Duration("window", time.Second, "capture grouping window")
	flag.Parse()

	tb := testbed.New()
	capOpt := testbed.DefaultCaptureOptions()
	cfg := core.DefaultConfig(tb.Wavelength)

	backend := server.NewBackend(*quorum, *window, func(clientID uint32, cs []server.Capture) {
		// Group captures per AP and rebuild the pipeline inputs.
		byAP := map[uint32][]core.FrameCapture{}
		for _, c := range cs {
			byAP[c.APID] = append(byAP[c.APID], core.FrameCapture{Streams: c.Streams})
		}
		var aps []*core.AP
		var captures [][]core.FrameCapture
		for apID, frames := range byAP {
			idx := int(apID) - 1
			if idx < 0 || idx >= len(tb.Sites) {
				log.Printf("client %d: unknown AP id %d, skipping", clientID, apID)
				continue
			}
			aps = append(aps, &core.AP{Array: tb.NewArray(tb.Sites[idx], capOpt)})
			captures = append(captures, frames)
		}
		start := time.Now()
		pos, _, err := core.LocateClient(aps, captures, tb.Plan.Min, tb.Plan.Max, cfg)
		if err != nil {
			log.Printf("client %d: localization failed: %v", clientID, err)
			return
		}
		fmt.Printf("client %d located at %v  (%d APs, %d captures, %v)\n",
			clientID, pos, len(aps), len(cs), time.Since(start).Round(time.Millisecond))
	})

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ArrayTrack server listening on %s (quorum %d)", l.Addr(), *quorum)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := backend.Serve(ctx, l); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}
