// Command arraytrack-server is the central ArrayTrack backend (Figure
// 1, right half): it accepts capture records from AP nodes over TCP,
// groups them per client, localizes once a quorum of APs has reported,
// and streams both the raw fix and the Kalman-smoothed track for every
// client.
//
// AP identities 1–6 map to the simulated testbed's sites, so the server
// knows each reporting array's position and orientation.
//
// Steady-state serving is predictive by default: a client with a live
// Kalman track is localized inside its prediction's gate region and
// verified, falling back to the full grid otherwise (-predict=false
// restores unconditional full-grid serving). The scheduler applies
// per-client admission quotas (-client-quota) and batch-queue ageing
// (-age-limit) so neither a hostile flood nor the latency lane can
// starve anyone.
//
//	arraytrack-server -listen :7100 -quorum 3
//
// Engine and tracker counters are logged every -stats-every interval
// and, on Unix, dumped on demand with SIGUSR1. Pair with
// cmd/arraytrack-ap.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/music"
	"repro/internal/server"
	"repro/internal/testbed"
)

func logStats(eng *engine.Engine, backend *server.Backend) {
	st := eng.Stats()
	log.Printf("stats: submitted=%d (prio=%d) completed=%d fixes=%d failures=%d rejected=%d (quota=%d) tracked=%d gate_rejects=%d queued=%d prio_queued=%d pending_clients=%d workers=%d",
		st.Submitted, st.PrioritySubmitted, st.Completed, st.Fixes, st.Failures, st.Rejected, st.QuotaRejected,
		st.TrackedClients, st.TrackRejects, st.Queued, st.PriorityQueued, backend.PendingClients(), st.Workers)
	log.Printf("sched: aged=%d stolen=%d | predictive: served=%d fallbacks no_track=%d border=%d gate=%d error=%d",
		st.AgedBatch, st.PriorityStolen, st.Predicted,
		st.PredictFallbackNoTrack, st.PredictFallbackBorder, st.PredictFallbackGate, st.PredictFallbackError)
	log.Printf("synth cache: entries=%d bytes=%d budget=%d hits=%d misses=%d evictions=%d slices=%d",
		st.SynthLUTs, st.SynthBytes, st.SynthBudget, st.SynthHits, st.SynthMisses, st.SynthEvictions, st.SynthSlices)
	log.Printf("steering cache: entries=%d bytes=%d budget=%d hits=%d misses=%d evictions=%d",
		st.SteeringTables, st.SteeringBytes, st.SteeringBudget, st.SteeringHits, st.SteeringMisses, st.SteeringEvictions)
}

func main() {
	listen := flag.String("listen", ":7100", "TCP listen address")
	quorum := flag.Int("quorum", 3, "distinct APs required before localizing")
	window := flag.Duration("window", time.Second, "capture grouping window")
	workers := flag.Int("workers", 0, "localization worker pool size (0 = GOMAXPROCS)")
	estimator := flag.String("estimator", "music", "AoA estimator: music, bartlett, or baseline")
	trackTTL := flag.Duration("track-ttl", 30*time.Second, "evict a client's track after this much silence")
	statsEvery := flag.Duration("stats-every", 30*time.Second, "period for the stats log line (0 disables)")
	synthBudget := flag.Int64("synth-cache-budget", core.DefaultSynthCacheBudget,
		"byte budget for the synthesis LUT cache (ad-hoc region queries churn it; 0 = unbounded)")
	steeringBudget := flag.Int64("steering-cache-budget", music.DefaultSteeringCacheBudget,
		"byte budget for the steering-vector table cache (0 = unbounded)")
	clientQuota := flag.Int("client-quota", 16,
		"max jobs one client may hold admitted-but-uncompleted across both scheduler lanes (0 = unlimited)")
	ageLimit := flag.Duration("age-limit", 0,
		"batch job head-of-line wait beyond which it is served ahead of priority traffic (0 = scheduler default, negative disables)")
	predict := flag.Bool("predict", true,
		"serve clients with live tracks from the track-guided predictive region (verified, full-grid fallback)")
	predictSigma := flag.Float64("predict-sigma", engine.DefaultPredictSigma,
		"gate-covariance inflation for the predictive search region, in sigmas (clamped up to the tracker gate)")
	flag.Parse()

	tb := testbed.New()
	capOpt := testbed.DefaultCaptureOptions()
	cfg := core.DefaultConfig(tb.Wavelength)
	est, err := music.EstimatorByName(*estimator)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Estimator = est
	if *synthBudget != core.SharedSynthCache().Budget() {
		cfg.SynthCache = core.NewSynthCacheBudget(*synthBudget)
	}
	if *steeringBudget != music.SharedSteeringCache().Budget() {
		cfg.Steering = music.NewSteeringCacheBudget(*steeringBudget)
	}

	tracker := engine.NewTracker(engine.TrackerOptions{TTL: *trackTTL})
	eng := engine.New(engine.Options{
		Workers:      *workers,
		Config:       cfg,
		Tracker:      tracker,
		ClientQuota:  *clientQuota,
		AgeLimit:     *ageLimit,
		Predict:      *predict,
		PredictSigma: *predictSigma,
	})
	defer eng.Close()

	sink := &engine.CaptureSink{
		Engine: eng,
		Resolve: func(apID uint32) *core.AP {
			idx := int(apID) - 1
			if idx < 0 || idx >= len(tb.Sites) {
				log.Printf("unknown AP id %d, skipping", apID)
				return nil
			}
			return &core.AP{Array: tb.NewArray(tb.Sites[idx], capOpt)}
		},
		Min: tb.Plan.Min,
		Max: tb.Plan.Max,
		OnResult: func(r engine.Result) {
			if r.Err != nil {
				log.Printf("client %d: localization failed: %v", r.ClientID, r.Err)
				return
			}
			how := "full-grid"
			if r.Predicted {
				how = "track-guided"
			}
			fmt.Printf("client %d located at %v  (%d APs, %s)\n",
				r.ClientID, r.Pos, len(r.Spectra), how)
		},
		OnTrack: func(u engine.TrackUpdate) {
			status := "tracked"
			if !u.Accepted {
				status = "gated"
			}
			fmt.Printf("client %d %s at (%.2f,%.2f) vel (%.2f,%.2f) m/s  raw (%.2f,%.2f)\n",
				u.ClientID, status, u.Smoothed.X, u.Smoothed.Y, u.Vel.X, u.Vel.Y, u.Raw.X, u.Raw.Y)
		},
	}
	backend := server.NewBackendDispatcher(*quorum, *window, sink)

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ArrayTrack server listening on %s (quorum %d, estimator %s)", l.Addr(), *quorum, est.Name())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					logStats(eng, backend)
				}
			}
		}()
	}
	notifyStatsSignal(ctx, func() { logStats(eng, backend) })

	if err := backend.Serve(ctx, l); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}
