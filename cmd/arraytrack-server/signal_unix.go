//go:build unix

package main

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// shutdownSignals are the signals that trigger the graceful drain:
// stop accepting, flush in-flight jobs, write the snapshot, exit.
func shutdownSignals() []os.Signal {
	return []os.Signal{os.Interrupt, syscall.SIGTERM}
}

// notifyStatsSignal dumps engine/tracker stats whenever the process
// receives SIGUSR1 (kill -USR1 <pid>).
func notifyStatsSignal(ctx context.Context, dump func()) {
	notifyOn(ctx, syscall.SIGUSR1, dump)
}

// notifyReloadSignal re-applies the -knobs file whenever the process
// receives SIGHUP (kill -HUP <pid>), the conventional reload signal.
func notifyReloadSignal(ctx context.Context, reload func()) {
	notifyOn(ctx, syscall.SIGHUP, reload)
}

func notifyOn(ctx context.Context, sig os.Signal, fn func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sig)
	go func() {
		for {
			select {
			case <-ctx.Done():
				signal.Stop(ch)
				return
			case <-ch:
				fn()
			}
		}
	}()
}
