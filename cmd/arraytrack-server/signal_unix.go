//go:build unix

package main

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// notifyStatsSignal dumps engine/tracker stats whenever the process
// receives SIGUSR1 (kill -USR1 <pid>).
func notifyStatsSignal(ctx context.Context, dump func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	go func() {
		for {
			select {
			case <-ctx.Done():
				signal.Stop(ch)
				return
			case <-ch:
				dump()
			}
		}
	}()
}
