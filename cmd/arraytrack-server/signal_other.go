//go:build !unix

package main

import "context"

// notifyStatsSignal is a no-op on platforms without SIGUSR1; the
// periodic -stats-every log line still runs.
func notifyStatsSignal(context.Context, func()) {}
