//go:build !unix

package main

import (
	"context"
	"os"
)

// shutdownSignals: only the interrupt is portable off Unix.
func shutdownSignals() []os.Signal { return []os.Signal{os.Interrupt} }

// notifyStatsSignal is a no-op on platforms without SIGUSR1; the
// periodic -stats-every log line still runs.
func notifyStatsSignal(context.Context, func()) {}

// notifyReloadSignal is a no-op on platforms without SIGHUP; knobs can
// still be hot-reloaded through the HTTP endpoint.
func notifyReloadSignal(context.Context, func()) {}
