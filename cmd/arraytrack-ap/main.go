// Command arraytrack-ap emulates one ArrayTrack access point (Figure 1,
// left half): it "overhears" frames from a simulated client through the
// office channel model, detects the preamble, records the capture into
// a circular buffer, and streams the samples to the central server over
// TCP.
//
//	arraytrack-ap -id 1 -server localhost:7100 -client 20,6.5 -frames 3
//
// Run several instances with different -id values (1–6) against one
// arraytrack-server to watch a live multi-AP location fix.
//
// With -retries N the upload survives network weather: it reconnects
// with jittered exponential backoff (first delay -backoff), replays
// the in-flight batch, and logs one line per attempt. Exit codes then
// distinguish the failure classes: 0 delivered, 75 (EX_TEMPFAIL) the
// server never came back within N attempts, 1 a fatal error retrying
// cannot fix.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/server"
	"repro/internal/testbed"
	"repro/internal/wifi"
)

func main() {
	id := flag.Int("id", 1, "AP identity (1–6, selects the testbed site)")
	addr := flag.String("server", "localhost:7100", "ArrayTrack server address")
	clientPos := flag.String("client", "20,6.5", "simulated client position x,y in metres")
	clientID := flag.Uint("clientid", 1, "client identifier reported to the server")
	frames := flag.Int("frames", 3, "frames to capture and upload")
	seed := flag.Int64("seed", 0, "noise seed (0 = derived from AP id)")
	regionStr := flag.String("region", "", "ad-hoc search region minx,miny,maxx,maxy[,cell] to attach to the captures")
	priority := flag.Bool("priority", false, "mark captures for the server's latency-priority lane")
	batch := flag.Int("batch", 0, "upload v3 batch frames of up to this many captures (0 = per-record v1/v2)")
	udp := flag.Bool("udp", false, "upload batch-frame datagrams over UDP instead of a TCP stream")
	retries := flag.Int("retries", 0,
		"reconnect and replay on transient upload errors, up to this many consecutive attempts (0 = fail on the first error; TCP only)")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "first reconnect delay (doubles per attempt, jittered)")
	flag.Parse()

	tb := testbed.New()
	if *id < 1 || *id > len(tb.Sites) {
		log.Fatalf("ap id %d out of range 1–%d", *id, len(tb.Sites))
	}
	var cx, cy float64
	if _, err := fmt.Sscanf(strings.TrimSpace(*clientPos), "%f,%f", &cx, &cy); err != nil {
		log.Fatalf("bad -client %q: %v", *clientPos, err)
	}
	client := geom.Pt(cx, cy)
	if !tb.Plan.Contains(client) {
		log.Fatalf("client %v outside the %vx%v m floor", client, testbed.FloorW, testbed.FloorH)
	}
	if *seed == 0 {
		*seed = int64(*id)
	}

	var region core.Region
	if *regionStr != "" {
		parts := strings.Split(strings.TrimSpace(*regionStr), ",")
		fields := []*float64{&region.Min.X, &region.Min.Y, &region.Max.X, &region.Max.Y, &region.Cell}
		if len(parts) != 4 && len(parts) != 5 {
			log.Fatalf("bad -region %q: want minx,miny,maxx,maxy[,cell]", *regionStr)
		}
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				log.Fatalf("bad -region %q: %v", *regionStr, err)
			}
			*fields[i] = v
		}
		if err := region.Validate(); err != nil {
			log.Fatal(err)
		}
	}

	site := tb.Sites[*id-1]
	capOpt := testbed.DefaultCaptureOptions()
	arr := tb.NewArray(site, capOpt)
	rng := rand.New(rand.NewSource(*seed))
	det := server.DefaultDetector()
	node := server.NewAPNode(uint32(*id), 16)
	node.Region = region
	node.Priority = *priority

	// Simulate the client's transmissions embedded in a longer sample
	// stream, run real preamble detection, and buffer the captures.
	preamble := wifi.Preamble40()
	for f := 0; f < *frames; f++ {
		pos := client.Add(geom.Vec{
			X: (rng.Float64()*2 - 1) * capOpt.MoveSigma,
			Y: (rng.Float64()*2 - 1) * capOpt.MoveSigma,
		})
		rec := tb.Model.Receive(pos, arr, preamble, channel.RxConfig{
			TxPowerDBm:    capOpt.TxPowerDBm,
			NoiseFloorDBm: capOpt.NoiseFloorDBm,
			Rng:           rng,
		})
		start, ok := det.Detect(rec.Samples)
		if !ok {
			// Detection margin: the simulated stream holds exactly the
			// preamble, so fall back to sample 0.
			start = 0
		}
		window := det.Extract(rec.Samples, start)
		node.Record(uint32(*clientID), time.Now(), window)
		log.Printf("AP %d: captured frame %d (detected at sample %d, SNR %.1f dB)",
			*id, f+1, start, rec.SNRdB)
	}

	network := "tcp"
	if *udp {
		network = "udp"
	}
	ctx := context.Background()
	var err error
	if *retries > 0 && !*udp {
		// Resilient upload: dial our own connections, reconnect with
		// jittered backoff on network weather, replay the in-flight
		// batch. Exit codes split the outcomes for supervisors: 0
		// delivered, 75 (EX_TEMPFAIL) the network never came back, 1
		// anything that retrying cannot fix.
		b := *batch
		if b <= 0 {
			b = 16
		}
		err = node.UploadRetry(ctx, func(ctx context.Context) (net.Conn, error) {
			return net.Dial(network, *addr)
		}, server.RetryOptions{
			Batch:       b,
			MinBackoff:  *backoff,
			MaxAttempts: *retries,
			OnAttempt: func(attempt int, d time.Duration, err error) {
				log.Printf("AP %d: upload attempt %d/%d failed (%v), reconnecting in %v",
					*id, attempt, *retries, err, d.Round(time.Millisecond))
			},
		})
		if errors.Is(err, server.ErrRetriesExhausted) {
			log.Printf("AP %d: giving up: %v", *id, err)
			os.Exit(75)
		}
	} else {
		var conn net.Conn
		conn, err = net.Dial(network, *addr)
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		switch {
		case *udp:
			err = node.UploadDatagrams(ctx, conn, server.MaxDatagramBytes)
		case *batch > 0:
			err = node.UploadBatch(ctx, conn, *batch)
		default:
			err = node.Upload(ctx, conn)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("AP %d: uploaded %d frame(s) to %s over %s", *id, *frames, *addr, network)
}
