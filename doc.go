// Package arraytrack is a from-scratch Go reproduction of "ArrayTrack:
// A Fine-Grained Indoor Location System" (Xiong & Jamieson, NSDI 2013).
//
// The implementation lives under internal/: the numerical substrate
// (mat, dsp, geom), the radio substrate (wifi, channel, array), the
// paper's contribution (music, core), the system architecture (server),
// the RSS comparators (baseline), and the simulated office testbed with
// one experiment runner per table and figure of the paper's evaluation
// (testbed). Executables are under cmd/ and runnable walkthroughs under
// examples/.
//
// The benchmarks in bench_test.go regenerate every evaluation artifact;
// see EXPERIMENTS.md for paper-versus-measured numbers and README.md
// for a tour.
package arraytrack
