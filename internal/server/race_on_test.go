//go:build race

package server

// raceEnabled: allocation-count assertions skip under the race
// detector (sync.Pool deliberately drops items there, so pooled paths
// allocate on purpose).
const raceEnabled = true
