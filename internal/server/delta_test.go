package server

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// decodeFrame decodes one v3 frame into a pooled workspace; the caller
// releases.
func decodeFrame(t *testing.T, frame []byte) []Capture {
	t.Helper()
	ws := GetIngestWorkspace()
	caps, err := ReadBatchInto(bytes.NewReader(frame), ws)
	if err != nil {
		ws.Discard()
		t.Fatal(err)
	}
	return caps
}

// TestBatchDeltaRoundTrip pins the compact timestamp form against the
// absolute one: same captures, a frame 4 bytes per capture smaller
// (minus the 8-byte base), and a decode that is bit-identical in every
// field — timestamps included, which is what "representable" buys.
func TestBatchDeltaRoundTrip(t *testing.T) {
	baseline := LeasedIngestWorkspaces()
	rng := rand.New(rand.NewSource(7))
	caps := []Capture{
		batchCapture(rng, 4, 16, false, false),
		batchCapture(rng, 4, 16, true, true),
		batchCapture(rng, 2, 8, false, true),
		batchCapture(rng, 8, 16, true, false),
	}
	abs, err := AppendBatch(nil, caps)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := AppendBatchDelta(nil, caps)
	if err != nil {
		t.Fatal(err)
	}
	wantSaved := 4*len(caps) - baseTSSize
	if got := len(abs) - len(delta); got != wantSaved {
		t.Fatalf("delta frame saves %d bytes, want %d", got, wantSaved)
	}
	da := decodeFrame(t, abs)
	dd := decodeFrame(t, delta)
	if len(da) != len(dd) {
		t.Fatalf("decode count mismatch: %d vs %d", len(da), len(dd))
	}
	for i := range da {
		a, d := &da[i], &dd[i]
		if a.APID != d.APID || a.ClientID != d.ClientID || a.Seq != d.Seq ||
			a.Priority != d.Priority || a.Region != d.Region {
			t.Errorf("capture %d: metadata differs between forms", i)
		}
		if !a.Timestamp.Equal(d.Timestamp) {
			t.Errorf("capture %d: timestamp %v (absolute) vs %v (delta)", i, a.Timestamp, d.Timestamp)
		}
		if !a.Timestamp.Equal(caps[i].Timestamp.Truncate(time.Microsecond)) {
			t.Errorf("capture %d: decode lost the original timestamp", i)
		}
		if !sameBits(a.Streams, d.Streams) {
			t.Errorf("capture %d: streams differ between forms", i)
		}
	}
	ReleaseAll(da)
	ReleaseAll(dd)
	if leaked := LeasedIngestWorkspaces() - baseline; leaked != 0 {
		t.Fatalf("leaked %d workspaces", leaked)
	}
}

// TestBatchDeltaFallsBackOnWideSpan: a burst whose timestamps span more
// than 2³²−1 µs cannot use deltas; the encoder must emit the absolute
// form byte-for-byte rather than corrupt timestamps.
func TestBatchDeltaFallsBackOnWideSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	caps := []Capture{
		batchCapture(rng, 2, 4, false, false),
		batchCapture(rng, 2, 4, false, false),
	}
	caps[1].Timestamp = caps[0].Timestamp.Add(72 * time.Minute) // > MaxUint32 µs
	abs, err := AppendBatch(nil, caps)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := AppendBatchDelta(nil, caps)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(abs, delta) {
		t.Fatal("wide-span burst did not fall back to the absolute form")
	}
}

// TestBatchDeltaMixedStream: a reader must accept interleaved absolute
// and delta frames on one connection — the mixed-version contract that
// lets writers upgrade independently.
func TestBatchDeltaMixedStream(t *testing.T) {
	baseline := LeasedIngestWorkspaces()
	rng := rand.New(rand.NewSource(9))
	burstA := []Capture{batchCapture(rng, 2, 8, false, false)}
	burstB := []Capture{batchCapture(rng, 2, 8, true, false)}
	var stream []byte
	var err error
	if stream, err = AppendBatch(stream, burstA); err != nil {
		t.Fatal(err)
	}
	if stream, err = AppendBatchDelta(stream, burstB); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(stream)
	for frame, want := 0, [][]Capture{burstA, burstB}; frame < 2; frame++ {
		ws := GetIngestWorkspace()
		caps, err := ReadFrameInto(r, ws)
		if err != nil {
			ws.Discard()
			t.Fatalf("frame %d: %v", frame, err)
		}
		if len(caps) != 1 || !caps[0].Timestamp.Equal(want[frame][0].Timestamp.Truncate(time.Microsecond)) {
			t.Fatalf("frame %d decoded wrong", frame)
		}
		ReleaseAll(caps)
	}
	if leaked := LeasedIngestWorkspaces() - baseline; leaked != 0 {
		t.Fatalf("leaked %d workspaces", leaked)
	}
}
