package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
)

// Detector locates 802.11 preambles in continuous per-antenna sample
// streams using the modified Schmidl–Cox metric of §2.1 and cuts out
// the capture window that gets buffered and shipped.
type Detector struct {
	// Period is the short-training-symbol repetition period in
	// samples (32 at the 40 Msps front-end rate).
	Period int
	// Threshold is the plateau level that counts as detection.
	Threshold float64
	// MinRun is the number of consecutive above-threshold samples
	// required; spanning several short symbols rejects noise and is
	// what lets detection work below decoding SNR (§4.3.4).
	MinRun int
	// CaptureLen is how many samples per antenna to record from the
	// detected start.
	CaptureLen int
}

// DefaultDetector returns the §2.1 configuration at 40 Msps: detection
// over the short training symbols with a 640-sample (16 µs) capture.
func DefaultDetector() *Detector {
	return &Detector{Period: 32, Threshold: 0.8, MinRun: 96, CaptureLen: 640}
}

// Detect scans antenna 0's stream and returns the detected frame start.
func (d *Detector) Detect(streams [][]complex128) (int, bool) {
	if len(streams) == 0 {
		return 0, false
	}
	return dsp.DetectFrame(streams[0], d.Period, d.Threshold, d.MinRun)
}

// Extract cuts the capture window at start from every stream, clamping
// to stream length.
func (d *Detector) Extract(streams [][]complex128, start int) [][]complex128 {
	out := make([][]complex128, len(streams))
	for k, st := range streams {
		end := start + d.CaptureLen
		if end > len(st) {
			end = len(st)
		}
		if start >= end {
			out[k] = nil
			continue
		}
		w := make([]complex128, end-start)
		copy(w, st[start:end])
		out[k] = w
	}
	return out
}

// APNode is the access-point-side half of Figure 1: it owns the
// circular buffer and streams captures to the backend.
type APNode struct {
	// ID identifies this AP in capture records.
	ID uint32
	// Buffer holds detected frames awaiting upload.
	Buffer *CircularBuffer
	// Region, when non-zero, stamps every recorded capture with an
	// ad-hoc search region (shipped as a version-2 wire record);
	// Priority marks captures for the backend engine's latency lane.
	// Set both before Record.
	Region core.Region
	// Priority marks recorded captures as latency-priority.
	Priority bool

	seq uint32
	mu  sync.Mutex
}

// NewAPNode returns an AP node with the given buffer capacity.
func NewAPNode(id uint32, bufferCap int) *APNode {
	return &APNode{ID: id, Buffer: NewCircularBuffer(bufferCap)}
}

// Record stamps a capture with this AP's identity and sequence number
// and buffers it.
func (n *APNode) Record(clientID uint32, ts time.Time, streams [][]complex128) {
	n.mu.Lock()
	seq := n.seq
	n.seq++
	n.mu.Unlock()
	n.Buffer.Push(Capture{
		APID:      n.ID,
		ClientID:  clientID,
		Seq:       seq,
		Timestamp: ts,
		Region:    n.Region,
		Priority:  n.Priority,
		Streams:   streams,
	})
}

// Upload drains the buffer to w, encoding each capture in wire format.
// It returns when the buffer is empty or the context is cancelled.
func (n *APNode) Upload(ctx context.Context, w io.Writer) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		c, ok := n.Buffer.Pop()
		if !ok {
			return nil
		}
		if err := WriteCapture(w, &c); err != nil {
			return err
		}
	}
}

// LocateFunc is the backend callback invoked once enough APs have
// reported captures for a client: it receives every grouped capture
// (possibly several frames per AP).
type LocateFunc func(clientID uint32, captures []Capture)

// Dispatcher receives a client's grouped captures when a quorum of APs
// has reported. Unlike LocateFunc — which the seed called inline on
// the ingest path, serializing every location fix behind one lock —
// a Dispatcher is expected to enqueue the work (e.g. onto the
// localization engine's worker pool) and return promptly.
type Dispatcher interface {
	Dispatch(clientID uint32, captures []Capture)
}

// pendingShards is the number of independently locked groups the
// per-client pending state is split across. Captures for different
// clients arriving on different connections contend only when their
// clients hash to the same shard.
const pendingShards = 64

type backendShard struct {
	mu      sync.Mutex
	pending map[uint32][]Capture // keyed by client
}

// Backend is the central ArrayTrack server: it ingests capture records
// from every AP, groups them by client, and hands the group to the
// Dispatcher (or legacy Locate callback) when a quorum of distinct APs
// has reported within the grouping window. Per-client state is sharded
// so concurrent AP connections do not serialize on one lock.
type Backend struct {
	// Quorum is the number of distinct APs required before location
	// synthesis runs.
	Quorum int
	// Window is the maximum capture age retained for grouping (the
	// ≤100 ms rule of §2.4 applies downstream; the backend keeps a
	// slightly generous margin).
	Window time.Duration
	// Locate is invoked inline with the grouped captures when no
	// Dispatcher is set. One of Locate or Dispatcher must be non-nil.
	Locate LocateFunc
	// Dispatcher, when non-nil, receives quorum flushes instead of
	// Locate — the engine handoff path.
	Dispatcher Dispatcher

	shards [pendingShards]backendShard
}

// NewBackend returns a backend that runs locate inline on each quorum
// flush (the seed behaviour).
func NewBackend(quorum int, window time.Duration, locate LocateFunc) *Backend {
	b := &Backend{Quorum: quorum, Window: window, Locate: locate}
	b.initShards()
	return b
}

// NewBackendDispatcher returns a backend that hands quorum flushes to
// d — typically an engine.CaptureSink — instead of localizing inline.
func NewBackendDispatcher(quorum int, window time.Duration, d Dispatcher) *Backend {
	b := &Backend{Quorum: quorum, Window: window, Dispatcher: d}
	b.initShards()
	return b
}

func (b *Backend) initShards() {
	for i := range b.shards {
		b.shards[i].pending = make(map[uint32][]Capture)
	}
}

func (b *Backend) shard(clientID uint32) *backendShard {
	// Fibonacci-hash the client ID so sequential IDs spread across
	// shards instead of clustering mod a power of two.
	return &b.shards[(clientID*2654435761)>>26%pendingShards]
}

// Ingest accepts one capture. When the client's pending set spans at
// least Quorum distinct APs, the captures are flushed to the
// Dispatcher (or Locate) and cleared. Stale captures outside Window of
// the newest are dropped. Only the client's shard is locked, and the
// flush itself runs outside the lock.
func (b *Backend) Ingest(c *Capture) {
	sh := b.shard(c.ClientID)
	sh.mu.Lock()
	list := append(sh.pending[c.ClientID], *c)
	// Evict stale entries relative to the newest timestamp.
	newest := list[0].Timestamp
	for _, e := range list {
		if e.Timestamp.After(newest) {
			newest = e.Timestamp
		}
	}
	fresh := list[:0]
	for _, e := range list {
		if newest.Sub(e.Timestamp) <= b.Window {
			fresh = append(fresh, e)
		}
	}
	aps := make(map[uint32]bool)
	for _, e := range fresh {
		aps[e.APID] = true
	}
	if len(aps) >= b.Quorum {
		delete(sh.pending, c.ClientID)
		sh.mu.Unlock()
		if b.Dispatcher != nil {
			b.Dispatcher.Dispatch(c.ClientID, fresh)
		} else {
			b.Locate(c.ClientID, fresh)
		}
		return
	}
	sh.pending[c.ClientID] = append([]Capture(nil), fresh...)
	sh.mu.Unlock()
}

// PendingClients returns the number of clients with partially grouped
// captures (diagnostics).
func (b *Backend) PendingClients() int {
	n := 0
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		n += len(sh.pending)
		sh.mu.Unlock()
	}
	return n
}

// ServeConn reads capture records from r until EOF or error, ingesting
// each. A clean EOF returns nil.
func (b *Backend) ServeConn(r io.Reader) error {
	for {
		c, err := ReadCapture(r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		b.Ingest(c)
	}
}

// Serve accepts connections from l until the context is cancelled,
// running ServeConn for each in its own goroutine.
func (b *Backend) Serve(ctx context.Context, l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	go func() {
		<-ctx.Done()
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			_ = b.ServeConn(conn)
		}()
	}
}

// Latency itemizes the end-to-end budget of §4.4.
type Latency struct {
	// Detection is Td: preamble air time until detection completes
	// (16 µs of training symbols).
	Detection time.Duration
	// Transfer is Tt: serialization of the capture onto the AP-server
	// link.
	Transfer time.Duration
	// Processing is Tp: server-side spectrum computation plus
	// synthesis.
	Processing time.Duration
}

// Total returns the summed latency the system adds after the packet
// ends.
func (l Latency) Total() time.Duration {
	return l.Detection + l.Transfer + l.Processing
}

// TransferTime returns the §4.4 serialization-time model for a capture
// of the given dimensions over a link of linkMbps.
func TransferTime(nAnt, nSamp int, linkMbps float64) time.Duration {
	bits := float64(RecordSize(nAnt, nSamp) * 8)
	return time.Duration(bits / (linkMbps * 1e6) * float64(time.Second))
}
