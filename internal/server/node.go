package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
)

// Detector locates 802.11 preambles in continuous per-antenna sample
// streams using the modified Schmidl–Cox metric of §2.1 and cuts out
// the capture window that gets buffered and shipped.
type Detector struct {
	// Period is the short-training-symbol repetition period in
	// samples (32 at the 40 Msps front-end rate).
	Period int
	// Threshold is the plateau level that counts as detection.
	Threshold float64
	// MinRun is the number of consecutive above-threshold samples
	// required; spanning several short symbols rejects noise and is
	// what lets detection work below decoding SNR (§4.3.4).
	MinRun int
	// CaptureLen is how many samples per antenna to record from the
	// detected start.
	CaptureLen int
}

// DefaultDetector returns the §2.1 configuration at 40 Msps: detection
// over the short training symbols with a 640-sample (16 µs) capture.
func DefaultDetector() *Detector {
	return &Detector{Period: 32, Threshold: 0.8, MinRun: 96, CaptureLen: 640}
}

// Detect scans antenna 0's stream and returns the detected frame start.
func (d *Detector) Detect(streams [][]complex128) (int, bool) {
	if len(streams) == 0 {
		return 0, false
	}
	return dsp.DetectFrame(streams[0], d.Period, d.Threshold, d.MinRun)
}

// Extract cuts the capture window at start from every stream, clamping
// to stream length.
func (d *Detector) Extract(streams [][]complex128, start int) [][]complex128 {
	out := make([][]complex128, len(streams))
	for k, st := range streams {
		end := start + d.CaptureLen
		if end > len(st) {
			end = len(st)
		}
		if start >= end {
			out[k] = nil
			continue
		}
		w := make([]complex128, end-start)
		copy(w, st[start:end])
		out[k] = w
	}
	return out
}

// APNode is the access-point-side half of Figure 1: it owns the
// circular buffer and streams captures to the backend.
type APNode struct {
	// ID identifies this AP in capture records.
	ID uint32
	// Buffer holds detected frames awaiting upload.
	Buffer *CircularBuffer
	// Region, when non-zero, stamps every recorded capture with an
	// ad-hoc search region (shipped as a version-2 wire record);
	// Priority marks captures for the backend engine's latency lane.
	// Set both before Record.
	Region core.Region
	// Priority marks recorded captures as latency-priority.
	Priority bool
	// CompactTimestamps selects the v3 delta-timestamp frame form for
	// UploadBatch and UploadDatagrams: one base timestamp per frame
	// plus a uint32 µs delta per capture instead of 8 absolute bytes
	// each (automatic absolute fallback when a burst spans more than
	// ~71 minutes).
	CompactTimestamps bool

	seq uint32
	mu  sync.Mutex
}

// NewAPNode returns an AP node with the given buffer capacity.
func NewAPNode(id uint32, bufferCap int) *APNode {
	return &APNode{ID: id, Buffer: NewCircularBuffer(bufferCap)}
}

// Record stamps a capture with this AP's identity and sequence number
// and buffers it.
func (n *APNode) Record(clientID uint32, ts time.Time, streams [][]complex128) {
	n.mu.Lock()
	seq := n.seq
	n.seq++
	n.mu.Unlock()
	n.Buffer.Push(Capture{
		APID:      n.ID,
		ClientID:  clientID,
		Seq:       seq,
		Timestamp: ts,
		Region:    n.Region,
		Priority:  n.Priority,
		Streams:   streams,
	})
}

// Upload drains the buffer to w, encoding each capture in wire format.
// It returns when the buffer is empty or the context is cancelled.
func (n *APNode) Upload(ctx context.Context, w io.Writer) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		c, ok := n.Buffer.Pop()
		if !ok {
			return nil
		}
		if err := WriteCapture(w, &c); err != nil {
			return err
		}
	}
}

// UploadBatch drains the buffer to w in v3 batch frames of up to
// batch captures each — one Write (one syscall) per burst instead of
// two per capture. It returns when the buffer is empty or the context
// is cancelled.
func (n *APNode) UploadBatch(ctx context.Context, w io.Writer, batch int) error {
	if batch < 1 {
		batch = 1
	}
	if batch > MaxBatchCaptures {
		batch = MaxBatchCaptures
	}
	caps := make([]Capture, 0, batch)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		caps = caps[:0]
		for len(caps) < batch {
			c, ok := n.Buffer.Pop()
			if !ok {
				break
			}
			caps = append(caps, c)
		}
		if len(caps) == 0 {
			return nil
		}
		if err := n.writeBatch(w, caps); err != nil {
			return err
		}
	}
}

// writeBatch writes one v3 frame in the node's configured timestamp
// form.
func (n *APNode) writeBatch(w io.Writer, caps []Capture) error {
	if n.CompactTimestamps {
		return WriteBatchDelta(w, caps)
	}
	return WriteBatch(w, caps)
}

// UploadDatagrams drains the buffer to w as batch frames no larger
// than maxBytes each — w is typically a net.Conn dialed to the
// server's UDP port, so every WriteBatch is one datagram (pass
// MaxDatagramBytes). A single capture larger than maxBytes is sent in
// its own frame rather than dropped.
func (n *APNode) UploadDatagrams(ctx context.Context, w io.Writer, maxBytes int) error {
	if maxBytes <= 0 || maxBytes > MaxDatagramBytes {
		maxBytes = MaxDatagramBytes
	}
	var caps []Capture
	var held *Capture
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		caps = caps[:0]
		if held != nil {
			caps = append(caps, *held)
			held = nil
		}
		for len(caps) < MaxBatchCaptures {
			c, ok := n.Buffer.Pop()
			if !ok {
				break
			}
			caps = append(caps, c)
			if len(caps) > 1 && BatchFrameSize(caps) > maxBytes {
				// The newest capture overflows the datagram: hold it
				// for the next frame.
				h := caps[len(caps)-1]
				caps = caps[:len(caps)-1]
				held = &h
				break
			}
		}
		if len(caps) == 0 {
			return nil
		}
		// BatchFrameSize sizes the absolute form; the delta form is
		// never larger, so the packing bound holds for both.
		if err := n.writeBatch(w, caps); err != nil {
			return err
		}
	}
}

// LocateFunc is the backend callback invoked once enough APs have
// reported captures for a client: it receives every grouped capture
// (possibly several frames per AP). The captures — in particular
// their sample streams, which may borrow pooled ingest memory — are
// valid only for the duration of the call; copy anything retained.
type LocateFunc func(clientID uint32, captures []Capture)

// Dispatcher receives a client's grouped captures when a quorum of APs
// has reported. Unlike LocateFunc — which the seed called inline on
// the ingest path, serializing every location fix behind one lock —
// a Dispatcher is expected to enqueue the work (e.g. onto the
// localization engine's worker pool) and return promptly.
//
// The dispatcher takes ownership of the flushed captures: their
// stream buffers may be borrowed from a pooled ingest workspace, and
// each capture must be Released exactly once after its samples are
// consumed (engine.CaptureSink does this when the localization job
// completes). Legacy inline Locate callbacks do not release — the
// backend releases the flush itself after Locate returns.
type Dispatcher interface {
	Dispatch(clientID uint32, captures []Capture)
}

// pendingShards is the number of independently locked groups the
// per-client pending state is split across. Captures for different
// clients arriving on different connections contend only when their
// clients hash to the same shard.
const pendingShards = 64

// pendingGroup is one client's partially grouped captures. Groups are
// recycled through the shard's freelist so the flush→regroup cycle
// reuses the same backing array instead of growing a fresh slice
// capture by capture — the dominant allocation of the batched ingest
// path once decode itself is pooled.
type pendingGroup struct {
	caps []Capture
	// Incremental bounds and distinct-AP set so the hot path never
	// rescans the group: a sweep is only needed when newest-oldest
	// exceeds the window (something may actually be stale) or the AP
	// set outgrew its inline array.
	newest  time.Time
	oldest  time.Time
	aps     [32]uint32
	apsN    int
	apsFull bool
	// firstAt is the wall-clock instant the group went empty→nonempty,
	// the degraded-quorum age reference. Only stamped when degraded
	// serving is enabled (the hot path pays no clock read otherwise).
	firstAt time.Time
}

// reset clears the group's running metadata for its next round. The
// caps slice must already have been taken or released.
func (g *pendingGroup) reset() {
	for i := range g.caps {
		g.caps[i] = Capture{}
	}
	g.caps = g.caps[:0]
	g.newest, g.oldest, g.firstAt = time.Time{}, time.Time{}, time.Time{}
	g.apsN, g.apsFull = 0, false
}

// take removes the group's captures as an exactly-sized flush slice —
// it leaves the backend, so the dispatcher may hold it past this call
// — and resets the group in place, keeping its backing array for the
// client's next round (the retained backing must not pin pooled
// stream buffers, hence the zeroing in reset).
func (g *pendingGroup) take() []Capture {
	flush := make([]Capture, len(g.caps))
	copy(flush, g.caps)
	g.reset()
	return flush
}

// note records one appended capture in the group's running metadata.
func (g *pendingGroup) note(c *Capture) {
	if len(g.caps) == 1 {
		g.newest, g.oldest = c.Timestamp, c.Timestamp
	} else {
		if c.Timestamp.After(g.newest) {
			g.newest = c.Timestamp
		}
		if g.oldest.After(c.Timestamp) {
			g.oldest = c.Timestamp
		}
	}
	if g.apsFull {
		return
	}
	for _, id := range g.aps[:g.apsN] {
		if id == c.APID {
			return
		}
	}
	if g.apsN < len(g.aps) {
		g.aps[g.apsN] = c.APID
		g.apsN++
		return
	}
	g.apsFull = true
}

// compact drops entries stale relative to the newest timestamp,
// releases their pooled buffers, and rebuilds the running metadata.
// It returns the distinct-AP count of the survivors. The distinct
// pass checks each entry against the IDs found so far — O(entries ×
// distinct), never the seed's per-ingest map allocation.
func (g *pendingGroup) compact(window time.Duration) int {
	list := g.caps
	fresh := list[:0]
	for i := range list {
		e := list[i]
		if g.newest.Sub(e.Timestamp) <= window {
			fresh = append(fresh, e)
		} else {
			// A dropped capture never reaches a dispatcher; its pooled
			// buffers go back now.
			e.Release()
		}
	}
	// Zero stale ghosts past the compaction point so the retained
	// backing does not pin released stream buffers.
	for i := len(fresh); i < len(list); i++ {
		list[i] = Capture{}
	}
	g.caps = fresh
	g.oldest = g.newest
	seen := g.aps[:0]
	for i := range fresh {
		if g.oldest.After(fresh[i].Timestamp) {
			g.oldest = fresh[i].Timestamp
		}
		id := fresh[i].APID
		dup := false
		for _, s := range seen {
			if s == id {
				dup = true
				break
			}
		}
		if !dup {
			seen = append(seen, id)
		}
	}
	distinct := len(seen)
	if distinct <= len(g.aps) {
		// seen aliases g.aps unless append spilled to the heap.
		copy(g.aps[:], seen)
		g.apsN, g.apsFull = distinct, false
	} else {
		g.apsN, g.apsFull = 0, true
	}
	return distinct
}

type backendShard struct {
	mu      sync.Mutex
	pending map[uint32]*pendingGroup // keyed by client
}

// group returns the client's pending group, creating it on first
// sight. Groups stay in the map across flushes (reset in place, not
// reallocated), so a client's steady-state ingest touches the map
// read-only. Caller holds the shard lock.
func (sh *backendShard) group(clientID uint32) *pendingGroup {
	g := sh.pending[clientID]
	if g == nil {
		g = &pendingGroup{}
		sh.pending[clientID] = g
	}
	return g
}

// Backend is the central ArrayTrack server: it ingests capture records
// from every AP, groups them by client, and hands the group to the
// Dispatcher (or legacy Locate callback) when a quorum of distinct APs
// has reported within the grouping window. Per-client state is sharded
// so concurrent AP connections do not serialize on one lock.
type Backend struct {
	// Quorum is the number of distinct APs required before location
	// synthesis runs.
	Quorum int
	// Window is the maximum capture age retained for grouping (the
	// ≤100 ms rule of §2.4 applies downstream; the backend keeps a
	// slightly generous margin).
	Window time.Duration
	// Locate is invoked inline with the grouped captures when no
	// Dispatcher is set. One of Locate or Dispatcher must be non-nil.
	Locate LocateFunc
	// Dispatcher, when non-nil, receives quorum flushes instead of
	// Locate — the engine handoff path.
	Dispatcher Dispatcher

	// IdleTimeout, when positive, bounds how long ServeConn waits for
	// the next byte from a connection before reaping it (counted in
	// Health). A stalled AP link then costs one connection for one
	// timeout instead of a parked goroutine and its read buffer
	// forever.
	IdleTimeout time.Duration

	// DegradedQuorum enables degraded serving when set in
	// 0 < DegradedQuorum < Quorum: a pending group stuck for at least
	// DegradedAfter with DegradedQuorum ≤ distinct APs < Quorum is
	// flushed anyway, every capture flagged Degraded. 0 (the default)
	// keeps strict quorum-only serving. Groups below DegradedQuorum
	// are dropped by Sweep after the same age so a dead AP cannot pin
	// pooled captures forever.
	DegradedQuorum int
	// DegradedAfter is the stuck-group age that triggers degraded
	// serving; 0 means DefaultDegradedAfter.
	DegradedAfter time.Duration

	// ErrorBudget is the number of connection/decode errors within
	// ErrorWindow that quarantines an AP: its captures are dropped (and
	// counted) until Cooldown passes, then it is automatically
	// readmitted. 0 disables quarantine.
	ErrorBudget int
	// ErrorWindow bounds how old an error may be and still count
	// against the budget; 0 means DefaultErrorWindow.
	ErrorWindow time.Duration
	// Cooldown is how long a quarantined AP stays quarantined; 0 means
	// DefaultQuarantineCooldown.
	Cooldown time.Duration

	// Now overrides the clock for grouping-age and quarantine
	// arithmetic (tests and simulations); nil means time.Now. Read
	// deadlines always use the real clock — they arm the kernel timer.
	Now func() time.Time

	shards [pendingShards]backendShard

	// Per-AP error budget and quarantine state. quarActive gates the
	// ingest hot path: with nothing quarantined it is one atomic load.
	healthMu   sync.Mutex
	apHealth   map[uint32]*apHealthState
	quarActive atomic.Int32

	connErrors      atomic.Uint64
	deadlineReaped  atomic.Uint64
	quarantines     atomic.Uint64
	quarDropped     atomic.Uint64
	degradedFlushes atomic.Uint64
	staleDropped    atomic.Uint64
	ingested        atomic.Uint64

	// UDP datagram-mode health. Fire-and-forget feeds have no
	// retransmit, so losses surface as counters instead: per-AP
	// capture sequence numbers are tracked and every hole counted.
	udpMu    sync.Mutex
	udpLast  map[uint32]uint32 // per-AP last capture seq seen
	udpStats UDPStats
}

// UDPStats counts the datagram ingest path's health.
type UDPStats struct {
	// Datagrams is the number of well-formed batch-frame datagrams
	// ingested; Captures the captures they carried.
	Datagrams, Captures uint64
	// Bad is the number of datagrams dropped as undecodable (short or
	// malformed frames, hostile dimensions, bad regions).
	Bad uint64
	// SeqGaps is the total number of missing per-AP capture sequence
	// numbers — the fire-and-forget substitute for retransmit
	// accounting. SeqReorders counts captures that arrived with a
	// sequence number at or below the AP's newest (late or duplicate
	// datagrams).
	SeqGaps, SeqReorders uint64
}

// UDP returns a snapshot of the datagram ingest counters.
func (b *Backend) UDP() UDPStats {
	b.udpMu.Lock()
	defer b.udpMu.Unlock()
	return b.udpStats
}

// Fault-tolerance defaults. DegradedAfter trades fix latency against
// the chance the missing AP is merely late: half a second is several
// grouping windows, long enough that the quorum is genuinely short.
const (
	DefaultDegradedAfter      = 500 * time.Millisecond
	DefaultErrorWindow        = 10 * time.Second
	DefaultQuarantineCooldown = 30 * time.Second
)

// apHealthState is one AP's error budget: recent error times while
// healthy, the release instant while quarantined.
type apHealthState struct {
	errAt []time.Time
	until time.Time // non-zero while quarantined
}

// HealthStats is a snapshot of the backend's fault counters.
type HealthStats struct {
	// ConnErrors counts connections ServeConn terminated on a
	// read/decode error (clean EOFs and idle reaps excluded).
	ConnErrors uint64
	// DeadlineReaped counts connections reaped by the idle deadline.
	DeadlineReaped uint64
	// Quarantines counts times an AP entered quarantine;
	// QuarantinedDropped the captures dropped while their AP was in
	// it.
	Quarantines        uint64
	QuarantinedDropped uint64
	// DegradedFlushes counts groups flushed below full quorum;
	// StaleDropped counts stuck groups Sweep released as
	// undispatchable (below even the degraded quorum).
	DegradedFlushes uint64
	StaleDropped    uint64
	// Quarantined is the number of currently quarantined APs (gauge).
	Quarantined int
}

// Health returns a snapshot of the backend's fault counters.
func (b *Backend) Health() HealthStats {
	return HealthStats{
		ConnErrors:         b.connErrors.Load(),
		DeadlineReaped:     b.deadlineReaped.Load(),
		Quarantines:        b.quarantines.Load(),
		QuarantinedDropped: b.quarDropped.Load(),
		DegradedFlushes:    b.degradedFlushes.Load(),
		StaleDropped:       b.staleDropped.Load(),
		Quarantined:        int(b.quarActive.Load()),
	}
}

// IngestedCaptures returns the number of captures accepted into quorum
// grouping (quarantine drops excluded) and fully settled: counted only
// once the ingest call that carried them has returned, so each counted
// capture is either sitting in a pending group, already handed to the
// Dispatcher (whose Submit has returned, making the job visible to
// Engine.InFlight), or dropped. A cluster router uses it as a
// consumption barrier: once a shard's count reaches the number of
// captures routed to it, none is still in flight on the wire or
// mid-dispatch.
func (b *Backend) IngestedCaptures() uint64 { return b.ingested.Load() }

// ExtractPending removes the listed clients' pending (below-quorum)
// groups and returns their captures in arrival order, concatenated per
// client. The caller takes ownership: each returned capture must be
// Released exactly once, or re-ingested somewhere that will. The
// cluster handoff path uses this to re-route a migrating client's
// buffered captures to its new shard instead of letting them strand
// until the sweep.
func (b *Backend) ExtractPending(clientIDs []uint32) []Capture {
	var out []Capture
	for _, id := range clientIDs {
		sh := b.shard(id)
		sh.mu.Lock()
		if g := sh.pending[id]; g != nil && len(g.caps) > 0 {
			out = append(out, g.take()...)
		}
		sh.mu.Unlock()
	}
	return out
}

func (b *Backend) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

func (b *Backend) degradedAfter() time.Duration {
	if b.DegradedAfter > 0 {
		return b.DegradedAfter
	}
	return DefaultDegradedAfter
}

// NoteAPError charges one error against an AP's budget; when the
// budget is exhausted within ErrorWindow the AP is quarantined for
// Cooldown. ServeConn calls it for decode errors and idle reaps,
// attributing the connection to the last AP that successfully decoded
// on it; external supervisors may call it too. A no-op when
// ErrorBudget is unset.
func (b *Backend) NoteAPError(apID uint32) {
	if b.ErrorBudget <= 0 {
		return
	}
	now := b.now()
	window := b.ErrorWindow
	if window <= 0 {
		window = DefaultErrorWindow
	}
	b.healthMu.Lock()
	defer b.healthMu.Unlock()
	if b.apHealth == nil {
		b.apHealth = make(map[uint32]*apHealthState)
	}
	st := b.apHealth[apID]
	if st == nil {
		st = &apHealthState{}
		b.apHealth[apID] = st
	}
	if !st.until.IsZero() {
		return // already quarantined; errors while isolated don't extend it
	}
	keep := st.errAt[:0]
	for _, at := range st.errAt {
		if now.Sub(at) <= window {
			keep = append(keep, at)
		}
	}
	st.errAt = append(keep, now)
	if len(st.errAt) >= b.ErrorBudget {
		cd := b.Cooldown
		if cd <= 0 {
			cd = DefaultQuarantineCooldown
		}
		st.until = now.Add(cd)
		st.errAt = st.errAt[:0]
		b.quarantines.Add(1)
		b.quarActive.Add(1)
	}
}

// dropIfQuarantined releases and counts c when its AP is quarantined,
// reporting whether the capture was consumed. Cooldown expiry is
// checked lazily here, so a quarantined AP readmits itself the moment
// it next delivers a capture past the release time.
func (b *Backend) dropIfQuarantined(c *Capture) bool {
	if b.quarActive.Load() == 0 {
		return false
	}
	now := b.now()
	b.healthMu.Lock()
	st := b.apHealth[c.APID]
	if st == nil || st.until.IsZero() {
		b.healthMu.Unlock()
		return false
	}
	if now.Before(st.until) {
		b.healthMu.Unlock()
		b.quarDropped.Add(1)
		c.Release()
		return true
	}
	st.until = time.Time{}
	b.quarActive.Add(-1)
	b.healthMu.Unlock()
	return false
}

// IngestDatagram decodes one UDP datagram (exactly one v3 batch
// frame), updates the sequence-gap accounting, and ingests every
// capture. Undecodable datagrams are counted and returned as errors;
// the caller decides whether to keep serving (ServeUDP does). The
// data buffer may be reused immediately after return.
func (b *Backend) IngestDatagram(data []byte) error {
	ws := GetIngestWorkspace()
	caps, err := DecodeDatagramInto(data, ws)
	if err != nil {
		ws.Discard()
		b.udpMu.Lock()
		b.udpStats.Bad++
		b.udpMu.Unlock()
		return err
	}
	b.udpMu.Lock()
	b.udpStats.Datagrams++
	b.udpStats.Captures += uint64(len(caps))
	if b.udpLast == nil {
		b.udpLast = make(map[uint32]uint32)
	}
	for i := range caps {
		c := &caps[i]
		last, seen := b.udpLast[c.APID]
		switch {
		case !seen:
			b.udpLast[c.APID] = c.Seq
		case c.Seq > last:
			b.udpStats.SeqGaps += uint64(c.Seq - last - 1)
			b.udpLast[c.APID] = c.Seq
		default:
			b.udpStats.SeqReorders++
		}
	}
	b.udpMu.Unlock()
	b.IngestBatch(caps)
	return nil
}

// ServeUDP ingests batch-frame datagrams from conn until the context
// is cancelled — the fire-and-forget sample feed for APs that prefer
// datagrams over a TCP stream. Malformed datagrams are counted (see
// UDP) and dropped, never fatal: one hostile packet must not take the
// feed down.
func (b *Backend) ServeUDP(ctx context.Context, conn net.PacketConn) error {
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
	buf := make([]byte, 1<<16)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("server: udp read: %w", err)
		}
		_ = b.IngestDatagram(buf[:n])
	}
}

// NewBackend returns a backend that runs locate inline on each quorum
// flush (the seed behaviour).
func NewBackend(quorum int, window time.Duration, locate LocateFunc) *Backend {
	b := &Backend{Quorum: quorum, Window: window, Locate: locate}
	b.initShards()
	return b
}

// NewBackendDispatcher returns a backend that hands quorum flushes to
// d — typically an engine.CaptureSink — instead of localizing inline.
func NewBackendDispatcher(quorum int, window time.Duration, d Dispatcher) *Backend {
	b := &Backend{Quorum: quorum, Window: window, Dispatcher: d}
	b.initShards()
	return b
}

func (b *Backend) initShards() {
	for i := range b.shards {
		b.shards[i].pending = make(map[uint32]*pendingGroup)
	}
}

func (b *Backend) shard(clientID uint32) *backendShard {
	// Fibonacci-hash the client ID so sequential IDs spread across
	// shards instead of clustering mod a power of two.
	return &b.shards[(clientID*2654435761)>>26%pendingShards]
}

// Ingest accepts one capture. When the client's pending set spans at
// least Quorum distinct APs, the captures are flushed to the
// Dispatcher (or Locate) and cleared. Stale captures outside Window of
// the newest are dropped. Only the client's shard is locked, and the
// flush itself runs outside the lock.
func (b *Backend) Ingest(c *Capture) {
	if b.dropIfQuarantined(c) {
		return
	}
	var now time.Time
	if b.DegradedQuorum > 0 {
		now = b.now()
	}
	sh := b.shard(c.ClientID)
	sh.mu.Lock()
	g := sh.group(c.ClientID)
	flush := b.ingestLocked(g, c, now)
	sh.mu.Unlock()
	if flush != nil {
		b.dispatch(c.ClientID, flush)
	}
	b.ingested.Add(1)
}

// ingestLocked appends one capture to its client's group and, when a
// quorum of distinct APs is present — or the group has been stuck at
// degraded quorum past DegradedAfter — returns the flush slice (nil
// otherwise). The group is reset in place for the client's next
// round. now is the degraded-age clock, zero when degraded serving is
// off. Caller holds the shard lock.
func (b *Backend) ingestLocked(g *pendingGroup, c *Capture, now time.Time) []Capture {
	g.caps = append(g.caps, *c)
	g.note(c)
	if len(g.caps) == 1 {
		g.firstAt = now // zero when degraded serving is off
	}
	// Stale eviction is only possible when the group's span exceeds
	// the window; inside it, yesterday's full sweep was a no-op by
	// definition, so the hot path is append + O(distinct) bookkeeping.
	distinct := g.apsN
	if g.newest.Sub(g.oldest) > b.Window || g.apsFull {
		distinct = g.compact(b.Window)
	}
	if distinct >= b.Quorum {
		// The flush slice leaves the backend (the dispatcher may hold
		// it past this call), so take() gives it its own exactly-sized
		// backing and drops the group's capture copies — the flush
		// slice owns the releases.
		return g.take()
	}
	if b.DegradedQuorum > 0 && distinct >= b.DegradedQuorum &&
		!g.firstAt.IsZero() && now.Sub(g.firstAt) >= b.degradedAfter() {
		return b.takeDegraded(g)
	}
	return nil
}

// takeDegraded flushes a short-of-quorum group, flagging every capture
// Degraded. Caller holds the shard lock.
func (b *Backend) takeDegraded(g *pendingGroup) []Capture {
	flush := g.take()
	for i := range flush {
		flush[i].Degraded = true
	}
	b.degradedFlushes.Add(1)
	return flush
}

func (b *Backend) dispatch(clientID uint32, flush []Capture) {
	if b.Dispatcher != nil {
		b.Dispatcher.Dispatch(clientID, flush)
	} else {
		b.Locate(clientID, flush)
		ReleaseAll(flush)
	}
}

// IngestBatch ingests a decoded burst, taking each client's shard
// lock once for all of that client's captures instead of once per
// capture. Per-client capture order is identical to per-capture
// Ingest; only the interleaving of different clients' flushes may
// differ, which nothing downstream orders on.
//
// When a flush fires mid-burst, the flushing client's remaining
// captures in the same burst are absorbed into that flush (order
// preserved, released exactly-once by the flush owner) instead of
// seeding a fresh group. Quorum fires on the Nth distinct AP's *first*
// capture; a multi-frame-per-AP burst would otherwise strand its
// trailing frames in a group whose missing APs already contributed to
// the round just flushed, surfacing later as spurious degraded flushes
// and pinned pool workspaces.
func (b *Backend) IngestBatch(caps []Capture) {
	if b.quarActive.Load() != 0 {
		// Rare path (an AP is quarantined): filter its captures out up
		// front — released and counted — so the batched grouping below
		// only sees admissible ones. In-place, no allocation.
		kept := caps[:0]
		for i := range caps {
			if b.dropIfQuarantined(&caps[i]) {
				continue
			}
			kept = append(kept, caps[i])
		}
		if len(kept) == 0 {
			return
		}
		caps = kept
	}
	if len(caps) == 1 {
		b.Ingest(&caps[0])
		return
	}
	var now time.Time
	if b.DegradedQuorum > 0 {
		now = b.now()
	}
	// Distinct clients in burst order, via the same stack-resident
	// scan the AP sets use. Bursts with more distinct clients than the
	// inline array spill to the heap (rare) rather than falling back to
	// per-capture ingest, which would lose the burst context the
	// flush-absorption rule below needs.
	var clientBuf [32]uint32
	clients := clientBuf[:0]
	for i := range caps {
		id := caps[i].ClientID
		dup := false
		for _, s := range clients {
			if s == id {
				dup = true
				break
			}
		}
		if !dup {
			clients = append(clients, id)
		}
	}
	for _, id := range clients {
		var flush []Capture
		degraded := false
		sh := b.shard(id)
		sh.mu.Lock()
		g := sh.group(id)
		for i := range caps {
			if caps[i].ClientID != id {
				continue
			}
			if flush != nil {
				// A flush already fired for this client in this burst:
				// absorb the trailing same-burst captures into it rather
				// than stranding them in a group that can never complete.
				c := caps[i]
				c.Degraded = degraded
				flush = append(flush, c)
				continue
			}
			if f := b.ingestLocked(g, &caps[i], now); f != nil {
				flush = f
				degraded = len(f) > 0 && f[len(f)-1].Degraded
			}
		}
		sh.mu.Unlock()
		if flush != nil {
			b.dispatch(id, flush)
		}
	}
	// Settle-time accounting: the whole burst counts only after every
	// flush it triggered has been dispatched, so a consumption barrier
	// reading IngestedCaptures never races a mid-flight Submit.
	b.ingested.Add(uint64(len(caps)))
}

// Sweep walks every pending group looking for the ones ingest-time
// checks can never save: a group whose APs went silent receives no
// further captures, so without a sweep its pooled stream buffers stay
// pinned forever and its client goes dark even when a degraded quorum
// is sitting right there. Groups stuck ≥ DegradedAfter flush degraded
// when they hold at least DegradedQuorum distinct APs; the rest are
// released and counted (StaleDropped). Run it periodically (the
// server command's janitor goroutine uses DegradedAfter/2); it
// returns the number of groups flushed and dropped. A no-op unless
// DegradedQuorum is set.
func (b *Backend) Sweep() (flushed, dropped int) {
	if b.DegradedQuorum <= 0 {
		return 0, 0
	}
	now := b.now()
	after := b.degradedAfter()
	type pendingFlush struct {
		client uint32
		caps   []Capture
	}
	var flushes []pendingFlush
	for i := range b.shards {
		sh := &b.shards[i]
		flushes = flushes[:0]
		sh.mu.Lock()
		for id, g := range sh.pending {
			if len(g.caps) == 0 || g.firstAt.IsZero() || now.Sub(g.firstAt) < after {
				continue
			}
			// Evict in-window staleness first so the degraded flush
			// carries only captures the quorum rule would have.
			distinct := g.compact(b.Window)
			if distinct >= b.DegradedQuorum {
				// distinct < Quorum always holds here: a full quorum
				// would have flushed at ingest time.
				flushes = append(flushes, pendingFlush{id, b.takeDegraded(g)})
				flushed++
				continue
			}
			// Below even the degraded quorum: nothing downstream can use
			// these captures, and their APs may never come back —
			// release them so a dead AP cannot pin the pool.
			for j := range g.caps {
				g.caps[j].Release()
			}
			g.reset()
			b.staleDropped.Add(1)
			dropped++
		}
		sh.mu.Unlock()
		// Dispatch outside the shard lock, like the ingest path.
		for _, f := range flushes {
			b.dispatch(f.client, f.caps)
		}
	}
	return flushed, dropped
}

// PendingClients returns the number of clients with partially grouped
// captures (diagnostics).
func (b *Backend) PendingClients() int {
	n := 0
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		for _, g := range sh.pending {
			if len(g.caps) > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// PendingClientIDs returns the IDs of clients holding partially
// grouped captures. The cluster handoff path unions it with the
// tracker's live clients to enumerate every identity with shard-local
// state.
func (b *Backend) PendingClientIDs() []uint32 {
	var ids []uint32
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		for id, g := range sh.pending {
			if len(g.caps) > 0 {
				ids = append(ids, id)
			}
		}
		sh.mu.Unlock()
	}
	return ids
}

// ServeConn reads frames from r until EOF or error, ingesting every
// capture. It accepts all wire versions on one stream — v1/v2
// per-record writers and v3 batch writers share a port — and decodes
// through the pooled zero-copy workspaces, so steady-state ingest
// performs no per-capture allocation. The stream is read through a
// 64 KiB buffer: the feed is one-directional, so read-ahead is always
// safe and the per-frame reads (magic, header, body) coalesce into
// large socket reads. A clean EOF returns nil.
//
// Self-defense: when IdleTimeout is set and r can carry a read
// deadline (a net.Conn), a connection that goes quiet mid- or
// between-frames is reaped after one timeout instead of parking this
// goroutine forever. Decode errors and reaps charge the connection's
// last successfully decoded AP via NoteAPError, feeding the
// quarantine budget. On every exit path the in-flight workspace goes
// straight back to the pool — a connection dying mid-frame leaks
// nothing (the workspace holds no capture references until its frame
// fully decodes).
func (b *Backend) ServeConn(r io.Reader) error {
	var dl interface{ SetReadDeadline(time.Time) error }
	if b.IdleTimeout > 0 {
		dl, _ = r.(interface{ SetReadDeadline(time.Time) error })
	}
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 256<<10)
	}
	var lastAP uint32
	haveAP := false
	for {
		if dl != nil {
			_ = dl.SetReadDeadline(time.Now().Add(b.IdleTimeout))
		}
		ws := GetIngestWorkspace()
		caps, err := ReadFrameInto(br, ws)
		if err != nil {
			ws.Discard()
			if errors.Is(err, io.EOF) {
				return nil
			}
			if errors.Is(err, os.ErrDeadlineExceeded) {
				b.deadlineReaped.Add(1)
				if haveAP {
					b.NoteAPError(lastAP)
				}
				return fmt.Errorf("server: connection idle past %v: %w", b.IdleTimeout, err)
			}
			b.connErrors.Add(1)
			if haveAP {
				b.NoteAPError(lastAP)
			}
			return err
		}
		lastAP, haveAP = caps[0].APID, true
		b.IngestBatch(caps)
	}
}

// Serve accepts connections from l until the context is cancelled,
// running ServeConn for each in its own goroutine.
func (b *Backend) Serve(ctx context.Context, l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	go func() {
		<-ctx.Done()
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			_ = b.ServeConn(conn)
		}()
	}
}

// Latency itemizes the end-to-end budget of §4.4.
type Latency struct {
	// Detection is Td: preamble air time until detection completes
	// (16 µs of training symbols).
	Detection time.Duration
	// Transfer is Tt: serialization of the capture onto the AP-server
	// link.
	Transfer time.Duration
	// Processing is Tp: server-side spectrum computation plus
	// synthesis.
	Processing time.Duration
}

// Total returns the summed latency the system adds after the packet
// ends.
func (l Latency) Total() time.Duration {
	return l.Detection + l.Transfer + l.Processing
}

// TransferTime returns the §4.4 serialization-time model for a capture
// of the given dimensions over a link of linkMbps.
func TransferTime(nAnt, nSamp int, linkMbps float64) time.Duration {
	bits := float64(RecordSize(nAnt, nSamp) * 8)
	return time.Duration(bits / (linkMbps * 1e6) * float64(time.Second))
}
