package server

import (
	"sync"
	"testing"
	"time"
)

type recordingDispatcher struct {
	mu      sync.Mutex
	flushes map[uint32][]Capture
}

func (d *recordingDispatcher) Dispatch(clientID uint32, captures []Capture) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.flushes == nil {
		d.flushes = make(map[uint32][]Capture)
	}
	d.flushes[clientID] = captures
}

func TestBackendDispatcherReceivesQuorumFlush(t *testing.T) {
	d := &recordingDispatcher{}
	b := NewBackendDispatcher(2, time.Minute, d)
	now := time.Now()
	b.Ingest(&Capture{APID: 1, ClientID: 5, Timestamp: now})
	if len(d.flushes) != 0 {
		t.Fatal("dispatched before quorum")
	}
	if got := b.PendingClients(); got != 1 {
		t.Fatalf("PendingClients = %d, want 1", got)
	}
	b.Ingest(&Capture{APID: 2, ClientID: 5, Timestamp: now})
	cs, ok := d.flushes[5]
	if !ok {
		t.Fatal("quorum reached but nothing dispatched")
	}
	if len(cs) != 2 {
		t.Fatalf("dispatched %d captures, want 2", len(cs))
	}
	if got := b.PendingClients(); got != 0 {
		t.Fatalf("PendingClients after flush = %d, want 0", got)
	}
}

func TestBackendDispatcherPreferredOverLocate(t *testing.T) {
	d := &recordingDispatcher{}
	locateCalled := false
	b := NewBackend(1, time.Minute, func(uint32, []Capture) { locateCalled = true })
	b.Dispatcher = d
	b.Ingest(&Capture{APID: 1, ClientID: 9, Timestamp: time.Now()})
	if locateCalled {
		t.Error("Locate ran despite a Dispatcher being set")
	}
	if _, ok := d.flushes[9]; !ok {
		t.Error("Dispatcher did not receive the flush")
	}
}

func TestBackendPendingSpansShards(t *testing.T) {
	b := NewBackend(3, time.Minute, func(uint32, []Capture) {})
	now := time.Now()
	// Client IDs chosen across the whole space so they land in many
	// different shards; the count must still be exact.
	const n = 500
	for c := uint32(0); c < n; c++ {
		b.Ingest(&Capture{APID: 1, ClientID: c*7919 + 1, Timestamp: now})
	}
	if got := b.PendingClients(); got != n {
		t.Fatalf("PendingClients = %d, want %d", got, n)
	}
}

func TestBackendConcurrentIngestExactFlushes(t *testing.T) {
	var mu sync.Mutex
	flushed := make(map[uint32]int)
	b := NewBackend(3, time.Minute, func(clientID uint32, cs []Capture) {
		mu.Lock()
		flushed[clientID]++
		mu.Unlock()
	})
	const clients = 200
	now := time.Now()
	var wg sync.WaitGroup
	for ap := uint32(1); ap <= 3; ap++ {
		wg.Add(1)
		go func(ap uint32) {
			defer wg.Done()
			for c := uint32(1); c <= clients; c++ {
				b.Ingest(&Capture{APID: ap, ClientID: c, Timestamp: now})
			}
		}(ap)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(flushed) != clients {
		t.Fatalf("%d clients flushed, want %d", len(flushed), clients)
	}
	for c, n := range flushed {
		if n != 1 {
			t.Fatalf("client %d flushed %d times", c, n)
		}
	}
	if got := b.PendingClients(); got != 0 {
		t.Fatalf("PendingClients = %d, want 0", got)
	}
}
