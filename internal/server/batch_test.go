package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

// batchCapture builds one randomized capture with optional v2
// metadata for the differential tests.
func batchCapture(rng *rand.Rand, nAnt, nSamp int, withRegion, priority bool) Capture {
	c := Capture{
		APID:      rng.Uint32(),
		ClientID:  rng.Uint32(),
		Seq:       rng.Uint32(),
		Timestamp: time.UnixMicro(1700000000000000 + rng.Int63n(1e9)).UTC(),
		Priority:  priority,
		Streams:   make([][]complex128, nAnt),
	}
	if withRegion {
		c.Region = core.Region{Min: geom.Pt(1, 2), Max: geom.Pt(9, 8.5), Cell: 0.25}
	}
	for a := range c.Streams {
		st := make([]complex128, nSamp)
		for s := range st {
			st[s] = complex(rng.NormFloat64(), rng.NormFloat64()) * 2e-3
		}
		c.Streams[a] = st
	}
	return c
}

// sameBits reports whether two streams carry bit-identical samples.
func sameBits(a, b [][]complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(real(a[i][j])) != math.Float64bits(real(b[i][j])) ||
				math.Float64bits(imag(a[i][j])) != math.Float64bits(imag(b[i][j])) {
				return false
			}
		}
	}
	return true
}

// TestBatchDifferentialBitIdentical pins the batch decoder to the v1
// path: the same captures shipped per-record through WriteCapture →
// ReadCapture and as one v3 frame through WriteBatch → ReadBatchInto
// must decode to bit-identical streams and equal metadata.
func TestBatchDifferentialBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		caps := make([]Capture, n)
		for i := range caps {
			caps[i] = batchCapture(rng, 1+rng.Intn(8), 1+rng.Intn(32), rng.Intn(3) == 0, rng.Intn(3) == 0)
		}

		// Reference: the seed's per-record round trip.
		var perRecord bytes.Buffer
		for i := range caps {
			if err := WriteCapture(&perRecord, &caps[i]); err != nil {
				t.Fatal(err)
			}
		}
		want := make([]*Capture, n)
		for i := range want {
			c, err := ReadCapture(&perRecord)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = c
		}

		// Batch: one frame, pooled decode.
		var frame bytes.Buffer
		if err := WriteBatch(&frame, caps); err != nil {
			t.Fatal(err)
		}
		ws := GetIngestWorkspace()
		got, err := ReadBatchInto(bytes.NewReader(frame.Bytes()), ws)
		if err != nil {
			ws.Discard()
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("trial %d: decoded %d captures, want %d", trial, len(got), n)
		}
		for i := range got {
			g, w := &got[i], want[i]
			if g.APID != w.APID || g.ClientID != w.ClientID || g.Seq != w.Seq ||
				!g.Timestamp.Equal(w.Timestamp) || g.Region != w.Region || g.Priority != w.Priority {
				t.Fatalf("trial %d capture %d: metadata mismatch\n got %+v\nwant %+v", trial, i, g, w)
			}
			if !sameBits(g.Streams, w.Streams) {
				t.Fatalf("trial %d capture %d: streams not bit-identical to ReadCapture", trial, i)
			}
		}
		ReleaseAll(got)
	}
}

// TestReadCaptureIntoDifferential pins the pooled single-record reader
// to ReadCapture the same way.
func TestReadCaptureIntoDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		c := batchCapture(rng, 1+rng.Intn(8), 1+rng.Intn(32), trial%3 == 0, trial%4 == 0)
		var buf bytes.Buffer
		if err := WriteCapture(&buf, &c); err != nil {
			t.Fatal(err)
		}
		want, err := ReadCapture(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		ws := GetIngestWorkspace()
		got, err := ReadCaptureInto(bytes.NewReader(buf.Bytes()), ws)
		if err != nil {
			ws.Discard()
			t.Fatal(err)
		}
		if got.APID != want.APID || got.ClientID != want.ClientID || got.Seq != want.Seq ||
			!got.Timestamp.Equal(want.Timestamp) || got.Region != want.Region || got.Priority != want.Priority {
			t.Fatalf("trial %d: metadata mismatch", trial)
		}
		if !sameBits(got.Streams, want.Streams) {
			t.Fatalf("trial %d: streams not bit-identical", trial)
		}
		got.Release()
	}
}

// TestReadFrameIntoMixedStream drives the version-dispatching reader
// over a stream mixing v1, v3, and v2 framing — the ServeConn fast
// path accepting old and new writers on one port.
func TestReadFrameIntoMixedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	single := batchCapture(rng, 2, 4, false, false)
	v2 := batchCapture(rng, 3, 5, true, true)
	batch := []Capture{
		batchCapture(rng, 2, 8, false, false),
		batchCapture(rng, 4, 2, true, false),
		batchCapture(rng, 1, 16, false, true),
	}
	var stream bytes.Buffer
	if err := WriteCapture(&stream, &single); err != nil {
		t.Fatal(err)
	}
	if err := WriteBatch(&stream, batch); err != nil {
		t.Fatal(err)
	}
	if err := WriteCapture(&stream, &v2); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(stream.Bytes())
	var decoded []Capture
	for {
		ws := GetIngestWorkspace()
		caps, err := ReadFrameInto(r, ws)
		if err != nil {
			ws.Discard()
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		for i := range caps {
			// Retain past the workspace: deep-copy like a real consumer.
			cp := caps[i]
			cp.Streams = append([][]complex128(nil), cp.Streams...)
			for a := range cp.Streams {
				cp.Streams[a] = append([]complex128(nil), cp.Streams[a]...)
			}
			decoded = append(decoded, cp)
		}
		ReleaseAll(caps)
	}
	if len(decoded) != 5 {
		t.Fatalf("decoded %d captures, want 5", len(decoded))
	}
	wantOrder := []uint32{single.Seq, batch[0].Seq, batch[1].Seq, batch[2].Seq, v2.Seq}
	for i, w := range wantOrder {
		if decoded[i].Seq != w {
			t.Errorf("capture %d: seq %d, want %d", i, decoded[i].Seq, w)
		}
	}
	if decoded[4].Region.IsZero() || !decoded[4].Priority {
		t.Error("v2 record lost its region or priority flag")
	}
}

// mustFrame encodes caps as one v3 frame.
func mustFrame(tb testing.TB, caps []Capture) []byte {
	tb.Helper()
	out, err := AppendBatch(nil, caps)
	if err != nil {
		tb.Fatal(err)
	}
	return out
}

// decodeBatch runs the stream batch reader over data with a throwaway
// workspace, releasing on success.
func decodeBatch(data []byte) error {
	ws := GetIngestWorkspace()
	caps, err := ReadBatchInto(bytes.NewReader(data), ws)
	if err != nil {
		ws.Discard()
		return err
	}
	ReleaseAll(caps)
	return nil
}

// TestBatchRejects feeds the decoder frames whose header, sub-headers,
// and payload disagree: every case must error — never panic, never
// decode.
func TestBatchRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	valid := mustFrame(t, []Capture{
		batchCapture(rng, 2, 3, false, false),
		batchCapture(rng, 2, 3, false, false),
	})
	if err := decodeBatch(valid); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	mut := func(f func(d []byte)) []byte {
		d := append([]byte(nil), valid...)
		f(d)
		return d
	}
	cases := []struct {
		name string
		data []byte
		want error // nil: any error accepted
	}{
		{"truncated header", valid[:8], nil},
		{"truncated body", valid[:len(valid)-5], nil},
		{"reserved bits", mut(func(d []byte) { d[10] = 1 }), ErrBadFrame},
		{"zero count", mut(func(d []byte) { binary.BigEndian.PutUint16(d[8:], 0) }), ErrTooLarge},
		{"count over limit", mut(func(d []byte) { binary.BigEndian.PutUint16(d[8:], MaxBatchCaptures+1) }), ErrTooLarge},
		{"count lies high", mut(func(d []byte) { binary.BigEndian.PutUint16(d[8:], 3) }), nil},
		{"count lies low", mut(func(d []byte) { binary.BigEndian.PutUint16(d[8:], 1) }), ErrBadFrame},
		{"oversized antennas", mut(func(d []byte) { binary.BigEndian.PutUint16(d[12+24:], 0xFFFF) }), ErrTooLarge},
		{"oversized samples", mut(func(d []byte) { binary.BigEndian.PutUint16(d[12+26:], 0xFFFF) }), ErrTooLarge},
		{"unknown sub flags", mut(func(d []byte) { d[12+28] = 0x80 }), ErrBadRegion},
		{"payload accounting", mut(func(d []byte) { binary.BigEndian.PutUint16(d[12+26:], 2) }), ErrBadFrame},
		{"bodyLen over limit", mut(func(d []byte) { binary.BigEndian.PutUint32(d[4:], MaxFrameBytes+1) }), ErrTooLarge},
		{"bodyLen starves count", mut(func(d []byte) { binary.BigEndian.PutUint32(d[4:], 12) }), ErrBadFrame},
	}
	for _, tc := range cases {
		err := decodeBatch(tc.data)
		if err == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v, want %v", tc.name, err, tc.want)
		}
	}

	// A region flag on an all-zero box is hostile input, not "no
	// region": zero the box of a frame that legitimately carries one.
	regioned := mustFrame(t, []Capture{batchCapture(rng, 2, 3, true, false)})
	for i := 12 + subHeadSize; i < 12+subHeadSize+regionBoxSize; i++ {
		regioned[i] = 0
	}
	if err := decodeBatch(regioned); !errors.Is(err, ErrBadRegion) {
		t.Errorf("zero region box: error %v, want ErrBadRegion", err)
	}

	// Encoder-side limits.
	if _, err := AppendBatch(nil, nil); err == nil {
		t.Error("empty batch should fail to encode")
	}
	if _, err := AppendBatch(nil, make([]Capture, MaxBatchCaptures+1)); err == nil {
		t.Error("oversized batch should fail to encode")
	}
	ragged := []Capture{{Streams: [][]complex128{make([]complex128, 3), make([]complex128, 5)}}}
	if _, err := AppendBatch(nil, ragged); err == nil {
		t.Error("ragged streams should fail to encode")
	}
}

// TestDecodeDatagramExact checks the self-delimiting datagram rule:
// the frame must fill the datagram to the byte.
func TestDecodeDatagramExact(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	frame := mustFrame(t, []Capture{batchCapture(rng, 2, 4, false, false)})

	ws := GetIngestWorkspace()
	caps, err := DecodeDatagramInto(frame, ws)
	if err != nil {
		ws.Discard()
		t.Fatal(err)
	}
	if len(caps) != 1 {
		t.Fatalf("decoded %d captures, want 1", len(caps))
	}
	ReleaseAll(caps)

	bad := func(data []byte) error {
		ws := GetIngestWorkspace()
		if caps, err := DecodeDatagramInto(data, ws); err != nil {
			ws.Discard()
			return err
		} else {
			ReleaseAll(caps)
			return nil
		}
	}
	if err := bad(append(append([]byte(nil), frame...), 0)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("trailing byte: error %v, want ErrBadFrame", err)
	}
	if err := bad(frame[:len(frame)-1]); !errors.Is(err, ErrBadFrame) {
		t.Errorf("truncated datagram: error %v, want ErrBadFrame", err)
	}
	if err := bad(frame[:6]); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short datagram: error %v, want ErrBadFrame", err)
	}
	wrongMagic := append([]byte(nil), frame...)
	binary.BigEndian.PutUint32(wrongMagic, protocolMagic)
	if err := bad(wrongMagic); !errors.Is(err, ErrBadMagic) {
		t.Errorf("v1 magic in datagram: error %v, want ErrBadMagic", err)
	}
}

// TestWorkspaceRefcount exercises the release protocol: one reference
// per decoded capture, copies share it, double release is a no-op, and
// captures that own their memory ignore Release.
func TestWorkspaceRefcount(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	frame := mustFrame(t, []Capture{
		batchCapture(rng, 2, 2, false, false),
		batchCapture(rng, 2, 2, false, false),
		batchCapture(rng, 2, 2, false, false),
	})
	ws := GetIngestWorkspace()
	caps, err := ReadBatchInto(bytes.NewReader(frame), ws)
	if err != nil {
		ws.Discard()
		t.Fatal(err)
	}
	if got := ws.refs.Load(); got != 3 {
		t.Fatalf("refs after decode = %d, want 3", got)
	}
	caps[0].Release()
	caps[0].Release() // second release of the same capture: no-op
	if got := ws.refs.Load(); got != 2 {
		t.Fatalf("refs after first release = %d, want 2", got)
	}
	cp := caps[1] // a copy shares the underlying reference
	cp.Release()
	if got := ws.refs.Load(); got != 1 {
		t.Fatalf("refs after copy release = %d, want 1", got)
	}
	caps[2].Release() // workspace returns to the pool here

	owned := Capture{Streams: [][]complex128{{1, 2}}}
	owned.Release() // must not panic or touch any pool
}

// TestBatchDecodeAllocs pins the zero-copy claim: steady-state batch
// decode through a pooled workspace stays within the issue's ≤2
// allocations per capture (in practice ~0 once buffers are grown).
func TestBatchDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	rng := rand.New(rand.NewSource(29))
	caps := make([]Capture, 32)
	for i := range caps {
		caps[i] = batchCapture(rng, 8, 16, false, false)
	}
	frame := mustFrame(t, caps)
	r := bytes.NewReader(frame)
	avg := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		ws := GetIngestWorkspace()
		decoded, err := ReadBatchInto(r, ws)
		if err != nil {
			ws.Discard()
			t.Fatal(err)
		}
		ReleaseAll(decoded)
	})
	// The bound is per frame of 32 captures — far inside 2/capture.
	if avg > 2 {
		t.Errorf("batch decode allocates %.1f/frame (32 captures), want ≤ 2", avg)
	}
}

// TestWriteAllocs pins the pooled encoders: WriteCapture and
// WriteBatch reuse scratch, so steady state writes allocate nothing.
func TestWriteAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	rng := rand.New(rand.NewSource(31))
	c := batchCapture(rng, 8, 16, false, false)
	if avg := testing.AllocsPerRun(200, func() {
		if err := WriteCapture(io.Discard, &c); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Errorf("WriteCapture allocates %.1f/record, want ≤ 1", avg)
	}
	caps := make([]Capture, 16)
	for i := range caps {
		caps[i] = batchCapture(rng, 8, 16, false, false)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := WriteBatch(io.Discard, caps); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Errorf("WriteBatch allocates %.1f/frame, want ≤ 1", avg)
	}
}

// recentReference is the seed's two-scan RecentForClient, kept as the
// behavioural oracle for the indexed implementation.
func recentReference(b *CircularBuffer, clientID uint32, window time.Duration) []Capture {
	snap := b.Snapshot()
	var newest time.Time
	for i := range snap {
		if snap[i].ClientID == clientID && snap[i].Timestamp.After(newest) {
			newest = snap[i].Timestamp
		}
	}
	if newest.IsZero() {
		return nil
	}
	var out []Capture
	for i := range snap {
		c := &snap[i]
		if c.ClientID == clientID && newest.Sub(c.Timestamp) <= window {
			out = append(out, *c)
		}
	}
	return out
}

// TestRecentForClientEquivalence drives random push/pop traffic —
// including wrap-around eviction, the path that exercises the index's
// newest-rescan — and checks the indexed RecentForClient against the
// seed's two-scan oracle after every operation batch.
func TestRecentForClientEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	b := NewCircularBuffer(32)
	base := time.UnixMicro(1700000000000000).UTC()
	seq := uint32(0)
	clients := []uint32{1, 2, 3, 4, 5}
	windows := []time.Duration{0, 40 * time.Millisecond, 250 * time.Millisecond, time.Hour}
	for step := 0; step < 400; step++ {
		if rng.Intn(4) == 0 {
			b.Pop()
		} else {
			seq++
			// Jittered, non-monotonic timestamps: evictions regularly
			// remove the newest entry for a client.
			ts := base.Add(time.Duration(step)*10*time.Millisecond - time.Duration(rng.Intn(200))*time.Millisecond)
			b.Push(Capture{ClientID: clients[rng.Intn(len(clients))], Seq: seq, Timestamp: ts})
		}
		for _, id := range clients {
			for _, w := range windows {
				got := b.RecentForClient(id, w)
				want := recentReference(b, id, w)
				if len(got) != len(want) {
					t.Fatalf("step %d client %d window %v: %d captures, oracle %d", step, id, w, len(got), len(want))
				}
				for i := range got {
					if got[i].Seq != want[i].Seq {
						t.Fatalf("step %d client %d window %v: capture %d seq %d, oracle %d", step, id, w, i, got[i].Seq, want[i].Seq)
					}
				}
			}
		}
	}
}

// BenchmarkRecentForClient measures the flush-path query at the
// capacity the issue names; the seed ran two full scans per call.
func BenchmarkRecentForClient(b *testing.B) {
	buf := NewCircularBuffer(4096)
	base := time.UnixMicro(1700000000000000).UTC()
	for i := 0; i < 8192; i++ {
		buf.Push(Capture{ClientID: uint32(i % 64), Seq: uint32(i), Timestamp: base.Add(time.Duration(i) * time.Millisecond)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.RecentForClient(uint32(i%64), 100*time.Millisecond)
	}
}

// TestBackendUDPIngest covers the datagram path end to end: quorum
// flush from two APs' datagrams, sequence-gap and reorder accounting,
// and malformed datagrams counted but non-fatal.
func TestBackendUDPIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var flushed []Capture
	b := NewBackend(2, time.Second, func(clientID uint32, cs []Capture) {
		flushed = append(flushed, cs...)
	})
	ts := time.UnixMicro(1700000000000000).UTC()
	mk := func(apID, seq uint32) Capture {
		c := batchCapture(rng, 2, 4, false, false)
		c.APID, c.ClientID, c.Seq, c.Timestamp = apID, 9, seq, ts
		return c
	}
	if err := b.IngestDatagram(mustFrame(t, []Capture{mk(1, 0), mk(1, 1), mk(1, 2)})); err != nil {
		t.Fatal(err)
	}
	if len(flushed) != 0 {
		t.Fatal("quorum fired on one AP")
	}
	if err := b.IngestDatagram(mustFrame(t, []Capture{mk(2, 0)})); err != nil {
		t.Fatal(err)
	}
	if len(flushed) != 4 {
		t.Fatalf("flushed %d captures, want 4", len(flushed))
	}
	// Seq 3 and 4 from AP 1 never arrive: a two-capture hole.
	if err := b.IngestDatagram(mustFrame(t, []Capture{mk(1, 5)})); err != nil {
		t.Fatal(err)
	}
	// The same datagram payload again: one reorder/duplicate.
	if err := b.IngestDatagram(mustFrame(t, []Capture{mk(1, 5)})); err != nil {
		t.Fatal(err)
	}
	if err := b.IngestDatagram([]byte("not a frame at all")); err == nil {
		t.Fatal("garbage datagram ingested without error")
	}
	got := b.UDP()
	want := UDPStats{Datagrams: 4, Captures: 6, Bad: 1, SeqGaps: 2, SeqReorders: 1}
	if got != want {
		t.Errorf("UDP stats = %+v, want %+v", got, want)
	}
}

// packetWriter records each Write as one datagram.
type packetWriter struct{ packets [][]byte }

func (w *packetWriter) Write(p []byte) (int, error) {
	w.packets = append(w.packets, append([]byte(nil), p...))
	return len(p), nil
}

// TestUploadBatchDrains checks the TCP burst uploader: the buffer
// drains fully, every burst is one Write, and the stream decodes to
// the recorded captures in order.
func TestUploadBatchDrains(t *testing.T) {
	n := NewAPNode(3, 16)
	ts := time.UnixMicro(1700000000000000).UTC()
	for i := 0; i < 10; i++ {
		n.Record(1, ts.Add(time.Duration(i)*time.Millisecond), [][]complex128{{1, 2}, {3, 4}})
	}
	var w packetWriter
	if err := n.UploadBatch(context.Background(), &w, 4); err != nil {
		t.Fatal(err)
	}
	if n.Buffer.Len() != 0 {
		t.Error("upload should drain the buffer")
	}
	if len(w.packets) != 3 { // 4 + 4 + 2
		t.Fatalf("%d writes, want 3", len(w.packets))
	}
	r := bytes.NewReader(bytes.Join(w.packets, nil))
	var seqs []uint32
	for {
		ws := GetIngestWorkspace()
		caps, err := ReadFrameInto(r, ws)
		if err != nil {
			ws.Discard()
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		for i := range caps {
			seqs = append(seqs, caps[i].Seq)
		}
		ReleaseAll(caps)
	}
	if len(seqs) != 10 {
		t.Fatalf("decoded %d captures, want 10", len(seqs))
	}
	for i, s := range seqs {
		if s != uint32(i) {
			t.Fatalf("capture %d has seq %d", i, s)
		}
	}
}

// TestUploadDatagramsPacking checks the datagram packer: frames stay
// under the byte budget, nothing is dropped, and a capture that alone
// exceeds the budget still ships in its own frame.
func TestUploadDatagramsPacking(t *testing.T) {
	n := NewAPNode(4, 16)
	ts := time.UnixMicro(1700000000000000).UTC()
	streams := [][]complex128{make([]complex128, 8), make([]complex128, 8)}
	for i := range streams[0] {
		streams[0][i] = complex(float64(i)*1e-3, 1e-3)
		streams[1][i] = complex(1e-3, float64(i)*1e-3)
	}
	for i := 0; i < 10; i++ {
		n.Record(1, ts.Add(time.Duration(i)*time.Millisecond), streams)
	}
	// One capture is 29 + 64 payload bytes; budget three per frame.
	budget := frameHeadSize + 3*(subHeadSize+64)
	var w packetWriter
	if err := n.UploadDatagrams(context.Background(), &w, budget); err != nil {
		t.Fatal(err)
	}
	if len(w.packets) != 4 { // 3 + 3 + 3 + 1
		t.Fatalf("%d datagrams, want 4", len(w.packets))
	}
	total := 0
	for i, p := range w.packets {
		if len(p) > budget {
			t.Errorf("datagram %d is %d bytes, budget %d", i, len(p), budget)
		}
		ws := GetIngestWorkspace()
		caps, err := DecodeDatagramInto(p, ws)
		if err != nil {
			ws.Discard()
			t.Fatalf("datagram %d: %v", i, err)
		}
		total += len(caps)
		ReleaseAll(caps)
	}
	if total != 10 {
		t.Errorf("decoded %d captures, want 10", total)
	}

	// A budget below one frame: the oversized capture still ships.
	n.Record(1, ts, streams)
	var small packetWriter
	if err := n.UploadDatagrams(context.Background(), &small, frameHeadSize+subHeadSize); err != nil {
		t.Fatal(err)
	}
	if len(small.packets) != 1 {
		t.Fatalf("oversized capture: %d datagrams, want 1", len(small.packets))
	}
	ws := GetIngestWorkspace()
	caps, err := DecodeDatagramInto(small.packets[0], ws)
	if err != nil {
		ws.Discard()
		t.Fatal(err)
	}
	ReleaseAll(caps)
}

// TestServeConnBatchQuorum runs the whole ingest pipeline over a mixed
// stream: a v3 burst from one AP plus a v1 record from another must
// satisfy the quorum, and the flushed samples must match what the
// legacy decoder sees (the callback deep-copies per the borrow
// contract).
func TestServeConnBatchQuorum(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ts := time.UnixMicro(1700000000000000).UTC()
	burst := make([]Capture, 2)
	for i := range burst {
		burst[i] = batchCapture(rng, 2, 6, false, false)
		burst[i].APID, burst[i].ClientID, burst[i].Timestamp = 1, 5, ts
	}
	straggler := batchCapture(rng, 2, 6, false, false)
	straggler.APID, straggler.ClientID, straggler.Timestamp = 2, 5, ts

	var stream bytes.Buffer
	if err := WriteBatch(&stream, burst); err != nil {
		t.Fatal(err)
	}
	if err := WriteCapture(&stream, &straggler); err != nil {
		t.Fatal(err)
	}

	var flushed []Capture
	b := NewBackend(2, time.Second, func(clientID uint32, cs []Capture) {
		for i := range cs {
			cp := cs[i]
			cp.Streams = append([][]complex128(nil), cp.Streams...)
			for a := range cp.Streams {
				cp.Streams[a] = append([]complex128(nil), cp.Streams[a]...)
			}
			flushed = append(flushed, cp)
		}
	})
	if err := b.ServeConn(bytes.NewReader(stream.Bytes())); err != nil {
		t.Fatal(err)
	}
	if len(flushed) != 3 {
		t.Fatalf("flushed %d captures, want 3", len(flushed))
	}
	// Cross-check against the per-record decode of the same captures.
	want := append(append([]Capture(nil), burst...), straggler)
	for i := range flushed {
		var buf bytes.Buffer
		if err := WriteCapture(&buf, &want[i]); err != nil {
			t.Fatal(err)
		}
		ref, err := ReadCapture(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if flushed[i].Seq != want[i].Seq || !sameBits(flushed[i].Streams, ref.Streams) {
			t.Fatalf("flushed capture %d differs from legacy decode", i)
		}
	}
}
