package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

// Version 3 of the wire protocol amortizes the per-record framing cost
// over a whole burst of captures: one length-prefixed frame carries up
// to MaxBatchCaptures records, so the server ingests a burst with a
// single ReadFull instead of two framed reads per capture, and the AP
// ships it with a single Write (one syscall — the batched-RX idiom of
// user-space fast paths, applied to the sample feed of §4.4).
//
//	frame header (12 bytes):
//	  magic    uint32  'A''T' + version 3
//	  bodyLen  uint32  bytes that follow the header
//	  count    uint16  captures in the frame (1..MaxBatchCaptures)
//	  fflags   uint16  frame flags: bit0 = delta timestamps; others must be zero
//	body (bodyLen bytes):
//	  baseUS   uint64  per-frame base timestamp (µs) — present only with fflags bit0
//	  count sub-headers, back to back:
//	    apID     uint32
//	    clientID uint32
//	    seq      uint32
//	    tstampUS uint64  absolute µs — or deltaUS uint32 (µs past baseUS) with fflags bit0
//	    scale    float32
//	    nAnt     uint16
//	    nSamp    uint16
//	    flags    uint8   bit0 = has region, bit1 = priority
//	    region   5 × float64, present only when bit0 is set
//	  contiguous payloads, capture order: nAnt × nSamp × (int16 I, int16 Q)
//
// The delta form spends 4 bytes per capture on the timestamp plus 8
// per frame instead of 8 per capture — about half the fixed sub-header
// timestamp overhead for the small 4×16 records — and decodes
// bit-identical to the absolute form whenever every timestamp in the
// frame lies within 2³²−1 µs (~71 min) of the earliest one.
// AppendBatchDelta falls back to the absolute form otherwise, and
// every reader accepts both.
//
// The body length, capture count, sub-header dimensions, and payload
// bytes must be mutually consistent to the byte — a lying count, an
// oversized sub-header, or a truncated payload fails decode with
// ErrBadFrame before any sample is touched. Decoding is zero-copy and
// pooled: ReadBatchInto parses into an IngestWorkspace whose flat
// sample backing and capture structs are reused frame after frame
// (grown, never shrunk), and every decoded Capture carries a reference
// on its workspace that the consumer drops with Release. Samples are
// quantized and de-quantized with exactly the arithmetic of the v1
// path, so batch-decoded streams are bit-identical to ReadCapture's.

const (
	// batchMagic tags a version-3 batch frame.
	batchMagic = 0x41540003
	// frameHeadSize is the fixed v3 frame header.
	frameHeadSize = 12
	// subHeadSize is the fixed part of one per-capture sub-header.
	subHeadSize = 29
	// subHeadSizeDelta is the fixed sub-header with a uint32 timestamp
	// delta in place of the absolute uint64 (frame flag bit0).
	subHeadSizeDelta = 25
	// baseTSSize is the per-frame base timestamp prefix of a delta
	// frame's body.
	baseTSSize = 8
	// regionBoxSize is the optional region extension of a sub-header
	// (five float64 fields; the flags byte lives in the fixed part).
	regionBoxSize = 5 * 8
	// frameFlagDeltaTS marks a frame whose body carries a base
	// timestamp and per-capture uint32 deltas.
	frameFlagDeltaTS = 1 << 0
)

// MaxBatchCaptures bounds the captures one frame may carry.
const MaxBatchCaptures = 1024

// MaxFrameBytes bounds a frame body when decoding untrusted input: a
// hostile bodyLen can make the reader allocate at most this much.
const MaxFrameBytes = 8 << 20

// MaxDatagramBytes is the largest batch frame that fits a UDP
// datagram (65535 minus the UDP/IP headers); UploadDatagrams packs
// frames below it.
const MaxDatagramBytes = 65507

// ErrBadFrame means a v3 batch frame's header, sub-headers, and
// payload do not describe the same bytes.
var ErrBadFrame = fmt.Errorf("server: malformed batch frame")

// batchMeta is per-capture decode scratch carried between the
// sub-header pass and the sample pass.
type batchMeta struct {
	scale       float64
	nAnt, nSamp int
}

// IngestWorkspace owns the reusable backing store for pooled decode:
// one frame read buffer, one flat complex128 sample array sliced per
// antenna, and the capture structs themselves. Workspaces are
// refcounted — each decoded Capture holds one reference, dropped by
// Capture.Release — and return to the package pool when the last
// capture of a frame is released, so steady-state ingest recycles the
// same few workspaces with no per-capture allocation. Buffers grow to
// the largest frame seen and never shrink.
type IngestWorkspace struct {
	head     [frameHeadSize]byte
	frame    []byte
	samples  []complex128
	streams  [][]complex128
	captures []Capture
	meta     []batchMeta
	refs     atomic.Int32
}

var ingestPool = sync.Pool{New: func() any { return new(IngestWorkspace) }}

// leasedWorkspaces counts workspaces currently out of the pool —
// fetched by GetIngestWorkspace and not yet returned via Discard or
// the final capture Release. It is the pool-leak invariant the fault
// tests assert: once every in-flight flush has completed, the gauge
// must be back at zero, whatever connections died or groups went
// stale along the way.
var leasedWorkspaces atomic.Int64

// LeasedIngestWorkspaces returns the number of ingest workspaces
// currently leased from the pool. Zero in a quiescent process; a
// steady positive residue after drain means some path dropped a flush
// without releasing its captures.
func LeasedIngestWorkspaces() int64 { return leasedWorkspaces.Load() }

// dequantLUT maps raw int16 bits to float64(int16)/32767 — each entry
// is exactly the quotient ReadCapture computes, so pooled decode
// multiplied by the record scale stays bit-identical to the v1 path
// while skipping a float division per component (the hottest operation
// in the batched ingest profile; 512 KiB, built once).
var dequantLUT [1 << 16]float64

func init() {
	for u := 0; u < 1<<16; u++ {
		dequantLUT[u] = float64(int16(u)) / 32767
	}
}

// dequantRow fills row from raw big-endian int16 I/Q pairs, two
// samples per 8-byte load. Bit-identical to the v1 expression
// complex(float64(i16)/32767*scale, float64(q16)/32767*scale).
func dequantRow(row []complex128, raw []byte, scale float64) {
	// Slice-advance so the compiler proves every index in bounds once
	// per iteration; each 16-byte load covers four samples.
	for len(row) >= 4 && len(raw) >= 16 {
		v0 := binary.BigEndian.Uint64(raw)
		v1 := binary.BigEndian.Uint64(raw[8:])
		row[0] = complex(dequantLUT[uint16(v0>>48)]*scale, dequantLUT[uint16(v0>>32)]*scale)
		row[1] = complex(dequantLUT[uint16(v0>>16)]*scale, dequantLUT[uint16(v0)]*scale)
		row[2] = complex(dequantLUT[uint16(v1>>48)]*scale, dequantLUT[uint16(v1>>32)]*scale)
		row[3] = complex(dequantLUT[uint16(v1>>16)]*scale, dequantLUT[uint16(v1)]*scale)
		row = row[4:]
		raw = raw[16:]
	}
	for len(row) >= 1 && len(raw) >= 4 {
		v := binary.BigEndian.Uint32(raw)
		row[0] = complex(dequantLUT[uint16(v>>16)]*scale, dequantLUT[uint16(v)]*scale)
		row = row[1:]
		raw = raw[4:]
	}
}

// GetIngestWorkspace fetches a workspace from the package pool. Pass
// it to ReadCaptureInto / ReadBatchInto / ReadFrameInto /
// DecodeDatagramInto; on success the workspace belongs to the decoded
// captures (drop it by Releasing each of them), on failure hand it
// back with Discard.
func GetIngestWorkspace() *IngestWorkspace {
	leasedWorkspaces.Add(1)
	return ingestPool.Get().(*IngestWorkspace)
}

// Discard returns a workspace no captures were decoded into. Calling
// it after a successful decode corrupts the pool; use Capture.Release
// instead.
func (ws *IngestWorkspace) Discard() {
	leasedWorkspaces.Add(-1)
	ingestPool.Put(ws)
}

func (ws *IngestWorkspace) release() {
	switch n := ws.refs.Add(-1); {
	case n == 0:
		leasedWorkspaces.Add(-1)
		ingestPool.Put(ws)
	case n < 0:
		// A double release corrupts the pool silently (two goroutines
		// decoding into one workspace); fail loudly instead.
		panic("server: ingest workspace over-released")
	}
}

// Release returns the capture's decode buffers to their workspace
// pool. Captures decoded by the pooled readers borrow their Streams
// memory from an IngestWorkspace; whoever consumes a capture (the
// quorum flush's Dispatcher, or the backend itself for stale drops and
// inline Locate) must call Release exactly once when the samples are
// no longer needed. Copies of a Capture share the underlying
// reference, so release each logical capture once, not each copy. On
// captures from the plain allocating readers it is a no-op.
func (c *Capture) Release() {
	if o := c.owner; o != nil {
		c.owner = nil
		o.release()
	}
}

// ReleaseAll releases every capture in the slice.
func ReleaseAll(caps []Capture) {
	for i := range caps {
		caps[i].Release()
	}
}

// parseFrameHead validates the 8 post-magic frame header bytes.
func parseFrameHead(head []byte) (bodyLen, count int, deltaTS bool, err error) {
	bodyLen = int(binary.BigEndian.Uint32(head[4:]))
	count = int(binary.BigEndian.Uint16(head[8:]))
	fflags := binary.BigEndian.Uint16(head[10:])
	if fflags&^uint16(frameFlagDeltaTS) != 0 {
		return 0, 0, false, fmt.Errorf("%w: reserved frame-flag bits %#x", ErrBadFrame, fflags)
	}
	deltaTS = fflags&frameFlagDeltaTS != 0
	if count == 0 || count > MaxBatchCaptures {
		return 0, 0, false, fmt.Errorf("%w: %d captures per frame", ErrTooLarge, count)
	}
	if bodyLen > MaxFrameBytes {
		return 0, 0, false, fmt.Errorf("%w: %d-byte frame body", ErrTooLarge, bodyLen)
	}
	// Every capture needs its fixed sub-header plus at least one
	// 4-byte sample; a delta frame also needs its base timestamp.
	minBody := count * (subHeadSize + 4)
	if deltaTS {
		minBody = baseTSSize + count*(subHeadSizeDelta+4)
	}
	if bodyLen < minBody {
		return 0, 0, false, fmt.Errorf("%w: %d-byte body cannot hold %d captures", ErrBadFrame, bodyLen, count)
	}
	return bodyLen, count, deltaTS, nil
}

// decodeBatchBody parses a frame body (sub-headers plus contiguous
// payload) into ws and returns ws's captures. No reference to body is
// retained — samples are decoded into the workspace's own backing —
// so body may be a reused read buffer or a UDP datagram.
func decodeBatchBody(body []byte, count int, deltaTS bool, ws *IngestWorkspace) ([]Capture, error) {
	if cap(ws.captures) < count {
		ws.captures = make([]Capture, count)
	}
	if cap(ws.meta) < count {
		ws.meta = make([]batchMeta, count)
	}
	ws.captures = ws.captures[:count]
	caps := ws.captures
	meta := ws.meta[:count]

	// Pass 1: sub-headers. Dimensions and regions are validated here,
	// before any sample work, so a hostile frame costs O(count).
	off := 0
	var baseUS int64
	subSize := subHeadSize
	if deltaTS {
		// parseFrameHead's minimum-body check guarantees the base
		// timestamp prefix is present.
		baseUS = int64(binary.BigEndian.Uint64(body))
		off = baseTSSize
		subSize = subHeadSizeDelta
	}
	totalSamp, totalAnt := 0, 0
	for i := 0; i < count; i++ {
		if len(body)-off < subSize {
			return nil, fmt.Errorf("%w: truncated sub-header %d", ErrBadFrame, i)
		}
		sub := body[off : off+subSize]
		off += subSize
		// The dimension/scale/flags tail sits right after the timestamp
		// field, whose width is the only difference between the forms.
		tail := sub[subHeadSize-9:]
		var tstamp time.Time
		if deltaTS {
			tail = sub[subHeadSizeDelta-9:]
			tstamp = time.UnixMicro(baseUS + int64(binary.BigEndian.Uint32(sub[12:]))).UTC()
		} else {
			tstamp = time.UnixMicro(int64(binary.BigEndian.Uint64(sub[12:]))).UTC()
		}
		nAnt := int(binary.BigEndian.Uint16(tail[4:]))
		nSamp := int(binary.BigEndian.Uint16(tail[6:]))
		if nAnt == 0 || nAnt > MaxAntennas || nSamp == 0 || nSamp > MaxSamples {
			return nil, fmt.Errorf("%w: capture %d declares %d×%d", ErrTooLarge, i, nAnt, nSamp)
		}
		flags := tail[8]
		if flags&^(flagHasRegion|flagPriority) != 0 {
			return nil, fmt.Errorf("%w: unknown flags %#x", ErrBadRegion, flags)
		}
		caps[i] = Capture{
			APID:      binary.BigEndian.Uint32(sub[0:]),
			ClientID:  binary.BigEndian.Uint32(sub[4:]),
			Seq:       binary.BigEndian.Uint32(sub[8:]),
			Timestamp: tstamp,
			Priority:  flags&flagPriority != 0,
		}
		if flags&flagHasRegion != 0 {
			if len(body)-off < regionBoxSize {
				return nil, fmt.Errorf("%w: truncated region on capture %d", ErrBadFrame, i)
			}
			box := body[off : off+regionBoxSize]
			off += regionBoxSize
			region := core.Region{
				Min:  geom.Pt(math.Float64frombits(binary.BigEndian.Uint64(box[0:])), math.Float64frombits(binary.BigEndian.Uint64(box[8:]))),
				Max:  geom.Pt(math.Float64frombits(binary.BigEndian.Uint64(box[16:])), math.Float64frombits(binary.BigEndian.Uint64(box[24:]))),
				Cell: math.Float64frombits(binary.BigEndian.Uint64(box[32:])),
			}
			if region.IsZero() {
				return nil, fmt.Errorf("%w: region flag set on zero box", ErrBadRegion)
			}
			if err := region.Validate(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadRegion, err)
			}
			caps[i].Region = region
		}
		meta[i] = batchMeta{
			scale: float64(math.Float32frombits(binary.BigEndian.Uint32(tail))),
			nAnt:  nAnt, nSamp: nSamp,
		}
		totalSamp += nAnt * nSamp
		totalAnt += nAnt
	}
	payload := body[off:]
	if len(payload) != totalSamp*4 {
		return nil, fmt.Errorf("%w: %d payload bytes for %d declared samples", ErrBadFrame, len(payload), totalSamp)
	}

	// Pass 2: samples, decoded into the workspace's flat backing and
	// sliced per antenna — the same de-quantization expression as
	// ReadCapture, so the streams are bit-identical.
	if cap(ws.samples) < totalSamp {
		ws.samples = make([]complex128, totalSamp)
	}
	if cap(ws.streams) < totalAnt {
		ws.streams = make([][]complex128, totalAnt)
	}
	samples := ws.samples[:totalSamp]
	streams := ws.streams[:totalAnt]
	po, so, ao := 0, 0, 0
	for i := range caps {
		m := &meta[i]
		st := streams[ao : ao+m.nAnt : ao+m.nAnt]
		ao += m.nAnt
		for a := 0; a < m.nAnt; a++ {
			row := samples[so : so+m.nSamp : so+m.nSamp]
			so += m.nSamp
			dequantRow(row, payload[po:po+4*m.nSamp], m.scale)
			po += 4 * m.nSamp
			st[a] = row
		}
		caps[i].Streams = st
		caps[i].owner = ws
	}
	ws.refs.Store(int32(count))
	return caps, nil
}

// readBatchBody reads and decodes a frame whose magic has already been
// consumed into ws.head[:4].
func readBatchBody(r io.Reader, ws *IngestWorkspace) ([]Capture, error) {
	if _, err := io.ReadFull(r, ws.head[4:frameHeadSize]); err != nil {
		return nil, fmt.Errorf("server: short frame header: %w", err)
	}
	bodyLen, count, deltaTS, err := parseFrameHead(ws.head[:])
	if err != nil {
		return nil, err
	}
	if cap(ws.frame) < bodyLen {
		ws.frame = make([]byte, bodyLen)
	}
	body := ws.frame[:bodyLen]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("server: short frame body: %w", err)
	}
	return decodeBatchBody(body, count, deltaTS, ws)
}

// readCaptureBody decodes one v1/v2 record whose magic has already
// been consumed, into ws (zero-copy pooled variant of ReadCapture).
func readCaptureBody(r io.Reader, magic uint32, ws *IngestWorkspace) (*Capture, error) {
	// The fixed header tail, the optional region extension, and the
	// payload all stage through ws.frame.
	if cap(ws.frame) < 28+regionExtSize {
		ws.frame = make([]byte, 28+regionExtSize)
	}
	head := ws.frame[:28]
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("server: short header: %w", err)
	}
	if cap(ws.captures) < 1 {
		ws.captures = make([]Capture, 1)
	}
	ws.captures = ws.captures[:1]
	c := &ws.captures[0]
	*c = Capture{
		APID:      binary.BigEndian.Uint32(head[0:]),
		ClientID:  binary.BigEndian.Uint32(head[4:]),
		Seq:       binary.BigEndian.Uint32(head[8:]),
		Timestamp: time.UnixMicro(int64(binary.BigEndian.Uint64(head[12:]))).UTC(),
	}
	scale := float64(math.Float32frombits(binary.BigEndian.Uint32(head[20:])))
	nAnt := int(binary.BigEndian.Uint16(head[24:]))
	nSamp := int(binary.BigEndian.Uint16(head[26:]))
	if nAnt == 0 || nAnt > MaxAntennas || nSamp == 0 || nSamp > MaxSamples {
		return nil, ErrTooLarge
	}
	if magic == protocolMagicV2 {
		ext := ws.frame[28 : 28+regionExtSize]
		if _, err := io.ReadFull(r, ext); err != nil {
			return nil, fmt.Errorf("server: short region extension: %w", err)
		}
		flags := ext[0]
		if flags&^(flagHasRegion|flagPriority) != 0 {
			return nil, fmt.Errorf("%w: unknown flags %#x", ErrBadRegion, flags)
		}
		c.Priority = flags&flagPriority != 0
		region := core.Region{
			Min:  geom.Pt(math.Float64frombits(binary.BigEndian.Uint64(ext[1:])), math.Float64frombits(binary.BigEndian.Uint64(ext[9:]))),
			Max:  geom.Pt(math.Float64frombits(binary.BigEndian.Uint64(ext[17:])), math.Float64frombits(binary.BigEndian.Uint64(ext[25:]))),
			Cell: math.Float64frombits(binary.BigEndian.Uint64(ext[33:])),
		}
		if flags&flagHasRegion != 0 {
			if region.IsZero() {
				return nil, fmt.Errorf("%w: region flag set on zero box", ErrBadRegion)
			}
			if err := region.Validate(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadRegion, err)
			}
			c.Region = region
		} else if region != (core.Region{}) {
			return nil, fmt.Errorf("%w: region bytes without region flag", ErrBadRegion)
		}
	}
	payloadLen := nAnt * nSamp * 4
	if cap(ws.frame) < payloadLen {
		ws.frame = make([]byte, payloadLen)
	}
	payload := ws.frame[:payloadLen]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("server: short payload: %w", err)
	}
	if cap(ws.samples) < nAnt*nSamp {
		ws.samples = make([]complex128, nAnt*nSamp)
	}
	if cap(ws.streams) < nAnt {
		ws.streams = make([][]complex128, nAnt)
	}
	samples := ws.samples[:nAnt*nSamp]
	streams := ws.streams[:nAnt:nAnt]
	for a := 0; a < nAnt; a++ {
		row := samples[a*nSamp : (a+1)*nSamp : (a+1)*nSamp]
		dequantRow(row, payload[a*nSamp*4:(a+1)*nSamp*4], scale)
		streams[a] = row
	}
	c.Streams = streams
	c.owner = ws
	ws.refs.Store(1)
	return c, nil
}

// readMagic consumes the 4-byte version tag, passing a clean EOF
// through unchanged.
func readMagic(r io.Reader, ws *IngestWorkspace) (uint32, error) {
	if _, err := io.ReadFull(r, ws.head[:4]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("server: short header: %w", err)
	}
	return binary.BigEndian.Uint32(ws.head[:4]), nil
}

// ReadCaptureInto decodes one v1/v2 record from r into ws — the
// pooled, zero-copy variant of ReadCapture (bit-identical streams).
// On success the returned capture owns ws; drop it with Release. On
// error (and clean EOF) the caller keeps ws and should Discard it.
func ReadCaptureInto(r io.Reader, ws *IngestWorkspace) (*Capture, error) {
	magic, err := readMagic(r, ws)
	if err != nil {
		return nil, err
	}
	if magic != protocolMagic && magic != protocolMagicV2 {
		return nil, ErrBadMagic
	}
	return readCaptureBody(r, magic, ws)
}

// ReadBatchInto decodes one v3 batch frame from r into ws. On success
// the returned captures collectively own ws — Release every one when
// consumed. On error the caller keeps ws and should Discard it.
func ReadBatchInto(r io.Reader, ws *IngestWorkspace) ([]Capture, error) {
	magic, err := readMagic(r, ws)
	if err != nil {
		return nil, err
	}
	if magic != batchMagic {
		return nil, ErrBadMagic
	}
	return readBatchBody(r, ws)
}

// ReadFrameInto decodes whatever the stream carries next — a v1/v2
// single record or a v3 batch frame — into ws. The mixed-version
// reader behind ServeConn: existing per-record writers and batch
// writers share one port. Ownership is as in ReadBatchInto.
func ReadFrameInto(r io.Reader, ws *IngestWorkspace) ([]Capture, error) {
	magic, err := readMagic(r, ws)
	if err != nil {
		return nil, err
	}
	switch magic {
	case protocolMagic, protocolMagicV2:
		if _, err := readCaptureBody(r, magic, ws); err != nil {
			return nil, err
		}
		return ws.captures[:1], nil
	case batchMagic:
		return readBatchBody(r, ws)
	default:
		return nil, ErrBadMagic
	}
}

// DecodeDatagramInto decodes one UDP datagram holding exactly one v3
// batch frame. The datagram buffer may be reused immediately after
// return — samples are copied into ws. Ownership is as in
// ReadBatchInto.
func DecodeDatagramInto(data []byte, ws *IngestWorkspace) ([]Capture, error) {
	if len(data) < frameHeadSize {
		return nil, fmt.Errorf("%w: %d-byte datagram", ErrBadFrame, len(data))
	}
	if binary.BigEndian.Uint32(data[0:]) != batchMagic {
		return nil, ErrBadMagic
	}
	bodyLen, count, deltaTS, err := parseFrameHead(data[:frameHeadSize])
	if err != nil {
		return nil, err
	}
	// A datagram is self-delimiting: the frame must fill it exactly.
	if bodyLen != len(data)-frameHeadSize {
		return nil, fmt.Errorf("%w: bodyLen %d in %d-byte datagram", ErrBadFrame, bodyLen, len(data))
	}
	return decodeBatchBody(data[frameHeadSize:], count, deltaTS, ws)
}

// subSizeOf returns capture c's sub-header size on the wire.
func subSizeOf(c *Capture) int {
	if !c.Region.IsZero() {
		return subHeadSize + regionBoxSize
	}
	return subHeadSize
}

// BatchFrameSize returns the exact on-wire bytes of a v3 frame
// carrying caps — the planning quantity for datagram packing.
func BatchFrameSize(caps []Capture) int {
	size := frameHeadSize
	for i := range caps {
		c := &caps[i]
		size += subSizeOf(c) + len(c.Streams)*len(c.Streams[0])*4
	}
	return size
}

// AppendBatch appends one v3 batch frame carrying caps to dst and
// returns the extended slice. Callers reusing dst encode with zero
// per-frame allocations.
func AppendBatch(dst []byte, caps []Capture) ([]byte, error) {
	return appendBatch(dst, caps, false, 0)
}

// AppendBatchDelta is AppendBatch with the compact timestamp form:
// the frame carries one base timestamp and a uint32 µs delta per
// capture, saving 4 bytes per sub-header. When the frame's timestamp
// span cannot be represented (a capture more than 2³²−1 µs past the
// earliest), it transparently falls back to the absolute form — both
// decode to bit-identical captures.
func AppendBatchDelta(dst []byte, caps []Capture) ([]byte, error) {
	if len(caps) == 0 {
		return AppendBatch(dst, caps) // same error path
	}
	baseUS := caps[0].Timestamp.UnixMicro()
	for i := 1; i < len(caps); i++ {
		if us := caps[i].Timestamp.UnixMicro(); us < baseUS {
			baseUS = us
		}
	}
	for i := range caps {
		// A negative difference can only mean int64 wraparound on
		// far-future/far-past extremes — not representable either.
		if d := caps[i].Timestamp.UnixMicro() - baseUS; d < 0 || d > math.MaxUint32 {
			return appendBatch(dst, caps, false, 0)
		}
	}
	return appendBatch(dst, caps, true, baseUS)
}

func appendBatch(dst []byte, caps []Capture, deltaTS bool, baseUS int64) ([]byte, error) {
	n := len(caps)
	if n == 0 || n > MaxBatchCaptures {
		return dst, fmt.Errorf("%w: %d captures per frame", ErrTooLarge, n)
	}
	subSize := subHeadSize
	if deltaTS {
		subSize = subHeadSizeDelta
	}
	// Size the sub-header block first so payloads can append behind
	// it; dimensions and regions are validated before a byte lands.
	subTotal, payloadTotal := 0, 0
	if deltaTS {
		subTotal = baseTSSize
	}
	for i := range caps {
		c := &caps[i]
		nAnt := len(c.Streams)
		if nAnt == 0 || nAnt > MaxAntennas {
			return dst, fmt.Errorf("%w: %d antennas", ErrTooLarge, nAnt)
		}
		nSamp := len(c.Streams[0])
		if nSamp == 0 || nSamp > MaxSamples {
			return dst, fmt.Errorf("%w: %d samples", ErrTooLarge, nSamp)
		}
		if !c.Region.IsZero() {
			if err := c.Region.Validate(); err != nil {
				return dst, fmt.Errorf("%w: %v", ErrBadRegion, err)
			}
		}
		subTotal += subSize
		if !c.Region.IsZero() {
			subTotal += regionBoxSize
		}
		payloadTotal += nAnt * nSamp * 4
	}
	bodyLen := subTotal + payloadTotal
	if bodyLen > MaxFrameBytes {
		return dst, fmt.Errorf("%w: %d-byte frame body", ErrTooLarge, bodyLen)
	}
	base := len(dst)
	dst = growSlice(dst, frameHeadSize+subTotal)
	binary.BigEndian.PutUint32(dst[base:], batchMagic)
	binary.BigEndian.PutUint32(dst[base+4:], uint32(bodyLen))
	binary.BigEndian.PutUint16(dst[base+8:], uint16(n))
	var fflags uint16
	if deltaTS {
		fflags |= frameFlagDeltaTS
	}
	binary.BigEndian.PutUint16(dst[base+10:], fflags)
	off := base + frameHeadSize
	if deltaTS {
		binary.BigEndian.PutUint64(dst[off:], uint64(baseUS))
		off += baseTSSize
	}
	for i := range caps {
		c := &caps[i]
		nAnt, nSamp, peak, err := captureDims(c)
		if err != nil {
			return dst, err
		}
		sub := dst[off : off+subSize]
		binary.BigEndian.PutUint32(sub[0:], c.APID)
		binary.BigEndian.PutUint32(sub[4:], c.ClientID)
		binary.BigEndian.PutUint32(sub[8:], c.Seq)
		var tail []byte
		if deltaTS {
			binary.BigEndian.PutUint32(sub[12:], uint32(c.Timestamp.UnixMicro()-baseUS))
			tail = sub[16:]
		} else {
			binary.BigEndian.PutUint64(sub[12:], uint64(c.Timestamp.UnixMicro()))
			tail = sub[20:]
		}
		binary.BigEndian.PutUint32(tail[0:], math.Float32bits(float32(peak)))
		binary.BigEndian.PutUint16(tail[4:], uint16(nAnt))
		binary.BigEndian.PutUint16(tail[6:], uint16(nSamp))
		var flags byte
		if !c.Region.IsZero() {
			flags |= flagHasRegion
		}
		if c.Priority {
			flags |= flagPriority
		}
		tail[8] = flags
		off += subSize
		if flags&flagHasRegion != 0 {
			box := dst[off : off+regionBoxSize]
			binary.BigEndian.PutUint64(box[0:], math.Float64bits(c.Region.Min.X))
			binary.BigEndian.PutUint64(box[8:], math.Float64bits(c.Region.Min.Y))
			binary.BigEndian.PutUint64(box[16:], math.Float64bits(c.Region.Max.X))
			binary.BigEndian.PutUint64(box[24:], math.Float64bits(c.Region.Max.Y))
			binary.BigEndian.PutUint64(box[32:], math.Float64bits(c.Region.Cell))
			off += regionBoxSize
		}
		dst = appendPayload(dst, c, peak, nAnt, nSamp)
	}
	return dst, nil
}

// WriteBatch encodes caps as one v3 batch frame and writes it with a
// single Write call — one syscall per burst, from a pooled buffer.
func WriteBatch(w io.Writer, caps []Capture) error {
	return writeBatch(w, caps, AppendBatch)
}

// WriteBatchDelta is WriteBatch with AppendBatchDelta's compact
// timestamp form (absolute fallback included).
func WriteBatchDelta(w io.Writer, caps []Capture) error {
	return writeBatch(w, caps, AppendBatchDelta)
}

func writeBatch(w io.Writer, caps []Capture, enc func([]byte, []Capture) ([]byte, error)) error {
	bp := encodeBufPool.Get().(*[]byte)
	buf, err := enc((*bp)[:0], caps)
	if err == nil {
		_, err = w.Write(buf)
	}
	*bp = buf
	encodeBufPool.Put(bp)
	return err
}
