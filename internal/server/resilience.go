package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"syscall"
	"time"
)

// ErrRetriesExhausted wraps the last transient error once UploadRetry
// gives up after RetryOptions.MaxAttempts consecutive failures. It is
// the exit-code boundary for AP-side tooling: errors.Is(err,
// ErrRetriesExhausted) means "the network never came back", while any
// other error from UploadRetry is fatal (a bug or a refused frame,
// not weather).
var ErrRetriesExhausted = errors.New("server: upload retries exhausted")

// IsTransientNetError reports whether err looks like network weather
// — a timeout, refused/reset/aborted connection, or unreachable host
// — rather than a protocol or programming error. UploadRetry retries
// exactly these; everything else fails fast.
func IsTransientNetError(err error) bool {
	if err == nil {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	for _, target := range []error{
		syscall.ECONNREFUSED, syscall.ECONNRESET, syscall.ECONNABORTED,
		syscall.EPIPE, syscall.ETIMEDOUT, syscall.EHOSTUNREACH,
		syscall.ENETUNREACH, syscall.ENETRESET,
	} {
		if errors.Is(err, target) {
			return true
		}
	}
	// Test harnesses (net.Pipe, chaos injectors) surface peer death as
	// closed pipes and unexpected EOFs; a real peer reset can too.
	return errors.Is(err, io.ErrClosedPipe) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// RetryOptions configures APNode.UploadRetry. The zero value retries
// with 100 ms..5 s jittered exponential backoff for up to 8
// consecutive failures, shipping v3 frames of up to 16 captures.
type RetryOptions struct {
	// Batch is the captures per v3 frame (≤0 means 16, capped at
	// MaxBatchCaptures).
	Batch int
	// MinBackoff is the first reconnect delay (0 means 100 ms);
	// MaxBackoff caps the doubling (0 means 5 s).
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Jitter randomizes each delay by ±Jitter fraction so a fleet of
	// APs reconnecting after an outage does not stampede the server in
	// lockstep (0 means 0.2; negative disables).
	Jitter float64
	// MaxAttempts is the number of consecutive failed attempts (dials
	// or writes, without an intervening successful write) before
	// giving up with ErrRetriesExhausted (0 means 8).
	MaxAttempts int
	// OnAttempt, when non-nil, observes every failed attempt before
	// its backoff sleep — the "log one line per reconnect" hook.
	OnAttempt func(attempt int, backoff time.Duration, err error)
	// Rand supplies jitter variates (deterministic tests); nil uses
	// the global source.
	Rand *rand.Rand
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.Batch <= 0 {
		o.Batch = 16
	}
	if o.Batch > MaxBatchCaptures {
		o.Batch = MaxBatchCaptures
	}
	if o.MinBackoff <= 0 {
		o.MinBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.Jitter == 0 {
		o.Jitter = 0.2
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	return o
}

// backoff returns the attempt'th jittered exponential delay.
func (o RetryOptions) backoff(attempt int) time.Duration {
	d := o.MinBackoff
	for i := 1; i < attempt && d < o.MaxBackoff; i++ {
		d *= 2
	}
	if d > o.MaxBackoff {
		d = o.MaxBackoff
	}
	if o.Jitter > 0 {
		var u float64
		if o.Rand != nil {
			u = o.Rand.Float64()
		} else {
			u = rand.Float64()
		}
		d = time.Duration(float64(d) * (1 + o.Jitter*(2*u-1)))
	}
	return d
}

// sleep waits for d or the context, whichever ends first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// UploadRetry drains the buffer like UploadBatch but survives the
// network: it dials its own connections, reconnects with jittered
// exponential backoff when a dial or write fails transiently, and
// replays the in-flight batch on the new connection — bounded replay:
// at most one batch (the captures already popped from the
// CircularBuffer when the wire died) is ever held for redelivery, so
// an outage costs one frame of potential duplication, never unbounded
// buffering on top of the ring. Delivery is therefore at-least-once;
// the backend's per-AP sequence numbers absorb duplicates.
//
// It returns nil once the buffer is empty and everything held has
// been delivered, the context error on cancellation, a wrapped
// ErrRetriesExhausted after MaxAttempts consecutive transient
// failures, and the underlying error immediately for non-transient
// failures (see IsTransientNetError).
func (n *APNode) UploadRetry(ctx context.Context, dial func(context.Context) (net.Conn, error), opt RetryOptions) error {
	opt = opt.withDefaults()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	caps := make([]Capture, 0, opt.Batch)
	attempt := 0
	replay := false
	fail := func(err error) error {
		attempt++
		if attempt >= opt.MaxAttempts {
			return fmt.Errorf("%w: %d consecutive attempts, last error: %v", ErrRetriesExhausted, attempt, err)
		}
		d := opt.backoff(attempt)
		if opt.OnAttempt != nil {
			opt.OnAttempt(attempt, d, err)
		}
		return sleep(ctx, d)
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if conn == nil {
			c, err := dial(ctx)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				if !IsTransientNetError(err) {
					return fmt.Errorf("server: dial: %w", err)
				}
				if err := fail(err); err != nil {
					return err
				}
				continue
			}
			conn = c
		}
		if !replay {
			caps = caps[:0]
			for len(caps) < opt.Batch {
				c, ok := n.Buffer.Pop()
				if !ok {
					break
				}
				caps = append(caps, c)
			}
			if len(caps) == 0 {
				return nil
			}
		}
		if err := WriteBatch(conn, caps); err != nil {
			conn.Close()
			conn = nil
			if !IsTransientNetError(err) {
				return fmt.Errorf("server: upload: %w", err)
			}
			replay = true // the popped batch is held; resend on reconnect
			if err := fail(err); err != nil {
				return err
			}
			continue
		}
		replay = false
		attempt = 0 // a delivered frame resets the consecutive-failure count
	}
}
