package server

import (
	"math/rand"
	"testing"
	"time"
)

// TestIngestBatchAbsorbsTrailingBurstCaptures pins the flush-absorption
// rule: quorum fires on the Nth distinct AP's first capture, and the
// flushing client's remaining same-burst captures must ride that flush
// — order preserved, released exactly-once by the flush owner —
// instead of stranding in a fresh group that surfaces later as a
// spurious degraded flush and pinned pool workspaces.
func TestIngestBatchAbsorbsTrailingBurstCaptures(t *testing.T) {
	baseline := LeasedIngestWorkspaces()
	clock := newFakeClock()
	d := &recordDispatcher{}
	b := NewBackendDispatcher(2, 100*time.Millisecond, d)
	b.DegradedQuorum = 1
	b.DegradedAfter = 200 * time.Millisecond
	b.Now = clock.Now

	rng := rand.New(rand.NewSource(41))
	ts := clock.Now()
	// AP 1's burst: three frames for client 7, below quorum.
	b.IngestBatch(pooledCaps(t, []Capture{
		wireCapture(rng, 1, 7, ts),
		wireCapture(rng, 1, 7, ts.Add(time.Millisecond)),
		wireCapture(rng, 1, 7, ts.Add(2*time.Millisecond)),
	}))
	if got := d.take(); len(got) != 0 {
		t.Fatalf("flush fired below quorum: %d flushes", len(got))
	}
	// AP 2's burst: quorum completes on its first capture; the two
	// trailing frames must be absorbed into the same flush.
	b.IngestBatch(pooledCaps(t, []Capture{
		wireCapture(rng, 2, 7, ts.Add(3*time.Millisecond)),
		wireCapture(rng, 2, 7, ts.Add(4*time.Millisecond)),
		wireCapture(rng, 2, 7, ts.Add(5*time.Millisecond)),
	}))
	flushes := d.take()
	if len(flushes) != 1 {
		t.Fatalf("want exactly one flush, got %d", len(flushes))
	}
	f := flushes[0]
	if len(f) != 6 {
		t.Fatalf("want 6 captures (3 pending + trigger + 2 absorbed), got %d", len(f))
	}
	wantAPs := []uint32{1, 1, 1, 2, 2, 2}
	for i := range f {
		if f[i].APID != wantAPs[i] {
			t.Errorf("flush[%d]: AP %d, want %d (order not preserved)", i, f[i].APID, wantAPs[i])
		}
		if f[i].Degraded {
			t.Errorf("flush[%d]: flagged Degraded on a full-quorum flush", i)
		}
		if i > 0 && f[i].Timestamp.Before(f[i-1].Timestamp) {
			t.Errorf("flush[%d]: timestamp order not preserved", i)
		}
	}
	if got := b.IngestedCaptures(); got != 6 {
		t.Errorf("IngestedCaptures = %d, want 6", got)
	}

	// Nothing stranded: ageing well past DegradedAfter must find no
	// stuck group to flush degraded or drop.
	clock.advance(time.Second)
	flushed, dropped := b.Sweep()
	if flushed != 0 || dropped != 0 {
		t.Fatalf("spurious sweep work on absorbed burst: flushed=%d dropped=%d", flushed, dropped)
	}
	if got := b.Health().DegradedFlushes; got != 0 {
		t.Fatalf("spurious degraded flushes: %d", got)
	}
	if got := d.take(); len(got) != 0 {
		t.Fatalf("sweep dispatched %d flushes, want 0", len(got))
	}
	if leaked := LeasedIngestWorkspaces() - baseline; leaked != 0 {
		t.Fatalf("leaked %d pooled ingest workspaces", leaked)
	}
}

// TestIngestBatchAbsorbsIntoDegradedFlush: when the flush that fires
// mid-burst is a degraded one, the absorbed trailing captures inherit
// the Degraded flag so the whole group is marked consistently
// downstream.
func TestIngestBatchAbsorbsIntoDegradedFlush(t *testing.T) {
	baseline := LeasedIngestWorkspaces()
	clock := newFakeClock()
	d := &recordDispatcher{}
	b := NewBackendDispatcher(3, 100*time.Millisecond, d)
	b.DegradedQuorum = 1
	b.DegradedAfter = 200 * time.Millisecond
	b.Now = clock.Now

	rng := rand.New(rand.NewSource(42))
	ts := clock.Now()
	// One AP-1 capture, then the group goes stale-stuck (the third AP
	// never reports).
	c := pooledCaps(t, []Capture{wireCapture(rng, 1, 9, ts)})
	b.Ingest(&c[0])
	clock.advance(300 * time.Millisecond)
	// AP 2's burst arrives: its first capture trips degraded serving
	// (age ≥ DegradedAfter at distinct 2 < quorum 3); the two trailing
	// frames must join that degraded flush, flagged like the rest.
	b.IngestBatch(pooledCaps(t, []Capture{
		wireCapture(rng, 2, 9, ts.Add(50*time.Millisecond)),
		wireCapture(rng, 2, 9, ts.Add(51*time.Millisecond)),
		wireCapture(rng, 2, 9, ts.Add(52*time.Millisecond)),
	}))
	flushes := d.take()
	if len(flushes) != 1 {
		t.Fatalf("want exactly one degraded flush, got %d", len(flushes))
	}
	f := flushes[0]
	if len(f) != 4 {
		t.Fatalf("want 4 captures (pending + trigger + 2 absorbed), got %d", len(f))
	}
	for i := range f {
		if !f[i].Degraded {
			t.Errorf("flush[%d]: not flagged Degraded", i)
		}
	}
	if got := b.Health().DegradedFlushes; got != 1 {
		t.Fatalf("DegradedFlushes = %d, want 1", got)
	}
	clock.advance(time.Second)
	if flushed, dropped := b.Sweep(); flushed != 0 || dropped != 0 {
		t.Fatalf("spurious sweep work: flushed=%d dropped=%d", flushed, dropped)
	}
	if leaked := LeasedIngestWorkspaces() - baseline; leaked != 0 {
		t.Fatalf("leaked %d pooled ingest workspaces", leaked)
	}
}
