package server

// Fuzzing for the wire decoder: the backend reads capture records from
// whatever connects to its TCP port, so ReadCapture and ServeConn must
// reject arbitrary garbage with an error — never a panic, and never an
// unbounded allocation. `go test` runs the seed corpus; `go test
// -fuzz=FuzzReadCapture ./internal/server` explores further.

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// validRecord encodes one well-formed capture to seed the corpus.
func validRecord(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	c := &Capture{
		APID:      3,
		ClientID:  7,
		Seq:       1,
		Timestamp: time.UnixMicro(1700000000000000).UTC(),
		Streams: [][]complex128{
			{complex(0.5, -0.25), complex(-1, 0.125)},
			{complex(0.75, 0.5), complex(0.25, -0.75)},
		},
	}
	if err := WriteCapture(&buf, c); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadCapture(f *testing.F) {
	valid := validRecord(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:8])                   // truncated header
	f.Add(valid[:len(valid)-3])        // truncated payload
	f.Add(bytes.Repeat([]byte{0}, 64)) // zero magic

	// Plausible header fields with hostile dimensions.
	hostile := append([]byte(nil), valid...)
	binary.BigEndian.PutUint16(hostile[28:], 0xFFFF) // nAnt far over MaxAntennas
	binary.BigEndian.PutUint16(hostile[30:], 0xFFFF) // nSamp far over MaxSamples
	f.Add(hostile)
	zeroDims := append([]byte(nil), valid...)
	binary.BigEndian.PutUint16(zeroDims[28:], 0)
	f.Add(zeroDims)
	nanScale := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(nanScale[24:], 0x7FC00000) // NaN scale
	f.Add(nanScale)
	f.Add(append(append([]byte(nil), valid...), valid...)) // two records

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCapture(bytes.NewReader(data))
		if err == nil {
			if c == nil {
				t.Fatal("nil capture with nil error")
			}
			if len(c.Streams) == 0 || len(c.Streams) > MaxAntennas || len(c.Streams[0]) > MaxSamples {
				t.Fatalf("decoded record violates protocol limits: %d antennas", len(c.Streams))
			}
			// Anything that decodes must re-encode.
			if err := WriteCapture(&bytes.Buffer{}, c); err != nil {
				t.Fatalf("decoded capture failed to re-encode: %v", err)
			}
		}
		// The ingest path must swallow the same bytes without
		// panicking, whatever the error outcome.
		b := NewBackend(1000, time.Second, func(uint32, []Capture) {})
		_ = b.ServeConn(bytes.NewReader(data))
	})
}
