package server

// Fuzzing for the wire decoder: the backend reads capture records from
// whatever connects to its TCP port, so ReadCapture and ServeConn must
// reject arbitrary garbage with an error — never a panic, and never an
// unbounded allocation. `go test` runs the seed corpus; `go test
// -fuzz=FuzzReadCapture ./internal/server` explores further.

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

// validRecord encodes one well-formed capture to seed the corpus.
func validRecord(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	c := &Capture{
		APID:      3,
		ClientID:  7,
		Seq:       1,
		Timestamp: time.UnixMicro(1700000000000000).UTC(),
		Streams: [][]complex128{
			{complex(0.5, -0.25), complex(-1, 0.125)},
			{complex(0.75, 0.5), complex(0.25, -0.75)},
		},
	}
	if err := WriteCapture(&buf, c); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// validRegionRecord encodes a well-formed v2 capture (region +
// priority) to seed the corpus.
func validRegionRecord(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	c := &Capture{
		APID:      2,
		ClientID:  9,
		Seq:       4,
		Timestamp: time.UnixMicro(1700000000000000).UTC(),
		Region:    core.Region{Min: geom.Pt(3, 2), Max: geom.Pt(11.5, 9.25), Cell: 0.25},
		Priority:  true,
		Streams: [][]complex128{
			{complex(0.5, -0.25), complex(-1, 0.125)},
			{complex(0.75, 0.5), complex(0.25, -0.75)},
		},
	}
	if err := WriteCapture(&buf, c); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// putRegion overwrites the region box of a v2 record in place.
func putRegion(rec []byte, minX, minY, maxX, maxY, cell float64) []byte {
	out := append([]byte(nil), rec...)
	binary.BigEndian.PutUint64(out[33:], math.Float64bits(minX))
	binary.BigEndian.PutUint64(out[41:], math.Float64bits(minY))
	binary.BigEndian.PutUint64(out[49:], math.Float64bits(maxX))
	binary.BigEndian.PutUint64(out[57:], math.Float64bits(maxY))
	binary.BigEndian.PutUint64(out[65:], math.Float64bits(cell))
	return out
}

func FuzzReadCapture(f *testing.F) {
	valid := validRecord(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:8])                   // truncated header
	f.Add(valid[:len(valid)-3])        // truncated payload
	f.Add(bytes.Repeat([]byte{0}, 64)) // zero magic

	// Plausible header fields with hostile dimensions.
	hostile := append([]byte(nil), valid...)
	binary.BigEndian.PutUint16(hostile[28:], 0xFFFF) // nAnt far over MaxAntennas
	binary.BigEndian.PutUint16(hostile[30:], 0xFFFF) // nSamp far over MaxSamples
	f.Add(hostile)
	zeroDims := append([]byte(nil), valid...)
	binary.BigEndian.PutUint16(zeroDims[28:], 0)
	f.Add(zeroDims)
	nanScale := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(nanScale[24:], 0x7FC00000) // NaN scale
	f.Add(nanScale)
	f.Add(append(append([]byte(nil), valid...), valid...)) // two records

	// Version-2 region records: one well-formed, then a battery of
	// degenerate, inverted, NaN/Inf, and out-of-range boxes that the
	// decoder must reject cleanly (error, never a panic).
	validV2 := validRegionRecord(f)
	f.Add(validV2)
	f.Add(validV2[:40])             // truncated region extension
	f.Add(validV2[:33])             // flags byte only
	f.Add(validV2[:len(validV2)-5]) // truncated payload after region
	nan := math.NaN()
	f.Add(putRegion(validV2, nan, 2, 11.5, 9.25, 0.25))      // NaN corner
	f.Add(putRegion(validV2, 3, 2, math.Inf(1), 9.25, 0.25)) // Inf corner
	f.Add(putRegion(validV2, 11.5, 9.25, 3, 2, 0.25))        // inverted box
	f.Add(putRegion(validV2, 3, 2, 3, 9.25, 0.25))           // degenerate (zero width)
	f.Add(putRegion(validV2, 3, 2, 11.5, 2, 0.25))           // degenerate (zero height)
	f.Add(putRegion(validV2, 0, 0, 0, 0, 0))                 // region flag on zero box
	f.Add(putRegion(validV2, 3, 2, 11.5, 9.25, nan))         // NaN cell
	f.Add(putRegion(validV2, 3, 2, 11.5, 9.25, -1))          // negative cell
	f.Add(putRegion(validV2, 3, 2, 11.5, 9.25, 1e-9))        // cell below MinRegionCell
	f.Add(putRegion(validV2, -1e12, 2, 11.5, 9.25, 0.25))    // coordinate out of range
	badFlags := append([]byte(nil), validV2...)
	badFlags[32] = 0xFF // unknown flag bits
	f.Add(badFlags)
	noFlagRegion := append([]byte(nil), validV2...)
	noFlagRegion[32] = 0 // region bytes present but flag clear
	f.Add(noFlagRegion)
	v2Magic := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(v2Magic[0:], 0x41540002) // v2 magic on a v1 body
	f.Add(v2Magic)
	v3Magic := append([]byte(nil), validV2...)
	binary.BigEndian.PutUint32(v3Magic[0:], 0x41540003) // batch magic on a v2 body
	f.Add(v3Magic)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCapture(bytes.NewReader(data))
		if err == nil {
			if c == nil {
				t.Fatal("nil capture with nil error")
			}
			if len(c.Streams) == 0 || len(c.Streams) > MaxAntennas || len(c.Streams[0]) > MaxSamples {
				t.Fatalf("decoded record violates protocol limits: %d antennas", len(c.Streams))
			}
			// A decoded region is always either unset or valid: hostile
			// boxes must never survive decode.
			if err := c.Region.Validate(); err != nil {
				t.Fatalf("decoded capture carries invalid region %+v: %v", c.Region, err)
			}
			// Anything that decodes must re-encode.
			if err := WriteCapture(&bytes.Buffer{}, c); err != nil {
				t.Fatalf("decoded capture failed to re-encode: %v", err)
			}
		}
		// The pooled single-record reader must agree with ReadCapture
		// byte for byte: same accept/reject decision, bit-identical
		// streams on accept.
		ws := GetIngestWorkspace()
		pc, perr := ReadCaptureInto(bytes.NewReader(data), ws)
		if (err == nil) != (perr == nil) {
			t.Fatalf("ReadCapture err %v but ReadCaptureInto err %v", err, perr)
		}
		if perr == nil {
			identical := len(pc.Streams) == len(c.Streams)
			for a := 0; identical && a < len(c.Streams); a++ {
				identical = len(pc.Streams[a]) == len(c.Streams[a])
				for s := 0; identical && s < len(c.Streams[a]); s++ {
					identical = math.Float64bits(real(pc.Streams[a][s])) == math.Float64bits(real(c.Streams[a][s])) &&
						math.Float64bits(imag(pc.Streams[a][s])) == math.Float64bits(imag(c.Streams[a][s]))
				}
			}
			if !identical {
				t.Fatal("pooled decode diverges from ReadCapture")
			}
			pc.Release()
		} else {
			ws.Discard()
		}
		// The ingest path must swallow the same bytes without
		// panicking, whatever the error outcome.
		b := NewBackend(1000, time.Second, func(uint32, []Capture) {})
		_ = b.ServeConn(bytes.NewReader(data))
	})
}

// validBatchFrame encodes one well-formed v3 frame to seed the batch
// corpus.
func validBatchFrame(tb testing.TB) []byte {
	tb.Helper()
	caps := []Capture{
		{
			APID: 3, ClientID: 7, Seq: 1,
			Timestamp: time.UnixMicro(1700000000000000).UTC(),
			Streams: [][]complex128{
				{complex(0.5, -0.25), complex(-1, 0.125)},
				{complex(0.75, 0.5), complex(0.25, -0.75)},
			},
		},
		{
			APID: 2, ClientID: 9, Seq: 4,
			Timestamp: time.UnixMicro(1700000000000001).UTC(),
			Region:    core.Region{Min: geom.Pt(3, 2), Max: geom.Pt(11.5, 9.25), Cell: 0.25},
			Priority:  true,
			Streams: [][]complex128{
				{complex(0.5, -0.25), complex(-1, 0.125)},
			},
		},
	}
	frame, err := AppendBatch(nil, caps)
	if err != nil {
		tb.Fatal(err)
	}
	return frame
}

// validDeltaBatchFrame encodes the same captures as validBatchFrame in
// the compact delta-timestamp form.
func validDeltaBatchFrame(tb testing.TB) []byte {
	tb.Helper()
	abs := validBatchFrame(tb)
	ws := GetIngestWorkspace()
	caps, err := ReadBatchInto(bytes.NewReader(abs), ws)
	if err != nil {
		ws.Discard()
		tb.Fatal(err)
	}
	frame, err := AppendBatchDelta(nil, caps)
	ReleaseAll(caps)
	if err != nil {
		tb.Fatal(err)
	}
	return frame
}

// FuzzReadBatch explores the v3 batch decoder and the datagram path:
// truncated frames, lying counts, oversized sub-headers, and hostile
// regions must all error — never panic, never allocate past the frame
// limits, never leave a workspace with a dangling reference.
func FuzzReadBatch(f *testing.F) {
	frame := validBatchFrame(f)
	f.Add(frame)
	f.Add([]byte{})
	f.Add(frame[:8])                                   // truncated frame header
	f.Add(frame[:frameHeadSize])                       // header only, no body
	f.Add(frame[:len(frame)-3])                        // truncated payload
	f.Add(append(append([]byte(nil), frame...), 0xAA)) // trailing byte

	lyingCount := append([]byte(nil), frame...)
	binary.BigEndian.PutUint16(lyingCount[8:], 700) // count >> sub-headers present
	f.Add(lyingCount)
	zeroCount := append([]byte(nil), frame...)
	binary.BigEndian.PutUint16(zeroCount[8:], 0)
	f.Add(zeroCount)
	reserved := append([]byte(nil), frame...)
	reserved[10] = 0x80
	f.Add(reserved)
	hugeBody := append([]byte(nil), frame...)
	binary.BigEndian.PutUint32(hugeBody[4:], 0xFFFFFFFF) // bodyLen over MaxFrameBytes
	f.Add(hugeBody)
	hostileSub := append([]byte(nil), frame...)
	binary.BigEndian.PutUint16(hostileSub[frameHeadSize+24:], 0xFFFF) // nAnt over MaxAntennas
	f.Add(hostileSub)
	badFlags := append([]byte(nil), frame...)
	badFlags[frameHeadSize+28] = 0xFF
	f.Add(badFlags)
	v1Magic := append([]byte(nil), frame...)
	binary.BigEndian.PutUint32(v1Magic[0:], 0x41540001) // v1 magic on a batch body
	f.Add(v1Magic)
	f.Add(validRecord(f))       // v1 record through the frame reader
	f.Add(validRegionRecord(f)) // v2 record through the frame reader

	// Delta-timestamp frames (frame flag bit0): a valid one, then the
	// same hostile mutations against the compact sub-header layout.
	deltaFrame := validDeltaBatchFrame(f)
	f.Add(deltaFrame)
	f.Add(deltaFrame[:frameHeadSize+4])   // truncated base timestamp
	f.Add(deltaFrame[:len(deltaFrame)-3]) // truncated payload
	deltaLying := append([]byte(nil), deltaFrame...)
	binary.BigEndian.PutUint16(deltaLying[8:], 700)
	f.Add(deltaLying)
	deltaBadFF := append([]byte(nil), deltaFrame...)
	deltaBadFF[10] = 0x80 // reserved frame-flag bits beyond bit0
	f.Add(deltaBadFF)
	deltaHostileSub := append([]byte(nil), deltaFrame...)
	binary.BigEndian.PutUint16(deltaHostileSub[frameHeadSize+baseTSSize+20:], 0xFFFF) // nAnt
	f.Add(deltaHostileSub)
	deltaBadFlags := append([]byte(nil), deltaFrame...)
	deltaBadFlags[frameHeadSize+baseTSSize+24] = 0xFF
	f.Add(deltaBadFlags)
	// Absolute-form flag flipped on without re-laying-out the body:
	// the sub-headers no longer parse as the compact form and the
	// decoder must reject, not misread.
	flagMismatch := append([]byte(nil), frame...)
	flagMismatch[11] = 0x01
	f.Add(flagMismatch)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Stream framing (the ServeConn path, mixed versions).
		ws := GetIngestWorkspace()
		caps, err := ReadFrameInto(bytes.NewReader(data), ws)
		if err != nil {
			ws.Discard()
		} else {
			if len(caps) == 0 || len(caps) > MaxBatchCaptures {
				t.Fatalf("decoded %d captures from one frame", len(caps))
			}
			for i := range caps {
				c := &caps[i]
				if len(c.Streams) == 0 || len(c.Streams) > MaxAntennas || len(c.Streams[0]) > MaxSamples {
					t.Fatalf("capture %d violates protocol limits", i)
				}
				if err := c.Region.Validate(); err != nil {
					t.Fatalf("capture %d carries invalid region: %v", i, err)
				}
			}
			// Anything that decodes must re-encode as a batch, in both
			// timestamp forms, and the compact form must decode back to
			// the same timestamps.
			if _, err := AppendBatch(nil, caps); err != nil {
				t.Fatalf("decoded batch failed to re-encode: %v", err)
			}
			delta, err := AppendBatchDelta(nil, caps)
			if err != nil {
				t.Fatalf("decoded batch failed to re-encode in delta form: %v", err)
			}
			ws2 := GetIngestWorkspace()
			caps2, err := ReadBatchInto(bytes.NewReader(delta), ws2)
			if err != nil {
				ws2.Discard()
				t.Fatalf("delta re-encode does not decode: %v", err)
			}
			if len(caps2) != len(caps) {
				t.Fatalf("delta round trip changed count: %d != %d", len(caps2), len(caps))
			}
			for i := range caps {
				// Compare at wire precision: extreme hostile timestamps
				// may not round-trip through time.Time exactly, but the
				// µs value the wire carries must.
				if caps2[i].Timestamp.UnixMicro() != caps[i].Timestamp.UnixMicro() {
					t.Fatalf("capture %d: delta round trip moved timestamp %v → %v",
						i, caps[i].Timestamp, caps2[i].Timestamp)
				}
			}
			ReleaseAll(caps2)
			ReleaseAll(caps)
		}
		// Datagram framing (exact-fit rule) and the backend's counter
		// path must swallow the same bytes without panicking.
		b := NewBackend(1000, time.Second, func(uint32, []Capture) {})
		_ = b.IngestDatagram(data)
	})
}
