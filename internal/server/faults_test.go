package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable Backend.Now for deterministic age and
// cooldown arithmetic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0).UTC()} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// wireCapture is batchCapture with pinned identity and timestamp.
func wireCapture(rng *rand.Rand, ap, client uint32, ts time.Time) Capture {
	c := batchCapture(rng, 2, 8, false, false)
	c.APID, c.ClientID, c.Timestamp = ap, client, ts
	return c
}

// pooledCaps round-trips caps through the v3 wire into a pooled
// workspace, so the result borrows pool memory exactly like ServeConn
// ingest and the release accounting is real.
func pooledCaps(t *testing.T, caps []Capture) []Capture {
	t.Helper()
	frame := mustFrame(t, caps)
	ws := GetIngestWorkspace()
	decoded, err := ReadBatchInto(bytes.NewReader(frame), ws)
	if err != nil {
		ws.Discard()
		t.Fatal(err)
	}
	return decoded
}

// recordDispatcher keeps metadata copies of every flush and releases
// the captures, like engine.CaptureSink does after job completion.
type recordDispatcher struct {
	mu      sync.Mutex
	flushes [][]Capture
}

func (d *recordDispatcher) Dispatch(clientID uint32, caps []Capture) {
	cp := make([]Capture, len(caps))
	copy(cp, caps)
	d.mu.Lock()
	d.flushes = append(d.flushes, cp)
	d.mu.Unlock()
	ReleaseAll(caps)
}

func (d *recordDispatcher) take() [][]Capture {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.flushes
	d.flushes = nil
	return out
}

// TestServeConnIdleDeadlineReapsStalledConn pins the self-defense
// acceptance gate: a connection that stalls mid-frame is reaped within
// 2× the idle timeout, other connections keep ingesting throughout,
// and the stalled connection's half-decoded workspace goes back to the
// pool.
func TestServeConnIdleDeadlineReapsStalledConn(t *testing.T) {
	baseline := LeasedIngestWorkspaces()
	var located atomic.Uint64
	b := NewBackend(1, 100*time.Millisecond, func(uint32, []Capture) { located.Add(1) })
	b.IdleTimeout = 250 * time.Millisecond

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- b.Serve(ctx, l) }()

	dial := func() net.Conn {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	healthy, stalled := dial(), dial()

	rng := rand.New(rand.NewSource(11))
	frame := mustFrame(t, []Capture{wireCapture(rng, 1, 7, time.Now().UTC())})

	// The stalled connection delivers half a frame and goes quiet; the
	// reap is observed as the server closing the socket.
	if _, err := stalled.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	reapedCh := make(chan time.Time, 1)
	go func() {
		io.ReadAll(stalled)
		reapedCh <- time.Now()
	}()

	// The healthy connection keeps writing while we wait for the reap.
	var reapedAt time.Time
	timeout := time.After(5 * time.Second)
waitReap:
	for {
		if _, err := healthy.Write(frame); err != nil {
			t.Fatalf("healthy connection write failed during stall: %v", err)
		}
		select {
		case reapedAt = <-reapedCh:
			break waitReap
		case <-timeout:
			t.Fatal("stalled connection never reaped")
		case <-time.After(20 * time.Millisecond):
		}
	}
	if el := reapedAt.Sub(start); el > 2*b.IdleTimeout {
		t.Errorf("stalled connection reaped after %v, want ≤ 2×%v", el, b.IdleTimeout)
	}
	if h := b.Health(); h.DeadlineReaped != 1 {
		t.Errorf("DeadlineReaped = %d, want 1", h.DeadlineReaped)
	}

	// The healthy connection survived the reap and still ingests.
	before := located.Load()
	if before == 0 {
		t.Error("healthy connection ingested nothing during the stall")
	}
	for i := 0; i < 3; i++ {
		if _, err := healthy.Write(frame); err != nil {
			t.Fatalf("healthy write after reap: %v", err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for located.Load() < before+3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := located.Load(); got < before+3 {
		t.Errorf("healthy connection stopped ingesting after the reap: %d → %d", before, got)
	}

	healthy.Close()
	stalled.Close()
	cancel()
	if err := <-serveDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v", err)
	}
	if leaked := LeasedIngestWorkspaces() - baseline; leaked != 0 {
		t.Fatalf("%d pooled workspaces leaked", leaked)
	}
}

func TestBackendQuarantineBudgetAndCooldown(t *testing.T) {
	baseline := LeasedIngestWorkspaces()
	clock := newFakeClock()
	var located atomic.Uint64
	b := NewBackend(1, 100*time.Millisecond, func(uint32, []Capture) { located.Add(1) })
	b.ErrorBudget = 3
	b.ErrorWindow = 10 * time.Second
	b.Cooldown = 5 * time.Second
	b.Now = clock.Now

	rng := rand.New(rand.NewSource(13))
	ingest := func(ap uint32) {
		b.IngestBatch(pooledCaps(t, []Capture{wireCapture(rng, ap, 9, clock.Now())}))
	}

	b.NoteAPError(3)
	b.NoteAPError(3)
	if h := b.Health(); h.Quarantines != 0 {
		t.Fatalf("quarantined below budget: %+v", h)
	}
	b.NoteAPError(3)
	if h := b.Health(); h.Quarantines != 1 || h.Quarantined != 1 {
		t.Fatalf("budget exhausted but not quarantined: %+v", h)
	}

	ingest(3) // quarantined: dropped and released
	ingest(4) // healthy AP unaffected
	if h := b.Health(); h.QuarantinedDropped != 1 {
		t.Fatalf("QuarantinedDropped = %d, want 1", h.QuarantinedDropped)
	}
	if got := located.Load(); got != 1 {
		t.Fatalf("located %d flushes, want 1 (AP 4 only)", got)
	}

	// Cooldown passes: the AP readmits itself on its next capture.
	clock.advance(6 * time.Second)
	ingest(3)
	if got := located.Load(); got != 2 {
		t.Fatalf("located %d flushes after cooldown, want 2", got)
	}
	if h := b.Health(); h.Quarantined != 0 {
		t.Fatalf("gauge still shows quarantine after cooldown: %+v", h)
	}

	// Errors spaced wider than the window never accumulate to the
	// budget.
	for i := 0; i < 6; i++ {
		b.NoteAPError(8)
		clock.advance(11 * time.Second)
	}
	if h := b.Health(); h.Quarantines != 1 {
		t.Fatalf("slow-dripping errors quarantined AP 8: %+v", h)
	}

	if leaked := LeasedIngestWorkspaces() - baseline; leaked != 0 {
		t.Fatalf("%d pooled workspaces leaked", leaked)
	}
}

func TestDegradedFlushAndSweep(t *testing.T) {
	baseline := LeasedIngestWorkspaces()
	clock := newFakeClock()
	rec := &recordDispatcher{}
	b := NewBackendDispatcher(4, 100*time.Millisecond, rec)
	b.DegradedQuorum = 2
	b.DegradedAfter = 500 * time.Millisecond
	b.Now = clock.Now

	rng := rand.New(rand.NewSource(17))
	ts := clock.Now()
	// Client 100: two distinct APs — degraded-eligible once stuck.
	b.IngestBatch(pooledCaps(t, []Capture{
		wireCapture(rng, 1, 100, ts), wireCapture(rng, 2, 100, ts),
	}))
	// Client 200: one AP — below even the degraded quorum.
	b.IngestBatch(pooledCaps(t, []Capture{wireCapture(rng, 1, 200, ts)}))

	if f, d := b.Sweep(); f != 0 || d != 0 {
		t.Fatalf("sweep fired before DegradedAfter: flushed=%d dropped=%d", f, d)
	}
	clock.advance(600 * time.Millisecond)
	f, d := b.Sweep()
	if f != 1 || d != 1 {
		t.Fatalf("sweep: flushed=%d dropped=%d, want 1 and 1", f, d)
	}
	flushes := rec.take()
	if len(flushes) != 1 || len(flushes[0]) != 2 {
		t.Fatalf("dispatcher saw %d flushes, want one 2-capture degraded flush", len(flushes))
	}
	for _, c := range flushes[0] {
		if !c.Degraded || c.ClientID != 100 {
			t.Fatalf("flush capture not degraded-flagged for client 100: %+v", c)
		}
	}
	if h := b.Health(); h.DegradedFlushes != 1 || h.StaleDropped != 1 {
		t.Fatalf("health after sweep: %+v", h)
	}

	// Ingest-time degraded flush: a stuck degraded-eligible group
	// flushes the moment a new capture finds it past DegradedAfter.
	ts2 := clock.Now()
	b.IngestBatch(pooledCaps(t, []Capture{
		wireCapture(rng, 1, 300, ts2), wireCapture(rng, 2, 300, ts2),
	}))
	clock.advance(600 * time.Millisecond)
	b.IngestBatch(pooledCaps(t, []Capture{wireCapture(rng, 2, 300, ts2)}))
	flushes = rec.take()
	if len(flushes) != 1 || len(flushes[0]) != 3 {
		t.Fatalf("ingest-time degraded flush: got %d flushes", len(flushes))
	}
	for _, c := range flushes[0] {
		if !c.Degraded {
			t.Fatal("ingest-time flush not degraded-flagged")
		}
	}

	// A full quorum is never flagged degraded.
	ts3 := clock.Now()
	b.IngestBatch(pooledCaps(t, []Capture{
		wireCapture(rng, 1, 400, ts3), wireCapture(rng, 2, 400, ts3),
		wireCapture(rng, 3, 400, ts3), wireCapture(rng, 4, 400, ts3),
	}))
	flushes = rec.take()
	if len(flushes) != 1 || len(flushes[0]) != 4 {
		t.Fatalf("quorum flush: got %v", flushes)
	}
	for _, c := range flushes[0] {
		if c.Degraded {
			t.Fatal("full-quorum flush flagged degraded")
		}
	}

	if leaked := LeasedIngestWorkspaces() - baseline; leaked != 0 {
		t.Fatalf("%d pooled workspaces leaked", leaked)
	}
}

// TestDegradedStaleEvictionReleasesExactlyOnce is the degraded-flush ×
// stale-eviction interaction gate: captures dropped by in-window
// staleness compaction and captures flushed degraded out of the same
// group must each be released exactly once — a double release panics
// (workspace over-release), a missed one shows up in the leased
// gauge.
func TestDegradedStaleEvictionReleasesExactlyOnce(t *testing.T) {
	baseline := LeasedIngestWorkspaces()
	clock := newFakeClock()
	rec := &recordDispatcher{}
	b := NewBackendDispatcher(4, 100*time.Millisecond, rec)
	b.DegradedQuorum = 2
	b.DegradedAfter = 200 * time.Millisecond
	b.Now = clock.Now

	rng := rand.New(rand.NewSource(19))
	ts := clock.Now()

	// Part 1: half the group goes stale at ingest time (span > window
	// triggers compaction), the survivors flush degraded via Sweep.
	b.IngestBatch(pooledCaps(t, []Capture{
		wireCapture(rng, 1, 500, ts), wireCapture(rng, 2, 500, ts),
	}))
	b.IngestBatch(pooledCaps(t, []Capture{
		wireCapture(rng, 3, 500, ts.Add(150*time.Millisecond)),
		wireCapture(rng, 4, 500, ts.Add(150*time.Millisecond)),
	}))
	clock.advance(250 * time.Millisecond)
	if f, d := b.Sweep(); f != 1 || d != 0 {
		t.Fatalf("sweep: flushed=%d dropped=%d, want 1, 0", f, d)
	}
	flushes := rec.take()
	if len(flushes) != 1 || len(flushes[0]) != 2 {
		t.Fatalf("degraded flush carries %d captures, want the 2 fresh ones", len(flushes[0]))
	}
	for _, c := range flushes[0] {
		if !c.Degraded || (c.APID != 3 && c.APID != 4) {
			t.Fatalf("unexpected flush capture: %+v", c)
		}
	}
	if leaked := LeasedIngestWorkspaces() - baseline; leaked != 0 {
		t.Fatalf("part 1: %d pooled workspaces leaked", leaked)
	}

	// Part 2: the group is degraded-eligible, then staleness knocks it
	// below the degraded quorum before the sweep — compaction releases
	// the stale captures, the sweep releases the undispatchable rest.
	ts2 := clock.Now()
	b.IngestBatch(pooledCaps(t, []Capture{
		wireCapture(rng, 1, 600, ts2), wireCapture(rng, 2, 600, ts2),
	}))
	// A late capture 150 ms newer compacts both originals away.
	b.IngestBatch(pooledCaps(t, []Capture{
		wireCapture(rng, 2, 600, ts2.Add(150*time.Millisecond)),
	}))
	clock.advance(250 * time.Millisecond)
	if f, d := b.Sweep(); f != 0 || d != 1 {
		t.Fatalf("sweep: flushed=%d dropped=%d, want 0, 1", f, d)
	}
	if got := len(rec.take()); got != 0 {
		t.Fatalf("undispatchable group reached the dispatcher (%d flushes)", got)
	}
	if h := b.Health(); h.StaleDropped != 1 {
		t.Fatalf("StaleDropped = %d, want 1", h.StaleDropped)
	}
	if leaked := LeasedIngestWorkspaces() - baseline; leaked != 0 {
		t.Fatalf("part 2: %d pooled workspaces leaked", leaked)
	}
}

func TestIsTransientNetError(t *testing.T) {
	if IsTransientNetError(nil) {
		t.Error("nil is not transient")
	}
	if IsTransientNetError(errors.New("bad frame")) {
		t.Error("arbitrary errors are not transient")
	}
	if IsTransientNetError(ErrBadMagic) {
		t.Error("protocol errors are not transient")
	}
	if !IsTransientNetError(io.ErrClosedPipe) {
		t.Error("closed pipe should be transient")
	}
	if !IsTransientNetError(io.ErrUnexpectedEOF) {
		t.Error("unexpected EOF should be transient")
	}
	// A real refused connection, as arraytrack-ap would see it.
	if _, err := net.Dial("tcp", "127.0.0.1:1"); err == nil {
		t.Skip("something is listening on port 1")
	} else if !IsTransientNetError(err) {
		t.Errorf("refused dial not classified transient: %v", err)
	}
}

// TestUploadRetryRedelivers walks UploadRetry through a refused dial,
// a connection that dies mid-stream, and a healthy connection —
// asserting every buffered capture is delivered despite the faults and
// that each failed attempt was observed exactly once.
func TestUploadRetryRedelivers(t *testing.T) {
	const captures = 10
	n := NewAPNode(42, captures)
	rng := rand.New(rand.NewSource(23))
	base := time.Unix(1700000000, 0).UTC()
	for i := 0; i < captures; i++ {
		n.Record(uint32(100+i%2), base.Add(time.Duration(i)*time.Millisecond),
			batchCapture(rng, 2, 8, false, false).Streams)
	}

	var mu sync.Mutex
	seen := make(map[uint32]int)
	var readers sync.WaitGroup
	readFrames := func(conn net.Conn, maxFrames int) {
		defer readers.Done()
		defer conn.Close()
		for i := 0; maxFrames <= 0 || i < maxFrames; i++ {
			ws := GetIngestWorkspace()
			caps, err := ReadBatchInto(conn, ws)
			if err != nil {
				ws.Discard()
				return
			}
			mu.Lock()
			for _, c := range caps {
				seen[c.Seq]++
			}
			mu.Unlock()
			ReleaseAll(caps)
		}
	}

	dials := 0
	dial := func(ctx context.Context) (net.Conn, error) {
		dials++
		switch dials {
		case 1:
			// A server that is down: real refused dial.
			_, err := net.Dial("tcp", "127.0.0.1:1")
			if err == nil {
				err = io.ErrClosedPipe // fallback if something listens there
			}
			return nil, err
		case 2:
			// A connection that dies after two frames. net.Pipe writes
			// rendezvous with reads, so exactly two frames are
			// delivered before the writer sees the death.
			client, srv := net.Pipe()
			readers.Add(1)
			go readFrames(srv, 2)
			return client, nil
		default:
			client, srv := net.Pipe()
			readers.Add(1)
			go readFrames(srv, 0)
			return client, nil
		}
	}

	var attempts []int
	err := n.UploadRetry(context.Background(), dial, RetryOptions{
		Batch:      2,
		MinBackoff: time.Millisecond,
		MaxBackoff: 5 * time.Millisecond,
		Rand:       rand.New(rand.NewSource(1)),
		OnAttempt:  func(attempt int, backoff time.Duration, err error) { attempts = append(attempts, attempt) },
	})
	if err != nil {
		t.Fatalf("UploadRetry: %v", err)
	}
	readers.Wait()
	if dials != 3 {
		t.Fatalf("dialed %d times, want 3", dials)
	}
	if len(attempts) != 2 { // one refused dial, one dead connection
		t.Fatalf("observed %d failed attempts, want 2 (%v)", len(attempts), attempts)
	}
	mu.Lock()
	defer mu.Unlock()
	for seq := 0; seq < captures; seq++ {
		if seen[uint32(seq)] == 0 {
			t.Errorf("capture seq %d never delivered", seq)
		}
	}
}

func TestUploadRetryExhaustsAsTransient(t *testing.T) {
	n := NewAPNode(1, 4)
	rng := rand.New(rand.NewSource(29))
	n.Record(5, time.Unix(1700000000, 0).UTC(), batchCapture(rng, 2, 8, false, false).Streams)
	calls := 0
	dial := func(ctx context.Context) (net.Conn, error) {
		calls++
		c, err := net.Dial("tcp", "127.0.0.1:1")
		if err == nil {
			c.Close()
			return nil, io.ErrClosedPipe
		}
		return nil, err
	}
	err := n.UploadRetry(context.Background(), dial, RetryOptions{
		MaxAttempts: 3, MinBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		Rand: rand.New(rand.NewSource(2)),
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if calls != 3 {
		t.Fatalf("dialed %d times, want MaxAttempts=3", calls)
	}
	if n.Buffer.Len() != 1 {
		t.Fatalf("buffer drained despite delivery failure: %d left", n.Buffer.Len())
	}
}

// TestServeNoGoroutineLeak is the CI leak gate: after serving a mix of
// clean, dying, and stalled connections and cancelling the server, the
// goroutine count returns to its baseline.
func TestServeNoGoroutineLeak(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()

	var located atomic.Uint64
	b := NewBackend(1, 100*time.Millisecond, func(uint32, []Capture) { located.Add(1) })
	b.IdleTimeout = 100 * time.Millisecond
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- b.Serve(ctx, l) }()

	rng := rand.New(rand.NewSource(31))
	frame := mustFrame(t, []Capture{wireCapture(rng, 1, 7, time.Now().UTC())})
	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		switch i {
		case 0: // clean upload and close
			conn.Write(frame)
			conn.Close()
		case 1: // dies mid-frame
			conn.Write(frame[:len(frame)/2])
			conn.Close()
		case 2: // stalls mid-frame; the idle deadline must reap it
			conn.Write(frame[:len(frame)/2])
			defer conn.Close()
		}
	}

	deadline := time.Now().Add(3 * time.Second)
	for located.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-serveDone // Serve's WaitGroup guarantees every ServeConn goroutine exited

	var after int
	for time.Now().Before(deadline) {
		runtime.GC()
		if after = runtime.NumGoroutine(); after <= before {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if after > before+1 {
		t.Fatalf("goroutines %d → %d: server leaked", before, after)
	}
}
