// Package server implements ArrayTrack's system architecture (Figure 1
// and §2.1, §4.4): packet detection feeding a circular buffer of frame
// captures at each AP, a compact binary sample-transfer protocol
// between APs and the central server over TCP, and the latency
// accounting of §4.4.
package server

import (
	"sync"
	"time"

	"repro/internal/core"
)

// Capture is one detected frame's worth of per-antenna samples,
// annotated with where and when it was heard. It is the unit stored in
// the circular buffer and shipped to the backend.
type Capture struct {
	// APID identifies the capturing access point.
	APID uint32
	// ClientID identifies the transmitter (learned out of band; the
	// frame contents themselves are immaterial to ArrayTrack).
	ClientID uint32
	// Seq is a per-AP monotonically increasing capture number.
	Seq uint32
	// Timestamp is the detection time.
	Timestamp time.Time
	// Region, when non-zero, asks the backend to restrict this
	// client's synthesis to an ad-hoc bounding box (a version-2 wire
	// record). Validated at decode; see core.Region.
	Region core.Region
	// Priority asks the backend to run the resulting fix through the
	// engine's latency lane.
	Priority bool
	// Degraded marks a capture flushed by the backend's degraded-quorum
	// path: its group reached only DegradedQuorum ≤ distinct < Quorum
	// APs after sitting stuck for DegradedAfter. It is set by the
	// backend at flush time — never carried on the wire — and rides the
	// capture so the engine can flag the resulting fix end-to-end
	// (Capture → Request → Result → TrackUpdate).
	Degraded bool
	// Streams holds the per-antenna baseband samples of the captured
	// preamble section. For captures decoded by the pooled readers
	// (ReadCaptureInto, ReadBatchInto, DecodeDatagramInto) the memory
	// is borrowed from an IngestWorkspace and must be returned with
	// Release once consumed; captures built any other way own their
	// streams and Release is a no-op.
	Streams [][]complex128

	// owner is the ingest workspace the streams are borrowed from;
	// nil for captures that own their memory. See Release.
	owner *IngestWorkspace
}

// CircularBuffer is the fixed-capacity frame store of §2.1: one logical
// entry per detected frame, overwriting the oldest entry when full. It
// is safe for concurrent use (the detector goroutine writes while the
// uploader reads).
type CircularBuffer struct {
	mu      sync.Mutex
	entries []Capture
	start   int // index of oldest entry
	size    int
	// Per-client index: live entry count and newest timestamp, kept
	// in lockstep with the ring so RecentForClient needs one scan
	// (collect) instead of two (find-newest, then collect).
	count  map[uint32]int
	newest map[uint32]time.Time
}

// NewCircularBuffer returns a buffer holding up to capacity captures.
// It panics if capacity is not positive.
func NewCircularBuffer(capacity int) *CircularBuffer {
	if capacity <= 0 {
		panic("server: circular buffer capacity must be positive")
	}
	return &CircularBuffer{
		entries: make([]Capture, capacity),
		count:   make(map[uint32]int),
		newest:  make(map[uint32]time.Time),
	}
}

// noteAdd folds a stored capture into the per-client index.
func (b *CircularBuffer) noteAdd(c *Capture) {
	b.count[c.ClientID]++
	if c.Timestamp.After(b.newest[c.ClientID]) {
		b.newest[c.ClientID] = c.Timestamp
	}
}

// noteDrop removes a departing capture from the per-client index. When
// the departing entry carried the client's newest timestamp the
// remaining entries are rescanned — rare under FIFO eviction, where
// the oldest entry leaves first.
func (b *CircularBuffer) noteDrop(c *Capture) {
	n := b.count[c.ClientID] - 1
	if n <= 0 {
		delete(b.count, c.ClientID)
		delete(b.newest, c.ClientID)
		return
	}
	b.count[c.ClientID] = n
	if !c.Timestamp.Before(b.newest[c.ClientID]) {
		var newest time.Time
		for i := 0; i < b.size; i++ {
			e := &b.entries[(b.start+i)%len(b.entries)]
			if e.ClientID == c.ClientID && e.Timestamp.After(newest) {
				newest = e.Timestamp
			}
		}
		b.newest[c.ClientID] = newest
	}
}

// Push appends a capture, evicting the oldest when full. It reports
// whether an eviction occurred.
func (b *CircularBuffer) Push(c Capture) (evicted bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.size < len(b.entries) {
		b.entries[(b.start+b.size)%len(b.entries)] = c
		b.size++
		b.noteAdd(&c)
		return false
	}
	old := b.entries[b.start]
	b.entries[b.start] = c
	b.start = (b.start + 1) % len(b.entries)
	// Index order matters: the evicted entry is gone from the ring
	// before noteDrop's rescan runs, and the new one is in.
	b.noteAdd(&c)
	b.noteDrop(&old)
	return true
}

// Pop removes and returns the oldest capture.
func (b *CircularBuffer) Pop() (Capture, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.size == 0 {
		return Capture{}, false
	}
	c := b.entries[b.start]
	b.entries[b.start] = Capture{} // release sample memory
	b.start = (b.start + 1) % len(b.entries)
	b.size--
	b.noteDrop(&c)
	return c, true
}

// Len returns the number of buffered captures.
func (b *CircularBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.size
}

// Cap returns the buffer capacity.
func (b *CircularBuffer) Cap() int { return len(b.entries) }

// Snapshot returns the buffered captures oldest-first without removing
// them.
func (b *CircularBuffer) Snapshot() []Capture {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Capture, b.size)
	for i := 0; i < b.size; i++ {
		out[i] = b.entries[(b.start+i)%len(b.entries)]
	}
	return out
}

// RecentForClient returns the buffered captures for the given client
// whose timestamps fall within window of the newest such capture —
// the grouping rule of the multipath suppression algorithm (frames
// spaced closer than 100 ms, §2.4). The newest timestamp comes from
// the per-client index, so one O(capacity) collect pass runs under
// the lock instead of the two full scans the seed paid per flush.
func (b *CircularBuffer) RecentForClient(clientID uint32, window time.Duration) []Capture {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.count[clientID]
	if n == 0 {
		return nil
	}
	newest := b.newest[clientID]
	out := make([]Capture, 0, n)
	for i := 0; i < b.size; i++ {
		c := &b.entries[(b.start+i)%len(b.entries)]
		if c.ClientID == clientID && newest.Sub(c.Timestamp) <= window {
			out = append(out, *c)
		}
	}
	return out
}
