// Package server implements ArrayTrack's system architecture (Figure 1
// and §2.1, §4.4): packet detection feeding a circular buffer of frame
// captures at each AP, a compact binary sample-transfer protocol
// between APs and the central server over TCP, and the latency
// accounting of §4.4.
package server

import (
	"sync"
	"time"

	"repro/internal/core"
)

// Capture is one detected frame's worth of per-antenna samples,
// annotated with where and when it was heard. It is the unit stored in
// the circular buffer and shipped to the backend.
type Capture struct {
	// APID identifies the capturing access point.
	APID uint32
	// ClientID identifies the transmitter (learned out of band; the
	// frame contents themselves are immaterial to ArrayTrack).
	ClientID uint32
	// Seq is a per-AP monotonically increasing capture number.
	Seq uint32
	// Timestamp is the detection time.
	Timestamp time.Time
	// Region, when non-zero, asks the backend to restrict this
	// client's synthesis to an ad-hoc bounding box (a version-2 wire
	// record). Validated at decode; see core.Region.
	Region core.Region
	// Priority asks the backend to run the resulting fix through the
	// engine's latency lane.
	Priority bool
	// Streams holds the per-antenna baseband samples of the captured
	// preamble section.
	Streams [][]complex128
}

// CircularBuffer is the fixed-capacity frame store of §2.1: one logical
// entry per detected frame, overwriting the oldest entry when full. It
// is safe for concurrent use (the detector goroutine writes while the
// uploader reads).
type CircularBuffer struct {
	mu      sync.Mutex
	entries []Capture
	start   int // index of oldest entry
	size    int
}

// NewCircularBuffer returns a buffer holding up to capacity captures.
// It panics if capacity is not positive.
func NewCircularBuffer(capacity int) *CircularBuffer {
	if capacity <= 0 {
		panic("server: circular buffer capacity must be positive")
	}
	return &CircularBuffer{entries: make([]Capture, capacity)}
}

// Push appends a capture, evicting the oldest when full. It reports
// whether an eviction occurred.
func (b *CircularBuffer) Push(c Capture) (evicted bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.size < len(b.entries) {
		b.entries[(b.start+b.size)%len(b.entries)] = c
		b.size++
		return false
	}
	b.entries[b.start] = c
	b.start = (b.start + 1) % len(b.entries)
	return true
}

// Pop removes and returns the oldest capture.
func (b *CircularBuffer) Pop() (Capture, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.size == 0 {
		return Capture{}, false
	}
	c := b.entries[b.start]
	b.entries[b.start] = Capture{} // release sample memory
	b.start = (b.start + 1) % len(b.entries)
	b.size--
	return c, true
}

// Len returns the number of buffered captures.
func (b *CircularBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.size
}

// Cap returns the buffer capacity.
func (b *CircularBuffer) Cap() int { return len(b.entries) }

// Snapshot returns the buffered captures oldest-first without removing
// them.
func (b *CircularBuffer) Snapshot() []Capture {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Capture, b.size)
	for i := 0; i < b.size; i++ {
		out[i] = b.entries[(b.start+i)%len(b.entries)]
	}
	return out
}

// RecentForClient returns the buffered captures for the given client
// whose timestamps fall within window of the newest such capture —
// the grouping rule of the multipath suppression algorithm (frames
// spaced closer than 100 ms, §2.4).
func (b *CircularBuffer) RecentForClient(clientID uint32, window time.Duration) []Capture {
	b.mu.Lock()
	defer b.mu.Unlock()
	var newest time.Time
	for i := 0; i < b.size; i++ {
		c := b.entries[(b.start+i)%len(b.entries)]
		if c.ClientID == clientID && c.Timestamp.After(newest) {
			newest = c.Timestamp
		}
	}
	if newest.IsZero() {
		return nil
	}
	var out []Capture
	for i := 0; i < b.size; i++ {
		c := b.entries[(b.start+i)%len(b.entries)]
		if c.ClientID == clientID && newest.Sub(c.Timestamp) <= window {
			out = append(out, c)
		}
	}
	return out
}
