package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

// Wire protocol: each capture travels as one length-prefixed record.
//
//	magic    uint32  'A''T' + version tag (1 or 2)
//	apID     uint32
//	clientID uint32
//	seq      uint32
//	tstampUS uint64  microseconds since Unix epoch
//	scale    float32 amplitude of a full-scale int16 sample
//	nAnt     uint16
//	nSamp    uint16
//	-- version 2 only --
//	flags    uint8   bit0 = has region, bit1 = priority
//	region   5 × float64  minX minY maxX maxY cell (big-endian bits)
//	-- all versions --
//	payload  nAnt × nSamp × (int16 I, int16 Q)
//
// Samples are 32 bits each — 16-bit I plus 16-bit Q — matching the
// paper's "(10 samples)(32 bits/sample)(8 radios)" overhead arithmetic
// (§4.3.3, §4.4). A per-record scale factor preserves absolute
// amplitude despite the fixed-point encoding.
//
// Version 2 extends a record with an ad-hoc search region (the
// per-request bounding box the backend threads into synthesis) and a
// latency-priority flag. Writers emit version 1 whenever neither is
// set, so v1 readers keep working for plain sample feeds; readers
// accept both. A v2 record whose region fails core-side validation
// (NaN/Inf corners, inverted or degenerate boxes, out-of-range cell
// pitches) is rejected at decode with ErrBadRegion — hostile bytes
// never reach the localization engine.

const (
	protocolMagic   = 0x41540001 // "AT" + version 1
	protocolMagicV2 = 0x41540002 // "AT" + version 2: region + priority
)

// regionExtSize is the v2 header extension: flags byte plus five
// float64 region fields.
const regionExtSize = 1 + 5*8

const (
	flagHasRegion = 1 << 0
	flagPriority  = 1 << 1
)

// Encoding limits. A record never legitimately exceeds these; they
// bound allocation when decoding untrusted input.
const (
	MaxAntennas = 64
	MaxSamples  = 4096
)

var (
	// ErrBadMagic means the stream is not an ArrayTrack sample feed.
	ErrBadMagic = errors.New("server: bad protocol magic")
	// ErrTooLarge means a record header declared an implausible size.
	ErrTooLarge = errors.New("server: record exceeds protocol limits")
	// ErrBadRegion means a v2 record carried a malformed search
	// region (it wraps the core-side validation error).
	ErrBadRegion = errors.New("server: bad search region")
)

// captureDims validates a capture's stream geometry and returns its
// dimensions along with the quantization peak (the largest |I| or |Q|
// over the record; 1 for an all-zero record).
func captureDims(c *Capture) (nAnt, nSamp int, peak float64, err error) {
	nAnt = len(c.Streams)
	if nAnt == 0 || nAnt > MaxAntennas {
		return 0, 0, 0, fmt.Errorf("%w: %d antennas", ErrTooLarge, nAnt)
	}
	nSamp = len(c.Streams[0])
	if nSamp == 0 || nSamp > MaxSamples {
		return 0, 0, 0, fmt.Errorf("%w: %d samples", ErrTooLarge, nSamp)
	}
	for _, st := range c.Streams {
		if len(st) != nSamp {
			return 0, 0, 0, errors.New("server: ragged antenna streams")
		}
		for _, v := range st {
			if a := math.Abs(real(v)); a > peak {
				peak = a
			}
			if a := math.Abs(imag(v)); a > peak {
				peak = a
			}
		}
	}
	if peak == 0 {
		peak = 1
	}
	return nAnt, nSamp, peak, nil
}

// growSlice extends dst by n bytes in place, reallocating only when
// the capacity runs out, and returns the extended slice.
func growSlice(dst []byte, n int) []byte {
	l := len(dst)
	if cap(dst)-l >= n {
		return dst[:l+n]
	}
	nd := make([]byte, l+n, 2*(l+n))
	copy(nd, dst)
	return nd
}

// appendPayload appends the int16 I/Q quantization of c's streams.
func appendPayload(dst []byte, c *Capture, peak float64, nAnt, nSamp int) []byte {
	off := len(dst)
	dst = growSlice(dst, nAnt*nSamp*4)
	for _, st := range c.Streams {
		for _, v := range st {
			i16 := int16(math.Round(real(v) / peak * 32767))
			q16 := int16(math.Round(imag(v) / peak * 32767))
			binary.BigEndian.PutUint16(dst[off:], uint16(i16))
			binary.BigEndian.PutUint16(dst[off+2:], uint16(q16))
			off += 4
		}
	}
	return dst
}

// AppendCapture appends c's wire encoding (a v1 record, or v2 when a
// region or priority flag is set) to dst and returns the extended
// slice. It is the allocation-free building block behind WriteCapture:
// callers that reuse dst across records encode with zero per-record
// allocations.
func AppendCapture(dst []byte, c *Capture) ([]byte, error) {
	nAnt, nSamp, peak, err := captureDims(c)
	if err != nil {
		return dst, err
	}
	v2 := !c.Region.IsZero() || c.Priority
	size := 32
	if v2 {
		size += regionExtSize
		if err := c.Region.Validate(); err != nil {
			return dst, fmt.Errorf("%w: %v", ErrBadRegion, err)
		}
	}
	base := len(dst)
	dst = growSlice(dst, size)
	head := dst[base:]
	magic := uint32(protocolMagic)
	if v2 {
		magic = protocolMagicV2
	}
	binary.BigEndian.PutUint32(head[0:], magic)
	binary.BigEndian.PutUint32(head[4:], c.APID)
	binary.BigEndian.PutUint32(head[8:], c.ClientID)
	binary.BigEndian.PutUint32(head[12:], c.Seq)
	binary.BigEndian.PutUint64(head[16:], uint64(c.Timestamp.UnixMicro()))
	binary.BigEndian.PutUint32(head[24:], math.Float32bits(float32(peak)))
	binary.BigEndian.PutUint16(head[28:], uint16(nAnt))
	binary.BigEndian.PutUint16(head[30:], uint16(nSamp))
	if v2 {
		var flags byte
		if !c.Region.IsZero() {
			flags |= flagHasRegion
		}
		if c.Priority {
			flags |= flagPriority
		}
		head[32] = flags
		binary.BigEndian.PutUint64(head[33:], math.Float64bits(c.Region.Min.X))
		binary.BigEndian.PutUint64(head[41:], math.Float64bits(c.Region.Min.Y))
		binary.BigEndian.PutUint64(head[49:], math.Float64bits(c.Region.Max.X))
		binary.BigEndian.PutUint64(head[57:], math.Float64bits(c.Region.Max.Y))
		binary.BigEndian.PutUint64(head[65:], math.Float64bits(c.Region.Cell))
	}
	return appendPayload(dst, c, peak, nAnt, nSamp), nil
}

// encodeBufPool recycles encoder scratch across WriteCapture and
// WriteBatch calls: the seed writer allocated a fresh head and payload
// buffer per record, which dominated the AP-side upload profile.
var encodeBufPool = sync.Pool{New: func() any { return new([]byte) }}

// WriteCapture encodes c to w in wire format — one Write call per
// record, from a pooled buffer (no per-record allocations steady
// state).
func WriteCapture(w io.Writer, c *Capture) error {
	bp := encodeBufPool.Get().(*[]byte)
	buf, err := AppendCapture((*bp)[:0], c)
	if err == nil {
		_, err = w.Write(buf)
	}
	*bp = buf
	encodeBufPool.Put(bp)
	return err
}

// ReadCapture decodes one record from r. io.EOF is returned unchanged
// at a clean record boundary.
func ReadCapture(r io.Reader) (*Capture, error) {
	head := make([]byte, 32)
	if _, err := io.ReadFull(r, head); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("server: short header: %w", err)
	}
	magic := binary.BigEndian.Uint32(head[0:])
	if magic != protocolMagic && magic != protocolMagicV2 {
		return nil, ErrBadMagic
	}
	c := &Capture{
		APID:      binary.BigEndian.Uint32(head[4:]),
		ClientID:  binary.BigEndian.Uint32(head[8:]),
		Seq:       binary.BigEndian.Uint32(head[12:]),
		Timestamp: time.UnixMicro(int64(binary.BigEndian.Uint64(head[16:]))).UTC(),
	}
	scale := float64(math.Float32frombits(binary.BigEndian.Uint32(head[24:])))
	nAnt := int(binary.BigEndian.Uint16(head[28:]))
	nSamp := int(binary.BigEndian.Uint16(head[30:]))
	if nAnt == 0 || nAnt > MaxAntennas || nSamp == 0 || nSamp > MaxSamples {
		return nil, ErrTooLarge
	}
	if magic == protocolMagicV2 {
		ext := make([]byte, regionExtSize)
		if _, err := io.ReadFull(r, ext); err != nil {
			return nil, fmt.Errorf("server: short region extension: %w", err)
		}
		flags := ext[0]
		if flags&^(flagHasRegion|flagPriority) != 0 {
			return nil, fmt.Errorf("%w: unknown flags %#x", ErrBadRegion, flags)
		}
		c.Priority = flags&flagPriority != 0
		region := core.Region{
			Min:  geom.Pt(math.Float64frombits(binary.BigEndian.Uint64(ext[1:])), math.Float64frombits(binary.BigEndian.Uint64(ext[9:]))),
			Max:  geom.Pt(math.Float64frombits(binary.BigEndian.Uint64(ext[17:])), math.Float64frombits(binary.BigEndian.Uint64(ext[25:]))),
			Cell: math.Float64frombits(binary.BigEndian.Uint64(ext[33:])),
		}
		if flags&flagHasRegion != 0 {
			// A present region must be well-formed and non-zero: NaN or
			// Inf corners, inverted/degenerate boxes, and out-of-range
			// pitches are rejected here, before the bytes ever reach the
			// grouping backend or the engine.
			if region.IsZero() {
				return nil, fmt.Errorf("%w: region flag set on zero box", ErrBadRegion)
			}
			if err := region.Validate(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadRegion, err)
			}
			c.Region = region
		} else if region != (core.Region{}) {
			return nil, fmt.Errorf("%w: region bytes without region flag", ErrBadRegion)
		}
	}
	payload := make([]byte, nAnt*nSamp*4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("server: short payload: %w", err)
	}
	c.Streams = make([][]complex128, nAnt)
	off := 0
	for a := 0; a < nAnt; a++ {
		st := make([]complex128, nSamp)
		for s := 0; s < nSamp; s++ {
			i16 := int16(binary.BigEndian.Uint16(payload[off:]))
			q16 := int16(binary.BigEndian.Uint16(payload[off+2:]))
			st[s] = complex(float64(i16)/32767*scale, float64(q16)/32767*scale)
			off += 4
		}
		c.Streams[a] = st
	}
	return c, nil
}

// RecordSize returns the on-wire size in bytes of a version-1 capture
// with the given dimensions — the quantity behind §4.4's
// serialization-time estimate. A version-2 record (region query or
// priority fix) adds RegionExtSize bytes.
func RecordSize(nAnt, nSamp int) int { return 32 + nAnt*nSamp*4 }

// RegionExtSize is the extra on-wire bytes of a version-2 record: the
// flags byte plus the five float64 region fields.
const RegionExtSize = regionExtSize
