package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// Wire protocol: each capture travels as one length-prefixed record.
//
//	magic    uint32  'A''T'0x01 version tag
//	apID     uint32
//	clientID uint32
//	seq      uint32
//	tstampUS uint64  microseconds since Unix epoch
//	scale    float32 amplitude of a full-scale int16 sample
//	nAnt     uint16
//	nSamp    uint16
//	payload  nAnt × nSamp × (int16 I, int16 Q)
//
// Samples are 32 bits each — 16-bit I plus 16-bit Q — matching the
// paper's "(10 samples)(32 bits/sample)(8 radios)" overhead arithmetic
// (§4.3.3, §4.4). A per-record scale factor preserves absolute
// amplitude despite the fixed-point encoding.

const protocolMagic = 0x41540001 // "AT" + version 1

// Encoding limits. A record never legitimately exceeds these; they
// bound allocation when decoding untrusted input.
const (
	MaxAntennas = 64
	MaxSamples  = 4096
)

var (
	// ErrBadMagic means the stream is not an ArrayTrack sample feed.
	ErrBadMagic = errors.New("server: bad protocol magic")
	// ErrTooLarge means a record header declared an implausible size.
	ErrTooLarge = errors.New("server: record exceeds protocol limits")
)

// WriteCapture encodes c to w in wire format.
func WriteCapture(w io.Writer, c *Capture) error {
	nAnt := len(c.Streams)
	if nAnt == 0 || nAnt > MaxAntennas {
		return fmt.Errorf("%w: %d antennas", ErrTooLarge, nAnt)
	}
	nSamp := len(c.Streams[0])
	if nSamp == 0 || nSamp > MaxSamples {
		return fmt.Errorf("%w: %d samples", ErrTooLarge, nSamp)
	}
	// Full-scale value: the largest |I| or |Q| over the record.
	var peak float64
	for _, st := range c.Streams {
		if len(st) != nSamp {
			return errors.New("server: ragged antenna streams")
		}
		for _, v := range st {
			if a := math.Abs(real(v)); a > peak {
				peak = a
			}
			if a := math.Abs(imag(v)); a > peak {
				peak = a
			}
		}
	}
	if peak == 0 {
		peak = 1
	}

	head := make([]byte, 4+4+4+4+8+4+2+2)
	binary.BigEndian.PutUint32(head[0:], protocolMagic)
	binary.BigEndian.PutUint32(head[4:], c.APID)
	binary.BigEndian.PutUint32(head[8:], c.ClientID)
	binary.BigEndian.PutUint32(head[12:], c.Seq)
	binary.BigEndian.PutUint64(head[16:], uint64(c.Timestamp.UnixMicro()))
	binary.BigEndian.PutUint32(head[24:], math.Float32bits(float32(peak)))
	binary.BigEndian.PutUint16(head[28:], uint16(nAnt))
	binary.BigEndian.PutUint16(head[30:], uint16(nSamp))
	if _, err := w.Write(head); err != nil {
		return err
	}

	payload := make([]byte, nAnt*nSamp*4)
	off := 0
	for _, st := range c.Streams {
		for _, v := range st {
			i16 := int16(math.Round(real(v) / peak * 32767))
			q16 := int16(math.Round(imag(v) / peak * 32767))
			binary.BigEndian.PutUint16(payload[off:], uint16(i16))
			binary.BigEndian.PutUint16(payload[off+2:], uint16(q16))
			off += 4
		}
	}
	_, err := w.Write(payload)
	return err
}

// ReadCapture decodes one record from r. io.EOF is returned unchanged
// at a clean record boundary.
func ReadCapture(r io.Reader) (*Capture, error) {
	head := make([]byte, 32)
	if _, err := io.ReadFull(r, head); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("server: short header: %w", err)
	}
	if binary.BigEndian.Uint32(head[0:]) != protocolMagic {
		return nil, ErrBadMagic
	}
	c := &Capture{
		APID:      binary.BigEndian.Uint32(head[4:]),
		ClientID:  binary.BigEndian.Uint32(head[8:]),
		Seq:       binary.BigEndian.Uint32(head[12:]),
		Timestamp: time.UnixMicro(int64(binary.BigEndian.Uint64(head[16:]))).UTC(),
	}
	scale := float64(math.Float32frombits(binary.BigEndian.Uint32(head[24:])))
	nAnt := int(binary.BigEndian.Uint16(head[28:]))
	nSamp := int(binary.BigEndian.Uint16(head[30:]))
	if nAnt == 0 || nAnt > MaxAntennas || nSamp == 0 || nSamp > MaxSamples {
		return nil, ErrTooLarge
	}
	payload := make([]byte, nAnt*nSamp*4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("server: short payload: %w", err)
	}
	c.Streams = make([][]complex128, nAnt)
	off := 0
	for a := 0; a < nAnt; a++ {
		st := make([]complex128, nSamp)
		for s := 0; s < nSamp; s++ {
			i16 := int16(binary.BigEndian.Uint16(payload[off:]))
			q16 := int16(binary.BigEndian.Uint16(payload[off+2:]))
			st[s] = complex(float64(i16)/32767*scale, float64(q16)/32767*scale)
			off += 4
		}
		c.Streams[a] = st
	}
	return c, nil
}

// RecordSize returns the on-wire size in bytes of a capture with the
// given dimensions — the quantity behind §4.4's serialization-time
// estimate.
func RecordSize(nAnt, nSamp int) int { return 32 + nAnt*nSamp*4 }
