package server

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

func regionCapture(region core.Region, priority bool) *Capture {
	return &Capture{
		APID:      5,
		ClientID:  12,
		Seq:       7,
		Timestamp: time.UnixMicro(1700000000123456).UTC(),
		Region:    region,
		Priority:  priority,
		Streams: [][]complex128{
			{complex(0.25, -0.5), complex(0.125, 1)},
			{complex(-0.75, 0.5), complex(1, -0.25)},
		},
	}
}

// TestRegionRoundTrip: v2 records carry the region and priority flag
// through encode/decode unchanged; v1 records (no region, no
// priority) stay byte-compatible with the old format.
func TestRegionRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		region   core.Region
		priority bool
	}{
		{"region", core.Region{Min: geom.Pt(2, 3), Max: geom.Pt(9.5, 7.25), Cell: 0.1}, false},
		{"region-default-cell", core.Region{Min: geom.Pt(-4, 0.5), Max: geom.Pt(6, 2)}, false},
		{"region-priority", core.Region{Min: geom.Pt(0.25, 0.25), Max: geom.Pt(1.5, 1.75)}, true},
		{"priority-only", core.Region{}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			in := regionCapture(tc.region, tc.priority)
			if err := WriteCapture(&buf, in); err != nil {
				t.Fatal(err)
			}
			out, err := ReadCapture(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if out.Region != tc.region {
				t.Fatalf("region round trip: got %+v, want %+v", out.Region, tc.region)
			}
			if out.Priority != tc.priority {
				t.Fatalf("priority round trip: got %v, want %v", out.Priority, tc.priority)
			}
			if out.APID != in.APID || out.ClientID != in.ClientID || out.Seq != in.Seq || !out.Timestamp.Equal(in.Timestamp) {
				t.Fatal("v2 header fields corrupted in round trip")
			}
		})
	}

	// No region and no priority must stay a plain v1 record.
	var buf bytes.Buffer
	if err := WriteCapture(&buf, regionCapture(core.Region{}, false)); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[3]; got != 0x01 {
		t.Fatalf("plain capture encoded as version %d, want 1", got)
	}
	out, err := ReadCapture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Region.IsZero() || out.Priority {
		t.Fatal("v1 record decoded with region or priority set")
	}
}

// TestRegionDecodeRejectsMalformed: every degenerate, inverted, or
// non-finite region is refused at decode with ErrBadRegion — the
// grouping backend never sees it.
func TestRegionDecodeRejectsMalformed(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	bad := []core.Region{
		{Min: geom.Pt(nan, 3), Max: geom.Pt(9, 7)},
		{Min: geom.Pt(2, inf), Max: geom.Pt(9, 7)},
		{Min: geom.Pt(9, 7), Max: geom.Pt(2, 3)},
		{Min: geom.Pt(2, 3), Max: geom.Pt(2, 7)},
		{Min: geom.Pt(2, 3), Max: geom.Pt(9, 3)},
		{Min: geom.Pt(2, 3), Max: geom.Pt(9, 7), Cell: nan},
		{Min: geom.Pt(2, 3), Max: geom.Pt(9, 7), Cell: -0.5},
		{Min: geom.Pt(2, 3), Max: geom.Pt(9, 7), Cell: 1e-6},
		{Min: geom.Pt(-2e9, 3), Max: geom.Pt(9, 7)},
	}
	// Writers validate too: a malformed region never leaves the AP.
	for i, r := range bad {
		if err := WriteCapture(&bytes.Buffer{}, regionCapture(r, false)); !errors.Is(err, ErrBadRegion) {
			t.Errorf("case %d: WriteCapture err = %v, want ErrBadRegion", i, err)
		}
	}
	// And readers reject the same boxes when hostile bytes put them on
	// the wire anyway.
	var buf bytes.Buffer
	if err := WriteCapture(&buf, regionCapture(core.Region{Min: geom.Pt(2, 3), Max: geom.Pt(9, 7)}, false)); err != nil {
		t.Fatal(err)
	}
	template := buf.Bytes()
	for i, r := range bad {
		rec := putRegion(template, r.Min.X, r.Min.Y, r.Max.X, r.Max.Y, r.Cell)
		if _, err := ReadCapture(bytes.NewReader(rec)); !errors.Is(err, ErrBadRegion) {
			t.Errorf("case %d: ReadCapture err = %v, want ErrBadRegion", i, err)
		}
		// ServeConn must reject the stream without panicking.
		b := NewBackend(1000, time.Second, func(uint32, []Capture) {})
		if err := b.ServeConn(bytes.NewReader(rec)); !errors.Is(err, ErrBadRegion) {
			t.Errorf("case %d: ServeConn err = %v, want ErrBadRegion", i, err)
		}
	}
}
