package server

import (
	"bytes"
	"context"
	"io"
	"math/cmplx"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wifi"
)

func TestCircularBufferBasics(t *testing.T) {
	b := NewCircularBuffer(3)
	if b.Cap() != 3 || b.Len() != 0 {
		t.Fatal("fresh buffer wrong")
	}
	for i := uint32(0); i < 3; i++ {
		if evicted := b.Push(Capture{Seq: i}); evicted {
			t.Error("premature eviction")
		}
	}
	if !b.Push(Capture{Seq: 3}) {
		t.Error("full buffer should evict")
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d", b.Len())
	}
	// Oldest remaining entry is Seq 1.
	c, ok := b.Pop()
	if !ok || c.Seq != 1 {
		t.Errorf("Pop = %+v %v", c, ok)
	}
	snap := b.Snapshot()
	if len(snap) != 2 || snap[0].Seq != 2 || snap[1].Seq != 3 {
		t.Errorf("Snapshot = %+v", snap)
	}
	b.Pop()
	b.Pop()
	if _, ok := b.Pop(); ok {
		t.Error("empty Pop should fail")
	}
}

func TestCircularBufferPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCircularBuffer(0)
}

func TestCircularBufferConcurrent(t *testing.T) {
	b := NewCircularBuffer(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base uint32) {
			defer wg.Done()
			for i := uint32(0); i < 1000; i++ {
				b.Push(Capture{Seq: base + i})
				b.Pop()
				b.Len()
			}
		}(uint32(w) * 10000)
	}
	wg.Wait()
}

func TestRecentForClient(t *testing.T) {
	b := NewCircularBuffer(10)
	t0 := time.Now()
	b.Push(Capture{ClientID: 1, Seq: 0, Timestamp: t0})
	b.Push(Capture{ClientID: 1, Seq: 1, Timestamp: t0.Add(50 * time.Millisecond)})
	b.Push(Capture{ClientID: 1, Seq: 2, Timestamp: t0.Add(300 * time.Millisecond)})
	b.Push(Capture{ClientID: 2, Seq: 3, Timestamp: t0.Add(300 * time.Millisecond)})
	got := b.RecentForClient(1, 100*time.Millisecond)
	if len(got) != 1 || got[0].Seq != 2 {
		t.Errorf("RecentForClient = %+v", got)
	}
	if b.RecentForClient(99, time.Second) != nil {
		t.Error("unknown client should return nil")
	}
}

func randomCapture(rng *rand.Rand, nAnt, nSamp int) *Capture {
	c := &Capture{
		APID:      7,
		ClientID:  13,
		Seq:       42,
		Timestamp: time.UnixMicro(1700000000123456).UTC(),
		Streams:   make([][]complex128, nAnt),
	}
	for a := range c.Streams {
		st := make([]complex128, nSamp)
		for s := range st {
			st[s] = complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-3
		}
		c.Streams[a] = st
	}
	return c
}

func TestProtocolRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomCapture(rng, 8, 10)
	var buf bytes.Buffer
	if err := WriteCapture(&buf, c); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), RecordSize(8, 10); got != want {
		t.Errorf("record size = %d, want %d", got, want)
	}
	d, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.APID != 7 || d.ClientID != 13 || d.Seq != 42 || !d.Timestamp.Equal(c.Timestamp) {
		t.Errorf("metadata mismatch: %+v", d)
	}
	// 16-bit quantization: relative error bounded by ~2/32767 of peak.
	var peak float64
	for _, st := range c.Streams {
		for _, v := range st {
			if a := cmplx.Abs(v); a > peak {
				peak = a
			}
		}
	}
	for a := range c.Streams {
		for s := range c.Streams[a] {
			if cmplx.Abs(d.Streams[a][s]-c.Streams[a][s]) > peak*1e-3 {
				t.Fatalf("sample %d/%d quantization error too large", a, s)
			}
		}
	}
}

func TestProtocolRejectsGarbage(t *testing.T) {
	if _, err := ReadCapture(bytes.NewReader(make([]byte, 32))); err != ErrBadMagic {
		t.Errorf("bad magic error = %v", err)
	}
	// Truncated stream.
	rng := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	if err := WriteCapture(&buf, randomCapture(rng, 2, 4)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:20]
	if _, err := ReadCapture(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated header should error")
	}
	if _, err := ReadCapture(bytes.NewReader(buf.Bytes()[:40])); err == nil {
		t.Error("truncated payload should error")
	}
	// Oversized declaration.
	big := &Capture{Streams: make([][]complex128, MaxAntennas+1)}
	if err := WriteCapture(io.Discard, big); err == nil {
		t.Error("oversized write should error")
	}
	// Ragged streams.
	ragged := &Capture{Streams: [][]complex128{make([]complex128, 3), make([]complex128, 5)}}
	if err := WriteCapture(io.Discard, ragged); err == nil {
		t.Error("ragged write should error")
	}
	// Empty capture.
	empty := &Capture{}
	if err := WriteCapture(io.Discard, empty); err == nil {
		t.Error("empty write should error")
	}
	// Clean EOF at record boundary.
	if _, err := ReadCapture(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("clean EOF = %v", err)
	}
}

func TestProtocolAllZeroSamples(t *testing.T) {
	c := &Capture{Streams: [][]complex128{make([]complex128, 4)}}
	var buf bytes.Buffer
	if err := WriteCapture(&buf, c); err != nil {
		t.Fatal(err)
	}
	d, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Streams[0] {
		if v != 0 {
			t.Errorf("zero sample decoded as %v", v)
		}
	}
}

func TestDetectorOnPreamble(t *testing.T) {
	d := DefaultDetector()
	p := wifi.Preamble40()
	rng := rand.New(rand.NewSource(3))
	streams := make([][]complex128, 2)
	for k := range streams {
		st := make([]complex128, 2000)
		for i := range st {
			st[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * 0.01
		}
		for i, v := range p {
			st[700+i] += v
		}
		streams[k] = st
	}
	start, ok := d.Detect(streams)
	if !ok {
		t.Fatal("preamble not detected")
	}
	if start < 700-64 || start > 700+96 {
		t.Errorf("detected at %d, want near 700", start)
	}
	win := d.Extract(streams, start)
	if len(win[0]) != d.CaptureLen {
		t.Errorf("capture window = %d samples", len(win[0]))
	}
	// Degenerate extraction at end of stream.
	tail := d.Extract(streams, 1999)
	if len(tail[0]) != 1 {
		t.Errorf("tail window = %d", len(tail[0]))
	}
	if _, ok := d.Detect(nil); ok {
		t.Error("empty detect should fail")
	}
}

func TestAPNodeRecordAndUpload(t *testing.T) {
	n := NewAPNode(3, 8)
	for i := 0; i < 3; i++ {
		n.Record(1, time.Now(), [][]complex128{{1, 2}, {3, 4}})
	}
	if n.Buffer.Len() != 3 {
		t.Fatalf("buffered = %d", n.Buffer.Len())
	}
	var buf bytes.Buffer
	if err := n.Upload(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	if n.Buffer.Len() != 0 {
		t.Error("upload should drain the buffer")
	}
	// Three decodable records with increasing seq.
	for i := uint32(0); i < 3; i++ {
		c, err := ReadCapture(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if c.Seq != i || c.APID != 3 {
			t.Errorf("record %d: %+v", i, c)
		}
	}
}

func TestBackendQuorumGrouping(t *testing.T) {
	var mu sync.Mutex
	var got []Capture
	b := NewBackend(2, time.Second, func(clientID uint32, cs []Capture) {
		mu.Lock()
		defer mu.Unlock()
		got = cs
	})
	now := time.Now()
	b.Ingest(&Capture{APID: 1, ClientID: 9, Timestamp: now})
	if got != nil {
		t.Fatal("quorum fired early")
	}
	if b.PendingClients() != 1 {
		t.Errorf("pending = %d", b.PendingClients())
	}
	b.Ingest(&Capture{APID: 2, ClientID: 9, Timestamp: now.Add(time.Millisecond)})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("grouped = %d captures", len(got))
	}
	if b.PendingClients() != 0 {
		t.Error("pending not cleared after quorum")
	}
}

func TestBackendDropsStale(t *testing.T) {
	fired := false
	b := NewBackend(2, 100*time.Millisecond, func(uint32, []Capture) { fired = true })
	t0 := time.Now()
	b.Ingest(&Capture{APID: 1, ClientID: 5, Timestamp: t0})
	// Second AP reports much later: the first capture is stale, no
	// quorum.
	b.Ingest(&Capture{APID: 2, ClientID: 5, Timestamp: t0.Add(time.Second)})
	if fired {
		t.Error("stale captures should not satisfy quorum")
	}
}

func TestBackendOverTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan uint32, 1)
	b := NewBackend(1, time.Second, func(clientID uint32, cs []Capture) {
		done <- clientID
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go b.Serve(ctx, l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	n := NewAPNode(1, 4)
	n.Record(77, time.Now(), [][]complex128{{1 + 1i, 2}, {3, 4i}})
	if err := n.Upload(ctx, conn); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	select {
	case id := <-done:
		if id != 77 {
			t.Errorf("located client %d, want 77", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("backend never fired")
	}
}

func TestTransferTimeModel(t *testing.T) {
	// §4.4: 10 samples × 32 bits × 8 radios at 1 Mbit/s ≈ 2.56 ms.
	// Our records carry a 32-byte header too, so allow a small margin.
	got := TransferTime(8, 10, 1)
	if got < 2500*time.Microsecond || got > 2900*time.Microsecond {
		t.Errorf("TransferTime = %v, want ≈2.56 ms", got)
	}
}

func TestLatencyTotal(t *testing.T) {
	l := Latency{Detection: 16 * time.Microsecond, Transfer: 2560 * time.Microsecond, Processing: 90 * time.Millisecond}
	want := 16*time.Microsecond + 2560*time.Microsecond + 90*time.Millisecond
	if l.Total() != want {
		t.Errorf("Total = %v", l.Total())
	}
}
