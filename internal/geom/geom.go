// Package geom provides the 2-D computational geometry substrate used by
// the indoor RF channel simulator: points, vectors, wall segments,
// image-method reflections, visibility tests, and floorplans with
// material properties.
//
// The coordinate system is metres, x to the right, y up. Angles are
// radians measured counter-clockwise from the +x axis, matching the
// bearing convention used by the antenna-array steering vectors.
package geom

import (
	"fmt"
	"math"
)

// Eps is the absolute tolerance used by geometric predicates. Positions
// in the testbed are on the order of metres, so 1e-9 m (a nanometre) is
// far below any physically meaningful distance while staying well above
// float64 rounding error for our magnitudes.
const Eps = 1e-9

// Point is a location in the plane, in metres.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p translated by the vector v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Bearing returns the angle of the ray from p to q, in radians in
// [0, 2π).
func (p Point) Bearing(q Point) float64 {
	a := math.Atan2(q.Y-p.Y, q.X-p.X)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Vec is a displacement in the plane, in metres.
type Vec struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z component of the 3-D cross product v × w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Unit returns v normalized to unit length. The zero vector is returned
// unchanged.
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n < Eps {
		return v
	}
	return v.Scale(1 / n)
}

// Angle returns the direction of v in radians in [0, 2π).
func (v Vec) Angle() float64 {
	a := math.Atan2(v.Y, v.X)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// FromAngle returns the unit vector pointing along angle a (radians).
func FromAngle(a float64) Vec { return Vec{math.Cos(a), math.Sin(a)} }

// Segment is a wall segment between two endpoints.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{a, b} }

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Dir returns the unit direction vector from A to B.
func (s Segment) Dir() Vec { return s.B.Sub(s.A).Unit() }

// Normal returns a unit normal of the segment (rotated +90° from Dir).
func (s Segment) Normal() Vec {
	d := s.Dir()
	return Vec{-d.Y, d.X}
}

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// Project returns the parameter t in [0,1] of the point on s closest to
// p, and that closest point.
func (s Segment) Project(p Point) (t float64, q Point) {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 < Eps*Eps {
		return 0, s.A
	}
	t = p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	return t, s.A.Add(d.Scale(t))
}

// DistTo returns the distance from p to the nearest point of s.
func (s Segment) DistTo(p Point) float64 {
	_, q := s.Project(p)
	return p.Dist(q)
}

// Mirror returns the mirror image of p across the infinite line through
// the segment. This is the "image source" of the image method for
// specular reflection.
func (s Segment) Mirror(p Point) Point {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 < Eps*Eps {
		return p
	}
	t := p.Sub(s.A).Dot(d) / l2
	foot := s.A.Add(d.Scale(t))
	return Point{2*foot.X - p.X, 2*foot.Y - p.Y}
}

// Intersect reports whether segments s and o properly intersect, and if
// so the intersection point and the parameter t along s (0 at A, 1 at
// B). Collinear overlap is reported as no intersection: grazing
// incidence carries negligible reflected energy and the ray tracer
// treats it as a miss.
func (s Segment) Intersect(o Segment) (p Point, t float64, ok bool) {
	r := s.B.Sub(s.A)
	d := o.B.Sub(o.A)
	denom := r.Cross(d)
	if math.Abs(denom) < Eps {
		return Point{}, 0, false
	}
	ao := o.A.Sub(s.A)
	t = ao.Cross(d) / denom
	u := ao.Cross(r) / denom
	if t < -Eps || t > 1+Eps || u < -Eps || u > 1+Eps {
		return Point{}, 0, false
	}
	return s.A.Add(r.Scale(t)), t, true
}

// Material describes the RF properties of a wall or obstacle surface.
type Material struct {
	// Name identifies the material in floorplan listings.
	Name string
	// Reflectivity is the magnitude of the specular reflection
	// coefficient, in [0,1].
	Reflectivity float64
	// TransmissionLossDB is the attenuation in dB suffered by a ray
	// passing through the surface.
	TransmissionLossDB float64
}

// Standard materials, with reflectivity and penetration loss figures in
// the range reported for 2.4 GHz indoor propagation surveys.
var (
	Drywall  = Material{Name: "drywall", Reflectivity: 0.35, TransmissionLossDB: 3}
	Concrete = Material{Name: "concrete", Reflectivity: 0.65, TransmissionLossDB: 12}
	Glass    = Material{Name: "glass", Reflectivity: 0.25, TransmissionLossDB: 2}
	Metal    = Material{Name: "metal", Reflectivity: 0.95, TransmissionLossDB: 30}
	Wood     = Material{Name: "wood", Reflectivity: 0.30, TransmissionLossDB: 4}
	Plastic  = Material{Name: "plastic", Reflectivity: 0.20, TransmissionLossDB: 1}
)

// Wall is a surface in the floorplan: a segment plus its material.
type Wall struct {
	Seg Segment
	Mat Material
}

// Floorplan is a collection of walls and solid obstacles describing one
// floor of a building.
type Floorplan struct {
	// Walls are the reflecting/occluding surfaces.
	Walls []Wall
	// Bounds is the bounding rectangle (min and max corners) of the
	// plan, used to size likelihood grids.
	Min, Max Point
}

// AddWall appends a wall and grows the bounding box.
func (f *Floorplan) AddWall(a, b Point, m Material) {
	f.Walls = append(f.Walls, Wall{Seg: Seg(a, b), Mat: m})
	f.grow(a)
	f.grow(b)
}

// AddRect appends the four walls of an axis-aligned rectangle with
// corners min and max. Used for pillars, rooms, and the outer shell.
func (f *Floorplan) AddRect(min, max Point, m Material) {
	a := min
	b := Pt(max.X, min.Y)
	c := max
	d := Pt(min.X, max.Y)
	f.AddWall(a, b, m)
	f.AddWall(b, c, m)
	f.AddWall(c, d, m)
	f.AddWall(d, a, m)
}

func (f *Floorplan) grow(p Point) {
	if len(f.Walls) == 1 && f.Min == (Point{}) && f.Max == (Point{}) {
		f.Min, f.Max = p, p
	}
	f.Min.X = math.Min(f.Min.X, p.X)
	f.Min.Y = math.Min(f.Min.Y, p.Y)
	f.Max.X = math.Max(f.Max.X, p.X)
	f.Max.Y = math.Max(f.Max.Y, p.Y)
}

// Obstructions returns the walls crossed by the open segment from a to
// b, excluding walls whose index appears in skip (used so a reflected
// ray does not count its own mirror wall as an obstruction at the
// reflection point).
func (f *Floorplan) Obstructions(a, b Point, skip map[int]bool) []int {
	ray := Seg(a, b)
	var hit []int
	for i, w := range f.Walls {
		if skip != nil && skip[i] {
			continue
		}
		// Ignore intersections at the very endpoints of the ray: the
		// transmitter or receiver may sit flush against a wall.
		p, t, ok := ray.Intersect(w.Seg)
		if !ok {
			continue
		}
		if t < 1e-6 || t > 1-1e-6 {
			continue
		}
		_ = p
		hit = append(hit, i)
	}
	return hit
}

// PathLossDB sums the transmission loss of every wall crossed by the
// segment from a to b.
func (f *Floorplan) PathLossDB(a, b Point, skip map[int]bool) float64 {
	var loss float64
	for _, i := range f.Obstructions(a, b, skip) {
		loss += f.Walls[i].Mat.TransmissionLossDB
	}
	return loss
}

// LineOfSight reports whether the segment from a to b crosses no walls.
func (f *Floorplan) LineOfSight(a, b Point) bool {
	return len(f.Obstructions(a, b, nil)) == 0
}

// Contains reports whether p lies inside the bounding box of the plan.
func (f *Floorplan) Contains(p Point) bool {
	return p.X >= f.Min.X-Eps && p.X <= f.Max.X+Eps &&
		p.Y >= f.Min.Y-Eps && p.Y <= f.Max.Y+Eps
}

// NormalizeAngle maps a to the range [0, 2π).
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the absolute angular difference between a and b,
// folded into [0, π].
func AngleDiff(a, b float64) float64 {
	d := math.Abs(NormalizeAngle(a) - NormalizeAngle(b))
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }
