package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArith(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(4, 6)
	if got := p.Dist(q); !almost(got, 5, 1e-12) {
		t.Errorf("Dist = %v, want 5", got)
	}
	v := q.Sub(p)
	if v != (Vec{3, 4}) {
		t.Errorf("Sub = %v, want {3 4}", v)
	}
	if got := p.Add(v); got != q {
		t.Errorf("Add = %v, want %v", got, q)
	}
}

func TestBearing(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(1, 0), 0},
		{Pt(0, 0), Pt(0, 1), math.Pi / 2},
		{Pt(0, 0), Pt(-1, 0), math.Pi},
		{Pt(0, 0), Pt(0, -1), 3 * math.Pi / 2},
		{Pt(1, 1), Pt(2, 2), math.Pi / 4},
	}
	for _, c := range cases {
		if got := c.p.Bearing(c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Bearing(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestVecOps(t *testing.T) {
	v := Vec{3, 4}
	if got := v.Norm(); !almost(got, 5, 1e-12) {
		t.Errorf("Norm = %v", got)
	}
	u := v.Unit()
	if !almost(u.Norm(), 1, 1e-12) {
		t.Errorf("Unit().Norm() = %v", u.Norm())
	}
	if got := v.Dot(Vec{1, 0}); !almost(got, 3, 1e-12) {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Cross(Vec{1, 0}); !almost(got, -4, 1e-12) {
		t.Errorf("Cross = %v", got)
	}
	if got := (Vec{}).Unit(); got != (Vec{}) {
		t.Errorf("zero Unit = %v", got)
	}
}

func TestFromAngleRoundTrip(t *testing.T) {
	for _, a := range []float64{0, 0.3, 1.5, math.Pi, 4.2, 6.1} {
		v := FromAngle(a)
		if !almost(v.Angle(), a, 1e-12) {
			t.Errorf("Angle(FromAngle(%v)) = %v", a, v.Angle())
		}
		if !almost(v.Norm(), 1, 1e-12) {
			t.Errorf("FromAngle(%v) not unit", a)
		}
	}
}

func TestSegmentProject(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tpar, q := s.Project(Pt(3, 5))
	if !almost(tpar, 0.3, 1e-12) || !almost(q.X, 3, 1e-12) || !almost(q.Y, 0, 1e-12) {
		t.Errorf("Project = %v %v", tpar, q)
	}
	// Clamping beyond the endpoints.
	tpar, q = s.Project(Pt(-5, 1))
	if tpar != 0 || q != s.A {
		t.Errorf("Project clamp low = %v %v", tpar, q)
	}
	tpar, q = s.Project(Pt(99, 1))
	if tpar != 1 || q != s.B {
		t.Errorf("Project clamp high = %v %v", tpar, q)
	}
	if got := s.DistTo(Pt(3, 5)); !almost(got, 5, 1e-12) {
		t.Errorf("DistTo = %v", got)
	}
}

func TestSegmentMirror(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0)) // the x axis
	m := s.Mirror(Pt(3, 4))
	if !almost(m.X, 3, 1e-12) || !almost(m.Y, -4, 1e-12) {
		t.Errorf("Mirror = %v", m)
	}
	// Mirroring across a diagonal line y=x swaps coordinates.
	d := Seg(Pt(0, 0), Pt(1, 1))
	m = d.Mirror(Pt(5, 2))
	if !almost(m.X, 2, 1e-9) || !almost(m.Y, 5, 1e-9) {
		t.Errorf("diagonal Mirror = %v", m)
	}
}

func TestMirrorInvolution(t *testing.T) {
	// Property: mirroring twice is the identity, and the foot of the
	// segment from p to its mirror lies on the mirror line.
	f := func(ax, ay, bx, by, px, py float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		if a.Dist(b) < 1e-3 {
			return true // degenerate segment, skip
		}
		s := Seg(a, b)
		p := Pt(px, py)
		m := s.Mirror(s.Mirror(p))
		return almost(m.X, p.X, 1e-6) && almost(m.Y, p.Y, 1e-6)
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(r.Float64()*20 - 10)
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSegmentIntersect(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	o := Seg(Pt(5, -5), Pt(5, 5))
	p, tpar, ok := s.Intersect(o)
	if !ok || !almost(p.X, 5, 1e-12) || !almost(p.Y, 0, 1e-12) || !almost(tpar, 0.5, 1e-12) {
		t.Errorf("Intersect = %v %v %v", p, tpar, ok)
	}
	// Parallel segments never intersect.
	if _, _, ok := s.Intersect(Seg(Pt(0, 1), Pt(10, 1))); ok {
		t.Error("parallel segments reported intersecting")
	}
	// Disjoint segments.
	if _, _, ok := s.Intersect(Seg(Pt(20, -1), Pt(20, 1))); ok {
		t.Error("disjoint segments reported intersecting")
	}
}

func TestFloorplanLoS(t *testing.T) {
	var f Floorplan
	f.AddWall(Pt(5, -5), Pt(5, 5), Concrete)
	if f.LineOfSight(Pt(0, 0), Pt(10, 0)) {
		t.Error("wall should block LoS")
	}
	if !f.LineOfSight(Pt(0, 0), Pt(4, 0)) {
		t.Error("short path should be clear")
	}
	if got := f.PathLossDB(Pt(0, 0), Pt(10, 0), nil); !almost(got, Concrete.TransmissionLossDB, 1e-12) {
		t.Errorf("PathLossDB = %v", got)
	}
	// Skipping the wall index removes the obstruction.
	if got := f.PathLossDB(Pt(0, 0), Pt(10, 0), map[int]bool{0: true}); got != 0 {
		t.Errorf("skipped PathLossDB = %v", got)
	}
}

func TestFloorplanRectAndBounds(t *testing.T) {
	var f Floorplan
	f.AddRect(Pt(0, 0), Pt(30, 15), Drywall)
	if len(f.Walls) != 4 {
		t.Fatalf("walls = %d", len(f.Walls))
	}
	if f.Min != Pt(0, 0) || f.Max != Pt(30, 15) {
		t.Errorf("bounds = %v %v", f.Min, f.Max)
	}
	if !f.Contains(Pt(15, 7)) || f.Contains(Pt(40, 7)) {
		t.Error("Contains wrong")
	}
}

func TestObstructionEndpointTolerance(t *testing.T) {
	// A transmitter sitting exactly on a wall should not be "blocked"
	// by that wall.
	var f Floorplan
	f.AddWall(Pt(0, -5), Pt(0, 5), Drywall)
	if !f.LineOfSight(Pt(0, 0), Pt(3, 0)) {
		t.Error("endpoint on wall should not count as obstruction")
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almost(got, c.want, 1e-12) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	if got := AngleDiff(0.1, 2*math.Pi-0.1); !almost(got, 0.2, 1e-12) {
		t.Errorf("AngleDiff wraparound = %v", got)
	}
	if got := AngleDiff(0, math.Pi); !almost(got, math.Pi, 1e-12) {
		t.Errorf("AngleDiff(0,π) = %v", got)
	}
}

func TestDegRad(t *testing.T) {
	if !almost(Deg(math.Pi), 180, 1e-12) || !almost(Rad(180), math.Pi, 1e-12) {
		t.Error("Deg/Rad conversion wrong")
	}
}

func TestSegmentNormalPerpendicular(t *testing.T) {
	s := Seg(Pt(1, 1), Pt(4, 5))
	if got := s.Normal().Dot(s.Dir()); !almost(got, 0, 1e-12) {
		t.Errorf("normal not perpendicular: dot = %v", got)
	}
	if !almost(s.Normal().Norm(), 1, 1e-12) {
		t.Error("normal not unit")
	}
}
