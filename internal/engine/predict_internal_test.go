package engine

// Internal tests for the predictive track-guided path: every verify
// outcome (hit, gate reject, border argmax, no track, region error)
// is staged deterministically with synthetic single-lobe spectra, so
// the fallback logic is pinned without a full capture pipeline.

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/music"
)

// lobeScene builds four corner APs each holding a single Gaussian
// lobe at the true bearing to the target: one sharp global likelihood
// peak exactly at the target.
func lobeScene(target geom.Point) []core.APSpectrum {
	positions := []geom.Point{
		geom.Pt(0.5, 0.5), geom.Pt(39.5, 0.7), geom.Pt(39.3, 15.5), geom.Pt(0.6, 15.2),
	}
	aps := make([]core.APSpectrum, len(positions))
	for i, pos := range positions {
		s := music.NewSpectrum(360)
		c := geom.Deg(pos.Bearing(target))
		for b := range s.P {
			d := math.Abs(float64(b) - c)
			if d > 180 {
				d = 360 - d
			}
			s.P[b] = math.Exp(-d * d / (2 * 16))
		}
		aps[i] = core.APSpectrum{Pos: pos, Spectrum: s.Normalize()}
	}
	return aps
}

func TestPredictiveFixVerifyAndFallbacks(t *testing.T) {
	base := time.Unix(1700000000, 0)
	tracker := NewTracker(TrackerOptions{ProcessNoise: 0.5, MeasSigma: 0.5, Gate: 4,
		Now: func() time.Time { return base }})
	cfg := core.Config{Wavelength: 0.1225, GridCell: 0.10, SynthCache: core.NewSynthCache()}
	eng := New(Options{Workers: 1, Config: cfg, Tracker: tracker, Predict: true})
	defer eng.Close()

	// Mature a stationary track at (20, 8).
	for i := 0; i < 4; i++ {
		tracker.Observe(7, geom.Pt(20, 8), base.Add(time.Duration(i)*time.Second))
	}
	at := base.Add(4 * time.Second)
	pred, ok := tracker.Predict(7, at, eng.predMin)
	if !ok {
		t.Fatal("matured track did not predict")
	}
	p := core.NewPipeline(eng.cfg)
	req := Request{ClientID: 7, Min: geom.Pt(0, 0), Max: geom.Pt(40, 16), Time: at}

	// Verified hit: the scene's peak sits near the predicted position,
	// strictly inside the gate box.
	target := geom.Pt(20.3, 8.2)
	pos, served := eng.predictiveFix(p, req, lobeScene(target))
	if !served {
		t.Fatalf("peak at %v near prediction %v was not served predictively", target, pred.Pos)
	}
	if pos.Dist(target) > 0.5 {
		t.Fatalf("predictive fix %v far from the scene peak %v", pos, target)
	}

	// Gate reject: a peak near the box corner is interior to the
	// region but outside the Mahalanobis ellipse (corner distance ≈
	// 0.93·σ·√2 > σ).
	_, hi := pred.Box(eng.PredictSigma())
	corner := geom.Pt(
		pred.Pos.X+0.93*(hi.X-pred.Pos.X),
		pred.Pos.Y+0.93*(hi.Y-pred.Pos.Y),
	)
	if d := math.Sqrt(pred.MahalanobisSq(corner)); d <= pred.Gate {
		t.Fatalf("test setup: corner %v at %.2fσ, need > gate %.1f", corner, d, pred.Gate)
	}
	if _, served := eng.predictiveFix(p, req, lobeScene(corner)); served {
		t.Fatal("gate-rejected peak was served predictively")
	}

	// Border fallback: the peak lies well outside the predicted box,
	// so the region argmax hugs an open border.
	outside := geom.Pt(hi.X+4, pred.Pos.Y)
	if _, served := eng.predictiveFix(p, req, lobeScene(outside)); served {
		t.Fatal("peak outside the predicted region was served predictively")
	}

	// No track: an unknown client never predicts.
	req99 := req
	req99.ClientID = 99
	if _, served := eng.predictiveFix(p, req99, lobeScene(target)); served {
		t.Fatal("client with no track was served predictively")
	}

	// Region error: a search area that excludes the whole predicted
	// box (as after a long coast off the floor) falls back cleanly.
	reqFar := req
	reqFar.Min, reqFar.Max = geom.Pt(30, 0), geom.Pt(40, 16)
	if _, served := eng.predictiveFix(p, reqFar, lobeScene(target)); served {
		t.Fatal("prediction outside the search area was served predictively")
	}

	// An explicit per-request region always wins over prediction.
	reqRegion := req
	reqRegion.Region = core.Region{Min: geom.Pt(1, 1), Max: geom.Pt(5, 5)}
	if _, served := eng.predictiveFix(p, reqRegion, lobeScene(target)); served {
		t.Fatal("explicit region request took the predictive path")
	}

	st := eng.Stats()
	if st.Predicted != 1 {
		t.Fatalf("Predicted = %d, want 1", st.Predicted)
	}
	if st.PredictFallbackGate != 1 {
		t.Fatalf("PredictFallbackGate = %d, want 1", st.PredictFallbackGate)
	}
	if st.PredictFallbackBorder != 1 {
		t.Fatalf("PredictFallbackBorder = %d, want 1", st.PredictFallbackBorder)
	}
	if st.PredictFallbackNoTrack != 1 {
		t.Fatalf("PredictFallbackNoTrack = %d, want 1", st.PredictFallbackNoTrack)
	}
	if st.PredictFallbackError != 1 {
		t.Fatalf("PredictFallbackError = %d, want 1", st.PredictFallbackError)
	}
}

// TestPredictSigmaClampedToGate: a sigma below the tracker's gate
// would carve a region smaller than the gate ellipse — fixes the
// tracker would accept could fall outside it. The engine raises it.
func TestPredictSigmaClampedToGate(t *testing.T) {
	tracker := NewTracker(TrackerOptions{Gate: 5})
	eng := New(Options{Workers: 1, Config: core.Config{}, Tracker: tracker,
		Predict: true, PredictSigma: 2})
	defer eng.Close()
	if s := eng.PredictSigma(); s != 5 {
		t.Fatalf("predSigma = %v, want clamped to the tracker gate 5", s)
	}
	// A hot-reloaded sigma is clamped the same way, and a negative
	// value disables the predictive path.
	eng.SetPredictSigma(3)
	if s := eng.PredictSigma(); s != 5 {
		t.Fatalf("hot-reloaded predSigma = %v, want clamped to the tracker gate 5", s)
	}
	eng.SetPredictSigma(7)
	if s := eng.PredictSigma(); s != 7 {
		t.Fatalf("hot-reloaded predSigma = %v, want 7", s)
	}
	eng.SetPredictSigma(-1)
	if s := eng.PredictSigma(); s != 0 {
		t.Fatalf("negative sigma did not disable the predictive path (sigma %v)", s)
	}
	// Predict without a tracker stays disabled — including via the
	// hot-reload path.
	bare := New(Options{Workers: 1, Config: core.Config{}, Predict: true})
	defer bare.Close()
	bare.SetPredictSigma(4)
	if s := bare.PredictSigma(); s != 0 {
		t.Fatalf("predictive path enabled without a tracker (sigma %v)", s)
	}
}

// TestTrackerPredictMaturity: Predict reports false for unknown,
// immature, and stale tracks, and true (with a sane box) once the
// track has enough accepted fixes.
func TestTrackerPredictMaturity(t *testing.T) {
	now := time.Unix(1700000000, 0)
	tracker := NewTracker(TrackerOptions{TTL: 10 * time.Second,
		Now: func() time.Time { return now }})
	if _, ok := tracker.Predict(1, now, 3); ok {
		t.Fatal("unknown client predicted")
	}
	tracker.Observe(1, geom.Pt(5, 5), now)
	tracker.Observe(1, geom.Pt(5.5, 5), now.Add(time.Second))
	if _, ok := tracker.Predict(1, now.Add(2*time.Second), 3); ok {
		t.Fatal("immature track (2 accepted fixes) predicted with minFixes 3")
	}
	tracker.Observe(1, geom.Pt(6, 5), now.Add(2*time.Second))
	pred, ok := tracker.Predict(1, now.Add(3*time.Second), 3)
	if !ok {
		t.Fatal("mature track did not predict")
	}
	if pred.Pos.Dist(geom.Pt(6.5, 5)) > 1.5 {
		t.Fatalf("eastward walk predicted at %v, expected near (6.5, 5)", pred.Pos)
	}
	// Stale: past the TTL the track would be restarted, so its
	// prediction is withheld.
	if _, ok := tracker.Predict(1, now.Add(14*time.Second), 3); ok {
		t.Fatal("stale track predicted")
	}
}
