package engine_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/array"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/music"
	"repro/internal/server"
	"repro/internal/testbed"
)

// testbedRequests builds a deterministic batch of localization
// requests through the simulated office (shared across tests; capture
// synthesis through the channel model is the expensive part).
var (
	fixtureOnce sync.Once
	fixtureTB   *testbed.Testbed
	fixtureReqs []engine.Request
)

func testbedRequests(t *testing.T, n int) (*testbed.Testbed, []engine.Request) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureTB = testbed.New()
		opt := testbed.DefaultThroughputOptions()
		opt.Capture.Antennas = 6
		opt.Capture.Frames = 2
		fixtureReqs = fixtureTB.ThroughputRequests(16, opt)
	})
	if n > len(fixtureReqs) {
		t.Fatalf("fixture holds %d requests, need %d", len(fixtureReqs), n)
	}
	return fixtureTB, fixtureReqs[:n]
}

// TestEngineMatchesSerial is the tentpole's second correctness anchor:
// a batch through the worker pool must produce exactly the fixes the
// serial loop produces, position and spectra alike.
func TestEngineMatchesSerial(t *testing.T) {
	tb, reqs := testbedRequests(t, 8)
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = 0.25

	serial := make([]engine.Result, len(reqs))
	serialCfg := cfg
	serialCfg.APWorkers = 0
	serialCfg.Steering = nil // seed path: uncached, single-threaded
	for i, q := range reqs {
		pos, specs, err := core.LocateClient(q.APs, q.Captures, q.Min, q.Max, serialCfg)
		serial[i] = engine.Result{ClientID: q.ClientID, Pos: pos, Spectra: specs, Err: err}
	}

	eng := engine.New(engine.Options{Workers: 4, Config: cfg})
	defer eng.Close()
	batch := eng.LocateBatch(reqs)

	if len(batch) != len(serial) {
		t.Fatalf("batch returned %d results for %d requests", len(batch), len(serial))
	}
	for i := range serial {
		s, b := serial[i], batch[i]
		if s.Err != nil || b.Err != nil {
			t.Fatalf("request %d errored: serial=%v batch=%v", i, s.Err, b.Err)
		}
		if b.ClientID != s.ClientID {
			t.Fatalf("request %d: batch result for client %d, want %d", i, b.ClientID, s.ClientID)
		}
		if b.Pos != s.Pos {
			t.Fatalf("request %d: engine pos %v, serial pos %v", i, b.Pos, s.Pos)
		}
		if len(b.Spectra) != len(s.Spectra) {
			t.Fatalf("request %d: %d vs %d spectra", i, len(b.Spectra), len(s.Spectra))
		}
		for j := range s.Spectra {
			if b.Spectra[j].Pos != s.Spectra[j].Pos {
				t.Fatalf("request %d spectrum %d: AP pos differs", i, j)
			}
			sp, bp := s.Spectra[j].Spectrum.P, b.Spectra[j].Spectrum.P
			for k := range sp {
				if d := math.Abs(bp[k] - sp[k]); d > 1e-12 {
					t.Fatalf("request %d spectrum %d bin %d: Δ=%g", i, j, k, d)
				}
			}
		}
	}
}

func TestEngineLocateSingle(t *testing.T) {
	tb, reqs := testbedRequests(t, 1)
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = 0.25
	eng := engine.New(engine.Options{Workers: 2, Config: cfg})
	defer eng.Close()
	r := eng.Locate(reqs[0])
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.ClientID != reqs[0].ClientID {
		t.Fatalf("result for client %d, want %d", r.ClientID, reqs[0].ClientID)
	}
	st := eng.Stats()
	if st.Fixes != 1 || st.Failures != 0 {
		t.Fatalf("stats %+v, want 1 fix", st)
	}
}

func TestEngineErrorPropagation(t *testing.T) {
	tb, reqs := testbedRequests(t, 1)
	cfg := core.DefaultConfig(tb.Wavelength)
	eng := engine.New(engine.Options{Workers: 1, Config: cfg})
	defer eng.Close()
	bad := engine.Request{ClientID: 9, APs: reqs[0].APs, Captures: make([][]core.FrameCapture, len(reqs[0].APs)), Min: tb.Plan.Min, Max: tb.Plan.Max}
	r := eng.Locate(bad)
	if r.Err == nil {
		t.Fatal("empty captures must fail")
	}
	if st := eng.Stats(); st.Failures != 1 {
		t.Fatalf("stats %+v, want 1 failure", st)
	}
}

func TestEngineSubmitAfterClose(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1, Config: core.Config{}})
	eng.Close()
	eng.Close() // idempotent
	if err := eng.Submit(engine.Request{}, func(engine.Result) {}); err != engine.ErrClosed {
		t.Fatalf("Submit after Close = %v, want engine.ErrClosed", err)
	}
	r := eng.Locate(engine.Request{ClientID: 3})
	if r.Err != engine.ErrClosed || r.ClientID != 3 {
		t.Fatalf("Locate after Close = %+v", r)
	}
}

// syntheticSetup builds a cheap two-AP scene with random streams —
// noise-only spectra are fine for concurrency testing, where the point
// is hammering the engine and backend, not localization accuracy.
func syntheticSetup() (aps []*core.AP, cfg core.Config, mkStreams func(rng *rand.Rand) [][]complex128) {
	lambda := 0.1225
	aps = []*core.AP{
		{Array: array.NewLinear(geom.Pt(0, 0), 0, 4, lambda)},
		{Array: array.NewLinear(geom.Pt(6, 0), math.Pi/2, 4, lambda)},
	}
	cfg = core.Config{
		Wavelength:          lambda,
		SmoothingGroups:     2,
		MaxSamples:          8,
		SignalThresholdFrac: 0.05,
		GridCell:            0.5,
		Steering:            music.NewSteeringCache(),
	}
	mkStreams = func(rng *rand.Rand) [][]complex128 {
		st := make([][]complex128, 4)
		for k := range st {
			st[k] = make([]complex128, 16)
			for i := range st[k] {
				st[k][i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
		}
		return st
	}
	return aps, cfg, mkStreams
}

// TestEngineConcurrentStress drives 128 clients from 128 goroutines
// through one engine; run under -race this exercises the worker pool,
// the steering cache's double-checked insert, and the atomics.
func TestEngineConcurrentStress(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	const clients = 128
	eng := engine.New(engine.Options{Workers: 8, Config: cfg})
	defer eng.Close()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			captures := [][]core.FrameCapture{
				{{Streams: mkStreams(rng)}},
				{{Streams: mkStreams(rng)}},
			}
			r := eng.Locate(engine.Request{
				ClientID: uint32(c + 1),
				APs:      aps,
				Captures: captures,
				Min:      geom.Pt(0, 0),
				Max:      geom.Pt(6, 4),
			})
			if r.Err != nil {
				errs <- fmt.Errorf("client %d: %w", c+1, r.Err)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := eng.Stats(); st.Fixes != clients {
		t.Fatalf("engine completed %d fixes, want %d", st.Fixes, clients)
	}
}

// TestBackendToEngineStress runs the full ingest path — sharded
// Backend quorum grouping into a engine.CaptureSink into the engine — with
// 120 clients ingesting concurrently from 8 simulated AP feeds.
func TestBackendToEngineStress(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	const clients = 120
	eng := engine.New(engine.Options{Workers: 8, Config: cfg})
	defer eng.Close()

	results := make(chan engine.Result, clients)
	sink := &engine.CaptureSink{
		Engine: eng,
		Resolve: func(apID uint32) *core.AP {
			if int(apID) < 1 || int(apID) > len(aps) {
				return nil
			}
			return aps[apID-1]
		},
		Min:      geom.Pt(0, 0),
		Max:      geom.Pt(6, 4),
		OnResult: func(r engine.Result) { results <- r },
	}
	backend := server.NewBackendDispatcher(2, time.Minute, sink)

	now := time.Now()
	var wg sync.WaitGroup
	for ap := uint32(1); ap <= 2; ap++ {
		for feed := 0; feed < 4; feed++ {
			wg.Add(1)
			go func(ap uint32, feed int) {
				defer wg.Done()
				for c := feed; c < clients; c += 4 {
					rng := rand.New(rand.NewSource(int64(c)*10 + int64(ap)))
					backend.Ingest(&server.Capture{
						APID:      ap,
						ClientID:  uint32(c + 1),
						Timestamp: now,
						Streams:   mkStreams(rng),
					})
				}
			}(ap, feed)
		}
	}
	wg.Wait()

	seen := make(map[uint32]bool)
	for i := 0; i < clients; i++ {
		select {
		case r := <-results:
			if r.Err != nil {
				t.Fatalf("client %d: %v", r.ClientID, r.Err)
			}
			if seen[r.ClientID] {
				t.Fatalf("client %d localized twice", r.ClientID)
			}
			seen[r.ClientID] = true
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out with %d/%d fixes", i, clients)
		}
	}
	if backend.PendingClients() != 0 {
		t.Fatalf("%d clients left pending after full quorum", backend.PendingClients())
	}
}

func TestCaptureSinkUnknownAPs(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1, Config: core.Config{}})
	defer eng.Close()
	results := make(chan engine.Result, 1)
	sink := &engine.CaptureSink{
		Engine:   eng,
		Resolve:  func(uint32) *core.AP { return nil },
		OnResult: func(r engine.Result) { results <- r },
	}
	sink.Dispatch(7, []server.Capture{{APID: 1, ClientID: 7}})
	r := <-results
	if r.Err != engine.ErrNoKnownAP || r.ClientID != 7 {
		t.Fatalf("got %+v, want engine.ErrNoKnownAP for client 7", r)
	}
}

func TestCaptureSinkGroupsFramesPerAP(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	eng := engine.New(engine.Options{Workers: 1, Config: cfg})
	defer eng.Close()
	results := make(chan engine.Result, 1)
	sink := &engine.CaptureSink{
		Engine:   eng,
		Resolve:  func(apID uint32) *core.AP { return aps[apID-1] },
		Min:      geom.Pt(0, 0),
		Max:      geom.Pt(6, 4),
		OnResult: func(r engine.Result) { results <- r },
	}
	rng := rand.New(rand.NewSource(5))
	// Two frames from AP 1 interleaved with one from AP 2.
	sink.Dispatch(3, []server.Capture{
		{APID: 1, ClientID: 3, Streams: mkStreams(rng)},
		{APID: 2, ClientID: 3, Streams: mkStreams(rng)},
		{APID: 1, ClientID: 3, Streams: mkStreams(rng)},
	})
	r := <-results
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(r.Spectra) != 2 {
		t.Fatalf("got %d AP spectra, want 2", len(r.Spectra))
	}
	// First-seen order: AP 1's array position first.
	if r.Spectra[0].Pos != aps[0].Array.Pos || r.Spectra[1].Pos != aps[1].Array.Pos {
		t.Fatal("per-AP grouping lost first-seen order")
	}
}
