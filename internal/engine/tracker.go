package engine

// Tracker is the temporal layer over the engine: the paper's headline
// is *tracking* roaming clients in real time, not one-shot fixes. The
// engine produces a fix per quorum flush; the Tracker folds each fix
// into a per-client constant-velocity Kalman filter (internal/track),
// keeps that state across captures, evicts clients that go quiet, and
// streams smoothed track updates to subscribers alongside the raw
// fixes.

import (
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/track"
)

// TrackerOptions configures a Tracker. The zero value picks walking-
// scale defaults.
type TrackerOptions struct {
	// ProcessNoise is the Kalman acceleration spectral density in
	// m²/s³ (0 means 1.0, which suits walking).
	ProcessNoise float64
	// MeasSigma is the expected per-axis fix error in metres (0 means
	// 0.5, ArrayTrack-with-several-APs scale).
	MeasSigma float64
	// Gate is the Mahalanobis outlier gate in standard deviations
	// (0 means 4; negative disables gating).
	Gate float64
	// TTL evicts a client whose last fix is older than this (0 means
	// 30 s; negative disables eviction).
	TTL time.Duration
	// Now overrides the clock, for tests and simulations. nil means
	// time.Now.
	Now func() time.Time
}

func (o TrackerOptions) withDefaults() TrackerOptions {
	if o.ProcessNoise == 0 {
		o.ProcessNoise = 1.0
	}
	if o.MeasSigma == 0 {
		o.MeasSigma = 0.5
	}
	if o.Gate == 0 {
		o.Gate = 4
	} else if o.Gate < 0 {
		o.Gate = 0
	}
	if o.TTL == 0 {
		o.TTL = 30 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// TrackUpdate is one smoothed track point, emitted for every fix the
// tracker observes.
type TrackUpdate struct {
	ClientID uint32
	// Time is the fix timestamp the update was computed at.
	Time time.Time
	// Raw is the unsmoothed position fix from the localization
	// pipeline.
	Raw geom.Point
	// Smoothed is the Kalman state after folding the fix in. When the
	// gate rejected the fix, Smoothed is the predicted position.
	Smoothed geom.Point
	// Vel is the velocity estimate.
	Vel geom.Vec
	// Accepted reports whether the fix passed the outlier gate.
	Accepted bool
}

// TrackerStats is a snapshot of tracker counters.
type TrackerStats struct {
	// Clients is the number of live (non-evicted) tracks.
	Clients int
	// Observed is the cumulative number of fixes folded in.
	Observed uint64
	// GateRejects is the cumulative number of fixes the Mahalanobis
	// gate discarded.
	GateRejects uint64
	// Evicted is the cumulative number of stale clients removed.
	Evicted uint64
}

type clientTrack struct {
	mu     sync.Mutex
	filter *track.Filter
	last   time.Time
}

// Tracker keeps per-client Kalman state across captures. All methods
// are safe for concurrent use; distinct clients do not contend beyond
// a short map lookup.
type Tracker struct {
	opt TrackerOptions

	mu        sync.Mutex
	clients   map[uint32]*clientTrack
	lastSweep time.Time
	subs      map[int]chan TrackUpdate
	nextSub   int

	observed    uint64
	gateRejects uint64
	evicted     uint64
}

// NewTracker returns a tracker with the given options.
func NewTracker(opt TrackerOptions) *Tracker {
	return &Tracker{
		opt:     opt.withDefaults(),
		clients: make(map[uint32]*clientTrack),
		subs:    make(map[int]chan TrackUpdate),
	}
}

// Observe folds one raw fix for a client into its track and returns
// the resulting update. A zero timestamp uses the tracker's clock. The
// first fix for a client initializes its filter at the fix; fixes
// older than the track's last timestamp are treated as simultaneous
// (dt = 0) rather than rejected, since capture grouping can reorder
// flushes slightly. A client returning after more than TTL of silence
// gets a fresh track: extrapolating a constant-velocity state across a
// long gap would predict a position (and gate) with no relation to
// where the client reappears.
func (t *Tracker) Observe(clientID uint32, fix geom.Point, at time.Time) TrackUpdate {
	if at.IsZero() {
		at = t.opt.Now()
	}

	t.mu.Lock()
	ct, ok := t.clients[clientID]
	if ok && t.opt.TTL > 0 {
		ct.mu.Lock()
		stale := !ct.last.IsZero() && at.Sub(ct.last) > t.opt.TTL
		ct.mu.Unlock()
		if stale {
			t.evicted++
			ok = false
		}
	}
	if !ok {
		ct = &clientTrack{filter: track.NewFilter(t.opt.ProcessNoise, t.opt.MeasSigma, t.opt.Gate)}
		t.clients[clientID] = ct
	}
	t.maybeSweepLocked(at)
	// Take the per-client lock before releasing the map lock (the
	// sweep acquires them in the same order): otherwise a concurrent
	// Observe's sweep could judge this entry stale and evict it while
	// the fix is being folded in.
	ct.mu.Lock()
	t.mu.Unlock()

	dt := 0.0
	if !ct.last.IsZero() {
		if d := at.Sub(ct.last).Seconds(); d > 0 {
			dt = d
		}
	}
	accepted, err := ct.filter.Update(fix, dt)
	if err != nil {
		// Degenerate covariance: restart the track at the fix.
		ct.filter = track.NewFilter(t.opt.ProcessNoise, t.opt.MeasSigma, t.opt.Gate)
		accepted, _ = ct.filter.Update(fix, 0)
	}
	if at.After(ct.last) {
		ct.last = at
	}
	pos, vel := ct.filter.State()
	ct.mu.Unlock()

	t.mu.Lock()
	t.observed++
	if !accepted {
		t.gateRejects++
	}
	upd := TrackUpdate{
		ClientID: clientID,
		Time:     at,
		Raw:      fix,
		Smoothed: pos,
		Vel:      vel,
		Accepted: accepted,
	}
	for _, ch := range t.subs {
		select {
		case ch <- upd:
		default:
			// A slow subscriber drops updates rather than stalling the
			// engine's workers.
		}
	}
	t.mu.Unlock()
	return upd
}

// maybeSweepLocked evicts stale clients at most once per TTL/4. Caller
// holds t.mu.
func (t *Tracker) maybeSweepLocked(now time.Time) {
	if t.opt.TTL <= 0 {
		return
	}
	if !t.lastSweep.IsZero() && now.Sub(t.lastSweep) < t.opt.TTL/4 {
		return
	}
	t.lastSweep = now
	for id, ct := range t.clients {
		ct.mu.Lock()
		stale := !ct.last.IsZero() && now.Sub(ct.last) > t.opt.TTL
		ct.mu.Unlock()
		if stale {
			delete(t.clients, id)
			t.evicted++
		}
	}
}

// Predict returns the client's track prediction at time at (zero =
// the tracker's clock): the expected position and the innovation
// covariance the next fix will be gated against, extrapolated from
// the last accepted update without mutating the track. It reports
// false when the client has no track, the track is stale (older than
// TTL — Observe would restart it, so its prediction is meaningless),
// or the track has fewer than minFixes accepted fixes (velocity not
// yet observable). This is the covariance→region export the engine's
// predictive localization path consumes.
func (t *Tracker) Predict(clientID uint32, at time.Time, minFixes int) (track.Prediction, bool) {
	if at.IsZero() {
		at = t.opt.Now()
	}
	t.mu.Lock()
	ct, ok := t.clients[clientID]
	t.mu.Unlock()
	if !ok {
		return track.Prediction{}, false
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if t.opt.TTL > 0 && !ct.last.IsZero() && at.Sub(ct.last) > t.opt.TTL {
		return track.Prediction{}, false
	}
	if ct.filter.Accepted() < minFixes {
		return track.Prediction{}, false
	}
	dt := 0.0
	if !ct.last.IsZero() {
		if d := at.Sub(ct.last).Seconds(); d > 0 {
			dt = d
		}
	}
	return ct.filter.PredictState(dt)
}

// Snapshot returns a client's current smoothed state, if it is being
// tracked.
func (t *Tracker) Snapshot(clientID uint32) (TrackUpdate, bool) {
	t.mu.Lock()
	ct, ok := t.clients[clientID]
	t.mu.Unlock()
	if !ok {
		return TrackUpdate{}, false
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	pos, vel := ct.filter.State()
	return TrackUpdate{
		ClientID: clientID,
		Time:     ct.last,
		Smoothed: pos,
		Vel:      vel,
		Accepted: true,
	}, true
}

// Subscribe registers a buffered stream of track updates. Updates are
// dropped (never blocking) when the buffer is full. The returned
// cancel function unregisters and closes the channel; it is safe to
// call more than once.
func (t *Tracker) Subscribe(buf int) (<-chan TrackUpdate, func()) {
	if buf < 1 {
		buf = 16
	}
	ch := make(chan TrackUpdate, buf)
	t.mu.Lock()
	id := t.nextSub
	t.nextSub++
	t.subs[id] = ch
	t.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			t.mu.Lock()
			delete(t.subs, id)
			t.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// Stats returns a snapshot of the tracker's counters.
func (t *Tracker) Stats() TrackerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TrackerStats{
		Clients:     len(t.clients),
		Observed:    t.observed,
		GateRejects: t.gateRejects,
		Evicted:     t.evicted,
	}
}
