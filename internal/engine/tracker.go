package engine

// Tracker is the temporal layer over the engine: the paper's headline
// is *tracking* roaming clients in real time, not one-shot fixes. The
// engine produces a fix per quorum flush; the Tracker folds each fix
// into a per-client constant-velocity Kalman filter (internal/track),
// keeps that state across captures, evicts clients that go quiet, and
// streams smoothed track updates to subscribers alongside the raw
// fixes.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/track"
)

// TrackerOptions configures a Tracker. The zero value picks walking-
// scale defaults.
type TrackerOptions struct {
	// ProcessNoise is the Kalman acceleration spectral density in
	// m²/s³ (0 means 1.0, which suits walking).
	ProcessNoise float64
	// MeasSigma is the expected per-axis fix error in metres (0 means
	// 0.5, ArrayTrack-with-several-APs scale).
	MeasSigma float64
	// Gate is the Mahalanobis outlier gate in standard deviations
	// (0 means 4; negative disables gating).
	Gate float64
	// TTL evicts a client whose last fix is older than this (0 means
	// 30 s; negative disables eviction).
	TTL time.Duration
	// MaxClockSkew is the clock-skew guard: a fix stamped more than
	// this far in the tracker's future is treated as stamped "now"
	// (counted in SkewClamped) instead of letting one AP with a broken
	// clock fast-forward the Kalman dt and poison the velocity
	// estimate. 0 means 10 s; negative disables the guard.
	MaxClockSkew time.Duration
	// DegradedGateScale widens the Mahalanobis gate for fixes flagged
	// Degraded (localized from fewer APs, so noisier): the gate radius
	// is multiplied by this for that one update. 0 means 1.5; values
	// below 1 are treated as 1 (never narrow the gate).
	DegradedGateScale float64
	// Now overrides the clock, for tests and simulations. nil means
	// time.Now.
	Now func() time.Time
}

func (o TrackerOptions) withDefaults() TrackerOptions {
	if o.ProcessNoise == 0 {
		o.ProcessNoise = 1.0
	}
	if o.MeasSigma == 0 {
		o.MeasSigma = 0.5
	}
	if o.Gate == 0 {
		o.Gate = 4
	} else if o.Gate < 0 {
		o.Gate = 0
	}
	if o.TTL == 0 {
		o.TTL = 30 * time.Second
	}
	if o.MaxClockSkew == 0 {
		o.MaxClockSkew = 10 * time.Second
	} else if o.MaxClockSkew < 0 {
		o.MaxClockSkew = 0
	}
	if o.DegradedGateScale < 1 {
		if o.DegradedGateScale == 0 {
			o.DegradedGateScale = 1.5
		} else {
			o.DegradedGateScale = 1
		}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// TrackUpdate is one smoothed track point, emitted for every fix the
// tracker observes.
type TrackUpdate struct {
	ClientID uint32
	// Time is the fix timestamp the update was computed at.
	Time time.Time
	// Raw is the unsmoothed position fix from the localization
	// pipeline.
	Raw geom.Point
	// Smoothed is the Kalman state after folding the fix in. When the
	// gate rejected the fix, Smoothed is the predicted position.
	Smoothed geom.Point
	// Vel is the velocity estimate.
	Vel geom.Vec
	// Accepted reports whether the fix passed the outlier gate.
	Accepted bool
	// Degraded marks an update produced from a degraded-quorum fix
	// (fewer APs than the full quorum; see server.Capture.Degraded).
	Degraded bool
}

// TrackerStats is a snapshot of tracker counters.
type TrackerStats struct {
	// Clients is the number of live (non-evicted) tracks.
	Clients int
	// Observed is the cumulative number of fixes folded in.
	Observed uint64
	// GateRejects is the cumulative number of fixes the Mahalanobis
	// gate discarded.
	GateRejects uint64
	// Evicted is the cumulative number of stale clients removed.
	Evicted uint64
	// SkewClamped is the cumulative number of fixes whose timestamp sat
	// beyond MaxClockSkew in the future and was clamped to the
	// tracker's clock.
	SkewClamped uint64
	// NonMonotonic is the cumulative number of fixes that arrived with
	// a timestamp behind their track's last fix (folded in with dt = 0,
	// never rejected — capture grouping can legitimately reorder
	// flushes slightly, but a persistent count flags a skewed AP
	// clock).
	NonMonotonic uint64
	// DegradedObserved is the cumulative number of degraded-quorum
	// fixes folded in.
	DegradedObserved uint64
}

type clientTrack struct {
	mu     sync.Mutex
	filter *track.Filter
	last   time.Time
	// lastAccepted records whether the most recent Observe passed the
	// outlier gate, so introspection reports the track's real state
	// instead of assuming acceptance.
	lastAccepted bool
}

// Tracker keeps per-client Kalman state across captures. All methods
// are safe for concurrent use; distinct clients do not contend beyond
// a short map lookup.
type Tracker struct {
	opt TrackerOptions
	// ttl is the live eviction TTL in nanoseconds (≤0 disables). It
	// starts at opt.TTL and is the one tracker knob that hot-reloads
	// (SetTTL), so every reader loads it atomically.
	ttl atomic.Int64

	mu        sync.Mutex
	clients   map[uint32]*clientTrack
	lastSweep time.Time
	subs      map[int]chan TrackUpdate
	nextSub   int

	observed     uint64
	gateRejects  uint64
	evicted      uint64
	skewClamped  uint64
	nonMonotonic uint64
	degradedObs  uint64
}

// NewTracker returns a tracker with the given options.
func NewTracker(opt TrackerOptions) *Tracker {
	t := &Tracker{
		opt:     opt.withDefaults(),
		clients: make(map[uint32]*clientTrack),
		subs:    make(map[int]chan TrackUpdate),
	}
	t.ttl.Store(int64(t.opt.TTL))
	return t
}

// TTL returns the live eviction TTL (≤0 means eviction is disabled).
func (t *Tracker) TTL() time.Duration { return time.Duration(t.ttl.Load()) }

// SetTTL hot-reloads the eviction TTL: positive enables eviction after
// d of silence, zero or negative disables it. Takes effect on the next
// Observe/Predict/Snapshot; already-evicted tracks do not come back.
func (t *Tracker) SetTTL(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.ttl.Store(int64(d))
}

// Observe folds one raw fix for a client into its track and returns
// the resulting update. A zero timestamp uses the tracker's clock. The
// first fix for a client initializes its filter at the fix; fixes
// older than the track's last timestamp are treated as simultaneous
// (dt = 0) rather than rejected, since capture grouping can reorder
// flushes slightly. A client returning after more than TTL of silence
// gets a fresh track: extrapolating a constant-velocity state across a
// long gap would predict a position (and gate) with no relation to
// where the client reappears.
func (t *Tracker) Observe(clientID uint32, fix geom.Point, at time.Time) TrackUpdate {
	return t.ObserveFix(clientID, fix, at, false)
}

// ObserveFix is Observe with the fix's degraded-quorum flag: a
// degraded fix (localized from fewer APs, so noisier) is folded in
// through a Mahalanobis gate widened by DegradedGateScale, so a
// genuine-but-noisier fix keeps updating the track while the regular
// gate still rejects wild outliers. The clock-skew guard applies
// either way: timestamps beyond MaxClockSkew in the tracker's future
// are clamped to now (a broken AP clock must not fast-forward the
// Kalman dt), and fixes behind the track's last timestamp are folded
// in at dt = 0 and counted (NonMonotonic).
func (t *Tracker) ObserveFix(clientID uint32, fix geom.Point, at time.Time, degraded bool) TrackUpdate {
	skewed := false
	if at.IsZero() {
		at = t.opt.Now()
	} else if skew := t.opt.MaxClockSkew; skew > 0 {
		if now := t.opt.Now(); at.Sub(now) > skew {
			at = now
			skewed = true
		}
	}

	ttl := t.TTL()
	t.mu.Lock()
	ct, ok := t.clients[clientID]
	if ok && ttl > 0 {
		ct.mu.Lock()
		stale := !ct.last.IsZero() && at.Sub(ct.last) > ttl
		ct.mu.Unlock()
		if stale {
			t.evicted++
			ok = false
		}
	}
	if !ok {
		ct = &clientTrack{filter: track.NewFilter(t.opt.ProcessNoise, t.opt.MeasSigma, t.opt.Gate)}
		t.clients[clientID] = ct
	}
	t.maybeSweepLocked(at)
	// Take the per-client lock before releasing the map lock (the
	// sweep acquires them in the same order): otherwise a concurrent
	// Observe's sweep could judge this entry stale and evict it while
	// the fix is being folded in.
	ct.mu.Lock()
	t.mu.Unlock()

	dt := 0.0
	backwards := false
	if !ct.last.IsZero() {
		switch d := at.Sub(ct.last).Seconds(); {
		case d > 0:
			dt = d
		case d < 0:
			backwards = true
		}
	}
	gateScale := 1.0
	if degraded {
		gateScale = t.opt.DegradedGateScale
	}
	accepted, err := ct.filter.UpdateScaled(fix, dt, gateScale)
	if err != nil {
		// Degenerate covariance: restart the track at the fix.
		ct.filter = track.NewFilter(t.opt.ProcessNoise, t.opt.MeasSigma, t.opt.Gate)
		accepted, _ = ct.filter.UpdateScaled(fix, 0, gateScale)
	}
	if at.After(ct.last) {
		ct.last = at
	}
	ct.lastAccepted = accepted
	pos, vel := ct.filter.State()
	ct.mu.Unlock()

	t.mu.Lock()
	t.observed++
	if !accepted {
		t.gateRejects++
	}
	if skewed {
		t.skewClamped++
	}
	if backwards {
		t.nonMonotonic++
	}
	if degraded {
		t.degradedObs++
	}
	upd := TrackUpdate{
		ClientID: clientID,
		Time:     at,
		Raw:      fix,
		Smoothed: pos,
		Vel:      vel,
		Accepted: accepted,
		Degraded: degraded,
	}
	for _, ch := range t.subs {
		select {
		case ch <- upd:
		default:
			// A slow subscriber drops updates rather than stalling the
			// engine's workers.
		}
	}
	t.mu.Unlock()
	return upd
}

// maybeSweepLocked evicts stale clients at most once per TTL/4. Caller
// holds t.mu.
func (t *Tracker) maybeSweepLocked(now time.Time) {
	ttl := t.TTL()
	if ttl <= 0 {
		return
	}
	if !t.lastSweep.IsZero() && now.Sub(t.lastSweep) < ttl/4 {
		return
	}
	t.lastSweep = now
	for id, ct := range t.clients {
		ct.mu.Lock()
		stale := !ct.last.IsZero() && now.Sub(ct.last) > ttl
		ct.mu.Unlock()
		if stale {
			delete(t.clients, id)
			t.evicted++
		}
	}
}

// Predict returns the client's track prediction at time at (zero =
// the tracker's clock): the expected position and the innovation
// covariance the next fix will be gated against, extrapolated from
// the last accepted update without mutating the track. It reports
// false when the client has no track, the track is stale (older than
// TTL — Observe would restart it, so its prediction is meaningless),
// or the track has fewer than minFixes accepted fixes (velocity not
// yet observable). This is the covariance→region export the engine's
// predictive localization path consumes.
func (t *Tracker) Predict(clientID uint32, at time.Time, minFixes int) (track.Prediction, bool) {
	if at.IsZero() {
		at = t.opt.Now()
	}
	t.mu.Lock()
	ct, ok := t.clients[clientID]
	t.mu.Unlock()
	if !ok {
		return track.Prediction{}, false
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ttl := t.TTL(); ttl > 0 && !ct.last.IsZero() && at.Sub(ct.last) > ttl {
		return track.Prediction{}, false
	}
	if ct.filter.Accepted() < minFixes {
		return track.Prediction{}, false
	}
	dt := 0.0
	if !ct.last.IsZero() {
		if d := at.Sub(ct.last).Seconds(); d > 0 {
			dt = d
		}
	}
	return ct.filter.PredictState(dt)
}

// Snapshot returns a client's current smoothed state, if it is being
// tracked. It applies the same TTL staleness rule as Predict — a track
// Observe would restart rather than continue reports false — and
// Accepted reflects whether the client's most recent fix actually
// passed the outlier gate, not an assumption.
func (t *Tracker) Snapshot(clientID uint32) (TrackUpdate, bool) {
	now := t.opt.Now()
	t.mu.Lock()
	ct, ok := t.clients[clientID]
	t.mu.Unlock()
	if !ok {
		return TrackUpdate{}, false
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ttl := t.TTL(); ttl > 0 && !ct.last.IsZero() && now.Sub(ct.last) > ttl {
		return TrackUpdate{}, false
	}
	pos, vel := ct.filter.State()
	return TrackUpdate{
		ClientID: clientID,
		Time:     ct.last,
		Smoothed: pos,
		Vel:      vel,
		Accepted: ct.lastAccepted,
	}, true
}

// ClientSnapshot is one client's complete serialized track state: the
// Kalman filter (position, velocity, covariance, accept counters) plus
// the timestamps the tracker's TTL and dt arithmetic depend on. It is
// the unit Tracker.SnapshotAll emits and Restore consumes, and
// round-trips exactly through encoding/json.
type ClientSnapshot struct {
	ClientID uint32 `json:"client_id"`
	// Filter is the client's Kalman state, restored bit-identically.
	Filter track.FilterState `json:"filter"`
	// LastUnixNano is the track's last fix timestamp (UnixNano; 0 for
	// a never-stamped track).
	LastUnixNano int64 `json:"last_unix_nano"`
	// LastAccepted mirrors whether the most recent fix passed the gate.
	LastAccepted bool `json:"last_accepted"`
}

// SnapshotAll captures every live client track, sorted by client ID so
// the output is deterministic for a given tracker state. Tracks past
// TTL are skipped — Observe would restart them, so carrying them across
// a restart would only resurrect state the live tracker had already
// declared dead. This is the drain-side half of the restart (and shard
// migration) primitive; Restore is the other half.
func (t *Tracker) SnapshotAll() []ClientSnapshot {
	now := t.opt.Now()
	t.mu.Lock()
	tracks := make(map[uint32]*clientTrack, len(t.clients))
	for id, ct := range t.clients {
		tracks[id] = ct
	}
	t.mu.Unlock()

	ttl := t.TTL()
	out := make([]ClientSnapshot, 0, len(tracks))
	for id, ct := range tracks {
		ct.mu.Lock()
		stale := ttl > 0 && !ct.last.IsZero() && now.Sub(ct.last) > ttl
		if !stale {
			var lastNano int64
			if !ct.last.IsZero() {
				lastNano = ct.last.UnixNano()
			}
			out = append(out, ClientSnapshot{
				ClientID:     id,
				Filter:       ct.filter.Snapshot(),
				LastUnixNano: lastNano,
				LastAccepted: ct.lastAccepted,
			})
		}
		ct.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ClientID < out[j].ClientID })
	return out
}

// Restore installs snapshotted tracks, overwriting any existing state
// for the same client IDs. Each filter resumes bit-identically — a
// Predict or Observe after Restore computes exactly what the
// snapshotted tracker would have. Snapshots with invalid filter state
// are skipped rather than poisoning the map; the count of installed
// tracks is returned. Meant for startup (-restore) and shard handoff;
// restoring into a serving tracker is safe but replaces the affected
// clients' live state.
func (t *Tracker) Restore(snaps []ClientSnapshot) int {
	n := 0
	for _, s := range snaps {
		f, err := track.NewFilterFromState(s.Filter)
		if err != nil {
			continue
		}
		ct := &clientTrack{filter: f, lastAccepted: s.LastAccepted}
		if s.LastUnixNano != 0 {
			ct.last = time.Unix(0, s.LastUnixNano)
		}
		t.mu.Lock()
		t.clients[s.ClientID] = ct
		t.mu.Unlock()
		n++
	}
	return n
}

// SnapshotClients is SnapshotAll restricted to the given client IDs —
// the shard-handoff export: the losing shard snapshots exactly the
// clients moving to another shard. IDs without a live (non-stale)
// track are silently absent from the result.
func (t *Tracker) SnapshotClients(ids []uint32) []ClientSnapshot {
	if len(ids) == 0 {
		return nil
	}
	want := make(map[uint32]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	all := t.SnapshotAll()
	out := all[:0]
	for _, s := range all {
		if want[s.ClientID] {
			out = append(out, s)
		}
	}
	return out
}

// Remove drops the given clients' tracks, returning how many existed.
// The shard-handoff release: once the gaining shard has restored a
// moving client, the losing shard forgets it so a later shard-map
// change cannot resurrect a stale duplicate.
func (t *Tracker) Remove(ids []uint32) int {
	n := 0
	t.mu.Lock()
	for _, id := range ids {
		if _, ok := t.clients[id]; ok {
			delete(t.clients, id)
			n++
		}
	}
	t.mu.Unlock()
	return n
}

// Clients returns the IDs of all live tracks, sorted (the introspection
// endpoint's index).
func (t *Tracker) Clients() []uint32 {
	t.mu.Lock()
	ids := make([]uint32, 0, len(t.clients))
	for id := range t.clients {
		ids = append(ids, id)
	}
	t.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Subscribe registers a buffered stream of track updates. Updates are
// dropped (never blocking) when the buffer is full. The returned
// cancel function unregisters and closes the channel; it is safe to
// call more than once.
func (t *Tracker) Subscribe(buf int) (<-chan TrackUpdate, func()) {
	if buf < 1 {
		buf = 16
	}
	ch := make(chan TrackUpdate, buf)
	t.mu.Lock()
	id := t.nextSub
	t.nextSub++
	t.subs[id] = ch
	t.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			t.mu.Lock()
			delete(t.subs, id)
			t.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// Stats returns a snapshot of the tracker's counters.
func (t *Tracker) Stats() TrackerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TrackerStats{
		Clients:          len(t.clients),
		Observed:         t.observed,
		GateRejects:      t.gateRejects,
		Evicted:          t.evicted,
		SkewClamped:      t.skewClamped,
		NonMonotonic:     t.nonMonotonic,
		DegradedObserved: t.degradedObs,
	}
}
