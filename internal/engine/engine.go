// Package engine is the concurrent localization engine: a bounded
// worker pool that ingests per-client capture groups from many APs and
// emits location fixes. The seed processed one client at a time,
// serially; the engine is what lets the backend sustain ArrayTrack's
// system-level claim — fixes for many roaming clients at once — by
// parallelizing across clients while the steering-vector cache
// (music.SteeringCache) removes the per-spectrum recomputation the
// serial path paid for every frame.
//
// Scheduling is delegated to the sched subsystem (per-client quotas,
// queue ageing, cooperative yield-steal preemption), and the
// steady-state serving path is predictive: when a client has a live
// Kalman track, the engine derives a search region from the
// prediction's gate covariance, localizes inside it, and verifies the
// result — falling back to the full grid whenever the verification
// fails, so accuracy is never worse than full-grid serving.
package engine

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine/sched"
	"repro/internal/geom"
	"repro/internal/track"
)

// ErrClosed is returned by Submit-family calls after Close.
var ErrClosed = errors.New("engine: closed")

// ErrOverloaded fails a batch job the engine shed instead of running:
// the job sat queued longer than Options.ShedAfter, so its captures
// describe where the client *was* — localizing them now would burn a
// worker on a stale answer while fresher jobs queue up behind. The
// done callback still runs (with this error), so submitters always
// hear back.
var ErrOverloaded = errors.New("engine: overloaded, job shed")

// ErrQuota is returned by Submit when the client already holds its
// full scheduler quota of admitted-but-uncompleted jobs (see
// Options.ClientQuota). The submission was refused, not queued.
var ErrQuota = sched.ErrQuota

// DefaultPredictSigma is the gate-covariance inflation used when
// predictive localization is enabled without an explicit sigma: the
// search box covers the sigma-σ innovation ellipse of the client's
// track. It is clamped up to the tracker's Mahalanobis gate so the
// box always contains every fix the tracker could accept.
const DefaultPredictSigma = 4.0

// DefaultPredictMinFixes is how many gate-accepted fixes a track
// needs before the engine trusts its prediction enough to shrink the
// search area: one fix pins position but not velocity, so the first
// couple of predictions would be wild.
const DefaultPredictMinFixes = 3

// Request is one localization job: every capture the backend grouped
// for one client, organized per AP (Captures[i] holds AP i's frames;
// APs with no frames are skipped, as in core.LocateClient).
type Request struct {
	ClientID uint32
	APs      []*core.AP
	Captures [][]core.FrameCapture
	// Min, Max bound the synthesis search area.
	Min, Max geom.Point
	// Region, when non-zero, restricts synthesis to an ad-hoc
	// bounding box (clamped to [Min, Max]) at an optional per-request
	// resolution. Malformed regions fail the job with a wrapped
	// core.ErrBadRegion. An explicit region disables the predictive
	// path for this job.
	Region core.Region
	// Priority routes the job through the engine's latency lane:
	// workers prefer it over queued batch traffic (up to the
	// scheduler's ageing bound), batch jobs mid-surface yield to it,
	// and its synthesis surface is sharded across the config's
	// SynthWorkers instead of being clamped to one goroutine. Meant
	// for single interactive fixes (typically region queries), not
	// bulk submission.
	Priority bool
	// Time is the capture timestamp, used by the tracker to advance
	// the client's Kalman state. Zero means the tracker's clock.
	Time time.Time
	// Degraded marks a job built from a degraded-quorum capture group
	// (see server.Capture.Degraded): the fix is flagged end-to-end and
	// the tracker widens its outlier gate for it.
	Degraded bool
}

// Result is one location fix (or failure) for a client.
type Result struct {
	ClientID uint32
	Pos      geom.Point
	Spectra  []core.APSpectrum
	Err      error
	// Predicted reports that the fix was served from the track-guided
	// predictive region (verified interior + gate-accepted), not a
	// full-grid search.
	Predicted bool
	// Track is the smoothed track update for this fix when the engine
	// has a Tracker; nil otherwise (and on failures).
	Track *TrackUpdate
	// Degraded mirrors the request's degraded-quorum flag so consumers
	// of the fix stream can tell full-quorum fixes from best-effort
	// ones.
	Degraded bool
}

// Options configures an Engine.
type Options struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// Queue is the batch lane depth; 0 means 4×Workers. Submit blocks
	// once the lane is full, providing natural backpressure.
	Queue int
	// PriorityQueue is the latency lane's depth; 0 means Workers.
	// Kept intentionally shallow: the lane exists for single
	// interactive fixes, and a deep priority queue would just starve
	// batch traffic.
	PriorityQueue int
	// ClientQuota is the scheduler's per-client token budget across
	// both lanes: a client may hold at most this many jobs admitted
	// but not yet completed; excess submissions fail fast with
	// ErrQuota. 0 means unlimited (closed deployments).
	ClientQuota int
	// AgeLimit bounds how long a batch job waits behind the latency
	// lane before the scheduler serves it anyway. 0 means
	// sched.DefaultAgeLimit; negative disables ageing.
	AgeLimit time.Duration
	// Config is the pipeline configuration applied to every job. For
	// batch jobs the engine clamps Config.APWorkers and
	// Config.SynthWorkers to 1: the pool already keeps every core
	// busy across clients, so per-AP or per-shard fan-out inside a
	// worker would only oversubscribe the machine. Priority jobs keep
	// the configured SynthWorkers — a single interactive fix shards
	// its surface across cores the batch lane is not saturating.
	// Synthesis reuses the cached bearing LUTs and the coarse-to-fine
	// screen either way. Config.SynthYield is owned by the engine
	// (batch jobs yield to the scheduler); any caller value is
	// overwritten.
	Config core.Config
	// Tracker, when non-nil, folds every successful fix into the
	// client's Kalman track; results carry the smoothed update and
	// subscribers stream them (Tracker.Subscribe).
	Tracker *Tracker
	// Predict enables track-guided predictive localization (requires
	// a Tracker): jobs without an explicit region localize inside the
	// track prediction's PredictSigma-σ gate box and fall back to the
	// full grid unless the result verifies (argmax strictly interior
	// to the region and Mahalanobis-accepted by the prediction).
	Predict bool
	// PredictSigma overrides the gate-covariance inflation (0 means
	// DefaultPredictSigma). Values below the tracker's gate are
	// raised to it, so the region always covers every fix the tracker
	// could accept.
	PredictSigma float64
	// PredictMinFixes overrides how many accepted fixes a track needs
	// before predictions are trusted (0 means DefaultPredictMinFixes).
	PredictMinFixes int
	// ShedAfter enables overload shedding when positive: a batch job
	// that waited in the queue longer than this is failed with
	// ErrOverloaded instead of localized — under sustained overload
	// the engine serves the freshest work at full speed rather than
	// everything at unbounded latency. Priority jobs are never shed.
	// 0 disables shedding. Hot-reloadable via SetShedAfter.
	ShedAfter time.Duration
	// NoPreempt disables the cooperative yield-steal: batch fixes run
	// their synthesis to completion and priority jobs wait for the
	// next free worker, as before the scheduler subsystem. Kept as an
	// operational escape hatch and for A/B latency measurement.
	NoPreempt bool
}

// Stats is a snapshot of engine counters.
type Stats struct {
	// Submitted is the number of jobs accepted into the queue.
	Submitted uint64
	// Completed is the number of jobs finished (fixes + failures).
	Completed uint64
	// Fixes is the number of successful localizations completed.
	Fixes uint64
	// Failures is the number of jobs that returned an error.
	Failures uint64
	// Rejected is the number of submissions refused (engine closed or
	// client quota exhausted).
	Rejected uint64
	// QuotaRejected is the subset of Rejected refused with ErrQuota.
	QuotaRejected uint64
	// Shed is the number of batch jobs failed with ErrOverloaded
	// because they aged past ShedAfter before a worker got to them
	// (included in Failures and Completed).
	Shed uint64
	// DegradedFixes is the number of successful fixes produced from
	// degraded-quorum capture groups (included in Fixes).
	DegradedFixes uint64
	// TrackedClients is the number of live client tracks (0 without a
	// tracker).
	TrackedClients int
	// TrackRejects is the cumulative number of fixes the tracker's
	// outlier gate discarded (0 without a tracker).
	TrackRejects uint64
	// Predicted counts fixes served from the track-guided predictive
	// region (verified); the PredictFallback* counters break down why
	// the remaining predictive attempts fell back to the full grid.
	Predicted uint64
	// PredictFallbackNoTrack counts jobs eligible for prediction
	// whose client had no live, mature track.
	PredictFallbackNoTrack uint64
	// PredictFallbackBorder counts predictive fixes rejected because
	// the region argmax sat on an open region border (the true peak
	// may lie outside).
	PredictFallbackBorder uint64
	// PredictFallbackGate counts predictive fixes rejected by the
	// prediction's Mahalanobis gate.
	PredictFallbackGate uint64
	// PredictFallbackError counts predictive attempts whose region
	// search errored (e.g. the predicted box left the search area).
	PredictFallbackError uint64
	// SynthLUTs is the number of distinct bearing LUTs the synthesis
	// cache holds — one per (AP position, grid geometry) pair seen (0
	// when the config runs the seed synthesis path).
	SynthLUTs int
	// SynthBytes and SynthBudget are the synthesis cache's accounted
	// size and configured byte cap (0 budget = unbounded); SynthHits,
	// SynthMisses, SynthEvictions and SynthSlices are its cumulative
	// lookup counters (slices = region LUTs derived from a cached
	// full-grid entry). All zero on the seed synthesis path.
	SynthBytes     int64
	SynthBudget    int64
	SynthHits      uint64
	SynthMisses    uint64
	SynthEvictions uint64
	SynthSlices    uint64
	// SynthSecondChoice counts LUT insertions placed at their
	// second-choice shard (power-of-two-choices placement);
	// SynthSpills counts oversized or unretainable entries served
	// pass-through without displacing residents; SynthDenseEvictions
	// counts evictions of dense-pitch-scale entries (>= 4 MiB), the
	// expensive-to-rebuild kind collision thrash used to churn.
	SynthSecondChoice   uint64
	SynthSpills         uint64
	SynthDenseEvictions uint64
	// SteeringTables, SteeringBytes and SteeringBudget mirror the
	// steering-vector cache's accounting; SteeringHits, SteeringMisses
	// and SteeringEvictions its cumulative counters. All zero when the
	// config computes steering vectors per bin (seed path).
	SteeringTables    int
	SteeringBytes     int64
	SteeringBudget    int64
	SteeringHits      uint64
	SteeringMisses    uint64
	SteeringEvictions uint64
	// PrioritySubmitted is the number of jobs accepted into the
	// latency lane (included in Submitted).
	PrioritySubmitted uint64
	// AgedBatch counts batch jobs the scheduler served ahead of
	// waiting priority traffic because they aged past the limit.
	AgedBatch uint64
	// PriorityStolen counts priority jobs run inline by a batch
	// worker at a synthesis yield point (preemption mid-surface).
	PriorityStolen uint64
	// Workers is the pool size.
	Workers int
	// Queued is the instantaneous batch queue depth.
	Queued int
	// PriorityQueued is the instantaneous latency-lane depth.
	PriorityQueued int
}

type job struct {
	req  Request
	done func(Result)
	// enq is the submission instant, stamped only while shedding is
	// enabled (the batch path pays no clock read otherwise).
	enq time.Time
}

// Engine runs localization jobs on a fixed worker pool scheduled by
// the sched subsystem: a deep batch lane and a shallow latency lane
// workers prefer (bounded by ageing), with per-client admission
// quotas and mid-surface preemption. All methods are safe for
// concurrent use.
type Engine struct {
	cfg       core.Config // batch lane: APWorkers/SynthWorkers clamped to 1, yields to the scheduler
	prioCfg   core.Config // latency lane: SynthWorkers kept for surface sharding, never yields
	tracker   *Tracker
	q         *sched.Queue
	predSigma atomic.Uint64 // Float64bits; 0 = predictive path disabled; hot-reloaded by SetPredictSigma
	predMin   int
	wg        sync.WaitGroup
	mu        sync.RWMutex
	closed    bool
	submitted atomic.Uint64
	prioSub   atomic.Uint64
	rejected  atomic.Uint64
	quotaRej  atomic.Uint64
	fixes     atomic.Uint64
	failures  atomic.Uint64
	workers   int

	predicted     atomic.Uint64
	predNoTrack   atomic.Uint64
	predBorder    atomic.Uint64
	predGate      atomic.Uint64
	predRegionErr atomic.Uint64

	shedAfter atomic.Int64 // nanoseconds; 0 = shedding off; hot-reloaded by SetShedAfter
	shed      atomic.Uint64
	degFixes  atomic.Uint64
}

// New starts an engine with opt.Workers workers. Close it when done.
func New(opt Options) *Engine {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := opt.Queue
	if queue <= 0 {
		queue = 4 * workers
	}
	prioQueue := opt.PriorityQueue
	if prioQueue <= 0 {
		prioQueue = workers
	}
	prioCfg := opt.Config
	if prioCfg.APWorkers > 1 {
		prioCfg.APWorkers = 1
	}
	prioCfg.SynthYield = nil // latency-lane jobs are the preemptors, never the preempted
	cfg := prioCfg
	if cfg.SynthWorkers > 1 {
		cfg.SynthWorkers = 1
	}
	e := &Engine{
		cfg:     cfg,
		prioCfg: prioCfg,
		tracker: opt.Tracker,
		q: sched.New(sched.Options{
			BatchDepth:    queue,
			PriorityDepth: prioQueue,
			ClientQuota:   opt.ClientQuota,
			AgeLimit:      opt.AgeLimit,
		}),
		workers: workers,
	}
	// predMin is fixed at construction (SetPredictSigma can enable the
	// predictive path later, so it must be valid even when Predict
	// starts off).
	e.predMin = opt.PredictMinFixes
	if e.predMin <= 0 {
		e.predMin = DefaultPredictMinFixes
	}
	if opt.Predict && opt.Tracker != nil {
		e.SetPredictSigma(opt.PredictSigma)
	}
	if opt.ShedAfter > 0 {
		e.shedAfter.Store(int64(opt.ShedAfter))
	}
	// Batch jobs yield between synthesis chunks: a waiting priority
	// job is stolen and run inline, preempting the batch surface by
	// microseconds instead of a whole in-flight fix.
	if !opt.NoPreempt {
		e.cfg.SynthYield = e.yieldSteal
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		it, ok := e.q.Pop()
		if !ok {
			return
		}
		e.execute(it)
	}
}

// execute runs one scheduled item to completion and releases its
// quota token.
func (e *Engine) execute(it sched.Item) {
	j := it.Payload.(job)
	// Overload shedding: a batch job that aged past ShedAfter in the
	// queue is failed, not localized — its captures are stale and
	// fresher work is waiting. Counted in Failures so the
	// Completed == Fixes + Failures invariant (and Drain accounting)
	// holds.
	if shed := e.shedAfter.Load(); shed > 0 && !j.req.Priority && !j.enq.IsZero() &&
		time.Since(j.enq) > time.Duration(shed) {
		e.shed.Add(1)
		e.failures.Add(1)
		e.q.Done(it.Client)
		j.done(Result{ClientID: j.req.ClientID, Err: ErrOverloaded, Degraded: j.req.Degraded})
		return
	}
	r := e.run(j.req)
	e.q.Done(it.Client)
	j.done(r)
}

// yieldSteal is the cooperative preemption point the batch config's
// SynthYield points at: if a priority job is waiting, run it inline
// on this worker, then resume the paused batch surface. Priority jobs
// never yield, so the steal cannot recurse.
func (e *Engine) yieldSteal() {
	if it, ok := e.q.TryPriority(); ok {
		e.execute(it)
	}
}

func (e *Engine) run(req Request) Result {
	cfg := e.cfg
	if req.Priority {
		cfg = e.prioCfg
	}
	p := core.NewPipeline(cfg)
	specs, err := p.ProcessAPs(req.APs, req.Captures)
	if err != nil {
		e.failures.Add(1)
		return Result{ClientID: req.ClientID, Err: err}
	}
	r := Result{ClientID: req.ClientID, Spectra: specs}

	// Predictive path: spectra are processed exactly once; only the
	// synthesis stage retries on fallback, so a fallback costs one
	// extra (full-grid) search, never a pipeline rerun.
	if pos, ok := e.predictiveFix(p, req, specs); ok {
		r.Pos, r.Predicted = pos, true
	} else {
		r.Pos, err = p.SynthesizeRegion(specs, req.Min, req.Max, req.Region)
		if err != nil {
			r.Spectra = nil
			r.Err = err
			e.failures.Add(1)
			return r
		}
	}
	e.fixes.Add(1)
	r.Degraded = req.Degraded
	if req.Degraded {
		e.degFixes.Add(1)
	}
	if e.tracker != nil {
		upd := e.tracker.ObserveFix(req.ClientID, r.Pos, req.Time, req.Degraded)
		r.Track = &upd
	}
	return r
}

// predictiveFix attempts the track-guided region localization for a
// job with no explicit region: derive a search region from the
// client's Kalman prediction (gate covariance inflated to the
// configured sigma, padded by two grid cells so the verification ring
// exists), localize inside it, and verify — the region argmax must be
// strictly interior on every open side and the position must pass the
// prediction's Mahalanobis gate. Any other outcome falls back to the
// full grid, so a served fix is either verified-predictive or exactly
// what full-grid serving would produce.
func (e *Engine) predictiveFix(p *core.Pipeline, req Request, specs []core.APSpectrum) (geom.Point, bool) {
	sigma := e.PredictSigma()
	if sigma <= 0 || e.tracker == nil || !req.Region.IsZero() {
		return geom.Point{}, false
	}
	pred, ok := e.tracker.Predict(req.ClientID, req.Time, e.predMin)
	if !ok {
		e.predNoTrack.Add(1)
		return geom.Point{}, false
	}
	region := PredictRegion(pred, sigma, e.cfg.GridCell)
	pos, interior, err := p.SynthesizeRegionInterior(specs, req.Min, req.Max, region)
	switch {
	case err != nil:
		// E.g. the predicted box fell outside the search area after a
		// long coast; the full grid still serves the client.
		e.predRegionErr.Add(1)
	case !interior:
		e.predBorder.Add(1)
	case !pred.Accepts(pos):
		e.predGate.Add(1)
	default:
		e.predicted.Add(1)
		return pos, true
	}
	return geom.Point{}, false
}

// PredictRegion derives the track-guided search region the engine
// uses for a prediction: the sigma-σ gate box padded by two grid
// cells on every side, so a verified fix always has an interior ring
// to sit in. Exported so benchmarks and experiments can measure
// exactly the serving path's region.
func PredictRegion(pred track.Prediction, sigma, cell float64) core.Region {
	if cell <= 0 {
		cell = 0.10
	}
	pad := 2 * cell
	lo, hi := pred.Box(sigma)
	return core.Region{
		Min: geom.Pt(lo.X-pad, lo.Y-pad),
		Max: geom.Pt(hi.X+pad, hi.Y+pad),
	}
}

// Submit enqueues a job; done is invoked exactly once, from a worker
// goroutine, with the job's result. Priority requests enter the
// latency lane, everything else the batch queue. Submit blocks while
// the target lane is full, fails fast with ErrQuota when the client's
// scheduler quota is exhausted, and returns ErrClosed after Close.
func (e *Engine) Submit(req Request, done func(Result)) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		e.rejected.Add(1)
		return ErrClosed
	}
	// Count before the push: a worker can dequeue and complete the job
	// the instant it lands, and Stats must never show Completed >
	// Submitted. Rejected pushes undo the count.
	e.submitted.Add(1)
	if req.Priority {
		e.prioSub.Add(1)
	}
	j := job{req: req, done: done}
	if e.shedAfter.Load() > 0 {
		j.enq = time.Now()
	}
	err := e.q.Push(sched.Item{
		Client:   req.ClientID,
		Priority: req.Priority,
		Payload:  j,
	})
	if err != nil {
		e.submitted.Add(^uint64(0))
		if req.Priority {
			e.prioSub.Add(^uint64(0))
		}
		e.rejected.Add(1)
		if errors.Is(err, sched.ErrQuota) {
			e.quotaRej.Add(1)
			return ErrQuota
		}
		return ErrClosed
	}
	return nil
}

// Tracker returns the engine's tracker (nil when tracking is off).
func (e *Engine) Tracker() *Tracker { return e.tracker }

// InFlight returns one client's admitted-but-not-completed job count.
// Once a client's feed is paused and InFlight reaches zero, every
// accepted fix for that client has been folded into the tracker — the
// quiesce point a shard migration snapshots at.
func (e *Engine) InFlight(clientID uint32) int { return e.q.InFlight(clientID) }

// PredictSigma returns the live predictive-region sigma (0 = the
// predictive path is disabled).
func (e *Engine) PredictSigma() float64 {
	return math.Float64frombits(e.predSigma.Load())
}

// SetPredictSigma hot-reloads the predictive-region sigma: 0 selects
// DefaultPredictSigma, negative disables the predictive path, and any
// value is clamped up to the tracker's Mahalanobis gate so the search
// box always covers every fix the tracker could accept. A no-op on an
// engine without a tracker (there is nothing to predict from). Takes
// effect on the next job.
func (e *Engine) SetPredictSigma(sigma float64) {
	if e.tracker == nil {
		return
	}
	if sigma < 0 {
		e.predSigma.Store(0)
		return
	}
	if sigma == 0 {
		sigma = DefaultPredictSigma
	}
	if g := e.tracker.opt.Gate; sigma < g {
		sigma = g // the region must cover everything the gate accepts
	}
	e.predSigma.Store(math.Float64bits(sigma))
}

// ShedAfter returns the live overload-shedding age bound (0 =
// shedding is off).
func (e *Engine) ShedAfter() time.Duration {
	return time.Duration(e.shedAfter.Load())
}

// SetShedAfter hot-reloads the overload-shedding age bound: positive
// sheds batch jobs older than d at execution time, zero or negative
// disables shedding. Takes effect on jobs submitted after the call
// (already-queued jobs keep their enqueue stamps).
func (e *Engine) SetShedAfter(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.shedAfter.Store(int64(d))
}

// SetClientQuota hot-reloads the scheduler's per-client token budget
// (0 = unlimited); admitted jobs are never cancelled.
func (e *Engine) SetClientQuota(n int) { e.q.SetClientQuota(n) }

// ClientQuota returns the scheduler's live per-client token budget.
func (e *Engine) ClientQuota() int { return e.q.ClientQuota() }

// SetAgeLimit hot-reloads the scheduler's batch-ageing bound (0 =
// scheduler default, negative disables ageing).
func (e *Engine) SetAgeLimit(d time.Duration) { e.q.SetAgeLimit(d) }

// AgeLimit returns the scheduler's live ageing bound.
func (e *Engine) AgeLimit() time.Duration { return e.q.AgeLimit() }

// Locate runs one job synchronously through the pool.
func (e *Engine) Locate(req Request) Result {
	ch := make(chan Result, 1)
	if err := e.Submit(req, func(r Result) { ch <- r }); err != nil {
		return Result{ClientID: req.ClientID, Err: err}
	}
	return <-ch
}

// LocateBatch runs many jobs concurrently and returns results aligned
// with reqs. It blocks until every job completes.
func (e *Engine) LocateBatch(reqs []Request) []Result {
	out := make([]Result, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		i := i
		wg.Add(1)
		err := e.Submit(reqs[i], func(r Result) {
			out[i] = r
			wg.Done()
		})
		if err != nil {
			out[i] = Result{ClientID: reqs[i].ClientID, Err: err}
			wg.Done()
		}
	}
	wg.Wait()
	return out
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	fixes := e.fixes.Load()
	failures := e.failures.Load()
	qs := e.q.Stats()
	s := Stats{
		Submitted:              e.submitted.Load(),
		Completed:              fixes + failures,
		Fixes:                  fixes,
		Failures:               failures,
		Rejected:               e.rejected.Load(),
		QuotaRejected:          e.quotaRej.Load(),
		Shed:                   e.shed.Load(),
		DegradedFixes:          e.degFixes.Load(),
		Predicted:              e.predicted.Load(),
		PredictFallbackNoTrack: e.predNoTrack.Load(),
		PredictFallbackBorder:  e.predBorder.Load(),
		PredictFallbackGate:    e.predGate.Load(),
		PredictFallbackError:   e.predRegionErr.Load(),
		PrioritySubmitted:      e.prioSub.Load(),
		AgedBatch:              qs.Aged,
		PriorityStolen:         qs.Stolen,
		Workers:                e.workers,
		Queued:                 qs.BatchQueued,
		PriorityQueued:         qs.PriorityQueued,
	}
	if e.tracker != nil {
		ts := e.tracker.Stats()
		s.TrackedClients = ts.Clients
		s.TrackRejects = ts.GateRejects
	}
	if e.cfg.SynthCache != nil {
		u := e.cfg.SynthCache.Usage()
		s.SynthLUTs = u.Entries
		s.SynthBytes = u.Bytes
		s.SynthBudget = u.Budget
		s.SynthHits = u.Hits
		s.SynthMisses = u.Misses
		s.SynthEvictions = u.Evictions
		s.SynthSlices = u.Slices
		s.SynthSecondChoice = u.SecondChoice
		s.SynthSpills = u.Spills
		s.SynthDenseEvictions = u.DenseEvictions
	}
	if e.cfg.Steering != nil {
		u := e.cfg.Steering.Usage()
		s.SteeringTables = u.Entries
		s.SteeringBytes = u.Bytes
		s.SteeringBudget = u.Budget
		s.SteeringHits = u.Hits
		s.SteeringMisses = u.Misses
		s.SteeringEvictions = u.Evictions
	}
	return s
}

// Close stops accepting jobs, drains both lanes, and waits for the
// workers to exit. Safe to call more than once.
func (e *Engine) Close() { e.Drain() }

// Drain performs the graceful-shutdown sequence: new submissions are
// refused with ErrClosed, every already-admitted job in both scheduler
// lanes runs to completion (done callbacks included — nothing is
// dropped), and Drain returns once the last worker has exited. After
// Drain the tracker (if any) is quiescent, so Tracker.SnapshotAll
// observes the final post-flush state of every track — the
// write-snapshot-then-exit step of a rolling restart runs on exactly
// the state a continued process would have served from. Safe to call
// more than once; later calls return immediately.
func (e *Engine) Drain() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait() // a concurrent first Drain may still be flushing
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.q.Close()
	e.wg.Wait()
}
