// Package engine is the concurrent localization engine: a bounded
// worker pool that ingests per-client capture groups from many APs and
// emits location fixes. The seed processed one client at a time,
// serially; the engine is what lets the backend sustain ArrayTrack's
// system-level claim — fixes for many roaming clients at once — by
// parallelizing across clients while the steering-vector cache
// (music.SteeringCache) removes the per-spectrum recomputation the
// serial path paid for every frame.
package engine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

// ErrClosed is returned by Submit-family calls after Close.
var ErrClosed = errors.New("engine: closed")

// Request is one localization job: every capture the backend grouped
// for one client, organized per AP (Captures[i] holds AP i's frames;
// APs with no frames are skipped, as in core.LocateClient).
type Request struct {
	ClientID uint32
	APs      []*core.AP
	Captures [][]core.FrameCapture
	// Min, Max bound the synthesis search area.
	Min, Max geom.Point
	// Time is the capture timestamp, used by the tracker to advance
	// the client's Kalman state. Zero means the tracker's clock.
	Time time.Time
}

// Result is one location fix (or failure) for a client.
type Result struct {
	ClientID uint32
	Pos      geom.Point
	Spectra  []core.APSpectrum
	Err      error
	// Track is the smoothed track update for this fix when the engine
	// has a Tracker; nil otherwise (and on failures).
	Track *TrackUpdate
}

// Options configures an Engine.
type Options struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// Queue is the job queue depth; 0 means 4×Workers. Submit blocks
	// once the queue is full, providing natural backpressure.
	Queue int
	// Config is the pipeline configuration applied to every job. The
	// engine clamps Config.APWorkers and Config.SynthWorkers to 1:
	// the pool already keeps every core busy across clients, so
	// per-AP or per-shard fan-out inside a worker would only
	// oversubscribe the machine. Synthesis still reuses the cached
	// bearing LUTs and the coarse-to-fine screen per job.
	Config core.Config
	// Tracker, when non-nil, folds every successful fix into the
	// client's Kalman track; results carry the smoothed update and
	// subscribers stream them (Tracker.Subscribe).
	Tracker *Tracker
}

// Stats is a snapshot of engine counters.
type Stats struct {
	// Submitted is the number of jobs accepted into the queue.
	Submitted uint64
	// Completed is the number of jobs finished (fixes + failures).
	Completed uint64
	// Fixes is the number of successful localizations completed.
	Fixes uint64
	// Failures is the number of jobs that returned an error.
	Failures uint64
	// Rejected is the number of submissions refused (engine closed).
	Rejected uint64
	// TrackedClients is the number of live client tracks (0 without a
	// tracker).
	TrackedClients int
	// TrackRejects is the cumulative number of fixes the tracker's
	// outlier gate discarded (0 without a tracker).
	TrackRejects uint64
	// SynthLUTs is the number of distinct bearing LUTs the synthesis
	// cache holds — one per (AP position, grid geometry) pair seen (0
	// when the config runs the seed synthesis path).
	SynthLUTs int
	// Workers is the pool size.
	Workers int
	// Queued is the instantaneous queue depth.
	Queued int
}

type job struct {
	req  Request
	done func(Result)
}

// Engine runs localization jobs on a fixed worker pool. All methods
// are safe for concurrent use.
type Engine struct {
	cfg       core.Config
	tracker   *Tracker
	jobs      chan job
	wg        sync.WaitGroup
	mu        sync.RWMutex
	closed    bool
	submitted atomic.Uint64
	rejected  atomic.Uint64
	fixes     atomic.Uint64
	failures  atomic.Uint64
	workers   int
}

// New starts an engine with opt.Workers workers. Close it when done.
func New(opt Options) *Engine {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := opt.Queue
	if queue <= 0 {
		queue = 4 * workers
	}
	cfg := opt.Config
	if cfg.APWorkers > 1 {
		cfg.APWorkers = 1
	}
	if cfg.SynthWorkers > 1 {
		cfg.SynthWorkers = 1
	}
	e := &Engine{
		cfg:     cfg,
		tracker: opt.Tracker,
		jobs:    make(chan job, queue),
		workers: workers,
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.jobs {
		j.done(e.run(j.req))
	}
}

func (e *Engine) run(req Request) Result {
	pos, specs, err := core.LocateClient(req.APs, req.Captures, req.Min, req.Max, e.cfg)
	r := Result{ClientID: req.ClientID, Pos: pos, Spectra: specs, Err: err}
	if err != nil {
		e.failures.Add(1)
		return r
	}
	e.fixes.Add(1)
	if e.tracker != nil {
		upd := e.tracker.Observe(req.ClientID, pos, req.Time)
		r.Track = &upd
	}
	return r
}

// Submit enqueues a job; done is invoked exactly once, from a worker
// goroutine, with the job's result. Submit blocks while the queue is
// full and returns ErrClosed after Close.
func (e *Engine) Submit(req Request, done func(Result)) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		e.rejected.Add(1)
		return ErrClosed
	}
	// Count before the send: a worker can dequeue and complete the job
	// the instant it lands, and Stats must never show Completed >
	// Submitted.
	e.submitted.Add(1)
	e.jobs <- job{req: req, done: done}
	return nil
}

// Tracker returns the engine's tracker (nil when tracking is off).
func (e *Engine) Tracker() *Tracker { return e.tracker }

// Locate runs one job synchronously through the pool.
func (e *Engine) Locate(req Request) Result {
	ch := make(chan Result, 1)
	if err := e.Submit(req, func(r Result) { ch <- r }); err != nil {
		return Result{ClientID: req.ClientID, Err: err}
	}
	return <-ch
}

// LocateBatch runs many jobs concurrently and returns results aligned
// with reqs. It blocks until every job completes.
func (e *Engine) LocateBatch(reqs []Request) []Result {
	out := make([]Result, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		i := i
		wg.Add(1)
		err := e.Submit(reqs[i], func(r Result) {
			out[i] = r
			wg.Done()
		})
		if err != nil {
			out[i] = Result{ClientID: reqs[i].ClientID, Err: err}
			wg.Done()
		}
	}
	wg.Wait()
	return out
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	fixes := e.fixes.Load()
	failures := e.failures.Load()
	s := Stats{
		Submitted: e.submitted.Load(),
		Completed: fixes + failures,
		Fixes:     fixes,
		Failures:  failures,
		Rejected:  e.rejected.Load(),
		Workers:   e.workers,
		Queued:    len(e.jobs),
	}
	if e.tracker != nil {
		ts := e.tracker.Stats()
		s.TrackedClients = ts.Clients
		s.TrackRejects = ts.GateRejects
	}
	if e.cfg.SynthCache != nil {
		s.SynthLUTs = e.cfg.SynthCache.Len()
	}
	return s
}

// Close stops accepting jobs, drains the queue, and waits for the
// workers to exit. Safe to call once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.jobs)
	e.mu.Unlock()
	e.wg.Wait()
}
