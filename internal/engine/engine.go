// Package engine is the concurrent localization engine: a bounded
// worker pool that ingests per-client capture groups from many APs and
// emits location fixes. The seed processed one client at a time,
// serially; the engine is what lets the backend sustain ArrayTrack's
// system-level claim — fixes for many roaming clients at once — by
// parallelizing across clients while the steering-vector cache
// (music.SteeringCache) removes the per-spectrum recomputation the
// serial path paid for every frame.
package engine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

// ErrClosed is returned by Submit-family calls after Close.
var ErrClosed = errors.New("engine: closed")

// Request is one localization job: every capture the backend grouped
// for one client, organized per AP (Captures[i] holds AP i's frames;
// APs with no frames are skipped, as in core.LocateClient).
type Request struct {
	ClientID uint32
	APs      []*core.AP
	Captures [][]core.FrameCapture
	// Min, Max bound the synthesis search area.
	Min, Max geom.Point
	// Region, when non-zero, restricts synthesis to an ad-hoc
	// bounding box (clamped to [Min, Max]) at an optional per-request
	// resolution. Malformed regions fail the job with a wrapped
	// core.ErrBadRegion.
	Region core.Region
	// Priority routes the job through the engine's latency lane:
	// workers prefer it over queued batch traffic, and its synthesis
	// surface is sharded across the config's SynthWorkers instead of
	// being clamped to one goroutine. Meant for single interactive
	// fixes (typically region queries), not bulk submission.
	Priority bool
	// Time is the capture timestamp, used by the tracker to advance
	// the client's Kalman state. Zero means the tracker's clock.
	Time time.Time
}

// Result is one location fix (or failure) for a client.
type Result struct {
	ClientID uint32
	Pos      geom.Point
	Spectra  []core.APSpectrum
	Err      error
	// Track is the smoothed track update for this fix when the engine
	// has a Tracker; nil otherwise (and on failures).
	Track *TrackUpdate
}

// Options configures an Engine.
type Options struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// Queue is the job queue depth; 0 means 4×Workers. Submit blocks
	// once the queue is full, providing natural backpressure.
	Queue int
	// PriorityQueue is the latency lane's depth; 0 means Workers.
	// Kept intentionally shallow: the lane exists for single
	// interactive fixes, and a deep priority queue would just starve
	// batch traffic.
	PriorityQueue int
	// Config is the pipeline configuration applied to every job. For
	// batch jobs the engine clamps Config.APWorkers and
	// Config.SynthWorkers to 1: the pool already keeps every core
	// busy across clients, so per-AP or per-shard fan-out inside a
	// worker would only oversubscribe the machine. Priority jobs keep
	// the configured SynthWorkers — a single interactive fix shards
	// its surface across cores the batch lane is not saturating.
	// Synthesis reuses the cached bearing LUTs and the coarse-to-fine
	// screen either way.
	Config core.Config
	// Tracker, when non-nil, folds every successful fix into the
	// client's Kalman track; results carry the smoothed update and
	// subscribers stream them (Tracker.Subscribe).
	Tracker *Tracker
}

// Stats is a snapshot of engine counters.
type Stats struct {
	// Submitted is the number of jobs accepted into the queue.
	Submitted uint64
	// Completed is the number of jobs finished (fixes + failures).
	Completed uint64
	// Fixes is the number of successful localizations completed.
	Fixes uint64
	// Failures is the number of jobs that returned an error.
	Failures uint64
	// Rejected is the number of submissions refused (engine closed).
	Rejected uint64
	// TrackedClients is the number of live client tracks (0 without a
	// tracker).
	TrackedClients int
	// TrackRejects is the cumulative number of fixes the tracker's
	// outlier gate discarded (0 without a tracker).
	TrackRejects uint64
	// SynthLUTs is the number of distinct bearing LUTs the synthesis
	// cache holds — one per (AP position, grid geometry) pair seen (0
	// when the config runs the seed synthesis path).
	SynthLUTs int
	// SynthBytes and SynthBudget are the synthesis cache's accounted
	// size and configured byte cap (0 budget = unbounded); SynthHits,
	// SynthMisses, SynthEvictions and SynthSlices are its cumulative
	// lookup counters (slices = region LUTs derived from a cached
	// full-grid entry). All zero on the seed synthesis path.
	SynthBytes     int64
	SynthBudget    int64
	SynthHits      uint64
	SynthMisses    uint64
	SynthEvictions uint64
	SynthSlices    uint64
	// PrioritySubmitted is the number of jobs accepted into the
	// latency lane (included in Submitted).
	PrioritySubmitted uint64
	// Workers is the pool size.
	Workers int
	// Queued is the instantaneous batch queue depth.
	Queued int
	// PriorityQueued is the instantaneous latency-lane depth.
	PriorityQueued int
}

type job struct {
	req  Request
	done func(Result)
}

// Engine runs localization jobs on a fixed worker pool with two
// lanes: a deep batch queue and a shallow latency-priority queue that
// workers always drain first. All methods are safe for concurrent
// use.
type Engine struct {
	cfg       core.Config // batch lane: APWorkers/SynthWorkers clamped to 1
	prioCfg   core.Config // latency lane: SynthWorkers kept for surface sharding
	tracker   *Tracker
	jobs      chan job
	prio      chan job
	wg        sync.WaitGroup
	mu        sync.RWMutex
	closed    bool
	submitted atomic.Uint64
	prioSub   atomic.Uint64
	rejected  atomic.Uint64
	fixes     atomic.Uint64
	failures  atomic.Uint64
	workers   int
}

// New starts an engine with opt.Workers workers. Close it when done.
func New(opt Options) *Engine {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := opt.Queue
	if queue <= 0 {
		queue = 4 * workers
	}
	prioQueue := opt.PriorityQueue
	if prioQueue <= 0 {
		prioQueue = workers
	}
	prioCfg := opt.Config
	if prioCfg.APWorkers > 1 {
		prioCfg.APWorkers = 1
	}
	cfg := prioCfg
	if cfg.SynthWorkers > 1 {
		cfg.SynthWorkers = 1
	}
	e := &Engine{
		cfg:     cfg,
		prioCfg: prioCfg,
		tracker: opt.Tracker,
		jobs:    make(chan job, queue),
		prio:    make(chan job, prioQueue),
		workers: workers,
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		j, ok := e.next()
		if !ok {
			return
		}
		j.done(e.run(j.req))
	}
}

// next dequeues the worker's next job, preferring the latency lane: a
// non-blocking priority poll first, then a blocking wait on both
// lanes. After Close (both channels closed), it drains whatever
// remains and reports false.
func (e *Engine) next() (job, bool) {
	select {
	case j, ok := <-e.prio:
		if ok {
			return j, true
		}
		// Latency lane closed: finish draining the batch lane.
		j, ok = <-e.jobs
		return j, ok
	default:
	}
	select {
	case j, ok := <-e.prio:
		if ok {
			return j, true
		}
		j, ok = <-e.jobs
		return j, ok
	case j, ok := <-e.jobs:
		if ok {
			return j, true
		}
		j, ok = <-e.prio
		return j, ok
	}
}

func (e *Engine) run(req Request) Result {
	cfg := e.cfg
	if req.Priority {
		cfg = e.prioCfg
	}
	pos, specs, err := core.LocateClientRegion(req.APs, req.Captures, req.Min, req.Max, req.Region, cfg)
	r := Result{ClientID: req.ClientID, Pos: pos, Spectra: specs, Err: err}
	if err != nil {
		e.failures.Add(1)
		return r
	}
	e.fixes.Add(1)
	if e.tracker != nil {
		upd := e.tracker.Observe(req.ClientID, pos, req.Time)
		r.Track = &upd
	}
	return r
}

// Submit enqueues a job; done is invoked exactly once, from a worker
// goroutine, with the job's result. Priority requests enter the
// latency lane, everything else the batch queue. Submit blocks while
// the target lane is full and returns ErrClosed after Close.
func (e *Engine) Submit(req Request, done func(Result)) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		e.rejected.Add(1)
		return ErrClosed
	}
	// Count before the send: a worker can dequeue and complete the job
	// the instant it lands, and Stats must never show Completed >
	// Submitted.
	e.submitted.Add(1)
	if req.Priority {
		e.prioSub.Add(1)
		e.prio <- job{req: req, done: done}
	} else {
		e.jobs <- job{req: req, done: done}
	}
	return nil
}

// Tracker returns the engine's tracker (nil when tracking is off).
func (e *Engine) Tracker() *Tracker { return e.tracker }

// Locate runs one job synchronously through the pool.
func (e *Engine) Locate(req Request) Result {
	ch := make(chan Result, 1)
	if err := e.Submit(req, func(r Result) { ch <- r }); err != nil {
		return Result{ClientID: req.ClientID, Err: err}
	}
	return <-ch
}

// LocateBatch runs many jobs concurrently and returns results aligned
// with reqs. It blocks until every job completes.
func (e *Engine) LocateBatch(reqs []Request) []Result {
	out := make([]Result, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		i := i
		wg.Add(1)
		err := e.Submit(reqs[i], func(r Result) {
			out[i] = r
			wg.Done()
		})
		if err != nil {
			out[i] = Result{ClientID: reqs[i].ClientID, Err: err}
			wg.Done()
		}
	}
	wg.Wait()
	return out
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	fixes := e.fixes.Load()
	failures := e.failures.Load()
	s := Stats{
		Submitted:         e.submitted.Load(),
		Completed:         fixes + failures,
		Fixes:             fixes,
		Failures:          failures,
		Rejected:          e.rejected.Load(),
		PrioritySubmitted: e.prioSub.Load(),
		Workers:           e.workers,
		Queued:            len(e.jobs),
		PriorityQueued:    len(e.prio),
	}
	if e.tracker != nil {
		ts := e.tracker.Stats()
		s.TrackedClients = ts.Clients
		s.TrackRejects = ts.GateRejects
	}
	if e.cfg.SynthCache != nil {
		u := e.cfg.SynthCache.Usage()
		s.SynthLUTs = u.Entries
		s.SynthBytes = u.Bytes
		s.SynthBudget = u.Budget
		s.SynthHits = u.Hits
		s.SynthMisses = u.Misses
		s.SynthEvictions = u.Evictions
		s.SynthSlices = u.Slices
	}
	return s
}

// Close stops accepting jobs, drains both lanes, and waits for the
// workers to exit. Safe to call once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.prio)
	close(e.jobs)
	e.mu.Unlock()
	e.wg.Wait()
}
