// Package engine is the concurrent localization engine: a bounded
// worker pool that ingests per-client capture groups from many APs and
// emits location fixes. The seed processed one client at a time,
// serially; the engine is what lets the backend sustain ArrayTrack's
// system-level claim — fixes for many roaming clients at once — by
// parallelizing across clients while the steering-vector cache
// (music.SteeringCache) removes the per-spectrum recomputation the
// serial path paid for every frame.
package engine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/geom"
)

// ErrClosed is returned by Submit-family calls after Close.
var ErrClosed = errors.New("engine: closed")

// Request is one localization job: every capture the backend grouped
// for one client, organized per AP (Captures[i] holds AP i's frames;
// APs with no frames are skipped, as in core.LocateClient).
type Request struct {
	ClientID uint32
	APs      []*core.AP
	Captures [][]core.FrameCapture
	// Min, Max bound the synthesis search area.
	Min, Max geom.Point
}

// Result is one location fix (or failure) for a client.
type Result struct {
	ClientID uint32
	Pos      geom.Point
	Spectra  []core.APSpectrum
	Err      error
}

// Options configures an Engine.
type Options struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// Queue is the job queue depth; 0 means 4×Workers. Submit blocks
	// once the queue is full, providing natural backpressure.
	Queue int
	// Config is the pipeline configuration applied to every job. The
	// engine clamps Config.APWorkers to 1: the pool already keeps
	// every core busy across clients, so per-AP fan-out inside a
	// worker would only oversubscribe the machine.
	Config core.Config
}

// Stats is a snapshot of engine counters.
type Stats struct {
	// Fixes is the number of successful localizations completed.
	Fixes uint64
	// Failures is the number of jobs that returned an error.
	Failures uint64
	// Workers is the pool size.
	Workers int
	// Queued is the instantaneous queue depth.
	Queued int
}

type job struct {
	req  Request
	done func(Result)
}

// Engine runs localization jobs on a fixed worker pool. All methods
// are safe for concurrent use.
type Engine struct {
	cfg      core.Config
	jobs     chan job
	wg       sync.WaitGroup
	mu       sync.RWMutex
	closed   bool
	fixes    atomic.Uint64
	failures atomic.Uint64
	workers  int
}

// New starts an engine with opt.Workers workers. Close it when done.
func New(opt Options) *Engine {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := opt.Queue
	if queue <= 0 {
		queue = 4 * workers
	}
	cfg := opt.Config
	if cfg.APWorkers > 1 {
		cfg.APWorkers = 1
	}
	e := &Engine{
		cfg:     cfg,
		jobs:    make(chan job, queue),
		workers: workers,
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.jobs {
		j.done(e.run(j.req))
	}
}

func (e *Engine) run(req Request) Result {
	pos, specs, err := core.LocateClient(req.APs, req.Captures, req.Min, req.Max, e.cfg)
	if err != nil {
		e.failures.Add(1)
	} else {
		e.fixes.Add(1)
	}
	return Result{ClientID: req.ClientID, Pos: pos, Spectra: specs, Err: err}
}

// Submit enqueues a job; done is invoked exactly once, from a worker
// goroutine, with the job's result. Submit blocks while the queue is
// full and returns ErrClosed after Close.
func (e *Engine) Submit(req Request, done func(Result)) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	e.jobs <- job{req: req, done: done}
	return nil
}

// Locate runs one job synchronously through the pool.
func (e *Engine) Locate(req Request) Result {
	ch := make(chan Result, 1)
	if err := e.Submit(req, func(r Result) { ch <- r }); err != nil {
		return Result{ClientID: req.ClientID, Err: err}
	}
	return <-ch
}

// LocateBatch runs many jobs concurrently and returns results aligned
// with reqs. It blocks until every job completes.
func (e *Engine) LocateBatch(reqs []Request) []Result {
	out := make([]Result, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		i := i
		wg.Add(1)
		err := e.Submit(reqs[i], func(r Result) {
			out[i] = r
			wg.Done()
		})
		if err != nil {
			out[i] = Result{ClientID: reqs[i].ClientID, Err: err}
			wg.Done()
		}
	}
	wg.Wait()
	return out
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Fixes:    e.fixes.Load(),
		Failures: e.failures.Load(),
		Workers:  e.workers,
		Queued:   len(e.jobs),
	}
}

// Close stops accepting jobs, drains the queue, and waits for the
// workers to exit. Safe to call once.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.jobs)
	e.mu.Unlock()
	e.wg.Wait()
}
