package engine

import (
	"testing"
	"time"
)

// TestAllowPriorityTableHardCap (regression): client IDs arrive from
// the wire, so a flood of unique IDs all claiming priority inside one
// interval used to grow lastPrio without bound — the stale sweep never
// fires when every entry is fresh. The table must stay at or under its
// hard cap no matter the arrival pattern.
func TestAllowPriorityTableHardCap(t *testing.T) {
	s := &CaptureSink{}
	now := time.Unix(1700000000, 0)

	// 10k distinct clients, all within one interval: nothing is stale,
	// so only oldest-grant eviction can bound the table.
	for i := 0; i < 10000; i++ {
		if !s.allowPriority(uint32(i+1), now.Add(time.Duration(i)*time.Microsecond)) {
			t.Fatalf("first grant for client %d denied", i+1)
		}
	}
	s.mu.Lock()
	n := len(s.lastPrio)
	s.mu.Unlock()
	if n > priorityTableCap {
		t.Fatalf("lastPrio holds %d entries, cap is %d", n, priorityTableCap)
	}

	// Throttling still works for a client whose grant survived the
	// flood: the most recent grant is never the eviction victim.
	if s.allowPriority(10000, now.Add(10000*time.Microsecond)) {
		t.Fatal("back-to-back grant for a retained client must be denied")
	}

	// Once entries go stale the sweep path reclaims them before any
	// oldest-grant eviction, and the table stays bounded.
	later := now.Add(time.Hour)
	for i := 0; i < 5000; i++ {
		s.allowPriority(uint32(100000+i), later.Add(time.Duration(i)*time.Microsecond))
	}
	s.mu.Lock()
	n = len(s.lastPrio)
	s.mu.Unlock()
	if n > priorityTableCap {
		t.Fatalf("lastPrio holds %d entries after stale sweep era, cap is %d", n, priorityTableCap)
	}
}
