package engine_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/server"
)

// TestCaptureSinkDiscardsUnknownAPProvenance (regression): Dispatch
// used to harvest region, priority flag, and timestamps from every
// capture in a flush *before* resolving APs, so a record from an
// unknown AP — dropped from the localization itself — could still pin
// the job to an attacker-chosen region, jump the latency lane, and
// advance the Kalman track with a bogus timestamp. Discarded records
// must carry no influence at all.
func TestCaptureSinkDiscardsUnknownAPProvenance(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	tr := engine.NewTracker(engine.TrackerOptions{Gate: -1})
	eng := engine.New(engine.Options{Workers: 1, Config: cfg, Tracker: tr})
	defer eng.Close()
	results := make(chan engine.Result, 1)
	sink := &engine.CaptureSink{
		Engine: eng,
		Resolve: func(apID uint32) *core.AP {
			if int(apID) < 1 || int(apID) > len(aps) {
				return nil
			}
			return aps[apID-1]
		},
		Min:      geom.Pt(0, 0),
		Max:      geom.Pt(6, 4),
		OnResult: func(r engine.Result) { results <- r },
	}

	rng := rand.New(rand.NewSource(15))
	s1, s2 := mkStreams(rng), mkStreams(rng)
	now := time.Now()
	bogusRegion := core.Region{Min: geom.Pt(5.0, 3.0), Max: geom.Pt(5.5, 3.5)}
	sink.Dispatch(31, []server.Capture{
		{APID: 1, ClientID: 31, Timestamp: now, Streams: s1},
		// Unknown AP 99: carries a region, the priority flag, and a
		// timestamp an hour in the future. All of it must be ignored.
		{APID: 99, ClientID: 31, Timestamp: now.Add(time.Hour),
			Streams: mkStreams(rng), Region: bogusRegion, Priority: true},
		{APID: 2, ClientID: 31, Timestamp: now.Add(time.Millisecond), Streams: s2},
	})
	r := <-results
	if r.Err != nil {
		t.Fatal(r.Err)
	}

	// The fix must equal the full-grid result over the two known APs —
	// not the bogus region's argmax.
	direct := eng.Locate(engine.Request{
		ClientID: 32,
		APs:      aps,
		Captures: [][]core.FrameCapture{{{Streams: s1}}, {{Streams: s2}}},
		Min:      geom.Pt(0, 0),
		Max:      geom.Pt(6, 4),
	})
	if direct.Err != nil {
		t.Fatal(direct.Err)
	}
	if r.Pos != direct.Pos {
		t.Fatalf("sink fix %v != full-grid fix %v — unknown AP's region leaked into the job", r.Pos, direct.Pos)
	}
	if inBogus := r.Pos.X >= bogusRegion.Min.X && r.Pos.X <= bogusRegion.Max.X &&
		r.Pos.Y >= bogusRegion.Min.Y && r.Pos.Y <= bogusRegion.Max.Y; inBogus {
		t.Fatalf("test scene degenerate: full-grid fix %v landed inside the bogus region", r.Pos)
	}

	// The priority flag on the discarded record must not reach the
	// latency lane.
	if st := eng.Stats(); st.PrioritySubmitted != 0 {
		t.Fatalf("PrioritySubmitted = %d, want 0 — unknown AP's priority flag leaked", st.PrioritySubmitted)
	}

	// The track must carry the newest *resolved* timestamp, not the
	// bogus future one.
	snap, ok := tr.Snapshot(31)
	if !ok {
		t.Fatal("client 31 not tracked after dispatch")
	}
	if !snap.Time.Equal(now.Add(time.Millisecond)) {
		t.Fatalf("track time %v, want %v — unknown AP's timestamp poisoned the track",
			snap.Time, now.Add(time.Millisecond))
	}
}
