package engine_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
)

// TestDrainUnderConcurrentSubmit is the graceful-shutdown race test
// (run under -race in CI): clients keep submitting while Drain fires
// mid-flight. Every admitted job must complete exactly once, every
// client with a completed fix must come out of SnapshotAll with valid
// restorable state, and a restored tracker must predict identically —
// no track is lost or corrupted by draining under load.
func TestDrainUnderConcurrentSubmit(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	base := time.Unix(1700000000, 0)
	// TTL is disabled: the flood's simulated timestamps advance one
	// second per submission, far faster than wall time, and eviction is
	// not what this test is about.
	tr := engine.NewTracker(engine.TrackerOptions{Gate: -1, TTL: -1,
		Now: func() time.Time { return base }})
	eng := engine.New(engine.Options{Workers: 4, Queue: 64, Config: cfg, Tracker: tr})

	const clients = 12
	var admitted, completed atomic.Int64
	var cbWG sync.WaitGroup // one Done per admitted job's callback
	var subWG sync.WaitGroup
	fixesPerClient := make([]atomic.Int64, clients+1)

	for c := 1; c <= clients; c++ {
		subWG.Add(1)
		go func(c int) {
			defer subWG.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for s := 0; ; s++ {
				captures := [][]core.FrameCapture{
					{{Streams: mkStreams(rng)}},
					{{Streams: mkStreams(rng)}},
				}
				cbWG.Add(1)
				err := eng.Submit(engine.Request{
					ClientID: uint32(c),
					APs:      aps,
					Captures: captures,
					Min:      geom.Pt(0, 0),
					Max:      geom.Pt(6, 4),
					Time:     base.Add(time.Duration(s) * time.Second),
				}, func(r engine.Result) {
					completed.Add(1)
					if r.Err == nil {
						fixesPerClient[r.ClientID].Add(1)
					}
					cbWG.Done()
				})
				if err != nil {
					cbWG.Done() // callback never fires for refused submits
					if err == engine.ErrClosed {
						return
					}
					t.Errorf("client %d: %v", c, err)
					return
				}
				admitted.Add(1)
			}
		}(c)
	}

	// Let the flood establish tracks, then drain mid-flight.
	for tr.Stats().Observed < clients {
		time.Sleep(time.Millisecond)
	}
	eng.Drain()
	subWG.Wait()
	cbWG.Wait()

	if a, c := admitted.Load(), completed.Load(); a != c {
		t.Fatalf("admitted %d jobs but %d callbacks fired — drain dropped work", a, c)
	}

	// Every client that completed a fix must survive the drain with a
	// valid, restorable track.
	snaps := tr.SnapshotAll()
	byID := map[uint32]engine.ClientSnapshot{}
	for _, s := range snaps {
		if !s.Filter.Valid() {
			t.Fatalf("client %d drained with corrupt filter state: %+v", s.ClientID, s.Filter)
		}
		byID[s.ClientID] = s
	}
	for c := 1; c <= clients; c++ {
		if fixesPerClient[c].Load() > 0 {
			if _, ok := byID[uint32(c)]; !ok {
				t.Fatalf("client %d had %d fixes but no track in the snapshot", c, fixesPerClient[c].Load())
			}
		}
	}

	// And the snapshot restores to identical predictions.
	fresh := engine.NewTracker(engine.TrackerOptions{Gate: -1, TTL: -1,
		Now: func() time.Time { return base }})
	if n := fresh.Restore(snaps); n != len(snaps) {
		t.Fatalf("restored %d of %d drained tracks", n, len(snaps))
	}
	at := base.Add(time.Hour)
	for id := range byID {
		want, ok1 := tr.Predict(id, at, 1)
		got, ok2 := fresh.Predict(id, at, 1)
		if ok1 != ok2 || got != want {
			t.Fatalf("client %d: restored prediction diverged (%v/%v)", id, got, want)
		}
	}
}
