package engine_test

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
)

func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestEnginePredictiveEndToEnd drives the full predictive loop on
// real testbed captures: the same stationary client is fixed
// repeatedly, the first fixes build the track (full-grid, no-track
// fallbacks), and once the track matures the engine serves verified
// track-guided region fixes that agree with full-grid serving.
func TestEnginePredictiveEndToEnd(t *testing.T) {
	tb, reqs := testbedRequests(t, 1)
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = 0.25
	cfg.SynthCache = core.NewSynthCacheBudget(64 << 20)

	tracker := engine.NewTracker(engine.TrackerOptions{})
	eng := engine.New(engine.Options{Workers: 2, Config: cfg, Tracker: tracker, Predict: true})
	defer eng.Close()

	base := time.Unix(1700000000, 0)
	req := reqs[0]
	const steps = 6
	var fullPos geom.Point
	for i := 0; i < steps; i++ {
		req.Time = base.Add(time.Duration(i) * time.Second)
		r := eng.Locate(req)
		if r.Err != nil {
			t.Fatalf("step %d: %v", i, r.Err)
		}
		if i == 0 {
			fullPos = r.Pos // the full-grid fix for these captures
		}
		// Identical captures yield identical fixes, so the track is
		// stationary at fullPos; once mature, fixes go predictive.
		if i < engine.DefaultPredictMinFixes && r.Predicted {
			t.Fatalf("step %d predicted before the track matured", i)
		}
		if i >= engine.DefaultPredictMinFixes {
			if !r.Predicted {
				t.Fatalf("step %d: mature stationary track was not served predictively", i)
			}
			if r.Pos.Dist(fullPos) > 0.05 {
				t.Fatalf("step %d: predictive fix %v drifted from full-grid fix %v", i, r.Pos, fullPos)
			}
		}
	}
	st := eng.Stats()
	wantPred := uint64(steps - engine.DefaultPredictMinFixes)
	if st.Predicted != wantPred {
		t.Fatalf("Predicted = %d, want %d", st.Predicted, wantPred)
	}
	if st.PredictFallbackNoTrack != engine.DefaultPredictMinFixes {
		t.Fatalf("PredictFallbackNoTrack = %d, want %d", st.PredictFallbackNoTrack, engine.DefaultPredictMinFixes)
	}
	if st.PredictFallbackGate+st.PredictFallbackBorder+st.PredictFallbackError != 0 {
		t.Fatalf("stationary client fell back unexpectedly: %+v", st)
	}
}

// TestEnginePredictiveTeleportFallsBack: after the track matures, the
// client's captures jump across the floor (a mirror-ambiguity-scale
// event). The predictive region no longer contains the peak, so the
// engine must fall back (border) and serve the full-grid fix — the
// "never worse than full-grid" guarantee under track breakage.
func TestEnginePredictiveTeleportFallsBack(t *testing.T) {
	tb, reqs := testbedRequests(t, 8)
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = 0.25
	cfg.SynthCache = core.NewSynthCacheBudget(64 << 20)

	tracker := engine.NewTracker(engine.TrackerOptions{})
	eng := engine.New(engine.Options{Workers: 2, Config: cfg, Tracker: tracker, Predict: true})
	defer eng.Close()

	base := time.Unix(1700000000, 0)
	near := reqs[0]
	// Pick the fixture request whose fix lies farthest from near's, so
	// the teleport certainly leaves the predicted gate box.
	ref := eng.Locate(near)
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	far := reqs[1]
	bestDist := 0.0
	for _, cand := range reqs[1:] {
		r := eng.Locate(cand)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if d := r.Pos.Dist(ref.Pos); d > bestDist {
			bestDist, far = d, cand
		}
	}
	if bestDist < 5 {
		t.Skipf("fixture clients too clustered (max spread %.1fm)", bestDist)
	}

	// Mature the track at near's position.
	for i := 0; i < 4; i++ {
		q := near
		q.Time = base.Add(time.Duration(i) * time.Second)
		if r := eng.Locate(q); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	before := eng.Stats()

	// Teleport: same client ID, far captures.
	q := far
	q.ClientID = near.ClientID
	q.Time = base.Add(5 * time.Second)
	r := eng.Locate(q)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Predicted {
		t.Fatal("teleported fix was served from the stale predictive region")
	}
	// The served fix is the full-grid one for the far captures.
	direct := cfg
	direct.APWorkers = 1
	direct.SynthWorkers = 1
	wantPos, _, err := core.LocateClient(far.APs, far.Captures, far.Min, far.Max, direct)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pos != wantPos {
		t.Fatalf("fallback fix %v != full-grid fix %v", r.Pos, wantPos)
	}
	after := eng.Stats()
	if after.PredictFallbackBorder+after.PredictFallbackGate == before.PredictFallbackBorder+before.PredictFallbackGate {
		t.Fatalf("teleport did not trip the predictive verification: %+v", after)
	}
}

// TestEngineClientQuota: with a scheduler quota configured, a client
// flooding submissions gets ErrQuota refusals while other clients are
// admitted; completions release tokens.
func TestEngineClientQuota(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	eng := engine.New(engine.Options{Workers: 1, Queue: 64, ClientQuota: 2, Config: cfg})
	defer eng.Close()

	rngReq := func(id uint32) engine.Request {
		return engine.Request{
			ClientID: id,
			APs:      aps,
			Captures: [][]core.FrameCapture{
				{{Streams: mkStreams(randSource(int64(id)))}},
				{{Streams: mkStreams(randSource(int64(id) + 1))}},
			},
			Min: geom.Pt(0, 0),
			Max: geom.Pt(6, 4),
		}
	}

	// Hold the single worker so queued tokens cannot drain.
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	if err := eng.Submit(rngReq(50), func(engine.Result) { <-block; wg.Done() }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the worker pick it up

	done := func(engine.Result) {}
	if err := eng.Submit(rngReq(7), done); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(rngReq(7), done); err != nil {
		// The worker is blocked, so client 50's token plus these are held.
		t.Fatal(err)
	}
	if err := eng.Submit(rngReq(7), done); !errors.Is(err, engine.ErrQuota) {
		t.Fatalf("third queued job for one client = %v, want ErrQuota", err)
	}
	if err := eng.Submit(rngReq(8), done); err != nil {
		t.Fatalf("other client refused: %v", err)
	}
	st := eng.Stats()
	if st.QuotaRejected != 1 || st.Rejected != 1 {
		t.Fatalf("stats %+v, want 1 quota rejection", st)
	}
	close(block)
	wg.Wait()
}

// TestEngineFairnessUnderPriorityFlood is the satellite gate: hostile
// clients flood the latency lane of a single-worker engine while two
// well-behaved clients submit batch jobs. Quotas bound the flood's
// queue share, ageing promotes the batch jobs within a bounded wait,
// and every batch job completes. Runs under -race in the normal test
// pass.
func TestEngineFairnessUnderPriorityFlood(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	// Staged synthesis on a fine grid so batch surfaces hold real
	// yield points; ageing is tight so the flood's backlog (≥ quota ×
	// hostiles jobs deep) comfortably outlasts it.
	cfg.SynthCache = core.NewSynthCache()
	cfg.GridCell = 0.008 // ~376k cells ≈ 1ms/fix: the backlog outlasts the age limit
	const ageLimit = 5 * time.Millisecond
	eng := engine.New(engine.Options{
		Workers:       1,
		Queue:         32,
		PriorityQueue: 64,
		ClientQuota:   8,
		AgeLimit:      ageLimit,
		Config:        cfg,
	})
	defer eng.Close()

	mkReq := func(id uint32, prio bool, seed int64) engine.Request {
		return engine.Request{
			ClientID: id,
			APs:      aps,
			Captures: [][]core.FrameCapture{
				{{Streams: mkStreams(randSource(seed))}},
				{{Streams: mkStreams(randSource(seed + 1))}},
			},
			Min:      geom.Pt(0, 0),
			Max:      geom.Pt(6, 4),
			Priority: prio,
		}
	}

	// Plug the single worker: its done callback blocks until the lanes
	// are loaded, so the flood's backlog and the batch jobs' enqueue
	// timestamps are in place before scheduling decisions start.
	release := make(chan struct{})
	var plugDone sync.WaitGroup
	plugDone.Add(1)
	if err := eng.Submit(mkReq(3, false, 1), func(engine.Result) { <-release; plugDone.Done() }); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(5 * time.Second); eng.Stats().Queued != 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the plug job")
		}
		time.Sleep(time.Millisecond)
	}

	// Hostile clients 990–992 fill their full quota of priority jobs
	// and keep refilling as completions free tokens.
	stop := make(chan struct{})
	var flood sync.WaitGroup
	var hostileDone atomic.Int64
	for h := 0; h < 3; h++ {
		flood.Add(1)
		go func(h int) {
			defer flood.Done()
			seed := int64(h) * 1_000_000
			for {
				select {
				case <-stop:
					return
				default:
				}
				seed++
				err := eng.Submit(mkReq(uint32(990+h), true, seed), func(engine.Result) { hostileDone.Add(1) })
				if errors.Is(err, engine.ErrQuota) {
					time.Sleep(200 * time.Microsecond) // token budget full; retry
					continue
				}
				if err != nil {
					return
				}
			}
		}(h)
	}
	for deadline := time.Now().Add(5 * time.Second); eng.Stats().PriorityQueued < 20; {
		if time.Now().After(deadline) {
			t.Fatal("flood never filled the priority lane")
		}
		time.Sleep(time.Millisecond)
	}

	const perClient = 3
	type res struct {
		id  uint32
		err error
	}
	results := make(chan res, 2*perClient)
	for i := 0; i < perClient; i++ {
		for _, id := range []uint32{1, 2} {
			id := id
			if err := eng.Submit(mkReq(id, false, int64(id)*100+int64(i)), func(r engine.Result) {
				results <- res{id, r.Err}
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(release) // let the worker loose on the loaded lanes

	counts := map[uint32]int{}
	deadline := time.After(30 * time.Second)
	for n := 0; n < 2*perClient; n++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatal(r.err)
			}
			counts[r.id]++
		case <-deadline:
			close(stop)
			t.Fatalf("starved: %d/%d batch jobs finished under priority flood (counts %v)", n, 2*perClient, counts)
		}
	}
	close(stop)
	flood.Wait()
	plugDone.Wait()
	if counts[1] != perClient || counts[2] != perClient {
		t.Fatalf("per-client completions %v, want %d each", counts, perClient)
	}
	st := eng.Stats()
	// Ageing promotes batch heads past waiting priority traffic;
	// yield-steal services the lane from inside batch surfaces. Either
	// way the flood must have been actively managed, not merely
	// outrun. (The deterministic ageing bound itself is pinned with a
	// fake clock in sched.TestNoStarvationUnderPriorityFlood and
	// TestAgeingPromotesBatchHead.)
	if st.AgedBatch == 0 && st.PriorityStolen == 0 {
		t.Fatalf("neither ageing nor yield-steal engaged during the flood: %+v", st)
	}
	t.Logf("flood stats: hostile completed %d, aged %d, stolen %d, quota rejected %d",
		hostileDone.Load(), st.AgedBatch, st.PriorityStolen, st.QuotaRejected)
}

// TestEngineYieldStealsMidSurface: a priority job submitted while the
// single worker is deep inside a batch synthesis surface is stolen at
// a yield point and completes before the batch job does — mid-surface
// preemption, not queue-jump.
func TestEngineYieldStealsMidSurface(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	cfg.SynthCache = core.NewSynthCache()
	cfg.GridCell = 0.004 // ~1.5M cells: tens of milliseconds of serial surface
	eng := engine.New(engine.Options{Workers: 1, Config: cfg})
	defer eng.Close()

	var order []string
	var mu sync.Mutex
	record := func(tag string) func(engine.Result) {
		return func(r engine.Result) {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	if err := eng.Submit(mkReq2(aps, mkStreams, 1, false), func(r engine.Result) {
		record("batch")(r)
		wg.Done()
	}); err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has dequeued the batch job, then hand the
	// lane a priority job while the surface is in flight.
	for deadline := time.Now().Add(5 * time.Second); eng.Stats().Queued != 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the batch job")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := eng.Submit(mkReq2(aps, mkStreams, 2, true), func(r engine.Result) {
		record("prio")(r)
		wg.Done()
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	st := eng.Stats()
	if st.PriorityStolen == 0 {
		// The batch surface may already have passed its last yield
		// point when the priority job landed; that is a scheduling
		// race, not a preemption failure — but it should be rare with
		// a surface this large.
		t.Fatalf("priority job was not stolen mid-surface (order %v, stats %+v)", order, st)
	}
	mu.Lock()
	defer mu.Unlock()
	if order[0] != "prio" {
		t.Fatalf("completion order %v: stolen priority job must finish before the batch fix", order)
	}
}

// mkReq2 builds a two-AP synthetic request (helper for the
// preemption tests).
func mkReq2(aps []*core.AP, mkStreams func(*rand.Rand) [][]complex128, id uint32, prio bool) engine.Request {
	return engine.Request{
		ClientID: id,
		APs:      aps,
		Captures: [][]core.FrameCapture{
			{{Streams: mkStreams(randSource(int64(id)))}},
			{{Streams: mkStreams(randSource(int64(id) + 7))}},
		},
		Min:      geom.Pt(0, 0),
		Max:      geom.Pt(6, 4),
		Priority: prio,
	}
}
