package engine

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/server"
)

// ErrNoKnownAP is delivered to OnResult when none of a flush's capture
// records came from a resolvable AP.
var ErrNoKnownAP = errors.New("engine: quorum flush contained no known AP")

// CaptureSink bridges server.Backend's quorum flushes into the engine:
// it satisfies server.Dispatcher, so the backend's ingest path hands
// grouped captures off asynchronously instead of running the whole
// localization pipeline inline under the caller.
type CaptureSink struct {
	// Engine executes the localization jobs. Required.
	Engine *Engine
	// Resolve maps a wire AP identifier to its array description;
	// returning nil skips that AP's captures. Required.
	Resolve func(apID uint32) *core.AP
	// Min, Max bound the synthesis search area.
	Min, Max geom.Point
	// OnResult receives every fix or failure; nil discards results.
	OnResult func(Result)
	// OnTrack receives the smoothed track update for every successful
	// fix when the engine runs a Tracker; nil discards them. It fires
	// in addition to OnResult (whose Result carries the same update).
	OnTrack func(TrackUpdate)
}

// Dispatch groups a flushed capture set per AP (first-seen order,
// several frames per AP) and submits the localization job. It is
// called by the backend on its ingest path, so it only enqueues —
// blocking at most on engine backpressure, never on the pipeline.
func (s *CaptureSink) Dispatch(clientID uint32, captures []server.Capture) {
	var order []uint32
	byAP := make(map[uint32][]core.FrameCapture)
	newest := make(map[uint32]time.Time)
	for _, c := range captures {
		if _, ok := byAP[c.APID]; !ok {
			order = append(order, c.APID)
		}
		byAP[c.APID] = append(byAP[c.APID], core.FrameCapture{Streams: c.Streams})
		if c.Timestamp.After(newest[c.APID]) {
			newest[c.APID] = c.Timestamp
		}
	}
	var aps []*core.AP
	var frames [][]core.FrameCapture
	// The newest *resolved* capture timestamp advances the client's
	// track; records from unknown APs are discarded entirely, so a
	// bogus timestamp on one must not poison the Kalman state either.
	var at time.Time
	for _, id := range order {
		ap := s.Resolve(id)
		if ap == nil {
			continue
		}
		aps = append(aps, ap)
		frames = append(frames, byAP[id])
		if newest[id].After(at) {
			at = newest[id]
		}
	}
	deliver := func(r Result) {
		if s.OnResult != nil {
			s.OnResult(r)
		}
		if s.OnTrack != nil && r.Track != nil {
			s.OnTrack(*r.Track)
		}
	}
	if len(aps) == 0 {
		deliver(Result{ClientID: clientID, Err: ErrNoKnownAP})
		return
	}
	req := Request{ClientID: clientID, APs: aps, Captures: frames, Min: s.Min, Max: s.Max, Time: at}
	if err := s.Engine.Submit(req, deliver); err != nil {
		deliver(Result{ClientID: clientID, Err: err})
	}
}
