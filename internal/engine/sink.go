package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/server"
)

// DefaultPriorityInterval is the minimum spacing between latency-lane
// dispatches per client when CaptureSink.PriorityInterval is zero.
// The wire priority flag is untrusted input: without a throttle, one
// client (or a compromised AP) setting it on every capture would
// starve the batch lane and oversubscribe synthesis workers. Excess
// priority flushes are downgraded to batch, never dropped.
const DefaultPriorityInterval = 250 * time.Millisecond

// ErrNoKnownAP is delivered to OnResult when none of a flush's capture
// records came from a resolvable AP.
var ErrNoKnownAP = errors.New("engine: quorum flush contained no known AP")

// CaptureSink bridges server.Backend's quorum flushes into the engine:
// it satisfies server.Dispatcher, so the backend's ingest path hands
// grouped captures off asynchronously instead of running the whole
// localization pipeline inline under the caller.
type CaptureSink struct {
	// Engine executes the localization jobs. Required.
	Engine *Engine
	// Resolve maps a wire AP identifier to its array description;
	// returning nil skips that AP's captures. Required.
	Resolve func(apID uint32) *core.AP
	// Min, Max bound the synthesis search area.
	Min, Max geom.Point
	// OnResult receives every fix or failure; nil discards results.
	OnResult func(Result)
	// OnTrack receives the smoothed track update for every successful
	// fix when the engine runs a Tracker; nil discards them. It fires
	// in addition to OnResult (whose Result carries the same update).
	OnTrack func(TrackUpdate)
	// PriorityInterval throttles the untrusted wire priority flag: at
	// most one latency-lane dispatch per client per interval, the rest
	// downgraded to the batch lane. 0 means DefaultPriorityInterval;
	// negative disables the throttle (trusted feeds only).
	PriorityInterval time.Duration
	// MaxClockSkew guards the track clock against AP clock skew: a
	// capture timestamp more than this far in the server's future is
	// ignored for the job's time selection (newest-capture, region
	// recency) and counted, so one AP with a broken clock cannot steer
	// the Kalman dt or win every region race. The frames themselves
	// still localize. 0 means 10 s; negative disables the guard.
	MaxClockSkew time.Duration
	// Now overrides the skew-guard clock (tests); nil means time.Now.
	Now func() time.Time

	mu       sync.Mutex
	lastPrio map[uint32]time.Time

	skewIgnored atomic.Uint64
}

// SkewIgnored returns how many capture timestamps the clock-skew
// guard has excluded from time selection.
func (s *CaptureSink) SkewIgnored() uint64 { return s.skewIgnored.Load() }

// priorityTableCap bounds the per-client grant table. Client IDs
// arrive from the wire, so without a hard cap a flood of unique IDs
// (spoofed MACs) grows the map without limit — the stale sweep alone
// cannot help when every entry is fresh.
const priorityTableCap = 4096

// allowPriority reports whether a priority dispatch for the client is
// within its rate budget, recording the grant. Server wall-clock time
// is used — capture timestamps are as untrusted as the flag itself.
func (s *CaptureSink) allowPriority(clientID uint32, now time.Time) bool {
	iv := s.PriorityInterval
	if iv < 0 {
		return true
	}
	if iv == 0 {
		iv = DefaultPriorityInterval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if last, ok := s.lastPrio[clientID]; ok && now.Sub(last) < iv {
		return false
	}
	if s.lastPrio == nil {
		s.lastPrio = make(map[uint32]time.Time)
	} else if len(s.lastPrio) >= priorityTableCap {
		// Bound the table against client-ID churn: drop stale grants
		// first, then — if the table is still full of in-interval
		// entries (unique-ID flood) — evict the oldest grants outright.
		// Evicting an in-interval grant re-arms that client's budget
		// early, which is the cheap failure mode; unbounded growth is
		// not.
		for id, at := range s.lastPrio {
			if now.Sub(at) >= iv {
				delete(s.lastPrio, id)
			}
		}
		for len(s.lastPrio) >= priorityTableCap {
			var oldestID uint32
			var oldestAt time.Time
			first := true
			for id, at := range s.lastPrio {
				if first || at.Before(oldestAt) {
					oldestID, oldestAt, first = id, at, false
				}
			}
			delete(s.lastPrio, oldestID)
		}
	}
	s.lastPrio[clientID] = now
	return true
}

// Dispatch groups a flushed capture set per AP (first-seen order,
// several frames per AP) and submits the localization job. A region
// or priority flag on any capture in the flush (the newest such
// capture wins for the region) carries onto the request, so one
// interactive region query rides the engine's latency lane while the
// rest of the flush's traffic batches; the flag is rate-limited per
// client (PriorityInterval) since it arrives from the wire untrusted.
// Records from APs Resolve does not know are discarded entirely —
// frames, timestamps, region, and priority flag alike: a capture
// whose provenance cannot be established must not steer the job (pin
// it to an attacker-chosen box, jump the latency lane, or poison the
// Kalman state with a bogus timestamp). It is called by the backend
// on its ingest path, so it only enqueues — blocking at most on
// engine backpressure, never on the pipeline.
func (s *CaptureSink) Dispatch(clientID uint32, captures []server.Capture) {
	var order []uint32
	byAP := make(map[uint32][]core.FrameCapture)
	newest := make(map[uint32]time.Time)
	resolved := make(map[uint32]*core.AP)
	var region core.Region
	var regionAt time.Time
	var priority, degraded bool
	// Clock-skew guard: compute the admissible-future horizon once per
	// flush. Captures stamped beyond it still localize, but their
	// timestamps are ignored for newest/region selection.
	var horizon time.Time
	if skew := s.MaxClockSkew; skew >= 0 {
		if skew == 0 {
			skew = 10 * time.Second
		}
		now := time.Now
		if s.Now != nil {
			now = s.Now
		}
		horizon = now().Add(skew)
	}
	for _, c := range captures {
		ap, seen := resolved[c.APID]
		if !seen {
			ap = s.Resolve(c.APID)
			resolved[c.APID] = ap
		}
		if ap == nil {
			continue // unknown AP: the record carries no influence
		}
		if _, ok := byAP[c.APID]; !ok {
			order = append(order, c.APID)
		}
		byAP[c.APID] = append(byAP[c.APID], core.FrameCapture{Streams: c.Streams})
		priority = priority || c.Priority
		degraded = degraded || c.Degraded
		if !horizon.IsZero() && c.Timestamp.After(horizon) {
			s.skewIgnored.Add(1)
			continue // skewed stamp: the frames count, the clock does not
		}
		if c.Timestamp.After(newest[c.APID]) {
			newest[c.APID] = c.Timestamp
		}
		if !c.Region.IsZero() && (regionAt.IsZero() || c.Timestamp.After(regionAt)) {
			region, regionAt = c.Region, c.Timestamp
		}
	}
	aps := make([]*core.AP, 0, len(order))
	frames := make([][]core.FrameCapture, 0, len(order))
	// The newest resolved capture timestamp advances the client's
	// track.
	var at time.Time
	for _, id := range order {
		aps = append(aps, resolved[id])
		frames = append(frames, byAP[id])
		if newest[id].After(at) {
			at = newest[id]
		}
	}
	// The sink owns the flushed captures (server.Dispatcher contract):
	// their stream buffers may be borrowed from pooled ingest
	// workspaces, and go back to the pool once the job that consumed
	// them completes — the release hook of the zero-copy ingest path.
	// finish runs exactly once per flush, on every path out.
	finish := func(r Result) {
		if s.OnResult != nil {
			s.OnResult(r)
		}
		if s.OnTrack != nil && r.Track != nil {
			s.OnTrack(*r.Track)
		}
		server.ReleaseAll(captures)
	}
	if len(aps) == 0 {
		finish(Result{ClientID: clientID, Err: ErrNoKnownAP})
		return
	}
	if priority && !s.allowPriority(clientID, time.Now()) {
		priority = false
	}
	req := Request{
		ClientID: clientID, APs: aps, Captures: frames,
		Min: s.Min, Max: s.Max, Time: at,
		Region: region, Priority: priority, Degraded: degraded,
	}
	if err := s.Engine.Submit(req, finish); err != nil {
		finish(Result{ClientID: clientID, Err: err})
	}
}
