package engine_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
)

func rmse(errs []float64) float64 {
	var s float64
	for _, e := range errs {
		s += e * e
	}
	return math.Sqrt(s / float64(len(errs)))
}

// TestTrackerSmoothsNoisyFixes: on a constant-velocity walk with
// Gaussian fix noise, the Kalman track must beat the raw fixes in
// RMSE.
func TestTrackerSmoothsNoisyFixes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := engine.NewTracker(engine.TrackerOptions{ProcessNoise: 0.5, MeasSigma: 0.5, Gate: -1})
	base := time.Unix(1700000000, 0)

	var rawErrs, smoothErrs []float64
	for i := 0; i < 60; i++ {
		truth := geom.Pt(2+0.6*float64(i), 5)
		fix := truth.Add(geom.Vec{X: rng.NormFloat64() * 0.4, Y: rng.NormFloat64() * 0.4})
		upd := tr.Observe(7, fix, base.Add(time.Duration(i)*time.Second))
		if i < 5 {
			continue // let the filter converge before scoring
		}
		rawErrs = append(rawErrs, fix.Dist(truth))
		smoothErrs = append(smoothErrs, upd.Smoothed.Dist(truth))
	}
	r, s := rmse(rawErrs), rmse(smoothErrs)
	t.Logf("raw RMSE %.3f m, smoothed RMSE %.3f m", r, s)
	if s > r {
		t.Fatalf("smoothed RMSE %.3f worse than raw %.3f", s, r)
	}
	if st := tr.Stats(); st.Observed != 60 || st.Clients != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTrackerGateRejectsOutlier: a catastrophic mirror-image fix must
// be gated out, leaving the track near the truth.
func TestTrackerGateRejectsOutlier(t *testing.T) {
	tr := engine.NewTracker(engine.TrackerOptions{MeasSigma: 0.3, Gate: 4})
	base := time.Unix(1700000000, 0)
	for i := 0; i < 10; i++ {
		tr.Observe(1, geom.Pt(5+0.1*float64(i), 5), base.Add(time.Duration(i)*time.Second))
	}
	upd := tr.Observe(1, geom.Pt(35, 14), base.Add(10*time.Second)) // across the building
	if upd.Accepted {
		t.Fatal("outlier fix should be gate-rejected")
	}
	if upd.Smoothed.Dist(geom.Pt(6, 5)) > 1.5 {
		t.Fatalf("track yanked to %v by outlier", upd.Smoothed)
	}
	if st := tr.Stats(); st.GateRejects != 1 {
		t.Fatalf("GateRejects = %d, want 1", st.GateRejects)
	}
}

// TestTrackerEviction: clients whose last fix is older than TTL are
// removed on later observations.
func TestTrackerEviction(t *testing.T) {
	base := time.Unix(1700000000, 0)
	tr := engine.NewTracker(engine.TrackerOptions{TTL: 30 * time.Second,
		Now: func() time.Time { return base.Add(40 * time.Second) }})
	tr.Observe(1, geom.Pt(1, 1), base)
	tr.Observe(2, geom.Pt(2, 2), base.Add(40*time.Second))
	st := tr.Stats()
	if st.Clients != 1 || st.Evicted != 1 {
		t.Fatalf("stats after eviction = %+v, want 1 live / 1 evicted", st)
	}
	if _, ok := tr.Snapshot(1); ok {
		t.Fatal("client 1 should be evicted")
	}
	if _, ok := tr.Snapshot(2); !ok {
		t.Fatal("client 2 should be live")
	}
}

// TestTrackerStaleClientRestartsFresh: a client reappearing after
// more than TTL of silence must get a brand-new track — not a
// constant-velocity extrapolation across the gap — and must remain in
// the live-client map after the observation (regression: the eviction
// sweep used to delete the in-flight client while its stale filter
// absorbed the fix).
func TestTrackerStaleClientRestartsFresh(t *testing.T) {
	base := time.Unix(1700000000, 0)
	tr := engine.NewTracker(engine.TrackerOptions{TTL: 30 * time.Second, Gate: -1})
	// Establish a track moving briskly east.
	for i := 0; i < 5; i++ {
		tr.Observe(1, geom.Pt(5+float64(i), 5), base.Add(time.Duration(i)*time.Second))
	}
	// Long silence, then the client reappears elsewhere.
	upd := tr.Observe(1, geom.Pt(20, 10), base.Add(2*time.Minute))
	if upd.Smoothed != geom.Pt(20, 10) {
		t.Fatalf("stale track must restart at the fix, got %v", upd.Smoothed)
	}
	if upd.Vel != (geom.Vec{}) {
		t.Fatalf("restarted track must have zero velocity, got %v", upd.Vel)
	}
	st := tr.Stats()
	if st.Clients != 1 {
		t.Fatalf("client must remain tracked after restart, Clients=%d", st.Clients)
	}
	if st.Evicted != 1 {
		t.Fatalf("stale restart must count as an eviction, Evicted=%d", st.Evicted)
	}
	// And the restarted track keeps working.
	upd = tr.Observe(1, geom.Pt(20.5, 10), base.Add(2*time.Minute+time.Second))
	if !upd.Accepted || upd.Smoothed.Dist(geom.Pt(20.25, 10)) > 0.3 {
		t.Fatalf("restarted track misbehaves: %+v", upd)
	}
}

// TestTrackerSnapshotReportsRealState (regression): Snapshot used to
// hardcode Accepted: true and skip the TTL check, so the introspection
// path reported a gate-rejected track as healthy and a stale track —
// one Observe would restart and Predict already refused — as live.
func TestTrackerSnapshotReportsRealState(t *testing.T) {
	base := time.Unix(1700000000, 0)
	now := base
	tr := engine.NewTracker(engine.TrackerOptions{MeasSigma: 0.3, Gate: 4,
		TTL: 30 * time.Second, Now: func() time.Time { return now }})
	for i := 0; i < 10; i++ {
		tr.Observe(1, geom.Pt(5+0.1*float64(i), 5), base.Add(time.Duration(i)*time.Second))
	}
	now = base.Add(9 * time.Second)
	snap, ok := tr.Snapshot(1)
	if !ok || !snap.Accepted {
		t.Fatalf("healthy track snapshot = %+v, %v; want live and accepted", snap, ok)
	}

	// A gate-rejected last fix must show up as Accepted: false.
	now = base.Add(10 * time.Second)
	if upd := tr.Observe(1, geom.Pt(35, 14), now); upd.Accepted {
		t.Fatal("outlier fix should be gate-rejected")
	}
	snap, ok = tr.Snapshot(1)
	if !ok {
		t.Fatal("gated track must still be live")
	}
	if snap.Accepted {
		t.Fatal("Snapshot reported Accepted for a gate-rejected last fix")
	}

	// Past TTL the track is stale: Predict refuses it, so Snapshot must
	// too instead of presenting a track Observe would restart.
	now = base.Add(2 * time.Minute)
	if _, ok := tr.Snapshot(1); ok {
		t.Fatal("TTL-stale track still visible via Snapshot")
	}
}

// TestTrackerOutOfOrderFix: a fix older than the track's last
// timestamp must fold in with dt=0 instead of erroring or rewinding.
func TestTrackerOutOfOrderFix(t *testing.T) {
	base := time.Unix(1700000000, 0)
	tr := engine.NewTracker(engine.TrackerOptions{Gate: -1,
		Now: func() time.Time { return base.Add(10 * time.Second) }})
	tr.Observe(1, geom.Pt(5, 5), base.Add(10*time.Second))
	upd := tr.Observe(1, geom.Pt(5.1, 5), base.Add(5*time.Second))
	if !upd.Accepted {
		t.Fatal("out-of-order fix should still be folded in")
	}
	if snap, _ := tr.Snapshot(1); !snap.Time.Equal(base.Add(10 * time.Second)) {
		t.Fatalf("track time rewound to %v", snap.Time)
	}
}

// TestTrackerSubscribe: updates stream to subscribers, slow consumers
// drop rather than block, and cancel is idempotent.
func TestTrackerSubscribe(t *testing.T) {
	tr := engine.NewTracker(engine.TrackerOptions{})
	ch, cancel := tr.Subscribe(2)
	base := time.Unix(1700000000, 0)
	for i := 0; i < 5; i++ { // more than the buffer holds
		tr.Observe(9, geom.Pt(float64(i), 0), base.Add(time.Duration(i)*time.Second))
	}
	upd := <-ch
	if upd.ClientID != 9 || upd.Raw != geom.Pt(0, 0) {
		t.Fatalf("first update = %+v", upd)
	}
	cancel()
	cancel() // idempotent
	if _, open := <-ch; open {
		// one buffered update may remain; drain until close
		for range ch {
		}
	}
	tr.Observe(9, geom.Pt(9, 9), base.Add(time.Minute)) // must not panic on closed sub
}

// TestEngineTrackerIndependentConcurrentClients is the engine-level
// race test: many clients submitting concurrently must each get an
// independent track that converges on their own (stationary) position,
// with no cross-talk. Run under -race in CI.
func TestEngineTrackerIndependentConcurrentClients(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	tr := engine.NewTracker(engine.TrackerOptions{MeasSigma: 0.5, Gate: -1})
	eng := engine.New(engine.Options{Workers: 8, Config: cfg, Tracker: tr})
	defer eng.Close()

	sub, cancelSub := tr.Subscribe(1024)
	defer cancelSub()

	const clients = 16
	const steps = 4
	base := time.Unix(1700000000, 0)

	firstFix := make([]geom.Point, clients)
	lastTrack := make([]geom.Point, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Identical captures per step → a stationary, per-client
			// deterministic fix the track must converge to.
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			captures := [][]core.FrameCapture{
				{{Streams: mkStreams(rng)}},
				{{Streams: mkStreams(rng)}},
			}
			for s := 0; s < steps; s++ {
				r := eng.Locate(engine.Request{
					ClientID: uint32(c + 1),
					APs:      aps,
					Captures: captures,
					Min:      geom.Pt(0, 0),
					Max:      geom.Pt(6, 4),
					Time:     base.Add(time.Duration(s) * time.Second),
				})
				if r.Err != nil {
					errs <- fmt.Errorf("client %d step %d: %w", c+1, s, r.Err)
					return
				}
				if r.Track == nil {
					errs <- fmt.Errorf("client %d step %d: no track update", c+1, s)
					return
				}
				if r.Track.ClientID != uint32(c+1) {
					errs <- fmt.Errorf("client %d got track for client %d", c+1, r.Track.ClientID)
					return
				}
				if s == 0 {
					firstFix[c] = r.Pos
				} else if r.Pos != firstFix[c] {
					errs <- fmt.Errorf("client %d: fix moved between identical captures", c+1)
					return
				}
				lastTrack[c] = r.Track.Smoothed
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for c := 0; c < clients; c++ {
		if d := lastTrack[c].Dist(firstFix[c]); d > 0.3 {
			t.Errorf("client %d: track %v drifted %.2f m from its stationary fix %v — cross-talk?",
				c+1, lastTrack[c], d, firstFix[c])
		}
	}

	st := eng.Stats()
	if st.TrackedClients != clients {
		t.Fatalf("TrackedClients = %d, want %d", st.TrackedClients, clients)
	}
	if st.Submitted != clients*steps || st.Completed != clients*steps || st.Fixes != clients*steps {
		t.Fatalf("counters: %+v", st)
	}
	if ts := tr.Stats(); ts.Observed != clients*steps {
		t.Fatalf("tracker observed %d, want %d", ts.Observed, clients*steps)
	}

	// The subscription must have streamed every update.
	cancelSub()
	got := 0
	for range sub {
		got++
	}
	if got != clients*steps {
		t.Fatalf("subscription delivered %d updates, want %d", got, clients*steps)
	}
}
