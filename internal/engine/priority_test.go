package engine_test

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/server"
)

// TestEngineRegionMatchesDirect: a region request through the engine
// must produce exactly the fix the pipeline produces directly, and
// the region must actually constrain the result.
func TestEngineRegionMatchesDirect(t *testing.T) {
	tb, reqs := testbedRequests(t, 2)
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = 0.25
	cfg.SynthCache = core.NewSynthCacheBudget(64 << 20)

	eng := engine.New(engine.Options{Workers: 2, Config: cfg})
	defer eng.Close()

	req := reqs[0]
	req.Region = core.Region{Min: geom.Pt(1, 1), Max: geom.Pt(12, 9)}
	r := eng.Locate(req)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Pos.X < req.Region.Min.X || r.Pos.X > req.Region.Max.X ||
		r.Pos.Y < req.Region.Min.Y || r.Pos.Y > req.Region.Max.Y {
		t.Fatalf("region fix %v escaped box", r.Pos)
	}
	// Engine workers clamp SynthWorkers to 1 for batch jobs; the
	// direct reference must use the same effective config.
	direct := cfg
	direct.APWorkers = 1
	direct.SynthWorkers = 1
	pos, _, err := core.LocateClientRegion(req.APs, req.Captures, req.Min, req.Max, req.Region, direct)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pos != pos {
		t.Fatalf("engine region fix %v != direct region fix %v", r.Pos, pos)
	}

	// A priority region request must agree too (surface sharding does
	// not change the surface; pinned bit-identical in core).
	req.Priority = true
	rp := eng.Locate(req)
	if rp.Err != nil {
		t.Fatal(rp.Err)
	}
	if rp.Pos != pos {
		t.Fatalf("priority region fix %v != direct region fix %v", rp.Pos, pos)
	}

	st := eng.Stats()
	if st.PrioritySubmitted != 1 {
		t.Fatalf("PrioritySubmitted = %d, want 1", st.PrioritySubmitted)
	}
	if st.SynthBudget != 64<<20 {
		t.Fatalf("SynthBudget = %d, want %d", st.SynthBudget, int64(64<<20))
	}
	if st.SynthBytes <= 0 || st.SynthBytes > st.SynthBudget {
		t.Fatalf("SynthBytes = %d outside (0, budget]", st.SynthBytes)
	}
	if st.SynthMisses == 0 {
		t.Fatal("expected synthesis cache misses after first fixes")
	}
}

// TestEngineRejectsBadRegion: malformed regions fail the job with a
// wrapped core.ErrBadRegion and count as failures, not panics.
func TestEngineRejectsBadRegion(t *testing.T) {
	tb, reqs := testbedRequests(t, 1)
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = 0.25
	eng := engine.New(engine.Options{Workers: 1, Config: cfg})
	defer eng.Close()

	req := reqs[0]
	req.Region = core.Region{Min: geom.Pt(9, 9), Max: geom.Pt(2, 2)} // inverted
	r := eng.Locate(req)
	if !errors.Is(r.Err, core.ErrBadRegion) {
		t.Fatalf("inverted region: err = %v, want core.ErrBadRegion", r.Err)
	}
	if st := eng.Stats(); st.Failures != 1 {
		t.Fatalf("stats %+v, want 1 failure", st)
	}
}

// TestEnginePriorityJumpsQueue floods the batch lane of a one-worker
// engine, then submits a single priority job: the worker must pick it
// up ahead of the queued batch backlog.
func TestEnginePriorityJumpsQueue(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	const batch = 48
	eng := engine.New(engine.Options{Workers: 1, Queue: batch + 8, Config: cfg})
	defer eng.Close()

	rng := rand.New(rand.NewSource(11))
	mkReq := func(id uint32, prio bool) engine.Request {
		return engine.Request{
			ClientID: id,
			APs:      aps,
			Captures: [][]core.FrameCapture{
				{{Streams: mkStreams(rng)}},
				{{Streams: mkStreams(rng)}},
			},
			Min:      geom.Pt(0, 0),
			Max:      geom.Pt(6, 4),
			Priority: prio,
		}
	}

	var order []uint32
	var mu sync.Mutex
	var wg sync.WaitGroup
	record := func(r engine.Result) {
		mu.Lock()
		order = append(order, r.ClientID)
		mu.Unlock()
		wg.Done()
	}
	for i := 0; i < batch; i++ {
		wg.Add(1)
		if err := eng.Submit(mkReq(uint32(i+1), false), record); err != nil {
			t.Fatal(err)
		}
	}
	wg.Add(1)
	if err := eng.Submit(mkReq(1000, true), record); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	pos := -1
	for i, id := range order {
		if id == 1000 {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("priority job never completed")
	}
	// The worker had at most a few batch jobs in flight before the
	// priority submit landed; anything near the back of the backlog
	// means the lane was ignored.
	if pos > batch/2 {
		t.Fatalf("priority job completed at position %d of %d — batch backlog was not jumped", pos, len(order))
	}
	t.Logf("priority job completed at position %d of %d", pos, len(order))
}

// TestEnginePriorityDrainOnClose: jobs in both lanes complete across
// Close, none lost, none double-delivered.
func TestEnginePriorityDrainOnClose(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	eng := engine.New(engine.Options{Workers: 2, Queue: 64, PriorityQueue: 16, Config: cfg})

	rng := rand.New(rand.NewSource(12))
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		req := engine.Request{
			ClientID: uint32(i + 1),
			APs:      aps,
			Captures: [][]core.FrameCapture{
				{{Streams: mkStreams(rng)}},
				{{Streams: mkStreams(rng)}},
			},
			Min:      geom.Pt(0, 0),
			Max:      geom.Pt(6, 4),
			Priority: i%3 == 0,
		}
		if err := eng.Submit(req, func(engine.Result) { done.Add(1); wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close() // drains both lanes
	wg.Wait()
	if n := done.Load(); n != 24 {
		t.Fatalf("%d callbacks after Close, want 24", n)
	}
}

// TestCaptureSinkThreadsRegionAndPriority: a v2 capture's region and
// priority flags ride the flush into the engine request.
func TestCaptureSinkThreadsRegionAndPriority(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	eng := engine.New(engine.Options{Workers: 1, Config: cfg})
	defer eng.Close()
	results := make(chan engine.Result, 1)
	sink := &engine.CaptureSink{
		Engine:   eng,
		Resolve:  func(apID uint32) *core.AP { return aps[apID-1] },
		Min:      geom.Pt(0, 0),
		Max:      geom.Pt(6, 4),
		OnResult: func(r engine.Result) { results <- r },
	}
	rng := rand.New(rand.NewSource(13))
	region := core.Region{Min: geom.Pt(1, 1), Max: geom.Pt(3, 3)}
	now := time.Now()
	sink.Dispatch(21, []server.Capture{
		{APID: 1, ClientID: 21, Timestamp: now, Streams: mkStreams(rng)},
		{APID: 2, ClientID: 21, Timestamp: now.Add(time.Millisecond), Streams: mkStreams(rng), Region: region, Priority: true},
	})
	r := <-results
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Pos.X < region.Min.X || r.Pos.X > region.Max.X || r.Pos.Y < region.Min.Y || r.Pos.Y > region.Max.Y {
		t.Fatalf("sink-dispatched region fix %v escaped box", r.Pos)
	}
	if st := eng.Stats(); st.PrioritySubmitted != 1 {
		t.Fatalf("PrioritySubmitted = %d, want 1 (sink did not thread the flag)", st.PrioritySubmitted)
	}
}

// TestCaptureSinkThrottlesPriorityFlag: the wire priority flag is
// untrusted, so back-to-back priority flushes for one client are
// downgraded to the batch lane (still localized, never dropped);
// distinct clients keep their own budgets.
func TestCaptureSinkThrottlesPriorityFlag(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	eng := engine.New(engine.Options{Workers: 1, Config: cfg})
	defer eng.Close()
	results := make(chan engine.Result, 8)
	sink := &engine.CaptureSink{
		Engine:   eng,
		Resolve:  func(apID uint32) *core.AP { return aps[apID-1] },
		Min:      geom.Pt(0, 0),
		Max:      geom.Pt(6, 4),
		OnResult: func(r engine.Result) { results <- r },
	}
	rng := rand.New(rand.NewSource(14))
	flush := func(client uint32) []server.Capture {
		return []server.Capture{
			{APID: 1, ClientID: client, Timestamp: time.Now(), Streams: mkStreams(rng), Priority: true},
			{APID: 2, ClientID: client, Timestamp: time.Now(), Streams: mkStreams(rng)},
		}
	}
	for i := 0; i < 3; i++ { // one grant, two downgrades for client 8
		sink.Dispatch(8, flush(8))
	}
	sink.Dispatch(9, flush(9)) // distinct client: its own grant
	for i := 0; i < 4; i++ {
		if r := <-results; r.Err != nil {
			t.Fatalf("downgraded flush must still localize: %v", r.Err)
		}
	}
	if st := eng.Stats(); st.PrioritySubmitted != 2 || st.Completed != 4 {
		t.Fatalf("stats %+v: want 2 priority grants (one per client) of 4 completed", st)
	}

	// A negative interval disables the throttle for trusted feeds.
	trusted := &engine.CaptureSink{
		Engine:           eng,
		Resolve:          func(apID uint32) *core.AP { return aps[apID-1] },
		Min:              geom.Pt(0, 0),
		Max:              geom.Pt(6, 4),
		OnResult:         func(r engine.Result) { results <- r },
		PriorityInterval: -1,
	}
	trusted.Dispatch(8, flush(8))
	trusted.Dispatch(8, flush(8))
	for i := 0; i < 2; i++ {
		if r := <-results; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if st := eng.Stats(); st.PrioritySubmitted != 4 {
		t.Fatalf("PrioritySubmitted = %d, want 4 with throttle disabled", st.PrioritySubmitted)
	}
}
