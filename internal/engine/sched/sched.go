// Package sched is the engine's scheduler subsystem: the admission
// and ordering policy for localization jobs, extracted from the
// engine's original two-channel hack into a real queue with three
// properties the open-network deployment needs:
//
//   - per-client token quotas spanning both lanes — one client (or a
//     compromised AP feed) can hold at most ClientQuota jobs admitted
//     but not yet completed, batch and priority combined, so a flood
//     from one identity cannot crowd every other client out of the
//     queue;
//   - queue ageing — workers prefer the latency lane, but a batch job
//     whose head-of-line wait exceeds AgeLimit is served ahead of
//     waiting priority traffic, so a sustained priority flood delays
//     batch work by a bounded amount instead of starving it;
//   - cooperative steal — TryPriority lets a worker that is mid-way
//     through a batch surface pick up a waiting priority job at a
//     yield point and run it inline, preempting the batch fix by
//     tens of microseconds instead of the 20–50 ms a full in-flight
//     synthesis would otherwise pin the worker for.
//
// The queue is deliberately payload-agnostic (Payload any): ordering
// policy lives here, localization lives in the engine.
package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Push after Close.
var ErrClosed = errors.New("sched: queue closed")

// ErrQuota is returned by Push when the client already holds its full
// quota of admitted-but-uncompleted jobs.
var ErrQuota = errors.New("sched: client quota exceeded")

// DefaultAgeLimit bounds how long a batch job can wait behind the
// latency lane before it is served anyway. A batch fix costs tens of
// milliseconds, so a few fixes' worth keeps the lane responsive while
// guaranteeing batch progress under a priority flood.
const DefaultAgeLimit = 200 * time.Millisecond

// Item is one scheduled unit of work.
type Item struct {
	// Client is the quota identity the item is accounted against.
	Client uint32
	// Priority selects the latency lane.
	Priority bool
	// Payload is the caller's job; the queue never inspects it.
	Payload any
	// enqueued is stamped by Push and drives ageing.
	enqueued time.Time
}

// Options configures a Queue. The zero value is usable: unbounded
// quotas, DefaultAgeLimit ageing, wall-clock time.
type Options struct {
	// BatchDepth is the batch lane's capacity; Push blocks while the
	// lane is full (backpressure). 0 means 64.
	BatchDepth int
	// PriorityDepth is the latency lane's capacity; 0 means 16. Kept
	// shallow by callers: the lane exists for single interactive
	// fixes.
	PriorityDepth int
	// ClientQuota is the per-client token budget across both lanes: a
	// client may hold at most this many jobs admitted but not yet
	// released with Done. 0 means unlimited (closed deployments).
	ClientQuota int
	// AgeLimit is the head-of-line wait beyond which a batch job is
	// served ahead of queued priority traffic. 0 means
	// DefaultAgeLimit; negative disables ageing (strict priority).
	AgeLimit time.Duration
	// Now overrides the clock, for tests. nil means time.Now.
	Now func() time.Time
}

// Stats is a snapshot of queue counters.
type Stats struct {
	// Pushed and PushedPriority count admissions (priority included in
	// Pushed).
	Pushed, PushedPriority uint64
	// Aged counts batch jobs served ahead of waiting priority traffic
	// because their head-of-line wait exceeded AgeLimit.
	Aged uint64
	// QuotaRejected counts pushes refused with ErrQuota.
	QuotaRejected uint64
	// Stolen counts priority jobs handed out through TryPriority — a
	// batch worker preempting its own surface at a yield point.
	Stolen uint64
	// BatchQueued and PriorityQueued are instantaneous lane depths.
	BatchQueued, PriorityQueued int
	// Clients is the number of identities currently holding tokens.
	Clients int
}

// fifo is a slice-backed FIFO that reuses its backing array.
type fifo struct {
	items []Item
	head  int
}

func (f *fifo) len() int { return len(f.items) - f.head }

func (f *fifo) push(it Item) { f.items = append(f.items, it) }

func (f *fifo) peek() *Item { return &f.items[f.head] }

func (f *fifo) pop() Item {
	it := f.items[f.head]
	f.items[f.head] = Item{} // release the payload reference
	f.head++
	if f.head == len(f.items) {
		f.items = f.items[:0]
		f.head = 0
	} else if f.head > 256 && f.head*2 > len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
	return it
}

// Queue is the two-lane scheduler. All methods are safe for
// concurrent use.
type Queue struct {
	opt Options

	mu       sync.Mutex
	notEmpty *sync.Cond // poppers wait here
	space    *sync.Cond // pushers blocked on a full lane wait here
	batch    fifo
	prio     fifo
	tokens   map[uint32]int // admitted-but-not-Done count per client
	closed   bool

	// prioLen mirrors prio.len() so the yield fast path costs one
	// atomic load, not a mutex.
	prioLen atomic.Int32

	pushed     atomic.Uint64
	pushedPrio atomic.Uint64
	aged       atomic.Uint64
	quotaRej   atomic.Uint64
	stolen     atomic.Uint64
}

// New returns a queue with the given options.
func New(opt Options) *Queue {
	if opt.BatchDepth <= 0 {
		opt.BatchDepth = 64
	}
	if opt.PriorityDepth <= 0 {
		opt.PriorityDepth = 16
	}
	if opt.AgeLimit == 0 {
		opt.AgeLimit = DefaultAgeLimit
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	q := &Queue{opt: opt, tokens: make(map[uint32]int)}
	q.notEmpty = sync.NewCond(&q.mu)
	q.space = sync.NewCond(&q.mu)
	return q
}

// Push admits an item, blocking while its lane is full. It returns
// ErrClosed after Close and ErrQuota when the client's token budget
// is exhausted (the caller decides whether that fails the job or
// retries later; the queue never blocks on quota, or a hostile client
// could park goroutines forever).
func (q *Queue) Push(it Item) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return ErrClosed
		}
		if quota := q.opt.ClientQuota; quota > 0 && q.tokens[it.Client] >= quota {
			q.quotaRej.Add(1)
			return ErrQuota
		}
		if it.Priority {
			if q.prio.len() < q.opt.PriorityDepth {
				break
			}
		} else if q.batch.len() < q.opt.BatchDepth {
			break
		}
		q.space.Wait()
	}
	it.enqueued = q.opt.Now()
	q.tokens[it.Client]++
	if it.Priority {
		q.prio.push(it)
		q.prioLen.Add(1)
		q.pushedPrio.Add(1)
	} else {
		q.batch.push(it)
	}
	q.pushed.Add(1)
	q.notEmpty.Signal()
	return nil
}

// Pop dequeues the next item by policy — latency lane first, unless
// the batch head has aged past AgeLimit — blocking while both lanes
// are empty. After Close it drains what remains, then reports false.
func (q *Queue) Pop() (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.prio.len() == 0 && q.batch.len() == 0 {
		if q.closed {
			return Item{}, false
		}
		q.notEmpty.Wait()
	}
	return q.popLocked(), true
}

func (q *Queue) popLocked() Item {
	if q.batch.len() > 0 {
		if q.prio.len() == 0 {
			q.space.Broadcast()
			return q.batch.pop()
		}
		if q.opt.AgeLimit > 0 && q.opt.Now().Sub(q.batch.peek().enqueued) >= q.opt.AgeLimit {
			q.aged.Add(1)
			q.space.Broadcast()
			return q.batch.pop()
		}
	}
	it := q.prio.pop()
	q.prioLen.Add(-1)
	q.space.Broadcast()
	return it
}

// TryPriority hands out a waiting priority item without blocking —
// the cooperative steal a batch worker performs at a synthesis yield
// point. The fast path (empty lane) is one atomic load.
func (q *Queue) TryPriority() (Item, bool) {
	if q.prioLen.Load() == 0 {
		return Item{}, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.prio.len() == 0 {
		return Item{}, false
	}
	it := q.prio.pop()
	q.prioLen.Add(-1)
	q.stolen.Add(1)
	q.space.Broadcast()
	return it, true
}

// SetClientQuota hot-reloads the per-client token budget (0 =
// unlimited). A lowered quota never cancels admitted jobs: clients over
// the new budget simply cannot push again until enough of their jobs
// complete. Pushers blocked on a full lane re-check against the new
// value when they wake.
func (q *Queue) SetClientQuota(n int) {
	if n < 0 {
		n = 0
	}
	q.mu.Lock()
	q.opt.ClientQuota = n
	q.mu.Unlock()
}

// SetAgeLimit hot-reloads the batch-ageing bound with the same
// semantics as Options.AgeLimit: 0 means DefaultAgeLimit, negative
// disables ageing (strict priority). Takes effect on the next Pop.
func (q *Queue) SetAgeLimit(d time.Duration) {
	if d == 0 {
		d = DefaultAgeLimit
	}
	q.mu.Lock()
	q.opt.AgeLimit = d
	q.mu.Unlock()
}

// ClientQuota returns the live per-client token budget (0 =
// unlimited).
func (q *Queue) ClientQuota() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.opt.ClientQuota
}

// AgeLimit returns the live ageing bound (negative = disabled).
func (q *Queue) AgeLimit() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.opt.AgeLimit
}

// InFlight returns one client's admitted-but-not-completed job count
// — tokens held since Push and not yet returned with Done. A cluster
// migration uses it to wait until a moving client's jobs have fully
// folded into the tracker before snapshotting its state.
func (q *Queue) InFlight(client uint32) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.tokens[client]
}

// Done returns a client's token, releasing quota held since Push.
// Call it exactly once per popped (or stolen) item, after the job
// completes.
func (q *Queue) Done(client uint32) {
	q.mu.Lock()
	if n := q.tokens[client]; n > 1 {
		q.tokens[client] = n - 1
	} else {
		delete(q.tokens, client)
	}
	q.mu.Unlock()
}

// Close stops admissions and wakes every waiter. Items already queued
// remain poppable (drain), after which Pop reports false.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.space.Broadcast()
}

// PendingPriority reports whether the latency lane is non-empty (one
// atomic load; the yield-point fast path).
func (q *Queue) PendingPriority() bool { return q.prioLen.Load() > 0 }

// Stats returns a snapshot of the queue's counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	s := Stats{
		BatchQueued:    q.batch.len(),
		PriorityQueued: q.prio.len(),
		Clients:        len(q.tokens),
	}
	q.mu.Unlock()
	s.Pushed = q.pushed.Load()
	s.PushedPriority = q.pushedPrio.Load()
	s.Aged = q.aged.Load()
	s.QuotaRejected = q.quotaRej.Load()
	s.Stolen = q.stolen.Load()
	return s
}
