package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPopPrefersPriority(t *testing.T) {
	q := New(Options{})
	for i := 0; i < 3; i++ {
		if err := q.Push(Item{Client: 1, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push(Item{Client: 2, Priority: true, Payload: "prio"}); err != nil {
		t.Fatal(err)
	}
	it, ok := q.Pop()
	if !ok || it.Payload != "prio" {
		t.Fatalf("Pop = %+v, want the priority item first", it)
	}
	for i := 0; i < 3; i++ {
		it, ok := q.Pop()
		if !ok || it.Payload != i {
			t.Fatalf("batch pop %d = %+v, want FIFO order", i, it)
		}
	}
}

// TestAgeingPromotesBatchHead: with a continuously non-empty priority
// lane, a batch item older than AgeLimit is served anyway — the
// bounded-wait guarantee.
func TestAgeingPromotesBatchHead(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	q := New(Options{AgeLimit: 100 * time.Millisecond, Now: clock})
	if err := q.Push(Item{Client: 1, Payload: "batch"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := q.Push(Item{Client: 2, Priority: true, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Young batch head: priority first.
	it, _ := q.Pop()
	if it.Payload != 0 {
		t.Fatalf("young batch head must not jump priority, got %+v", it)
	}
	// Age the batch head past the limit: it is served next even though
	// priority items wait.
	now = now.Add(150 * time.Millisecond)
	it, _ = q.Pop()
	if it.Payload != "batch" {
		t.Fatalf("aged batch head not promoted, got %+v", it)
	}
	if s := q.Stats(); s.Aged != 1 {
		t.Fatalf("Aged = %d, want 1", s.Aged)
	}
	// Remaining priority items drain in order.
	for want := 1; want <= 3; want++ {
		it, _ = q.Pop()
		if it.Payload != want {
			t.Fatalf("priority drain got %+v, want %d", it, want)
		}
	}
}

// TestAgeingDisabled: negative AgeLimit restores strict
// priority-first ordering.
func TestAgeingDisabled(t *testing.T) {
	now := time.Unix(1000, 0)
	q := New(Options{AgeLimit: -1, Now: func() time.Time { return now }})
	q.Push(Item{Client: 1, Payload: "batch"})
	q.Push(Item{Client: 2, Priority: true, Payload: "prio"})
	now = now.Add(time.Hour)
	it, _ := q.Pop()
	if it.Payload != "prio" {
		t.Fatalf("ageing disabled but batch jumped: %+v", it)
	}
}

func TestClientQuotaSpansLanes(t *testing.T) {
	q := New(Options{ClientQuota: 2})
	if err := q.Push(Item{Client: 7}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(Item{Client: 7, Priority: true}); err != nil {
		t.Fatal(err)
	}
	// Third admission for the same client, either lane: quota.
	if err := q.Push(Item{Client: 7}); err != ErrQuota {
		t.Fatalf("third batch push = %v, want ErrQuota", err)
	}
	if err := q.Push(Item{Client: 7, Priority: true}); err != ErrQuota {
		t.Fatalf("third priority push = %v, want ErrQuota", err)
	}
	// Other clients are unaffected.
	if err := q.Push(Item{Client: 8}); err != nil {
		t.Fatalf("other client rejected: %v", err)
	}
	// Tokens are held across Pop and released by Done: the priority
	// item (client 7's) pops first.
	it, _ := q.Pop()
	if it.Client != 7 {
		t.Fatalf("popped client %d, want 7's priority item first", it.Client)
	}
	if err := q.Push(Item{Client: 7}); err != ErrQuota {
		t.Fatalf("popped-but-not-Done must still hold the token, got %v", err)
	}
	q.Done(7)
	if err := q.Push(Item{Client: 7}); err != nil {
		t.Fatalf("Done did not release the token: %v", err)
	}
	if s := q.Stats(); s.QuotaRejected != 3 {
		t.Fatalf("QuotaRejected = %d, want 3", s.QuotaRejected)
	}
}

func TestTryPrioritySteal(t *testing.T) {
	q := New(Options{})
	if _, ok := q.TryPriority(); ok {
		t.Fatal("TryPriority on empty lane must fail")
	}
	q.Push(Item{Client: 1, Payload: "batch"})
	if _, ok := q.TryPriority(); ok {
		t.Fatal("TryPriority must never hand out batch work")
	}
	q.Push(Item{Client: 2, Priority: true, Payload: "prio"})
	if !q.PendingPriority() {
		t.Fatal("PendingPriority false with a queued priority item")
	}
	it, ok := q.TryPriority()
	if !ok || it.Payload != "prio" {
		t.Fatalf("TryPriority = %+v %v", it, ok)
	}
	if q.PendingPriority() {
		t.Fatal("PendingPriority true after the lane drained")
	}
	if s := q.Stats(); s.Stolen != 1 {
		t.Fatalf("Stolen = %d, want 1", s.Stolen)
	}
}

func TestCloseDrains(t *testing.T) {
	q := New(Options{})
	q.Push(Item{Client: 1, Payload: 1})
	q.Push(Item{Client: 2, Priority: true, Payload: 2})
	q.Close()
	if err := q.Push(Item{Client: 3}); err != ErrClosed {
		t.Fatalf("Push after Close = %v", err)
	}
	seen := 0
	for {
		_, ok := q.Pop()
		if !ok {
			break
		}
		seen++
	}
	if seen != 2 {
		t.Fatalf("drained %d items, want 2", seen)
	}
}

// TestBackpressureBlocksAndUnblocks: Push blocks on a full batch lane
// until a Pop frees a slot.
func TestBackpressureBlocksAndUnblocks(t *testing.T) {
	q := New(Options{BatchDepth: 1})
	q.Push(Item{Client: 1, Payload: 0})
	released := make(chan struct{})
	go func() {
		q.Push(Item{Client: 1, Payload: 1})
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("Push returned with a full lane")
	case <-time.After(20 * time.Millisecond):
	}
	if it, _ := q.Pop(); it.Payload != 0 {
		t.Fatal("FIFO order broken")
	}
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("Push never unblocked after Pop")
	}
}

// TestConcurrentChurn hammers the queue from many producers and
// consumers under -race: every admitted item is popped exactly once,
// tokens drain to zero.
func TestConcurrentChurn(t *testing.T) {
	q := New(Options{BatchDepth: 32, PriorityDepth: 8, ClientQuota: 4})
	const producers = 8
	const perProducer = 200
	var admitted, popped, rejected atomic.Int64

	var consumers sync.WaitGroup
	for c := 0; c < 4; c++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				it, ok := q.Pop()
				if !ok {
					return
				}
				popped.Add(1)
				q.Done(it.Client)
			}
		}()
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				err := q.Push(Item{Client: uint32(p % 3), Priority: i%5 == 0})
				switch err {
				case nil:
					admitted.Add(1)
				case ErrQuota:
					rejected.Add(1)
				default:
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	q.Close()
	consumers.Wait()
	if admitted.Load() != popped.Load() {
		t.Fatalf("admitted %d != popped %d", admitted.Load(), popped.Load())
	}
	if s := q.Stats(); s.Clients != 0 || s.BatchQueued != 0 || s.PriorityQueued != 0 {
		t.Fatalf("queue not drained: %+v", s)
	}
	t.Logf("admitted %d, quota-rejected %d", admitted.Load(), rejected.Load())
}

// TestNoStarvationUnderPriorityFlood is the scheduler-level fairness
// property: with a hostile client keeping the priority lane non-empty
// for the whole run, two well-behaved batch clients still complete
// every job, each within the ageing bound of its turn.
func TestNoStarvationUnderPriorityFlood(t *testing.T) {
	const ageLimit = 20 * time.Millisecond
	q := New(Options{AgeLimit: ageLimit, PriorityDepth: 64, ClientQuota: 8})

	stop := make(chan struct{})
	var flood sync.WaitGroup
	flood.Add(1)
	go func() { // hostile client 99: refill the lane forever
		defer flood.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := q.Push(Item{Client: 99, Priority: true}); err != nil {
				if err == ErrQuota {
					time.Sleep(time.Millisecond)
					continue
				}
				return
			}
		}
	}()

	type batchDone struct {
		client uint32
		wait   time.Duration
	}
	results := make(chan batchDone, 8)
	var consumers sync.WaitGroup
	consumers.Add(1)
	go func() { // one worker: jobs take ~1ms each
		defer consumers.Done()
		for {
			it, ok := q.Pop()
			if !ok {
				return
			}
			time.Sleep(time.Millisecond)
			q.Done(it.Client)
			if !it.Priority {
				start := it.Payload.(time.Time)
				results <- batchDone{it.Client, time.Since(start)}
			}
		}
	}()

	// Two well-behaved batch clients, four jobs each.
	for i := 0; i < 4; i++ {
		for _, c := range []uint32{1, 2} {
			if err := q.Push(Item{Client: c, Payload: time.Now()}); err != nil {
				t.Fatal(err)
			}
		}
	}
	waits := map[uint32]int{}
	deadline := time.After(10 * time.Second)
	for n := 0; n < 8; n++ {
		select {
		case r := <-results:
			waits[r.client]++
			// Bounded wait: each job is behind at most 7 other batch
			// jobs, each of which must age out (≤ ageLimit) and run
			// (~1ms) with priority steals (~1ms each) interleaved.
			// 8×(ageLimit+10ms) is a loose, non-flaky ceiling; without
			// ageing the wait would be unbounded (the flood never stops).
			if limit := 8 * (ageLimit + 10*time.Millisecond); r.wait > limit {
				t.Errorf("client %d batch job waited %v, want < %v", r.client, r.wait, limit)
			}
		case <-deadline:
			t.Fatalf("starved: only %d/8 batch jobs completed under priority flood", n)
		}
	}
	if waits[1] != 4 || waits[2] != 4 {
		t.Fatalf("per-client completions %v, want 4 each", waits)
	}
	close(stop)
	flood.Wait()
	q.Close()
	consumers.Wait()
	if s := q.Stats(); s.Aged == 0 {
		t.Fatal("ageing never promoted a batch job during the flood")
	}
}
