package engine_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/server"
)

// TestTrackerClockSkewGuard is the skewed-clock-AP regression test: a
// fix stamped an hour in the future (one AP's clock is broken) must
// not fast-forward the Kalman dt — it is clamped to the tracker's
// clock and counted — and a fix stamped behind the track folds in at
// dt = 0 and is counted NonMonotonic, never rejected.
func TestTrackerClockSkewGuard(t *testing.T) {
	base := time.Unix(1700000000, 0).UTC()
	now := base
	tr := engine.NewTracker(engine.TrackerOptions{
		MaxClockSkew: 10 * time.Second,
		Gate:         -1,
		Now:          func() time.Time { return now },
	})

	tr.Observe(1, geom.Pt(5, 5), base)
	now = base.Add(1 * time.Second)
	upd := tr.Observe(1, geom.Pt(5.1, 5), base.Add(time.Hour)) // broken AP clock
	if upd.Time != now {
		t.Fatalf("skewed fix timestamped %v, want clamped to %v", upd.Time, now)
	}
	if st := tr.Stats(); st.SkewClamped != 1 {
		t.Fatalf("SkewClamped = %d, want 1", st.SkewClamped)
	}
	// The track's clock advanced only to now: a later in-range fix
	// still has positive dt from there, so the guard did not wedge the
	// filter.
	now = base.Add(2 * time.Second)
	upd = tr.Observe(1, geom.Pt(5.2, 5), now)
	if upd.Time != now || !upd.Accepted {
		t.Fatalf("post-clamp fix: %+v", upd)
	}

	// A fix behind the track (late flush or skewed-slow clock) counts
	// NonMonotonic and still folds in.
	upd = tr.Observe(1, geom.Pt(5.2, 5), base.Add(500*time.Millisecond))
	if !upd.Accepted {
		t.Fatal("backwards fix should fold in at dt=0, not be rejected")
	}
	if st := tr.Stats(); st.NonMonotonic != 1 {
		t.Fatalf("NonMonotonic = %d, want 1", st.NonMonotonic)
	}
	// Within-skew future stamps are left alone.
	upd = tr.Observe(1, geom.Pt(5.3, 5), now.Add(5*time.Second))
	if upd.Time != now.Add(5*time.Second) {
		t.Fatalf("in-range future stamp clamped to %v", upd.Time)
	}
	if st := tr.Stats(); st.SkewClamped != 1 {
		t.Fatalf("SkewClamped grew to %d on an in-range stamp", st.SkewClamped)
	}
}

// TestTrackerDegradedGateWidening: a fix that the regular Mahalanobis
// gate rejects must be accepted when flagged degraded (the gate widens
// by DegradedGateScale), while a wild outlier stays rejected either
// way.
func TestTrackerDegradedGateWidening(t *testing.T) {
	base := time.Unix(1700000000, 0).UTC()
	settle := func() *engine.Tracker {
		tr := engine.NewTracker(engine.TrackerOptions{
			MeasSigma: 0.3, Gate: 4, DegradedGateScale: 1.5,
		})
		for i := 0; i < 12; i++ {
			tr.ObserveFix(1, geom.Pt(5, 5), base.Add(time.Duration(i)*time.Second), false)
		}
		return tr
	}
	at := base.Add(12 * time.Second)

	// Scan for an offset in the band the widened gate opens up:
	// rejected at gate 4, accepted at gate 6.
	foundBand := false
	for dy := 0.5; dy < 12; dy += 0.1 {
		fix := geom.Pt(5, 5+dy)
		if settle().ObserveFix(1, fix, at, false).Accepted {
			continue // inside the regular gate
		}
		updD := settle().ObserveFix(1, fix, at, true)
		if !updD.Accepted {
			// Past even the widened gate: the degraded path still caps
			// outliers. Reaching here without finding the band first
			// would mean widening does nothing.
			if !foundBand {
				t.Fatalf("no offset found where only the degraded gate accepts (dy=%.1f rejected by both)", dy)
			}
			if updD.Smoothed.Dist(geom.Pt(5, 5)) > 1.5 {
				t.Fatalf("degraded outlier yanked track to %v", updD.Smoothed)
			}
			return
		}
		foundBand = true
		if !updD.Degraded {
			t.Fatal("update lost its degraded flag")
		}
		if st := settle().Stats(); st.DegradedObserved != 0 {
			t.Fatalf("fresh tracker has DegradedObserved = %d", st.DegradedObserved)
		}
	}
	if !foundBand {
		t.Fatal("scan never left the regular gate")
	}
}

// TestEngineShedsAgedBatchJobs: under overload with shedding enabled,
// queued batch jobs older than ShedAfter fail fast with ErrOverloaded
// (counted, done callbacks still fired), and priority jobs are exempt.
func TestEngineShedsAgedBatchJobs(t *testing.T) {
	tb, reqs := testbedRequests(t, 4)
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = 0.25
	eng := engine.New(engine.Options{Workers: 1, Config: cfg, ShedAfter: time.Hour})
	defer eng.Close()

	var mu sync.Mutex
	var shedErrs, fixes int
	var wg sync.WaitGroup
	for i := range reqs {
		req := reqs[i]
		req.ClientID = uint32(i + 1)
		wg.Add(1)
		if err := eng.Submit(req, func(r engine.Result) {
			mu.Lock()
			if errors.Is(r.Err, engine.ErrOverloaded) {
				shedErrs++
			} else if r.Err == nil {
				fixes++
			}
			mu.Unlock()
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	// All four jobs carry enqueue stamps (shedding was on at submit);
	// dropping the bound to 1 ns sheds everything still queued. The
	// single worker may already be running the first job — so 3 or 4
	// shed, never fewer.
	eng.SetShedAfter(time.Nanosecond)
	wg.Wait()

	st := eng.Stats()
	if st.Shed < 3 || st.Shed > 4 {
		t.Fatalf("Shed = %d, want 3 or 4 of 4", st.Shed)
	}
	if uint64(shedErrs) != st.Shed {
		t.Fatalf("%d ErrOverloaded callbacks for %d shed jobs", shedErrs, st.Shed)
	}
	if st.Completed != 4 || st.Fixes != uint64(fixes) || st.Fixes+st.Failures != st.Completed {
		t.Fatalf("accounting broken after shedding: %+v", st)
	}

	// Priority jobs are never shed, even with the bound at 1 ns.
	prio := reqs[0]
	prio.ClientID = 99
	prio.Priority = true
	if r := eng.Locate(prio); r.Err != nil {
		t.Fatalf("priority job shed or failed: %v", r.Err)
	}
	if st := eng.Stats(); st.Shed < 3 || st.Shed > 4 {
		t.Fatalf("priority job counted shed: %+v", st)
	}

	// Disabling shedding drains normally again.
	eng.SetShedAfter(0)
	batch := reqs[1]
	batch.ClientID = 100
	if r := eng.Locate(batch); r.Err != nil {
		t.Fatalf("batch job after re-enable failed: %v", r.Err)
	}
}

// TestCaptureSinkDegradedEndToEnd: the backend's Degraded flag rides
// Capture → Request → Result → TrackUpdate, the tracker counts the
// fix, and the engine counts it in DegradedFixes.
func TestCaptureSinkDegradedEndToEnd(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	tr := engine.NewTracker(engine.TrackerOptions{})
	eng := engine.New(engine.Options{Workers: 1, Config: cfg, Tracker: tr})
	defer eng.Close()
	results := make(chan engine.Result, 1)
	sink := &engine.CaptureSink{
		Engine:   eng,
		Resolve:  func(apID uint32) *core.AP { return aps[apID-1] },
		Min:      geom.Pt(0, 0),
		Max:      geom.Pt(6, 4),
		OnResult: func(r engine.Result) { results <- r },
	}
	rng := rand.New(rand.NewSource(41))
	now := time.Now().UTC()
	sink.Dispatch(3, []server.Capture{
		{APID: 1, ClientID: 3, Timestamp: now, Streams: mkStreams(rng), Degraded: true},
		{APID: 2, ClientID: 3, Timestamp: now, Streams: mkStreams(rng), Degraded: true},
	})
	r := <-results
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !r.Degraded {
		t.Fatal("Result lost the degraded flag")
	}
	if r.Track == nil || !r.Track.Degraded {
		t.Fatalf("TrackUpdate lost the degraded flag: %+v", r.Track)
	}
	if st := tr.Stats(); st.DegradedObserved != 1 {
		t.Fatalf("DegradedObserved = %d, want 1", st.DegradedObserved)
	}
	if st := eng.Stats(); st.DegradedFixes != 1 || st.Fixes != 1 {
		t.Fatalf("engine stats %+v, want 1 degraded fix", st)
	}

	// A full-quorum flush stays unflagged.
	sink.Dispatch(3, []server.Capture{
		{APID: 1, ClientID: 3, Timestamp: now.Add(time.Second), Streams: mkStreams(rng)},
		{APID: 2, ClientID: 3, Timestamp: now.Add(time.Second), Streams: mkStreams(rng)},
	})
	if r := <-results; r.Err != nil || r.Degraded {
		t.Fatalf("clean flush came back degraded: %+v", r)
	}
}

// TestCaptureSinkSkewGuard: a capture stamped far in the future must
// not become the job's track time (one broken AP clock poisons every
// client's dt otherwise); its frames still localize.
func TestCaptureSinkSkewGuard(t *testing.T) {
	aps, cfg, mkStreams := syntheticSetup()
	tr := engine.NewTracker(engine.TrackerOptions{})
	eng := engine.New(engine.Options{Workers: 1, Config: cfg, Tracker: tr})
	defer eng.Close()
	results := make(chan engine.Result, 1)
	base := time.Unix(1700000000, 0).UTC()
	sink := &engine.CaptureSink{
		Engine:   eng,
		Resolve:  func(apID uint32) *core.AP { return aps[apID-1] },
		Min:      geom.Pt(0, 0),
		Max:      geom.Pt(6, 4),
		OnResult: func(r engine.Result) { results <- r },
		Now:      func() time.Time { return base },
	}
	rng := rand.New(rand.NewSource(43))
	sink.Dispatch(5, []server.Capture{
		{APID: 1, ClientID: 5, Timestamp: base, Streams: mkStreams(rng)},
		{APID: 2, ClientID: 5, Timestamp: base.Add(time.Hour), Streams: mkStreams(rng)},
	})
	r := <-results
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(r.Spectra) != 2 {
		t.Fatalf("skewed AP's frames dropped: %d spectra", len(r.Spectra))
	}
	if r.Track == nil || !r.Track.Time.Equal(base) {
		t.Fatalf("track time %v, want the in-range stamp %v", r.Track.Time, base)
	}
	if got := sink.SkewIgnored(); got != 1 {
		t.Fatalf("SkewIgnored = %d, want 1", got)
	}
}
