// Package threed implements the paper's §4.3.1 future-work extension:
// three-dimensional localization from paired horizontal and vertical
// antenna arrays at each AP. The horizontal array yields the azimuth
// AoA spectrum exactly as in the 2-D system; the vertical array yields
// an elevation spectrum via the same MUSIC machinery with a vertical
// steering vector; and synthesis extends Eq. 8 to a 3-D likelihood
//
//	L(x, y, z) = Π_i Paz_i(θ_i(x,y)) · Pel_i(φ_i(x,y,z)).
package threed

import (
	"errors"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/music"
)

// Point3 is a position in metres: plan coordinates plus height.
type Point3 struct {
	X, Y, Z float64
}

// Plan returns the plan-view projection.
func (p Point3) Plan() geom.Point { return geom.Pt(p.X, p.Y) }

// Dist returns the Euclidean distance to q.
func (p Point3) Dist(q Point3) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// APSpectra is one AP's processed spectra for 3-D synthesis.
type APSpectra struct {
	// Pos is the AP plan position; Height the array mounting height.
	Pos    geom.Point
	Height float64
	// Azimuth is the horizontal-array spectrum over bearing.
	Azimuth *music.Spectrum
	// Elevation is the vertical-array spectrum; bearing bins are
	// interpreted as elevation angles (φ ∈ (−π/2, π/2) meaningful, the
	// rest near-zero).
	Elevation *music.Spectrum
}

// ElevationSpectrum computes a MUSIC spectrum over elevation from the
// per-element streams of an n-element vertical ULA. It reuses the full
// §2.3 chain (forward-backward averaging and spatial smoothing apply to
// any ULA, vertical included).
func ElevationSpectrum(streams [][]complex128, spacing float64, opt music.Options) (*music.Spectrum, error) {
	if len(streams) < 2 {
		return nil, errors.New("threed: need at least two vertical elements")
	}
	snaps := music.SnapshotsAt(streams, opt.SampleOffset, opt.MaxSamples)
	r, err := music.CorrelationMatrix(snaps)
	if err != nil {
		return nil, err
	}
	if opt.ForwardBackward {
		r = music.ForwardBackward(r)
	}
	ng := opt.SmoothingGroups
	if ng < 1 {
		ng = 1
	}
	rs, err := music.SpatialSmooth(r, ng)
	if err != nil {
		return nil, err
	}
	maxD := opt.MaxSignals
	if maxD <= 0 {
		maxD = rs.Rows / 2
	}
	thresh := opt.SignalThresholdFrac
	if thresh <= 0 {
		thresh = 0.05
	}
	noise, _, _, err := music.Subspaces(rs, thresh, maxD)
	if err != nil {
		return nil, err
	}
	sub := rs.Rows
	bins := opt.Bins
	if bins <= 0 {
		bins = music.DefaultBins
	}
	steer := func(phi float64) []complex128 {
		// Bins cover [0, 2π); fold to a signed elevation so the
		// spectrum is φ-periodic with the meaningful range (−π/2, π/2).
		if phi > math.Pi {
			phi -= 2 * math.Pi
		}
		out := make([]complex128, sub)
		for k := 0; k < sub; k++ {
			ph := 2 * math.Pi * float64(k) * spacing * math.Sin(phi) / opt.Wavelength
			out[k] = complexExp(ph)
		}
		return out
	}
	return music.MUSIC(noise, steer, bins), nil
}

func complexExp(ph float64) complex128 {
	return complex(math.Cos(ph), math.Sin(ph))
}

// Likelihood evaluates the 3-D product likelihood at x.
func Likelihood(x Point3, aps []APSpectra) float64 {
	const floor = 1e-6
	l := 1.0
	for _, ap := range aps {
		az := ap.Azimuth.At(ap.Pos.Bearing(x.Plan()))
		if az < floor {
			az = floor
		}
		planDist := ap.Pos.Dist(x.Plan())
		phi := math.Atan2(x.Z-ap.Height, planDist)
		el := ap.Elevation.At(geom.NormalizeAngle(phi))
		if el < floor {
			el = floor
		}
		l *= az * el
	}
	return l
}

// Locate3D grid-searches the 3-D likelihood over the plan bounds and
// height range, then refines with pattern search. planCell and zCell
// are the grid pitches in metres.
func Locate3D(aps []APSpectra, min, max geom.Point, zMin, zMax, planCell, zCell float64) (Point3, error) {
	if len(aps) == 0 {
		return Point3{}, errors.New("threed: no AP spectra")
	}
	if planCell <= 0 || zCell <= 0 || max.X <= min.X || max.Y <= min.Y || zMax < zMin {
		return Point3{}, errors.New("threed: bad search volume")
	}
	best := Point3{X: min.X, Y: min.Y, Z: zMin}
	bestL := math.Inf(-1)
	for z := zMin; z <= zMax+1e-9; z += zCell {
		for x := min.X; x <= max.X+1e-9; x += planCell {
			for y := min.Y; y <= max.Y+1e-9; y += planCell {
				p := Point3{X: x, Y: y, Z: z}
				if l := Likelihood(p, aps); l > bestL {
					best, bestL = p, l
				}
			}
		}
	}
	// Pattern-search refinement in all three axes.
	step := planCell
	zStep := zCell
	for step > 0.01 || zStep > 0.01 {
		improved := false
		cands := []Point3{
			{best.X + step, best.Y, best.Z}, {best.X - step, best.Y, best.Z},
			{best.X, best.Y + step, best.Z}, {best.X, best.Y - step, best.Z},
			{best.X, best.Y, best.Z + zStep}, {best.X, best.Y, best.Z - zStep},
		}
		for _, c := range cands {
			if c.X < min.X || c.X > max.X || c.Y < min.Y || c.Y > max.Y || c.Z < zMin || c.Z > zMax {
				continue
			}
			if l := Likelihood(c, aps); l > bestL {
				best, bestL = c, l
				improved = true
			}
		}
		if !improved {
			step /= 2
			zStep /= 2
		}
	}
	return best, nil
}

// ProcessAzimuth runs the standard 2-D pipeline stages on a horizontal
// capture (spectrum, weighting; suppression and symmetry removal are
// the caller's choice via cfg) — a thin adapter so 3-D callers use the
// same knobs as core.ProcessAP.
func ProcessAzimuth(ap *core.AP, frames []core.FrameCapture, cfg core.Config) (*music.Spectrum, error) {
	return core.ProcessAP(ap, frames, cfg)
}
