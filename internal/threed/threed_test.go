package threed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/array"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/music"
	"repro/internal/wifi"
)

const lambda = 0.1225

func musicOpts() music.Options {
	return music.Options{
		Wavelength:      lambda,
		SmoothingGroups: 2,
		MaxSamples:      10,
		SampleOffset:    100,
		ForwardBackward: true,
	}
}

func TestPoint3(t *testing.T) {
	p := Point3{1, 2, 3}
	if p.Plan() != geom.Pt(1, 2) {
		t.Error("Plan projection wrong")
	}
	if d := p.Dist(Point3{1, 2, 7}); math.Abs(d-4) > 1e-12 {
		t.Errorf("Dist = %v", d)
	}
}

func TestVerticalSteeringProperties(t *testing.T) {
	// Zero elevation: all elements in phase.
	v := channel.VerticalSteering(8, lambda/2, 0, lambda)
	for k, x := range v {
		if math.Abs(real(x)-1) > 1e-12 || math.Abs(imag(x)) > 1e-12 {
			t.Errorf("element %d at zero elevation = %v", k, x)
		}
	}
	// Opposite elevations conjugate.
	up := channel.VerticalSteering(4, lambda/2, 0.5, lambda)
	dn := channel.VerticalSteering(4, lambda/2, -0.5, lambda)
	for k := range up {
		if math.Abs(real(up[k])-real(dn[k])) > 1e-12 || math.Abs(imag(up[k])+imag(dn[k])) > 1e-12 {
			t.Errorf("element %d: up %v vs down %v not conjugate", k, up[k], dn[k])
		}
	}
}

func TestPathElevation(t *testing.T) {
	if phi := channel.PathElevation(10, 2.5, 1.0); math.Abs(phi-math.Atan2(1.5, 10)) > 1e-12 {
		t.Errorf("elevation = %v", phi)
	}
	if phi := channel.PathElevation(10, 1.0, 2.5); phi >= 0 {
		t.Error("client below AP should give negative elevation at client→AP sense")
	}
}

func TestElevationSpectrumRecoversAngle(t *testing.T) {
	m := &channel.Model{Wavelength: lambda}
	rng := rand.New(rand.NewSource(1))
	tx := geom.Pt(0, 0)
	rx := geom.Pt(8, 0)
	const txH, rxH = 1.0, 2.5
	rec := m.ReceiveVertical(tx, rx, txH, rxH, 8, lambda/2, wifi.Preamble40(), channel.RxConfig{
		TxPowerDBm:    10,
		NoiseFloorDBm: -85,
		Rng:           rng,
	})
	spec, err := ElevationSpectrum(rec.Samples, lambda/2, musicOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := channel.PathElevation(8, txH, rxH) // client below AP: negative
	_, bin := spec.Max()
	got := spec.Theta(bin)
	if got > math.Pi {
		got -= 2 * math.Pi
	}
	// A vertical ULA cannot tell φ from π−φ, but for |φ|<π/2 the
	// meaningful fold is just the sign region; check within 3°.
	if math.Abs(got-want) > geom.Rad(3) && math.Abs((math.Pi-got)-want) > geom.Rad(3) {
		t.Errorf("elevation peak %.1f°, want %.1f°", geom.Deg(got), geom.Deg(want))
	}
}

func TestElevationSpectrumErrors(t *testing.T) {
	if _, err := ElevationSpectrum(nil, lambda/2, musicOpts()); err == nil {
		t.Error("nil streams should error")
	}
}

// build3DScene captures one client at three dual-array APs.
func build3DScene(t *testing.T, client Point3, rng *rand.Rand) []APSpectra {
	t.Helper()
	var plan geom.Floorplan
	plan.AddRect(geom.Pt(0, 0), geom.Pt(20, 12), geom.Material{Name: "w", Reflectivity: 0.2, TransmissionLossDB: 8})
	m := &channel.Model{Plan: &plan, Wavelength: lambda, MaxReflections: 1, WallRoughness: 0.4}
	sites := []struct {
		pos    geom.Point
		orient float64
	}{
		{geom.Pt(1, 1), 0},
		{geom.Pt(19, 2), math.Pi / 2},
		{geom.Pt(10, 11), math.Pi},
	}
	const apHeight = 2.5
	sig := wifi.Preamble40()
	cfg := core.DefaultConfig(lambda)
	cfg.UseSuppression = false // single frame per AP here
	var aps []APSpectra
	for _, s := range sites {
		arr := array.NewLinear(s.pos, s.orient, 8, lambda)
		arr.NinthAntenna = true
		recH := m.Receive(client.Plan(), arr, sig, channel.RxConfig{
			TxPowerDBm: 15, NoiseFloorDBm: -85,
			HeightDiff: apHeight - client.Z, Rng: rng,
		})
		az, err := core.ProcessAP(&core.AP{Array: arr}, []core.FrameCapture{{Streams: recH.Samples}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		recV := m.ReceiveVertical(client.Plan(), s.pos, client.Z, apHeight, 8, lambda/2, sig, channel.RxConfig{
			TxPowerDBm: 15, NoiseFloorDBm: -85, Rng: rng,
		})
		el, err := ElevationSpectrum(recV.Samples, lambda/2, musicOpts())
		if err != nil {
			t.Fatal(err)
		}
		aps = append(aps, APSpectra{Pos: s.pos, Height: apHeight, Azimuth: az, Elevation: el})
	}
	return aps
}

func TestLocate3DEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	client := Point3{X: 12, Y: 6.5, Z: 1.2}
	aps := build3DScene(t, client, rng)
	got, err := Locate3D(aps, geom.Pt(0, 0), geom.Pt(20, 12), 0, 3, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if planErr := got.Plan().Dist(client.Plan()); planErr > 1.0 {
		t.Errorf("plan error %.2f m (got %+v)", planErr, got)
	}
	if zErr := math.Abs(got.Z - client.Z); zErr > 0.8 {
		t.Errorf("height error %.2f m (got z=%.2f, want %.2f)", zErr, got.Z, client.Z)
	}
}

func TestLocate3DErrors(t *testing.T) {
	if _, err := Locate3D(nil, geom.Pt(0, 0), geom.Pt(1, 1), 0, 1, 0.1, 0.1); err == nil {
		t.Error("no APs should error")
	}
	ap := APSpectra{Azimuth: music.NewSpectrum(360), Elevation: music.NewSpectrum(360)}
	if _, err := Locate3D([]APSpectra{ap}, geom.Pt(1, 1), geom.Pt(0, 0), 0, 1, 0.1, 0.1); err == nil {
		t.Error("inverted bounds should error")
	}
	if _, err := Locate3D([]APSpectra{ap}, geom.Pt(0, 0), geom.Pt(1, 1), 0, 1, 0, 0.1); err == nil {
		t.Error("zero cell should error")
	}
}

func TestLikelihoodPrefersTrueHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	client := Point3{X: 12, Y: 6.5, Z: 1.2}
	aps := build3DScene(t, client, rng)
	lTrue := Likelihood(client, aps)
	lWrongZ := Likelihood(Point3{X: 12, Y: 6.5, Z: 2.9}, aps)
	if lTrue <= lWrongZ {
		t.Errorf("likelihood at true height %v not above wrong height %v", lTrue, lWrongZ)
	}
}
