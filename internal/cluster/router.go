package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// Control is a shard's handoff surface — everything the router needs
// to move a client's state between shards. LocalShard implements it
// in-process; HTTPShard implements it against a shard process's ops
// endpoint.
type Control interface {
	// Clients returns every client ID with state on the shard: live
	// tracks plus pending (below-quorum) capture groups.
	Clients() ([]uint32, error)
	// Ingested returns the shard's settled-capture counter
	// (server.Backend.IngestedCaptures): the router's consumption
	// barrier.
	Ingested() (uint64, error)
	// InFlight returns the summed count of the clients' jobs admitted
	// to the shard's engine but not yet completed.
	InFlight(ids []uint32) (int, error)
	// ExtractPending removes the clients' pending capture groups and
	// returns them re-encoded as v3 batch frames, plus the capture
	// count. The returned bytes are ready to write to another shard's
	// data socket verbatim.
	ExtractPending(ids []uint32) (frames []byte, captures int, err error)
	// SnapshotTracks returns the clients' Kalman tracks, losslessly.
	SnapshotTracks(ids []uint32) ([]engine.ClientSnapshot, error)
	// RestoreTracks installs the snapshots, returning how many took.
	RestoreTracks(snaps []engine.ClientSnapshot) (int, error)
	// RemoveTracks drops the clients' tracks, returning how many
	// existed.
	RemoveTracks(ids []uint32) (int, error)
}

// Shard is one backend the router fans out to: the data socket its
// captures ride, and the control surface its migrations use.
type Shard struct {
	// Data receives v3 batch frames; the router serializes writes.
	Data io.Writer
	// Ctl is the handoff control surface.
	Ctl Control
}

// DefaultRebalanceTimeout bounds each barrier wait inside Rebalance
// (ingest consumption, in-flight drain). Generous: a shard that cannot
// drain a client's jobs in this long is wedged, not slow.
const DefaultRebalanceTimeout = 30 * time.Second

// ErrRebalanceTimeout is wrapped by Rebalance when a barrier wait
// exceeds the timeout.
var ErrRebalanceTimeout = errors.New("cluster: rebalance barrier timed out")

// shardIO is one shard's serialized data path. buf is the per-shard
// encode scratch, reused across frames under mu; routed counts
// captures written, read by the rebalance write barrier under mu.
type shardIO struct {
	mu     sync.Mutex
	w      io.Writer
	buf    []byte
	routed uint64
}

// holdState parks captures for mid-migration clients. moved is
// immutable after construction (readable without the lock); closed and
// batches are guarded by mu. Once closed, late arrivals re-route
// through the swapped map instead of appending.
//
// Captures are parked as one batch per originating AP frame, and the
// flush writes each batch as its own frame: coalescing a client's
// captures across frame boundaries would change the backend's
// flush-absorption grouping (a quorum completing mid-burst absorbs the
// client's burst remainder), silently merging consecutive fixes.
type holdState struct {
	moved map[uint32][2]int // client -> {losing, gaining} shard

	mu      sync.Mutex
	closed  bool
	batches [][]server.Capture
}

func (hs *holdState) holds(clientID uint32) bool {
	_, ok := hs.moved[clientID]
	return ok
}

// Router fans capture traffic from many AP connections out to the
// shard that owns each client, and migrates clients when the shard map
// changes. It speaks the same v3 batch protocol on both sides: AP
// bursts are decoded once (pooled), partitioned by owner, and
// re-encoded per shard in the compact delta-timestamp form — a
// re-encode that round-trips the int16 quantization bit-identically,
// so a shard behind the router decodes exactly the samples a backend
// fed directly would.
type Router struct {
	shards []shardIO
	ctls   []Control

	cur  atomic.Pointer[ShardMap]
	hold atomic.Pointer[holdState]

	// rebalanceMu serializes Rebalance calls; routing never takes it.
	rebalanceMu sync.Mutex

	// RebalanceTimeout bounds each barrier wait inside Rebalance; 0
	// means DefaultRebalanceTimeout.
	RebalanceTimeout time.Duration

	frames     atomic.Uint64
	routed     atomic.Uint64
	held       atomic.Uint64
	rebalances atomic.Uint64
}

// NewRouter returns a router over the shards, routing by initial.
func NewRouter(initial *ShardMap, shards []Shard) (*Router, error) {
	if initial.Shards > len(shards) {
		return nil, fmt.Errorf("cluster: map covers %d shards, router has %d", initial.Shards, len(shards))
	}
	r := &Router{shards: make([]shardIO, len(shards)), ctls: make([]Control, len(shards))}
	for i, s := range shards {
		r.shards[i].w = s.Data
		r.ctls[i] = s.Ctl
	}
	r.cur.Store(initial)
	return r, nil
}

// Map returns the live shard map.
func (r *Router) Map() *ShardMap { return r.cur.Load() }

// RouterStats is a snapshot of the router's counters.
type RouterStats struct {
	// Frames is the number of AP frames decoded; Routed the captures
	// forwarded to shards (held captures count once flushed).
	Frames, Routed uint64
	// Held is the cumulative number of captures parked during
	// migrations.
	Held uint64
	// Rebalances counts completed map swaps.
	Rebalances uint64
	// PerShard is each shard's forwarded-capture count.
	PerShard []uint64
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Frames:     r.frames.Load(),
		Routed:     r.routed.Load(),
		Held:       r.held.Load(),
		Rebalances: r.rebalances.Load(),
		PerShard:   make([]uint64, len(r.shards)),
	}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		st.PerShard[i] = s.routed
		s.mu.Unlock()
	}
	return st
}

// ServeConn reads v3 frames from one AP connection until EOF or error,
// routing every capture. Mirrors server.Backend.ServeConn: pooled
// decode, buffered reads, a clean EOF returns nil.
func (r *Router) ServeConn(rd io.Reader) error {
	br, ok := rd.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(rd, 256<<10)
	}
	for {
		ws := server.GetIngestWorkspace()
		caps, err := server.ReadFrameInto(br, ws)
		if err != nil {
			ws.Discard()
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		r.frames.Add(1)
		if err := r.Route(caps); err != nil {
			return err
		}
	}
}

// Route takes ownership of decoded captures and forwards each to the
// shard owning its client, releasing them once encoded (or holding
// them, references intact, when their client is mid-migration). Safe
// for concurrent use; per-client capture order on one connection is
// preserved through to the owning shard's socket.
func (r *Router) Route(caps []server.Capture) error {
	pending := caps
	for len(pending) > 0 {
		m := r.cur.Load()
		groups := make([][]server.Capture, m.Shards)
		for i := range pending {
			o := m.Owner(pending[i].ClientID)
			groups[o] = append(groups[o], pending[i])
		}
		pending = pending[:0:0]
		for shard, g := range groups {
			if len(g) == 0 {
				continue
			}
			requeue, err := r.forward(shard, g)
			if err != nil {
				// The conn is dead; nothing downstream will release
				// what was not written.
				server.ReleaseAll(requeue)
				for _, og := range groups[shard+1:] {
					server.ReleaseAll(og)
				}
				return err
			}
			pending = append(pending, requeue...)
		}
	}
	return nil
}

// forward writes one owner's captures to shard i. The map and hold set
// are re-checked under the shard's write lock: the rebalance write
// barrier acquires every shard lock after installing the hold, so any
// write that lands after the barrier sees it — a stalled goroutine
// cannot sneak a migrating client's captures to the losing shard.
// Captures that no longer belong here are returned for re-routing.
func (r *Router) forward(i int, caps []server.Capture) (requeue []server.Capture, err error) {
	s := &r.shards[i]
	s.mu.Lock()
	m := r.cur.Load()
	hs := r.hold.Load()
	var diverted []server.Capture
	keep := caps[:0]
	for _, c := range caps {
		switch {
		case hs != nil && hs.holds(c.ClientID):
			diverted = append(diverted, c)
		case m.Owner(c.ClientID) != i:
			requeue = append(requeue, c)
		default:
			keep = append(keep, c)
		}
	}
	if len(keep) > 0 {
		err = r.writeLocked(s, keep)
	}
	s.mu.Unlock()
	if len(diverted) > 0 {
		// Outside the shard lock (the flush path takes hs.mu before
		// shard locks; same order here would deadlock). A hold closed
		// between the check above and this append means the migration
		// finished: re-route through the swapped map.
		hs.mu.Lock()
		if hs.closed {
			hs.mu.Unlock()
			requeue = append(requeue, diverted...)
		} else {
			hs.batches = append(hs.batches, diverted)
			r.held.Add(uint64(len(diverted)))
			hs.mu.Unlock()
		}
	}
	return requeue, err
}

// writeLocked encodes caps as delta-timestamp frames into the shard's
// scratch (chunked at the frame capture limit; AP frames fit in one),
// writes them, and releases the captures. Caller holds s.mu.
func (r *Router) writeLocked(s *shardIO, caps []server.Capture) error {
	buf := s.buf[:0]
	var err error
	for off := 0; off < len(caps); off += server.MaxBatchCaptures {
		end := off + server.MaxBatchCaptures
		if end > len(caps) {
			end = len(caps)
		}
		if buf, err = server.AppendBatchDelta(buf, caps[off:end]); err != nil {
			server.ReleaseAll(caps)
			return err
		}
	}
	s.buf = buf
	if _, err := s.w.Write(s.buf); err != nil {
		server.ReleaseAll(caps)
		return err
	}
	s.routed += uint64(len(caps))
	r.routed.Add(uint64(len(caps)))
	server.ReleaseAll(caps)
	return nil
}

// writeFrames forwards pre-encoded v3 frames (an ExtractPending
// result) to shard i verbatim.
func (r *Router) writeFrames(i int, frames []byte, captures int) error {
	if len(frames) == 0 {
		return nil
	}
	s := &r.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(frames); err != nil {
		return err
	}
	s.routed += uint64(captures)
	r.routed.Add(uint64(captures))
	return nil
}

// RebalanceStats reports what one map swap moved.
type RebalanceStats struct {
	// MovedClients is how many clients changed owner; MovedTracks how
	// many live Kalman tracks migrated with them.
	MovedClients, MovedTracks int
	// MovedPending is how many buffered below-quorum captures were
	// re-routed to gaining shards; HeldFlushed how many captures were
	// parked at the router during the swap and flushed after it.
	MovedPending, HeldFlushed int
}

// Rebalance swaps the live shard map for next, migrating every client
// whose owner changes with zero loss:
//
//  1. new captures for moving clients are parked at the router
//     (references held, order preserved);
//  2. a write barrier plus the shards' settled-ingest counters
//     guarantee every already-routed capture has been grouped or
//     dispatched;
//  3. the losing shard's pending groups are extracted and re-routed;
//  4. the engine drains the moving clients' in-flight jobs, so each
//     Kalman track is final;
//  5. tracks are snapshotted, restored on the gaining shard
//     bit-identically, and removed from the losing one;
//  6. the map swaps atomically and the parked captures flush to their
//     new owners.
//
// A failed rebalance leaves routing on the old map (parked captures
// are flushed back through it); retry with a higher version once the
// fault clears. Rebalance calls serialize; routing continues
// concurrently throughout.
func (r *Router) Rebalance(next *ShardMap) (RebalanceStats, error) {
	r.rebalanceMu.Lock()
	defer r.rebalanceMu.Unlock()

	var st RebalanceStats
	cur := r.cur.Load()
	if next.Version <= cur.Version {
		return st, fmt.Errorf("cluster: map version %d does not advance %d", next.Version, cur.Version)
	}
	if next.Shards > len(r.shards) {
		return st, fmt.Errorf("cluster: map covers %d shards, router has %d", next.Shards, len(r.shards))
	}

	// Discover every client with shard-local state and who moves.
	var all []uint32
	for i := 0; i < cur.Shards; i++ {
		ids, err := r.ctls[i].Clients()
		if err != nil {
			return st, fmt.Errorf("cluster: shard %d clients: %w", i, err)
		}
		all = append(all, ids...)
	}
	moved := cur.Moved(all, next)
	st.MovedClients = len(moved)
	if len(moved) == 0 {
		r.cur.Store(next)
		r.rebalances.Add(1)
		return st, nil
	}

	// 1. Park new traffic for the movers. From here on every exit path
	// must close and flush the hold.
	hs := &holdState{moved: moved}
	r.hold.Store(hs)
	// Flush strictly before clearing the hold pointer: a racer that
	// loaded a nil hold forwards directly, and its capture must not
	// overtake the parked ones (it would scramble per-client order on
	// the gaining shard). Closing under hs.mu makes racers that loaded
	// the hold wait out the flush, then re-route behind it.
	finish := func() {
		st.HeldFlushed = r.flushHold(hs)
		r.hold.Store(nil)
	}

	// 2a. Write barrier: acquiring each shard's write lock after the
	// hold is installed guarantees every later write observes it, and
	// the routed counts read here cover every earlier write.
	routedAt := make([]uint64, len(r.shards))
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		routedAt[i] = s.routed
		s.mu.Unlock()
	}

	// Group the movers by losing shard and by (losing, gaining) pair.
	byFrom := map[int][]uint32{}
	type edge struct{ from, to int }
	byEdge := map[edge][]uint32{}
	for id, ft := range moved {
		byFrom[ft[0]] = append(byFrom[ft[0]], id)
		byEdge[edge{ft[0], ft[1]}] = append(byEdge[edge{ft[0], ft[1]}], id)
	}

	// 2b. Consumption barrier: every capture routed before the hold is
	// settled on its shard (pending, dispatched, or dropped).
	for from := range byFrom {
		ctl := r.ctls[from]
		if err := r.await(func() (bool, error) {
			n, err := ctl.Ingested()
			return n >= routedAt[from], err
		}); err != nil {
			finish()
			return st, fmt.Errorf("cluster: shard %d ingest barrier: %w", from, err)
		}
	}

	// 3. Extract the movers' buffered below-quorum captures, per
	// gaining shard so each extracted frame set forwards verbatim.
	type extracted struct {
		to     int
		frames []byte
		count  int
	}
	var ext []extracted
	for e, ids := range byEdge {
		frames, n, err := r.ctls[e.from].ExtractPending(ids)
		if err != nil {
			finish()
			return st, fmt.Errorf("cluster: shard %d extract: %w", e.from, err)
		}
		if n > 0 {
			ext = append(ext, extracted{e.to, frames, n})
			st.MovedPending += n
		}
	}

	// 4. Drain: with routing parked and pending extracted, no new job
	// can start; wait out the ones already admitted so every fix folds
	// into the losing tracker before the snapshot.
	for from, ids := range byFrom {
		ctl := r.ctls[from]
		if err := r.await(func() (bool, error) {
			n, err := ctl.InFlight(ids)
			return n == 0, err
		}); err != nil {
			finish()
			return st, fmt.Errorf("cluster: shard %d in-flight drain: %w", from, err)
		}
	}

	// 5. Move the tracks: snapshot on the losing shard, restore on the
	// gaining shard *before* any captures arrive there (a fix landing
	// ahead of the restore would fork the track), then remove.
	for e, ids := range byEdge {
		snaps, err := r.ctls[e.from].SnapshotTracks(ids)
		if err != nil {
			finish()
			return st, fmt.Errorf("cluster: shard %d snapshot: %w", e.from, err)
		}
		if len(snaps) > 0 {
			n, err := r.ctls[e.to].RestoreTracks(snaps)
			if err != nil {
				finish()
				return st, fmt.Errorf("cluster: shard %d restore: %w", e.to, err)
			}
			st.MovedTracks += n
		}
		if _, err := r.ctls[e.from].RemoveTracks(ids); err != nil {
			finish()
			return st, fmt.Errorf("cluster: shard %d remove: %w", e.from, err)
		}
	}

	// Extracted captures land on the gaining shards after the tracks,
	// before the held flush — oldest first, order preserved.
	for _, x := range ext {
		if err := r.writeFrames(x.to, x.frames, x.count); err != nil {
			finish()
			return st, fmt.Errorf("cluster: shard %d re-route pending: %w", x.to, err)
		}
	}

	// 6. Swap, then flush the parked captures through the new map.
	r.cur.Store(next)
	finish()
	r.rebalances.Add(1)
	return st, nil
}

// flushHold closes the hold and writes its parked captures through the
// current map — batch by batch, so each original AP frame stays its
// own shard-side burst and the backend's flush-absorption grouping
// matches an unmigrated feed. Late divert attempts block on hs.mu
// until the flush completes, then re-route — parked traffic always
// lands before traffic that raced the close.
func (r *Router) flushHold(hs *holdState) int {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	hs.closed = true
	m := r.cur.Load()
	n := 0
	for _, batch := range hs.batches {
		n += len(batch)
		groups := make([][]server.Capture, m.Shards)
		for i := range batch {
			o := m.Owner(batch[i].ClientID)
			groups[o] = append(groups[o], batch[i])
		}
		for shard, g := range groups {
			if len(g) == 0 {
				continue
			}
			s := &r.shards[shard]
			s.mu.Lock()
			// A dead shard conn must not leak the parked references.
			_ = r.writeLocked(s, g)
			s.mu.Unlock()
		}
	}
	hs.batches = nil
	return n
}

// await polls cond until it reports true, erroring after the rebalance
// timeout.
func (r *Router) await(cond func() (bool, error)) error {
	timeout := r.RebalanceTimeout
	if timeout <= 0 {
		timeout = DefaultRebalanceTimeout
	}
	deadline := time.Now().Add(timeout)
	for {
		ok, err := cond()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w after %v", ErrRebalanceTimeout, timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
}
