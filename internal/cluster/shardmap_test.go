package cluster

import "testing"

// TestShardMapOwnerStable: same map, same client, same owner — and
// every owner is in range.
func TestShardMapOwnerStable(t *testing.T) {
	m, err := NewShardMap(1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint32(0); id < 1000; id++ {
		o := m.Owner(id)
		if o < 0 || o >= 4 {
			t.Fatalf("client %d owned by shard %d, want [0,4)", id, o)
		}
		if o2 := m.Owner(id); o2 != o {
			t.Fatalf("client %d owner changed %d -> %d on re-lookup", id, o, o2)
		}
	}
}

// TestShardMapBalance: with the default vnode count, no shard owns a
// wildly disproportionate share of a large client population.
func TestShardMapBalance(t *testing.T) {
	const shards, clients = 4, 40000
	m, err := NewShardMap(1, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for id := uint32(0); id < clients; id++ {
		counts[m.Owner(id)]++
	}
	ideal := clients / shards
	for s, n := range counts {
		if n < ideal/2 || n > ideal*2 {
			t.Fatalf("shard %d owns %d of %d clients (ideal %d): vnode ring badly skewed", s, n, clients, ideal)
		}
	}
}

// TestShardMapGrowthMovesMinority: growing N -> N+1 shards must move
// roughly 1/(N+1) of the clients and never move a client between two
// pre-existing shards — the consistent-hashing property the rebalance
// cost story rests on.
func TestShardMapGrowthMovesMinority(t *testing.T) {
	const clients = 20000
	ids := make([]uint32, clients)
	for i := range ids {
		ids[i] = uint32(i)
	}
	for n := 1; n <= 4; n++ {
		cur, err := NewShardMap(uint64(n), n, 0)
		if err != nil {
			t.Fatal(err)
		}
		next, err := NewShardMap(uint64(n+1), n+1, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := cur.Moved(ids, next)
		frac := float64(len(moved)) / clients
		want := 1.0 / float64(n+1)
		if frac > want*1.6 {
			t.Fatalf("growing %d->%d shards moved %.1f%% of clients, want about %.1f%%",
				n, n+1, frac*100, want*100)
		}
		for id, ft := range moved {
			if ft[1] != n {
				t.Fatalf("growing %d->%d shards moved client %d from shard %d to pre-existing shard %d",
					n, n+1, id, ft[0], ft[1])
			}
		}
	}
}

// TestShardMapMovedDedups: duplicate ids collapse to one entry.
func TestShardMapMovedDedups(t *testing.T) {
	cur, _ := NewShardMap(1, 1, 0)
	next, _ := NewShardMap(2, 2, 0)
	var id uint32
	for id = 1; next.Owner(id) != 1; id++ {
	}
	moved := cur.Moved([]uint32{id, id, id}, next)
	if len(moved) != 1 {
		t.Fatalf("Moved returned %d entries for one duplicated client", len(moved))
	}
	if ft := moved[id]; ft[0] != 0 || ft[1] != 1 {
		t.Fatalf("client %d moved %v, want {0 1}", id, ft)
	}
}

// TestShardMapVersionGate: NewShardMap rejects a zero shard count.
func TestShardMapVersionGate(t *testing.T) {
	if _, err := NewShardMap(1, 0, 0); err == nil {
		t.Fatal("NewShardMap accepted 0 shards")
	}
}
