package cluster

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/server"
)

// LocalShardOptions configures one in-process shard.
type LocalShardOptions struct {
	// SocketPath is the unix socket the shard's backend listens on and
	// the router's data connection dials. Required.
	SocketPath string
	// Quorum and Window configure the backend's capture grouping.
	Quorum int
	Window time.Duration
	// Engine configures the shard's localization engine. A Tracker is
	// required for handoff; one is created from TrackerOptions when
	// Engine.Tracker is nil.
	Engine         engine.Options
	TrackerOptions engine.TrackerOptions
	// Resolve, Min, Max, OnResult configure the capture sink exactly as
	// engine.CaptureSink documents them.
	Resolve  func(apID uint32) *core.AP
	Min, Max geom.Point
	OnResult func(engine.Result)
}

// LocalShard is one shard run inside the current process: a
// server.Backend listening on a unix socket, feeding an engine.Engine
// through a CaptureSink. It is the single-host building block behind
// -exp cluster and the cluster tests, and the in-process reference for
// what `arraytrack-server -shard i/N` runs as a separate process. It
// implements Control directly against its backend, engine, and
// tracker.
type LocalShard struct {
	Backend *server.Backend
	Engine  *engine.Engine
	Tracker *engine.Tracker
	Sink    *engine.CaptureSink

	ln     net.Listener
	conn   net.Conn
	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once
}

// NewLocalShard starts the shard: backend serving the unix socket, one
// data connection dialed and ready for the router.
func NewLocalShard(opt LocalShardOptions) (*LocalShard, error) {
	if opt.SocketPath == "" {
		return nil, fmt.Errorf("cluster: local shard needs a socket path")
	}
	if opt.Quorum <= 0 {
		opt.Quorum = 1
	}
	if opt.Window <= 0 {
		opt.Window = time.Second
	}
	eopt := opt.Engine
	if eopt.Tracker == nil {
		eopt.Tracker = engine.NewTracker(opt.TrackerOptions)
	}
	s := &LocalShard{done: make(chan struct{})}
	s.Engine = engine.New(eopt)
	s.Tracker = eopt.Tracker
	s.Sink = &engine.CaptureSink{
		Engine:   s.Engine,
		Resolve:  opt.Resolve,
		Min:      opt.Min,
		Max:      opt.Max,
		OnResult: opt.OnResult,
		// The router is a trusted feed: captures already passed the
		// ingest edge once.
		PriorityInterval: -1,
	}
	s.Backend = server.NewBackendDispatcher(opt.Quorum, opt.Window, s.Sink)

	ln, err := net.Listen("unix", opt.SocketPath)
	if err != nil {
		s.Engine.Close()
		return nil, fmt.Errorf("cluster: shard listen: %w", err)
	}
	s.ln = ln
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	go func() {
		defer close(s.done)
		_ = s.Backend.Serve(ctx, ln)
	}()
	conn, err := net.Dial("unix", opt.SocketPath)
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("cluster: shard dial: %w", err)
	}
	s.conn = conn
	return s, nil
}

// Shard returns the router-facing view: the data connection plus this
// shard as its own control surface.
func (s *LocalShard) Shard() Shard { return Shard{Data: s.conn, Ctl: s} }

// Conn returns the shard's dialed data connection — the single-backend
// control path writes frames straight to it, bypassing any router.
func (s *LocalShard) Conn() net.Conn { return s.conn }

// Close tears the shard down: data connection, listener, serve loop,
// then the engine (draining in-flight jobs so the tracker is final).
// Idempotent: extra calls are no-ops.
func (s *LocalShard) Close() {
	s.once.Do(func() {
		if s.conn != nil {
			_ = s.conn.Close()
		}
		s.cancel()
		_ = s.ln.Close()
		<-s.done
		s.Engine.Close()
	})
}

// Clients returns every client with shard-local state: live tracks
// plus pending capture groups, deduplicated and sorted.
func (s *LocalShard) Clients() ([]uint32, error) {
	ids := s.Tracker.Clients()
	seen := make(map[uint32]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	for _, id := range s.Backend.PendingClientIDs() {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Ingested returns the backend's settled-capture counter.
func (s *LocalShard) Ingested() (uint64, error) {
	return s.Backend.IngestedCaptures(), nil
}

// InFlight sums the clients' admitted-but-uncompleted engine jobs.
func (s *LocalShard) InFlight(ids []uint32) (int, error) {
	n := 0
	for _, id := range ids {
		n += s.Engine.InFlight(id)
	}
	return n, nil
}

// ExtractPending removes the clients' pending capture groups and
// re-encodes them as v3 delta frames, ready to forward verbatim.
func (s *LocalShard) ExtractPending(ids []uint32) ([]byte, int, error) {
	caps := s.Backend.ExtractPending(ids)
	if len(caps) == 0 {
		return nil, 0, nil
	}
	defer server.ReleaseAll(caps)
	var frames []byte
	var err error
	for off := 0; off < len(caps); off += server.MaxBatchCaptures {
		end := off + server.MaxBatchCaptures
		if end > len(caps) {
			end = len(caps)
		}
		if frames, err = server.AppendBatchDelta(frames, caps[off:end]); err != nil {
			return nil, 0, err
		}
	}
	return frames, len(caps), nil
}

// SnapshotTracks returns the clients' Kalman tracks.
func (s *LocalShard) SnapshotTracks(ids []uint32) ([]engine.ClientSnapshot, error) {
	return s.Tracker.SnapshotClients(ids), nil
}

// RestoreTracks installs the snapshots.
func (s *LocalShard) RestoreTracks(snaps []engine.ClientSnapshot) (int, error) {
	return s.Tracker.Restore(snaps), nil
}

// RemoveTracks drops the clients' tracks.
func (s *LocalShard) RemoveTracks(ids []uint32) (int, error) {
	return s.Tracker.Remove(ids), nil
}
