package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/engine"
)

// HTTPShard implements Control against a shard process's ops endpoint
// (the /cluster/* surface in internal/ops) — the multi-process
// counterpart of LocalShard: the router keeps the shard's data socket
// for captures and drives migrations over its ops HTTP listener.
type HTTPShard struct {
	// Base is the shard's ops address, e.g. "http://127.0.0.1:9090".
	Base string
	// Client overrides the HTTP client; nil means http.DefaultClient.
	Client *http.Client
}

func (h *HTTPShard) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

// do runs one request and decodes a JSON response into out (when
// non-nil). Non-2xx responses become errors carrying the body.
func (h *HTTPShard) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, h.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := h.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: shard %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

type clientsBody struct {
	Clients []uint32 `json:"clients"`
}

// Clients returns every client with state on the shard.
func (h *HTTPShard) Clients() ([]uint32, error) {
	var out clientsBody
	if err := h.do(http.MethodGet, "/cluster/clients", nil, &out); err != nil {
		return nil, err
	}
	return out.Clients, nil
}

// Ingested returns the shard's settled-capture counter.
func (h *HTTPShard) Ingested() (uint64, error) {
	var out struct {
		Ingested uint64 `json:"ingested"`
	}
	if err := h.do(http.MethodGet, "/cluster/ingested", nil, &out); err != nil {
		return 0, err
	}
	return out.Ingested, nil
}

// InFlight sums the clients' admitted-but-uncompleted engine jobs.
func (h *HTTPShard) InFlight(ids []uint32) (int, error) {
	var out struct {
		InFlight int `json:"inflight"`
	}
	if err := h.do(http.MethodPost, "/cluster/inflight", clientsBody{ids}, &out); err != nil {
		return 0, err
	}
	return out.InFlight, nil
}

// ExtractPending removes the clients' pending groups, returning them
// as v3 frames ready to forward verbatim.
func (h *HTTPShard) ExtractPending(ids []uint32) ([]byte, int, error) {
	buf, err := json.Marshal(clientsBody{ids})
	if err != nil {
		return nil, 0, err
	}
	resp, err := h.client().Post(h.Base+"/cluster/extract", "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, 0, fmt.Errorf("cluster: shard extract: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	n, err := strconv.Atoi(resp.Header.Get("X-Capture-Count"))
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: shard extract: bad X-Capture-Count %q", resp.Header.Get("X-Capture-Count"))
	}
	frames, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return frames, n, nil
}

type tracksBody struct {
	Tracks []engine.ClientSnapshot `json:"tracks"`
}

// SnapshotTracks returns the clients' Kalman tracks.
func (h *HTTPShard) SnapshotTracks(ids []uint32) ([]engine.ClientSnapshot, error) {
	var out tracksBody
	if err := h.do(http.MethodPost, "/cluster/snapshot", clientsBody{ids}, &out); err != nil {
		return nil, err
	}
	return out.Tracks, nil
}

// RestoreTracks installs the snapshots.
func (h *HTTPShard) RestoreTracks(snaps []engine.ClientSnapshot) (int, error) {
	var out struct {
		Restored int `json:"restored"`
	}
	if err := h.do(http.MethodPost, "/cluster/restore", tracksBody{snaps}, &out); err != nil {
		return 0, err
	}
	return out.Restored, nil
}

// RemoveTracks drops the clients' tracks.
func (h *HTTPShard) RemoveTracks(ids []uint32) (int, error) {
	var out struct {
		Removed int `json:"removed"`
	}
	if err := h.do(http.MethodPost, "/cluster/remove", clientsBody{ids}, &out); err != nil {
		return 0, err
	}
	return out.Removed, nil
}
