// Package cluster scales the ArrayTrack backend past one engine: a
// versioned shard map assigns every client to one of N backend
// processes by consistent hashing, and a Router in front of the AP
// fleet decodes each v3 batch burst, fans its captures out to the
// owning shards over the existing batch protocol, and — when the map
// changes — migrates every affected client with zero loss: buffered
// captures are re-routed, in-flight jobs drained, and the Kalman track
// moved bit-identically, so a mid-walk shard migration is invisible in
// the fix stream.
//
// Localization state is purely per-client (pending capture groups,
// scheduler tokens, the Kalman track), so client identity is the
// natural shard key: any interleaving of different clients' flushes is
// already unordered, and a shard owning a client owns everything about
// it.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the number of ring points per shard. 64 keeps the
// per-shard load imbalance within a few percent for realistic client
// counts while the whole ring stays small enough to search in a dozen
// nanoseconds.
const DefaultVnodes = 64

// ShardMap is a versioned consistent-hash assignment of client IDs to
// shard indices [0, Shards). Maps are immutable once built; the router
// swaps whole maps atomically, and Version orders the swaps.
//
// Consistent hashing is what makes growth cheap: going from N to N+1
// shards moves only ~1/(N+1) of the clients, so a rebalance migrates a
// sliver of the fleet instead of reshuffling everyone.
type ShardMap struct {
	// Version orders maps; Rebalance refuses a map that does not
	// advance it.
	Version uint64
	// Shards is the number of shard indices the ring covers.
	Shards int

	ring []ringEntry // sorted by point
}

type ringEntry struct {
	point uint64
	shard int
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed 64-bit hash with no dependencies.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewShardMap builds a map over the given shard count. vnodes ≤ 0
// means DefaultVnodes. Ring points depend only on (shard, vnode), so a
// map over N+1 shards shares every point with the map over N — the
// property that bounds how many clients a growth step moves.
func NewShardMap(version uint64, shards, vnodes int) (*ShardMap, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: shard map needs at least 1 shard, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	m := &ShardMap{Version: version, Shards: shards, ring: make([]ringEntry, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			m.ring = append(m.ring, ringEntry{
				point: splitmix64(uint64(s)<<32 | uint64(v)),
				shard: s,
			})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool { return m.ring[i].point < m.ring[j].point })
	return m, nil
}

// Owner returns the shard index owning the client: the first ring
// point at or after the client's hash, wrapping at the top.
func (m *ShardMap) Owner(clientID uint32) int {
	h := splitmix64(uint64(clientID))
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].point >= h })
	if i == len(m.ring) {
		i = 0
	}
	return m.ring[i].shard
}

// Moved returns the clients among ids whose owner differs between m
// and next, mapped to their {from, to} shard pair. Duplicate ids
// collapse.
func (m *ShardMap) Moved(ids []uint32, next *ShardMap) map[uint32][2]int {
	moved := make(map[uint32][2]int)
	for _, id := range ids {
		if _, seen := moved[id]; seen {
			continue
		}
		from, to := m.Owner(id), next.Owner(id)
		if from != to {
			moved[id] = [2]int{from, to}
		}
	}
	return moved
}
