// The handoff test lives in an external package so it can drive the
// cluster with testbed-generated captures (testbed imports cluster for
// its experiment; cluster_test importing testbed closes no cycle).
package cluster_test

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/server"
	"repro/internal/testbed"
)

// TestRebalanceUnderConcurrentIngest grows a live cluster 1→2 shards
// while a feeder keeps streaming capture bursts for every client —
// the -race exercise of the router's hold/forward/flush machinery.
// Afterwards: every admitted flush completed (no fix lost), every
// moved client's track lives on its new owner and only there, and the
// pooled ingest-workspace gauge is back to baseline (no leaked
// captures anywhere in the handoff).
func TestRebalanceUnderConcurrentIngest(t *testing.T) {
	tb := testbed.New()
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = 1.0 // coarse: this test is about concurrency, not accuracy
	base := time.Unix(1700000000, 0)
	wsBaseline := server.LeasedIngestWorkspaces()

	sites := []int{0, 3}
	capOpt := testbed.DefaultCaptureOptions()
	capOpt.Frames = 1
	quorum := len(sites)
	aps := tb.APsFor(sites, capOpt)
	apByID := map[uint32]*core.AP{}
	for si, s := range sites {
		apByID[uint32(s+1)] = aps[si]
	}

	const nClients, rounds = 8, 12
	next, err := cluster.NewShardMap(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pick half the clients from each side of the grown map, so the
	// swap is guaranteed to move some and keep others.
	var clients []uint32
	byOwner := map[int]int{}
	for id := uint32(1); len(clients) < nClients; id++ {
		if o := next.Owner(id); byOwner[o] < nClients/2 {
			byOwner[o]++
			clients = append(clients, id)
		}
	}

	// Pre-serialize the feed: rounds × APs frames, every client heard
	// by both APs each round, so each round is one flush per client.
	rng := rand.New(rand.NewSource(7))
	seqs := map[uint32]uint32{}
	var frames [][]byte
	for round := 0; round < rounds; round++ {
		at := base.Add(time.Duration(round) * time.Second)
		for _, s := range sites {
			apID := uint32(s + 1)
			var caps []server.Capture
			for ci, id := range clients {
				pos := geom.Pt(4+float64(ci)*4, 6)
				for _, fc := range tb.CaptureClient(pos, tb.Sites[s], capOpt, rng) {
					seqs[apID]++
					caps = append(caps, server.Capture{
						APID: apID, ClientID: id, Seq: seqs[apID],
						Timestamp: at, Streams: fc.Streams,
					})
				}
			}
			f, err := server.AppendBatch(nil, caps)
			if err != nil {
				t.Fatal(err)
			}
			frames = append(frames, f)
		}
	}
	wantFixes := nClients * rounds

	// Two live shards, routed by a 1-shard map until the swap.
	dir, err := os.MkdirTemp("", "athandoff")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	results := make(chan engine.Result, wantFixes+16)
	trOpt := engine.TrackerOptions{ProcessNoise: 0.3, MeasSigma: 0.8, Gate: 3,
		Now: func() time.Time { return base }}
	var shards []*cluster.LocalShard
	var views []cluster.Shard
	for i := 0; i < 2; i++ {
		s, err := cluster.NewLocalShard(cluster.LocalShardOptions{
			SocketPath: filepath.Join(dir, fmt.Sprintf("s%d.sock", i)),
			Quorum:     quorum, Window: time.Second,
			Engine:         engine.Options{Workers: 2, Queue: wantFixes + 16, Config: cfg},
			TrackerOptions: trOpt,
			Resolve:        func(apID uint32) *core.AP { return apByID[apID] },
			Min:            tb.Plan.Min, Max: tb.Plan.Max,
			OnResult: func(r engine.Result) { results <- r },
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		shards = append(shards, s)
		views = append(views, s.Shard())
	}
	initial, err := cluster.NewShardMap(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	router, err := cluster.NewRouter(initial, views)
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := net.Pipe()
	routerErr := make(chan error, 1)
	go func() { routerErr <- router.ServeConn(pr) }()

	// Feeder streams every frame flat out while the main goroutine
	// swaps the map mid-stream.
	feedErr := make(chan error, 1)
	go func() {
		for _, f := range frames {
			pw.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if _, err := pw.Write(f); err != nil {
				feedErr <- err
				return
			}
		}
		feedErr <- nil
	}()

	// Let some traffic land, then rebalance under fire.
	deadline := time.Now().Add(30 * time.Second)
	for shards[0].Engine.Stats().Fixes < uint64(nClients) {
		if time.Now().After(deadline) {
			t.Fatal("no fixes before rebalance")
		}
		time.Sleep(time.Millisecond)
	}
	st, err := router.Rebalance(next)
	if err != nil {
		t.Fatalf("rebalance under concurrent ingest: %v", err)
	}
	if st.MovedClients == 0 || st.MovedTracks == 0 {
		t.Fatalf("rebalance moved %d clients / %d tracks, want both > 0", st.MovedClients, st.MovedTracks)
	}

	if err := <-feedErr; err != nil {
		t.Fatalf("feeder: %v", err)
	}
	// Admitted == completed: every flush the cluster admitted produces
	// exactly one result, across the swap.
	for i := 0; i < wantFixes; i++ {
		select {
		case r := <-results:
			if r.Err != nil {
				t.Fatalf("fix %d failed for client %d: %v", i, r.ClientID, r.Err)
			}
		case <-time.After(20 * time.Second):
			for si, s := range shards {
				st := s.Engine.Stats()
				t.Logf("shard %d: ingested %d, pending clients %v, engine submitted %d completed %d fixes %d failures %d rejected %d",
					si, s.Backend.IngestedCaptures(), s.Backend.PendingClientIDs(),
					st.Submitted, st.Completed, st.Fixes, st.Failures, st.Rejected)
			}
			t.Logf("router: %+v", router.Stats())
			t.Fatalf("received %d of %d fixes after the swap", i, wantFixes)
		}
	}

	// Every moved client's track must be restorable on its new owner —
	// and gone from the losing shard.
	for _, id := range clients {
		owner := next.Owner(id)
		if _, ok := shards[owner].Tracker.Snapshot(id); !ok {
			t.Errorf("client %d has no track on its owner shard %d", id, owner)
		}
		if _, ok := shards[1-owner].Tracker.Snapshot(id); ok {
			t.Errorf("client %d still has a track on shard %d after the swap", id, 1-owner)
		}
	}

	// Tear down the wire — router first, then the shards, so no reader
	// goroutine still holds the workspace it leased for its next (never
	// arriving) frame — then check the pool gauge: every capture the
	// handoff touched (held, extracted, re-routed) went back.
	pw.Close()
	if err := <-routerErr; err != nil {
		t.Fatalf("router: %v", err)
	}
	for _, s := range shards {
		s.Engine.Drain()
		s.Close()
	}
	if leaked := server.LeasedIngestWorkspaces() - wsBaseline; leaked != 0 {
		t.Fatalf("pooled ingest workspaces leaked across the handoff: %d", leaked)
	}
}
