package wifi

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dsp"
)

func TestWavelength(t *testing.T) {
	// λ at 2.447 GHz ≈ 12.25 cm; half-wavelength spacing ≈ 6.13 cm,
	// matching the paper's quoted antenna spacing.
	if got := Wavelength(); math.Abs(got-0.1225) > 0.001 {
		t.Errorf("Wavelength = %v", got)
	}
}

func TestShortSymbolPeriodicity(t *testing.T) {
	// The 64-point IFFT of the short sequence must be periodic with
	// period 16 (energy only on subcarriers that are multiples of 4).
	td := timeDomain(shortSeq())
	for i := 0; i < 48; i++ {
		if cmplx.Abs(td[i]-td[i+16]) > 1e-12 {
			t.Fatalf("short training symbol not 16-periodic at %d", i)
		}
	}
}

func TestLongSymbolNotShortPeriodic(t *testing.T) {
	long := LongSymbol()
	var diff float64
	for i := 0; i < 48; i++ {
		diff += cmplx.Abs(long[i] - long[i+16])
	}
	if diff < 1e-6 {
		t.Error("long training symbol unexpectedly 16-periodic")
	}
}

func TestPreambleStructure(t *testing.T) {
	p := Preamble()
	if len(p) != 320 {
		t.Fatalf("preamble length = %d, want 320", len(p))
	}
	// The preamble is normalized to unit mean power; recover the scale
	// from the first sample to compare structure.
	short := ShortSymbol()
	scale := p[0] / short[0]
	// First 160 samples are ten repetitions of the short symbol.
	for i := 0; i < 160; i++ {
		if cmplx.Abs(p[i]-scale*short[i%16]) > 1e-9 {
			t.Fatalf("short section mismatch at %d", i)
		}
	}
	long := LongSymbol()
	// Guard interval is the last 32 samples of the long symbol.
	for i := 0; i < 32; i++ {
		if cmplx.Abs(p[160+i]-scale*long[32+i]) > 1e-9 {
			t.Fatalf("guard interval mismatch at %d", i)
		}
	}
	// Two identical long symbols follow.
	for i := 0; i < 64; i++ {
		if cmplx.Abs(p[192+i]-scale*long[i]) > 1e-9 || cmplx.Abs(p[256+i]-scale*long[i]) > 1e-9 {
			t.Fatalf("long symbols mismatch at %d", i)
		}
	}
	if got := dsp.Power(p); math.Abs(got-1) > 1e-9 {
		t.Errorf("preamble mean power = %v, want 1", got)
	}
}

func TestPreambleDuration(t *testing.T) {
	// 320 samples at 20 Msps = 16 µs.
	if got := float64(len(Preamble())) / BasebandRate; math.Abs(got-16e-6) > 1e-12 {
		t.Errorf("preamble duration = %v", got)
	}
}

func TestPreamble40(t *testing.T) {
	p := Preamble40()
	if len(p) != 640 {
		t.Fatalf("Preamble40 length = %d", len(p))
	}
	s0, s1 := LongSymbolOffsets40()
	if s0 != 384 || s1 != 512 {
		t.Errorf("long symbol offsets = %d,%d, want 384,512", s0, s1)
	}
	// S0 and S1 sections must be (nearly) identical after resampling.
	var diff, mag float64
	for i := 0; i < 2*LongSymbolSamples; i++ {
		diff += cmplx.Abs(p[s0+i] - p[s1+i])
		mag += cmplx.Abs(p[s0+i])
	}
	if diff/mag > 0.01 {
		t.Errorf("S0 vs S1 relative difference = %v", diff/mag)
	}
}

func TestSchmidlCoxDetectsOwnPreamble(t *testing.T) {
	// End-to-end sanity: the packet detector must find the preamble we
	// generate, at the 40 Msps front-end rate (period 32).
	p := Preamble40()
	x := make([]complex128, 200+len(p)+200)
	copy(x[200:], p)
	idx, ok := dsp.DetectFrame(x, 32, 0.85, 64)
	if !ok {
		t.Fatal("preamble not detected")
	}
	if idx < 200-32 || idx > 200+64 {
		t.Errorf("detected at %d, want near 200", idx)
	}
}

func TestAirTime(t *testing.T) {
	// ~222 µs for 1500 B at 54 Mbit/s (paper §4.4 item 1).
	if got := AirTime(1500, 54); got < 210e-6 || got > 250e-6 {
		t.Errorf("AirTime(1500,54) = %v", got)
	}
	// ~12 ms at 1 Mbit/s.
	if got := AirTime(1500, 1); got < 11e-3 || got > 13e-3 {
		t.Errorf("AirTime(1500,1) = %v", got)
	}
	if !math.IsInf(AirTime(100, 0), 1) {
		t.Error("zero bitrate should be +Inf")
	}
}

func TestFrameDuration(t *testing.T) {
	f := Frame{ClientID: 1, PayloadBytes: 1000, BitrateMbps: 11}
	if got := f.Duration(); got != AirTime(1000, 11) {
		t.Errorf("Duration = %v", got)
	}
}

func TestShortSeqSubcarrierPlacement(t *testing.T) {
	seq := shortSeq()
	nonzero := 0
	for k := -26; k <= 26; k++ {
		v := seq[k+26]
		if v != 0 {
			nonzero++
			if k%4 != 0 {
				t.Errorf("short sequence energy at subcarrier %d (not multiple of 4)", k)
			}
		}
	}
	if nonzero != 12 {
		t.Errorf("short sequence has %d nonzero subcarriers, want 12", nonzero)
	}
}

func TestLongSeqDCNull(t *testing.T) {
	if longSeq()[26] != 0 {
		t.Error("long sequence DC subcarrier not null")
	}
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		v := longSeq()[k+26]
		if real(v) != 1 && real(v) != -1 || imag(v) != 0 {
			t.Errorf("long sequence subcarrier %d = %v, want ±1", k, v)
		}
	}
}
