// Package wifi models the parts of 802.11a/g that ArrayTrack touches:
// the OFDM PLCP preamble (ten short training symbols, guard interval,
// two long training symbols — Figure 2 of the paper), frame air-time,
// and the 20→40 Msps sample-rate conversion performed by the WARP
// front ends.
package wifi

import (
	"math"

	"repro/internal/dsp"
)

// Physical-layer constants for 2.4 GHz 802.11g OFDM.
const (
	// CarrierHz is the RF carrier frequency.
	CarrierHz = 2.447e9 // channel 8, mid-band
	// SpeedOfLight in m/s.
	SpeedOfLight = 299792458.0
	// BasebandRate is the native OFDM sample rate (20 Msps).
	BasebandRate = 20e6
	// WARPRate is the AP front-end sampling rate (40 Msps), as in §2.1.
	WARPRate = 40e6
	// NFFT is the OFDM FFT size.
	NFFT = 64
	// ShortSymbolSamples is the length of one short training symbol at
	// 20 Msps (0.8 µs).
	ShortSymbolSamples = 16
	// LongSymbolSamples is the length of one long training symbol at
	// 20 Msps (3.2 µs).
	LongSymbolSamples = 64
	// GuardSamples is the long-preamble guard interval at 20 Msps
	// (1.6 µs = two short symbols).
	GuardSamples = 32
	// NumShortSymbols is the count of repeated short training symbols
	// (s0…s9 in Figure 2).
	NumShortSymbols = 10
)

// Wavelength returns the carrier wavelength in metres (≈12.25 cm at
// 2.447 GHz; the paper's λ/2 antenna spacing of 6.13 cm matches).
func Wavelength() float64 { return SpeedOfLight / CarrierHz }

// shortSeq is the frequency-domain short training sequence S_{-26..26}
// from IEEE 802.11-2012 §18.3.3, scaled by sqrt(13/6). Index 0 here is
// subcarrier -26.
func shortSeq() []complex128 {
	s := math.Sqrt(13.0 / 6.0)
	p := complex(s, s)
	m := complex(-s, -s)
	seq := make([]complex128, 53)
	// Non-zero entries at subcarriers ±{4,8,12,16,20,24} and -26? No:
	// the standard places them at -24,-20,-16,-12,-8,-4,4,8,12,16,20,24.
	set := func(k int, v complex128) { seq[k+26] = v }
	set(-24, p)
	set(-20, m)
	set(-16, p)
	set(-12, m)
	set(-8, m)
	set(-4, p)
	set(4, m)
	set(8, m)
	set(12, p)
	set(16, p)
	set(20, p)
	set(24, p)
	return seq
}

// longSeq is the frequency-domain long training sequence L_{-26..26}
// from IEEE 802.11-2012 §18.3.3.
func longSeq() []complex128 {
	vals := []float64{
		1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1,
		1, -1, 1, 1, 1, 1, // subcarriers -26..-1
		0, // DC
		1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1,
		1, -1, 1, -1, 1, 1, 1, 1, // subcarriers 1..26
	}
	seq := make([]complex128, 53)
	for i, v := range vals {
		seq[i] = complex(v, 0)
	}
	return seq
}

// timeDomain converts a 53-entry frequency-domain sequence (subcarriers
// -26..26) into one 64-sample time-domain OFDM symbol at 20 Msps.
func timeDomain(seq []complex128) []complex128 {
	bins := make([]complex128, NFFT)
	for k := -26; k <= 26; k++ {
		v := seq[k+26]
		if k >= 0 {
			bins[k] = v
		} else {
			bins[NFFT+k] = v
		}
	}
	return dsp.IFFT(bins)
}

// ShortSymbol returns one 16-sample short training symbol at 20 Msps.
// The 64-point IFFT of the short sequence is periodic with period 16,
// so the symbol is its first quarter.
func ShortSymbol() []complex128 {
	td := timeDomain(shortSeq())
	out := make([]complex128, ShortSymbolSamples)
	copy(out, td[:ShortSymbolSamples])
	return out
}

// LongSymbol returns one 64-sample long training symbol at 20 Msps.
func LongSymbol() []complex128 {
	return timeDomain(longSeq())
}

// Preamble returns the full 802.11 OFDM PLCP preamble at 20 Msps:
// ten short training symbols (8 µs), the long guard interval (1.6 µs),
// and two long training symbols (6.4 µs) — 320 samples, 16 µs. The
// output is scaled to unit mean power, the normalization the channel
// simulator's TxPowerDBm accounting assumes.
func Preamble() []complex128 {
	short := ShortSymbol()
	long := LongSymbol()
	out := make([]complex128, 0, NumShortSymbols*ShortSymbolSamples+GuardSamples+2*LongSymbolSamples)
	for i := 0; i < NumShortSymbols; i++ {
		out = append(out, short...)
	}
	// The guard interval is a cyclic prefix: the last 32 samples of the
	// long symbol.
	out = append(out, long[LongSymbolSamples-GuardSamples:]...)
	out = append(out, long...)
	out = append(out, long...)
	scale := complex(1/math.Sqrt(dsp.Power(out)), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// Preamble40 returns the preamble resampled to the 40 Msps WARP
// front-end rate (640 samples).
func Preamble40() []complex128 {
	return dsp.Upsample(Preamble(), 2)
}

// LongSymbolOffsets40 returns the sample offsets, at 40 Msps, of the
// first samples of long training symbols S0 and S1 within Preamble40.
// Diversity synthesis (§2.2) records S0 on the upper antenna set and S1
// on the lower set.
func LongSymbolOffsets40() (s0, s1 int) {
	base := NumShortSymbols*ShortSymbolSamples + GuardSamples
	return 2 * base, 2 * (base + LongSymbolSamples)
}

// PreambleDuration is the preamble air time (16 µs).
const PreambleDuration = 16e-6

// AirTime returns the time on air of a frame of the given payload size
// at the given bit rate, including the 16 µs preamble and 4 µs PLCP
// header (§4.4's T term: ~222 µs for 1500 B at 54 Mbit/s, ~12 ms at
// 1 Mbit/s).
func AirTime(payloadBytes int, bitrateMbps float64) float64 {
	if bitrateMbps <= 0 {
		return math.Inf(1)
	}
	const header = 4e-6
	return PreambleDuration + header + float64(payloadBytes*8)/(bitrateMbps*1e6)
}

// Frame describes a transmission for the simulator: who sent it, when,
// and at what rate. The contents are immaterial to ArrayTrack (§2.1) so
// only metadata is modelled; the payload is represented by its length.
type Frame struct {
	// ClientID identifies the transmitting client.
	ClientID int
	// PayloadBytes is the MPDU length.
	PayloadBytes int
	// BitrateMbps is the data rate of the body (the preamble is always
	// sent at base rate).
	BitrateMbps float64
	// StartTime is the transmission start, seconds since epoch of the
	// experiment.
	StartTime float64
}

// Duration returns the frame's total air time in seconds.
func (f Frame) Duration() float64 { return AirTime(f.PayloadBytes, f.BitrateMbps) }
