package ops_test

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/music"
	"repro/internal/ops"
	"repro/internal/server"
)

// walkTracker builds a tracker with a few matured client tracks on a
// pinned clock.
func walkTracker(base time.Time) *engine.Tracker {
	tr := engine.NewTracker(engine.TrackerOptions{MeasSigma: 0.4, Gate: 4,
		TTL: time.Minute, Now: func() time.Time { return base.Add(10 * time.Second) }})
	for i := 0; i < 8; i++ {
		at := base.Add(time.Duration(i) * time.Second)
		tr.Observe(7, geom.Pt(2+0.5*float64(i), 5), at)
		tr.Observe(9, geom.Pt(30, 12), at)
	}
	return tr
}

// TestSnapshotSaveLoadRoundTrip: Save → Load → Restore reproduces the
// drained tracker's predictions bit-for-bit.
func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	base := time.Unix(1700000000, 0)
	tr := walkTracker(base)
	path := filepath.Join(t.TempDir(), "tracks.json")
	snap := ops.NewSnapshot(tr, base.Add(10*time.Second).UnixNano())
	if len(snap.Tracks) != 2 {
		t.Fatalf("snapshot holds %d tracks, want 2", len(snap.Tracks))
	}
	if err := ops.Save(path, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := ops.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Version != ops.SnapshotVersion || len(loaded.Tracks) != 2 {
		t.Fatalf("loaded snapshot: version %d, %d tracks", loaded.Version, len(loaded.Tracks))
	}

	fresh := engine.NewTracker(engine.TrackerOptions{MeasSigma: 0.4, Gate: 4,
		TTL: time.Minute, Now: func() time.Time { return base.Add(10 * time.Second) }})
	if n := fresh.Restore(loaded.Tracks); n != 2 {
		t.Fatalf("restored %d tracks, want 2", n)
	}
	at := base.Add(11 * time.Second)
	for _, id := range []uint32{7, 9} {
		want, ok1 := tr.Predict(id, at, 3)
		got, ok2 := fresh.Predict(id, at, 3)
		if !ok1 || !ok2 {
			t.Fatalf("client %d: predict ok = %v/%v", id, ok1, ok2)
		}
		if got != want {
			t.Fatalf("client %d: restored prediction %+v != live %+v", id, got, want)
		}
	}
}

// TestSnapshotLoadRejectsVersionSkew: a future-versioned file fails
// with ErrSnapshotVersion instead of being misparsed.
func TestSnapshotLoadRejectsVersionSkew(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tracks.json")
	base := time.Unix(1700000000, 0)
	snap := ops.NewSnapshot(walkTracker(base), base.UnixNano())
	snap.Version = ops.SnapshotVersion + 1
	if err := ops.Save(path, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := ops.Load(path); err == nil || !strings.Contains(err.Error(), "unsupported snapshot version") {
		t.Fatalf("version skew: err = %v, want ErrSnapshotVersion", err)
	}
}

func opsServer(t *testing.T) (*ops.Server, *engine.Engine, *engine.Tracker) {
	t.Helper()
	base := time.Unix(1700000000, 0)
	tr := walkTracker(base)
	synth := core.NewSynthCacheBudget(64 << 20)
	steer := music.NewSteeringCacheBudget(32 << 20)
	eng := engine.New(engine.Options{
		Workers: 1,
		Config:  core.Config{Wavelength: 0.1225, GridCell: 0.5, SynthCache: synth, Steering: steer},
		Tracker: tr, ClientQuota: 16,
		Predict: true, PredictSigma: 4,
	})
	t.Cleanup(eng.Close)
	pending := 3
	backend := server.NewBackend(2, 100*time.Millisecond, func(uint32, []server.Capture) {})
	backend.ErrorBudget = 2
	backend.NoteAPError(5)
	backend.NoteAPError(5) // quarantine AP 5 so the gauge is non-zero
	return &ops.Server{
		Engine: eng, SynthCache: synth, Steering: steer,
		PendingClients: func() int { return pending },
		Backend:        backend,
	}, eng, tr
}

// TestMetricsEndpoint: /metrics speaks Prometheus text format and
// carries the engine, tracker, scheduler, and cache families.
func TestMetricsEndpoint(t *testing.T) {
	srv, _, _ := opsServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE arraytrack_jobs_submitted_total counter",
		"arraytrack_tracked_clients 2",
		"arraytrack_pending_clients 3",
		"arraytrack_synth_cache_budget_bytes 67108864",
		"arraytrack_steering_cache_budget_bytes 33554432",
		`arraytrack_predict_fallback_total{reason="no_track"}`,
		"arraytrack_predict_sigma 4",
		"arraytrack_client_quota 16",
		"arraytrack_track_observed_total 16",
		"arraytrack_shed_total 0",
		"arraytrack_degraded_fixes_total 0",
		"arraytrack_track_skew_clamped_total 0",
		"arraytrack_track_nonmonotonic_total 0",
		"arraytrack_ap_quarantines_total 1",
		"arraytrack_quarantined_aps 1",
		"arraytrack_quarantine_dropped_total 0",
		"arraytrack_degraded_flushes_total 0",
		"arraytrack_stale_dropped_total 0",
		"arraytrack_conn_errors_total 0",
		"arraytrack_deadline_reaped_total 0",
		"# TYPE arraytrack_udp_seq_gaps_total counter",
		"# TYPE arraytrack_udp_datagrams_total counter",
		"# TYPE arraytrack_leased_ingest_workspaces gauge",
		"arraytrack_shed_after_ms 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestClientIntrospection: /clients indexes live tracks and
// /clients/{id} reports one client's smoothed state.
func TestClientIntrospection(t *testing.T) {
	srv, _, tr := opsServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/clients")
	if err != nil {
		t.Fatal(err)
	}
	var index struct {
		Clients []uint32 `json:"clients"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&index); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(index.Clients) != 2 || index.Clients[0] != 7 || index.Clients[1] != 9 {
		t.Fatalf("client index = %v, want [7 9]", index.Clients)
	}

	resp, err = ts.Client().Get(ts.URL + "/clients/7")
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ClientID uint32 `json:"client_id"`
		Smoothed struct{ X, Y float64 }
		Accepted bool `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want, _ := tr.Snapshot(7)
	if view.ClientID != 7 || view.Smoothed.X != want.Smoothed.X || view.Accepted != want.Accepted {
		t.Fatalf("client view %+v != snapshot %+v", view, want)
	}

	if resp, _ := ts.Client().Get(ts.URL + "/clients/999"); resp.StatusCode != 404 {
		t.Fatalf("untracked client = %d, want 404", resp.StatusCode)
	}
}

// TestKnobsApplyAndReadback: POST /knobs hot-reloads partial documents
// and GET /knobs reads the live values back.
func TestKnobsApplyAndReadback(t *testing.T) {
	srv, eng, tr := opsServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	doc := `{"synth_cache_budget": 1048576, "client_quota": 4, "predict_sigma": 6, "track_ttl_ms": 5000, "shed_after_ms": 250}`
	resp, err := ts.Client().Post(ts.URL+"/knobs", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var applied struct {
		Applied []string `json:"applied"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&applied); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(applied.Applied) != 5 {
		t.Fatalf("applied = %v, want 5 knobs", applied.Applied)
	}
	if b := srv.SynthCache.Budget(); b != 1<<20 {
		t.Fatalf("synth budget = %d, want %d", b, 1<<20)
	}
	if q := eng.ClientQuota(); q != 4 {
		t.Fatalf("client quota = %d, want 4", q)
	}
	if s := eng.PredictSigma(); s != 6 {
		t.Fatalf("predict sigma = %v, want 6", s)
	}
	if ttl := tr.TTL(); ttl != 5*time.Second {
		t.Fatalf("track TTL = %v, want 5s", ttl)
	}
	if shed := eng.ShedAfter(); shed != 250*time.Millisecond {
		t.Fatalf("shed after = %v, want 250ms", shed)
	}

	// Unnamed knobs stay put (partial update), and readback agrees.
	resp, err = ts.Client().Get(ts.URL + "/knobs")
	if err != nil {
		t.Fatal(err)
	}
	var live ops.Knobs
	if err := json.NewDecoder(resp.Body).Decode(&live); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if live.SteeringCacheBudget == nil || *live.SteeringCacheBudget != 32<<20 {
		t.Fatalf("steering budget changed by a document that did not name it: %+v", live.SteeringCacheBudget)
	}
	if live.ClientQuota == nil || *live.ClientQuota != 4 {
		t.Fatalf("knobs readback quota = %+v, want 4", live.ClientQuota)
	}

	// Unknown fields are rejected — a typoed knob must not silently
	// no-op.
	resp, err = ts.Client().Post(ts.URL+"/knobs", "application/json", strings.NewReader(`{"clint_quota": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("typoed knob = %d, want 400", resp.StatusCode)
	}
}
