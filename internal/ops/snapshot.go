// Package ops is the operational surface of an ArrayTrack deployment:
// versioned snapshot/restore of tracker state (the restart and shard-
// migration primitive), an HTTP metrics and introspection endpoint,
// and hot-reload of the knobs that are safe to change on a serving
// process. It exists so a long-lived arraytrack-server can be run like
// a service — drained, restarted, and observed — without losing the
// Kalman tracks that are the paper's headline output.
package ops

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/engine"
)

// SnapshotVersion is the current on-disk snapshot format. Load refuses
// files written by a different (future) version instead of guessing at
// their layout.
const SnapshotVersion = 1

// ErrSnapshotVersion is wrapped by Load when the file's version does
// not match SnapshotVersion.
var ErrSnapshotVersion = errors.New("ops: unsupported snapshot version")

// Snapshot is the on-disk restart image: every live client track,
// serialized losslessly. encoding/json emits the shortest decimal that
// round-trips each float64 exactly, so a restored filter's state is
// bit-identical to the drained one — Predict after restore computes
// exactly what the old process would have.
type Snapshot struct {
	Version       int                     `json:"version"`
	SavedUnixNano int64                   `json:"saved_unix_nano"`
	Tracks        []engine.ClientSnapshot `json:"tracks"`
}

// NewSnapshot stamps a snapshot of the tracker's live clients at the
// given wall-clock time (UnixNano).
func NewSnapshot(t *engine.Tracker, savedUnixNano int64) Snapshot {
	return Snapshot{
		Version:       SnapshotVersion,
		SavedUnixNano: savedUnixNano,
		Tracks:        t.SnapshotAll(),
	}
}

// Save writes the snapshot atomically: a temp file in the target's
// directory, fsynced, then renamed over the destination. A crash mid-
// write leaves the previous snapshot intact, never a torn file.
func Save(path string, s Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("ops: marshal snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ops: save snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("ops: save snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ops: save snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ops: save snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ops: save snapshot: %w", err)
	}
	return nil
}

// Load reads and validates a snapshot written by Save.
func Load(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("ops: load snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("ops: load snapshot %s: %w", path, err)
	}
	if s.Version != SnapshotVersion {
		return Snapshot{}, fmt.Errorf("%w: file %s has version %d, want %d",
			ErrSnapshotVersion, path, s.Version, SnapshotVersion)
	}
	return s, nil
}
