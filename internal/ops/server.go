package ops

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/music"
	"repro/internal/server"
)

// Server exposes a running engine's metrics, per-client track
// introspection, and the hot-reloadable knobs over HTTP. Only Engine
// is required; nil optional fields simply hide the corresponding
// surface. All handlers are safe for concurrent use — they only touch
// the engine's own concurrency-safe accessors.
type Server struct {
	// Engine is the serving engine. Required.
	Engine *engine.Engine
	// SynthCache and Steering are the caches the engine's config was
	// built with; needed only for hot-reloading their budgets (the
	// metrics come through engine.Stats either way).
	SynthCache *core.SynthCache
	Steering   *music.SteeringCache
	// PendingClients, when non-nil, reports the backend's count of
	// clients buffered below quorum (exported as a gauge).
	PendingClients func() int
	// Backend, when non-nil, exports the ingest self-defense counters
	// (connection errors, idle reaps, AP quarantine, degraded flushes)
	// and the UDP datagram-mode health counters.
	Backend *server.Backend
	// Sink, when non-nil, exports the capture sink's clock-skew guard
	// counter.
	Sink *engine.CaptureSink
}

// Handler returns the ops mux:
//
//	GET  /metrics       Prometheus text exposition of every counter
//	GET  /healthz       200 ok
//	GET  /clients       JSON index of live tracked client IDs
//	GET  /clients/{id}  one client's smoothed track state
//	GET  /knobs         current values of the hot-reloadable knobs
//	POST /knobs         apply a Knobs JSON document (partial updates)
//	     /cluster/*     shard-handoff control surface (see cluster.go)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /clients", s.handleClients)
	mux.HandleFunc("GET /clients/{id}", s.handleClient)
	mux.HandleFunc("GET /knobs", s.handleKnobsGet)
	mux.HandleFunc("POST /knobs", s.handleKnobsPost)
	s.registerCluster(mux)
	return mux
}

// promWriter accumulates one Prometheus text-format exposition; the
// hand-rolled writer keeps the repo dependency-free.
type promWriter struct {
	b strings.Builder
}

func (p *promWriter) counter(name, help string, v uint64) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func (p *promWriter) gauge(name, help string, v int64) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

func (p *promWriter) gaugeF(name, help string, v float64) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Engine.Stats()
	var p promWriter

	p.counter("arraytrack_jobs_submitted_total", "Jobs accepted into the scheduler (both lanes).", st.Submitted)
	p.counter("arraytrack_jobs_priority_submitted_total", "Jobs accepted into the latency lane.", st.PrioritySubmitted)
	p.counter("arraytrack_jobs_completed_total", "Jobs finished (fixes + failures).", st.Completed)
	p.counter("arraytrack_fixes_total", "Successful localizations.", st.Fixes)
	p.counter("arraytrack_failures_total", "Jobs that returned an error.", st.Failures)
	p.counter("arraytrack_rejected_total", "Submissions refused (closed or quota).", st.Rejected)
	p.counter("arraytrack_quota_rejected_total", "Submissions refused with the per-client quota.", st.QuotaRejected)
	p.counter("arraytrack_sched_aged_batch_total", "Batch jobs served ahead of priority traffic after ageing out.", st.AgedBatch)
	p.counter("arraytrack_sched_priority_stolen_total", "Priority jobs run inline at a batch synthesis yield point.", st.PriorityStolen)

	p.counter("arraytrack_predicted_fixes_total", "Fixes served from the verified track-guided region.", st.Predicted)
	for _, f := range []struct {
		reason string
		v      uint64
	}{
		{"no_track", st.PredictFallbackNoTrack},
		{"border", st.PredictFallbackBorder},
		{"gate", st.PredictFallbackGate},
		{"error", st.PredictFallbackError},
	} {
		name := "arraytrack_predict_fallback_total"
		if f.reason == "no_track" {
			fmt.Fprintf(&p.b, "# HELP %s Predictive attempts that fell back to the full grid, by reason.\n# TYPE %s counter\n", name, name)
		}
		fmt.Fprintf(&p.b, "%s{reason=%q} %d\n", name, f.reason, f.v)
	}

	p.gauge("arraytrack_workers", "Localization worker pool size.", int64(st.Workers))
	p.gauge("arraytrack_queue_depth", "Instantaneous batch lane depth.", int64(st.Queued))
	p.gauge("arraytrack_priority_queue_depth", "Instantaneous latency lane depth.", int64(st.PriorityQueued))
	p.gauge("arraytrack_tracked_clients", "Live client tracks.", int64(st.TrackedClients))
	p.counter("arraytrack_track_gate_rejects_total", "Fixes discarded by the tracker's Mahalanobis gate.", st.TrackRejects)
	if tr := s.Engine.Tracker(); tr != nil {
		ts := tr.Stats()
		p.counter("arraytrack_track_observed_total", "Fixes folded into client tracks.", ts.Observed)
		p.counter("arraytrack_track_evicted_total", "Stale client tracks evicted.", ts.Evicted)
	}
	if s.PendingClients != nil {
		p.gauge("arraytrack_pending_clients", "Clients buffered below capture quorum.", int64(s.PendingClients()))
	}

	p.counter("arraytrack_shed_total", "Batch jobs failed with ErrOverloaded after ageing past the shed bound.", st.Shed)
	p.counter("arraytrack_degraded_fixes_total", "Fixes produced from degraded-quorum capture groups.", st.DegradedFixes)
	if tr := s.Engine.Tracker(); tr != nil {
		ts := tr.Stats()
		p.counter("arraytrack_track_skew_clamped_total", "Fix timestamps clamped by the tracker's clock-skew guard.", ts.SkewClamped)
		p.counter("arraytrack_track_nonmonotonic_total", "Fixes that arrived behind their track (folded in at dt=0).", ts.NonMonotonic)
		p.counter("arraytrack_track_degraded_observed_total", "Degraded-quorum fixes folded into tracks.", ts.DegradedObserved)
	}
	if s.Sink != nil {
		p.counter("arraytrack_sink_skew_ignored_total", "Capture timestamps the sink's clock-skew guard excluded from time selection.", s.Sink.SkewIgnored())
	}
	if s.Backend != nil {
		h := s.Backend.Health()
		p.counter("arraytrack_conn_errors_total", "Ingest connections terminated on a read or decode error.", h.ConnErrors)
		p.counter("arraytrack_deadline_reaped_total", "Ingest connections reaped by the idle deadline.", h.DeadlineReaped)
		p.counter("arraytrack_ap_quarantines_total", "Times an AP entered quarantine after exhausting its error budget.", h.Quarantines)
		p.counter("arraytrack_quarantine_dropped_total", "Captures dropped because their AP was quarantined.", h.QuarantinedDropped)
		p.counter("arraytrack_degraded_flushes_total", "Capture groups flushed below full quorum.", h.DegradedFlushes)
		p.counter("arraytrack_stale_dropped_total", "Stuck groups released as undispatchable by the sweep.", h.StaleDropped)
		p.gauge("arraytrack_quarantined_aps", "APs currently quarantined.", int64(h.Quarantined))
		u := s.Backend.UDP()
		p.counter("arraytrack_udp_datagrams_total", "Well-formed batch-frame datagrams ingested.", u.Datagrams)
		p.counter("arraytrack_udp_captures_total", "Captures carried by ingested datagrams.", u.Captures)
		p.counter("arraytrack_udp_bad_total", "Datagrams dropped as undecodable.", u.Bad)
		p.counter("arraytrack_udp_seq_gaps_total", "Missing per-AP capture sequence numbers (datagram loss).", u.SeqGaps)
		p.counter("arraytrack_udp_seq_reorders_total", "Captures that arrived at or below their AP's newest sequence number.", u.SeqReorders)
		p.gauge("arraytrack_leased_ingest_workspaces", "Pooled ingest workspaces currently leased (leaks show as a plateau).", server.LeasedIngestWorkspaces())
	}

	p.gauge("arraytrack_synth_cache_entries", "Bearing LUTs held by the synthesis cache.", int64(st.SynthLUTs))
	p.gauge("arraytrack_synth_cache_bytes", "Accounted synthesis cache size.", st.SynthBytes)
	p.gauge("arraytrack_synth_cache_budget_bytes", "Synthesis cache byte budget (0 = unbounded).", st.SynthBudget)
	p.counter("arraytrack_synth_cache_hits_total", "Synthesis cache lookup hits.", st.SynthHits)
	p.counter("arraytrack_synth_cache_misses_total", "Synthesis cache lookup misses.", st.SynthMisses)
	p.counter("arraytrack_synth_cache_evictions_total", "Synthesis cache evictions.", st.SynthEvictions)
	p.counter("arraytrack_synth_cache_slices_total", "Region LUTs sliced from cached full-grid entries.", st.SynthSlices)
	p.counter("arraytrack_synth_cache_second_choice_total", "LUT insertions placed at their second-choice shard (two-choice placement).", st.SynthSecondChoice)
	p.counter("arraytrack_synth_cache_spills_total", "Oversized or unretainable LUTs served pass-through without caching.", st.SynthSpills)
	p.counter("arraytrack_synth_cache_dense_evictions_total", "Evictions of dense-pitch-scale LUT entries (>= 4 MiB).", st.SynthDenseEvictions)

	p.gauge("arraytrack_steering_cache_entries", "Steering tables held.", int64(st.SteeringTables))
	p.gauge("arraytrack_steering_cache_bytes", "Accounted steering cache size.", st.SteeringBytes)
	p.gauge("arraytrack_steering_cache_budget_bytes", "Steering cache byte budget (0 = unbounded).", st.SteeringBudget)
	p.counter("arraytrack_steering_cache_hits_total", "Steering cache lookup hits.", st.SteeringHits)
	p.counter("arraytrack_steering_cache_misses_total", "Steering cache lookup misses.", st.SteeringMisses)
	p.counter("arraytrack_steering_cache_evictions_total", "Steering cache evictions.", st.SteeringEvictions)

	p.gaugeF("arraytrack_predict_sigma", "Live predictive-region sigma (0 = predictive path disabled).", s.Engine.PredictSigma())
	p.gauge("arraytrack_client_quota", "Per-client scheduler token budget (0 = unlimited).", int64(s.Engine.ClientQuota()))
	p.gauge("arraytrack_age_limit_seconds", "Batch ageing bound in seconds (negative = disabled).", int64(s.Engine.AgeLimit()/time.Second))
	if tr := s.Engine.Tracker(); tr != nil {
		p.gauge("arraytrack_track_ttl_seconds", "Track eviction TTL in seconds (0 = disabled).", int64(tr.TTL()/time.Second))
	}
	p.gauge("arraytrack_shed_after_ms", "Overload-shedding age bound in milliseconds (0 = shedding off).", int64(s.Engine.ShedAfter()/time.Millisecond))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, p.b.String())
}

// clientView is the introspection JSON for one tracked client.
type clientView struct {
	ClientID uint32     `json:"client_id"`
	Time     time.Time  `json:"time"`
	Smoothed geom.Point `json:"smoothed"`
	Vel      geom.Vec   `json:"vel"`
	Accepted bool       `json:"accepted"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleClients(w http.ResponseWriter, _ *http.Request) {
	tr := s.Engine.Tracker()
	if tr == nil {
		http.Error(w, "no tracker configured", http.StatusNotFound)
		return
	}
	ids := tr.Clients()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	writeJSON(w, struct {
		Clients []uint32 `json:"clients"`
	}{Clients: ids})
}

func (s *Server) handleClient(w http.ResponseWriter, r *http.Request) {
	tr := s.Engine.Tracker()
	if tr == nil {
		http.Error(w, "no tracker configured", http.StatusNotFound)
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		http.Error(w, "bad client id", http.StatusBadRequest)
		return
	}
	snap, ok := tr.Snapshot(uint32(id))
	if !ok {
		http.Error(w, "client not tracked", http.StatusNotFound)
		return
	}
	writeJSON(w, clientView{
		ClientID: snap.ClientID,
		Time:     snap.Time,
		Smoothed: snap.Smoothed,
		Vel:      snap.Vel,
		Accepted: snap.Accepted,
	})
}
