package ops

import (
	"encoding/json"
	"net/http"
	"time"
)

// Knobs is the set of parameters safe to change on a serving process:
// none of them invalidate in-flight jobs or cached state — caches
// re-evict to a shrunk budget, the scheduler re-reads quotas per
// admission, and the predictive sigma / track TTL are loaded per job.
// Every field is a pointer; nil means "leave unchanged", so a partial
// JSON document (or config file) updates only what it names.
type Knobs struct {
	// SynthCacheBudget resizes the synthesis LUT cache (bytes,
	// 0 = unbounded).
	SynthCacheBudget *int64 `json:"synth_cache_budget,omitempty"`
	// SteeringCacheBudget resizes the steering-vector cache (bytes,
	// 0 = unbounded).
	SteeringCacheBudget *int64 `json:"steering_cache_budget,omitempty"`
	// ClientQuota resets the per-client scheduler token budget
	// (0 = unlimited).
	ClientQuota *int `json:"client_quota,omitempty"`
	// AgeLimitMillis resets the batch ageing bound (0 = scheduler
	// default, negative disables).
	AgeLimitMillis *int64 `json:"age_limit_ms,omitempty"`
	// PredictSigma resets the predictive-region sigma (0 = engine
	// default, negative disables the predictive path; clamped up to
	// the tracker gate).
	PredictSigma *float64 `json:"predict_sigma,omitempty"`
	// TrackTTLMillis resets the track eviction TTL (≤0 disables
	// eviction).
	TrackTTLMillis *int64 `json:"track_ttl_ms,omitempty"`
	// ShedAfterMillis resets the overload-shedding age bound (≤0
	// disables shedding).
	ShedAfterMillis *int64 `json:"shed_after_ms,omitempty"`
}

// Apply pushes every non-nil knob onto the serving process and returns
// the names of the knobs it applied (for the reload log line). Knobs
// whose target is absent — e.g. a cache the Server was not handed — are
// skipped silently: the document stays portable across configurations.
func (s *Server) Apply(k Knobs) []string {
	var applied []string
	if k.SynthCacheBudget != nil && s.SynthCache != nil {
		s.SynthCache.SetBudget(*k.SynthCacheBudget)
		applied = append(applied, "synth_cache_budget")
	}
	if k.SteeringCacheBudget != nil && s.Steering != nil {
		s.Steering.SetBudget(*k.SteeringCacheBudget)
		applied = append(applied, "steering_cache_budget")
	}
	if k.ClientQuota != nil {
		s.Engine.SetClientQuota(*k.ClientQuota)
		applied = append(applied, "client_quota")
	}
	if k.AgeLimitMillis != nil {
		s.Engine.SetAgeLimit(time.Duration(*k.AgeLimitMillis) * time.Millisecond)
		applied = append(applied, "age_limit_ms")
	}
	if k.PredictSigma != nil {
		s.Engine.SetPredictSigma(*k.PredictSigma)
		applied = append(applied, "predict_sigma")
	}
	if k.TrackTTLMillis != nil {
		if tr := s.Engine.Tracker(); tr != nil {
			tr.SetTTL(time.Duration(*k.TrackTTLMillis) * time.Millisecond)
			applied = append(applied, "track_ttl_ms")
		}
	}
	if k.ShedAfterMillis != nil {
		s.Engine.SetShedAfter(time.Duration(*k.ShedAfterMillis) * time.Millisecond)
		applied = append(applied, "shed_after_ms")
	}
	return applied
}

// Current reads back the live values of every knob the server can
// reach, for GET /knobs and the reload log.
func (s *Server) Current() Knobs {
	var k Knobs
	if s.SynthCache != nil {
		v := s.SynthCache.Budget()
		k.SynthCacheBudget = &v
	}
	if s.Steering != nil {
		v := s.Steering.Budget()
		k.SteeringCacheBudget = &v
	}
	q := s.Engine.ClientQuota()
	k.ClientQuota = &q
	age := int64(s.Engine.AgeLimit() / time.Millisecond)
	k.AgeLimitMillis = &age
	sigma := s.Engine.PredictSigma()
	k.PredictSigma = &sigma
	if tr := s.Engine.Tracker(); tr != nil {
		ttl := int64(tr.TTL() / time.Millisecond)
		k.TrackTTLMillis = &ttl
	}
	shed := int64(s.Engine.ShedAfter() / time.Millisecond)
	k.ShedAfterMillis = &shed
	return k
}

func (s *Server) handleKnobsGet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Current())
}

func (s *Server) handleKnobsPost(w http.ResponseWriter, r *http.Request) {
	var k Knobs
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&k); err != nil {
		http.Error(w, "bad knobs document: "+err.Error(), http.StatusBadRequest)
		return
	}
	applied := s.Apply(k)
	writeJSON(w, struct {
		Applied []string `json:"applied"`
		Live    Knobs    `json:"live"`
	}{Applied: applied, Live: s.Current()})
}
