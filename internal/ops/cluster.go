package ops

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/engine"
	"repro/internal/server"
)

// The /cluster endpoints expose the shard-handoff control surface a
// cluster router drives during a rebalance (cluster.Control, mirrored
// by cluster.HTTPShard). Reads are GETs; the operations taking a
// client list are POSTs with a JSON body — a migration can name
// thousands of clients, more than a query string should carry.
//
//	GET  /cluster/ingested  settled-capture counter (consumption barrier)
//	GET  /cluster/clients   every client with shard-local state
//	POST /cluster/inflight  {"clients":[...]} -> summed in-flight jobs
//	POST /cluster/extract   {"clients":[...]} -> v3 frames (octet-stream,
//	                        X-Capture-Count), removing pending groups
//	POST /cluster/snapshot  {"clients":[...]} -> their Kalman tracks
//	POST /cluster/restore   {"tracks":[...]}  -> install snapshots
//	POST /cluster/remove    {"clients":[...]} -> drop tracks
//
// They require both a Backend and a Tracker and answer 404 otherwise:
// a shard without them has nothing to hand off.

// clientsBody is the request body naming the clients an operation
// covers.
type clientsBody struct {
	Clients []uint32 `json:"clients"`
}

// tracksBody carries track snapshots into /cluster/restore and out of
// /cluster/snapshot.
type tracksBody struct {
	Tracks []engine.ClientSnapshot `json:"tracks"`
}

func (s *Server) registerCluster(mux *http.ServeMux) {
	mux.HandleFunc("GET /cluster/ingested", s.clusterGated(s.handleClusterIngested))
	mux.HandleFunc("GET /cluster/clients", s.clusterGated(s.handleClusterClients))
	mux.HandleFunc("POST /cluster/inflight", s.clusterGated(s.handleClusterInFlight))
	mux.HandleFunc("POST /cluster/extract", s.clusterGated(s.handleClusterExtract))
	mux.HandleFunc("POST /cluster/snapshot", s.clusterGated(s.handleClusterSnapshot))
	mux.HandleFunc("POST /cluster/restore", s.clusterGated(s.handleClusterRestore))
	mux.HandleFunc("POST /cluster/remove", s.clusterGated(s.handleClusterRemove))
}

func (s *Server) clusterGated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Backend == nil || s.Engine.Tracker() == nil {
			http.Error(w, "cluster handoff needs a backend and a tracker", http.StatusNotFound)
			return
		}
		h(w, r)
	}
}

func decodeClients(w http.ResponseWriter, r *http.Request) ([]uint32, bool) {
	var body clientsBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad clients body: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return body.Clients, true
}

func (s *Server) handleClusterIngested(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, struct {
		Ingested uint64 `json:"ingested"`
	}{Ingested: s.Backend.IngestedCaptures()})
}

func (s *Server) handleClusterClients(w http.ResponseWriter, _ *http.Request) {
	ids := s.Engine.Tracker().Clients()
	seen := make(map[uint32]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	for _, id := range s.Backend.PendingClientIDs() {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	writeJSON(w, clientsBody{Clients: ids})
}

func (s *Server) handleClusterInFlight(w http.ResponseWriter, r *http.Request) {
	ids, ok := decodeClients(w, r)
	if !ok {
		return
	}
	n := 0
	for _, id := range ids {
		n += s.Engine.InFlight(id)
	}
	writeJSON(w, struct {
		InFlight int `json:"inflight"`
	}{InFlight: n})
}

func (s *Server) handleClusterExtract(w http.ResponseWriter, r *http.Request) {
	ids, ok := decodeClients(w, r)
	if !ok {
		return
	}
	caps := s.Backend.ExtractPending(ids)
	defer server.ReleaseAll(caps)
	var frames []byte
	var err error
	for off := 0; off < len(caps); off += server.MaxBatchCaptures {
		end := off + server.MaxBatchCaptures
		if end > len(caps) {
			end = len(caps)
		}
		if frames, err = server.AppendBatchDelta(frames, caps[off:end]); err != nil {
			http.Error(w, "encode extracted captures: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Capture-Count", strconv.Itoa(len(caps)))
	w.Write(frames)
}

func (s *Server) handleClusterSnapshot(w http.ResponseWriter, r *http.Request) {
	ids, ok := decodeClients(w, r)
	if !ok {
		return
	}
	writeJSON(w, tracksBody{Tracks: s.Engine.Tracker().SnapshotClients(ids)})
}

func (s *Server) handleClusterRestore(w http.ResponseWriter, r *http.Request) {
	var body tracksBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad tracks body: "+err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, struct {
		Restored int `json:"restored"`
	}{Restored: s.Engine.Tracker().Restore(body.Tracks)})
}

func (s *Server) handleClusterRemove(w http.ResponseWriter, r *http.Request) {
	ids, ok := decodeClients(w, r)
	if !ok {
		return
	}
	writeJSON(w, struct {
		Removed int `json:"removed"`
	}{Removed: s.Engine.Tracker().Remove(ids)})
}
