package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/music"
)

// TestPipelineWorkspaceEquivalence pins the refactor's contract: the
// pooled-workspace pipeline must produce bit-identical spectra and the
// identical fix versus the allocating path, including under per-AP
// fan-out.
func TestPipelineWorkspaceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	client := geom.Pt(6.5, 7.1)
	aps, captures, plan := buildTestbedAPs(t, client, 3, 3, rng)

	alloc := DefaultConfig(lambda)
	alloc.Workspaces = nil
	alloc.APWorkers = 0

	pooled := DefaultConfig(lambda)
	pooled.Workspaces = music.NewWorkspacePool()

	posA, specsA, err := LocateClient(aps, captures, plan.Min, plan.Max, alloc)
	if err != nil {
		t.Fatal(err)
	}
	posP, specsP, err := LocateClient(aps, captures, plan.Min, plan.Max, pooled)
	if err != nil {
		t.Fatal(err)
	}
	if posA != posP {
		t.Fatalf("fix differs: allocating %v vs pooled %v", posA, posP)
	}
	if len(specsA) != len(specsP) {
		t.Fatalf("spectra count differs")
	}
	for i := range specsA {
		for b := range specsA[i].Spectrum.P {
			if specsA[i].Spectrum.P[b] != specsP[i].Spectrum.P[b] {
				t.Fatalf("AP %d bin %d differs (not bit-identical)", i, b)
			}
		}
	}
}

// TestPipelineStagesComposeToProcessAP: running the explicit stages by
// hand must equal the packaged ProcessAP.
func TestPipelineStagesComposeToProcessAP(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	client := geom.Pt(11.5, 5.0)
	aps, captures, plan := buildTestbedAPs(t, client, 2, 3, rng)

	cfg := DefaultConfig(lambda)
	p := NewPipeline(cfg)

	want, err := ProcessAP(aps[0], captures[0], cfg)
	if err != nil {
		t.Fatal(err)
	}

	ws := music.NewWorkspace()
	var spectra []*music.Spectrum
	for _, f := range captures[0] {
		s, err := p.FrameSpectrum(ws, aps[0], f)
		if err != nil {
			t.Fatal(err)
		}
		spectra = append(spectra, s)
	}
	got, err := p.CombineAP(ws, aps[0], captures[0], spectra)
	if err != nil {
		t.Fatal(err)
	}
	for b := range want.P {
		if got.P[b] != want.P[b] {
			t.Fatalf("bin %d differs between staged and packaged path", b)
		}
	}

	// And synthesis over the staged spectra must agree with Locate.
	wantPos, specs, err := LocateClient(aps, captures, plan.Min, plan.Max, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotPos, err := p.Synthesize(specs, plan.Min, plan.Max)
	if err != nil {
		t.Fatal(err)
	}
	if wantPos != gotPos {
		t.Fatalf("synthesis differs: %v vs %v", wantPos, gotPos)
	}
}

// TestPipelineEstimatorInjection: non-default estimators must run end
// to end, and the estimator must actually be consulted (spectra from
// Bartlett differ from MUSIC's).
func TestPipelineEstimatorInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	client := geom.Pt(9.0, 6.0)
	aps, captures, plan := buildTestbedAPs(t, client, 3, 3, rng)

	for _, name := range music.EstimatorNames() {
		est, err := music.EstimatorByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(lambda)
		cfg.Estimator = est
		pos, specs, err := LocateClient(aps, captures, plan.Min, plan.Max, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(specs) != 3 {
			t.Fatalf("%s: got %d spectra", name, len(specs))
		}
		// All estimators should localize a strong line-of-sight client
		// to within a loose bound on this benign fixture.
		if d := pos.Dist(client); d > 3.0 {
			t.Errorf("%s: error %.2f m, want < 3 m", name, d)
		}
	}

	musicCfg := DefaultConfig(lambda)
	_, musicSpecs, err := LocateClient(aps, captures, plan.Min, plan.Max, musicCfg)
	if err != nil {
		t.Fatal(err)
	}
	bartCfg := DefaultConfig(lambda)
	bartCfg.Estimator = music.BartlettEstimator
	_, bartSpecs, err := LocateClient(aps, captures, plan.Min, plan.Max, bartCfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for b := range musicSpecs[0].Spectrum.P {
		if musicSpecs[0].Spectrum.P[b] != bartSpecs[0].Spectrum.P[b] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Bartlett estimator produced MUSIC's spectrum — injection is not wired through")
	}
}
