package core

// The rotation-guarded hill climb. The compass search's only
// remaining per-probe transcendental was one atan2 per AP per probe
// (scoreTabs: bearing → BinLookup → lerp). This file removes it from
// the dominant case — rejected probes — with a certified-bound guard:
// at the accepted position the climb caches, per AP, the exact
// fl-computed spectrum position (bin + fraction, captured from the
// scalar scorer itself) and the AP→position offset vector. A probe
// displaces that vector by a known step d, rotating the bearing by
// δ = atan(cross/dot); for small δ the guard brackets the probe's
// spectrum position in a narrow interval around pos + (cross/dot)·
// n/(2π) using |atan t − t| ≤ |t|³/3 plus margins that over-bound
// every floating-point error in the chain by orders of magnitude
// (derivation at apProbeBound). The per-AP log-table contribution
// over that interval has an exact upper bound (lerp endpoints within
// one bin segment, table maxima across segments); if the summed upper
// bound cannot beat the current score, the exact scorer would have
// rejected the probe too, so the climb skips it — no atan2, identical
// decision. Any probe the guard cannot certify (large rotation, a
// position too close to an AP, a wide interval) falls through to the
// exact scalar scorer, and accepted probes always score exactly, so
// the accepted trajectory — every intermediate position, the final
// fix, and its score — is bit-for-bit the scalar path's. Pinned by
// TestHillClimbGuardedMatchesScalar here and by the 205-scene testbed
// pin (TestRunKernelsHillClimbExactness).

import (
	"math"

	"repro/internal/geom"
	"repro/internal/music"
)

// scoreTabsCapture is scoreTabs plus a capture of each AP's continuous
// spectrum position (bin index + fraction — exactly BinLookup's pos
// value, since pos = float64(int(pos)) + (pos − float64(int(pos)))
// reconstructs the original float: the integer split is exact). The
// accumulation tree is identical to scoreTabs, so the returned score
// is bit-identical.
func scoreTabsCapture(x geom.Point, aps []APSpectrum, logTabs [][]float64, pos []float64) float64 {
	l := 0.0
	for a, ap := range aps {
		b, f := music.BinLookup(ap.Pos.Bearing(x), ap.Spectrum.Bins())
		tab := logTabs[a]
		l += tab[b]*(1-f) + tab[b+1]*f
		pos[a] = float64(b) + f
	}
	return l
}

// climbState refreshes the per-AP offset vectors and squared ranges
// for the current accepted position.
func climbState(cur geom.Point, aps []APSpectrum, dx, dy, r2 []float64) {
	for a := range aps {
		ux := cur.X - aps[a].Pos.X
		uy := cur.Y - aps[a].Pos.Y
		dx[a], dy[a], r2[a] = ux, uy, ux*ux+uy*uy
	}
}

// apProbeBound returns an upper bound on one AP's log-table
// contribution at the probe position cur+d, or ok=false when no
// certified bound is available and the caller must score exactly.
//
// Let u = cur − ap (cached: dx, dy, r2 = ‖u‖²) and v = u + d. The
// probe's bearing differs from the accepted position's by
// δ = atan2(u×v, u·v) = atan2(dx·d.Y − dy·d.X, r² + dx·d.X + dy·d.Y),
// and in spectrum-position units the probe sits at
// pos + δ·n/(2π) (mod n). With t = cross/dot and dot > 0,
// δ = atan(t) ∈ [t − |t|³/3, t]. The interval half-width eb stacks:
//
//   - |atan t − t| ≤ |t|³/3 (exact analytic bound);
//   - the fl error of cross (absolute, ≤ ~4ε·(|dx·d.Y|+|dy·d.X|)),
//     dot (relative, ≤ ~4ε given dot ≥ dotMag/4), and the division —
//     covered at 100× margin by 1e-13·(crossMag/dot + |t|);
//   - the deviation of the cached pos and the probe's fl-computed pos
//     from the true bearings (atan2 ≤ 1 ulp, component subtractions
//     ≤ ε each, BinLookup's scale/Mod a few ulps of pos, Bearing's
//     +2π wrap one ulp) — all ≪ the flat 1e-9-bin slack, given the
//     r² > 1e-4 gate below (within 1 cm of an AP the bearing's
//     conditioning degrades, so the guard declines).
//
// The exact path's value at any position inside the interval is then
// bounded by the lerp endpoints when the interval stays inside one
// bin segment (the lerp is linear there) or by the covered table
// values across up to four segments, plus 1e-12 for the bound's own
// lerp rounding. Every margin is conservative by ≥2 orders of
// magnitude, so ub ≥ the exact scorer's contribution always.
func apProbeBound(pos, dx, dy, r2 float64, d geom.Vec, tab []float64, n int) (ub float64, ok bool) {
	if r2 <= 1e-4 {
		return 0, false
	}
	px, py := dx*d.X, dy*d.Y
	cross := dx*d.Y - dy*d.X
	dot := r2 + px + py
	ax, ay := math.Abs(px), math.Abs(py)
	dotMag := r2 + ax + ay
	if dot <= 0.25*dotMag {
		return 0, false
	}
	t := cross / dot
	if t >= 0.3 || t <= -0.3 {
		return 0, false
	}
	at := math.Abs(t)
	crossMag := math.Abs(dx*d.Y) + math.Abs(dy*d.X)
	errT := at*at*at*(1.0/3.0) + 1e-13*(crossMag/dot+at)
	nf := float64(n)
	binsPer := nf / (2 * math.Pi)
	eb := errT*binsPer + 1e-9
	lo := pos + t*binsPer - eb
	hi := pos + t*binsPer + eb
	for lo < 0 {
		lo += nf
		hi += nf
	}
	jLo, jHi := int(lo), int(hi)
	if jHi-jLo > 3 {
		return 0, false
	}
	if jLo == jHi {
		// One bin segment: the contribution is linear in pos here, so
		// the max over the interval is the larger lerp endpoint.
		j := jLo % n
		fl := lo - float64(jLo)
		fh := hi - float64(jLo)
		t0, t1 := tab[j], tab[j+1]
		vLo := t0*(1-fl) + t1*fl
		vHi := t0*(1-fh) + t1*fh
		if vHi > vLo {
			vLo = vHi
		}
		return vLo + 1e-12, true
	}
	m := math.Inf(-1)
	for j := jLo; j <= jHi; j++ {
		jm := j % n
		if v := tab[jm]; v > m {
			m = v
		}
		if v := tab[jm+1]; v > m {
			m = v
		}
	}
	return m + 1e-12, true
}

// climbPruned reports whether the guard certifies that the exact
// scorer would reject the probe cur+d: the summed per-AP upper bounds
// (plus 1e-9 covering the sum's own rounding) cannot exceed curL. A
// false return means "score exactly", not "accept".
func climbPruned(aps []APSpectrum, logTabs [][]float64, pos, dx, dy, r2 []float64, d geom.Vec, curL float64) bool {
	ub := 0.0
	for a := range aps {
		b, ok := apProbeBound(pos[a], dx[a], dy[a], r2[a], d, logTabs[a], aps[a].Spectrum.Bins())
		if !ok {
			return false
		}
		ub += b
	}
	return ub+1e-9 <= curL
}

// hillClimbGuarded is hillClimbTabs with the rotation guard: same
// probe sequence, same bounds checks, same accept condition, but
// probes whose certified upper bound cannot beat the current score
// are rejected without evaluating a bearing. Scratch lives in ws
// (zero-alloc steady state).
func (sg *SynthGrid) hillClimbGuarded(ws *synthWorkspace, start geom.Point, aps []APSpectrum) (geom.Point, float64) {
	logTabs := ws.logTabs
	step := sg.spec.Cell
	min, max := sg.min, sg.max
	n := len(aps)
	ws.hcPos = growFloats(ws.hcPos, n)
	ws.hcDx = growFloats(ws.hcDx, n)
	ws.hcDy = growFloats(ws.hcDy, n)
	ws.hcR2 = growFloats(ws.hcR2, n)
	ws.hcProbe = growFloats(ws.hcProbe, n)
	cur := start
	curL := scoreTabsCapture(cur, aps, logTabs, ws.hcPos)
	climbState(cur, aps, ws.hcDx, ws.hcDy, ws.hcR2)
	var probes, pruned int64
	for step > 0.01 {
		improved := false
		for _, d := range [4]geom.Vec{{X: step}, {X: -step}, {Y: step}, {Y: -step}} {
			cand := cur.Add(d)
			if cand.X < min.X || cand.X > max.X || cand.Y < min.Y || cand.Y > max.Y {
				continue
			}
			probes++
			if climbPruned(aps, logTabs, ws.hcPos, ws.hcDx, ws.hcDy, ws.hcR2, d, curL) {
				pruned++
				continue
			}
			if l := scoreTabsCapture(cand, aps, logTabs, ws.hcProbe); l > curL {
				cur, curL = cand, l
				copy(ws.hcPos, ws.hcProbe)
				climbState(cur, aps, ws.hcDx, ws.hcDy, ws.hcR2)
				improved = true
			}
		}
		if !improved {
			step /= 2
		}
	}
	if m := sg.metrics; m != nil {
		m.HillProbes.Add(probes)
		m.HillPruned.Add(pruned)
	}
	return cur, curL
}
