package core

// The staged synthesis subsystem. The seed evaluated Eq. 8 by calling
// Likelihood serially for every grid cell, recomputing atan2 bearings
// and spectrum interpolation per AP per cell on every fix. This file
// rebuilds that layer in three stages:
//
//  1. Bearing LUTs — for one (AP position, grid geometry) pair, the
//     bearing→bin index and interpolation fraction of every cell are
//     fixed. SynthCache precomputes them once (via music.BinLookup,
//     the same mapping Spectrum.At uses, so LUT and live lookups are
//     bit-compatible) and reuses them across fixes, exactly like
//     music.SteeringCache reuses steering matrices. atan2 disappears
//     from the steady-state path.
//
//  2. Log-domain accumulation — each AP's spectrum is collapsed once
//     per fix into a padded table of log(max(P[b], likelihoodFloor)),
//     and the surface is a flat row-major sum of per-cell lerps over
//     those tables, sharded across Config.SynthWorkers goroutines
//     with scratch drawn from a sync.Pool. Between bin centers the
//     surface interpolates log-spectra (a geometric interpolation of
//     the spectrum), which agrees exactly with log(Likelihood) at bin
//     centers and keeps the inner loop free of transcendentals; the
//     argmax-level agreement with the product-domain reference is
//     pinned on every testbed scene by TestSynthGridMatchesSeedArgmax.
//
//  3. Coarse-to-fine — Localize partitions the fine grid into
//     CoarseFactor×CoarseFactor blocks and screens them by an upper
//     bound instead of a lattice sample: each block's bearings from
//     one AP cover a fixed circular window of spectrum bins (cached
//     beside the LUTs), so max over the window of the AP's log table
//     bounds every cell in the block. Blocks are refined at full
//     resolution in bound order until no unrefined bound beats the
//     best refined cell — a branch-and-bound argmax, exact by
//     construction, not just on benign surfaces (narrow multi-AP
//     likelihood spikes slip between lattice samples; a bound cannot
//     miss them). RefineTopK blocks are always refined so hill
//     climbing keeps several seeds.

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/music"
)

// DefaultCoarseFactor is the coarse-to-fine screening block edge, in
// fine cells: screening works on factor×factor blocks (50 cm for the
// paper's 10 cm grid).
const DefaultCoarseFactor = 5

// DefaultRefineTopK is the minimum number of screening blocks refined
// at full resolution, mirroring the seed's three hill-climbing seeds;
// the branch-and-bound screen refines more whenever a block's bound
// still beats the best refined cell.
const DefaultRefineTopK = 3

// minShardCells is the surface size below which sharding overhead
// outweighs the work; smaller surfaces are evaluated serially.
const minShardCells = 8192

// minRefineCells is the fine-surface size below which the coarse
// screening pass is skipped and the full grid evaluated directly.
const minRefineCells = 1024

// shardChunk is the cell count one worker claims at a time.
const shardChunk = 4096

// GridSpec describes a synthesis grid: a lattice origin, the cell
// pitch in metres, the cell counts along each axis, and the lattice
// offset of cell (0,0). Cell (ix, iy) is centred at
// Min + ((X0+ix)·Cell, (Y0+iy)·Cell). Full grids have X0 = Y0 = 0 —
// the same lattice ComputeHeatmap samples; a region sub-grid keeps
// its parent's Min and carries the offset instead of folding it into
// Min, so its centre arithmetic — and therefore every bearing LUT
// value — is bit-identical to the parent's at the same absolute cell,
// whether the LUT is sliced from a cached parent or rebuilt.
type GridSpec struct {
	Min  geom.Point
	Cell float64
	Nx   int
	Ny   int
	X0   int
	Y0   int
}

// GridSpecFor returns the grid covering [min, max] at the given cell
// size, with the seed heatmap's dimension arithmetic.
func GridSpecFor(min, max geom.Point, cell float64) (GridSpec, error) {
	if cell <= 0 {
		return GridSpec{}, errors.New("core: heatmap cell size must be positive")
	}
	if max.X <= min.X || max.Y <= min.Y {
		return GridSpec{}, errors.New("core: empty heatmap area")
	}
	return GridSpec{
		Min:  min,
		Cell: cell,
		Nx:   int(math.Floor((max.X-min.X)/cell)) + 1,
		Ny:   int(math.Floor((max.Y-min.Y)/cell)) + 1,
	}, nil
}

// Cells returns the total cell count.
func (g GridSpec) Cells() int { return g.Nx * g.Ny }

// Center returns the position of cell (ix, iy).
func (g GridSpec) Center(ix, iy int) geom.Point {
	return geom.Pt(g.Min.X+float64(g.X0+ix)*g.Cell, g.Min.Y+float64(g.Y0+iy)*g.Cell)
}

// Origin returns the position of cell (0,0) — Min for full grids, the
// offset corner for sub-grids.
func (g GridSpec) Origin() geom.Point { return g.Center(0, 0) }

// subGridOf reports whether g is a lattice-aligned sub-rectangle of
// parent: same origin and pitch, cells wholly inside the parent's
// index range. A sub-grid's LUT can be sliced from the parent's.
func (g GridSpec) subGridOf(parent GridSpec) bool {
	return g.Min == parent.Min && g.Cell == parent.Cell &&
		g.X0 >= parent.X0 && g.Y0 >= parent.Y0 &&
		g.X0+g.Nx <= parent.X0+parent.Nx &&
		g.Y0+g.Ny <= parent.Y0+parent.Ny
}

// subSpecFor returns the sub-grid of full whose cell centres lie
// inside [lo, hi] — exactly the full-grid cells a region query must
// rank, so a region argmax equals the full argmax restricted to the
// box. Errors when no centre falls inside.
func subSpecFor(full GridSpec, lo, hi geom.Point) (GridSpec, error) {
	// Half-ulp slack so a box edge exactly on a centre includes it.
	const eps = 1e-9
	x0 := int(math.Ceil((lo.X-full.Min.X)/full.Cell - eps))
	y0 := int(math.Ceil((lo.Y-full.Min.Y)/full.Cell - eps))
	x1 := int(math.Floor((hi.X-full.Min.X)/full.Cell + eps))
	y1 := int(math.Floor((hi.Y-full.Min.Y)/full.Cell + eps))
	if x0 < full.X0 {
		x0 = full.X0
	}
	if y0 < full.Y0 {
		y0 = full.Y0
	}
	if x1 > full.X0+full.Nx-1 {
		x1 = full.X0 + full.Nx - 1
	}
	if y1 > full.Y0+full.Ny-1 {
		y1 = full.Y0 + full.Ny - 1
	}
	if x1 < x0 || y1 < y0 {
		return GridSpec{}, fmt.Errorf("%w: no grid cell centres inside box", ErrBadRegion)
	}
	return GridSpec{
		Min: full.Min, Cell: full.Cell,
		Nx: x1 - x0 + 1, Ny: y1 - y0 + 1,
		X0: x0, Y0: y0,
	}, nil
}

// blockDims returns the screening partition: the fine grid divided
// into factor×factor blocks (edge blocks may be smaller).
func (g GridSpec) blockDims(factor int) (nbx, nby int) {
	return (g.Nx + factor - 1) / factor, (g.Ny + factor - 1) / factor
}

// bearingLUT holds, for every cell of one grid as seen from one AP
// position, the spectrum bin index and interpolation fraction of the
// AP→cell bearing (music.BinLookup applied to the cell centre).
// Immutable after construction, safe for concurrent use.
type bearingLUT struct {
	bin  []int32
	frac []float64
}

// blockLUT holds, per screening block of one (AP position, grid,
// factor), the minimal circular window of spectrum bins the block's
// cells interpolate over: bins [start, start+count) mod bins. The max
// of an AP's log table over that window bounds the AP's contribution
// to every cell of the block. Immutable after construction.
type blockLUT struct {
	start []int32
	count []int32
}

// buildBlockLUT derives the per-block bin windows from the fine LUT.
// Every cell contributes its interpolation pair {b, b+1 mod n}; the
// minimal circular window covering a block's set is found via the
// largest gap in the sorted bin list.
func buildBlockLUT(fine *bearingLUT, spec GridSpec, factor, bins int) *blockLUT {
	nbx, nby := spec.blockDims(factor)
	bl := &blockLUT{
		start: make([]int32, nbx*nby),
		count: make([]int32, nbx*nby),
	}
	seen := make([]bool, bins)
	var members []int32
	for by := 0; by < nby; by++ {
		for bx := 0; bx < nbx; bx++ {
			members = members[:0]
			x0, x1, y0, y1 := blockRect(spec, factor, bx, by)
			for iy := y0; iy < y1; iy++ {
				for ix := x0; ix < x1; ix++ {
					b := fine.bin[iy*spec.Nx+ix]
					b2 := b + 1
					if b2 == int32(bins) {
						b2 = 0
					}
					if !seen[b] {
						seen[b] = true
						members = append(members, b)
					}
					if !seen[b2] {
						seen[b2] = true
						members = append(members, b2)
					}
				}
			}
			start, count := minCircularWindow(members, bins)
			for _, m := range members {
				seen[m] = false
			}
			c := by*nbx + bx
			bl.start[c] = start
			bl.count[c] = count
		}
	}
	return bl
}

// blockRect returns the fine-cell rectangle [x0,x1)×[y0,y1) of
// screening block (bx, by).
func blockRect(spec GridSpec, factor, bx, by int) (x0, x1, y0, y1 int) {
	x0, y0 = bx*factor, by*factor
	x1, y1 = x0+factor, y0+factor
	if x1 > spec.Nx {
		x1 = spec.Nx
	}
	if y1 > spec.Ny {
		y1 = spec.Ny
	}
	return x0, x1, y0, y1
}

// minCircularWindow returns the smallest window [start, start+count)
// mod n covering every bin in members (unsorted, distinct). It is the
// complement of the largest gap between circularly consecutive
// members.
func minCircularWindow(members []int32, n int) (start, count int32) {
	m := len(members)
	if m == 0 {
		return 0, 0
	}
	// Insertion sort: member counts are tiny (≤2·factor² distinct).
	for i := 1; i < m; i++ {
		for j := i; j > 0 && members[j] < members[j-1]; j-- {
			members[j], members[j-1] = members[j-1], members[j]
		}
	}
	gapAt, gap := m-1, members[0]+int32(n)-members[m-1]
	for i := 0; i < m-1; i++ {
		if g := members[i+1] - members[i]; g > gap {
			gapAt, gap = i, g
		}
	}
	start = members[(gapAt+1)%m]
	return start, int32(n) - gap + 1
}

// rangeMax scans the circular window [start, start+count) of the
// first n entries of tab for its maximum.
func rangeMax(tab []float64, n int, start, count int32) float64 {
	m := math.Inf(-1)
	idx := int(start)
	for k := int32(0); k < count; k++ {
		if v := tab[idx]; v > m {
			m = v
		}
		idx++
		if idx == n {
			idx = 0
		}
	}
	return m
}

func buildLUT(ap geom.Point, spec GridSpec, bins int) *bearingLUT {
	l := &bearingLUT{
		bin:  make([]int32, spec.Cells()),
		frac: make([]float64, spec.Cells()),
	}
	c := 0
	for iy := 0; iy < spec.Ny; iy++ {
		for ix := 0; ix < spec.Nx; ix++ {
			i, f := music.BinLookup(ap.Bearing(spec.Center(ix, iy)), bins)
			l.bin[c] = int32(i)
			l.frac[c] = f
			c++
		}
	}
	return l
}

// synthKey captures everything a bearing LUT depends on: the AP
// position, the grid geometry (lattice origin, pitch, extent, and
// offset), and the spectrum resolution.
type synthKey struct {
	apX, apY   float64
	minX, minY float64
	cell       float64
	nx, ny     int
	x0, y0     int
	bins       int
}

func keyOf(ap geom.Point, spec GridSpec, bins int) synthKey {
	return synthKey{
		apX: ap.X, apY: ap.Y,
		minX: spec.Min.X, minY: spec.Min.Y,
		cell: spec.Cell, nx: spec.Nx, ny: spec.Ny,
		x0: spec.X0, y0: spec.Y0,
		bins: bins,
	}
}

// synthWorkspace is the pooled per-fix scratch: the flat accumulators
// for the fine and coarse surfaces, the per-AP padded log tables, the
// LUT slice headers, and the candidate lists. It grows to the largest
// fix it has seen. Callers must not return it to the pool while any
// slice drawn from it is still in use.
type synthWorkspace struct {
	fine    []float64
	coarse  []float64
	logTabs [][]float64
	luts    []*bearingLUT
	cand    []cellCand
	// heap is the branch-and-bound block ordering (synthbnb.go).
	heap []cellCand
	// hc* are the rotation-guarded hill climb's per-AP state: cached
	// spectrum positions, offset vectors, squared ranges, and the
	// probe-capture scratch (synthclimb.go).
	hcPos, hcDx, hcDy, hcR2, hcProbe []float64
}

var synthScratch = sync.Pool{New: func() any { return &synthWorkspace{} }}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// logTables collapses each AP spectrum into a padded table of
// log(max(P[b], likelihoodFloor)) — the per-fix cost that buys
// transcendental-free per-cell accumulation.
func (ws *synthWorkspace) logTables(aps []APSpectrum) [][]float64 {
	if cap(ws.logTabs) < len(aps) {
		tabs := make([][]float64, len(aps))
		copy(tabs, ws.logTabs[:cap(ws.logTabs)])
		ws.logTabs = tabs
	}
	ws.logTabs = ws.logTabs[:len(aps)]
	for a, ap := range aps {
		tab := ap.Spectrum.PaddedValues(ws.logTabs[a], likelihoodFloor)
		for i, v := range tab {
			tab[i] = math.Log(v)
		}
		ws.logTabs[a] = tab
	}
	return ws.logTabs
}

// SynthOptions configures a SynthGrid.
type SynthOptions struct {
	// Cell is the fine grid pitch in metres (0 means the paper's 0.10).
	Cell float64
	// Workers bounds the goroutines sharding the surface evaluation;
	// 0 or 1 evaluates serially.
	Workers int
	// Cache supplies the bearing LUTs (nil means the shared cache).
	Cache *SynthCache
	// CoarseFactor is the screening block edge in fine cells (0 means
	// DefaultCoarseFactor; 1 disables screening).
	CoarseFactor int
	// RefineTopK is the minimum number of screening blocks refined (0
	// means DefaultRefineTopK).
	RefineTopK int
	// Yield, when non-nil, is called between serial surface chunks
	// and screening-block refinements — the cooperative preemption
	// point Config.SynthYield threads through the pipeline. Only the
	// serial (Workers ≤ 1) surface path yields: sharded surfaces
	// belong to latency-lane jobs, which are never preempted.
	Yield func()
	// Metrics, when non-nil, accumulates the synthesis kernels' work
	// counters (blocks refined, bound visits, hill-climb probes and
	// prunes). Atomic; one instance may be shared across grids.
	Metrics *SynthMetrics
	// LinearPick selects the pre-heap linear bound scan for choosing
	// the next refinement block. Retained as the reference path for
	// the kernels experiment and the degenerate-surface test; both
	// orders refine the identical block sequence.
	LinearPick bool
	// ScalarHillClimb selects the one-atan2-per-AP-per-probe scalar
	// scorer for hill climbing instead of the rotation-guarded fast
	// path. Retained as the reference; both paths visit identical
	// positions.
	ScalarHillClimb bool
}

// SynthGrid evaluates Eq. 8 over one grid geometry using cached
// bearing LUTs. Construction is cheap — LUTs are fetched lazily from
// the cache per AP — so a grid may be built per fix; the reuse lives
// in the cache. Safe for concurrent use.
type SynthGrid struct {
	spec        GridSpec
	min, max    geom.Point
	parent      *GridSpec // full-grid spec a region sub-grid slices LUTs from
	cache       *SynthCache
	workers     int
	coarse      int
	topK        int
	yield       func()
	metrics     *SynthMetrics
	linearPick  bool
	scalarClimb bool
}

// newSynthGrid resolves the option defaults around a prepared spec.
func newSynthGrid(spec GridSpec, parent *GridSpec, min, max geom.Point, opt SynthOptions) *SynthGrid {
	cache := opt.Cache
	if cache == nil {
		cache = SharedSynthCache()
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	coarse := opt.CoarseFactor
	if coarse == 0 {
		coarse = DefaultCoarseFactor
	}
	if coarse < 1 {
		coarse = 1
	}
	topK := opt.RefineTopK
	if topK <= 0 {
		topK = DefaultRefineTopK
	}
	return &SynthGrid{
		spec: spec, parent: parent, min: min, max: max,
		cache: cache, workers: workers, coarse: coarse, topK: topK,
		yield: opt.Yield, metrics: opt.Metrics,
		linearPick: opt.LinearPick, scalarClimb: opt.ScalarHillClimb,
	}
}

// NewSynthGrid builds a grid over [min, max] with the given options.
func NewSynthGrid(min, max geom.Point, opt SynthOptions) (*SynthGrid, error) {
	cell := opt.Cell
	if cell <= 0 {
		cell = 0.10
	}
	spec, err := GridSpecFor(min, max, cell)
	if err != nil {
		return nil, err
	}
	return newSynthGrid(spec, nil, min, max, opt), nil
}

// NewSynthGridRegion builds a grid over an ad-hoc search region
// inside the full area [min, max]. A region at the full grid's pitch
// (Region.Cell zero or equal to the resolved opt.Cell) snaps to the
// full lattice: its cells are exactly the full-grid cells inside the
// box, its argmax equals the full-grid argmax restricted to those
// cells, and its bearing LUTs are sliced from cached full-grid
// entries when present. A region with its own pitch gets a scoped
// grid anchored at the clamped box corner. Hill climbing is confined
// to the clamped box either way. A zero region is the full grid.
func NewSynthGridRegion(min, max geom.Point, region Region, opt SynthOptions) (*SynthGrid, error) {
	if region.IsZero() {
		return NewSynthGrid(min, max, opt)
	}
	if err := region.Validate(); err != nil {
		return nil, err
	}
	cell := opt.Cell
	if cell <= 0 {
		cell = 0.10
	}
	lo, hi, err := region.clampTo(min, max)
	if err != nil {
		return nil, err
	}
	full, err := GridSpecFor(min, max, cell)
	if err != nil {
		return nil, err
	}
	if region.Cell != 0 && region.Cell != cell {
		spec, err := GridSpecFor(lo, hi, region.Cell)
		if err != nil {
			return nil, err
		}
		// A scoped pitch must not demand more work than a full-area
		// fix: Validate bounds the pitch itself, but a fine pitch over
		// a large box would multiply per-fix CPU and LUT memory
		// arbitrarily — a cheap DoS from the wire, where regions
		// arrive untrusted.
		if spec.Cells() > full.Cells() {
			return nil, fmt.Errorf("%w: %d cells at pitch %g exceeds the %d-cell full grid",
				ErrBadRegion, spec.Cells(), region.Cell, full.Cells())
		}
		return newSynthGrid(spec, nil, lo, hi, opt), nil
	}
	spec, err := subSpecFor(full, lo, hi)
	if err != nil {
		return nil, err
	}
	return newSynthGrid(spec, &full, lo, hi, opt), nil
}

// Spec returns the fine grid geometry.
func (sg *SynthGrid) Spec() GridSpec { return sg.spec }

// evalRange accumulates the log surface for cells [lo, hi): for each
// AP, a branch-free lerp over its padded log table at the LUT's
// (bin, frac). The first AP assigns instead of adding, so the
// accumulator needs no zeroing pass. Per-cell order over APs is
// fixed, so results are independent of sharding.
func evalRange(acc []float64, luts []*bearingLUT, logTabs [][]float64, lo, hi int) {
	for a, lut := range luts {
		tab := logTabs[a]
		bin, frac := lut.bin, lut.frac
		if a == 0 {
			for c := lo; c < hi; c++ {
				b, f := bin[c], frac[c]
				acc[c] = tab[b]*(1-f) + tab[b+1]*f
			}
		} else {
			for c := lo; c < hi; c++ {
				b, f := bin[c], frac[c]
				acc[c] += tab[b]*(1-f) + tab[b+1]*f
			}
		}
	}
}

// evalSurface fills acc (one float per cell of spec) with the
// log-domain surface, sharding across the grid's workers when the
// surface is big enough to pay for it.
func (sg *SynthGrid) evalSurface(acc []float64, spec GridSpec, luts []*bearingLUT, logTabs [][]float64) {
	cells := len(acc)
	workers := sg.workers
	if workers > cells/shardChunk {
		workers = cells / shardChunk
	}
	if workers <= 1 || cells < minShardCells {
		if sg.yield == nil {
			evalRange(acc, luts, logTabs, 0, cells)
			return
		}
		// Serial surface with a preemption point: evaluate in shard-
		// sized chunks and yield between them, so a batch fix pauses
		// for a waiting priority job every few thousand cells instead
		// of pinning the worker for the whole surface.
		for lo := 0; lo < cells; lo += shardChunk {
			hi := lo + shardChunk
			if hi > cells {
				hi = cells
			}
			evalRange(acc, luts, logTabs, lo, hi)
			sg.yield()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(shardChunk)) - shardChunk
				if lo >= cells {
					return
				}
				hi := lo + shardChunk
				if hi > cells {
					hi = cells
				}
				evalRange(acc, luts, logTabs, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// fetchLUTs resolves the per-AP bearing LUTs for spec.
func (sg *SynthGrid) fetchLUTs(ws *synthWorkspace, aps []APSpectrum, spec GridSpec) []*bearingLUT {
	if cap(ws.luts) < len(aps) {
		ws.luts = make([]*bearingLUT, len(aps))
	}
	ws.luts = ws.luts[:len(aps)]
	for a, ap := range aps {
		ws.luts[a] = sg.cache.lutFor(ap.Pos, spec, sg.parent, ap.Spectrum.Bins())
	}
	return ws.luts
}

// cellCand is one candidate cell of a surface.
type cellCand struct {
	idx int
	val float64
}

// pushCand inserts (idx, val) into the descending top-k list best,
// deduplicating by cell index (refinement windows may overlap) and
// breaking value ties toward the lower index so candidate order never
// depends on scan order.
func pushCand(best []cellCand, k, idx int, val float64) []cellCand {
	for _, b := range best {
		if b.idx == idx {
			return best
		}
	}
	if len(best) < k {
		best = append(best, cellCand{idx, val})
	} else if better(val, idx, best[len(best)-1]) {
		best[len(best)-1] = cellCand{idx, val}
	} else {
		return best
	}
	for j := len(best) - 1; j > 0 && better(best[j].val, best[j].idx, best[j-1]); j-- {
		best[j], best[j-1] = best[j-1], best[j]
	}
	return best
}

func better(val float64, idx int, than cellCand) bool {
	if val != than.val {
		return val > than.val
	}
	return idx < than.idx
}

// topCells scans cells [lo, hi) of acc into the top-k list.
func topCells(best []cellCand, k int, acc []float64, lo, hi int) []cellCand {
	for c := lo; c < hi; c++ {
		best = pushCand(best, k, c, acc[c])
	}
	return best
}

// topCellsYield is topCells over the whole surface with the grid's
// preemption point between shard-sized chunks: on large grids this
// scan rivals the surface evaluation itself, and a batch fix must not
// pin its worker through it.
func (sg *SynthGrid) topCellsYield(best []cellCand, k int, acc []float64) []cellCand {
	cells := len(acc)
	if sg.yield == nil {
		return topCells(best, k, acc, 0, cells)
	}
	for lo := 0; lo < cells; lo += shardChunk {
		hi := lo + shardChunk
		if hi > cells {
			hi = cells
		}
		best = topCells(best, k, acc, lo, hi)
		sg.yield()
	}
	return best
}

// refineEnabled reports whether the coarse screening pass is worth
// running for this grid.
func (sg *SynthGrid) refineEnabled() bool {
	return sg.coarse > 1 && sg.spec.Cells() >= minRefineCells
}

// blockBounds fills bounds (one entry per screening block) with the
// per-block upper bound of the fine surface: Σ over APs of the max of
// the AP's log table over the block's bin window. No fine cell can
// exceed its block's bound — both lerp endpoints lie inside the
// window.
func (sg *SynthGrid) blockBounds(ws *synthWorkspace, aps []APSpectrum, logTabs [][]float64) []float64 {
	nbx, nby := sg.spec.blockDims(sg.coarse)
	ws.coarse = growFloats(ws.coarse, nbx*nby)
	bounds := ws.coarse
	for a, ap := range aps {
		bl := sg.cache.blockWindows(ap.Pos, sg.spec, ap.Spectrum.Bins(), sg.coarse, sg.parent)
		tab := logTabs[a]
		n := ap.Spectrum.Bins()
		if sg.yield != nil && a > 0 {
			sg.yield()
		}
		if a == 0 {
			for c := range bounds {
				bounds[c] = rangeMax(tab, n, bl.start[c], bl.count[c])
			}
		} else {
			for c := range bounds {
				bounds[c] += rangeMax(tab, n, bl.start[c], bl.count[c])
			}
		}
	}
	return bounds
}

// hillClimbSeeds is how many top cells seed hill climbing, mirroring
// the seed estimator's TopCells(3).
const hillClimbSeeds = 3

// candidates fills ws.cand with the top hill-climbing seed cells of
// the fine surface — via the full evaluation when refined is false,
// via the branch-and-bound screen when true. The returned slice
// aliases ws and is valid until the workspace's next use.
//
// The screen refines blocks in descending bound order and stops once
// no unrefined block's bound reaches the best refined cell value (a
// cell beating the current best would force its block's bound above
// it, so stopping is safe and the argmax matches the full scan
// exactly, lower-index tie-break included: a tying cell's block bound
// is ≥ the tie value, so its block is refined too). At least topK
// blocks are refined so hill climbing sees several basins.
func (sg *SynthGrid) candidates(ws *synthWorkspace, aps []APSpectrum, refined bool) []cellCand {
	logTabs := ws.logTables(aps)
	ws.fine = growFloats(ws.fine, sg.spec.Cells())
	luts := sg.fetchLUTs(ws, aps, sg.spec)
	if refined && sg.refineEnabled() {
		bounds := sg.blockBounds(ws, aps, logTabs)
		nbx, _ := sg.spec.blockDims(sg.coarse)
		ws.cand = ws.cand[:0]
		best := math.Inf(-1)
		// If the screen stops pruning (a near-flat surface ties every
		// bound to the best cell), refining block after block serially
		// loses to the sharded full evaluation — past this budget fall
		// back to it, trivially exact.
		maxRefine := len(bounds)/4 + sg.topK
		// Blocks are consumed in (bound desc, index asc) order. A
		// linear rescan rediscovers the next block at O(blocks) per
		// pick but each visit is a sequential float compare, so for
		// the handful of refinements a peaked surface needs it beats
		// the heap's constants; past heapSwitchRefinements the screen
		// is bound-scan-dominated and the remaining bounds are built
		// into a heap popping the identical order at O(log blocks)
		// per pick (see synthbnb.go for the order-equality argument).
		// LinearPick pins the pre-heap path as the timing reference.
		useHeap := false
		var visits int64
		refinedBlocks := 0
		flush := func() {
			if m := sg.metrics; m != nil {
				m.BlocksRefined.Add(int64(refinedBlocks))
				m.BoundVisits.Add(visits)
			}
		}
		for ; ; refinedBlocks++ {
			if sg.yield != nil {
				sg.yield()
			}
			if refinedBlocks >= maxRefine {
				flush()
				if m := sg.metrics; m != nil {
					m.FullEvalFallbacks.Add(1)
				}
				sg.evalSurface(ws.fine, sg.spec, luts, logTabs)
				ws.cand = sg.topCellsYield(ws.cand[:0], hillClimbSeeds, ws.fine)
				return ws.cand
			}
			if !useHeap && !sg.linearPick && refinedBlocks >= heapSwitchRefinements {
				// Refined blocks are already -Inf, so the heap holds
				// exactly the unconsumed tail of the total order.
				useHeap = true
				ws.heap = ws.heap[:0]
				for c, b := range bounds {
					if !math.IsInf(b, -1) {
						ws.heap = append(ws.heap, cellCand{c, b})
					}
				}
				visits += heapInit(ws.heap)
			}
			pick := -1
			var pickVal float64
			if useHeap {
				if len(ws.heap) > 0 {
					pick, pickVal = ws.heap[0].idx, ws.heap[0].val
				}
			} else {
				for c, b := range bounds {
					if !math.IsInf(b, -1) && (pick == -1 || b > bounds[pick]) {
						pick = c
					}
				}
				visits += int64(len(bounds))
				if pick >= 0 {
					pickVal = bounds[pick]
				}
			}
			if pick == -1 || (pickVal < best && refinedBlocks >= sg.topK) {
				break
			}
			if useHeap {
				var v int64
				ws.heap, v = heapPop(ws.heap)
				visits += v
			} else {
				bounds[pick] = math.Inf(-1) // refined: out of the running
			}
			x0, x1, y0, y1 := blockRect(sg.spec, sg.coarse, pick%nbx, pick/nbx)
			for iy := y0; iy < y1; iy++ {
				lo, hi := iy*sg.spec.Nx+x0, iy*sg.spec.Nx+x1
				evalRange(ws.fine, luts, logTabs, lo, hi)
				ws.cand = topCells(ws.cand, hillClimbSeeds, ws.fine, lo, hi)
			}
			if len(ws.cand) > 0 {
				best = ws.cand[0].val
			}
		}
		flush()
		return ws.cand
	}
	sg.evalSurface(ws.fine, sg.spec, luts, logTabs)
	ws.cand = sg.topCellsYield(ws.cand[:0], hillClimbSeeds, ws.fine)
	return ws.cand
}

// argmaxCell runs candidates and returns the best fine cell index.
func (sg *SynthGrid) argmaxCell(aps []APSpectrum, refined bool) (int, error) {
	if len(aps) == 0 {
		return 0, errors.New("core: no AP spectra to synthesize")
	}
	ws := synthScratch.Get().(*synthWorkspace)
	defer synthScratch.Put(ws)
	best := sg.candidates(ws, aps, refined)
	if len(best) == 0 {
		return 0, errors.New("core: empty synthesis surface")
	}
	return best[0].idx, nil
}

// FullArgmaxCell evaluates the complete fine surface and returns the
// flat row-major index of its maximum cell.
func (sg *SynthGrid) FullArgmaxCell(aps []APSpectrum) (int, error) {
	return sg.argmaxCell(aps, false)
}

// RefinedArgmaxCell returns the maximum cell found by the
// coarse-to-fine screen (identical to FullArgmaxCell on the testbed
// scenes; pinned by test).
func (sg *SynthGrid) RefinedArgmaxCell(aps []APSpectrum) (int, error) {
	return sg.argmaxCell(aps, true)
}

// Localize is the §2.5 estimator on the staged subsystem: the
// coarse-to-fine grid screen seeds hill climbing from the top cells,
// returning the maximum-likelihood position. Probes are scored on the
// per-fix padded log tables the surface itself accumulates
// (LogLikelihoodBins semantics), so refinement reuses the cached
// BinLookup path instead of re-deriving Spectrum.At plus math.Log per
// probe per AP — the bearing is the only remaining per-probe
// transcendental. Pinned bit-for-bit against the scalar path by
// TestHillClimbTabsMatchesScalar.
func (sg *SynthGrid) Localize(aps []APSpectrum) (geom.Point, error) {
	pos, _, err := sg.localize(aps)
	return pos, err
}

// LocalizeInterior is Localize plus a report of whether the grid
// argmax cell is strictly interior to the grid on every open side —
// the verification bit the predictive localization path keys on: a
// boundary argmax means the true maximum may lie just outside the
// region, so the caller must fall back to a wider search. A side is
// "closed" when the region is flush with its parent full grid there
// (the search area ends; nothing lies beyond it), so a cell on a
// closed edge still reports interior. Grids without a parent (full
// grids, scoped-pitch regions) treat every side as open.
func (sg *SynthGrid) LocalizeInterior(aps []APSpectrum) (geom.Point, bool, error) {
	pos, idx, err := sg.localize(aps)
	if err != nil {
		return pos, false, err
	}
	return pos, sg.interiorCell(idx), nil
}

// interiorCell reports whether fine cell idx avoids the grid's
// outermost ring on every open side.
func (sg *SynthGrid) interiorCell(idx int) bool {
	ix, iy := idx%sg.spec.Nx, idx/sg.spec.Nx
	p := sg.parent
	openL := p == nil || sg.spec.X0 > p.X0
	openR := p == nil || sg.spec.X0+sg.spec.Nx < p.X0+p.Nx
	openB := p == nil || sg.spec.Y0 > p.Y0
	openT := p == nil || sg.spec.Y0+sg.spec.Ny < p.Y0+p.Ny
	if openL && ix == 0 {
		return false
	}
	if openR && ix == sg.spec.Nx-1 {
		return false
	}
	if openB && iy == 0 {
		return false
	}
	if openT && iy == sg.spec.Ny-1 {
		return false
	}
	return true
}

// localize runs the screen plus hill climbing and also returns the
// grid argmax cell (best[0]: the branch-and-bound screen's exact
// full-surface argmax, lower-index tie-break included).
func (sg *SynthGrid) localize(aps []APSpectrum) (geom.Point, int, error) {
	if len(aps) == 0 {
		return geom.Point{}, 0, errors.New("core: no AP spectra to synthesize")
	}
	ws := synthScratch.Get().(*synthWorkspace)
	defer synthScratch.Put(ws)
	best := sg.candidates(ws, aps, true)
	if len(best) == 0 {
		return geom.Point{}, 0, errors.New("core: empty synthesis surface")
	}
	pos := geom.Point{}
	score := math.Inf(-1)
	for _, cand := range best {
		seed := sg.spec.Center(cand.idx%sg.spec.Nx, cand.idx/sg.spec.Nx)
		var p geom.Point
		var l float64
		if sg.scalarClimb {
			p, l = hillClimbTabs(seed, aps, ws.logTabs, sg.spec.Cell, sg.min, sg.max)
		} else {
			p, l = sg.hillClimbGuarded(ws, seed, aps)
		}
		if l > score {
			pos, score = p, l
		}
	}
	return pos, best[0].idx, nil
}

// LogHeatmapInto fills h with the full-resolution log-domain surface
// (values are log-likelihoods: 0 is the clamp-free maximum, more
// negative is less likely), reusing h's storage when the shape
// matches. Steady state allocates nothing.
func (sg *SynthGrid) LogHeatmapInto(h *Heatmap, aps []APSpectrum) error {
	if len(aps) == 0 {
		return errors.New("core: no AP spectra to synthesize")
	}
	h.reshape(sg.spec)
	ws := synthScratch.Get().(*synthWorkspace)
	logTabs := ws.logTables(aps)
	sg.evalSurface(h.Flat, sg.spec, sg.fetchLUTs(ws, aps, sg.spec), logTabs)
	synthScratch.Put(ws)
	return nil
}

// LogHeatmap is LogHeatmapInto into a fresh heatmap.
func (sg *SynthGrid) LogHeatmap(aps []APSpectrum) (*Heatmap, error) {
	h := &Heatmap{}
	if err := sg.LogHeatmapInto(h, aps); err != nil {
		return nil, err
	}
	return h, nil
}

// scoreTabs evaluates the log surface's definition at an arbitrary
// (off-lattice) position from the per-fix padded log tables: per AP
// one bearing (the only transcendental) and one branch-free lerp — no
// Spectrum.At, no math.Log. Bit-identical to LogLikelihoodBins, which
// recomputes the same quantities scalar per call: tab[b] is
// math.Log(max(P[b], likelihoodFloor)) by construction, and the
// padded tab[n] == tab[0] is exactly the scalar wrap.
func scoreTabs(x geom.Point, aps []APSpectrum, logTabs [][]float64) float64 {
	l := 0.0
	for a, ap := range aps {
		b, f := music.BinLookup(ap.Pos.Bearing(x), ap.Spectrum.Bins())
		tab := logTabs[a]
		l += tab[b]*(1-f) + tab[b+1]*f
	}
	return l
}

// hillClimbTabs is the compass pattern search of hillClimbFn scored by
// scoreTabs. A dedicated loop (rather than a closure over the tables
// passed to hillClimbFn) keeps the steady-state fix path free of
// per-call closure allocations. This is the scalar reference path —
// one atan2 per AP per probe; the fix path uses the rotation-guarded
// hillClimbGuarded (synthclimb.go), which must visit identical
// positions (pinned by TestHillClimbGuardedMatchesScalar).
func hillClimbTabs(start geom.Point, aps []APSpectrum, logTabs [][]float64, step float64, min, max geom.Point) (geom.Point, float64) {
	cur := start
	curL := scoreTabs(cur, aps, logTabs)
	for step > 0.01 {
		improved := false
		for _, d := range [4]geom.Vec{{X: step}, {X: -step}, {Y: step}, {Y: -step}} {
			cand := cur.Add(d)
			if cand.X < min.X || cand.X > max.X || cand.Y < min.Y || cand.Y > max.Y {
				continue
			}
			if l := scoreTabs(cand, aps, logTabs); l > curL {
				cur, curL = cand, l
				improved = true
			}
		}
		if !improved {
			step /= 2
		}
	}
	return cur, curL
}
