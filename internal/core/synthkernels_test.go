package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/music"
)

// TestSynthHeapMatchesLinearPick pins the heap-ordered branch-and-bound
// against the retained linear bound scan: over random scenes, every
// combination of pick order and hill-climb path must produce the
// identical refined argmax cell and the identical (bit-for-bit)
// localized fix — the heap replays the linear scan's (bound desc,
// index asc) refinement order exactly.
func TestSynthHeapMatchesLinearPick(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	min, max := synthBounds()
	for trial := 0; trial < 10; trial++ {
		client := geom.Pt(2+rng.Float64()*36, 2+rng.Float64()*12)
		aps := synthScene(2+rng.Intn(4), client, rng)
		variants := []SynthOptions{
			{Cell: 0.10, Cache: NewSynthCache(), LinearPick: true, ScalarHillClimb: true}, // pre-sprint reference
			{Cell: 0.10, Cache: NewSynthCache(), LinearPick: false, ScalarHillClimb: true},
			{Cell: 0.10, Cache: NewSynthCache(), LinearPick: true, ScalarHillClimb: false},
			{Cell: 0.10, Cache: NewSynthCache()}, // heap + guarded climb (the fix path)
		}
		var refCell int
		var refPos geom.Point
		for vi, opt := range variants {
			sg, err := NewSynthGrid(min, max, opt)
			if err != nil {
				t.Fatal(err)
			}
			cell, err := sg.RefinedArgmaxCell(aps)
			if err != nil {
				t.Fatal(err)
			}
			pos, err := sg.Localize(aps)
			if err != nil {
				t.Fatal(err)
			}
			if vi == 0 {
				refCell, refPos = cell, pos
				continue
			}
			if cell != refCell {
				t.Fatalf("trial %d variant %d: argmax cell %d, reference %d", trial, vi, cell, refCell)
			}
			if pos != refPos {
				t.Fatalf("trial %d variant %d: fix %v, reference %v — not bit-identical", trial, vi, pos, refPos)
			}
		}
	}
}

// TestHillClimbGuardedMatchesScalar pins the rotation-guarded hill
// climb bit-for-bit against the scalar scorer at the unit level: from
// many seeds on many scenes, the guarded climb must return the exact
// position and score of hillClimbTabs (the guard may only reject
// probes the exact scorer rejects). The pruning counter must also
// show the fast path actually firing, or the guard is vacuous.
func TestHillClimbGuardedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	min, max := synthBounds()
	var m SynthMetrics
	for trial := 0; trial < 15; trial++ {
		aps := synthScene(2+rng.Intn(4), geom.Pt(4+rng.Float64()*32, 3+rng.Float64()*10), rng)
		sg, err := NewSynthGrid(min, max, SynthOptions{Cell: 0.10, Cache: NewSynthCache(), Metrics: &m})
		if err != nil {
			t.Fatal(err)
		}
		var ws synthWorkspace
		logTabs := ws.logTables(aps)
		for i := 0; i < 20; i++ {
			seed := geom.Pt(min.X+rng.Float64()*(max.X-min.X), min.Y+rng.Float64()*(max.Y-min.Y))
			gotP, gotL := sg.hillClimbGuarded(&ws, seed, aps)
			wantP, wantL := hillClimbTabs(seed, aps, logTabs, sg.spec.Cell, min, max)
			if gotP != wantP || gotL != wantL {
				t.Fatalf("trial %d seed %v: guarded climb (%v, %v) != scalar climb (%v, %v)",
					trial, seed, gotP, gotL, wantP, wantL)
			}
		}
	}
	s := m.Snapshot()
	if s.HillProbes == 0 || s.HillPruned == 0 {
		t.Fatalf("guard never fired: probes=%d pruned=%d", s.HillProbes, s.HillPruned)
	}
	t.Logf("hill climb: %d probes, %d pruned without atan2 (%.0f%%)",
		s.HillProbes, s.HillPruned, 100*float64(s.HillPruned)/float64(s.HillProbes))
}

// TestHillClimbGuardedNearAP exercises the guard's decline paths: a
// climb that walks right next to (and onto) an AP position must fall
// back to exact scoring and stay bit-identical.
func TestHillClimbGuardedNearAP(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	min, max := synthBounds()
	aps := synthScene(3, geom.Pt(20, 8), rng)
	sg, err := NewSynthGrid(min, max, SynthOptions{Cell: 0.10, Cache: NewSynthCache()})
	if err != nil {
		t.Fatal(err)
	}
	var ws synthWorkspace
	logTabs := ws.logTables(aps)
	for _, ap := range aps {
		for _, off := range []geom.Vec{{}, {X: 0.005}, {X: -0.02, Y: 0.01}, {Y: 0.15}} {
			seed := ap.Pos.Add(off)
			if seed.X < min.X || seed.X > max.X || seed.Y < min.Y || seed.Y > max.Y {
				continue
			}
			gotP, gotL := sg.hillClimbGuarded(&ws, seed, aps)
			wantP, wantL := hillClimbTabs(seed, aps, logTabs, sg.spec.Cell, min, max)
			if gotP != wantP || gotL != wantL {
				t.Fatalf("seed %v at AP %v: guarded (%v, %v) != scalar (%v, %v)",
					seed, ap.Pos, gotP, gotL, wantP, wantL)
			}
		}
	}
}

// TestSynthBnBDegenerateNotQuadratic is the degenerate-surface
// satellite: all-floor spectra at 2 cm pitch tie every block bound,
// so the screen refines blocks up to its budget before falling back —
// the linear scan's pick cost is O(blocks) per refinement (O(blocks²)
// total bound visits), while the heap's is O(log blocks). Both paths
// must agree on the argmax; the heap must examine far fewer bound
// entries.
func TestSynthBnBDegenerateNotQuadratic(t *testing.T) {
	flat := []APSpectrum{
		{Pos: geom.Pt(0, 0), Spectrum: music.NewSpectrum(360)},
		{Pos: geom.Pt(6, 3), Spectrum: music.NewSpectrum(360)},
	}
	min, max := geom.Pt(0, 0), geom.Pt(6, 3)
	run := func(linear bool) (cell int, m SynthMetricsSnapshot) {
		var metrics SynthMetrics
		sg, err := NewSynthGrid(min, max, SynthOptions{
			Cell: 0.02, Cache: NewSynthCache(), Metrics: &metrics, LinearPick: linear,
		})
		if err != nil {
			t.Fatal(err)
		}
		cell, err = sg.RefinedArgmaxCell(flat)
		if err != nil {
			t.Fatal(err)
		}
		return cell, metrics.Snapshot()
	}
	linCell, lin := run(true)
	heapCell, heap := run(false)
	if linCell != heapCell {
		t.Fatalf("degenerate argmax diverged: linear %d, heap %d", linCell, heapCell)
	}
	if lin.FullEvalFallbacks != 1 || heap.FullEvalFallbacks != 1 {
		t.Fatalf("expected both paths to hit the refinement budget: linear %d, heap %d fallbacks",
			lin.FullEvalFallbacks, heap.FullEvalFallbacks)
	}
	if lin.BlocksRefined != heap.BlocksRefined {
		t.Fatalf("refined block counts diverged: linear %d, heap %d", lin.BlocksRefined, heap.BlocksRefined)
	}
	if heap.BoundVisits*10 >= lin.BoundVisits {
		t.Fatalf("heap pick order not asymptotically cheaper: %d visits vs linear %d",
			heap.BoundVisits, lin.BoundVisits)
	}
	t.Logf("degenerate 2 cm screen: %d blocks refined; bound visits linear=%d heap=%d (%.0fx fewer)",
		lin.BlocksRefined, lin.BoundVisits, heap.BoundVisits,
		float64(lin.BoundVisits)/float64(heap.BoundVisits))
}

// TestSynthMetricsCounters: a benign refined fix must account its
// work — blocks refined, bound visits, probes — and pruning can never
// exceed probing.
func TestSynthMetricsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	min, max := synthBounds()
	aps := synthScene(4, geom.Pt(15, 7), rng)
	var m SynthMetrics
	sg, err := NewSynthGrid(min, max, SynthOptions{Cell: 0.10, Cache: NewSynthCache(), Metrics: &m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sg.Localize(aps); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.BlocksRefined == 0 || s.BoundVisits == 0 {
		t.Fatalf("branch-and-bound work not accounted: %+v", s)
	}
	if s.HillProbes == 0 {
		t.Fatalf("hill-climb probes not accounted: %+v", s)
	}
	if s.HillPruned > s.HillProbes {
		t.Fatalf("pruned %d exceeds probes %d", s.HillPruned, s.HillProbes)
	}
}
