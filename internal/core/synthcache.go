package core

// SynthCache: the size-accounted, sharded LRU behind the synthesis
// subsystem. The first staged-synthesis cut memoized bearing LUTs in
// an unbounded map — fine for static deployments (a handful of APs ×
// one grid), fatal for per-request ad-hoc search regions, where every
// distinct bounding box mints new entries forever. This cache keeps
// the lock-cheap hot path (one shard mutex per lookup) and adds:
//
//   - byte accounting: every entry's cost is its LUT footprint plus
//     the screening-block bin windows derived for it, and the sum of
//     entry costs is the reported size, exactly (property-tested);
//   - a hard budget: each of the shards holds at most budget/shards
//     bytes, evicting least-recently-used entries at insert time
//     inside the same critical section — the externally visible size
//     never exceeds the budget, even mid-churn. An entry larger than
//     a shard's budget is built, served, and not retained;
//   - LUT derivation: a region grid that is lattice-aligned with a
//     cached full grid gets its LUT by slicing the parent's rows — a
//     row-copy instead of an atan2 per cell — and the result is
//     bit-identical to a direct build because sub-grid specs carry
//     their lattice offset (GridSpec.X0/Y0), so both paths evaluate
//     the same centre arithmetic.
//
// Eviction only ever drops memoization: LUTs are immutable, callers
// hold plain pointers, and a re-Get rebuilds a bit-identical table.

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// synthShards is the number of independently locked LRU segments.
const synthShards = 8

// DefaultSynthCacheBudget bounds the process-wide shared cache:
// roomy for dozens of full-floor grids plus region churn, small
// enough that a region-query flood cannot grow the heap unboundedly.
const DefaultSynthCacheBudget int64 = 256 << 20

// synthEntryOverhead approximates an entry's fixed footprint (struct,
// map header, LRU links) so accounting does not undercount small
// entries.
const synthEntryOverhead = 128

// sliceablePromoteMisses is how many region LUT builds may miss the
// same absent full-grid parent before the parent itself is built and
// cached: a region-only workload (no full-area fixes ever warming the
// parent) stops paying an atan2 per cell per distinct region and
// starts slicing rows on the next miss. Two misses are tolerated so a
// one-off region query never triggers a full-grid build it would not
// amortize.
const sliceablePromoteMisses = 3

// sliceableMissTableCap bounds the per-shard miss-counter table
// against unbounded key churn (hostile grids); when full it is simply
// cleared — counting restarts, promotion is delayed, correctness is
// unaffected.
const sliceableMissTableCap = 512

// lutCost is the byte footprint of a fine bearing LUT: one int32 bin
// plus one float64 fraction per cell, plus the entry overhead.
func lutCost(cells int) int64 { return int64(cells)*12 + synthEntryOverhead }

// blockCost is the byte footprint of one screening-block window
// table: two int32 per block.
func blockCost(blocks int) int64 { return int64(blocks) * 8 }

// synthEntry is one cached (AP position, grid geometry, bins) unit:
// the fine LUT and every screening-block window derived from it, with
// LRU links and the summed byte cost. Entries are owned by exactly
// one shard and mutated only under its lock.
type synthEntry struct {
	key        synthKey
	lut        *bearingLUT
	blocks     map[int]*blockLUT
	cost       int64
	prev, next *synthEntry
}

// synthShard is one LRU segment: a map for lookup plus an intrusive
// recency list (head = most recent, tail = eviction victim).
type synthShard struct {
	mu      sync.Mutex
	entries map[synthKey]*synthEntry
	head    *synthEntry
	tail    *synthEntry
	bytes   int64
	// sliceableMiss counts, per absent parent key, region builds that
	// could have been row slices had the parent been resident — the
	// promotion trigger for region-only workloads.
	sliceableMiss map[synthKey]uint32
}

func (sh *synthShard) unlink(e *synthEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *synthShard) pushFront(e *synthEntry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *synthShard) moveFront(e *synthEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// SynthCache memoizes bearing LUTs and their screening-block bin
// windows per (AP position, grid geometry, bins) under a byte budget,
// the synthesis-layer sibling of music.SteeringCache. Safe for
// concurrent use; lookups lock only the key's candidate shards.
//
// Placement is power-of-two-choices: each key hashes to two candidate
// shards and a new entry is inserted into the less-loaded one (first
// choice on ties). A single-choice layout thrashes on dense-pitch
// LUTs — at 2 cm a full-floor LUT is ~19 MB, one or two fit per
// shard, and two hot APs whose keys collide on a shard evict each
// other forever while the other shards sit idle. Two choices make
// that collision require both candidates to collide, and the
// less-loaded rule steers dense entries toward empty shards. Each
// shard still independently enforces budget/shards, so the hard
// budget invariant is unchanged.
type SynthCache struct {
	budget         atomic.Int64 // total bytes; 0 means unbounded; resized by SetBudget
	shards         [synthShards]synthShard
	hits           atomic.Uint64
	misses         atomic.Uint64
	evictions      atomic.Uint64
	slices         atomic.Uint64
	secondChoice   atomic.Uint64
	spills         atomic.Uint64
	denseEvictions atomic.Uint64
}

// SynthCacheUsage is a snapshot of the cache's accounting and
// counters, surfaced through engine.Stats and the server's stats dump.
type SynthCacheUsage struct {
	// Entries is the number of LUT entries held.
	Entries int
	// Bytes is the summed cost of held entries; never exceeds Budget
	// when a budget is set.
	Bytes int64
	// Budget is the configured byte cap (0 = unbounded).
	Budget int64
	// Hits and Misses count lookups (LUT and block-window level).
	Hits, Misses uint64
	// Evictions counts entries dropped to stay within the budget
	// (oversized pass-through serves included, as they always were).
	Evictions uint64
	// Slices counts LUT builds served by slicing a cached full-grid
	// parent instead of recomputing bearings.
	Slices uint64
	// SecondChoice counts entries placed in their second-choice shard
	// because the first was more loaded — the two-choice placements
	// that would have collided under single-choice hashing.
	SecondChoice uint64
	// Spills counts entries served without retention because they
	// exceed a shard's budget slice (LUT pass-throughs and
	// block-window serves on unretainable entries).
	Spills uint64
	// DenseEvictions counts evicted entries at dense-LUT scale
	// (cost ≥ 4 MiB): churn here means dense-pitch grids are fighting
	// for residency and the budget likely needs raising.
	DenseEvictions uint64
}

// denseEntryBytes is the cost above which an evicted entry counts as
// dense-LUT churn: region and full-floor LUTs at default pitch stay
// well under it, 2 cm-class LUTs (~19 MB per AP on the reference
// floor) are far over it.
const denseEntryBytes = 4 << 20

// NewSynthCache returns an empty, unbounded cache (the static-
// deployment configuration: a few APs × one grid geometry).
func NewSynthCache() *SynthCache { return NewSynthCacheBudget(0) }

// NewSynthCacheBudget returns an empty cache holding at most budget
// bytes of LUT state (0 = unbounded). The budget is split evenly
// across the internal shards, so any single entry costing more than
// budget/8 is served but not retained.
func NewSynthCacheBudget(budget int64) *SynthCache {
	if budget < 0 {
		budget = 0
	}
	c := &SynthCache{}
	c.budget.Store(budget)
	for i := range c.shards {
		c.shards[i].entries = make(map[synthKey]*synthEntry)
	}
	return c
}

var sharedSynth = NewSynthCacheBudget(DefaultSynthCacheBudget)

// SharedSynthCache returns the process-wide cache that
// core.DefaultConfig wires into every pipeline by default.
func SharedSynthCache() *SynthCache { return sharedSynth }

// Budget returns the live byte cap (0 = unbounded).
func (c *SynthCache) Budget() int64 { return c.budget.Load() }

// SetBudget hot-reloads the byte cap (≤0 = unbounded). Shrinking
// evicts least-recently-used entries shard by shard inside each
// shard's critical section, so the visible size converges to the new
// budget before SetBudget returns and never exceeds it afterwards.
// Growing simply leaves more room. Callers mid-lookup are unaffected:
// they hold plain pointers to immutable LUTs.
func (c *SynthCache) SetBudget(budget int64) {
	if budget < 0 {
		budget = 0
	}
	c.budget.Store(budget)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		c.evictOverLocked(sh)
		sh.mu.Unlock()
	}
}

func (c *SynthCache) shardBudget() int64 {
	b := c.budget.Load()
	if b == 0 {
		return 0 // unbounded
	}
	return b / synthShards
}

// shardPair returns the key's two candidate shard indices: the FNV-1a
// hash picks the first, a splitmix-style remix of the same hash picks
// the second (bumped to the next shard when both land together, so
// every key always has two distinct candidates).
func shardPair(key synthKey) (int, int) {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(math.Float64bits(key.apX))
	mix(math.Float64bits(key.apY))
	mix(math.Float64bits(key.minX))
	mix(math.Float64bits(key.minY))
	mix(math.Float64bits(key.cell))
	mix(uint64(key.nx))
	mix(uint64(key.ny))
	mix(uint64(key.x0))
	mix(uint64(key.y0))
	mix(uint64(key.bins))
	i1 := int(h % synthShards)
	h2 := h ^ (h >> 33)
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	i2 := int(h2 % synthShards)
	if i2 == i1 {
		i2 = (i1 + 1) % synthShards
	}
	return i1, i2
}

// shardOf returns the key's first-choice shard (tests and the miss
// accounting key off it; entries may reside in either candidate).
func (c *SynthCache) shardOf(key synthKey) *synthShard {
	i1, _ := shardPair(key)
	return &c.shards[i1]
}

// lockPair locks the key's two candidate shards in index order (the
// global lock order — both sites that hold two shard locks use it, so
// the pair can never deadlock) and returns them first-choice first.
func (c *SynthCache) lockPair(key synthKey) (first, second *synthShard) {
	i1, i2 := shardPair(key)
	lo, hi := i1, i2
	if lo > hi {
		lo, hi = hi, lo
	}
	c.shards[lo].mu.Lock()
	c.shards[hi].mu.Lock()
	return &c.shards[i1], &c.shards[i2]
}

func unlockPair(a, b *synthShard) {
	a.mu.Unlock()
	b.mu.Unlock()
}

// evictOverLocked drops least-recently-used entries until the shard
// fits its budget slice. Called with sh.mu held, inside the same
// critical section as the insert that grew the shard, so readers
// never observe the cache over budget.
func (c *SynthCache) evictOverLocked(sh *synthShard) {
	limit := c.shardBudget()
	if limit == 0 {
		return
	}
	for sh.bytes > limit && sh.tail != nil {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.entries, victim.key)
		sh.bytes -= victim.cost
		c.evictions.Add(1)
		if victim.cost >= denseEntryBytes {
			c.denseEvictions.Add(1)
		}
	}
}

// lut returns the bearing LUT for (AP position, grid, bins), building
// and memoizing it on first use.
func (c *SynthCache) lut(ap geom.Point, spec GridSpec, bins int) *bearingLUT {
	return c.lutFor(ap, spec, nil, bins)
}

// lutFor is lut with an optional parent grid: when the requested spec
// is a lattice-aligned sub-grid of parent and the parent's LUT is
// cached, the sub-LUT is sliced from it (bit-identical to a direct
// build, a row copy per grid row) instead of recomputed. Concurrent
// first lookups may build more than once; exactly one result is kept.
func (c *SynthCache) lutFor(ap geom.Point, spec GridSpec, parent *GridSpec, bins int) *bearingLUT {
	key := keyOf(ap, spec, bins)
	if lut := c.lookupLUT(key); lut != nil {
		c.hits.Add(1)
		return lut
	}

	fresh := c.buildOrSlice(ap, spec, parent, bins)
	c.misses.Add(1)
	first, second := c.lockPair(key)
	defer unlockPair(first, second)
	if e := first.entries[key]; e != nil {
		first.moveFront(e)
		return e.lut
	}
	if e := second.entries[key]; e != nil {
		second.moveFront(e)
		return e.lut
	}
	e := &synthEntry{key: key, lut: fresh, cost: lutCost(spec.Cells())}
	if limit := c.shardBudget(); limit > 0 && e.cost > limit {
		// Larger than a shard's whole slice: serve it without
		// retaining it (a spill, counted as an eviction too, as it
		// always was), and crucially without inserting first —
		// insert-then-evict would flush every innocent entry off the
		// shard's tail before reaching this one.
		c.evictions.Add(1)
		c.spills.Add(1)
		return fresh
	}
	// Two-choice placement: the less-loaded candidate, first choice
	// on ties.
	target := first
	if second.bytes < first.bytes {
		target = second
		c.secondChoice.Add(1)
	}
	target.entries[key] = e
	target.pushFront(e)
	target.bytes += e.cost
	c.evictOverLocked(target)
	return fresh
}

// lookupLUT probes the key's candidate shards (first choice, then
// second) and freshens the entry's recency on a hit. Returns nil on a
// miss; the caller counts hits/misses.
func (c *SynthCache) lookupLUT(key synthKey) *bearingLUT {
	i1, i2 := shardPair(key)
	for _, i := range [2]int{i1, i2} {
		sh := &c.shards[i]
		sh.mu.Lock()
		if e := sh.entries[key]; e != nil {
			sh.moveFront(e)
			sh.mu.Unlock()
			return e.lut
		}
		sh.mu.Unlock()
	}
	return nil
}

// buildOrSlice derives a fine LUT: sliced from a cached parent when
// the spec is a sub-grid of it, built from scratch otherwise. Slicing
// also freshens the parent's recency — the full grid is the hot
// ancestor of every aligned region and must not churn out under
// region pressure. Misses against an absent parent are counted; the
// sliceablePromoteMisses-th one builds and caches the parent so a
// region-only workload stops rebuilding slices from scratch.
func (c *SynthCache) buildOrSlice(ap geom.Point, spec GridSpec, parent *GridSpec, bins int) *bearingLUT {
	if parent != nil && spec.subGridOf(*parent) {
		pkey := keyOf(ap, *parent, bins)
		if plut := c.lookupLUT(pkey); plut != nil {
			c.slices.Add(1)
			return sliceLUT(plut, *parent, spec)
		}
		// Miss counting lives on the parent's first-choice shard
		// regardless of where a promotion would place it.
		psh := c.shardOf(pkey)
		psh.mu.Lock()
		promote := false
		// Never promote a parent the budget could not retain anyway:
		// the build would repeat every sliceablePromoteMisses-th miss
		// without ever paying off.
		if limit := c.shardBudget(); limit == 0 || lutCost(parent.Cells()) <= limit {
			if psh.sliceableMiss == nil {
				psh.sliceableMiss = make(map[synthKey]uint32)
			} else if len(psh.sliceableMiss) >= sliceableMissTableCap {
				clear(psh.sliceableMiss)
			}
			n := psh.sliceableMiss[pkey] + 1
			if n >= sliceablePromoteMisses {
				promote = true
				delete(psh.sliceableMiss, pkey)
			} else {
				psh.sliceableMiss[pkey] = n
			}
		}
		psh.mu.Unlock()
		if promote {
			// lutFor inserts the parent under the normal budget rules
			// (and dedups a concurrent promotion); slice from whatever
			// it returns.
			plut := c.lutFor(ap, *parent, nil, bins)
			c.slices.Add(1)
			return sliceLUT(plut, *parent, spec)
		}
	}
	return buildLUT(ap, spec, bins)
}

// sliceLUT copies the sub-grid's rows out of the parent's fine LUT.
// Cell (ix, iy) of spec is cell (spec.X0-parent.X0+ix,
// spec.Y0-parent.Y0+iy) of parent — the same absolute lattice cell,
// so the copied (bin, frac) pairs equal a direct build bit for bit.
func sliceLUT(p *bearingLUT, parent, spec GridSpec) *bearingLUT {
	out := &bearingLUT{
		bin:  make([]int32, spec.Cells()),
		frac: make([]float64, spec.Cells()),
	}
	dx, dy := spec.X0-parent.X0, spec.Y0-parent.Y0
	for iy := 0; iy < spec.Ny; iy++ {
		src := (dy+iy)*parent.Nx + dx
		dst := iy * spec.Nx
		copy(out.bin[dst:dst+spec.Nx], p.bin[src:src+spec.Nx])
		copy(out.frac[dst:dst+spec.Nx], p.frac[src:src+spec.Nx])
	}
	return out
}

// blockWindows returns the screening-block bin windows for (AP
// position, grid, factor), derived from the fine LUT and memoized on
// the grid's entry (parent as in lutFor).
func (c *SynthCache) blockWindows(ap geom.Point, spec GridSpec, bins, factor int, parent *GridSpec) *blockLUT {
	key := keyOf(ap, spec, bins)
	var lut *bearingLUT
	first, second := c.lockPair(key)
	if e, sh := entryIn(key, first, second); e != nil {
		if bl := e.blocks[factor]; bl != nil {
			sh.moveFront(e)
			unlockPair(first, second)
			c.hits.Add(1)
			return bl
		}
		lut = e.lut
	}
	unlockPair(first, second)

	if lut == nil {
		lut = c.lutFor(ap, spec, parent, bins)
	}
	fresh := buildBlockLUT(lut, spec, factor, bins)
	c.misses.Add(1)
	first, second = c.lockPair(key)
	defer unlockPair(first, second)
	e, sh := entryIn(key, first, second)
	if e == nil {
		// The entry churned out between the build and this insert (or
		// was never retained): serve the windows without accounting.
		return fresh
	}
	if bl := e.blocks[factor]; bl != nil {
		sh.moveFront(e)
		return bl
	}
	cost := blockCost(len(fresh.start))
	if limit := c.shardBudget(); limit > 0 && e.cost+cost > limit {
		// The entry's LUT fits but LUT + windows would not: serve the
		// windows uncached (a spill) and keep the (more expensive to
		// rebuild) LUT resident rather than evicting neighbours to
		// make room.
		c.evictions.Add(1)
		c.spills.Add(1)
		return fresh
	}
	if e.blocks == nil {
		e.blocks = make(map[int]*blockLUT, 1)
	}
	e.blocks[factor] = fresh
	e.cost += cost
	sh.bytes += cost
	sh.moveFront(e)
	c.evictOverLocked(sh)
	return fresh
}

// entryIn finds key in whichever candidate shard holds it. Both locks
// must be held.
func entryIn(key synthKey, first, second *synthShard) (*synthEntry, *synthShard) {
	if e := first.entries[key]; e != nil {
		return e, first
	}
	if e := second.entries[key]; e != nil {
		return e, second
	}
	return nil, nil
}

// Len returns the number of distinct LUT entries held.
func (c *SynthCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns cumulative hit and miss counts (diagnostics).
func (c *SynthCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Usage returns the cache's accounting snapshot. Each shard is read
// under its own lock; since every shard independently holds at most
// budget/shards bytes, the summed Bytes never exceeds Budget.
func (c *SynthCache) Usage() SynthCacheUsage {
	u := SynthCacheUsage{
		Budget:         c.budget.Load(),
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Evictions:      c.evictions.Load(),
		Slices:         c.slices.Load(),
		SecondChoice:   c.secondChoice.Load(),
		Spills:         c.spills.Load(),
		DenseEvictions: c.denseEvictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		u.Entries += len(sh.entries)
		u.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return u
}
