package core

// The streaming localization pipeline. The seed's LocateClient was one
// monolithic function: every stage inlined, every intermediate
// allocated per call. This file restructures it into explicit stages —
//
//	snapshots → correlation → subspace → spectrum   (per frame, via the
//	                                                 injected Estimator)
//	suppression → weighting → symmetry removal      (per AP, across frames)
//	synthesis                                       (across APs, Eq. 8)
//
// — with every stage threading a music.Workspace drawn from a
// sync.Pool, so the steady-state hot path allocates only what escapes
// (the spectra and the fix). The estimator is pluggable
// (Config.Estimator); the math is bit-identical to the seed for the
// default MUSIC estimator, pinned by equivalence tests.

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/music"
)

// Pipeline binds a Config to its resolved estimator and workspace
// pool. It is cheap to construct and safe for concurrent use: every
// public method acquires its own workspace from the pool.
type Pipeline struct {
	cfg  Config
	est  music.Estimator
	pool *music.WorkspacePool
}

// NewPipeline resolves the config's estimator (nil means MUSIC) and
// workspace pool (nil means allocate per call, the seed behaviour).
func NewPipeline(cfg Config) *Pipeline {
	est := cfg.Estimator
	if est == nil {
		est = music.MUSICEstimator
	}
	return &Pipeline{cfg: cfg, est: est, pool: cfg.Workspaces}
}

// Estimator returns the pipeline's resolved estimator.
func (p *Pipeline) Estimator() music.Estimator { return p.est }

// musicOptions translates the pipeline config into per-frame spectrum
// options for the given AP.
func (p *Pipeline) musicOptions(ap *AP) music.Options {
	opt := music.Options{
		Wavelength:          p.cfg.Wavelength,
		SmoothingGroups:     p.cfg.SmoothingGroups,
		SignalThresholdFrac: p.cfg.SignalThresholdFrac,
		MaxSamples:          p.cfg.MaxSamples,
		SampleOffset:        p.cfg.SampleOffset,
		ForwardBackward:     p.cfg.ForwardBackward,
		Steering:            p.cfg.Steering,
	}
	if ap.Calibration != nil {
		opt.CalibrationOffsets = ap.Calibration
	}
	return opt
}

// FrameSpectrum is the per-frame stage chain (snapshots → correlation
// → subspace → spectrum), delegated to the estimator with the given
// workspace (nil allocates).
func (p *Pipeline) FrameSpectrum(ws *music.Workspace, ap *AP, frame FrameCapture) (*music.Spectrum, error) {
	streams, err := frameRowStreams(ap, frame)
	if err != nil {
		return nil, fmt.Errorf("core: frame %w", err)
	}
	return p.est.Spectrum(ws, ap.Array, streams, p.musicOptions(ap))
}

// frameRowStreams validates a frame against the AP's row size and
// returns the main-row streams. The error is unprefixed; callers add
// their own context.
func frameRowStreams(ap *AP, frame FrameCapture) ([][]complex128, error) {
	nRow := ap.Array.N
	if len(frame.Streams) < nRow {
		return nil, fmt.Errorf("has %d streams, need %d row antennas", len(frame.Streams), nRow)
	}
	return frame.Streams[:nRow], nil
}

// frameSpectrumIndexed is FrameSpectrum with the seed's per-frame
// error messages (no double package prefix when wrapped with the frame
// index).
func (p *Pipeline) frameSpectrumIndexed(ws *music.Workspace, ap *AP, frame FrameCapture, i int) (*music.Spectrum, error) {
	streams, err := frameRowStreams(ap, frame)
	if err != nil {
		return nil, fmt.Errorf("core: frame %d %w", i, err)
	}
	s, err := p.est.Spectrum(ws, ap.Array, streams, p.musicOptions(ap))
	if err != nil {
		return nil, fmt.Errorf("core: frame %d: %w", i, err)
	}
	return s, nil
}

// CombineAP is the cross-frame stage for one AP: multipath suppression
// over the frame spectra (§2.4), geometry weighting (§2.3.3), and
// ninth-antenna symmetry removal (§2.3.4). frames supplies the raw
// streams symmetry removal needs; spectra are the FrameSpectrum
// outputs in frame order. The returned spectrum is freshly allocated
// and normalized.
func (p *Pipeline) CombineAP(ws *music.Workspace, ap *AP, frames []FrameCapture, spectra []*music.Spectrum) (*music.Spectrum, error) {
	if len(spectra) == 0 {
		return nil, errors.New("core: no spectra to combine")
	}
	var out *music.Spectrum
	if p.cfg.UseSuppression && len(spectra) >= 2 {
		// Group at most three spectra, per step 1 of the algorithm.
		group := spectra
		if len(group) > 3 {
			group = group[:3]
		}
		out = SuppressMultipath(group, p.cfg.PeakMatchTolDeg)
	} else {
		out = spectra[0].Clone()
	}

	if p.cfg.UseWeighting {
		out.ApplyGeometryWeighting(ap.Array.Orient)
	}

	if p.cfg.UseSymmetryRemoval && ap.Array.NinthAntenna &&
		len(frames) > 0 && len(frames[0].Streams) >= ap.Array.NumElements() {
		full := frames[0].Streams[:ap.Array.NumElements()]
		snaps := music.SnapshotsAtWS(ws, full, p.cfg.SampleOffset, p.cfg.MaxSamples)
		if ap.Calibration != nil {
			for _, s := range snaps {
				array.CorrectOffsets(s, ap.Calibration)
			}
		}
		rFull, err := music.CorrelationMatrixWS(ws, snaps)
		if err != nil {
			return nil, err
		}
		music.SymmetryRemovalCachedWS(ws, out, ap.Array, rFull, p.cfg.Wavelength, p.cfg.Steering)
	}

	out.Normalize()
	return out, nil
}

// ProcessAP runs the per-AP half of the pipeline (frame spectra, then
// the combine stage) with one workspace drawn from the pool.
func (p *Pipeline) ProcessAP(ap *AP, frames []FrameCapture) (*music.Spectrum, error) {
	if len(frames) == 0 {
		return nil, errors.New("core: no frames captured")
	}
	ws := p.pool.Get()
	defer p.pool.Put(ws)
	return p.processAP(ws, ap, frames)
}

func (p *Pipeline) processAP(ws *music.Workspace, ap *AP, frames []FrameCapture) (*music.Spectrum, error) {
	spectra := make([]*music.Spectrum, 0, len(frames))
	for i, f := range frames {
		s, err := p.frameSpectrumIndexed(ws, ap, f, i)
		if err != nil {
			return nil, err
		}
		spectra = append(spectra, s)
	}
	return p.CombineAP(ws, ap, frames, spectra)
}

// Synthesize is the final stage: the Eq. 8 grid search plus hill
// climbing (§2.5). With a SynthCache configured it runs the staged
// subsystem — cached bearing LUTs, log-domain sharded accumulation,
// coarse-to-fine refinement; a nil SynthCache keeps the seed's serial
// product-domain path.
func (p *Pipeline) Synthesize(specs []APSpectrum, min, max geom.Point) (geom.Point, error) {
	return p.SynthesizeRegion(specs, min, max, Region{})
}

// SynthesizeRegion is Synthesize restricted to an ad-hoc search
// region (zero region = full area). On the staged path a region at
// the configured pitch snaps to the full grid's lattice, so its
// bearing LUTs slice out of cached full-grid entries and its argmax
// equals the full-grid argmax restricted to the box; the seed path
// grid-searches the clamped box directly. The region is validated
// here, so malformed boxes fail a fix rather than corrupting it.
func (p *Pipeline) SynthesizeRegion(specs []APSpectrum, min, max geom.Point, region Region) (geom.Point, error) {
	if err := region.Validate(); err != nil {
		return geom.Point{}, err
	}
	cell := p.cfg.GridCell
	if cell <= 0 {
		cell = 0.10
	}
	if p.cfg.SynthCache == nil {
		lo, hi, cell, _, err := seedRegionClamp(min, max, region, cell)
		if err != nil {
			return geom.Point{}, err
		}
		pos, _, err := Localize(specs, lo, hi, cell)
		return pos, err
	}
	sg, err := NewSynthGridRegion(min, max, region, p.synthOptions(cell))
	if err != nil {
		return geom.Point{}, err
	}
	return sg.Localize(specs)
}

// synthOptions translates the pipeline config into staged-synthesis
// options at the given fine pitch.
func (p *Pipeline) synthOptions(cell float64) SynthOptions {
	return SynthOptions{
		Cell:         cell,
		Workers:      p.cfg.SynthWorkers,
		Cache:        p.cfg.SynthCache,
		CoarseFactor: p.cfg.CoarseFactor,
		RefineTopK:   p.cfg.RefineTopK,
		Yield:        p.cfg.SynthYield,
	}
}

// SynthesizeRegionInterior is SynthesizeRegion plus a report of
// whether the region's grid argmax was strictly interior to the
// region on every open side (see SynthGrid.LocalizeInterior) — the
// verification bit the engine's predictive track-guided path keys
// on. A zero region (full area) always reports interior: there is no
// wider area to fall back to.
func (p *Pipeline) SynthesizeRegionInterior(specs []APSpectrum, min, max geom.Point, region Region) (geom.Point, bool, error) {
	if region.IsZero() {
		pos, err := p.Synthesize(specs, min, max)
		return pos, err == nil, err
	}
	if err := region.Validate(); err != nil {
		return geom.Point{}, false, err
	}
	cell := p.cfg.GridCell
	if cell <= 0 {
		cell = 0.10
	}
	if p.cfg.SynthCache == nil {
		return p.seedRegionInterior(specs, min, max, region, cell)
	}
	sg, err := NewSynthGridRegion(min, max, region, p.synthOptions(cell))
	if err != nil {
		return geom.Point{}, false, err
	}
	return sg.LocalizeInterior(specs)
}

// seedRegionClamp resolves the seed path's clamped box, effective
// pitch, and scoped-pitch flag for a non-zero region, enforcing the
// same work cap as the staged path: a scoped pitch may not demand
// more cells than a full-area fix (regions arrive untrusted). Shared
// by SynthesizeRegion and seedRegionInterior so both entry points
// validate identically.
func seedRegionClamp(min, max geom.Point, region Region, cell float64) (lo, hi geom.Point, outCell float64, scoped bool, err error) {
	lo, hi = min, max
	if region.IsZero() {
		return lo, hi, cell, false, nil
	}
	if lo, hi, err = region.clampTo(min, max); err != nil {
		return lo, hi, cell, false, err
	}
	if region.Cell != 0 && region.Cell != cell {
		full, err := GridSpecFor(min, max, cell)
		if err != nil {
			return lo, hi, cell, true, err
		}
		sc, err := GridSpecFor(lo, hi, region.Cell)
		if err != nil {
			return lo, hi, cell, true, err
		}
		if sc.Cells() > full.Cells() {
			return lo, hi, cell, true, fmt.Errorf("%w: %d cells at pitch %g exceeds the %d-cell full grid",
				ErrBadRegion, sc.Cells(), region.Cell, full.Cells())
		}
		cell = region.Cell
		scoped = true
	}
	return lo, hi, cell, scoped, nil
}

// seedRegionInterior is the seed-path (no SynthCache) region search
// with the interior report derived from the coarse heatmap argmax,
// mirroring the staged path's semantics exactly: for a lattice-
// aligned region a side flush with the configured search area counts
// as closed (nothing lies beyond it), while a scoped-pitch region —
// which the staged path builds without a parent grid — treats every
// side as open (conservative).
func (p *Pipeline) seedRegionInterior(specs []APSpectrum, min, max geom.Point, region Region, cell float64) (geom.Point, bool, error) {
	lo, hi, cell, scoped, err := seedRegionClamp(min, max, region, cell)
	if err != nil {
		return geom.Point{}, false, err
	}
	pos, h, err := Localize(specs, lo, hi, cell)
	if err != nil {
		return geom.Point{}, false, err
	}
	best := 0
	for c := 1; c < len(h.Flat); c++ {
		if h.Flat[c] > h.Flat[best] {
			best = c
		}
	}
	ix, iy := best%h.Nx, best/h.Nx
	const eps = 1e-9
	interior := (ix > 0 || (!scoped && lo.X <= min.X+eps)) &&
		(ix < h.Nx-1 || (!scoped && hi.X >= max.X-eps)) &&
		(iy > 0 || (!scoped && lo.Y <= min.Y+eps)) &&
		(iy < h.Ny-1 || (!scoped && hi.Y >= max.Y-eps))
	return pos, interior, nil
}

// Locate runs the complete pipeline for one client: per-AP processing
// of every contributing AP (fanned across Config.APWorkers when >1),
// then synthesis. captures[i] holds the frames AP i overheard; APs
// with no captures are skipped. At least one AP must contribute.
func (p *Pipeline) Locate(aps []*AP, captures [][]FrameCapture, min, max geom.Point) (geom.Point, []APSpectrum, error) {
	return p.LocateRegion(aps, captures, min, max, Region{})
}

// LocateRegion is Locate with the synthesis stage restricted to an
// ad-hoc search region (zero region = full area). Spectrum processing
// is identical; only the Eq. 8 search area changes.
func (p *Pipeline) LocateRegion(aps []*AP, captures [][]FrameCapture, min, max geom.Point, region Region) (geom.Point, []APSpectrum, error) {
	specs, err := p.ProcessAPs(aps, captures)
	if err != nil {
		return geom.Point{}, nil, err
	}
	pos, err := p.SynthesizeRegion(specs, min, max, region)
	return pos, specs, err
}

// ProcessAPs runs the per-AP half of the pipeline — frame spectra,
// suppression, weighting, symmetry removal — for every contributing
// AP (fanned across Config.APWorkers when >1) and returns the
// position-tagged spectra ready for synthesis. captures[i] holds the
// frames AP i overheard; APs with no captures are skipped. At least
// one AP must contribute. Splitting this stage from synthesis is what
// lets the engine's predictive path try a track-guided region first
// and fall back to the full grid without re-processing a single
// spectrum.
func (p *Pipeline) ProcessAPs(aps []*AP, captures [][]FrameCapture) ([]APSpectrum, error) {
	if len(aps) != len(captures) {
		return nil, errors.New("core: captures must align with APs")
	}
	var contrib []int
	for i := range aps {
		if len(captures[i]) > 0 {
			contrib = append(contrib, i)
		}
	}
	if len(contrib) == 0 {
		return nil, errors.New("core: no AP overheard the client")
	}

	// Per-AP processing is independent; fan it out over a bounded
	// worker pool when the config allows. Results land in AP-indexed
	// slots, so ordering — and therefore the synthesis output — is
	// identical to the serial path. Each worker holds its own
	// workspace for its whole run.
	spectra := make([]*music.Spectrum, len(aps))
	errs := make([]error, len(aps))
	workers := p.cfg.APWorkers
	if workers > len(contrib) {
		workers = len(contrib)
	}
	if workers > 1 {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := p.pool.Get()
				defer p.pool.Put(ws)
				for i := range idx {
					spectra[i], errs[i] = p.processAP(ws, aps[i], captures[i])
				}
			}()
		}
		for _, i := range contrib {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		ws := p.pool.Get()
		for _, i := range contrib {
			if spectra[i], errs[i] = p.processAP(ws, aps[i], captures[i]); errs[i] != nil {
				break
			}
		}
		p.pool.Put(ws)
	}

	specs := make([]APSpectrum, 0, len(contrib))
	for _, i := range contrib {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: AP %d: %w", i, errs[i])
		}
		specs = append(specs, APSpectrum{Pos: aps[i].Array.Pos, Spectrum: spectra[i]})
	}
	return specs, nil
}
