package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/array"
	"repro/internal/channel"
	"repro/internal/geom"
	"repro/internal/music"
	"repro/internal/wifi"
)

const lambda = 0.1225

// gaussSpectrum builds a spectrum with Gaussian lobes at the given
// bearings (degrees) and amplitudes.
func gaussSpectrum(centersDeg []float64, amps []float64) *music.Spectrum {
	s := music.NewSpectrum(360)
	for j, c := range centersDeg {
		for i := range s.P {
			d := math.Abs(float64(i) - c)
			if d > 180 {
				d = 360 - d
			}
			s.P[i] += amps[j] * math.Exp(-d*d/(2*16))
		}
	}
	return s.Normalize()
}

func TestSuppressMultipathRemovesUnstablePeak(t *testing.T) {
	// Primary has peaks at 60° (direct, stable) and 150° (reflection).
	// The other two frames keep 60° but the reflection wanders.
	primary := gaussSpectrum([]float64{60, 150}, []float64{1, 0.8})
	f2 := gaussSpectrum([]float64{60, 170}, []float64{1, 0.8})
	f3 := gaussSpectrum([]float64{61, 130}, []float64{1, 0.8})
	out := SuppressMultipath([]*music.Spectrum{primary, f2, f3}, 5)

	if out.At(geom.Rad(60)) < 0.5 {
		t.Errorf("stable direct peak suppressed: %v", out.At(geom.Rad(60)))
	}
	if out.At(geom.Rad(150)) > 0.05 {
		t.Errorf("unstable reflection survives: %v", out.At(geom.Rad(150)))
	}
	// The primary itself must be untouched.
	if primary.At(geom.Rad(150)) < 0.5 {
		t.Error("SuppressMultipath mutated its input")
	}
}

func TestSuppressMultipathKeepsStablePeaks(t *testing.T) {
	// Both peaks stable in all frames → nothing removed (the "no
	// deleterious consequences" case of §2.4).
	a := gaussSpectrum([]float64{60, 150}, []float64{1, 0.8})
	b := gaussSpectrum([]float64{62, 149}, []float64{1, 0.8})
	out := SuppressMultipath([]*music.Spectrum{a, b}, 5)
	if out.At(geom.Rad(60)) < 0.5 || out.At(geom.Rad(150)) < 0.3 {
		t.Error("stable peaks should be kept")
	}
}

func TestSuppressMultipathSingleSpectrumPassThrough(t *testing.T) {
	a := gaussSpectrum([]float64{60}, []float64{1})
	out := SuppressMultipath([]*music.Spectrum{a}, 5)
	if out.At(geom.Rad(60)) != a.At(geom.Rad(60)) {
		t.Error("single spectrum should pass through")
	}
	if SuppressMultipath(nil, 5) != nil {
		t.Error("empty input should return nil")
	}
}

func TestRemovePeaksNear(t *testing.T) {
	s := gaussSpectrum([]float64{45, 200}, []float64{1, 0.9})
	out := RemovePeaksNear(s, []float64{geom.Rad(45)}, 5)
	if out.At(geom.Rad(45)) > 0.05 {
		t.Errorf("peak at 45° not removed: %v", out.At(geom.Rad(45)))
	}
	if out.At(geom.Rad(200)) < 0.5 {
		t.Errorf("peak at 200° should survive: %v", out.At(geom.Rad(200)))
	}
}

func TestPeakStability(t *testing.T) {
	a := gaussSpectrum([]float64{60, 150}, []float64{1, 0.8})
	moved := gaussSpectrum([]float64{60, 170}, []float64{1, 0.8})
	direct, refl := PeakStability(a, moved, geom.Rad(60), 5)
	if !direct || refl {
		t.Errorf("stability = %v,%v; want direct stable, reflections moved", direct, refl)
	}
	same := gaussSpectrum([]float64{60, 150}, []float64{1, 0.8})
	direct, refl = PeakStability(a, same, geom.Rad(60), 5)
	if !direct || !refl {
		t.Errorf("identical spectra should be fully stable: %v,%v", direct, refl)
	}
}

func TestLikelihoodPeaksAtIntersection(t *testing.T) {
	// Two APs with clean spectra pointing at the client position.
	client := geom.Pt(5, 5)
	ap1 := geom.Pt(0, 0)
	ap2 := geom.Pt(10, 0)
	s1 := gaussSpectrum([]float64{geom.Deg(ap1.Bearing(client))}, []float64{1})
	s2 := gaussSpectrum([]float64{geom.Deg(ap2.Bearing(client))}, []float64{1})
	aps := []APSpectrum{{Pos: ap1, Spectrum: s1}, {Pos: ap2, Spectrum: s2}}

	lTrue := Likelihood(client, aps)
	lWrong := Likelihood(geom.Pt(2, 8), aps)
	if lTrue <= lWrong {
		t.Errorf("likelihood at truth %v not above %v", lTrue, lWrong)
	}

	pos, _, err := Localize(aps, geom.Pt(0, 0), geom.Pt(10, 10), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if pos.Dist(client) > 0.5 {
		t.Errorf("localized %v, want near %v", pos, client)
	}
}

func TestLocalizeErrors(t *testing.T) {
	if _, _, err := Localize(nil, geom.Pt(0, 0), geom.Pt(1, 1), 0.1); err == nil {
		t.Error("no APs should error")
	}
	s := gaussSpectrum([]float64{45}, []float64{1})
	aps := []APSpectrum{{Pos: geom.Pt(0, 0), Spectrum: s}}
	if _, err := ComputeHeatmap(aps, geom.Pt(0, 0), geom.Pt(1, 1), 0); err == nil {
		t.Error("zero cell should error")
	}
	if _, err := ComputeHeatmap(aps, geom.Pt(1, 1), geom.Pt(0, 0), 0.1); err == nil {
		t.Error("inverted bounds should error")
	}
}

func TestHeatmapCellsAndTop(t *testing.T) {
	s := gaussSpectrum([]float64{45}, []float64{1})
	aps := []APSpectrum{{Pos: geom.Pt(0, 0), Spectrum: s}}
	h, err := ComputeHeatmap(aps, geom.Pt(0, 0), geom.Pt(2, 2), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Vals) != 5 || len(h.Vals[0]) != 5 {
		t.Fatalf("heatmap shape %dx%d", len(h.Vals), len(h.Vals[0]))
	}
	top := h.TopCells(3)
	if len(top) != 3 {
		t.Fatalf("TopCells = %d", len(top))
	}
	// Best cell should lie along the 45° ray: x == y.
	if math.Abs(top[0].X-top[0].Y) > 0.51 {
		t.Errorf("top cell %v not on the 45° ray", top[0])
	}
	if got := h.CellCenter(0, 0); got != (geom.Pt(0, 0)) {
		t.Errorf("CellCenter = %v", got)
	}
}

func TestHeatmapASCII(t *testing.T) {
	s := gaussSpectrum([]float64{45}, []float64{1})
	aps := []APSpectrum{{Pos: geom.Pt(0, 0), Spectrum: s}}
	h, _ := ComputeHeatmap(aps, geom.Pt(0, 0), geom.Pt(2, 2), 0.5)
	out := h.ASCII(map[byte]geom.Point{'X': geom.Pt(1, 1)})
	if len(out) == 0 {
		t.Fatal("empty ASCII render")
	}
	found := false
	for i := 0; i < len(out); i++ {
		if out[i] == 'X' {
			found = true
		}
	}
	if !found {
		t.Error("mark not rendered")
	}
	_ = h.String()
}

// buildTestbedAPs wires the channel simulator to the pipeline: nAPs
// arrays around a room, each capturing nFrames frames from the client
// (with tiny client movements between frames).
func buildTestbedAPs(t *testing.T, client geom.Point, nAPs, nFrames int, rng *rand.Rand) ([]*AP, [][]FrameCapture, *geom.Floorplan) {
	t.Helper()
	var plan geom.Floorplan
	wall := geom.Material{Name: "partition", Reflectivity: 0.20, TransmissionLossDB: 10}
	plan.AddRect(geom.Pt(0, 0), geom.Pt(20, 12), wall)
	model := &channel.Model{Plan: &plan, Wavelength: lambda, MaxReflections: 1}
	for i := 0; i < 6; i++ {
		model.Scatterers = append(model.Scatterers, channel.Scatterer{
			Pos:   geom.Pt(2+rng.Float64()*16, 2+rng.Float64()*8),
			Coeff: 0.12,
		})
	}

	apSpots := []struct {
		p      geom.Point
		orient float64
	}{
		{geom.Pt(1, 1), 0},
		{geom.Pt(19, 1), math.Pi / 2},
		{geom.Pt(19, 11), math.Pi},
		{geom.Pt(1, 11), -math.Pi / 2},
		{geom.Pt(10, 1), 0},
		{geom.Pt(10, 11), math.Pi},
	}

	sig := wifi.Preamble40()
	var aps []*AP
	var captures [][]FrameCapture
	for i := 0; i < nAPs; i++ {
		arr := array.NewLinear(apSpots[i].p, apSpots[i].orient, 8, lambda)
		arr.NinthAntenna = true
		ap := &AP{Array: arr}
		var frames []FrameCapture
		pos := client
		for f := 0; f < nFrames; f++ {
			rec := model.Receive(pos, arr, sig, channel.RxConfig{
				TxPowerDBm:    10,
				NoiseFloorDBm: -75,
				Rng:           rng,
			})
			frames = append(frames, FrameCapture{Streams: rec.Samples})
			// ≤5 cm movement between frames (§4.2).
			pos = client.Add(geom.Vec{X: rng.Float64()*0.08 - 0.04, Y: rng.Float64()*0.08 - 0.04})
		}
		aps = append(aps, ap)
		captures = append(captures, frames)
	}
	return aps, captures, &plan
}

func TestEndToEndLocalization(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	client := geom.Pt(7.5, 6.2)
	aps, captures, plan := buildTestbedAPs(t, client, 4, 3, rng)
	cfg := DefaultConfig(lambda)
	pos, specs, err := LocateClient(aps, captures, plan.Min, plan.Max, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("spectra = %d", len(specs))
	}
	if d := pos.Dist(client); d > 1.0 {
		t.Errorf("location error %.2f m, want < 1 m (got %v, want %v)", d, pos, client)
	}
}

func TestEndToEndUnoptimizedWorse(t *testing.T) {
	// Over a handful of clients the full pipeline should do at least
	// as well on average as the unoptimized baseline.
	rng := rand.New(rand.NewSource(43))
	clients := []geom.Point{
		geom.Pt(5, 4), geom.Pt(12, 7), geom.Pt(15.5, 3.3), geom.Pt(8, 9),
	}
	var full, unopt float64
	for _, c := range clients {
		aps, captures, plan := buildTestbedAPs(t, c, 3, 3, rng)
		p1, _, err := LocateClient(aps, captures, plan.Min, plan.Max, DefaultConfig(lambda))
		if err != nil {
			t.Fatal(err)
		}
		p2, _, err := LocateClient(aps, captures, plan.Min, plan.Max, UnoptimizedConfig(lambda))
		if err != nil {
			t.Fatal(err)
		}
		full += p1.Dist(c)
		unopt += p2.Dist(c)
	}
	t.Logf("mean error: full=%.2f m unoptimized=%.2f m", full/4, unopt/4)
	if full > unopt*1.5 {
		t.Errorf("full pipeline (%.2f) much worse than unoptimized (%.2f)", full/4, unopt/4)
	}
}

func TestProcessAPErrors(t *testing.T) {
	arr := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	ap := &AP{Array: arr}
	if _, err := ProcessAP(ap, nil, DefaultConfig(lambda)); err == nil {
		t.Error("no frames should error")
	}
	short := []FrameCapture{{Streams: make([][]complex128, 2)}}
	if _, err := ProcessAP(ap, short, DefaultConfig(lambda)); err == nil {
		t.Error("too few streams should error")
	}
}

func TestLocateClientErrors(t *testing.T) {
	arr := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	aps := []*AP{{Array: arr}}
	if _, _, err := LocateClient(aps, nil, geom.Pt(0, 0), geom.Pt(1, 1), DefaultConfig(lambda)); err == nil {
		t.Error("misaligned captures should error")
	}
	if _, _, err := LocateClient(aps, [][]FrameCapture{nil}, geom.Pt(0, 0), geom.Pt(1, 1), DefaultConfig(lambda)); err == nil {
		t.Error("no captures at any AP should error")
	}
}

func TestConfigPresets(t *testing.T) {
	d := DefaultConfig(lambda)
	if !d.UseSuppression || !d.UseWeighting || !d.UseSymmetryRemoval {
		t.Error("DefaultConfig should enable all optimizations")
	}
	if d.SmoothingGroups != 2 || d.MaxSamples != 10 {
		t.Error("DefaultConfig should match the paper's parameters")
	}
	u := UnoptimizedConfig(lambda)
	if u.UseSuppression || u.UseWeighting || u.UseSymmetryRemoval {
		t.Error("UnoptimizedConfig should disable all optimizations")
	}
}
