// Package core implements ArrayTrack's primary contribution: the
// multipath suppression algorithm (§2.4), AoA spectra synthesis into a
// position likelihood with hill-climbing refinement (§2.5), successive
// interference cancellation for colliding frames (§4.3.5), and the
// System type that glues per-AP processing into end-to-end location
// estimates.
package core

import (
	"math"

	"repro/internal/geom"
	"repro/internal/music"
)

// DefaultPeakMatchTolDeg is the bearing tolerance used to decide that a
// peak "did not change" between frames: the paper's microbenchmark uses
// five degrees.
const DefaultPeakMatchTolDeg = 5.0

// DefaultPeakFloor is the relative power below which local maxima are
// ignored as noise ripple during peak pairing.
const DefaultPeakFloor = 0.08

// suppressFactor is the attenuation applied to lobes identified as
// reflections. Attenuating instead of zeroing means one wrong removal
// reduces, rather than vetoes, the true location's likelihood in the
// Eq. 8 product.
const suppressFactor = 0.05

// SuppressMultipath implements the §2.4 algorithm (Figure 8): given two
// or three AoA spectra from frames captured close together in time
// (≤100 ms apart, during which small client movements perturb
// reflection-path peaks but not the direct-path peak), it takes the
// first spectrum as the primary and suppresses every peak that is not
// matched, within tolDeg degrees, by a peak in any of the other
// spectra. Requiring a match in just one other frame keeps the
// occasionally wobbly direct-path peak (Table 1 puts its stability
// around 90%, not 100%) while reflections — which move on essentially
// every small displacement — still get caught. The primary is not
// modified; a new spectrum is returned.
//
// With fewer than two spectra the primary (or nil) is returned
// unchanged, per step 1 of the algorithm.
func SuppressMultipath(spectra []*music.Spectrum, tolDeg float64) *music.Spectrum {
	if len(spectra) == 0 {
		return nil
	}
	primary := spectra[0]
	if len(spectra) == 1 {
		return primary.Clone()
	}
	if tolDeg <= 0 {
		tolDeg = DefaultPeakMatchTolDeg
	}
	out := primary.Clone()
	// Each spectrum's peaks are found once; the per-primary-peak loop
	// only scans the cached lists.
	otherPeaks := make([][]music.Peak, len(spectra)-1)
	for i, other := range spectra[1:] {
		otherPeaks[i] = other.Peaks(DefaultPeakFloor)
	}
	for _, pk := range primary.Peaks(DefaultPeakFloor) {
		stable := false
		for _, ops := range otherPeaks {
			if matchInPeaks(ops, pk.Theta, tolDeg) {
				stable = true
				break
			}
		}
		if !stable {
			removeLobe(out, pk.Bin)
		}
	}
	return out
}

func hasMatchingPeak(s *music.Spectrum, theta, tolDeg float64) bool {
	return matchInPeaks(s.Peaks(DefaultPeakFloor), theta, tolDeg)
}

func matchInPeaks(peaks []music.Peak, theta, tolDeg float64) bool {
	for _, pk := range peaks {
		if geom.AngleDiff(pk.Theta, theta) <= geom.Rad(tolDeg) {
			return true
		}
	}
	return false
}

// removeLobe attenuates the lobe containing bin by suppressFactor: it
// walks downhill from the peak in both directions until the spectrum
// turns back up (a valley) or a full half-circle is covered.
func removeLobe(s *music.Spectrum, bin int) {
	n := s.Bins()
	limit := n / 2
	s.P[bin] *= suppressFactor
	for dir := -1; dir <= 1; dir += 2 {
		prev := math.Inf(1)
		for step := 1; step <= limit; step++ {
			i := ((bin+dir*step)%n + n) % n
			v := s.P[i]
			if v > prev {
				break // climbing again: next lobe
			}
			prev = v
			s.P[i] *= suppressFactor
		}
	}
}

// RemovePeaksNear zeroes the lobes of s around each given bearing
// (within tolDeg): the successive-interference-cancellation step of
// §4.3.5 subtracts the first colliding packet's bearings from the
// second packet's combined spectrum. Returns a new spectrum.
func RemovePeaksNear(s *music.Spectrum, bearings []float64, tolDeg float64) *music.Spectrum {
	out := s.Clone()
	for _, pk := range s.Peaks(DefaultPeakFloor) {
		for _, b := range bearings {
			if geom.AngleDiff(pk.Theta, b) <= geom.Rad(tolDeg) {
				removeLobe(out, pk.Bin)
				break
			}
		}
	}
	return out
}

// PeakStability classifies how the peaks of spectrum b moved relative
// to spectrum a (the Table 1 microbenchmark): it returns whether the
// peak nearest refBearing (the direct path) stayed within tolDeg, and
// whether every other peak did.
func PeakStability(a, b *music.Spectrum, refBearing, tolDeg float64) (directSame, reflectionsSame bool) {
	apeaks := a.Peaks(DefaultPeakFloor)
	if len(apeaks) == 0 {
		return false, true
	}
	directSame = true
	reflectionsSame = true
	// Find the peak of a nearest the reference (direct-path) bearing.
	bestIdx, bestDiff := -1, math.Inf(1)
	for i, pk := range apeaks {
		if d := geom.AngleDiff(pk.Theta, refBearing); d < bestDiff {
			bestIdx, bestDiff = i, d
		}
	}
	for i, pk := range apeaks {
		matched := hasMatchingPeak(b, pk.Theta, tolDeg)
		if i == bestIdx {
			directSame = matched
		} else if !matched {
			reflectionsSame = false
		}
	}
	return directSame, reflectionsSame
}
