package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestRegionValidate rejects the malformed boxes the fuzz corpus and
// the wire decoder rely on being rejected.
func TestRegionValidate(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	bad := []Region{
		{Min: geom.Pt(nan, 0), Max: geom.Pt(1, 1)},
		{Min: geom.Pt(0, 0), Max: geom.Pt(inf, 1)},
		{Min: geom.Pt(0, nan), Max: geom.Pt(1, 1)},
		{Min: geom.Pt(1, 1), Max: geom.Pt(0, 0)}, // inverted
		{Min: geom.Pt(2, 0), Max: geom.Pt(1, 5)}, // inverted X
		{Min: geom.Pt(3, 3), Max: geom.Pt(3, 8)}, // degenerate X
		{Min: geom.Pt(3, 3), Max: geom.Pt(8, 3)}, // degenerate Y
		{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1), Cell: nan},
		{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1), Cell: -0.1},
		{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1), Cell: 1e-6},
		{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1), Cell: 1e9},
		{Min: geom.Pt(-2e6, 0), Max: geom.Pt(1, 1)},
	}
	for i, r := range bad {
		if err := r.Validate(); !errors.Is(err, ErrBadRegion) {
			t.Errorf("case %d (%+v): Validate() = %v, want ErrBadRegion", i, r, err)
		}
	}
	good := []Region{
		{}, // zero means "no region"
		{Min: geom.Pt(2, 3), Max: geom.Pt(5, 6)},
		{Min: geom.Pt(-10, -10), Max: geom.Pt(10, 10), Cell: 0.25},
	}
	for i, r := range good {
		if err := r.Validate(); err != nil {
			t.Errorf("good case %d: Validate() = %v", i, err)
		}
	}
}

// restrictedArgmax computes the reference for the gate: the full-grid
// surface argmax restricted to the cells of sub (lower flat sub-index
// wins ties, the same tie-break the grids use).
func restrictedArgmax(t *testing.T, full *SynthGrid, sub GridSpec, aps []APSpectrum) int {
	t.Helper()
	h, err := full.LogHeatmap(aps)
	if err != nil {
		t.Fatal(err)
	}
	fs := full.Spec()
	best, bestV := -1, math.Inf(-1)
	for iy := 0; iy < sub.Ny; iy++ {
		for ix := 0; ix < sub.Nx; ix++ {
			fx, fy := sub.X0-fs.X0+ix, sub.Y0-fs.Y0+iy
			if v := h.Flat[fy*fs.Nx+fx]; v > bestV {
				best, bestV = iy*sub.Nx+ix, v
			}
		}
	}
	return best
}

// TestRegionArgmaxEqualsRestrictedFull is the tentpole equality: a
// region query's argmax cell must equal the full-grid argmax
// restricted to the region's cells — whether the region's LUTs were
// sliced from a cached full-grid entry or built scoped — on scene
// after scene, for both the full-scan and the branch-and-bound paths.
func TestRegionArgmaxEqualsRestrictedFull(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	min, max := synthBounds()
	for trial := 0; trial < 10; trial++ {
		client := geom.Pt(2+rng.Float64()*36, 2+rng.Float64()*12)
		aps := synthScene(2+rng.Intn(4), client, rng)
		for _, warmParent := range []bool{true, false} {
			cache := NewSynthCache()
			full, err := NewSynthGrid(min, max, SynthOptions{Cell: 0.25, Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			if warmParent {
				// Warm the full-grid LUTs so the region slices them.
				if _, err := full.FullArgmaxCell(aps); err != nil {
					t.Fatal(err)
				}
			}
			x0 := rng.Float64() * 30
			y0 := rng.Float64() * 10
			region := Region{Min: geom.Pt(x0, y0), Max: geom.Pt(x0+3+rng.Float64()*8, y0+2+rng.Float64()*5)}
			sg, err := NewSynthGridRegion(min, max, region, SynthOptions{Cell: 0.25, Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			want := restrictedArgmax(t, full, sg.Spec(), aps)
			got, err := sg.FullArgmaxCell(aps)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d warm=%v: region argmax %d, restricted full argmax %d", trial, warmParent, got, want)
			}
			refined, err := sg.RefinedArgmaxCell(aps)
			if err != nil {
				t.Fatal(err)
			}
			if refined != want {
				t.Fatalf("trial %d warm=%v: refined region argmax %d, restricted full argmax %d", trial, warmParent, refined, want)
			}
			if warmParent && cache.Usage().Slices == 0 {
				t.Fatalf("trial %d: warm parent produced no sliced LUTs", trial)
			}
		}
	}
}

// TestRegionLocalizeStaysInsideBox: the hill climb must respect the
// clamped region bounds, and a region fully outside the area must
// error cleanly.
func TestRegionLocalizeStaysInsideBox(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	min, max := synthBounds()
	aps := synthScene(3, geom.Pt(20, 8), rng)
	region := Region{Min: geom.Pt(5, 5), Max: geom.Pt(12, 11)}
	sg, err := NewSynthGridRegion(min, max, region, SynthOptions{Cell: 0.10, Cache: NewSynthCache()})
	if err != nil {
		t.Fatal(err)
	}
	pos, err := sg.Localize(aps)
	if err != nil {
		t.Fatal(err)
	}
	if pos.X < region.Min.X || pos.X > region.Max.X || pos.Y < region.Min.Y || pos.Y > region.Max.Y {
		t.Fatalf("region fix %v escaped box %v–%v", pos, region.Min, region.Max)
	}

	// A region with its own (coarser) pitch still works, scoped.
	scoped := Region{Min: geom.Pt(5, 5), Max: geom.Pt(12, 11), Cell: 0.5}
	sg2, err := NewSynthGridRegion(min, max, scoped, SynthOptions{Cell: 0.10, Cache: NewSynthCache()})
	if err != nil {
		t.Fatal(err)
	}
	if pos2, err := sg2.Localize(aps); err != nil {
		t.Fatal(err)
	} else if pos2.X < scoped.Min.X || pos2.X > scoped.Max.X || pos2.Y < scoped.Min.Y || pos2.Y > scoped.Max.Y {
		t.Fatalf("scoped-pitch fix %v escaped box", pos2)
	}

	// Outside the area entirely: clean error, wrapped ErrBadRegion.
	outside := Region{Min: geom.Pt(100, 100), Max: geom.Pt(110, 110)}
	if _, err := NewSynthGridRegion(min, max, outside, SynthOptions{Cell: 0.10}); !errors.Is(err, ErrBadRegion) {
		t.Fatalf("outside-area region: err = %v, want ErrBadRegion", err)
	}
	// Malformed region: rejected before any grid work.
	invalid := Region{Min: geom.Pt(math.NaN(), 0), Max: geom.Pt(1, 1)}
	if _, err := NewSynthGridRegion(min, max, invalid, SynthOptions{Cell: 0.10}); !errors.Is(err, ErrBadRegion) {
		t.Fatalf("NaN region: err = %v, want ErrBadRegion", err)
	}
}

// TestRegionCellCountCapped: a wire-valid pitch over a large box must
// not demand more cells than a full-area fix — the work cap behind
// the untrusted-region surface, on both synthesis paths.
func TestRegionCellCountCapped(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	min, max := synthBounds()
	aps := synthScene(3, geom.Pt(20, 8), rng)
	// 1 cm over the whole floor: ~6.4M cells vs the 10 cm grid's ~64k.
	hog := Region{Min: geom.Pt(0, 0), Max: geom.Pt(40, 16), Cell: MinRegionCell}
	if _, err := NewSynthGridRegion(min, max, hog, SynthOptions{Cell: 0.10}); !errors.Is(err, ErrBadRegion) {
		t.Fatalf("cell-hog region: err = %v, want ErrBadRegion", err)
	}
	for _, cache := range []*SynthCache{NewSynthCache(), nil} {
		cfg := DefaultConfig(lambda)
		cfg.SynthCache = cache
		if _, err := NewPipeline(cfg).SynthesizeRegion(aps, min, max, hog); !errors.Is(err, ErrBadRegion) {
			t.Fatalf("cell-hog region through pipeline (cache=%v): err = %v, want ErrBadRegion", cache != nil, err)
		}
	}
	// A fine pitch over a proportionally small box stays allowed.
	fine := Region{Min: geom.Pt(19, 7), Max: geom.Pt(21, 9), Cell: MinRegionCell}
	sg, err := NewSynthGridRegion(min, max, fine, SynthOptions{Cell: 0.10, Cache: NewSynthCache()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sg.Localize(aps); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineRegionPaths: both synthesis paths (staged and nil-cache
// seed) accept regions through the pipeline, agree with each other on
// a benign scene, and reject malformed regions with ErrBadRegion.
func TestPipelineRegionPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	min, max := synthBounds()
	client := geom.Pt(14, 9)
	aps := synthScene(3, client, rng)
	region := Region{Min: geom.Pt(10, 5), Max: geom.Pt(18, 13)}

	gridCfg := DefaultConfig(lambda)
	gridCfg.SynthCache = NewSynthCache()
	gridPos, err := NewPipeline(gridCfg).SynthesizeRegion(aps, min, max, region)
	if err != nil {
		t.Fatal(err)
	}
	seedCfg := DefaultConfig(lambda)
	seedCfg.SynthCache = nil
	seedPos, err := NewPipeline(seedCfg).SynthesizeRegion(aps, min, max, region)
	if err != nil {
		t.Fatal(err)
	}
	if d := gridPos.Dist(seedPos); d > 0.30 {
		t.Fatalf("staged region fix %v vs seed region fix %v differ by %.2f m", gridPos, seedPos, d)
	}
	if d := gridPos.Dist(client); d > 0.5 {
		t.Fatalf("staged region fix %.2f m from truth", d)
	}
	for _, cfg := range []Config{gridCfg, seedCfg} {
		bad := Region{Min: geom.Pt(5, 5), Max: geom.Pt(4, 9)}
		if _, err := NewPipeline(cfg).SynthesizeRegion(aps, min, max, bad); !errors.Is(err, ErrBadRegion) {
			t.Fatalf("inverted region through pipeline: err = %v, want ErrBadRegion", err)
		}
	}
}

// TestHillClimbTabsMatchesScalar is the satellite equality pin: the
// table-driven probe scorer (cached BinLookup path, no per-probe
// Spectrum.At or math.Log) must reproduce the scalar
// LogLikelihoodBins bit for bit at arbitrary positions, and whole
// hill climbs driven by either scorer must visit identical positions
// and return identical scores.
func TestHillClimbTabsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	min, max := synthBounds()
	for trial := 0; trial < 10; trial++ {
		aps := synthScene(2+rng.Intn(4), geom.Pt(4+rng.Float64()*32, 3+rng.Float64()*10), rng)
		var ws synthWorkspace
		logTabs := ws.logTables(aps)
		for i := 0; i < 200; i++ {
			x := geom.Pt(min.X+rng.Float64()*(max.X-min.X), min.Y+rng.Float64()*(max.Y-min.Y))
			got := scoreTabs(x, aps, logTabs)
			want := LogLikelihoodBins(x, aps)
			if got != want {
				t.Fatalf("trial %d: scoreTabs(%v) = %v, scalar LogLikelihoodBins = %v — not bit-identical", trial, x, got, want)
			}
		}
		for i := 0; i < 10; i++ {
			seed := geom.Pt(min.X+rng.Float64()*(max.X-min.X), min.Y+rng.Float64()*(max.Y-min.Y))
			gotP, gotL := hillClimbTabs(seed, aps, logTabs, 0.10, min, max)
			wantP, wantL := hillClimbFn(seed, aps, 0.10, min, max, LogLikelihoodBins)
			if gotP != wantP || gotL != wantL {
				t.Fatalf("trial %d: tab climb (%v, %v) != scalar climb (%v, %v)", trial, gotP, gotL, wantP, wantL)
			}
		}
	}
}

// TestLogLikelihoodBinsAgreesAtBinCentres: at a position whose
// bearing from an AP lands exactly on a bin centre, LogLikelihoodBins
// equals LogLikelihood (no interpolation, same clamp).
func TestLogLikelihoodBinsAgreesAtBinCentres(t *testing.T) {
	s := gaussSpectrum([]float64{90}, []float64{1})
	ap := APSpectrum{Pos: geom.Pt(0, 0), Spectrum: s}
	// Due north of the AP: bearing π/2, exactly bin 90 of 360.
	x := geom.Pt(0, 7)
	got := LogLikelihoodBins(x, []APSpectrum{ap})
	want := LogLikelihood(x, []APSpectrum{ap})
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("bin-centre disagreement: bins %v vs log %v", got, want)
	}
}
