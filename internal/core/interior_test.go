package core

import (
	"testing"

	"repro/internal/geom"
)

// cleanScene builds APs with a single Gaussian lobe at the true
// bearing to the client — no clutter, so the likelihood surface has
// one basin and boundary behaviour is deterministic.
func cleanScene(client geom.Point) []APSpectrum {
	positions := []geom.Point{
		geom.Pt(0.5, 0.5), geom.Pt(39.5, 0.7), geom.Pt(39.3, 15.5), geom.Pt(0.6, 15.2),
	}
	aps := make([]APSpectrum, len(positions))
	for i, pos := range positions {
		aps[i] = APSpectrum{Pos: pos, Spectrum: gaussSpectrum(
			[]float64{geom.Deg(pos.Bearing(client))}, []float64{1})}
	}
	return aps
}

// TestRegionInteriorReporting pins the region-border semantics the
// predictive path relies on (satellite: a region argmax on a boundary
// cell must report non-interior so the caller falls back):
//
//   - target well inside the region → interior;
//   - target just outside the region → the restricted argmax hugs the
//     facing border cell → non-interior;
//   - target on a region side flush with the full search area →
//     interior (the area ends there; nothing lies beyond), unless the
//     argmax also touches an open side.
func TestRegionInteriorReporting(t *testing.T) {
	min, max := synthBounds()
	cache := NewSynthCache()
	mk := func(region Region) *SynthGrid {
		t.Helper()
		sg, err := NewSynthGridRegion(min, max, region, SynthOptions{
			Cell: 0.10, Workers: 1, Cache: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sg
	}

	inside := geom.Pt(20, 8)
	sg := mk(Region{Min: geom.Pt(16, 5), Max: geom.Pt(24, 11)})
	pos, interior, err := sg.LocalizeInterior(cleanScene(inside))
	if err != nil {
		t.Fatal(err)
	}
	if !interior {
		t.Fatalf("target %v centred in the region reported non-interior (pos %v)", inside, pos)
	}
	if pos.Dist(inside) > 1.0 {
		t.Fatalf("clean-scene fix %v far from target %v", pos, inside)
	}

	// Target 4 m left of the region: the restricted maximum lands on
	// the region's left border column.
	sg = mk(Region{Min: geom.Pt(24, 4), Max: geom.Pt(32, 12)})
	_, interior, err = sg.LocalizeInterior(cleanScene(inside))
	if err != nil {
		t.Fatal(err)
	}
	if interior {
		t.Fatal("target outside the region reported interior — border fallback would never fire")
	}

	// Near-wall client, region flush with the floor's bottom edge: the
	// argmax sits on the flush (closed) side but inside on x, so the
	// fix is trustworthy and must report interior.
	wall := geom.Pt(20, 0.05)
	sg = mk(Region{Min: geom.Pt(16, 0), Max: geom.Pt(24, 3)})
	_, interior, err = sg.LocalizeInterior(cleanScene(wall))
	if err != nil {
		t.Fatal(err)
	}
	if !interior {
		t.Fatal("argmax on a side flush with the search area must count as interior")
	}

	// Same flush region, but the target escapes through an open side:
	// non-interior again.
	farRight := geom.Pt(30, 0.05)
	_, interior, err = sg.LocalizeInterior(cleanScene(farRight))
	if err != nil {
		t.Fatal(err)
	}
	if interior {
		t.Fatal("argmax on the open right side of a flush region must report non-interior")
	}
}

// TestSynthesizeRegionInteriorSeedPathAgrees runs the same border
// cases through the pipeline entry point on both synthesis paths: the
// staged LUT path and the seed path (SynthCache nil) must agree on
// the interior verdict.
func TestSynthesizeRegionInteriorSeedPathAgrees(t *testing.T) {
	min, max := synthBounds()
	staged := Config{Wavelength: lambda, GridCell: 0.10, SynthCache: NewSynthCache()}
	seed := Config{Wavelength: lambda, GridCell: 0.10}

	cases := []struct {
		name   string
		client geom.Point
		region Region
		want   bool
	}{
		{"inside", geom.Pt(20, 8), Region{Min: geom.Pt(16, 5), Max: geom.Pt(24, 11)}, true},
		{"outside-left", geom.Pt(20, 8), Region{Min: geom.Pt(24, 4), Max: geom.Pt(32, 12)}, false},
		{"flush-wall", geom.Pt(20, 0.05), Region{Min: geom.Pt(16, 0), Max: geom.Pt(24, 3)}, true},
		// A scoped-pitch region has no parent grid on the staged path,
		// so every side is open — flush with the wall or not.
		{"scoped-inside", geom.Pt(20, 8), Region{Min: geom.Pt(16, 5), Max: geom.Pt(24, 11), Cell: 0.25}, true},
		{"scoped-flush-wall", geom.Pt(20, 0.05), Region{Min: geom.Pt(16, 0), Max: geom.Pt(24, 3), Cell: 0.25}, false},
	}
	for _, tc := range cases {
		scene := cleanScene(tc.client)
		for _, cfg := range []Config{staged, seed} {
			p := NewPipeline(cfg)
			_, interior, err := p.SynthesizeRegionInterior(scene, min, max, tc.region)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if interior != tc.want {
				path := "staged"
				if cfg.SynthCache == nil {
					path = "seed"
				}
				t.Fatalf("%s on %s path: interior = %v, want %v", tc.name, path, interior, tc.want)
			}
		}
	}
	// A zero region is the full area: always interior.
	p := NewPipeline(staged)
	_, interior, err := p.SynthesizeRegionInterior(cleanScene(geom.Pt(3, 3)), min, max, Region{})
	if err != nil || !interior {
		t.Fatalf("zero region: interior=%v err=%v, want true/nil", interior, err)
	}
}
