package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/music"
)

// synthScene builds a deterministic multi-AP synthetic scene: APs on
// the perimeter of [min,max], each with a Gaussian lobe at the true
// bearing to the client plus a couple of off-path lobes.
func synthScene(nAPs int, client geom.Point, rng *rand.Rand) []APSpectrum {
	perimeter := []geom.Point{
		geom.Pt(0.5, 0.5), geom.Pt(39.5, 0.7), geom.Pt(39.3, 15.5),
		geom.Pt(0.6, 15.2), geom.Pt(20, 0.4), geom.Pt(20, 15.6),
	}
	aps := make([]APSpectrum, nAPs)
	for i := 0; i < nAPs; i++ {
		pos := perimeter[i%len(perimeter)]
		direct := geom.Deg(pos.Bearing(client))
		centers := []float64{direct}
		amps := []float64{1}
		for k := 0; k < 2; k++ {
			centers = append(centers, rng.Float64()*360)
			amps = append(amps, 0.3+0.4*rng.Float64())
		}
		aps[i] = APSpectrum{Pos: pos, Spectrum: gaussSpectrum(centers, amps)}
	}
	return aps
}

func synthBounds() (geom.Point, geom.Point) {
	return geom.Pt(0, 0), geom.Pt(40, 16)
}

// TestLogLikelihoodPreservesOrdering is the satellite property test:
// for any pair of candidate positions, log-domain evaluation must
// order them exactly as the Eq. 8 product does (the log is monotone
// and both clamp at likelihoodFloor identically). Near-ties within
// float rounding are exempt.
func TestLogLikelihoodPreservesOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	min, max := synthBounds()
	for trial := 0; trial < 20; trial++ {
		aps := synthScene(2+rng.Intn(4), geom.Pt(5+rng.Float64()*30, 3+rng.Float64()*10), rng)
		pts := make([]geom.Point, 60)
		for i := range pts {
			pts[i] = geom.Pt(min.X+rng.Float64()*(max.X-min.X), min.Y+rng.Float64()*(max.Y-min.Y))
		}
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				li, lj := Likelihood(pts[i], aps), Likelihood(pts[j], aps)
				gi, gj := LogLikelihood(pts[i], aps), LogLikelihood(pts[j], aps)
				if math.Abs(li-lj) <= 1e-12*(li+lj) {
					continue // product-domain near-tie: ordering undefined
				}
				if (li > lj) != (gi > gj) {
					t.Fatalf("trial %d: ordering flips: L(%v)=%g L(%v)=%g but logL %g vs %g",
						trial, pts[i], li, pts[j], lj, gi, gj)
				}
			}
		}
	}
}

// TestLogLikelihoodClampsAtFloor: a spectrum zeroed at the lookup
// bearing must contribute exactly log(likelihoodFloor), the log-domain
// image of Likelihood's clamp.
func TestLogLikelihoodClampsAtFloor(t *testing.T) {
	s := music.NewSpectrum(360) // all-zero: every lookup clamps
	aps := []APSpectrum{{Pos: geom.Pt(0, 0), Spectrum: s}, {Pos: geom.Pt(10, 0), Spectrum: s}}
	x := geom.Pt(5, 5)
	if got, want := LogLikelihood(x, aps), 2*math.Log(likelihoodFloor); got != want {
		t.Fatalf("LogLikelihood = %v, want %v", got, want)
	}
	if got, want := Likelihood(x, aps), likelihoodFloor*likelihoodFloor; got != want {
		t.Fatalf("Likelihood = %v, want %v", got, want)
	}
}

// TestBearingLUTBitCompatible: the cached (bin, frac) pairs fed
// through the batch lookup must reproduce Spectrum.At at every cell
// centre bit for bit — the LUT is just At with the atan2 hoisted out.
func TestBearingLUTBitCompatible(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	min, max := synthBounds()
	aps := synthScene(3, geom.Pt(12, 9), rng)
	cache := NewSynthCache()
	spec, err := GridSpecFor(min, max, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range aps {
		lut := cache.lut(ap.Pos, spec, ap.Spectrum.Bins())
		got := ap.Spectrum.AtBins(lut.bin, lut.frac, nil)
		c := 0
		for iy := 0; iy < spec.Ny; iy++ {
			for ix := 0; ix < spec.Nx; ix++ {
				want := ap.Spectrum.At(ap.Pos.Bearing(spec.Center(ix, iy)))
				if got[c] != want {
					t.Fatalf("cell (%d,%d): LUT value %v, live At %v — not bit-identical", ix, iy, got[c], want)
				}
				c++
			}
		}
	}
	if hits, misses := cache.Stats(); misses != 3 || hits != 0 {
		t.Fatalf("cache stats hits=%d misses=%d, want 0/3", hits, misses)
	}
	cache.lut(aps[0].Pos, spec, aps[0].Spectrum.Bins())
	if hits, _ := cache.Stats(); hits != 1 {
		t.Fatalf("repeat lookup did not hit the cache")
	}
	if cache.Len() != 3 {
		t.Fatalf("cache holds %d LUTs, want 3", cache.Len())
	}
}

// TestLogHeatmapMatchesScalarReference pins the surface's documented
// semantics against a naive scalar implementation of the same
// definition — per cell, Σ_ap lerp over log(max(P[b], floor)) at the
// live BinLookup of the AP→cell bearing — computed without LUTs,
// padding, or sharding. Bit equality, not a tolerance.
func TestLogHeatmapMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	min, max := synthBounds()
	aps := synthScene(4, geom.Pt(23, 6), rng)
	sg, err := NewSynthGrid(min, max, SynthOptions{Cell: 0.5, Cache: NewSynthCache()})
	if err != nil {
		t.Fatal(err)
	}
	logH, err := sg.LogHeatmap(aps)
	if err != nil {
		t.Fatal(err)
	}
	spec := sg.Spec()
	if logH.Nx != spec.Nx || logH.Ny != spec.Ny {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", logH.Nx, logH.Ny, spec.Nx, spec.Ny)
	}
	logTabs := make([][]float64, len(aps))
	for a, ap := range aps {
		tab := ap.Spectrum.PaddedValues(nil, likelihoodFloor)
		for i, v := range tab {
			tab[i] = math.Log(v)
		}
		logTabs[a] = tab
	}
	c := 0
	for iy := 0; iy < spec.Ny; iy++ {
		for ix := 0; ix < spec.Nx; ix++ {
			var want float64
			for a, ap := range aps {
				b, f := music.BinLookup(ap.Pos.Bearing(spec.Center(ix, iy)), ap.Spectrum.Bins())
				tab := logTabs[a]
				if a == 0 {
					want = tab[b]*(1-f) + tab[b+1]*f
				} else {
					want += tab[b]*(1-f) + tab[b+1]*f
				}
			}
			if logH.Flat[c] != want {
				t.Fatalf("cell (%d,%d): surface %v, scalar reference %v — not bit-identical", ix, iy, logH.Flat[c], want)
			}
			c++
		}
	}
}

// TestSynthGridMatchesSeedArgmax: on scene after scene, the staged
// log-domain surface must place its maximum on the same cell as the
// seed product-domain heatmap.
func TestSynthGridMatchesSeedArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	min, max := synthBounds()
	for trial := 0; trial < 12; trial++ {
		client := geom.Pt(2+rng.Float64()*36, 2+rng.Float64()*12)
		aps := synthScene(2+rng.Intn(4), client, rng)
		sg, err := NewSynthGrid(min, max, SynthOptions{Cell: 0.25, Cache: NewSynthCache()})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sg.FullArgmaxCell(aps)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := ComputeHeatmap(aps, min, max, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		want, wantV := 0, math.Inf(-1)
		for c, v := range ref.Flat {
			if v > wantV {
				want, wantV = c, v
			}
		}
		if got != want {
			t.Fatalf("trial %d: grid argmax cell %d, seed heatmap argmax %d", trial, got, want)
		}
	}
}

// TestRefinedArgmaxMatchesFull: the coarse-to-fine screen must land on
// the full-resolution argmax cell (the tentpole's exactness claim).
func TestRefinedArgmaxMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	min, max := synthBounds()
	for trial := 0; trial < 15; trial++ {
		client := geom.Pt(2+rng.Float64()*36, 2+rng.Float64()*12)
		aps := synthScene(2+rng.Intn(4), client, rng)
		for _, workers := range []int{1, 4} {
			sg, err := NewSynthGrid(min, max, SynthOptions{Cell: 0.10, Workers: workers, Cache: NewSynthCache()})
			if err != nil {
				t.Fatal(err)
			}
			full, err := sg.FullArgmaxCell(aps)
			if err != nil {
				t.Fatal(err)
			}
			refined, err := sg.RefinedArgmaxCell(aps)
			if err != nil {
				t.Fatal(err)
			}
			if full != refined {
				t.Fatalf("trial %d workers=%d: refined argmax %d != full argmax %d", trial, workers, refined, full)
			}
		}
	}
}

// TestSynthGridLocalizeNearTruth: end-to-end localization on the
// synthetic scenes must land close to the intersection of the direct
// bearings (and near what the seed estimator finds).
func TestSynthGridLocalizeNearTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	min, max := synthBounds()
	for trial := 0; trial < 8; trial++ {
		client := geom.Pt(4+rng.Float64()*32, 3+rng.Float64()*10)
		aps := synthScene(3+rng.Intn(3), client, rng)
		sg, err := NewSynthGrid(min, max, SynthOptions{Cell: 0.10, Cache: NewSynthCache()})
		if err != nil {
			t.Fatal(err)
		}
		pos, err := sg.Localize(aps)
		if err != nil {
			t.Fatal(err)
		}
		if d := pos.Dist(client); d > 0.5 {
			t.Fatalf("trial %d: grid estimator %.2f m from truth (%v vs %v)", trial, d, pos, client)
		}
		seedPos, _, err := Localize(aps, min, max, 0.10)
		if err != nil {
			t.Fatal(err)
		}
		if d := pos.Dist(seedPos); d > 0.30 {
			t.Fatalf("trial %d: grid estimator %.2f m from seed estimator (%v vs %v)", trial, d, pos, seedPos)
		}
	}
}

// TestSynthGridEdgeCases: single AP, degenerate 1×N strips, and a cell
// size larger than the whole area must all work on both evaluation
// paths.
func TestSynthGridEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := gaussSpectrum([]float64{40}, []float64{1})
	oneAP := []APSpectrum{{Pos: geom.Pt(0, 0), Spectrum: s}}
	cases := []struct {
		name     string
		min, max geom.Point
		cell     float64
		aps      []APSpectrum
	}{
		{"single-AP", geom.Pt(0, 0), geom.Pt(10, 10), 0.25, oneAP},
		{"row-1xN", geom.Pt(0, 0), geom.Pt(12, 0.05), 0.1, synthScene(3, geom.Pt(6, 0.02), rng)},
		{"column-Nx1", geom.Pt(0, 0), geom.Pt(0.05, 12), 0.1, synthScene(3, geom.Pt(0.02, 6), rng)},
		{"cell-exceeds-area", geom.Pt(1, 1), geom.Pt(2, 2), 5, oneAP},
		{"tiny-grid", geom.Pt(0, 0), geom.Pt(1, 1), 0.5, oneAP},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				sg, err := NewSynthGrid(tc.min, tc.max, SynthOptions{Cell: tc.cell, Workers: workers, Cache: NewSynthCache()})
				if err != nil {
					t.Fatal(err)
				}
				full, err := sg.FullArgmaxCell(tc.aps)
				if err != nil {
					t.Fatal(err)
				}
				refined, err := sg.RefinedArgmaxCell(tc.aps)
				if err != nil {
					t.Fatal(err)
				}
				if full != refined {
					t.Fatalf("workers=%d: refined %d != full %d", workers, refined, full)
				}
				pos, err := sg.Localize(tc.aps)
				if err != nil {
					t.Fatal(err)
				}
				if pos.X < tc.min.X || pos.X > tc.max.X || pos.Y < tc.min.Y || pos.Y > tc.max.Y {
					t.Fatalf("workers=%d: fix %v outside bounds", workers, pos)
				}
				if _, err := sg.LogHeatmap(tc.aps); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	if _, err := NewSynthGrid(geom.Pt(1, 1), geom.Pt(0, 0), SynthOptions{}); err == nil {
		t.Error("inverted bounds should error")
	}
	if _, err := GridSpecFor(geom.Pt(0, 0), geom.Pt(1, 1), 0); err == nil {
		t.Error("zero cell should error")
	}
	sg, err := NewSynthGrid(geom.Pt(0, 0), geom.Pt(1, 1), SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sg.Localize(nil); err == nil {
		t.Error("no APs should error")
	}
	if _, err := sg.FullArgmaxCell(nil); err == nil {
		t.Error("no APs should error")
	}
	if err := sg.LogHeatmapInto(&Heatmap{}, nil); err == nil {
		t.Error("no APs should error")
	}
}

// TestSynthGridFlatSurfaceFallback: all-floor spectra tie every block
// bound to the best cell, which would defeat the screen's pruning —
// the refinement budget must kick in, fall back to the sharded full
// evaluation, and still return exactly the full-scan argmax (cell 0,
// by the lower-index tie-break).
func TestSynthGridFlatSurfaceFallback(t *testing.T) {
	flat := []APSpectrum{
		{Pos: geom.Pt(0, 0), Spectrum: music.NewSpectrum(360)},
		{Pos: geom.Pt(40, 16), Spectrum: music.NewSpectrum(360)},
	}
	min, max := synthBounds()
	for _, workers := range []int{1, 4} {
		sg, err := NewSynthGrid(min, max, SynthOptions{Cell: 0.10, Workers: workers, Cache: NewSynthCache()})
		if err != nil {
			t.Fatal(err)
		}
		full, err := sg.FullArgmaxCell(flat)
		if err != nil {
			t.Fatal(err)
		}
		refined, err := sg.RefinedArgmaxCell(flat)
		if err != nil {
			t.Fatal(err)
		}
		if full != refined || full != 0 {
			t.Fatalf("workers=%d: flat surface argmax full=%d refined=%d, want 0", workers, full, refined)
		}
	}
}

// TestSynthGridShardedRace exercises the sharded evaluation and the
// LUT cache under concurrency (run with -race): many goroutines
// localize over one shared cache, each grid large enough to shard.
func TestSynthGridShardedRace(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	min, max := synthBounds()
	scenes := make([][]APSpectrum, 6)
	for i := range scenes {
		scenes[i] = synthScene(3, geom.Pt(3+rng.Float64()*34, 2+rng.Float64()*12), rng)
	}
	cache := NewSynthCache()
	done := make(chan error, 12)
	for g := 0; g < 12; g++ {
		g := g
		go func() {
			sg, err := NewSynthGrid(min, max, SynthOptions{Cell: 0.10, Workers: 4, Cache: cache})
			if err != nil {
				done <- err
				return
			}
			var h Heatmap
			for it := 0; it < 3; it++ {
				if _, err := sg.Localize(scenes[(g+it)%len(scenes)]); err != nil {
					done <- err
					return
				}
				if err := sg.LogHeatmapInto(&h, scenes[(g+it)%len(scenes)]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 12; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSynthGridSteadyStateAllocs is the alloc gate: with warm LUTs
// and pooled scratch, a single-threaded fix through the staged
// subsystem allocates at most 2 objects per op, and a reused heatmap
// fill allocates none.
func TestSynthGridSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; the gate runs in the non-race pass")
	}
	rng := rand.New(rand.NewSource(79))
	min, max := synthBounds()
	aps := synthScene(4, geom.Pt(17, 8), rng)
	sg, err := NewSynthGrid(min, max, SynthOptions{Cell: 0.10, Workers: 1, Cache: NewSynthCache()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sg.Localize(aps); err != nil { // warm LUTs + pool
		t.Fatal(err)
	}
	locAllocs := testing.AllocsPerRun(20, func() {
		if _, err := sg.Localize(aps); err != nil {
			t.Fatal(err)
		}
	})
	var h Heatmap
	if err := sg.LogHeatmapInto(&h, aps); err != nil {
		t.Fatal(err)
	}
	mapAllocs := testing.AllocsPerRun(20, func() {
		if err := sg.LogHeatmapInto(&h, aps); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/op: Localize=%.0f LogHeatmapInto=%.0f", locAllocs, mapAllocs)
	if locAllocs > 2 {
		t.Fatalf("Localize allocates %.0f/op steady-state, want ≤2", locAllocs)
	}
	if mapAllocs > 2 {
		t.Fatalf("LogHeatmapInto allocates %.0f/op steady-state, want ≤2", mapAllocs)
	}
}

// TestSynthGridSpeedupGate is the perf gate: the single-threaded LUT +
// log-domain surface must beat the seed synthesis path by at least 5x
// on a full-resolution floor grid. The measured margin is ~15-25x, so
// the 5x floor leaves ample headroom for a loaded CI machine.
func TestSynthGridSpeedupGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews the timing ratio; the gate runs in the non-race pass")
	}
	rng := rand.New(rand.NewSource(80))
	min, max := synthBounds()
	aps := synthScene(3, geom.Pt(21, 7), rng)
	sg, err := NewSynthGrid(min, max, SynthOptions{Cell: 0.10, Workers: 1, Cache: NewSynthCache()})
	if err != nil {
		t.Fatal(err)
	}
	var h Heatmap
	if err := sg.LogHeatmapInto(&h, aps); err != nil { // warm LUTs
		t.Fatal(err)
	}
	best := func(f func()) time.Duration {
		b := time.Duration(math.MaxInt64)
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}
	seed := best(func() {
		if _, err := ComputeHeatmap(aps, min, max, 0.10); err != nil {
			t.Fatal(err)
		}
	})
	grid := best(func() {
		if err := sg.LogHeatmapInto(&h, aps); err != nil {
			t.Fatal(err)
		}
	})
	speedup := float64(seed) / float64(grid)
	t.Logf("full-res heatmap: seed %v, grid %v (%.1fx, single thread)", seed, grid, speedup)
	if speedup < 5 {
		t.Fatalf("LUT+log-domain speedup %.1fx, want ≥5x", speedup)
	}
}

// TestSynthGridWorkersDeterministic: the sharded surface must be
// bit-identical to the serial one (each cell's accumulation order over
// APs is fixed regardless of sharding).
func TestSynthGridWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	min, max := synthBounds()
	aps := synthScene(4, geom.Pt(11, 12), rng)
	cache := NewSynthCache()
	var serial, sharded Heatmap
	for _, w := range []int{1, runtime.GOMAXPROCS(0) * 2} {
		sg, err := NewSynthGrid(min, max, SynthOptions{Cell: 0.10, Workers: w, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		h := &serial
		if w != 1 {
			h = &sharded
		}
		if err := sg.LogHeatmapInto(h, aps); err != nil {
			t.Fatal(err)
		}
	}
	for c := range serial.Flat {
		if serial.Flat[c] != sharded.Flat[c] {
			t.Fatalf("cell %d: serial %v vs sharded %v — sharding changed the surface", c, serial.Flat[c], sharded.Flat[c])
		}
	}
}

// TestPipelineSynthesizeSeedFallback: a nil SynthCache must select the
// seed synthesis path and still agree with the staged one at argmax
// level on a benign scene.
func TestPipelineSynthesizeSeedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	min, max := synthBounds()
	client := geom.Pt(14, 9)
	aps := synthScene(3, client, rng)

	seedCfg := DefaultConfig(lambda)
	seedCfg.SynthCache = nil
	seedPos, err := NewPipeline(seedCfg).Synthesize(aps, min, max)
	if err != nil {
		t.Fatal(err)
	}
	gridCfg := DefaultConfig(lambda)
	gridPos, err := NewPipeline(gridCfg).Synthesize(aps, min, max)
	if err != nil {
		t.Fatal(err)
	}
	if d := seedPos.Dist(gridPos); d > 0.30 {
		t.Fatalf("seed-path fix %v vs staged fix %v differ by %.2f m", seedPos, gridPos, d)
	}
	if d := gridPos.Dist(client); d > 0.5 {
		t.Fatalf("staged fix %.2f m from truth", d)
	}
}
