package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Region is an ad-hoc synthesis search region: a bounding box and an
// optional grid resolution, the per-request analogue of the engine's
// configured search area. The zero value means "no region" — search
// the full configured area at the configured pitch.
//
// A region whose Cell is zero (or equal to the pipeline's GridCell)
// snaps to the full grid's lattice: its cells are exactly the
// full-grid cells whose centres fall inside the box, so a region
// argmax equals the full-grid argmax restricted to those cells, and
// cached full-grid bearing LUTs are sliced instead of rebuilt. A
// region with its own Cell gets a scoped grid anchored at Min.
type Region struct {
	// Min, Max are the box corners (Min strictly below Max on both
	// axes).
	Min, Max geom.Point
	// Cell is the grid pitch inside the region in metres; 0 inherits
	// the pipeline's GridCell and keeps the region lattice-aligned
	// with the full grid.
	Cell float64
}

// Region validation limits. Coordinates beyond MaxRegionCoord or a
// pitch below MinRegionCell describe grids no deployment needs and
// bound the work a hostile request can demand before the area clamp.
const (
	MaxRegionCoord = 1e6
	MinRegionCell  = 0.01
	MaxRegionCell  = 1e3
)

// ErrBadRegion is returned (wrapped) for malformed search regions:
// NaN/Inf coordinates, inverted or degenerate boxes, out-of-range
// pitches.
var ErrBadRegion = errors.New("core: bad search region")

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// IsZero reports whether the region is unset.
func (r Region) IsZero() bool { return r == Region{} }

// Validate rejects malformed regions. The zero region is valid (it
// means "no region").
func (r Region) Validate() error {
	if r.IsZero() {
		return nil
	}
	for _, v := range [...]float64{r.Min.X, r.Min.Y, r.Max.X, r.Max.Y} {
		if !finite(v) || math.Abs(v) > MaxRegionCoord {
			return fmt.Errorf("%w: corner coordinate %v", ErrBadRegion, v)
		}
	}
	if !(r.Max.X > r.Min.X) || !(r.Max.Y > r.Min.Y) {
		return fmt.Errorf("%w: empty or inverted box %v–%v", ErrBadRegion, r.Min, r.Max)
	}
	if r.Cell != 0 && (!finite(r.Cell) || r.Cell < MinRegionCell || r.Cell > MaxRegionCell) {
		return fmt.Errorf("%w: cell pitch %v", ErrBadRegion, r.Cell)
	}
	return nil
}

// clampTo intersects the region's box with [min, max] (the configured
// search area), so an oversized or partly outside box never demands
// more work than a full-area fix. An empty intersection errors.
func (r Region) clampTo(min, max geom.Point) (geom.Point, geom.Point, error) {
	lo := geom.Pt(math.Max(r.Min.X, min.X), math.Max(r.Min.Y, min.Y))
	hi := geom.Pt(math.Min(r.Max.X, max.X), math.Min(r.Max.Y, max.Y))
	if !(hi.X > lo.X) || !(hi.Y > lo.Y) {
		return lo, hi, fmt.Errorf("%w: box %v–%v outside search area", ErrBadRegion, r.Min, r.Max)
	}
	return lo, hi, nil
}
