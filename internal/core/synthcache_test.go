package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/geom"
)

// sumEntryCosts walks every shard under its lock and returns the
// summed per-entry costs plus the entry count — the quantities the
// cache's own accounting must match exactly.
func sumEntryCosts(c *SynthCache) (bytes int64, entries int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			bytes += e.cost
			entries++
		}
		sh.mu.Unlock()
	}
	return bytes, entries
}

// checkAccounting asserts the LRU accounting invariants: Σ per-entry
// costs equals the reported size, the reported size never exceeds the
// budget, and the recency lists agree with the maps.
func checkAccounting(t *testing.T, c *SynthCache) {
	t.Helper()
	wantBytes, wantEntries := sumEntryCosts(c)
	u := c.Usage()
	if u.Bytes != wantBytes {
		t.Fatalf("accounting drift: reported %d bytes, Σ entry costs %d", u.Bytes, wantBytes)
	}
	if u.Entries != wantEntries {
		t.Fatalf("entry count drift: reported %d, walked %d", u.Entries, wantEntries)
	}
	if c.Budget() > 0 && u.Bytes > c.Budget() {
		t.Fatalf("cache size %d exceeds budget %d", u.Bytes, c.Budget())
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n := 0
		for e := sh.head; e != nil; e = e.next {
			if sh.entries[e.key] != e {
				sh.mu.Unlock()
				t.Fatalf("shard %d: LRU list entry missing from map", i)
			}
			n++
		}
		if n != len(sh.entries) {
			sh.mu.Unlock()
			t.Fatalf("shard %d: LRU list has %d entries, map has %d", i, n, len(sh.entries))
		}
		sh.mu.Unlock()
	}
}

func lutEqual(a, b *bearingLUT) bool {
	if len(a.bin) != len(b.bin) || len(a.frac) != len(b.frac) {
		return false
	}
	for i := range a.bin {
		if a.bin[i] != b.bin[i] || a.frac[i] != b.frac[i] {
			return false
		}
	}
	return true
}

func copyLUT(l *bearingLUT) *bearingLUT {
	return &bearingLUT{
		bin:  append([]int32(nil), l.bin...),
		frac: append([]float64(nil), l.frac...),
	}
}

// TestSynthCacheAccountingProperty is the LRU accounting property
// test: after any interleaving of LUT gets, block-window gets, and
// the evictions they trigger — over random AP positions, grid
// geometries, and sub-grids, against a deliberately small budget —
// the sum of per-entry costs equals the reported size, the size never
// exceeds the cap, and a re-Get after eviction rebuilds a
// bit-identical LUT.
func TestSynthCacheAccountingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	aps := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(39.5, 0.7), geom.Pt(20, 15.6)}
	full, err := GridSpecFor(geom.Pt(0, 0), geom.Pt(40, 16), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, 1 << 12, 1 << 16, 1 << 20} {
		t.Run(fmt.Sprintf("budget-%d", budget), func(t *testing.T) {
			c := NewSynthCacheBudget(budget)
			// Remember the first build of every key so later re-gets
			// (post-eviction rebuilds included) can be compared bit for
			// bit.
			seen := map[synthKey]*bearingLUT{}
			for op := 0; op < 400; op++ {
				ap := aps[rng.Intn(len(aps))]
				spec := full
				if rng.Intn(2) == 0 { // a random sub-grid of full
					x0, y0 := rng.Intn(full.Nx), rng.Intn(full.Ny)
					nx, ny := 1+rng.Intn(full.Nx-x0), 1+rng.Intn(full.Ny-y0)
					spec = GridSpec{Min: full.Min, Cell: full.Cell, Nx: nx, Ny: ny, X0: x0, Y0: y0}
				}
				var lut *bearingLUT
				switch rng.Intn(3) {
				case 0:
					lut = c.lut(ap, spec, 360)
				case 1:
					lut = c.lutFor(ap, spec, &full, 360)
				default:
					c.blockWindows(ap, spec, 360, DefaultCoarseFactor, &full)
				}
				if lut != nil {
					key := keyOf(ap, spec, 360)
					if prev, ok := seen[key]; ok {
						if !lutEqual(prev, lut) {
							t.Fatalf("op %d: re-Get returned a LUT differing from the first build", op)
						}
					} else {
						seen[key] = copyLUT(lut)
					}
				}
				checkAccounting(t, c)
			}
			u := c.Usage()
			if budget > 0 && u.Evictions == 0 && u.Bytes > budget/2 {
				t.Logf("warning: no evictions at budget %d (bytes %d)", budget, u.Bytes)
			}
			t.Logf("budget %d: entries=%d bytes=%d hits=%d misses=%d evictions=%d slices=%d",
				budget, u.Entries, u.Bytes, u.Hits, u.Misses, u.Evictions, u.Slices)
		})
	}
}

// TestSynthCacheRebuildBitIdentical pins the eviction contract
// explicitly for both build paths: evict an entry by churning its
// shard past the budget, re-Get it, and require `==` on every table
// element — for a directly built full-grid LUT and for a sub-grid LUT
// that is sliced from its parent on one get and rebuilt from scratch
// (parent evicted too) on the other.
func TestSynthCacheRebuildBitIdentical(t *testing.T) {
	ap := geom.Pt(1.25, 0.75)
	full, err := GridSpecFor(geom.Pt(0, 0), geom.Pt(20, 8), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	sub := GridSpec{Min: full.Min, Cell: full.Cell, Nx: 9, Ny: 7, X0: 11, Y0: 5}

	churn := func(c *SynthCache, rng *rand.Rand) {
		// Insert enough distinct entries to cycle every shard's LRU.
		for i := 0; i < 64; i++ {
			pos := geom.Pt(rng.Float64()*40, rng.Float64()*16)
			c.lut(pos, full, 360)
		}
	}

	c := NewSynthCacheBudget(1 << 18)
	rng := rand.New(rand.NewSource(91))

	// Direct build path.
	first := copyLUT(c.lut(ap, full, 360))
	churn(c, rng)
	if got := c.lut(ap, full, 360); !lutEqual(first, got) {
		t.Fatal("re-Get after eviction rebuilt a different full-grid LUT")
	}

	// Sliced path: warm the parent, slice the sub-grid, then churn both
	// out and re-Get the sub-grid with no parent cached — the direct
	// rebuild must equal the slice bit for bit (the GridSpec offset
	// keeps the centre arithmetic identical).
	c.lut(ap, full, 360)
	sliced := copyLUT(c.lutFor(ap, sub, &full, 360))
	if before := c.Usage().Slices; before == 0 {
		t.Fatal("sub-grid LUT was not sliced from the cached parent")
	}
	churn(c, rng)
	rebuilt := c.lutFor(ap, sub, nil, 360)
	if !lutEqual(sliced, rebuilt) {
		t.Fatal("direct rebuild of sub-grid LUT differs from the slice of its parent")
	}
}

// TestSynthCachePromotesParentOnThirdSliceableMiss: a region-only
// workload (the full-grid parent never warmed by a full-area fix)
// builds its first two region LUTs from scratch, but the third
// sliceable miss against the same parent builds and caches the parent
// itself — every subsequent distinct region becomes a row slice. The
// promoted path stays bit-identical to direct builds.
func TestSynthCachePromotesParentOnThirdSliceableMiss(t *testing.T) {
	ap := geom.Pt(0.5, 0.5)
	full, err := GridSpecFor(geom.Pt(0, 0), geom.Pt(20, 8), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSynthCacheBudget(32 << 20)
	for i := 0; i < 6; i++ {
		sub, err := subSpecFor(full, geom.Pt(float64(1+2*i), 1), geom.Pt(float64(4+2*i), 5))
		if err != nil {
			t.Fatal(err)
		}
		got := c.lutFor(ap, sub, &full, 360)
		if direct := buildLUT(ap, sub, 360); !lutEqual(got, direct) {
			t.Fatalf("region %d: promoted-path LUT differs from direct build", i)
		}
		u := c.Usage()
		wantSlices := uint64(0)
		if i >= 2 {
			wantSlices = uint64(i - 1) // promotion slices on i==2, hits after
		}
		if u.Slices != wantSlices {
			t.Fatalf("after region %d: Slices = %d, want %d", i, u.Slices, wantSlices)
		}
	}
	// The parent is now resident: a direct full-grid lookup hits.
	h0, _ := c.Stats()
	c.lut(ap, full, 360)
	if h1, _ := c.Stats(); h1 != h0+1 {
		t.Fatal("promoted parent not resident after the third sliceable miss")
	}
}

// TestSynthCacheNoPromoteWhenParentCannotFit: a parent larger than a
// shard's budget slice is never promoted — the build could not be
// retained, so region misses keep building directly instead of paying
// a futile full-grid build every third query.
func TestSynthCacheNoPromoteWhenParentCannotFit(t *testing.T) {
	ap := geom.Pt(0.5, 0.5)
	full, err := GridSpecFor(geom.Pt(0, 0), geom.Pt(20, 8), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// 2673-cell parent costs ~32 KB; 8 shards × 2 KB cannot hold it.
	c := NewSynthCacheBudget(16 << 10)
	for i := 0; i < 8; i++ {
		sub, err := subSpecFor(full, geom.Pt(float64(1+2*i), 1), geom.Pt(float64(3+2*i), 3))
		if err != nil {
			t.Fatal(err)
		}
		c.lutFor(ap, sub, &full, 360)
	}
	if u := c.Usage(); u.Slices != 0 {
		t.Fatalf("Slices = %d for an unretainable parent, want 0", u.Slices)
	}
}

// TestSynthCachePassThroughOversized: an entry costing more than a
// shard's budget slice is served but never retained, and accounting
// stays exact.
func TestSynthCachePassThroughOversized(t *testing.T) {
	c := NewSynthCacheBudget(1024) // 128 bytes per shard: nothing fits
	ap := geom.Pt(3, 4)
	spec, err := GridSpecFor(geom.Pt(0, 0), geom.Pt(10, 10), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	l1 := c.lut(ap, spec, 360)
	l2 := c.lut(ap, spec, 360)
	if !lutEqual(l1, l2) {
		t.Fatal("pass-through rebuilds disagree")
	}
	u := c.Usage()
	if u.Entries != 0 || u.Bytes != 0 {
		t.Fatalf("oversized entry retained: entries=%d bytes=%d", u.Entries, u.Bytes)
	}
	if u.Evictions == 0 {
		t.Fatal("expected the oversized inserts to count as evictions")
	}
	checkAccounting(t, c)
	// Block windows on a never-retained entry must still be served.
	if bl := c.blockWindows(ap, spec, 360, DefaultCoarseFactor, nil); bl == nil {
		t.Fatal("block windows not served for pass-through entry")
	}
	checkAccounting(t, c)
}

// TestSynthCacheOversizedDoesNotEvictResidents: serving an entry
// larger than a shard's budget slice must not flush the shard's
// resident entries (regression: insert-then-evict used to pop every
// innocent entry off the tail before reaching the oversized head).
func TestSynthCacheOversizedDoesNotEvictResidents(t *testing.T) {
	small, err := GridSpecFor(geom.Pt(0, 0), geom.Pt(4, 4), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	huge, err := GridSpecFor(geom.Pt(0, 0), geom.Pt(40, 16), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Budget holding several small entries per shard but far below the
	// huge entry's cost.
	c := NewSynthCacheBudget(8 * lutCost(small.Cells()) * synthShards)
	if lutCost(huge.Cells()) <= c.shardBudget() {
		t.Fatalf("test fixture broken: huge entry fits the shard budget")
	}
	// A resident small entry and an oversized request on the same shard.
	resident := geom.Pt(1, 1)
	sh := c.shardOf(keyOf(resident, small, 360))
	var hugeAP geom.Point
	for x := 0.0; ; x += 0.37 {
		hugeAP = geom.Pt(x, 2)
		if c.shardOf(keyOf(hugeAP, huge, 360)) == sh {
			break
		}
	}
	c.lut(resident, small, 360)
	if c.lut(hugeAP, huge, 360) == nil {
		t.Fatal("oversized entry not served")
	}
	hits0, _ := c.Stats()
	c.lut(resident, small, 360)
	if hits, _ := c.Stats(); hits != hits0+1 {
		t.Fatal("oversized pass-through evicted a resident entry")
	}
	checkAccounting(t, c)
}

// TestSynthCacheEvictionRaceStress is the -race stress satellite: 64
// goroutines submit distinct ad-hoc regions against a deliberately
// tiny budget so eviction churns mid-flight, and every result must be
// bit-identical to a cold uncached run (same argmax cell, same
// localized position) while the accounted size never exceeds the cap.
func TestSynthCacheEvictionRaceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	min, max := synthBounds()
	const goroutines = 64

	type regionCase struct {
		region Region
		aps    []APSpectrum
		cell   int // cold argmax cell
		pos    geom.Point
	}
	cases := make([]regionCase, goroutines)
	scenes := make([][]APSpectrum, 8)
	for i := range scenes {
		scenes[i] = synthScene(3, geom.Pt(3+rng.Float64()*34, 2+rng.Float64()*12), rng)
	}
	for i := range cases {
		x0 := rng.Float64() * 30
		y0 := rng.Float64() * 10
		cases[i].region = Region{
			Min: geom.Pt(x0, y0),
			Max: geom.Pt(x0+2+rng.Float64()*8, y0+2+rng.Float64()*5),
		}
		cases[i].aps = scenes[i%len(scenes)]
		// Cold reference: a fresh unbounded cache per case, serial.
		sg, err := NewSynthGridRegion(min, max, cases[i].region, SynthOptions{Cell: 0.25, Workers: 1, Cache: NewSynthCache()})
		if err != nil {
			t.Fatal(err)
		}
		if cases[i].cell, err = sg.RefinedArgmaxCell(cases[i].aps); err != nil {
			t.Fatal(err)
		}
		var perr error
		if cases[i].pos, perr = sg.Localize(cases[i].aps); perr != nil {
			t.Fatal(perr)
		}
	}

	// Budget sized so entries fit individually but churn collectively:
	// a couple of region LUTs per shard at most.
	const budget = 1 << 19
	shared := NewSynthCacheBudget(budget)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc := cases[g]
			sg, err := NewSynthGridRegion(min, max, tc.region, SynthOptions{Cell: 0.25, Workers: 2, Cache: shared})
			if err != nil {
				errs <- err
				return
			}
			for it := 0; it < 4; it++ {
				cell, err := sg.RefinedArgmaxCell(tc.aps)
				if err != nil {
					errs <- err
					return
				}
				if cell != tc.cell {
					errs <- fmt.Errorf("goroutine %d it %d: argmax %d under churn, cold run %d", g, it, cell, tc.cell)
					return
				}
				pos, err := sg.Localize(tc.aps)
				if err != nil {
					errs <- err
					return
				}
				if pos != tc.pos {
					errs <- fmt.Errorf("goroutine %d it %d: fix %v under churn, cold run %v", g, it, pos, tc.pos)
					return
				}
				if u := shared.Usage(); u.Bytes > budget {
					errs <- fmt.Errorf("goroutine %d it %d: cache %d bytes exceeds %d budget", g, it, u.Bytes, budget)
					return
				}
				runtime.Gosched()
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	u := shared.Usage()
	if u.Evictions == 0 {
		t.Fatalf("stress run evicted nothing (bytes=%d, budget=%d): budget not tight enough to exercise churn", u.Bytes, budget)
	}
	t.Logf("stress: entries=%d bytes=%d hits=%d misses=%d evictions=%d slices=%d",
		u.Entries, u.Bytes, u.Hits, u.Misses, u.Evictions, u.Slices)
}

// samePairAPs probes AP positions until n keys share the same ordered
// pair of candidate shards — the two-choice analogue of a shard
// collision, making placement and eviction fully deterministic.
func samePairAPs(t *testing.T, spec GridSpec, n int) []geom.Point {
	t.Helper()
	byPair := map[[2]int][]geom.Point{}
	for x := 0.0; x < 4096; x += 0.73 {
		ap := geom.Pt(x, 1)
		i1, i2 := shardPair(keyOf(ap, spec, 360))
		pair := [2]int{i1, i2}
		byPair[pair] = append(byPair[pair], ap)
		if len(byPair[pair]) == n {
			return byPair[pair]
		}
	}
	t.Fatalf("no %d keys sharing a shard pair found", n)
	return nil
}

// TestSynthCacheLRUOrder: under two-choice placement, entries sharing
// both candidate shards balance across the pair; once both shards are
// full, the least-recently-used entry of the insertion target is the
// one evicted, and touching an entry protects it.
func TestSynthCacheLRUOrder(t *testing.T) {
	spec, err := GridSpecFor(geom.Pt(0, 0), geom.Pt(4, 4), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cost := lutCost(spec.Cells())
	// Budget for exactly two entries per shard.
	c := NewSynthCacheBudget(2 * cost * synthShards)
	aps := samePairAPs(t, spec, 5)
	a, b, d, e, f := aps[0], aps[1], aps[2], aps[3], aps[4]
	second0 := c.Usage().SecondChoice
	c.lut(a, spec, 360) // tie → first choice
	c.lut(b, spec, 360) // first loaded → second choice
	c.lut(d, spec, 360) // tie → first choice (now full)
	c.lut(a, spec, 360) // touch a: d becomes the first shard's LRU
	c.lut(e, spec, 360) // first fuller → second choice (now full)
	c.lut(f, spec, 360) // tie → first choice: evicts d (a was touched)
	if got := c.Usage().SecondChoice - second0; got != 2 {
		t.Fatalf("SecondChoice placements = %d, want 2 (b and e)", got)
	}
	if _, entries := sumEntryCosts(c); entries != 4 {
		t.Fatalf("expected 4 entries after eviction, have %d", entries)
	}
	hits0, _ := c.Stats()
	c.lut(a, spec, 360)
	c.lut(b, spec, 360)
	c.lut(e, spec, 360)
	c.lut(f, spec, 360)
	if hits, _ := c.Stats(); hits != hits0+4 {
		t.Fatal("a surviving entry was evicted; LRU order not respected")
	}
	missesBefore := c.Usage().Misses
	c.lut(d, spec, 360)
	if c.Usage().Misses != missesBefore+1 {
		t.Fatal("d should have been evicted and rebuilt")
	}
	checkAccounting(t, c)
}

// TestSynthCacheTwoChoiceCollisionProof is the tentpole's thrash
// test: dense-pitch-scale entries whose keys collide on their
// first-choice shard used to evict each other on every access round
// even though the cache as a whole had room. With two-choice
// placement both stay resident, and a warm round-robin access pattern
// hits every time.
func TestSynthCacheTwoChoiceCollisionProof(t *testing.T) {
	// A grid big enough that one shard holds exactly one entry.
	spec, err := GridSpecFor(geom.Pt(0, 0), geom.Pt(20, 8), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cost := lutCost(spec.Cells())
	c := NewSynthCacheBudget(cost * synthShards) // one entry per shard
	// Two keys sharing a FIRST-choice shard (their second choices are
	// distinct from it by construction of shardPair).
	var colliding []geom.Point
	firstOf := func(ap geom.Point) int {
		i1, _ := shardPair(keyOf(ap, spec, 360))
		return i1
	}
	var want int
	for x := 0.0; len(colliding) < 2 && x < 4096; x += 0.37 {
		ap := geom.Pt(x, 2)
		if len(colliding) == 0 {
			colliding = append(colliding, ap)
			want = firstOf(ap)
			continue
		}
		if firstOf(ap) == want && ap != colliding[0] {
			colliding = append(colliding, ap)
		}
	}
	if len(colliding) < 2 {
		t.Fatal("no first-choice collision found")
	}
	c.lut(colliding[0], spec, 360)
	c.lut(colliding[1], spec, 360) // single-choice would evict colliding[0]
	hits0, _ := c.Stats()
	for round := 0; round < 3; round++ {
		for _, ap := range colliding {
			c.lut(ap, spec, 360)
		}
	}
	hits, _ := c.Stats()
	if got, wantHits := hits-hits0, uint64(6); got != wantHits {
		t.Fatalf("warm round-robin over colliding keys: %d hits, want %d (collision thrash)", got, wantHits)
	}
	u := c.Usage()
	if u.SecondChoice == 0 {
		t.Fatal("second entry was not placed by two-choice")
	}
	if u.Evictions != 0 {
		t.Fatalf("collision evicted %d entries despite a free second choice", u.Evictions)
	}
	checkAccounting(t, c)
}

// TestSynthCacheSpillCounter: oversized pass-throughs are surfaced as
// Spills (besides the historical eviction count).
func TestSynthCacheSpillCounter(t *testing.T) {
	c := NewSynthCacheBudget(1024) // nothing fits
	spec, err := GridSpecFor(geom.Pt(0, 0), geom.Pt(10, 10), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c.lut(geom.Pt(3, 4), spec, 360)
	c.lut(geom.Pt(5, 1), spec, 360)
	if u := c.Usage(); u.Spills != 2 {
		t.Fatalf("Spills = %d, want 2", u.Spills)
	}
}
