package core

// Branch-and-bound block ordering. The screen refines blocks in
// descending bound order; the first cut re-scanned the whole bounds
// array per refinement to find the next block, which is O(blocks) per
// pick — harmless when pruning stops the screen after a handful of
// blocks, quadratic when a degenerate surface (near-flat spectra at
// dense pitch) keeps every bound in the running up to the refinement
// budget. This file replaces the scan with a binary max-heap ordered
// by (bound descending, block index ascending).
//
// The screen switches adaptively: the first heapSwitchRefinements
// picks use the linear rescan — its sequential predictable compares
// beat the heap's constants when a peaked surface stops the screen
// after a handful of blocks — and only a screen that keeps refining
// past that point (the bound-scan-dominated regime the heap exists
// for) pays the one-time O(blocks) heapify and pops the rest in
// O(log blocks). Because refined blocks are marked -Inf, the heap is
// built over exactly the unconsumed tail of the total order, so the
// switch point is invisible in the refinement sequence.
//
// Exactness: the bounds are static for the whole screen (refining a
// block never changes another block's bound), so the repeated linear
// scans visit blocks in exactly the total order "higher bound first,
// lower index first among ties" — the linear scan keeps the first
// maximum it meets, i.e. the lowest index. boundLess is precisely
// that total order, and a binary heap pops a static set in comparator
// order, so the heap path refines the identical block sequence and
// every downstream value (candidate list, argmax, hill-climb seeds)
// is bit-identical to the linear path. Pinned on every scene by
// TestSynthHeapMatchesLinearPick.

import "sync/atomic"

// heapSwitchRefinements is the refinement count past which the screen
// abandons the linear rescan and heapifies the surviving bounds.
// Peaked surfaces prune within ~topK picks and never reach it; a
// degenerate screen crosses it after a bounded O(switch·blocks) spend
// and escapes the quadratic regime.
const heapSwitchRefinements = 24

// SynthMetrics accumulates work counters for the synthesis kernels:
// screening-block refinement, bound-ordering cost, and hill-climb
// probe accounting. All counters are atomic, so one SynthMetrics may
// be shared across grids and goroutines; wire it in through
// SynthOptions.Metrics. Counters only grow; readers snapshot.
type SynthMetrics struct {
	// BlocksRefined counts screening blocks refined at full
	// resolution across all branch-and-bound screens.
	BlocksRefined atomic.Int64
	// BoundVisits counts bound-entry visits spent choosing the next
	// block: the full array length per pick on the linear path, the
	// heap-sift comparisons on the heap path. The degenerate-surface
	// test asserts the heap path's count is far below the linear
	// path's on the same scene.
	BoundVisits atomic.Int64
	// FullEvalFallbacks counts screens that hit the refinement budget
	// and fell back to the sharded full-surface evaluation.
	FullEvalFallbacks atomic.Int64
	// HillProbes counts in-bounds hill-climb probes considered.
	HillProbes atomic.Int64
	// HillPruned counts probes rejected by the rotation guard's
	// certified upper bound, with no atan2 evaluated.
	HillPruned atomic.Int64
}

// SynthMetricsSnapshot is a plain-value copy of SynthMetrics for
// reporting (engine stats, the kernels experiment).
type SynthMetricsSnapshot struct {
	BlocksRefined     int64 `json:"blocks_refined"`
	BoundVisits       int64 `json:"bound_visits"`
	FullEvalFallbacks int64 `json:"full_eval_fallbacks"`
	HillProbes        int64 `json:"hill_probes"`
	HillPruned        int64 `json:"hill_pruned"`
}

// Snapshot reads every counter once.
func (m *SynthMetrics) Snapshot() SynthMetricsSnapshot {
	return SynthMetricsSnapshot{
		BlocksRefined:     m.BlocksRefined.Load(),
		BoundVisits:       m.BoundVisits.Load(),
		FullEvalFallbacks: m.FullEvalFallbacks.Load(),
		HillProbes:        m.HillProbes.Load(),
		HillPruned:        m.HillPruned.Load(),
	}
}

// boundLess is the screen's total refinement order: higher bound
// first, lower block index among equal bounds — the order the linear
// scan's strict `>` comparison with first-seen retention produces.
func boundLess(a, b cellCand) bool {
	if a.val != b.val {
		return a.val > b.val
	}
	return a.idx < b.idx
}

// heapInit establishes the heap property over h in place and returns
// the number of comparisons spent (the heap path's BoundVisits).
func heapInit(h []cellCand) int64 {
	var visits int64
	for i := len(h)/2 - 1; i >= 0; i-- {
		visits += siftDown(h, i)
	}
	return visits
}

// siftDown restores the heap property below index i.
func siftDown(h []cellCand, i int) int64 {
	var visits int64
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return visits
		}
		best := l
		if r := l + 1; r < n {
			visits++
			if boundLess(h[r], h[l]) {
				best = r
			}
		}
		visits++
		if !boundLess(h[best], h[i]) {
			return visits
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// heapPop removes the top (next-to-refine) entry.
func heapPop(h []cellCand) ([]cellCand, int64) {
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	var visits int64
	if n > 1 {
		visits = siftDown(h, 0)
	}
	return h, visits
}
