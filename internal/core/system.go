package core

import (
	"runtime"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/music"
)

// Config selects which stages of the ArrayTrack pipeline run and with
// what parameters. The zero value is not useful; start from
// DefaultConfig or UnoptimizedConfig.
type Config struct {
	// Wavelength of the carrier in metres.
	Wavelength float64
	// SmoothingGroups is NG for spatial smoothing (§2.3.2; paper: 2).
	SmoothingGroups int
	// MaxSamples bounds the preamble samples used per frame (paper: 10).
	MaxSamples int
	// SampleOffset skips the first samples of a capture so snapshots
	// come from the steady preamble region after detection.
	SampleOffset int
	// ForwardBackward enables forward-backward correlation averaging,
	// a standard ULA companion to spatial smoothing.
	ForwardBackward bool
	// SignalThresholdFrac selects the signal-subspace dimension D.
	SignalThresholdFrac float64
	// UseWeighting enables array geometry weighting (§2.3.3).
	UseWeighting bool
	// UseSuppression enables multipath suppression across frames (§2.4).
	UseSuppression bool
	// UseSymmetryRemoval enables ninth-antenna side selection (§2.3.4).
	UseSymmetryRemoval bool
	// PeakMatchTolDeg is the suppression pairing tolerance (paper: 5°).
	PeakMatchTolDeg float64
	// GridCell is the synthesis grid pitch in metres (paper: 0.10).
	GridCell float64
	// Steering shares precomputed steering-vector tables across every
	// spectrum computed under this config. nil recomputes a(θ) per bin
	// (the seed behaviour); DefaultConfig wires in the process-wide
	// cache. Spectra are bit-identical either way.
	Steering *music.SteeringCache
	// APWorkers bounds the goroutines LocateClient uses to process
	// APs concurrently. 0 or 1 processes APs serially; DefaultConfig
	// sets GOMAXPROCS. Results are deterministic regardless.
	APWorkers int
	// SynthCache shares precomputed bearing→bin lookup tables for the
	// Eq. 8 synthesis grid per (AP position, grid geometry) — the
	// synthesis-layer sibling of Steering. nil selects the seed
	// synthesis path (serial product-domain grid search plus hill
	// climbing); DefaultConfig wires in the process-wide cache.
	SynthCache *SynthCache
	// SynthWorkers bounds the goroutines sharding the synthesis
	// surface when the LUT path is active. 0 or 1 evaluates serially;
	// DefaultConfig sets GOMAXPROCS. Results are deterministic
	// regardless.
	SynthWorkers int
	// CoarseFactor is the synthesis coarse-to-fine screening block
	// edge in fine cells: the grid search bounds CoarseFactor² -cell
	// blocks and refines them at full resolution in bound order,
	// stopping when no remaining bound beats the best refined cell —
	// the refined argmax equals the full-grid argmax exactly. 0
	// selects DefaultCoarseFactor (5); 1 evaluates the full grid.
	CoarseFactor int
	// RefineTopK is the minimum number of screening blocks the
	// synthesis screen refines (0 selects DefaultRefineTopK).
	RefineTopK int
	// SynthYield, when non-nil, is called by the staged synthesis
	// loops between surface chunks and screening-block refinements —
	// a cooperative preemption point. The engine points batch jobs'
	// yield at its scheduler, so a waiting priority job runs inline
	// mid-surface (microseconds of latency) instead of behind the
	// whole in-flight fix (tens of milliseconds). The callback may
	// run arbitrary work; the surface being evaluated is paused, not
	// abandoned. nil (and the seed synthesis path) never yields.
	SynthYield func()
	// Estimator is the pluggable frame→spectrum stage (nil means
	// MUSIC, the paper's pipeline). See music.EstimatorByName.
	Estimator music.Estimator
	// Workspaces supplies per-worker scratch state for the spectrum
	// stages. nil allocates every intermediate per call (the seed
	// behaviour); DefaultConfig wires in the process-wide pool.
	// Results are bit-identical either way.
	Workspaces *music.WorkspacePool
}

// DefaultConfig returns the full ArrayTrack pipeline with the paper's
// parameter choices.
func DefaultConfig(wavelength float64) Config {
	return Config{
		Wavelength:          wavelength,
		SmoothingGroups:     2,
		MaxSamples:          10,
		SampleOffset:        100,
		ForwardBackward:     true,
		SignalThresholdFrac: 0.05,
		UseWeighting:        true,
		UseSuppression:      true,
		UseSymmetryRemoval:  true,
		PeakMatchTolDeg:     DefaultPeakMatchTolDeg,
		GridCell:            0.10,
		Steering:            music.SharedSteeringCache(),
		APWorkers:           runtime.GOMAXPROCS(0),
		Workspaces:          music.SharedWorkspacePool(),
		SynthCache:          SharedSynthCache(),
		SynthWorkers:        runtime.GOMAXPROCS(0),
		CoarseFactor:        DefaultCoarseFactor,
		RefineTopK:          DefaultRefineTopK,
	}
}

// UnoptimizedConfig returns the §4.1 baseline: raw spatially-smoothed
// spectra with no weighting, no suppression, and no symmetry removal.
func UnoptimizedConfig(wavelength float64) Config {
	c := DefaultConfig(wavelength)
	c.UseWeighting = false
	c.UseSuppression = false
	c.UseSymmetryRemoval = false
	return c
}

// AP is one access point as the backend sees it: an antenna array plus
// the phase calibration measured for it (§3).
type AP struct {
	// Array describes the antenna geometry and (hidden) hardware
	// offsets.
	Array *array.Array
	// Calibration holds the measured per-element phase offsets to
	// subtract from received samples; nil means the AP is treated as
	// perfectly calibrated.
	Calibration []float64
}

// FrameCapture is the per-antenna baseband sample streams one AP
// recorded for one frame (all NumElements antennas, ninth last if
// present).
type FrameCapture struct {
	Streams [][]complex128
}

// ProcessAP runs the per-AP half of the pipeline (Figure 1, server
// side) on one or more frame captures from the same client: AoA
// spectrum per frame (via the configured estimator), multipath
// suppression across frames, geometry weighting, and symmetry removal.
// It returns the final spectrum for synthesis. See Pipeline for the
// explicit stage structure.
func ProcessAP(ap *AP, frames []FrameCapture, cfg Config) (*music.Spectrum, error) {
	return NewPipeline(cfg).ProcessAP(ap, frames)
}

// LocateClient runs the complete backend for one client: per-AP
// processing of that client's frames at every AP, then synthesis over
// the given area. captures[i] holds the frames AP i overheard; APs
// with no captures are skipped. At least one AP must contribute. See
// Pipeline for the explicit stage structure.
func LocateClient(aps []*AP, captures [][]FrameCapture, min, max geom.Point, cfg Config) (geom.Point, []APSpectrum, error) {
	return NewPipeline(cfg).Locate(aps, captures, min, max)
}

// LocateClientRegion is LocateClient with synthesis restricted to an
// ad-hoc search region (zero region = full area) — the per-request
// bounding-box entry point the engine threads through for interactive
// region fixes.
func LocateClientRegion(aps []*AP, captures [][]FrameCapture, min, max geom.Point, region Region, cfg Config) (geom.Point, []APSpectrum, error) {
	return NewPipeline(cfg).LocateRegion(aps, captures, min, max, region)
}
