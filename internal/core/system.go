package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/music"
)

// Config selects which stages of the ArrayTrack pipeline run and with
// what parameters. The zero value is not useful; start from
// DefaultConfig or UnoptimizedConfig.
type Config struct {
	// Wavelength of the carrier in metres.
	Wavelength float64
	// SmoothingGroups is NG for spatial smoothing (§2.3.2; paper: 2).
	SmoothingGroups int
	// MaxSamples bounds the preamble samples used per frame (paper: 10).
	MaxSamples int
	// SampleOffset skips the first samples of a capture so snapshots
	// come from the steady preamble region after detection.
	SampleOffset int
	// ForwardBackward enables forward-backward correlation averaging,
	// a standard ULA companion to spatial smoothing.
	ForwardBackward bool
	// SignalThresholdFrac selects the signal-subspace dimension D.
	SignalThresholdFrac float64
	// UseWeighting enables array geometry weighting (§2.3.3).
	UseWeighting bool
	// UseSuppression enables multipath suppression across frames (§2.4).
	UseSuppression bool
	// UseSymmetryRemoval enables ninth-antenna side selection (§2.3.4).
	UseSymmetryRemoval bool
	// PeakMatchTolDeg is the suppression pairing tolerance (paper: 5°).
	PeakMatchTolDeg float64
	// GridCell is the synthesis grid pitch in metres (paper: 0.10).
	GridCell float64
	// Steering shares precomputed steering-vector tables across every
	// spectrum computed under this config. nil recomputes a(θ) per bin
	// (the seed behaviour); DefaultConfig wires in the process-wide
	// cache. Spectra are bit-identical either way.
	Steering *music.SteeringCache
	// APWorkers bounds the goroutines LocateClient uses to process
	// APs concurrently. 0 or 1 processes APs serially; DefaultConfig
	// sets GOMAXPROCS. Results are deterministic regardless.
	APWorkers int
}

// DefaultConfig returns the full ArrayTrack pipeline with the paper's
// parameter choices.
func DefaultConfig(wavelength float64) Config {
	return Config{
		Wavelength:          wavelength,
		SmoothingGroups:     2,
		MaxSamples:          10,
		SampleOffset:        100,
		ForwardBackward:     true,
		SignalThresholdFrac: 0.05,
		UseWeighting:        true,
		UseSuppression:      true,
		UseSymmetryRemoval:  true,
		PeakMatchTolDeg:     DefaultPeakMatchTolDeg,
		GridCell:            0.10,
		Steering:            music.SharedSteeringCache(),
		APWorkers:           runtime.GOMAXPROCS(0),
	}
}

// UnoptimizedConfig returns the §4.1 baseline: raw spatially-smoothed
// spectra with no weighting, no suppression, and no symmetry removal.
func UnoptimizedConfig(wavelength float64) Config {
	c := DefaultConfig(wavelength)
	c.UseWeighting = false
	c.UseSuppression = false
	c.UseSymmetryRemoval = false
	return c
}

// AP is one access point as the backend sees it: an antenna array plus
// the phase calibration measured for it (§3).
type AP struct {
	// Array describes the antenna geometry and (hidden) hardware
	// offsets.
	Array *array.Array
	// Calibration holds the measured per-element phase offsets to
	// subtract from received samples; nil means the AP is treated as
	// perfectly calibrated.
	Calibration []float64
}

// FrameCapture is the per-antenna baseband sample streams one AP
// recorded for one frame (all NumElements antennas, ninth last if
// present).
type FrameCapture struct {
	Streams [][]complex128
}

// ProcessAP runs the per-AP half of the pipeline (Figure 1, server
// side) on one or more frame captures from the same client: AoA
// spectrum per frame, multipath suppression across frames, geometry
// weighting, and symmetry removal. It returns the final spectrum for
// synthesis.
func ProcessAP(ap *AP, frames []FrameCapture, cfg Config) (*music.Spectrum, error) {
	if len(frames) == 0 {
		return nil, errors.New("core: no frames captured")
	}
	opt := music.Options{
		Wavelength:          cfg.Wavelength,
		SmoothingGroups:     cfg.SmoothingGroups,
		SignalThresholdFrac: cfg.SignalThresholdFrac,
		MaxSamples:          cfg.MaxSamples,
		SampleOffset:        cfg.SampleOffset,
		ForwardBackward:     cfg.ForwardBackward,
		Steering:            cfg.Steering,
	}
	if ap.Calibration != nil {
		opt.CalibrationOffsets = ap.Calibration
	}

	nRow := ap.Array.N
	spectra := make([]*music.Spectrum, 0, len(frames))
	for i, f := range frames {
		if len(f.Streams) < nRow {
			return nil, fmt.Errorf("core: frame %d has %d streams, need %d row antennas", i, len(f.Streams), nRow)
		}
		s, err := music.ComputeSpectrum(ap.Array, f.Streams[:nRow], opt)
		if err != nil {
			return nil, fmt.Errorf("core: frame %d: %w", i, err)
		}
		spectra = append(spectra, s)
	}

	var out *music.Spectrum
	if cfg.UseSuppression && len(spectra) >= 2 {
		// Group at most three spectra, per step 1 of the algorithm.
		group := spectra
		if len(group) > 3 {
			group = group[:3]
		}
		out = SuppressMultipath(group, cfg.PeakMatchTolDeg)
	} else {
		out = spectra[0].Clone()
	}

	if cfg.UseWeighting {
		out.ApplyGeometryWeighting(ap.Array.Orient)
	}

	if cfg.UseSymmetryRemoval && ap.Array.NinthAntenna &&
		len(frames[0].Streams) >= ap.Array.NumElements() {
		full := frames[0].Streams[:ap.Array.NumElements()]
		snaps := music.SnapshotsAt(full, cfg.SampleOffset, cfg.MaxSamples)
		if ap.Calibration != nil {
			for _, s := range snaps {
				array.CorrectOffsets(s, ap.Calibration)
			}
		}
		rFull, err := music.CorrelationMatrix(snaps)
		if err != nil {
			return nil, err
		}
		music.SymmetryRemovalCached(out, ap.Array, rFull, cfg.Wavelength, cfg.Steering)
	}

	out.Normalize()
	return out, nil
}

// LocateClient runs the complete backend for one client: per-AP
// processing of that client's frames at every AP, then synthesis over
// the given area. captures[i] holds the frames AP i overheard; APs
// with no captures are skipped. At least one AP must contribute.
func LocateClient(aps []*AP, captures [][]FrameCapture, min, max geom.Point, cfg Config) (geom.Point, []APSpectrum, error) {
	if len(aps) != len(captures) {
		return geom.Point{}, nil, errors.New("core: captures must align with APs")
	}
	var contrib []int
	for i := range aps {
		if len(captures[i]) > 0 {
			contrib = append(contrib, i)
		}
	}
	if len(contrib) == 0 {
		return geom.Point{}, nil, errors.New("core: no AP overheard the client")
	}

	// Per-AP processing is independent; fan it out over a bounded
	// worker pool when the config allows. Results land in AP-indexed
	// slots, so ordering — and therefore the synthesis output — is
	// identical to the serial path.
	spectra := make([]*music.Spectrum, len(aps))
	errs := make([]error, len(aps))
	workers := cfg.APWorkers
	if workers > len(contrib) {
		workers = len(contrib)
	}
	if workers > 1 {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					spectra[i], errs[i] = ProcessAP(aps[i], captures[i], cfg)
				}
			}()
		}
		for _, i := range contrib {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for _, i := range contrib {
			if spectra[i], errs[i] = ProcessAP(aps[i], captures[i], cfg); errs[i] != nil {
				break
			}
		}
	}

	specs := make([]APSpectrum, 0, len(contrib))
	for _, i := range contrib {
		if errs[i] != nil {
			return geom.Point{}, nil, fmt.Errorf("core: AP %d: %w", i, errs[i])
		}
		specs = append(specs, APSpectrum{Pos: aps[i].Array.Pos, Spectrum: spectra[i]})
	}
	cell := cfg.GridCell
	if cell <= 0 {
		cell = 0.10
	}
	pos, _, err := Localize(specs, min, max, cell)
	return pos, specs, err
}
