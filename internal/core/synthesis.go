package core

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/geom"
	"repro/internal/music"
)

// likelihoodFloor keeps the product in Eq. 8 finite where a spectrum
// was explicitly zeroed (suppression, symmetry removal): a location is
// penalized heavily, not annihilated, by one dissenting AP.
const likelihoodFloor = 1e-6

// APSpectrum pairs one AP's processed AoA spectrum with the array
// position it was measured at, ready for synthesis.
type APSpectrum struct {
	// Pos is the AP's array reference position.
	Pos geom.Point
	// Spectrum is the processed AoA spectrum P_i(θ).
	Spectrum *music.Spectrum
}

// Likelihood evaluates Eq. 8, L(x) = Π_i P_i(θ_i), where θ_i is the
// bearing from AP i to the candidate position x.
func Likelihood(x geom.Point, aps []APSpectrum) float64 {
	l := 1.0
	for _, ap := range aps {
		p := ap.Spectrum.At(ap.Pos.Bearing(x))
		if p < likelihoodFloor {
			p = likelihoodFloor
		}
		l *= p
	}
	return l
}

// LogLikelihood evaluates Eq. 8 in the log domain, Σ_i log P_i(θ_i),
// with each factor clamped at likelihoodFloor exactly as Likelihood
// clamps it. The log is strictly monotone, so LogLikelihood orders
// candidate positions identically to Likelihood (pinned by
// TestLogLikelihoodPreservesOrdering) while staying finite for any AP
// count — the accumulation the staged synthesis layer (SynthGrid)
// shards over its flat surface.
func LogLikelihood(x geom.Point, aps []APSpectrum) float64 {
	l := 0.0
	for _, ap := range aps {
		p := ap.Spectrum.At(ap.Pos.Bearing(x))
		if p < likelihoodFloor {
			p = likelihoodFloor
		}
		l += math.Log(p)
	}
	return l
}

// LogLikelihoodBins evaluates Eq. 8 in the log domain with the
// synthesis surface's native sub-bin semantics: each AP's
// log-spectrum, log(max(P[b], likelihoodFloor)), is interpolated
// linearly between bins — a geometric interpolation of the spectrum.
// It agrees with LogLikelihood exactly at bin centres and differs
// between them (lerp of logs vs log of a lerp); this is what
// SynthGrid accumulates per cell and scores per hill-climb probe.
// LogLikelihoodBins is the scalar reference path — fresh BinLookup
// and two math.Log per AP per call; the grid's table-driven probe
// scorer reproduces it bit for bit (TestHillClimbTabsMatchesScalar).
func LogLikelihoodBins(x geom.Point, aps []APSpectrum) float64 {
	l := 0.0
	for _, ap := range aps {
		n := ap.Spectrum.Bins()
		b, f := music.BinLookup(ap.Pos.Bearing(x), n)
		j := b + 1
		if j == n {
			j = 0
		}
		pb, pj := ap.Spectrum.P[b], ap.Spectrum.P[j]
		if pb < likelihoodFloor {
			pb = likelihoodFloor
		}
		if pj < likelihoodFloor {
			pj = likelihoodFloor
		}
		l += math.Log(pb)*(1-f) + math.Log(pj)*f
	}
	return l
}

// Heatmap is a sampled likelihood surface over a rectangle, the
// structure rendered in Figure 14. Values live in one flat row-major
// array (Flat) with per-row views (Vals) over it; surfaces from
// SynthGrid.LogHeatmap hold log-likelihoods (≤ 0) instead of raw
// products, which every consumer here treats equivalently since the
// log is monotone.
type Heatmap struct {
	// Min is the corner of cell (0,0); Cell is the spacing in metres.
	Min  geom.Point
	Cell float64
	// Nx, Ny are the cell counts along each axis.
	Nx, Ny int
	// Flat is the row-major backing array: cell (ix, iy) is
	// Flat[iy*Nx+ix].
	Flat []float64
	// Vals[iy][ix] is the value at (Min.X + ix·Cell, Min.Y + iy·Cell),
	// a view over Flat.
	Vals [][]float64
}

// reshape sizes the heatmap for spec, reusing the backing array and
// row views when the shape already matches.
func (h *Heatmap) reshape(spec GridSpec) {
	h.Min, h.Cell = spec.Origin(), spec.Cell
	if h.Nx == spec.Nx && h.Ny == spec.Ny && len(h.Flat) == spec.Cells() {
		return
	}
	h.Nx, h.Ny = spec.Nx, spec.Ny
	h.Flat = make([]float64, spec.Cells())
	h.Vals = make([][]float64, spec.Ny)
	for iy := 0; iy < spec.Ny; iy++ {
		h.Vals[iy] = h.Flat[iy*spec.Nx : (iy+1)*spec.Nx : (iy+1)*spec.Nx]
	}
}

// ComputeHeatmap evaluates the likelihood on a grid with the given cell
// size (the paper uses 10 cm). This is the serial product-domain
// reference; the staged SynthGrid path reproduces its argmax with
// cached bearing LUTs at a fraction of the cost.
func ComputeHeatmap(aps []APSpectrum, min, max geom.Point, cell float64) (*Heatmap, error) {
	spec, err := GridSpecFor(min, max, cell)
	if err != nil {
		return nil, err
	}
	h := &Heatmap{}
	h.reshape(spec)
	for iy := 0; iy < spec.Ny; iy++ {
		for ix := 0; ix < spec.Nx; ix++ {
			h.Vals[iy][ix] = Likelihood(h.CellCenter(ix, iy), aps)
		}
	}
	return h, nil
}

// CellCenter returns the position of cell (ix, iy).
func (h *Heatmap) CellCenter(ix, iy int) geom.Point {
	return geom.Pt(h.Min.X+float64(ix)*h.Cell, h.Min.Y+float64(iy)*h.Cell)
}

// TopCells returns the k highest-likelihood cell positions, best first.
func (h *Heatmap) TopCells(k int) []geom.Point {
	type cell struct {
		v      float64
		ix, iy int
	}
	var best []cell
	for iy := range h.Vals {
		for ix, v := range h.Vals[iy] {
			if len(best) < k {
				best = append(best, cell{v, ix, iy})
				for j := len(best) - 1; j > 0 && best[j].v > best[j-1].v; j-- {
					best[j], best[j-1] = best[j-1], best[j]
				}
				continue
			}
			if v > best[k-1].v {
				best[k-1] = cell{v, ix, iy}
				for j := k - 1; j > 0 && best[j].v > best[j-1].v; j-- {
					best[j], best[j-1] = best[j-1], best[j]
				}
			}
		}
	}
	out := make([]geom.Point, len(best))
	for i, c := range best {
		out[i] = h.CellCenter(c.ix, c.iy)
	}
	return out
}

// ASCII renders the heatmap as text (one character per cell, darker =
// more likely), with optional marks drawn at given positions. Row 0 of
// the output is the maximum-Y edge so the picture reads like a map.
func (h *Heatmap) ASCII(marks map[byte]geom.Point) string {
	shades := []byte(" .:-=+*#%@")
	// Linear-domain surfaces shade by v/max as the seed did (lo stays
	// anchored at 0); a log-domain surface (negative values) is
	// shifted so its full span maps onto the same ramp.
	lo, max := 0.0, math.Inf(-1)
	for _, row := range h.Vals {
		for _, v := range row {
			if v > max {
				max = v
			}
			if v < lo {
				lo = v
			}
		}
	}
	span := max - lo
	if span <= 0 {
		span = 1
	}
	var b strings.Builder
	for iy := len(h.Vals) - 1; iy >= 0; iy-- {
		row := make([]byte, len(h.Vals[iy]))
		for ix, v := range h.Vals[iy] {
			s := int((v - lo) / span * float64(len(shades)-1))
			row[ix] = shades[s]
		}
		for ch, p := range marks {
			ix := int(math.Round((p.X - h.Min.X) / h.Cell))
			my := int(math.Round((p.Y - h.Min.Y) / h.Cell))
			if my == iy && ix >= 0 && ix < len(row) {
				row[ix] = ch
			}
		}
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// Localize runs the §2.5 estimator: grid search at the given cell size
// over [min,max], then hill climbing from the three best cells,
// returning the maximum-likelihood position. The returned heatmap is
// the coarse grid (useful for Figure 14 rendering).
func Localize(aps []APSpectrum, min, max geom.Point, cell float64) (geom.Point, *Heatmap, error) {
	if len(aps) == 0 {
		return geom.Point{}, nil, errors.New("core: no AP spectra to synthesize")
	}
	h, err := ComputeHeatmap(aps, min, max, cell)
	if err != nil {
		return geom.Point{}, nil, err
	}
	best := geom.Point{}
	bestL := math.Inf(-1)
	for _, seed := range h.TopCells(3) {
		p, l := hillClimb(seed, aps, cell, min, max)
		if l > bestL {
			best, bestL = p, l
		}
	}
	return best, h, nil
}

// hillClimb refines a position by compass pattern search on the
// likelihood surface, shrinking the step from one cell down to 1 cm.
func hillClimb(start geom.Point, aps []APSpectrum, step float64, min, max geom.Point) (geom.Point, float64) {
	return hillClimbFn(start, aps, step, min, max, Likelihood)
}

// hillClimbFn is the shared compass search over any likelihood score
// (product-domain Likelihood for the seed path, LogLikelihood for the
// staged synthesis path — monotone-equivalent surfaces, one search).
func hillClimbFn(start geom.Point, aps []APSpectrum, step float64, min, max geom.Point, score func(geom.Point, []APSpectrum) float64) (geom.Point, float64) {
	cur := start
	curL := score(cur, aps)
	for step > 0.01 {
		improved := false
		for _, d := range [4]geom.Vec{{X: step}, {X: -step}, {Y: step}, {Y: -step}} {
			cand := cur.Add(d)
			if cand.X < min.X || cand.X > max.X || cand.Y < min.Y || cand.Y > max.Y {
				continue
			}
			if l := score(cand, aps); l > curL {
				cur, curL = cand, l
				improved = true
			}
		}
		if !improved {
			step /= 2
		}
	}
	return cur, curL
}

// String summarizes the heatmap dimensions.
func (h *Heatmap) String() string {
	ny := len(h.Vals)
	nx := 0
	if ny > 0 {
		nx = len(h.Vals[0])
	}
	return fmt.Sprintf("heatmap %d×%d @ %.2f m from %v", nx, ny, h.Cell, h.Min)
}
