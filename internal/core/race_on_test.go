//go:build race

package core

// raceEnabled reports whether this test binary runs under the race
// detector, where sync.Pool deliberately drops a fraction of items
// (to expose reuse races) and every memory access pays
// instrumentation — so alloc and wall-clock perf gates measure the
// detector, not the code. Those gates skip here and run in the
// dedicated non-race CI step instead.
const raceEnabled = true
