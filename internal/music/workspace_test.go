package music

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/array"
	"repro/internal/geom"
)

func workspaceTestStreams(rng *rand.Rand, a *array.Array) [][]complex128 {
	return synth(a, []float64{geom.Rad(50), geom.Rad(120)}, []complex128{1, 0.6}, 40, true, 0.05, rng)
}

// TestWorkspaceSpectrumBitIdentical pins the PR's core invariant: the
// workspace path must reproduce the allocating path bin for bin with
// exact equality (==, not a tolerance), across repeated workspace
// reuse, calibration, forward-backward, and both steering modes.
func TestWorkspaceSpectrumBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ws := NewWorkspace()
	for trial := 0; trial < 8; trial++ {
		n := 6 + 2*(trial%2) // alternate 6 and 8 antennas to exercise resizing
		a := array.NewLinear(geom.Pt(0, 0), 0, n, lambda)
		streams := workspaceTestStreams(rng, a)
		opt := Options{
			Wavelength:      lambda,
			SmoothingGroups: 2,
			MaxSamples:      10,
			SampleOffset:    trial % 3,
			ForwardBackward: trial%2 == 0,
		}
		if trial >= 4 {
			opt.Steering = NewSteeringCache()
		}
		if trial%3 == 0 {
			calib := make([]float64, n)
			for k := range calib {
				calib[k] = 0.1 * float64(k)
			}
			opt.CalibrationOffsets = calib
		}
		want, err := ComputeSpectrum(a, streams, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ComputeSpectrumWS(ws, a, streams, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.P) != len(want.P) {
			t.Fatalf("trial %d: bin count %d vs %d", trial, len(got.P), len(want.P))
		}
		for i := range want.P {
			if got.P[i] != want.P[i] {
				t.Fatalf("trial %d: bin %d differs: %v vs %v (not bit-identical)", trial, i, got.P[i], want.P[i])
			}
		}
	}
}

// TestWorkspaceStagesBitIdentical checks each WS stage against its
// allocating twin in isolation.
func TestWorkspaceStagesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	streams := workspaceTestStreams(rng, a)
	snaps := SnapshotsAt(streams[:a.N], 2, 12)
	ws := NewWorkspace()

	wsSnaps := SnapshotsAtWS(ws, streams[:a.N], 2, 12)
	if len(wsSnaps) != len(snaps) {
		t.Fatalf("snapshot count %d vs %d", len(wsSnaps), len(snaps))
	}
	for i := range snaps {
		for j := range snaps[i] {
			if wsSnaps[i][j] != snaps[i][j] {
				t.Fatal("snapshots differ")
			}
		}
	}

	r, err := CorrelationMatrix(snaps)
	if err != nil {
		t.Fatal(err)
	}
	rWS, err := CorrelationMatrixWS(ws, wsSnaps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Data {
		if r.Data[i] != rWS.Data[i] {
			t.Fatal("correlation differs")
		}
	}

	fb := ForwardBackward(r)
	fbWS := ForwardBackwardWS(ws, rWS)
	for i := range fb.Data {
		if fb.Data[i] != fbWS.Data[i] {
			t.Fatal("forward-backward differs")
		}
	}

	for ng := 1; ng <= 3; ng++ {
		sm, err := SpatialSmooth(fb, ng)
		if err != nil {
			t.Fatal(err)
		}
		smWS, err := SpatialSmoothWS(ws, fbWS, ng)
		if err != nil {
			t.Fatal(err)
		}
		if sm.Rows != smWS.Rows {
			t.Fatal("smoothed shape differs")
		}
		for i := range sm.Data {
			if sm.Data[i] != smWS.Data[i] {
				t.Fatalf("smoothed (ng=%d) differs", ng)
			}
		}
	}

	sm, _ := SpatialSmooth(fb, 2)
	smWS, _ := SpatialSmoothWS(ws, fbWS, 2)
	noise, signal, d, err := Subspaces(sm, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	noiseWS, signalWS, dWS, err := SubspacesWS(ws, smWS, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d != dWS {
		t.Fatalf("signal count %d vs %d", d, dWS)
	}
	for i := range noise.Data {
		if noise.Data[i] != noiseWS.Data[i] {
			t.Fatal("noise subspace differs")
		}
	}
	for i := range signal.Data {
		if signal.Data[i] != signalWS.Data[i] {
			t.Fatal("signal subspace differs")
		}
	}
}

// TestWorkspaceSteadyStateAllocs: with a warmed workspace and steering
// cache, one spectrum costs only its escaping output (a handful of
// allocations), at least 3x below the allocating cached path — the
// acceptance bar for this refactor — and far below the seed.
func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	streams := workspaceTestStreams(rng, a)[:a.N]
	opt := Options{
		Wavelength:      lambda,
		SmoothingGroups: 2,
		MaxSamples:      10,
		SampleOffset:    3,
		ForwardBackward: true,
		Steering:        NewSteeringCache(),
	}
	ws := NewWorkspace()
	if _, err := ComputeSpectrumWS(ws, a, streams, opt); err != nil {
		t.Fatal(err)
	}

	allocating := testing.AllocsPerRun(20, func() {
		if _, err := ComputeSpectrum(a, streams, opt); err != nil {
			t.Fatal(err)
		}
	})
	workspace := testing.AllocsPerRun(20, func() {
		if _, err := ComputeSpectrumWS(ws, a, streams, opt); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/op: allocating=%.0f workspace=%.0f", allocating, workspace)
	if workspace*3 > allocating {
		t.Fatalf("workspace path allocates %.0f/op vs %.0f/op allocating — want ≥3x reduction", workspace, allocating)
	}
	// The absolute number matters too: only the escaping Spectrum (and
	// its backing slice) should remain.
	if workspace > 8 {
		t.Fatalf("workspace path allocates %.0f/op steady-state, want ≤8", workspace)
	}
}

func TestWorkspacePool(t *testing.T) {
	pool := NewWorkspacePool()
	ws := pool.Get()
	if ws == nil {
		t.Fatal("pool returned nil workspace")
	}
	pool.Put(ws)
	var nilPool *WorkspacePool
	if nilPool.Get() != nil {
		t.Fatal("nil pool must return nil workspace")
	}
	nilPool.Put(nil) // must not panic
}

// TestEstimators exercises the pluggable estimators on a single strong
// source: every estimator must peak near the true bearing, and the
// MUSIC estimator must match ComputeSpectrum exactly.
func TestEstimators(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	truth := geom.Rad(65)
	streams := synth(a, []float64{truth}, []complex128{1}, 40, false, 0.02, rng)[:a.N]
	opt := Options{Wavelength: lambda, SmoothingGroups: 2, MaxSamples: 20}
	ws := NewWorkspace()

	for _, name := range EstimatorNames() {
		est, err := EstimatorByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if est.Name() != name {
			t.Fatalf("estimator %q reports name %q", name, est.Name())
		}
		s, err := est.Spectrum(ws, a, streams, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, bin := s.Max()
		got := s.Theta(bin)
		diff := geom.Deg(geom.AngleDiff(got, truth))
		// Linear arrays alias across the axis; accept the mirror too.
		mirror := geom.Deg(geom.AngleDiff(got, geom.NormalizeAngle(-truth)))
		if math.Min(diff, mirror) > 4 {
			t.Errorf("%s: peak at %.1f°, truth %.1f° (off by %.1f°)", name, geom.Deg(got), geom.Deg(truth), diff)
		}
	}

	if _, err := EstimatorByName("nope"); err == nil {
		t.Fatal("unknown estimator must error")
	}
	def, err := EstimatorByName("")
	if err != nil || def != MUSICEstimator {
		t.Fatal("empty name must resolve to MUSIC")
	}

	want, err := ComputeSpectrum(a, streams, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MUSICEstimator.Spectrum(ws, a, streams, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.P {
		if got.P[i] != want.P[i] {
			t.Fatal("MUSIC estimator must match ComputeSpectrum bit for bit")
		}
	}
}
