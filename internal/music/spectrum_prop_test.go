package music

// Property/invariant tests for Spectrum: these pin down contracts the
// rest of the pipeline (suppression pairing, synthesis lookup, peak
// ranking) silently relies on, over randomized inputs with fixed
// seeds.

import (
	"math"
	"math/rand"
	"testing"
)

func randomSpectrum(n int, rng *rand.Rand) *Spectrum {
	s := NewSpectrum(n)
	for i := range s.P {
		s.P[i] = rng.Float64() * 10
	}
	return s
}

func TestPropNormalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(512)
		s := randomSpectrum(n, rng)
		once := s.Clone().Normalize()
		twice := once.Clone().Normalize()
		for i := range once.P {
			if once.P[i] != twice.P[i] {
				t.Fatalf("n=%d bin %d: %v then %v", n, i, once.P[i], twice.P[i])
			}
		}
		if m, _ := once.Max(); m != 1 {
			t.Fatalf("n=%d: normalized max %v, want 1", n, m)
		}
	}
	// All-zero spectra must survive (and stay zero).
	z := NewSpectrum(16).Normalize().Normalize()
	for i, v := range z.P {
		if v != 0 {
			t.Fatalf("zero spectrum bin %d became %v", i, v)
		}
	}
}

func TestPropBinOfThetaRoundTrip(t *testing.T) {
	for _, n := range []int{3, 7, 90, 359, 360, 361, 1024} {
		s := NewSpectrum(n)
		for i := 0; i < n; i++ {
			if got := s.BinOf(s.Theta(i)); got != i {
				t.Fatalf("n=%d: BinOf(Theta(%d)) = %d", n, i, got)
			}
		}
	}
}

func TestPropBinOfAlwaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewSpectrum(360)
	for trial := 0; trial < 1000; trial++ {
		theta := (rng.Float64() - 0.5) * 50 // well outside [0, 2π)
		if i := s.BinOf(theta); i < 0 || i >= s.Bins() {
			t.Fatalf("BinOf(%v) = %d out of range", theta, i)
		}
	}
}

func TestPropPeaksSortedAndInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(512)
		s := randomSpectrum(n, rng)
		peaks := s.Peaks(0.1 + rng.Float64()*0.8)
		max, _ := s.Max()
		for i, p := range peaks {
			if i > 0 && peaks[i-1].Power < p.Power {
				t.Fatalf("trial %d: peaks not sorted descending at %d", trial, i)
			}
			if p.Theta < 0 || p.Theta >= 2*math.Pi {
				t.Fatalf("trial %d: peak bearing %v outside [0, 2π)", trial, p.Theta)
			}
			if p.Bin < 0 || p.Bin >= n {
				t.Fatalf("trial %d: peak bin %d outside spectrum", trial, p.Bin)
			}
			if s.P[p.Bin] != p.Power {
				t.Fatalf("trial %d: peak power %v disagrees with bin value %v", trial, p.Power, s.P[p.Bin])
			}
			if s.Theta(p.Bin) != p.Theta {
				t.Fatalf("trial %d: peak bearing %v disagrees with bin bearing %v", trial, p.Theta, s.Theta(p.Bin))
			}
			if p.Power > max {
				t.Fatalf("trial %d: peak power %v exceeds global max %v", trial, p.Power, max)
			}
		}
	}
}

func TestPropAtInterpolationBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	s := randomSpectrum(128, rng)
	max, _ := s.Max()
	for trial := 0; trial < 500; trial++ {
		theta := (rng.Float64() - 0.5) * 30
		v := s.At(theta)
		if v < 0 || v > max {
			t.Fatalf("At(%v) = %v outside [0, %v]", theta, v, max)
		}
	}
}
