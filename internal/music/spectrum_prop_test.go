package music

// Property/invariant tests for Spectrum: these pin down contracts the
// rest of the pipeline (suppression pairing, synthesis lookup, peak
// ranking) silently relies on, over randomized inputs with fixed
// seeds.

import (
	"math"
	"math/rand"
	"testing"
)

func randomSpectrum(n int, rng *rand.Rand) *Spectrum {
	s := NewSpectrum(n)
	for i := range s.P {
		s.P[i] = rng.Float64() * 10
	}
	return s
}

func TestPropNormalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(512)
		s := randomSpectrum(n, rng)
		once := s.Clone().Normalize()
		twice := once.Clone().Normalize()
		for i := range once.P {
			if once.P[i] != twice.P[i] {
				t.Fatalf("n=%d bin %d: %v then %v", n, i, once.P[i], twice.P[i])
			}
		}
		if m, _ := once.Max(); m != 1 {
			t.Fatalf("n=%d: normalized max %v, want 1", n, m)
		}
	}
	// All-zero spectra must survive (and stay zero).
	z := NewSpectrum(16).Normalize().Normalize()
	for i, v := range z.P {
		if v != 0 {
			t.Fatalf("zero spectrum bin %d became %v", i, v)
		}
	}
}

func TestPropBinOfThetaRoundTrip(t *testing.T) {
	for _, n := range []int{3, 7, 90, 359, 360, 361, 1024} {
		s := NewSpectrum(n)
		for i := 0; i < n; i++ {
			if got := s.BinOf(s.Theta(i)); got != i {
				t.Fatalf("n=%d: BinOf(Theta(%d)) = %d", n, i, got)
			}
		}
	}
}

func TestPropBinOfAlwaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewSpectrum(360)
	for trial := 0; trial < 1000; trial++ {
		theta := (rng.Float64() - 0.5) * 50 // well outside [0, 2π)
		if i := s.BinOf(theta); i < 0 || i >= s.Bins() {
			t.Fatalf("BinOf(%v) = %d out of range", theta, i)
		}
	}
}

func TestPropPeaksSortedAndInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(512)
		s := randomSpectrum(n, rng)
		peaks := s.Peaks(0.1 + rng.Float64()*0.8)
		max, _ := s.Max()
		for i, p := range peaks {
			if i > 0 && peaks[i-1].Power < p.Power {
				t.Fatalf("trial %d: peaks not sorted descending at %d", trial, i)
			}
			if p.Theta < 0 || p.Theta >= 2*math.Pi {
				t.Fatalf("trial %d: peak bearing %v outside [0, 2π)", trial, p.Theta)
			}
			if p.Bin < 0 || p.Bin >= n {
				t.Fatalf("trial %d: peak bin %d outside spectrum", trial, p.Bin)
			}
			if s.P[p.Bin] != p.Power {
				t.Fatalf("trial %d: peak power %v disagrees with bin value %v", trial, p.Power, s.P[p.Bin])
			}
			if s.Theta(p.Bin) != p.Theta {
				t.Fatalf("trial %d: peak bearing %v disagrees with bin bearing %v", trial, p.Theta, s.Theta(p.Bin))
			}
			if p.Power > max {
				t.Fatalf("trial %d: peak power %v exceeds global max %v", trial, p.Power, max)
			}
		}
	}
}

func TestPropAtInterpolationBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	s := randomSpectrum(128, rng)
	max, _ := s.Max()
	for trial := 0; trial < 500; trial++ {
		theta := (rng.Float64() - 0.5) * 30
		v := s.At(theta)
		if v < 0 || v > max {
			t.Fatalf("At(%v) = %v outside [0, %v]", theta, v, max)
		}
	}
}

// TestAtSeamRegression pins the 2π-seam fix: a bearing whose remainder
// is a tiny negative number used to round to exactly n after the +n
// adjustment and index one past the last bin (a panic), and bearings
// just under 2π must interpolate bin n−1 toward bin 0, not toward a
// phantom bin n.
func TestAtSeamRegression(t *testing.T) {
	for _, n := range []int{3, 359, 360, 1024} {
		s := NewSpectrum(n)
		for i := range s.P {
			s.P[i] = float64(i + 1)
		}
		seams := []float64{
			0, -1e-18, 1e-18, -1e-300, 2 * math.Pi, -2 * math.Pi,
			math.Nextafter(2*math.Pi, 0), math.Nextafter(2*math.Pi, 4),
			-math.Nextafter(2*math.Pi, 0), 4 * math.Pi, -6 * math.Pi,
		}
		for _, theta := range seams {
			i, frac := BinLookup(theta, n)
			if i < 0 || i >= n || frac < 0 || frac >= 1 {
				t.Fatalf("n=%d: BinLookup(%v) = (%d, %v) out of range", n, theta, i, frac)
			}
			v := s.At(theta) // must not panic
			lo, hi := s.P[i], s.P[(i+1)%n]
			if hi < lo {
				lo, hi = hi, lo
			}
			if v < lo || v > hi {
				t.Fatalf("n=%d: At(%v) = %v outside its bin pair [%v, %v]", n, theta, v, lo, hi)
			}
		}
		// Approaching the seam from below must converge to bin 0's
		// value, interpolating across the wraparound.
		want := s.P[n-1] + (s.P[0]-s.P[n-1])*0.999
		eps := math.Abs(s.P[0]-s.P[n-1]) * 2e-3
		theta := 2 * math.Pi * (float64(n) - 0.001) / float64(n)
		if v := s.At(theta); math.Abs(v-want) > eps {
			t.Fatalf("n=%d: At just below 2π = %v, want ≈%v (wraparound toward bin 0)", n, v, want)
		}
	}
}

// TestAtBinsMatchesAt: batched evaluation over precomputed lookups is
// bit-identical to the scalar path, including at the seam.
func TestAtBinsMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{3, 90, 360} {
		s := randomSpectrum(n, rng)
		thetas := []float64{0, -1e-18, 2 * math.Pi, math.Nextafter(2*math.Pi, 0)}
		for trial := 0; trial < 200; trial++ {
			thetas = append(thetas, (rng.Float64()-0.5)*30)
		}
		bins := make([]int32, len(thetas))
		frac := make([]float64, len(thetas))
		for k, theta := range thetas {
			i, f := BinLookup(theta, n)
			bins[k] = int32(i)
			frac[k] = f
		}
		got := s.AtBins(bins, frac, nil)
		for k, theta := range thetas {
			if want := s.At(theta); got[k] != want {
				t.Fatalf("n=%d: AtBins[%d] = %v, At(%v) = %v — not bit-identical", n, k, got[k], theta, want)
			}
		}
	}
}

func TestPaddedValues(t *testing.T) {
	s := NewSpectrum(4)
	copy(s.P, []float64{0.5, 1e-9, 0.25, 1})
	tab := s.PaddedValues(nil, 1e-6)
	if len(tab) != 5 {
		t.Fatalf("padded length %d, want 5", len(tab))
	}
	if tab[1] != 1e-6 {
		t.Fatalf("floor not applied: %v", tab[1])
	}
	if tab[4] != tab[0] {
		t.Fatalf("padding %v != bin 0 %v", tab[4], tab[0])
	}
	// Reuse must not reallocate.
	tab2 := s.PaddedValues(tab, 1e-6)
	if &tab2[0] != &tab[0] {
		t.Fatal("PaddedValues reallocated despite sufficient capacity")
	}
}
