package music

import (
	"math"
	"math/cmplx"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/mat"
)

func TestSnapshotsAtOffset(t *testing.T) {
	streams := [][]complex128{{1, 2, 3, 4}, {5, 6, 7, 8}}
	snaps := SnapshotsAt(streams, 1, 2)
	if len(snaps) != 2 || snaps[0][0] != 2 || snaps[0][1] != 6 || snaps[1][0] != 3 {
		t.Errorf("SnapshotsAt = %v", snaps)
	}
	// Offset beyond the stream clamps to 0.
	snaps = SnapshotsAt(streams, 99, 2)
	if len(snaps) != 2 || snaps[0][0] != 1 {
		t.Errorf("clamped SnapshotsAt = %v", snaps)
	}
	// Negative offset clamps to 0.
	if got := SnapshotsAt(streams, -3, 0); len(got) != 4 {
		t.Errorf("negative offset snapshots = %d", len(got))
	}
}

func TestForwardBackwardProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Build a correlation matrix from random snapshots.
	snaps := make([][]complex128, 30)
	for i := range snaps {
		snaps[i] = randomSig(6, rng)
	}
	r, _ := CorrelationMatrix(snaps)
	fb := ForwardBackward(r)
	if !fb.IsHermitian(1e-12) {
		t.Error("FB matrix must stay Hermitian")
	}
	// FB is idempotent up to the persymmetric projection: applying it
	// twice equals applying it once.
	if !ForwardBackward(fb).Equalish(fb, 1e-12) {
		t.Error("FB not idempotent")
	}
	// Trace is preserved.
	var tr, trFB float64
	for i := 0; i < 6; i++ {
		tr += real(r.At(i, i))
		trFB += real(fb.At(i, i))
	}
	if math.Abs(tr-trFB) > 1e-9 {
		t.Errorf("trace changed: %v vs %v", tr, trFB)
	}
}

func TestForwardBackwardDecorrelatesCoherentPair(t *testing.T) {
	// Two fully coherent sources: plain R has signal rank 1; FB
	// averaging should raise the effective signal rank toward 2,
	// visible in the second-largest eigenvalue.
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	v1 := a.SteeringVector(geom.Rad(50), lambda)
	v2 := a.SteeringVector(geom.Rad(120), lambda)
	sum := make([]complex128, 8)
	for i := range sum {
		sum[i] = v1[i] + 0.9i*v2[i]
	}
	r := mat.New(8, 8)
	r.OuterAccumulate(sum, 1)
	ePlain, err := mat.EigHermitian(r)
	if err != nil {
		t.Fatal(err)
	}
	eFB, err := mat.EigHermitian(ForwardBackward(r))
	if err != nil {
		t.Fatal(err)
	}
	if eFB.Values[6] <= ePlain.Values[6]+1e-9 {
		t.Errorf("FB second eigenvalue %v not above plain %v", eFB.Values[6], ePlain.Values[6])
	}
}

func TestMUSICQuickFreeSpaceProperty(t *testing.T) {
	// Property: for a random off-axis bearing and random noise seed,
	// the MUSIC peak lands within 3° of the true bearing or its
	// mirror.
	f := func(seed int64, bearingIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		// Off-axis bearings only: 20°..160°.
		th := geom.Rad(20 + float64(bearingIdx%141))
		a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
		streams := synth(a, []float64{th}, []complex128{1}, 30, false, 0.02, rng)
		spec, err := ComputeSpectrum(a, streams, Options{
			Wavelength: lambda, SmoothingGroups: 2, ForwardBackward: true,
		})
		if err != nil {
			return false
		}
		_, bin := spec.Max()
		got := spec.Theta(bin)
		return geom.AngleDiff(got, th) <= geom.Rad(3) ||
			geom.AngleDiff(got, 2*math.Pi-th) <= geom.Rad(3)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSpectrumNormalizeIdempotentProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 3 {
			return true
		}
		s := NewSpectrum(len(vals))
		for i, v := range vals {
			s.P[i] = math.Abs(v)
		}
		once := s.Clone().Normalize()
		twice := once.Clone().Normalize()
		return reflect.DeepEqual(once.P, twice.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSubspacesMaxDCap(t *testing.T) {
	// A matrix with 4 strong eigenvalues but maxD=2 must report D=2.
	r := mat.New(6, 6)
	a := array.NewLinear(geom.Pt(0, 0), 0, 6, lambda)
	for _, th := range []float64{0.5, 1.1, 1.9, 2.6} {
		r.OuterAccumulate(a.SteeringVector(th, lambda), 1)
	}
	for i := 0; i < 6; i++ {
		r.Set(i, i, r.At(i, i)+0.001)
	}
	noise, _, d, err := Subspaces(r, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 || noise.Cols != 4 {
		t.Errorf("capped D = %d (noise %d), want 2 (4)", d, noise.Cols)
	}
}

func TestBartlettNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := array.NewLinear(geom.Pt(0, 0), 0, 4, lambda)
	snaps := make([][]complex128, 20)
	for i := range snaps {
		snaps[i] = randomSig(4, rng)
	}
	r, _ := CorrelationMatrix(snaps)
	b := Bartlett(r, func(th float64) []complex128 { return a.SteeringVector(th, lambda) }, 180)
	for i, v := range b.P {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("Bartlett bin %d = %v", i, v)
		}
	}
}

func TestGeometryWeightingArbitraryOrient(t *testing.T) {
	// The axis of a rotated array must be the de-weighted direction.
	orient := geom.Rad(40)
	s := NewSpectrum(360)
	for i := range s.P {
		s.P[i] = 0.1
	}
	s.P[40] = 1 // on the rotated axis
	var neutral float64
	for _, v := range s.P {
		neutral += v
	}
	neutral /= 360
	s.ApplyGeometryWeighting(orient)
	if math.Abs(s.P[40]-neutral) > 1e-9 {
		t.Errorf("rotated axis bin = %v, want neutral %v", s.P[40], neutral)
	}
	if s.P[130] != 0.1 { // broadside of the rotated array
		t.Errorf("rotated broadside modified: %v", s.P[130])
	}
}

func TestSymmetryRemovalLeavesAxisBins(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	a.NinthAntenna = true
	streams := synth(a, []float64{geom.Rad(70)}, []complex128{1}, 50, false, 0.01, rng)
	spec, err := ComputeSpectrum(a, streams[:8], Options{Wavelength: lambda, SmoothingGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Put sentinel values near the axis; they must be untouched.
	spec.P[5] = 0.42
	spec.P[355] = 0.42
	snaps := SnapshotsFromStreams(streams, 0)
	rFull, _ := CorrelationMatrix(snaps)
	SymmetryRemoval(spec, a, rFull, lambda)
	if spec.P[5] != 0.42 || spec.P[355] != 0.42 {
		t.Errorf("axis bins modified: %v %v", spec.P[5], spec.P[355])
	}
}

func TestComputeSpectrumWithFBAndOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	want := geom.Rad(100)
	streams := synth(a, []float64{want}, []complex128{1}, 200, false, 0.02, rng)
	spec, err := ComputeSpectrum(a, streams, Options{
		Wavelength:      lambda,
		SmoothingGroups: 2,
		MaxSamples:      10,
		SampleOffset:    100,
		ForwardBackward: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, bin := spec.Max()
	got := spec.Theta(bin)
	if geom.AngleDiff(got, want) > geom.Rad(2) && geom.AngleDiff(got, 2*math.Pi-want) > geom.Rad(2) {
		t.Errorf("peak %.1f°, want %.1f°", geom.Deg(got), geom.Deg(want))
	}
}

func TestMUSICWithCmplxImport(t *testing.T) {
	// Guard: steering vectors are unit-modulus.
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	for _, v := range a.SteeringVector(1.234, lambda) {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Fatalf("steering element modulus %v", cmplx.Abs(v))
		}
	}
}
