package music

// Steering-vector caching. MUSIC and Bartlett evaluate a(θ) for every
// one of the spectrum's bins (360 by default) on every frame, and the
// seed implementation allocated a fresh []complex128 per bin per call —
// the hottest allocation site in the whole pipeline. The steering
// vector depends only on the array *geometry* (element layout relative
// to element 0), the carrier wavelength, and the bin count — not on the
// array's position or on the received samples — so one precomputed
// table serves every frame of every client heard by an AP with that
// geometry, and identical APs share a single table.

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/mat"
)

// SteeringTable holds a(θᵢ) for every bin bearing θᵢ = 2πi/bins of one
// (array geometry, wavelength, bins) combination, stored row-major.
// Tables are immutable after construction and safe for concurrent use.
type SteeringTable struct {
	bins int
	n    int // elements per steering vector
	data []complex128
}

// NewSteeringTable precomputes the steering matrix for the array's full
// element set (ninth antenna included when present).
func NewSteeringTable(a *array.Array, lambda float64, bins int) *SteeringTable {
	n := a.NumElements()
	t := &SteeringTable{bins: bins, n: n, data: make([]complex128, bins*n)}
	for i := 0; i < bins; i++ {
		theta := 2 * math.Pi * float64(i) / float64(bins)
		copy(t.data[i*n:(i+1)*n], a.SteeringVector(theta, lambda))
	}
	return t
}

// Bins returns the table's angular resolution.
func (t *SteeringTable) Bins() int { return t.bins }

// Elements returns the length of each steering vector.
func (t *SteeringTable) Elements() int { return t.n }

// Vector returns a(θᵢ) as a read-only view into the table. Callers must
// not modify it; slice it ([:sub]) to restrict to a leading subarray.
func (t *SteeringTable) Vector(i int) []complex128 {
	return t.data[i*t.n : (i+1)*t.n : (i+1)*t.n]
}

// steeringKey captures everything a steering table depends on. The
// array's absolute position cancels out of the element-relative phase
// differences, so two APs at different positions with the same layout
// share one table.
type steeringKey struct {
	geom    array.Geometry
	n       int
	ninth   bool
	spacing float64
	orient  float64
	lambda  float64
	bins    int
}

func keyFor(a *array.Array, lambda float64, bins int) steeringKey {
	return steeringKey{
		geom:    a.Geom,
		n:       a.N,
		ninth:   a.NinthAntenna && a.Geom == array.Linear,
		spacing: a.Spacing,
		orient:  a.Orient,
		lambda:  lambda,
		bins:    bins,
	}
}

// SteeringCache memoizes steering tables per geometry key. It is safe
// for concurrent use; lookups on the hot path take only a read lock.
type SteeringCache struct {
	mu     sync.RWMutex
	tables map[steeringKey]*SteeringTable
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewSteeringCache returns an empty cache.
func NewSteeringCache() *SteeringCache {
	return &SteeringCache{tables: make(map[steeringKey]*SteeringTable)}
}

var sharedSteering = NewSteeringCache()

// SharedSteeringCache returns the process-wide cache that
// core.DefaultConfig wires into every pipeline by default.
func SharedSteeringCache() *SteeringCache { return sharedSteering }

// Table returns the steering table for (array geometry, wavelength,
// bins), computing and memoizing it on first use. Concurrent first
// lookups may compute the table more than once; exactly one result is
// kept, so callers always converge on a canonical table.
func (c *SteeringCache) Table(a *array.Array, lambda float64, bins int) *SteeringTable {
	key := keyFor(a, lambda, bins)
	c.mu.RLock()
	t, ok := c.tables[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return t
	}

	fresh := NewSteeringTable(a, lambda, bins)
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.tables[key]; ok {
		c.hits.Add(1)
		return t
	}
	c.misses.Add(1)
	c.tables[key] = fresh
	return fresh
}

// Len returns the number of distinct tables held.
func (c *SteeringCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tables)
}

// Stats returns cumulative hit and miss counts (diagnostics).
func (c *SteeringCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// MUSICWithTable is MUSIC evaluated against a precomputed steering
// table: identical arithmetic, no per-bin allocation. The noise
// subspace may span a leading subarray (spatial smoothing shrinks it);
// each table row is truncated to en.Rows elements.
func MUSICWithTable(en *mat.Matrix, tab *SteeringTable) *Spectrum {
	return musicSpectrum(en, tab.bins, func(i int, _ float64) []complex128 {
		return tab.Vector(i)[:en.Rows]
	})
}

// BartlettWithTable is Bartlett evaluated against a precomputed
// steering table.
func BartlettWithTable(r *mat.Matrix, tab *SteeringTable) *Spectrum {
	return bartlettSpectrum(r, tab.bins, func(i int, _ float64) []complex128 {
		return tab.Vector(i)[:r.Cols]
	})
}

// SymmetryRemovalCached is SymmetryRemoval drawing its Bartlett
// steering vectors from the cache when one is provided (nil falls back
// to per-bin computation).
func SymmetryRemovalCached(s *Spectrum, a *array.Array, rFull *mat.Matrix, wavelength float64, cache *SteeringCache) *Spectrum {
	var b *Spectrum
	if cache != nil {
		b = BartlettWithTable(rFull, cache.Table(a, wavelength, s.Bins()))
	} else {
		b = Bartlett(rFull, func(theta float64) []complex128 {
			return a.SteeringVector(theta, wavelength)
		}, s.Bins())
	}
	return symmetryRemovalAgainst(s, a, b)
}
