package music

// Steering-vector caching. MUSIC and Bartlett evaluate a(θ) for every
// one of the spectrum's bins (360 by default) on every frame, and the
// seed implementation allocated a fresh []complex128 per bin per call —
// the hottest allocation site in the whole pipeline. The steering
// vector depends only on the array *geometry* (element layout relative
// to element 0), the carrier wavelength, and the bin count — not on the
// array's position or on the received samples — so one precomputed
// table serves every frame of every client heard by an AP with that
// geometry, and identical APs share a single table.

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/array"
	"repro/internal/mat"
)

// SteeringTable holds a(θᵢ) for every bin bearing θᵢ = 2πi/bins of one
// (array geometry, wavelength, bins) combination, stored row-major.
// Tables are immutable after construction and safe for concurrent use.
type SteeringTable struct {
	bins int
	n    int // elements per steering vector
	data []complex128
	// Split re/im planes of data (same row-major layout), feeding the
	// packed spectrum scans in packed.go. Values are exactly
	// real(data[i])/imag(data[i]), so packed and complex consumers see
	// the same table.
	re, im []float64
}

// NewSteeringTable precomputes the steering matrix for the array's full
// element set (ninth antenna included when present).
func NewSteeringTable(a *array.Array, lambda float64, bins int) *SteeringTable {
	n := a.NumElements()
	t := &SteeringTable{
		bins: bins, n: n,
		data: make([]complex128, bins*n),
		re:   make([]float64, bins*n),
		im:   make([]float64, bins*n),
	}
	for i := 0; i < bins; i++ {
		theta := 2 * math.Pi * float64(i) / float64(bins)
		copy(t.data[i*n:(i+1)*n], a.SteeringVector(theta, lambda))
	}
	for i, v := range t.data {
		t.re[i] = real(v)
		t.im[i] = imag(v)
	}
	return t
}

// Bins returns the table's angular resolution.
func (t *SteeringTable) Bins() int { return t.bins }

// Elements returns the length of each steering vector.
func (t *SteeringTable) Elements() int { return t.n }

// Vector returns a(θᵢ) as a read-only view into the table. Callers must
// not modify it; slice it ([:sub]) to restrict to a leading subarray.
func (t *SteeringTable) Vector(i int) []complex128 {
	return t.data[i*t.n : (i+1)*t.n : (i+1)*t.n]
}

// steeringKey captures everything a steering table depends on. The
// array's absolute position cancels out of the element-relative phase
// differences, so two APs at different positions with the same layout
// share one table.
type steeringKey struct {
	geom    array.Geometry
	n       int
	ninth   bool
	spacing float64
	orient  float64
	lambda  float64
	bins    int
}

func keyFor(a *array.Array, lambda float64, bins int) steeringKey {
	return steeringKey{
		geom:    a.Geom,
		n:       a.N,
		ninth:   a.NinthAntenna && a.Geom == array.Linear,
		spacing: a.Spacing,
		orient:  a.Orient,
		lambda:  lambda,
		bins:    bins,
	}
}

// DefaultSteeringCacheBudget bounds the process-wide shared cache. A
// 360-bin, 9-element table costs ~52 KB, so the default holds several
// hundred distinct geometries — far beyond any static deployment, but
// a hard ceiling if per-request array geometries ever arrive from the
// wire.
const DefaultSteeringCacheBudget int64 = 32 << 20

// steeringEntryOverhead approximates an entry's fixed footprint
// (struct, map header, LRU links) so small tables are not
// undercounted.
const steeringEntryOverhead = 128

// steeringCost is one table's accounted byte footprint: the complex
// table plus its two split planes.
func steeringCost(t *SteeringTable) int64 {
	return int64(len(t.data))*16 + int64(len(t.re)+len(t.im))*8 + steeringEntryOverhead
}

// steeringEntry is one cached table with its LRU links and cost.
type steeringEntry struct {
	key        steeringKey
	table      *SteeringTable
	cost       int64
	prev, next *steeringEntry
}

// SteeringUsage is a snapshot of the cache's accounting and counters,
// surfaced through engine.Stats and the server's stats dump.
type SteeringUsage struct {
	// Entries is the number of tables held.
	Entries int
	// Bytes is the summed cost of held tables; never exceeds Budget
	// when a budget is set.
	Bytes int64
	// Budget is the configured byte cap (0 = unbounded).
	Budget int64
	// Hits and Misses count lookups; Evictions counts tables dropped
	// (or served unretained) to stay within the budget.
	Hits, Misses, Evictions uint64
}

// SteeringCache memoizes steering tables per geometry key under an
// optional byte budget, with the same size-accounted LRU treatment as
// core.SynthCache: entry cost is the table footprint, the reported
// size is the exact sum of held costs, eviction happens inside the
// insert's critical section (the visible size never exceeds the
// budget), and an entry larger than the whole budget is served
// without being retained. Safe for concurrent use. Geometry keys are
// a handful in static deployments, so one mutex (not shards) keeps
// the hot path a single short critical section that also freshens
// recency.
type SteeringCache struct {
	budget atomic.Int64 // 0 means unbounded; resized by SetBudget

	mu      sync.Mutex
	tables  map[steeringKey]*steeringEntry
	head    *steeringEntry
	tail    *steeringEntry
	bytes   int64
	hits    atomic.Uint64
	misses  atomic.Uint64
	evicted atomic.Uint64
}

// NewSteeringCache returns an empty, unbounded cache (the static-
// deployment configuration: a handful of geometries ever).
func NewSteeringCache() *SteeringCache { return NewSteeringCacheBudget(0) }

// NewSteeringCacheBudget returns an empty cache holding at most
// budget bytes of table state (0 = unbounded).
func NewSteeringCacheBudget(budget int64) *SteeringCache {
	if budget < 0 {
		budget = 0
	}
	c := &SteeringCache{tables: make(map[steeringKey]*steeringEntry)}
	c.budget.Store(budget)
	return c
}

var sharedSteering = NewSteeringCacheBudget(DefaultSteeringCacheBudget)

// SharedSteeringCache returns the process-wide cache that
// core.DefaultConfig wires into every pipeline by default.
func SharedSteeringCache() *SteeringCache { return sharedSteering }

// Budget returns the live byte cap (0 = unbounded).
func (c *SteeringCache) Budget() int64 { return c.budget.Load() }

// SetBudget hot-reloads the byte cap (≤0 = unbounded). Shrinking
// evicts least-recently-used tables inside the cache's critical
// section before returning; growing leaves more room. Tables already
// handed out stay valid — they are immutable.
func (c *SteeringCache) SetBudget(budget int64) {
	if budget < 0 {
		budget = 0
	}
	c.budget.Store(budget)
	c.mu.Lock()
	c.evictOverLocked()
	c.mu.Unlock()
}

// evictOverLocked drops LRU tables until the cache fits its budget.
// Caller holds c.mu.
func (c *SteeringCache) evictOverLocked() {
	budget := c.budget.Load()
	for budget > 0 && c.bytes > budget && c.tail != nil {
		victim := c.tail
		c.unlink(victim)
		delete(c.tables, victim.key)
		c.bytes -= victim.cost
		c.evicted.Add(1)
	}
}

func (c *SteeringCache) unlink(e *steeringEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *SteeringCache) pushFront(e *steeringEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *SteeringCache) moveFront(e *steeringEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// Table returns the steering table for (array geometry, wavelength,
// bins), computing and memoizing it on first use. Concurrent first
// lookups may compute the table more than once; exactly one result is
// kept, so callers always converge on a canonical table (unless the
// budget forces pass-through, in which case each caller keeps its own
// identical copy for the duration of the call).
func (c *SteeringCache) Table(a *array.Array, lambda float64, bins int) *SteeringTable {
	key := keyFor(a, lambda, bins)
	c.mu.Lock()
	if e, ok := c.tables[key]; ok {
		c.moveFront(e)
		c.mu.Unlock()
		c.hits.Add(1)
		return e.table
	}
	c.mu.Unlock()

	fresh := NewSteeringTable(a, lambda, bins)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.tables[key]; ok {
		c.moveFront(e)
		c.hits.Add(1)
		return e.table
	}
	c.misses.Add(1)
	e := &steeringEntry{key: key, table: fresh, cost: steeringCost(fresh)}
	if budget := c.budget.Load(); budget > 0 && e.cost > budget {
		// Larger than the whole budget: serve without retaining, and
		// without flushing innocent residents first.
		c.evicted.Add(1)
		return fresh
	}
	c.tables[key] = e
	c.pushFront(e)
	c.bytes += e.cost
	c.evictOverLocked()
	return fresh
}

// Len returns the number of distinct tables held.
func (c *SteeringCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tables)
}

// Stats returns cumulative hit and miss counts (diagnostics).
func (c *SteeringCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Usage returns the cache's accounting snapshot.
func (c *SteeringCache) Usage() SteeringUsage {
	u := SteeringUsage{
		Budget:    c.budget.Load(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicted.Load(),
	}
	c.mu.Lock()
	u.Entries = len(c.tables)
	u.Bytes = c.bytes
	c.mu.Unlock()
	return u
}

// MUSICWithTable is MUSIC evaluated against a precomputed steering
// table via the packed split-plane scan (packed.go): value-identical
// arithmetic, no per-bin allocation. The noise subspace may span a
// leading subarray (spatial smoothing shrinks it); each table row is
// truncated to en.Rows elements.
func MUSICWithTable(en *mat.Matrix, tab *SteeringTable) *Spectrum {
	return MUSICWithTableWS(nil, en, tab)
}

// BartlettWithTable is Bartlett evaluated against a precomputed
// steering table via the packed scan.
func BartlettWithTable(r *mat.Matrix, tab *SteeringTable) *Spectrum {
	return BartlettWithTableWS(nil, r, tab)
}

// SymmetryRemovalCached is SymmetryRemoval drawing its Bartlett
// steering vectors from the cache when one is provided (nil falls back
// to per-bin computation).
func SymmetryRemovalCached(s *Spectrum, a *array.Array, rFull *mat.Matrix, wavelength float64, cache *SteeringCache) *Spectrum {
	return SymmetryRemovalCachedWS(nil, s, a, rFull, wavelength, cache)
}

// SymmetryRemovalCachedWS is SymmetryRemovalCached drawing the packed
// Bartlett scan's scratch planes from ws (nil allocates).
func SymmetryRemovalCachedWS(ws *Workspace, s *Spectrum, a *array.Array, rFull *mat.Matrix, wavelength float64, cache *SteeringCache) *Spectrum {
	var b *Spectrum
	if cache != nil {
		b = BartlettWithTableWS(ws, rFull, cache.Table(a, wavelength, s.Bins()))
	} else {
		b = Bartlett(rFull, func(theta float64) []complex128 {
			return a.SteeringVector(theta, wavelength)
		}, s.Bins())
	}
	return symmetryRemovalAgainst(s, a, b)
}
