package music

// Per-worker scratch state for the spectrum pipeline. The seed
// allocated correlation matrices, eigen-scratch, subspaces, and
// snapshot vectors afresh for every frame; at engine rates that garbage
// dominated the profile. A Workspace owns one reusable copy of each
// intermediate, and every stage of the §2.3 chain has a WS variant
// threaded through it. A nil workspace reproduces the allocating seed
// path exactly, and the arithmetic is shared, so workspace and
// allocating spectra are bit-for-bit identical (pinned by
// TestWorkspaceSpectrumBitIdentical).

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/mat"
)

// Workspace holds every buffer one spectrum computation needs. It is
// owned by exactly one goroutine at a time (use a WorkspacePool to
// share across workers) and grows to the largest problem it has seen.
// The zero value is ready to use.
type Workspace struct {
	snapRows [][]complex128
	snapData []complex128
	r        *mat.Matrix
	fb       *mat.Matrix
	rs       *mat.Matrix
	eig      mat.EigWorkspace
	noise    *mat.Matrix
	signal   *mat.Matrix

	// Split-plane scratch for the packed spectrum scans (packed.go):
	// the noise subspace packed column-major, and the Bartlett scan's
	// correlation planes plus its R·a intermediate.
	enRe, enIm []float64
	rRe, rIm   []float64
	raRe, raIm []float64
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// WorkspacePool is a typed sync.Pool of Workspaces: one Get/Put pair
// per localization job keeps steady-state allocations near zero
// without binding workspaces to specific worker goroutines. A nil
// *WorkspacePool is valid and degrades to the allocating path (Get
// returns nil).
type WorkspacePool struct {
	p sync.Pool
}

// NewWorkspacePool returns an empty pool.
func NewWorkspacePool() *WorkspacePool {
	wp := &WorkspacePool{}
	wp.p.New = func() any { return NewWorkspace() }
	return wp
}

// Get returns a workspace from the pool (nil if the pool itself is
// nil, selecting the allocating path downstream).
func (wp *WorkspacePool) Get() *Workspace {
	if wp == nil {
		return nil
	}
	return wp.p.Get().(*Workspace)
}

// Put returns a workspace to the pool. Nil pools and nil workspaces
// are no-ops.
func (wp *WorkspacePool) Put(ws *Workspace) {
	if wp == nil || ws == nil {
		return
	}
	wp.p.Put(ws)
}

var sharedWorkspaces = NewWorkspacePool()

// SharedWorkspacePool returns the process-wide pool that
// core.DefaultConfig wires into every pipeline by default.
func SharedWorkspacePool() *WorkspacePool { return sharedWorkspaces }

// SnapshotsAtWS is SnapshotsAt writing into workspace-owned storage:
// one flat sample buffer plus a reusable row-header slice. Returned
// rows are valid until the workspace's next use; a nil ws allocates.
func SnapshotsAtWS(ws *Workspace, streams [][]complex128, offset, maxSamples int) [][]complex128 {
	if ws == nil {
		return SnapshotsAt(streams, offset, maxSamples)
	}
	if len(streams) == 0 {
		return nil
	}
	ns := len(streams[0])
	if offset < 0 || offset >= ns {
		offset = 0
	}
	n := ns - offset
	if maxSamples > 0 && n > maxSamples {
		n = maxSamples
	}
	m := len(streams)
	if cap(ws.snapData) < n*m {
		ws.snapData = make([]complex128, n*m)
	}
	ws.snapData = ws.snapData[:n*m]
	if cap(ws.snapRows) < n {
		ws.snapRows = make([][]complex128, n)
	}
	ws.snapRows = ws.snapRows[:n]
	for t := 0; t < n; t++ {
		v := ws.snapData[t*m : (t+1)*m : (t+1)*m]
		for k := range streams {
			v[k] = streams[k][offset+t]
		}
		ws.snapRows[t] = v
	}
	return ws.snapRows
}

// CorrelationMatrixWS is CorrelationMatrix accumulating into a
// workspace-owned matrix. The returned matrix aliases ws and is valid
// until the workspace's next correlation; a nil ws allocates.
func CorrelationMatrixWS(ws *Workspace, snapshots [][]complex128) (*mat.Matrix, error) {
	if len(snapshots) == 0 {
		return nil, errors.New("music: no snapshots")
	}
	m := len(snapshots[0])
	var r *mat.Matrix
	if ws == nil {
		r = mat.New(m, m)
	} else {
		ws.r = mat.ReuseMatrix(ws.r, m, m).Zero()
		r = ws.r
	}
	w := 1 / float64(len(snapshots))
	for _, x := range snapshots {
		if len(x) != m {
			return nil, fmt.Errorf("music: ragged snapshot (%d vs %d antennas)", len(x), m)
		}
		r.OuterAccumulate(x, w)
	}
	return r, nil
}

// ForwardBackwardWS is ForwardBackward writing into a workspace-owned
// matrix (distinct from ws's correlation matrix, so the input may be
// the result of CorrelationMatrixWS).
func ForwardBackwardWS(ws *Workspace, r *mat.Matrix) *mat.Matrix {
	m := r.Rows
	var out *mat.Matrix
	if ws == nil {
		out = mat.New(m, m)
	} else {
		ws.fb = mat.ReuseMatrix(ws.fb, m, m)
		out = ws.fb
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			v := r.At(i, j)
			w := r.At(m-1-i, m-1-j)
			out.Set(i, j, (v+complex(real(w), -imag(w)))/2)
		}
	}
	return out
}

// SpatialSmoothWS is SpatialSmooth writing into a workspace-owned
// matrix. The summation order over subarray groups matches the
// allocating version element for element, so outputs are bit-identical.
func SpatialSmoothWS(ws *Workspace, r *mat.Matrix, ng int) (*mat.Matrix, error) {
	m := r.Rows
	if r.Cols != m {
		return nil, errors.New("music: correlation matrix must be square")
	}
	if ng < 1 || ng >= m {
		return nil, fmt.Errorf("music: invalid smoothing groups %d for %d antennas", ng, m)
	}
	sub := m - ng + 1
	var out *mat.Matrix
	if ws == nil {
		out = mat.New(sub, sub)
	} else {
		ws.rs = mat.ReuseMatrix(ws.rs, sub, sub).Zero()
		out = ws.rs
	}
	for g := 0; g < ng; g++ {
		for i := 0; i < sub; i++ {
			src := r.Data[(g+i)*m+g : (g+i)*m+g+sub]
			dst := out.Data[i*sub : (i+1)*sub]
			for j, v := range src {
				dst[j] += v
			}
		}
	}
	scale := complex(1/float64(ng), 0)
	for i := range out.Data {
		out.Data[i] *= scale
	}
	return out, nil
}

// SubspacesWS is Subspaces drawing its eigendecomposition scratch and
// subspace matrices from the workspace. The returned matrices alias ws
// and are valid until its next use; a nil ws allocates.
func SubspacesWS(ws *Workspace, r *mat.Matrix, thresholdFrac float64, maxD int) (noise, signal *mat.Matrix, d int, err error) {
	var ews *mat.EigWorkspace
	if ws != nil {
		ews = &ws.eig
	}
	e, err := mat.EigHermitianWS(r, ews)
	if err != nil {
		return nil, nil, 0, err
	}
	m := r.Rows
	top := e.Values[m-1]
	d = 0
	for _, v := range e.Values {
		if v > thresholdFrac*top {
			d++
		}
	}
	if maxD > 0 && d > maxD {
		d = maxD
	}
	if d >= m {
		d = m - 1
	}
	if d < 1 {
		d = 1
	}
	nN := m - d
	if ws == nil {
		noise = mat.New(m, nN)
		signal = mat.New(m, d)
	} else {
		ws.noise = mat.ReuseMatrix(ws.noise, m, nN)
		ws.signal = mat.ReuseMatrix(ws.signal, m, d)
		noise, signal = ws.noise, ws.signal
	}
	for k := 0; k < nN; k++ {
		for i := 0; i < m; i++ {
			noise.Set(i, k, e.Vectors.At(i, k))
		}
	}
	for k := 0; k < d; k++ {
		for i := 0; i < m; i++ {
			signal.Set(i, k, e.Vectors.At(i, nN+k))
		}
	}
	return noise, signal, d, nil
}
