package music

import (
	"math/rand"
	"testing"

	"repro/internal/array"
	"repro/internal/geom"
)

// packedTestSetup builds a noise subspace and full-row correlation from
// random coherent streams, the shapes the pipeline feeds the scans.
func packedTestSetup(t *testing.T, rng *rand.Rand, nAnt int) (*array.Array, *Workspace, Options) {
	t.Helper()
	a := array.NewLinear(geom.Pt(0, 0), 0, nAnt, lambda)
	opt := Options{
		Wavelength:      lambda,
		SmoothingGroups: 2,
		MaxSamples:      10,
		ForwardBackward: true,
		Steering:        NewSteeringCache(),
	}
	return a, NewWorkspace(), opt
}

func randomStreams(rng *rand.Rand, nAnt, nSamples int) [][]complex128 {
	streams := make([][]complex128, nAnt)
	for i := range streams {
		streams[i] = make([]complex128, nSamples)
		for j := range streams[i] {
			streams[i][j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	return streams
}

// TestPackedScansMatchClosurePaths pins the packed MUSIC and Bartlett
// table scans bit-identical against the closure-based scalar scans
// (musicSpectrum / bartlettSpectrum over Vector views) on random
// subspaces — with and without a workspace, so the plane-packing path
// is exercised both ways.
func TestPackedScansMatchClosurePaths(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		nAnt := 4 + rng.Intn(5)
		a, ws, opt := packedTestSetup(t, rng, nAnt)
		streams := randomStreams(rng, nAnt, 16)
		snaps := SnapshotsAt(streams, 0, 10)
		r, err := CorrelationMatrix(snaps)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := SpatialSmooth(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		noise, _, _, err := Subspaces(rs, 0.05, rs.Rows/2)
		if err != nil {
			t.Fatal(err)
		}
		tab := opt.Steering.Table(a, lambda, DefaultBins)

		// MUSIC: packed (ws and nil-ws) vs the closure scan.
		want := musicSpectrum(noise, tab.Bins(), func(i int, _ float64) []complex128 {
			return tab.Vector(i)[:noise.Rows]
		})
		for _, got := range []*Spectrum{
			MUSICWithTableWS(ws, noise, tab),
			MUSICWithTableWS(nil, noise, tab),
		} {
			for i := range want.P {
				if got.P[i] != want.P[i] {
					t.Fatalf("trial %d: MUSIC bin %d differs: %v vs %v", trial, i, got.P[i], want.P[i])
				}
			}
		}

		// Bartlett: packed vs the closure scan on the full-row matrix.
		wantB := bartlettSpectrum(r, tab.Bins(), func(i int, _ float64) []complex128 {
			return tab.Vector(i)[:r.Cols]
		})
		for _, got := range []*Spectrum{
			BartlettWithTableWS(ws, r, tab),
			BartlettWithTableWS(nil, r, tab),
		} {
			for i := range wantB.P {
				if got.P[i] != wantB.P[i] {
					t.Fatalf("trial %d: Bartlett bin %d differs: %v vs %v", trial, i, got.P[i], wantB.P[i])
				}
			}
		}
	}
}

func BenchmarkMUSICWithTableWS(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	streams := randomStreams(rng, 8, 16)
	snaps := SnapshotsAt(streams, 0, 10)
	r, _ := CorrelationMatrix(snaps)
	rs, _ := SpatialSmooth(r, 2)
	noise, _, _, _ := Subspaces(rs, 0.05, rs.Rows/2)
	cache := NewSteeringCache()
	tab := cache.Table(a, lambda, DefaultBins)
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MUSICWithTableWS(ws, noise, tab)
	}
}

// BenchmarkMUSICWithTableClosure is the pre-packing scan, kept for the
// kernels experiment's before/after trajectory.
func BenchmarkMUSICWithTableClosure(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	streams := randomStreams(rng, 8, 16)
	snaps := SnapshotsAt(streams, 0, 10)
	r, _ := CorrelationMatrix(snaps)
	rs, _ := SpatialSmooth(r, 2)
	noise, _, _, _ := Subspaces(rs, 0.05, rs.Rows/2)
	cache := NewSteeringCache()
	tab := cache.Table(a, lambda, DefaultBins)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		musicSpectrum(noise, tab.Bins(), func(i int, _ float64) []complex128 {
			return tab.Vector(i)[:noise.Rows]
		})
	}
}
