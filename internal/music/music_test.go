package music

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/mat"
)

const lambda = 0.1225

// synth produces per-antenna streams for sources at the given bearings
// with the given complex amplitudes; each source transmits a random
// unit-power sequence (independent across sources unless coherent is
// true, in which case all sources share one sequence — the multipath
// condition).
func synth(a *array.Array, bearings []float64, amps []complex128, ns int, coherent bool, noiseSD float64, rng *rand.Rand) [][]complex128 {
	n := a.NumElements()
	streams := make([][]complex128, n)
	for k := range streams {
		streams[k] = make([]complex128, ns)
	}
	var shared []complex128
	if coherent {
		shared = randomSig(ns, rng)
	}
	for si, th := range bearings {
		sig := shared
		if !coherent {
			sig = randomSig(ns, rng)
		}
		steer := a.SteeringVector(th, lambda)
		for k := 0; k < n; k++ {
			g := amps[si] * steer[k]
			for t := 0; t < ns; t++ {
				streams[k][t] += g * sig[t]
			}
		}
	}
	if noiseSD > 0 {
		for k := 0; k < n; k++ {
			for t := 0; t < ns; t++ {
				streams[k][t] += complex(rng.NormFloat64()*noiseSD, rng.NormFloat64()*noiseSD)
			}
		}
	}
	return streams
}

func randomSig(ns int, rng *rand.Rand) []complex128 {
	s := make([]complex128, ns)
	for i := range s {
		s[i] = cmplx.Rect(1, rng.Float64()*2*math.Pi)
	}
	return s
}

func TestSpectrumBasics(t *testing.T) {
	s := NewSpectrum(360)
	if s.Bins() != 360 {
		t.Fatal("bins")
	}
	s.P[90] = 2
	if v, i := s.Max(); v != 2 || i != 90 {
		t.Errorf("Max = %v,%v", v, i)
	}
	s.Normalize()
	if s.P[90] != 1 {
		t.Error("Normalize failed")
	}
	if got := s.Theta(90); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("Theta(90) = %v", got)
	}
	if got := s.BinOf(math.Pi / 2); got != 90 {
		t.Errorf("BinOf = %d", got)
	}
	if got := s.BinOf(-math.Pi / 2); got != 270 {
		t.Errorf("BinOf negative = %d", got)
	}
}

func TestSpectrumAtInterpolates(t *testing.T) {
	s := NewSpectrum(360)
	s.P[10] = 1
	s.P[11] = 3
	mid := s.At(geom.Rad(10.5))
	if math.Abs(mid-2) > 1e-9 {
		t.Errorf("At interpolation = %v, want 2", mid)
	}
	// Wraparound interpolation between bin 359 and 0.
	s2 := NewSpectrum(360)
	s2.P[359] = 2
	s2.P[0] = 4
	if got := s2.At(geom.Rad(359.5)); math.Abs(got-3) > 1e-9 {
		t.Errorf("wraparound At = %v, want 3", got)
	}
}

func TestPeaksFindsLocalMaxima(t *testing.T) {
	s := NewSpectrum(360)
	gauss := func(center int, w float64, amp float64) {
		for i := range s.P {
			d := float64(((i - center + 540) % 360) - 180)
			s.P[i] += amp * math.Exp(-d*d/(2*w*w))
		}
	}
	gauss(45, 4, 1.0)
	gauss(200, 4, 0.6)
	peaks := s.Peaks(0.1)
	if len(peaks) != 2 {
		t.Fatalf("peaks = %d, want 2", len(peaks))
	}
	if peaks[0].Bin != 45 || peaks[1].Bin != 200 {
		t.Errorf("peak bins = %d,%d", peaks[0].Bin, peaks[1].Bin)
	}
	if peaks[0].Power < peaks[1].Power {
		t.Error("peaks not sorted by power")
	}
	// Raising the threshold drops the weaker peak.
	if got := s.Peaks(0.9); len(got) != 1 {
		t.Errorf("thresholded peaks = %d", len(got))
	}
}

func TestPeaksDegenerate(t *testing.T) {
	if NewSpectrum(2).Peaks(0.1) != nil {
		t.Error("tiny spectrum should have no peaks")
	}
	if NewSpectrum(10).Peaks(0.1) != nil {
		t.Error("zero spectrum should have no peaks")
	}
}

func TestCorrelationMatrixProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	snaps := make([][]complex128, 50)
	for i := range snaps {
		snaps[i] = randomSig(4, rng)
	}
	r, err := CorrelationMatrix(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsHermitian(1e-12) {
		t.Error("correlation matrix must be Hermitian")
	}
	// Diagonal = mean power = 1 for unit-modulus signals.
	for i := 0; i < 4; i++ {
		if math.Abs(real(r.At(i, i))-1) > 1e-9 {
			t.Errorf("diagonal %d = %v", i, r.At(i, i))
		}
	}
	if _, err := CorrelationMatrix(nil); err == nil {
		t.Error("empty snapshots should error")
	}
	if _, err := CorrelationMatrix([][]complex128{{1}, {1, 2}}); err == nil {
		t.Error("ragged snapshots should error")
	}
}

func TestSnapshotsFromStreams(t *testing.T) {
	streams := [][]complex128{{1, 2, 3}, {4, 5, 6}}
	snaps := SnapshotsFromStreams(streams, 2)
	if len(snaps) != 2 || snaps[0][0] != 1 || snaps[0][1] != 4 || snaps[1][1] != 5 {
		t.Errorf("snapshots = %v", snaps)
	}
	if got := SnapshotsFromStreams(streams, 0); len(got) != 3 {
		t.Errorf("maxSamples=0 should keep all: %d", len(got))
	}
	if SnapshotsFromStreams(nil, 5) != nil {
		t.Error("nil streams")
	}
}

func TestSpatialSmoothShapes(t *testing.T) {
	r := mat.Identity(8)
	s, err := SpatialSmooth(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 6 || s.Cols != 6 {
		t.Errorf("smoothed shape %d×%d, want 6×6", s.Rows, s.Cols)
	}
	if _, err := SpatialSmooth(r, 0); err == nil {
		t.Error("ng=0 should error")
	}
	if _, err := SpatialSmooth(r, 8); err == nil {
		t.Error("ng=M should error")
	}
	one, err := SpatialSmooth(r, 1)
	if err != nil || !one.Equalish(r, 0) {
		t.Error("ng=1 should return an equal copy")
	}
}

func TestSubspacesDimensions(t *testing.T) {
	// Rank-one correlation: one signal, M-1 noise dimensions.
	a := array.NewLinear(geom.Pt(0, 0), 0, 6, lambda)
	v := a.SteeringVector(1.0, lambda)
	r := mat.New(6, 6)
	r.OuterAccumulate(v, 1)
	// Add a noise floor so eigenvalues are not exactly zero.
	for i := 0; i < 6; i++ {
		r.Set(i, i, r.At(i, i)+0.01)
	}
	noise, signal, d, err := Subspaces(r, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("D = %d, want 1", d)
	}
	if noise.Cols != 5 || signal.Cols != 1 || noise.Rows != 6 {
		t.Errorf("subspace shapes: noise %d×%d signal %d×%d", noise.Rows, noise.Cols, signal.Rows, signal.Cols)
	}
	// The signal eigenvector must align with the steering vector.
	sv := signal.Col(0)
	corr := cmplx.Abs(mat.VecDot(sv, v)) / (mat.VecNorm(sv) * mat.VecNorm(v))
	if corr < 0.999 {
		t.Errorf("signal eigenvector alignment = %v", corr)
	}
}

func TestSubspacesAlwaysLeavesNoise(t *testing.T) {
	r := mat.Identity(4) // all eigenvalues equal: naive D would be 4
	noise, _, d, err := Subspaces(r, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 || noise.Cols != 1 {
		t.Errorf("D = %d, noise cols = %d; must keep one noise vector", d, noise.Cols)
	}
}

func TestMUSICSingleSource(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	want := geom.Rad(72)
	streams := synth(a, []float64{want}, []complex128{1}, 50, false, 0.01, rng)
	spec, err := ComputeSpectrum(a, streams, Options{Wavelength: lambda, SmoothingGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, bin := spec.Max()
	got := spec.Theta(bin)
	// The mirror bearing is equally valid for a linear array.
	if geom.AngleDiff(got, want) > geom.Rad(2) && geom.AngleDiff(got, 2*math.Pi-want) > geom.Rad(2) {
		t.Errorf("peak at %.1f°, want %.1f° (or mirror)", geom.Deg(got), geom.Deg(want))
	}
}

func TestMUSICTwoIncoherentSources(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	b1, b2 := geom.Rad(60), geom.Rad(120)
	streams := synth(a, []float64{b1, b2}, []complex128{1, 0.8}, 100, false, 0.01, rng)
	spec, err := ComputeSpectrum(a, streams, Options{Wavelength: lambda, SmoothingGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !hasPeakNear(spec, b1, 3) || !hasPeakNear(spec, b2, 3) {
		t.Errorf("missing peaks near %v° and %v°", geom.Deg(b1), geom.Deg(b2))
	}
}

// hasPeakNear reports whether the spectrum has a local maximum within
// tolDeg of bearing th (or its array mirror).
func hasPeakNear(s *Spectrum, th float64, tolDeg float64) bool {
	for _, p := range s.Peaks(0.05) {
		if geom.AngleDiff(p.Theta, th) <= geom.Rad(tolDeg) ||
			geom.AngleDiff(p.Theta, 2*math.Pi-th) <= geom.Rad(tolDeg) {
			return true
		}
	}
	return false
}

func TestSmoothingResolvesCoherentSources(t *testing.T) {
	// Two phase-locked (multipath) arrivals: plain MUSIC cannot
	// separate them, spatially smoothed MUSIC can. This is the §2.3.2
	// microbenchmark in miniature.
	rng := rand.New(rand.NewSource(4))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	b1, b2 := geom.Rad(50), geom.Rad(110)
	amps := []complex128{1, 0.9 * cmplx.Rect(1, 1.1)}
	streams := synth(a, []float64{b1, b2}, amps, 100, true, 0.005, rng)

	smoothed, err := ComputeSpectrum(a, streams, Options{Wavelength: lambda, SmoothingGroups: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !hasPeakNear(smoothed, b1, 6) || !hasPeakNear(smoothed, b2, 6) {
		t.Errorf("smoothed spectrum misses a coherent source: peaks %v", smoothed.Peaks(0.05))
	}
}

func TestComputeSpectrumErrors(t *testing.T) {
	a := array.NewLinear(geom.Pt(0, 0), 0, 4, lambda)
	if _, err := ComputeSpectrum(a, nil, Options{Wavelength: lambda}); err == nil {
		t.Error("nil streams should error")
	}
	five := make([][]complex128, 5)
	for i := range five {
		five[i] = []complex128{1}
	}
	if _, err := ComputeSpectrum(a, five, Options{Wavelength: lambda}); err == nil {
		t.Error("more streams than row antennas should error")
	}
}

func TestComputeSpectrumWithCalibration(t *testing.T) {
	// Uncalibrated offsets must corrupt the spectrum; applying the
	// calibration in Options must restore the true peak.
	rng := rand.New(rand.NewSource(5))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	a.RandomizePhaseOffsets(rng)
	want := geom.Rad(75)

	// Simulate hardware baking offsets into the streams.
	streams := synth(a, []float64{want}, []complex128{1}, 50, false, 0.01, rng)
	for k := range streams {
		rot := cmplx.Exp(complex(0, a.PhaseOffsets[k]))
		for t := range streams[k] {
			streams[k][t] *= rot
		}
	}

	cal, err := ComputeSpectrum(a, streams, Options{
		Wavelength:         lambda,
		SmoothingGroups:    1,
		CalibrationOffsets: a.PhaseOffsets,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, bin := cal.Max()
	got := cal.Theta(bin)
	if geom.AngleDiff(got, want) > geom.Rad(2) && geom.AngleDiff(got, 2*math.Pi-want) > geom.Rad(2) {
		t.Errorf("calibrated peak at %.1f°, want %.1f°", geom.Deg(got), geom.Deg(want))
	}

	uncal, err := ComputeSpectrum(a, streams, Options{Wavelength: lambda, SmoothingGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, ubin := uncal.Max()
	ugot := uncal.Theta(ubin)
	if geom.AngleDiff(ugot, want) < geom.Rad(5) || geom.AngleDiff(ugot, 2*math.Pi-want) < geom.Rad(5) {
		t.Log("uncalibrated spectrum coincidentally near truth (possible but unlikely)")
	}
}

func TestGeometryWeighting(t *testing.T) {
	// A spectrum with a sharp on-axis peak over a low floor.
	s := NewSpectrum(360)
	for i := range s.P {
		s.P[i] = 0.1
	}
	s.P[0] = 1 // on-axis peak: the least trustworthy kind
	var neutral float64
	for _, v := range s.P {
		neutral += v
	}
	neutral /= 360
	s.ApplyGeometryWeighting(0)
	// The on-axis peak is pulled to the neutral level (weight sin(0)=0).
	if math.Abs(s.P[0]-neutral) > 1e-9 {
		t.Errorf("axis bin = %v, want neutral %v", s.P[0], neutral)
	}
	// Broadside bins untouched.
	if s.P[90] != 0.1 || s.P[270] != 0.1 {
		t.Errorf("broadside bins modified: %v %v", s.P[90], s.P[270])
	}
	// 10° off axis: blended with weight sin(10°).
	w := math.Sin(geom.Rad(10))
	want := w*0.1 + (1-w)*neutral
	if math.Abs(s.P[10]-want) > 1e-9 {
		t.Errorf("bin 10 = %v, want %v", s.P[10], want)
	}
	// 20° off axis: inside the unity window, untouched.
	if s.P[20] != 0.1 {
		t.Errorf("bin 20 = %v", s.P[20])
	}
}

func TestSymmetryRemovalPicksTrueSide(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	a.NinthAntenna = true
	want := geom.Rad(70) // above the axis
	streams := synth(a, []float64{want}, []complex128{1}, 80, false, 0.01, rng)

	// Row-only spectrum has the mirror ambiguity.
	spec, err := ComputeSpectrum(a, streams[:8], Options{Wavelength: lambda, SmoothingGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !hasPeakNear(spec, want, 3) {
		t.Fatal("row spectrum lost the true peak")
	}

	snaps := SnapshotsFromStreams(streams, 0)
	rFull, err := CorrelationMatrix(snaps)
	if err != nil {
		t.Fatal(err)
	}
	mirrorBefore := spec.At(2*math.Pi - want)
	SymmetryRemoval(spec, a, rFull, lambda)

	// The mirror side (bearing 360−70 = 290°) must be strongly
	// attenuated relative to its pre-removal value.
	if got := spec.At(2*math.Pi - want); got > 0.1*mirrorBefore {
		t.Errorf("mirror side survives symmetry removal: %v (was %v)", got, mirrorBefore)
	}
	if spec.At(want) < 0.5 {
		t.Errorf("true side suppressed: %v", spec.At(want))
	}
}

func TestSymmetryRemovalOtherSide(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	a.NinthAntenna = true
	want := geom.Rad(290) // below the axis
	streams := synth(a, []float64{want}, []complex128{1}, 80, false, 0.01, rng)
	spec, err := ComputeSpectrum(a, streams[:8], Options{Wavelength: lambda, SmoothingGroups: 1})
	if err != nil {
		t.Fatal(err)
	}
	snaps := SnapshotsFromStreams(streams, 0)
	rFull, _ := CorrelationMatrix(snaps)
	mirrorBefore := spec.At(2*math.Pi - want)
	SymmetryRemoval(spec, a, rFull, lambda)
	if got := spec.At(2*math.Pi - want); got > 0.1*mirrorBefore {
		t.Errorf("mirror side survives: %v (was %v)", got, mirrorBefore)
	}
	if spec.At(want) < 0.5 {
		t.Errorf("true side suppressed: %v", spec.At(want))
	}
}

func TestBartlettPeaksAtSource(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	want := geom.Rad(100)
	streams := synth(a, []float64{want}, []complex128{1}, 50, false, 0.01, rng)
	snaps := SnapshotsFromStreams(streams, 0)
	r, _ := CorrelationMatrix(snaps)
	b := Bartlett(r, func(th float64) []complex128 { return a.SteeringVector(th, lambda) }, 360)
	_, bin := b.Max()
	got := b.Theta(bin)
	if geom.AngleDiff(got, want) > geom.Rad(3) && geom.AngleDiff(got, 2*math.Pi-want) > geom.Rad(3) {
		t.Errorf("Bartlett peak at %.1f°, want %.1f°", geom.Deg(got), geom.Deg(want))
	}
}

func BenchmarkComputeSpectrum8Antennas(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	streams := synth(a, []float64{1.0, 2.2}, []complex128{1, 0.7}, 10, true, 0.01, rng)
	opt := Options{Wavelength: lambda, SmoothingGroups: 2, MaxSamples: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeSpectrum(a, streams, opt); err != nil {
			b.Fatal(err)
		}
	}
}
