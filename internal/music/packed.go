package music

// Packed split-plane spectrum scans. The table-driven MUSIC and
// Bartlett evaluations are the per-bin hot loops of the whole pipeline
// (bins × noise-columns × rows complex multiply-accumulates per frame
// per AP), and the complex128 formulation pays two costs the math does
// not require: the noise-subspace matrix is walked down columns of a
// row-major layout (a 16-byte stride-N access per term), and every
// conj-multiply goes through generic complex arithmetic. These scans
// pack the operands into split re/im float64 planes — the steering
// table carries its planes precomputed (steering.go), the per-call
// matrices are packed once into workspace-owned planes — and expand
// the arithmetic into the minimal real form.
//
// Exactness contract: each expansion mirrors the complex original's
// floating-point operation tree exactly. conj(e)·a accumulates as
// re += fl(fl(er·ar)+fl(ei·ai)), im += fl(fl(er·ai)−fl(ei·ar)) — the
// same two roundings the complex form performs (a sign flip commutes
// with rounding, so fl(x−fl(−y)) = fl(x+fl(y))) — and the squared-
// magnitude accumulation is term-for-term the scalar loop's. Spectra
// are therefore bit-identical to the closure-based scans, pinned by
// TestSteeringTableSpectraMatch and TestPackedScansMatchClosurePaths.

import (
	"repro/internal/mat"
)

func growPlane(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// MUSICWithTableWS is the packed MUSIC scan (Eq. 6): P(θᵢ) =
// 1/‖E_Nᴴ a(θᵢ)‖² over the table's bins, with the noise matrix packed
// column-major into ws-owned planes (nil ws allocates them). Each
// table row is truncated to en.Rows elements, matching the smoothed
// subarray.
func MUSICWithTableWS(ws *Workspace, en *mat.Matrix, tab *SteeringTable) *Spectrum {
	rows, cols := en.Rows, en.Cols
	var enRe, enIm []float64
	if ws != nil {
		ws.enRe = growPlane(ws.enRe, rows*cols)
		ws.enIm = growPlane(ws.enIm, rows*cols)
		enRe, enIm = ws.enRe, ws.enIm
	} else {
		enRe = make([]float64, rows*cols)
		enIm = make([]float64, rows*cols)
	}
	// Pack the noise subspace column-major so each column's dot walks
	// contiguous memory.
	for k := 0; k < cols; k++ {
		col := k * rows
		for r := 0; r < rows; r++ {
			v := en.Data[r*cols+k]
			enRe[col+r] = real(v)
			enIm[col+r] = imag(v)
		}
	}

	s := NewSpectrum(tab.bins)
	n := tab.n
	for i := 0; i < tab.bins; i++ {
		sre := tab.re[i*n : i*n+rows]
		sim := tab.im[i*n : i*n+rows]
		// ‖E_Nᴴ a‖²: project onto the noise subspace. Columns are
		// processed in pairs with register accumulators: each column's
		// dot still sums in row order (the scalar scan's exact tree)
		// and denom still adds per-column magnitudes in column order,
		// but the four independent chains of a pair overlap in the
		// pipeline instead of stalling on one serial add chain.
		var denom float64
		k := 0
		for ; k+1 < cols; k += 2 {
			e0re := enRe[k*rows : k*rows+rows]
			e0im := enIm[k*rows : k*rows+rows]
			e1re := enRe[(k+1)*rows : (k+1)*rows+rows]
			e1im := enIm[(k+1)*rows : (k+1)*rows+rows]
			var d0re, d0im, d1re, d1im float64
			for r := 0; r < rows; r++ {
				ar, ai := sre[r], sim[r]
				d0re += e0re[r]*ar + e0im[r]*ai
				d0im += e0re[r]*ai - e0im[r]*ar
				d1re += e1re[r]*ar + e1im[r]*ai
				d1im += e1re[r]*ai - e1im[r]*ar
			}
			denom += d0re*d0re + d0im*d0im
			denom += d1re*d1re + d1im*d1im
		}
		if k < cols {
			ere := enRe[k*rows : k*rows+rows]
			eim := enIm[k*rows : k*rows+rows]
			var dre, dim float64
			for r := 0; r < rows; r++ {
				ar, ai := sre[r], sim[r]
				dre += ere[r]*ar + eim[r]*ai
				dim += ere[r]*ai - eim[r]*ar
			}
			denom += dre*dre + dim*dim
		}
		if denom < 1e-12 {
			denom = 1e-12
		}
		s.P[i] = 1 / denom
	}
	return s.Normalize()
}

// BartlettWithTableWS is the packed Bartlett scan: P(θᵢ) = a(θᵢ)ᴴ·R·a(θᵢ)
// with R packed once into ws-owned planes (nil ws allocates). Only the
// real part of the quadratic form survives, so the R·a intermediate
// keeps both planes but the final dot skips its imaginary half.
func BartlettWithTableWS(ws *Workspace, r *mat.Matrix, tab *SteeringTable) *Spectrum {
	m := r.Rows
	var rRe, rIm, raRe, raIm []float64
	if ws != nil {
		ws.rRe = growPlane(ws.rRe, m*m)
		ws.rIm = growPlane(ws.rIm, m*m)
		ws.raRe = growPlane(ws.raRe, m)
		ws.raIm = growPlane(ws.raIm, m)
		rRe, rIm, raRe, raIm = ws.rRe, ws.rIm, ws.raRe, ws.raIm
	} else {
		rRe = make([]float64, m*m)
		rIm = make([]float64, m*m)
		raRe = make([]float64, m)
		raIm = make([]float64, m)
	}
	for i, v := range r.Data {
		rRe[i] = real(v)
		rIm[i] = imag(v)
	}

	s := NewSpectrum(tab.bins)
	n := tab.n
	for i := 0; i < tab.bins; i++ {
		are := tab.re[i*n : i*n+m]
		aim := tab.im[i*n : i*n+m]
		// ra = R·a, mirroring MulVecInto's accumulation order.
		for row := 0; row < m; row++ {
			rre := rRe[row*m : row*m+m]
			rim := rIm[row*m : row*m+m]
			var sre, sim float64
			for j := 0; j < m; j++ {
				rr, ri := rre[j], rim[j]
				ar, ai := are[j], aim[j]
				sre += rr*ar - ri*ai
				sim += rr*ai + ri*ar
			}
			raRe[row] = sre
			raIm[row] = sim
		}
		// real(⟨a, ra⟩), mirroring VecDot's real-component tree; the
		// imaginary accumulation cannot reach the output and is skipped.
		var p float64
		for j := 0; j < m; j++ {
			p += are[j]*raRe[j] + aim[j]*raIm[j]
		}
		if p < 0 {
			p = 0
		}
		s.P[i] = p
	}
	return s
}
