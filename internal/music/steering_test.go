package music

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/array"
	"repro/internal/geom"
)

// steeringCases spans the geometries the pipeline actually uses: row
// sizes from Figure 16's sweep, with and without the ninth antenna,
// assorted orientations, a circular array, and non-default bin counts.
var steeringCases = []struct {
	name   string
	build  func() *array.Array
	lambda float64
	bins   int
}{
	{"linear-4", func() *array.Array { return array.NewLinear(geom.Pt(0, 0), 0, 4, 0.1225) }, 0.1225, 360},
	{"linear-8", func() *array.Array { return array.NewLinear(geom.Pt(2, 3), math.Pi/3, 8, 0.1225) }, 0.1225, 360},
	{"linear-8-ninth", func() *array.Array {
		a := array.NewLinear(geom.Pt(1, 1), -math.Pi/4, 8, 0.1225)
		a.NinthAntenna = true
		return a
	}, 0.1225, 360},
	{"linear-6-5ghz", func() *array.Array { return array.NewLinear(geom.Pt(0, 0), math.Pi/2, 6, 0.0577) }, 0.0577, 720},
	{"circular-8", func() *array.Array { return array.NewCircular(geom.Pt(5, 5), 0.08, 8) }, 0.1225, 180},
}

func TestSteeringTableMatchesDirect(t *testing.T) {
	for _, tc := range steeringCases {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.build()
			tab := NewSteeringTable(a, tc.lambda, tc.bins)
			if tab.Bins() != tc.bins || tab.Elements() != a.NumElements() {
				t.Fatalf("table %dx%d, want %dx%d", tab.Bins(), tab.Elements(), tc.bins, a.NumElements())
			}
			for i := 0; i < tc.bins; i++ {
				theta := 2 * math.Pi * float64(i) / float64(tc.bins)
				want := a.SteeringVector(theta, tc.lambda)
				got := tab.Vector(i)
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("bin %d element %d: table %v, direct %v", i, k, got[k], want[k])
					}
				}
			}
		})
	}
}

// TestCachedSpectrumMatchesUncached is the tentpole's correctness
// anchor: the full ComputeSpectrum chain must produce bin-for-bin
// identical spectra whether steering vectors are cached or recomputed.
func TestCachedSpectrumMatchesUncached(t *testing.T) {
	const tol = 1e-12
	for _, tc := range steeringCases {
		if tc.name == "circular-8" {
			continue // ComputeSpectrum's smoothing chain targets linear rows
		}
		t.Run(tc.name, func(t *testing.T) {
			a := tc.build()
			rng := rand.New(rand.NewSource(42))
			streams := synth(a, []float64{0.7, 2.1}, []complex128{1, 0.6i}, 48, true, 0.05, rng)
			opt := Options{
				Wavelength:      tc.lambda,
				SmoothingGroups: 2,
				MaxSamples:      10,
				SampleOffset:    8,
				ForwardBackward: true,
				Bins:            tc.bins,
			}
			plain, err := ComputeSpectrum(a, streams[:a.N], opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Steering = NewSteeringCache()
			cached, err := ComputeSpectrum(a, streams[:a.N], opt)
			if err != nil {
				t.Fatal(err)
			}
			if cached.Bins() != plain.Bins() {
				t.Fatalf("bins %d vs %d", cached.Bins(), plain.Bins())
			}
			for i := range plain.P {
				if d := math.Abs(cached.P[i] - plain.P[i]); d > tol {
					t.Fatalf("bin %d: cached %.17g, uncached %.17g (Δ=%g)", i, cached.P[i], plain.P[i], d)
				}
			}
		})
	}
}

func TestCachedBartlettAndSymmetryMatchUncached(t *testing.T) {
	const tol = 1e-12
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	a.NinthAntenna = true
	rng := rand.New(rand.NewSource(7))
	streams := synth(a, []float64{0.9}, []complex128{1}, 32, false, 0.02, rng)
	snaps := SnapshotsFromStreams(streams, 0)
	rFull, err := CorrelationMatrix(snaps)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSteeringCache()
	tab := cache.Table(a, lambda, DefaultBins)

	plainB := Bartlett(rFull, func(theta float64) []complex128 {
		return a.SteeringVector(theta, lambda)
	}, DefaultBins)
	cachedB := BartlettWithTable(rFull, tab)
	for i := range plainB.P {
		if d := math.Abs(cachedB.P[i] - plainB.P[i]); d > tol {
			t.Fatalf("bartlett bin %d: Δ=%g", i, d)
		}
	}

	// Same spectrum through both symmetry-removal paths.
	base := NewSpectrum(DefaultBins)
	for i := range base.P {
		base.P[i] = rng.Float64()
	}
	plainS := SymmetryRemoval(base.Clone(), a, rFull, lambda)
	cachedS := SymmetryRemovalCached(base.Clone(), a, rFull, lambda, cache)
	for i := range plainS.P {
		if d := math.Abs(cachedS.P[i] - plainS.P[i]); d > tol {
			t.Fatalf("symmetry bin %d: Δ=%g", i, d)
		}
	}
}

func TestSteeringCacheReusesTables(t *testing.T) {
	c := NewSteeringCache()
	a1 := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	a2 := array.NewLinear(geom.Pt(9, 4), 0, 8, lambda) // same layout, different position
	t1 := c.Table(a1, lambda, 360)
	t2 := c.Table(a2, lambda, 360)
	if t1 != t2 {
		t.Error("same geometry at different positions should share one table")
	}
	if got := c.Len(); got != 1 {
		t.Errorf("cache holds %d tables, want 1", got)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}

	// Distinct geometry, wavelength, or resolution must not collide.
	variants := []*array.Array{
		array.NewLinear(geom.Pt(0, 0), 0.1, 8, lambda), // different orient
		array.NewLinear(geom.Pt(0, 0), 0, 4, lambda),   // different N
		array.NewCircular(geom.Pt(0, 0), lambda/2, 8),  // different layout
	}
	for _, v := range variants {
		if c.Table(v, lambda, 360) == t1 {
			t.Errorf("distinct geometry %+v collided with base table", v)
		}
	}
	if c.Table(a1, lambda*2, 360) == t1 || c.Table(a1, lambda, 180) == t1 {
		t.Error("wavelength/bins variants collided with base table")
	}
	ninth := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	ninth.NinthAntenna = true
	if c.Table(ninth, lambda, 360) == t1 {
		t.Error("ninth-antenna variant collided with base table")
	}
}

func TestSteeringCacheConcurrent(t *testing.T) {
	c := NewSteeringCache()
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	var wg sync.WaitGroup
	tables := make([]*SteeringTable, 16)
	for i := range tables {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i] = c.Table(a, lambda, 360)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(tables); i++ {
		if tables[i] != tables[0] {
			t.Fatal("concurrent lookups returned non-canonical tables")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d tables, want 1", c.Len())
	}
}
