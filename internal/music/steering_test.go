package music

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/array"
	"repro/internal/geom"
)

// steeringCases spans the geometries the pipeline actually uses: row
// sizes from Figure 16's sweep, with and without the ninth antenna,
// assorted orientations, a circular array, and non-default bin counts.
var steeringCases = []struct {
	name   string
	build  func() *array.Array
	lambda float64
	bins   int
}{
	{"linear-4", func() *array.Array { return array.NewLinear(geom.Pt(0, 0), 0, 4, 0.1225) }, 0.1225, 360},
	{"linear-8", func() *array.Array { return array.NewLinear(geom.Pt(2, 3), math.Pi/3, 8, 0.1225) }, 0.1225, 360},
	{"linear-8-ninth", func() *array.Array {
		a := array.NewLinear(geom.Pt(1, 1), -math.Pi/4, 8, 0.1225)
		a.NinthAntenna = true
		return a
	}, 0.1225, 360},
	{"linear-6-5ghz", func() *array.Array { return array.NewLinear(geom.Pt(0, 0), math.Pi/2, 6, 0.0577) }, 0.0577, 720},
	{"circular-8", func() *array.Array { return array.NewCircular(geom.Pt(5, 5), 0.08, 8) }, 0.1225, 180},
}

func TestSteeringTableMatchesDirect(t *testing.T) {
	for _, tc := range steeringCases {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.build()
			tab := NewSteeringTable(a, tc.lambda, tc.bins)
			if tab.Bins() != tc.bins || tab.Elements() != a.NumElements() {
				t.Fatalf("table %dx%d, want %dx%d", tab.Bins(), tab.Elements(), tc.bins, a.NumElements())
			}
			for i := 0; i < tc.bins; i++ {
				theta := 2 * math.Pi * float64(i) / float64(tc.bins)
				want := a.SteeringVector(theta, tc.lambda)
				got := tab.Vector(i)
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("bin %d element %d: table %v, direct %v", i, k, got[k], want[k])
					}
				}
			}
		})
	}
}

// TestCachedSpectrumMatchesUncached is the tentpole's correctness
// anchor: the full ComputeSpectrum chain must produce bin-for-bin
// identical spectra whether steering vectors are cached or recomputed.
func TestCachedSpectrumMatchesUncached(t *testing.T) {
	const tol = 1e-12
	for _, tc := range steeringCases {
		if tc.name == "circular-8" {
			continue // ComputeSpectrum's smoothing chain targets linear rows
		}
		t.Run(tc.name, func(t *testing.T) {
			a := tc.build()
			rng := rand.New(rand.NewSource(42))
			streams := synth(a, []float64{0.7, 2.1}, []complex128{1, 0.6i}, 48, true, 0.05, rng)
			opt := Options{
				Wavelength:      tc.lambda,
				SmoothingGroups: 2,
				MaxSamples:      10,
				SampleOffset:    8,
				ForwardBackward: true,
				Bins:            tc.bins,
			}
			plain, err := ComputeSpectrum(a, streams[:a.N], opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Steering = NewSteeringCache()
			cached, err := ComputeSpectrum(a, streams[:a.N], opt)
			if err != nil {
				t.Fatal(err)
			}
			if cached.Bins() != plain.Bins() {
				t.Fatalf("bins %d vs %d", cached.Bins(), plain.Bins())
			}
			for i := range plain.P {
				if d := math.Abs(cached.P[i] - plain.P[i]); d > tol {
					t.Fatalf("bin %d: cached %.17g, uncached %.17g (Δ=%g)", i, cached.P[i], plain.P[i], d)
				}
			}
		})
	}
}

func TestCachedBartlettAndSymmetryMatchUncached(t *testing.T) {
	const tol = 1e-12
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	a.NinthAntenna = true
	rng := rand.New(rand.NewSource(7))
	streams := synth(a, []float64{0.9}, []complex128{1}, 32, false, 0.02, rng)
	snaps := SnapshotsFromStreams(streams, 0)
	rFull, err := CorrelationMatrix(snaps)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSteeringCache()
	tab := cache.Table(a, lambda, DefaultBins)

	plainB := Bartlett(rFull, func(theta float64) []complex128 {
		return a.SteeringVector(theta, lambda)
	}, DefaultBins)
	cachedB := BartlettWithTable(rFull, tab)
	for i := range plainB.P {
		if d := math.Abs(cachedB.P[i] - plainB.P[i]); d > tol {
			t.Fatalf("bartlett bin %d: Δ=%g", i, d)
		}
	}

	// Same spectrum through both symmetry-removal paths.
	base := NewSpectrum(DefaultBins)
	for i := range base.P {
		base.P[i] = rng.Float64()
	}
	plainS := SymmetryRemoval(base.Clone(), a, rFull, lambda)
	cachedS := SymmetryRemovalCached(base.Clone(), a, rFull, lambda, cache)
	for i := range plainS.P {
		if d := math.Abs(cachedS.P[i] - plainS.P[i]); d > tol {
			t.Fatalf("symmetry bin %d: Δ=%g", i, d)
		}
	}
}

func TestSteeringCacheReusesTables(t *testing.T) {
	c := NewSteeringCache()
	a1 := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	a2 := array.NewLinear(geom.Pt(9, 4), 0, 8, lambda) // same layout, different position
	t1 := c.Table(a1, lambda, 360)
	t2 := c.Table(a2, lambda, 360)
	if t1 != t2 {
		t.Error("same geometry at different positions should share one table")
	}
	if got := c.Len(); got != 1 {
		t.Errorf("cache holds %d tables, want 1", got)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}

	// Distinct geometry, wavelength, or resolution must not collide.
	variants := []*array.Array{
		array.NewLinear(geom.Pt(0, 0), 0.1, 8, lambda), // different orient
		array.NewLinear(geom.Pt(0, 0), 0, 4, lambda),   // different N
		array.NewCircular(geom.Pt(0, 0), lambda/2, 8),  // different layout
	}
	for _, v := range variants {
		if c.Table(v, lambda, 360) == t1 {
			t.Errorf("distinct geometry %+v collided with base table", v)
		}
	}
	if c.Table(a1, lambda*2, 360) == t1 || c.Table(a1, lambda, 180) == t1 {
		t.Error("wavelength/bins variants collided with base table")
	}
	ninth := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	ninth.NinthAntenna = true
	if c.Table(ninth, lambda, 360) == t1 {
		t.Error("ninth-antenna variant collided with base table")
	}
}

// TestSteeringCacheBudgetLRU: the bounded cache evicts least-recently
// used tables at insert time, accounting stays exact (Σ costs ==
// Bytes ≤ Budget at every step), and re-Gets after eviction return
// bit-identical tables.
func TestSteeringCacheBudgetLRU(t *testing.T) {
	one := steeringCost(NewSteeringTable(array.NewLinear(geom.Pt(0, 0), 0, 4, lambda), lambda, 90))
	c := NewSteeringCacheBudget(3 * one) // room for exactly three 4-element 90-bin tables
	mk := func(n int) *array.Array { return array.NewLinear(geom.Pt(0, 0), float64(n)*0.01, 4, lambda) }

	var first *SteeringTable
	for i := 0; i < 5; i++ {
		tab := c.Table(mk(i), lambda, 90)
		if i == 0 {
			first = tab
		}
		u := c.Usage()
		if u.Budget != 3*one {
			t.Fatalf("Budget = %d, want %d", u.Budget, 3*one)
		}
		if u.Bytes > u.Budget {
			t.Fatalf("after insert %d: %d bytes exceeds %d budget", i, u.Bytes, u.Budget)
		}
		if want := int64(u.Entries) * one; u.Bytes != want {
			t.Fatalf("after insert %d: Bytes %d != %d entries × %d cost", i, u.Bytes, u.Entries, one)
		}
	}
	u := c.Usage()
	if u.Entries != 3 || u.Evictions != 2 {
		t.Fatalf("usage %+v, want 3 entries / 2 evictions", u)
	}
	// Geometry 0 was evicted; a re-Get rebuilds an identical table.
	rebuilt := c.Table(mk(0), lambda, 90)
	if rebuilt == first {
		t.Fatal("evicted table pointer survived")
	}
	if len(rebuilt.data) != len(first.data) {
		t.Fatal("rebuilt table shape differs")
	}
	for i := range rebuilt.data {
		if rebuilt.data[i] != first.data[i] {
			t.Fatalf("rebuilt table differs at %d", i)
		}
	}
	// Recency: touch the now-oldest resident, insert a new geometry,
	// and the touched one must survive.
	c.Table(mk(2), lambda, 90) // freshen 2
	c.Table(mk(9), lambda, 90) // evicts 3 (LRU), not 2
	h0, _ := c.Stats()
	c.Table(mk(2), lambda, 90)
	if h1, _ := c.Stats(); h1 != h0+1 {
		t.Fatal("recently touched table was evicted out of LRU order")
	}
}

// TestSteeringCacheOversizedPassThrough: a table larger than the
// whole budget is served but never retained, and does not flush
// residents.
func TestSteeringCacheOversizedPassThrough(t *testing.T) {
	small := array.NewLinear(geom.Pt(0, 0), 0, 4, lambda)
	c := NewSteeringCacheBudget(steeringCost(NewSteeringTable(small, lambda, 90)))
	c.Table(small, lambda, 90) // resident
	big := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	if got := c.Table(big, lambda, 3600); got == nil {
		t.Fatal("oversized table not served")
	}
	u := c.Usage()
	if u.Entries != 1 {
		t.Fatalf("entries = %d after oversized lookup, want the small resident only", u.Entries)
	}
	if u.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (the pass-through)", u.Evictions)
	}
	h0, _ := c.Stats()
	c.Table(small, lambda, 90)
	if h1, _ := c.Stats(); h1 != h0+1 {
		t.Fatal("oversized pass-through flushed the resident")
	}
}

func TestSteeringCacheConcurrent(t *testing.T) {
	c := NewSteeringCache()
	a := array.NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	var wg sync.WaitGroup
	tables := make([]*SteeringTable, 16)
	for i := range tables {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i] = c.Table(a, lambda, 360)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(tables); i++ {
		if tables[i] != tables[0] {
			t.Fatal("concurrent lookups returned non-canonical tables")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d tables, want 1", c.Len())
	}
}
