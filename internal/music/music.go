// Package music implements ArrayTrack's AoA spectrum computation
// (§2.3): sample correlation matrices, spatial smoothing for coherent
// multipath (§2.3.2), MUSIC pseudospectra from the noise subspace,
// array-geometry weighting (§2.3.3), and front/back symmetry removal
// with the ninth antenna (§2.3.4).
package music

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/array"
	"repro/internal/geom"
	"repro/internal/mat"
)

// DefaultBins is the angular resolution of spectra: one bin per degree
// over the full circle.
const DefaultBins = 360

// Spectrum is an AoA pseudospectrum sampled uniformly over [0, 2π).
// Bin i covers bearing 2πi/len(P). Values are non-negative likelihood
// proxies; spectra are typically normalized to a unit maximum.
type Spectrum struct {
	P []float64
}

// NewSpectrum returns an all-zero spectrum with n bins.
func NewSpectrum(n int) *Spectrum { return &Spectrum{P: make([]float64, n)} }

// Bins returns the number of angular bins.
func (s *Spectrum) Bins() int { return len(s.P) }

// Theta returns the bearing (radians) of bin i.
func (s *Spectrum) Theta(i int) float64 {
	return 2 * math.Pi * float64(i) / float64(len(s.P))
}

// BinOf returns the bin index nearest to bearing theta.
func (s *Spectrum) BinOf(theta float64) int {
	n := len(s.P)
	i := int(math.Round(theta/(2*math.Pi)*float64(n))) % n
	if i < 0 {
		i += n
	}
	return i
}

// BinLookup maps a bearing to its interpolation pair for an n-bin
// spectrum: the lower bin index in [0, n) and the fraction in [0, 1)
// toward bin (i+1) mod n. This is the one canonical bearing→bin
// mapping: Spectrum.At and the synthesis-layer bearing LUTs
// (core.SynthCache) both build on it, so a precomputed lookup is
// bit-compatible with a live one by construction.
func BinLookup(theta float64, n int) (int, float64) {
	nf := float64(n)
	pos := theta / (2 * math.Pi) * nf
	pos = math.Mod(pos, nf)
	if pos < 0 {
		pos += nf
		// A tiny negative remainder (|pos| below half an ulp of n)
		// rounds to exactly n here, which would index one past the
		// last bin: that bearing is the 2π seam, i.e. bin 0.
		if pos >= nf {
			pos = 0
		}
	}
	i := int(pos)
	return i, pos - float64(i)
}

// At returns the spectrum value at bearing theta with linear
// interpolation between bins (wrapping bin n−1 back to bin 0 at the 2π
// seam). This is the Pᵢ(θᵢ) lookup in the synthesis step (Eq. 8).
func (s *Spectrum) At(theta float64) float64 {
	i, frac := BinLookup(theta, len(s.P))
	j := i + 1
	if j == len(s.P) {
		j = 0
	}
	return s.P[i]*(1-frac) + s.P[j]*frac
}

// AtBins evaluates At for precomputed bin lookups: dst[k] is the
// interpolated value for the pair (bins[k], frac[k]) as produced by
// BinLookup. dst is grown as needed and returned. The arithmetic is
// exactly At's, so batched and scalar lookups are bit-identical.
func (s *Spectrum) AtBins(bins []int32, frac []float64, dst []float64) []float64 {
	if cap(dst) < len(bins) {
		dst = make([]float64, len(bins))
	}
	dst = dst[:len(bins)]
	n := int32(len(s.P))
	for k, i := range bins {
		j := i + 1
		if j == n {
			j = 0
		}
		f := frac[k]
		dst[k] = s.P[i]*(1-f) + s.P[j]*f
	}
	return dst
}

// PaddedValues writes the spectrum into dst as an (n+1)-entry table
// with dst[n] = dst[0], clamping every value to at least floor. A
// padded table turns the circular interpolation neighbour (i+1) mod n
// into the branch-free i+1, which is what the synthesis layer's batch
// accumulation loops index. dst is grown as needed and returned.
func (s *Spectrum) PaddedValues(dst []float64, floor float64) []float64 {
	n := len(s.P)
	if cap(dst) < n+1 {
		dst = make([]float64, n+1)
	}
	dst = dst[:n+1]
	for i, v := range s.P {
		if v < floor {
			v = floor
		}
		dst[i] = v
	}
	dst[n] = dst[0]
	return dst
}

// Max returns the largest spectrum value and its bin.
func (s *Spectrum) Max() (float64, int) {
	best, bi := math.Inf(-1), 0
	for i, v := range s.P {
		if v > best {
			best, bi = v, i
		}
	}
	return best, bi
}

// Normalize scales the spectrum to a unit maximum in place (no-op for
// an all-zero spectrum) and returns the receiver.
func (s *Spectrum) Normalize() *Spectrum {
	m, _ := s.Max()
	if m > 0 {
		for i := range s.P {
			s.P[i] /= m
		}
	}
	return s
}

// Clone returns a deep copy.
func (s *Spectrum) Clone() *Spectrum {
	c := NewSpectrum(len(s.P))
	copy(c.P, s.P)
	return c
}

// Peak is a local maximum of a spectrum.
type Peak struct {
	// Theta is the peak bearing in radians.
	Theta float64
	// Power is the spectrum value at the peak.
	Power float64
	// Bin is the peak's bin index.
	Bin int
}

// Peaks returns the spectrum's local maxima with value at least
// minRel times the global maximum, strongest first. Neighbouring bins
// wrap circularly. Plateaus report their first bin.
func (s *Spectrum) Peaks(minRel float64) []Peak {
	n := len(s.P)
	if n < 3 {
		return nil
	}
	max, _ := s.Max()
	if max <= 0 {
		return nil
	}
	var peaks []Peak
	for i := 0; i < n; i++ {
		prev := s.P[(i-1+n)%n]
		next := s.P[(i+1)%n]
		v := s.P[i]
		if v > prev && v >= next && v >= minRel*max {
			peaks = append(peaks, Peak{Theta: s.Theta(i), Power: v, Bin: i})
		}
	}
	// Insertion sort by descending power (peak counts are tiny).
	for i := 1; i < len(peaks); i++ {
		j := i
		for j > 0 && peaks[j-1].Power < peaks[j].Power {
			peaks[j-1], peaks[j] = peaks[j], peaks[j-1]
			j--
		}
	}
	return peaks
}

// CorrelationMatrix estimates Rxx = E[x·xᴴ] from snapshots, each a
// length-M per-antenna sample vector (Eq. 4's sample average).
func CorrelationMatrix(snapshots [][]complex128) (*mat.Matrix, error) {
	return CorrelationMatrixWS(nil, snapshots)
}

// SnapshotsFromStreams transposes per-antenna sample streams into
// per-time snapshot vectors, using at most maxSamples samples (§2.1
// records just 10 samples of the preamble).
func SnapshotsFromStreams(streams [][]complex128, maxSamples int) [][]complex128 {
	return SnapshotsAt(streams, 0, maxSamples)
}

// SnapshotsAt is SnapshotsFromStreams starting at sample offset. If the
// streams are shorter than offset, the offset is clamped to 0: better a
// transient-polluted spectrum than none.
func SnapshotsAt(streams [][]complex128, offset, maxSamples int) [][]complex128 {
	if len(streams) == 0 {
		return nil
	}
	ns := len(streams[0])
	if offset < 0 || offset >= ns {
		offset = 0
	}
	n := ns - offset
	if maxSamples > 0 && n > maxSamples {
		n = maxSamples
	}
	out := make([][]complex128, n)
	for t := 0; t < n; t++ {
		v := make([]complex128, len(streams))
		for k := range streams {
			v[k] = streams[k][offset+t]
		}
		out[t] = v
	}
	return out
}

// ForwardBackward returns the forward-backward averaged correlation
// matrix (R + J·R̄·J)/2, where J is the exchange matrix. For a uniform
// linear array this doubles the effective decorrelating groups of
// spatial smoothing at no antenna cost — a standard companion to the
// Shan–Wax–Kailath smoothing the paper uses.
func ForwardBackward(r *mat.Matrix) *mat.Matrix {
	return ForwardBackwardWS(nil, r)
}

// SpatialSmooth applies forward spatial smoothing with ng overlapping
// subarray groups to an M×M correlation matrix, returning the
// (M−ng+1)×(M−ng+1) smoothed matrix (§2.3.2, Figure 6). ng=1 returns a
// copy. It decorrelates phase-locked multipath arrivals so MUSIC can
// resolve them.
func SpatialSmooth(r *mat.Matrix, ng int) (*mat.Matrix, error) {
	return SpatialSmoothWS(nil, r, ng)
}

// Subspaces splits the eigenvectors of a correlation matrix into noise
// and signal subspaces. D, the signal count, is chosen as the number of
// eigenvalues exceeding thresholdFrac times the largest eigenvalue
// (§2.3.1: "a threshold that is a fraction of the largest eigenvalue"),
// capped at maxD when maxD > 0. At low SNR the threshold rule alone
// inflates D until almost no noise subspace remains — capping at M/2
// (the caller's default) keeps the spectrum meaningful. At least one
// eigenvector is always left in the noise subspace, since MUSIC needs
// one.
func Subspaces(r *mat.Matrix, thresholdFrac float64, maxD int) (noise, signal *mat.Matrix, d int, err error) {
	return SubspacesWS(nil, r, thresholdFrac, maxD)
}

// Options configures AoA spectrum computation.
type Options struct {
	// Wavelength of the carrier in metres.
	Wavelength float64
	// SmoothingGroups is NG in §2.3.2; the paper settles on 2.
	SmoothingGroups int
	// SignalThresholdFrac selects D: eigenvalues above this fraction of
	// the largest count as signals. The pipeline default is 0.05.
	SignalThresholdFrac float64
	// MaxSignals caps D (0 means half the smoothed subarray size).
	MaxSignals int
	// Bins is the angular resolution (DefaultBins if zero).
	Bins int
	// MaxSamples limits the snapshots consumed (10 in the paper; 0
	// means all).
	MaxSamples int
	// SampleOffset skips this many leading samples before taking
	// snapshots, so the samples come from the steady part of the
	// preamble after detection rather than the detector's ramp-up.
	SampleOffset int
	// ForwardBackward enables forward-backward correlation averaging
	// before spatial smoothing, strengthening decorrelation of
	// coherent multipath on uniform linear arrays.
	ForwardBackward bool
	// CalibrationOffsets, if non-nil, are subtracted from every
	// snapshot before processing (the §3 correction). Length must
	// cover the antennas in use.
	CalibrationOffsets []float64
	// Steering, if non-nil, supplies precomputed steering-vector
	// tables so the MUSIC scan reuses one matrix per (geometry,
	// wavelength, bins) instead of recomputing a(θ) for every bin of
	// every frame. nil keeps the seed's allocate-per-bin path.
	Steering *SteeringCache
}

func (o Options) bins() int {
	if o.Bins <= 0 {
		return DefaultBins
	}
	return o.Bins
}

func (o Options) thresh() float64 {
	if o.SignalThresholdFrac <= 0 {
		return 0.05
	}
	return o.SignalThresholdFrac
}

// ComputeSpectrum runs the §2.3 chain for one AP: snapshots →
// calibration correction → correlation → spatial smoothing → eigen
// subspaces → MUSIC pseudospectrum over the smoothed subarray. The
// streams must be the array's main-row antennas (use the ninth antenna
// only via SymmetryRemoval). The returned spectrum is normalized to a
// unit maximum.
func ComputeSpectrum(a *array.Array, streams [][]complex128, opt Options) (*Spectrum, error) {
	return ComputeSpectrumWS(nil, a, streams, opt)
}

// ComputeSpectrumWS is ComputeSpectrum with every intermediate —
// snapshots, correlation, forward-backward, smoothed matrix, eigen
// scratch, noise subspace — drawn from the workspace. Only the
// returned Spectrum is freshly allocated: it escapes to the caller
// while the intermediates stay in ws for the next frame. A nil ws is
// exactly the allocating path, and both paths share the same
// arithmetic, so spectra are bit-for-bit identical.
func ComputeSpectrumWS(ws *Workspace, a *array.Array, streams [][]complex128, opt Options) (*Spectrum, error) {
	if len(streams) < 2 {
		return nil, errors.New("music: need at least two antenna streams")
	}
	if len(streams) > a.N {
		return nil, fmt.Errorf("music: %d streams exceed the %d-element row", len(streams), a.N)
	}
	snaps := SnapshotsAtWS(ws, streams, opt.SampleOffset, opt.MaxSamples)
	if opt.CalibrationOffsets != nil {
		for _, s := range snaps {
			array.CorrectOffsets(s, opt.CalibrationOffsets)
		}
	}
	r, err := CorrelationMatrixWS(ws, snaps)
	if err != nil {
		return nil, err
	}
	if opt.ForwardBackward {
		r = ForwardBackwardWS(ws, r)
	}
	ng := opt.SmoothingGroups
	if ng < 1 {
		ng = 1
	}
	rs, err := SpatialSmoothWS(ws, r, ng)
	if err != nil {
		return nil, err
	}
	maxD := opt.MaxSignals
	if maxD <= 0 {
		maxD = rs.Rows / 2
	}
	noise, _, _, err := SubspacesWS(ws, rs, opt.thresh(), maxD)
	if err != nil {
		return nil, err
	}
	if opt.Steering != nil {
		tab := opt.Steering.Table(a, opt.Wavelength, opt.bins())
		return MUSICWithTableWS(ws, noise, tab), nil
	}
	sub := rs.Rows // smoothed subarray size
	steer := func(theta float64) []complex128 {
		return a.SteeringVectorRow(theta, opt.Wavelength)[:sub]
	}
	return MUSIC(noise, steer, opt.bins()), nil
}

// MUSIC evaluates the MUSIC pseudospectrum (Eq. 6)
//
//	P(θ) = 1 / (a(θ)ᴴ·E_N·E_Nᴴ·a(θ))
//
// over bins bearings, where en holds the noise-subspace eigenvectors in
// its columns and steer produces the array steering vector. The result
// is normalized to a unit maximum.
func MUSIC(en *mat.Matrix, steer func(theta float64) []complex128, bins int) *Spectrum {
	return musicSpectrum(en, bins, func(_ int, theta float64) []complex128 {
		return steer(theta)
	})
}

// musicSpectrum is the shared MUSIC scan: at(i, θᵢ) supplies the
// steering vector per bin, either freshly computed or a cached table
// row, so both paths run bit-identical arithmetic.
func musicSpectrum(en *mat.Matrix, bins int, at func(i int, theta float64) []complex128) *Spectrum {
	s := NewSpectrum(bins)
	for i := 0; i < bins; i++ {
		theta := 2 * math.Pi * float64(i) / float64(bins)
		a := at(i, theta)
		// ‖E_Nᴴ a‖²: project onto the noise subspace.
		var denom float64
		for k := 0; k < en.Cols; k++ {
			var dot complex128
			for r := 0; r < en.Rows; r++ {
				dot += cmplx.Conj(en.At(r, k)) * a[r]
			}
			denom += real(dot)*real(dot) + imag(dot)*imag(dot)
		}
		if denom < 1e-12 {
			denom = 1e-12
		}
		s.P[i] = 1 / denom
	}
	return s.Normalize()
}

// Bartlett evaluates the conventional beamformer spectrum
// P(θ) = a(θ)ᴴ·R·a(θ) — used by symmetry removal, where the
// non-uniform 9-element geometry rules MUSIC's calibrated subspace
// structure out but plain beamforming still measures side power.
func Bartlett(r *mat.Matrix, steer func(theta float64) []complex128, bins int) *Spectrum {
	return bartlettSpectrum(r, bins, func(_ int, theta float64) []complex128 {
		return steer(theta)
	})
}

// bartlettSpectrum is the shared Bartlett scan (see musicSpectrum).
// One R·a scratch vector serves every bin: the per-bin MulVec
// allocation was the single largest allocation site left on the
// symmetry-removal path.
func bartlettSpectrum(r *mat.Matrix, bins int, at func(i int, theta float64) []complex128) *Spectrum {
	s := NewSpectrum(bins)
	ra := make([]complex128, r.Rows)
	for i := 0; i < bins; i++ {
		theta := 2 * math.Pi * float64(i) / float64(bins)
		a := at(i, theta)
		r.MulVecInto(ra, a)
		v := mat.VecDot(a, ra)
		p := real(v)
		if p < 0 {
			p = 0
		}
		s.P[i] = p
	}
	return s
}

// ApplyGeometryWeighting applies the confidence window W(θ) of Eq. 7 in
// the array's local frame: bearings within 15° of the array axis, where
// a linear array's resolution collapses, carry weight |sin ψ| (ψ the
// angle off the axis) while all others carry weight 1. Because W
// expresses *confidence* in the data rather than evidence against a
// bearing, de-weighted bins are blended toward the spectrum's mean
// value — an uninformative contribution in the Eq. 8 product — instead
// of being zeroed, which would wrongly veto any client that happens to
// sit near the array's end-fire. Returns the receiver.
func (s *Spectrum) ApplyGeometryWeighting(arrayOrient float64) *Spectrum {
	var neutral float64
	for _, v := range s.P {
		neutral += v
	}
	neutral /= float64(len(s.P))
	for i := range s.P {
		psi := math.Abs(math.Remainder(s.Theta(i)-arrayOrient, math.Pi)) // 0..π/2 off-axis fold
		deg := psi * 180 / math.Pi
		if deg < 15 {
			w := math.Abs(math.Sin(psi))
			s.P[i] = w*s.P[i] + (1-w)*neutral
		}
	}
	return s
}

// symmetrySuppressFactor is the attenuation applied to the weaker side
// during symmetry removal. Suppressing rather than zeroing keeps one
// mistaken side decision from vetoing the true location outright when
// several APs are fused.
const symmetrySuppressFactor = 0.05

// SymmetryRemoval suppresses mirror-image ambiguity in a linear-array
// spectrum (§2.3.4) using the ninth antenna: for every spectrum bin it
// compares the full-array Bartlett power at the bin's bearing against
// the power at its mirror across the array axis, and attenuates the bin
// when its mirror clearly wins. Comparing each bearing against its own
// mirror — rather than summing whole-side power — stays robust when
// coherent multipath puts genuine energy on both sides. Bearings within
// 15° of the array axis, where the mirror is almost the same direction
// and the vote is meaningless, are left untouched. Returns the
// receiver.
func SymmetryRemoval(s *Spectrum, a *array.Array, rFull *mat.Matrix, wavelength float64) *Spectrum {
	steer := func(theta float64) []complex128 {
		return a.SteeringVector(theta, wavelength)
	}
	b := Bartlett(rFull, steer, s.Bins())
	return symmetryRemovalAgainst(s, a, b)
}

// symmetryRemovalAgainst applies the mirror-vote suppression given an
// already-computed full-array Bartlett spectrum b.
func symmetryRemovalAgainst(s *Spectrum, a *array.Array, b *Spectrum) *Spectrum {
	// A bearing must lose to its mirror by this power ratio before it
	// is suppressed; a margin keeps near-ties (no evidence either way)
	// intact.
	const loseMargin = 1.3
	axisMargin := math.Sin(15 * math.Pi / 180)
	out := make([]float64, len(s.P))
	copy(out, s.P)
	for i := range s.P {
		theta := s.Theta(i)
		sin := math.Sin(theta - a.Orient)
		if math.Abs(sin) < axisMargin {
			continue
		}
		mirror := geom.NormalizeAngle(2*a.Orient - theta)
		if b.At(mirror) > loseMargin*b.At(theta) {
			out[i] = s.P[i] * symmetrySuppressFactor
		}
	}
	copy(s.P, out)
	return s
}
