package music

// Pluggable AoA estimators. The paper's pipeline is MUSIC end to end,
// but the rest of the system — correlation estimation, the steering
// cache, synthesis, tracking — is estimator-agnostic, and the
// evaluation's comparisons (conventional beamforming, classic
// unsmoothed MUSIC) are just different spectrum functions over the
// same snapshots. An Estimator plugs into core's pipeline at the
// frame→spectrum stage; everything downstream is unchanged.

import (
	"errors"
	"fmt"

	"repro/internal/array"
	"repro/internal/mat"
)

// Estimator turns one frame's per-antenna streams into an AoA
// spectrum. Implementations must be safe for concurrent use by
// multiple goroutines holding distinct workspaces; ws may be nil
// (allocate-per-call) and must only be used for the duration of the
// call.
type Estimator interface {
	// Name identifies the estimator ("music", "bartlett", "baseline").
	Name() string
	// Spectrum computes the normalized AoA spectrum for the array's
	// main-row streams.
	Spectrum(ws *Workspace, a *array.Array, streams [][]complex128, opt Options) (*Spectrum, error)
}

// MUSICEstimator is the paper's full §2.3 chain: spatial smoothing,
// optional forward-backward averaging, eigen subspace split, MUSIC
// pseudospectrum. It is the default estimator everywhere.
var MUSICEstimator Estimator = musicEstimator{}

type musicEstimator struct{}

func (musicEstimator) Name() string { return "music" }

func (musicEstimator) Spectrum(ws *Workspace, a *array.Array, streams [][]complex128, opt Options) (*Spectrum, error) {
	return ComputeSpectrumWS(ws, a, streams, opt)
}

// BartlettEstimator is the conventional (delay-and-sum) beamformer:
// P(θ) = a(θ)ᴴ·R·a(θ) on the full-row correlation matrix, no subspace
// machinery. It resolves multipath far worse than MUSIC — which is the
// paper's point — but costs no eigendecomposition.
var BartlettEstimator Estimator = bartlettEstimator{}

type bartlettEstimator struct{}

func (bartlettEstimator) Name() string { return "bartlett" }

func (bartlettEstimator) Spectrum(ws *Workspace, a *array.Array, streams [][]complex128, opt Options) (*Spectrum, error) {
	r, err := frameCorrelation(ws, a, streams, opt)
	if err != nil {
		return nil, err
	}
	var s *Spectrum
	if opt.Steering != nil {
		s = BartlettWithTableWS(ws, r, opt.Steering.Table(a, opt.Wavelength, opt.bins()))
	} else {
		s = Bartlett(r, func(theta float64) []complex128 {
			return a.SteeringVectorRow(theta, opt.Wavelength)[:r.Cols]
		}, opt.bins())
	}
	return s.Normalize(), nil
}

// BaselineEstimator is classic MUSIC as it existed before the paper:
// no spatial smoothing, no forward-backward averaging — the §4.1
// "unoptimized" starting point. Coherent multipath collapses its
// correlation matrix rank, which is exactly the failure §2.3.2 fixes.
var BaselineEstimator Estimator = baselineEstimator{}

type baselineEstimator struct{}

func (baselineEstimator) Name() string { return "baseline" }

func (baselineEstimator) Spectrum(ws *Workspace, a *array.Array, streams [][]complex128, opt Options) (*Spectrum, error) {
	r, err := frameCorrelation(ws, a, streams, opt)
	if err != nil {
		return nil, err
	}
	maxD := opt.MaxSignals
	if maxD <= 0 {
		maxD = r.Rows / 2
	}
	noise, _, _, err := SubspacesWS(ws, r, opt.thresh(), maxD)
	if err != nil {
		return nil, err
	}
	if opt.Steering != nil {
		return MUSICWithTableWS(ws, noise, opt.Steering.Table(a, opt.Wavelength, opt.bins())), nil
	}
	sub := r.Rows
	return MUSIC(noise, func(theta float64) []complex128 {
		return a.SteeringVectorRow(theta, opt.Wavelength)[:sub]
	}, opt.bins()), nil
}

// frameCorrelation is the shared snapshots → calibration → correlation
// front half used by the non-MUSIC estimators.
func frameCorrelation(ws *Workspace, a *array.Array, streams [][]complex128, opt Options) (*mat.Matrix, error) {
	if len(streams) < 2 {
		return nil, errors.New("music: need at least two antenna streams")
	}
	if len(streams) > a.N {
		return nil, fmt.Errorf("music: %d streams exceed the %d-element row", len(streams), a.N)
	}
	snaps := SnapshotsAtWS(ws, streams, opt.SampleOffset, opt.MaxSamples)
	if opt.CalibrationOffsets != nil {
		for _, s := range snaps {
			array.CorrectOffsets(s, opt.CalibrationOffsets)
		}
	}
	return CorrelationMatrixWS(ws, snaps)
}

// EstimatorByName resolves "music", "bartlett", or "baseline".
func EstimatorByName(name string) (Estimator, error) {
	switch name {
	case "", "music":
		return MUSICEstimator, nil
	case "bartlett":
		return BartlettEstimator, nil
	case "baseline":
		return BaselineEstimator, nil
	}
	return nil, fmt.Errorf("music: unknown estimator %q (have music, bartlett, baseline)", name)
}

// EstimatorNames lists the registered estimator names.
func EstimatorNames() []string { return []string{"music", "bartlett", "baseline"} }
