// Package chaos provides deterministic fault injection for the ingest
// wire. An Injector wraps a net.Conn, an io.Writer, or a
// datagram-oriented writer and perturbs the byte stream according to a
// seeded Plan: stalls, partial writes, injected resets, truncated and
// bit-flipped frames, and dropped/duplicated/reordered datagrams.
// Every random decision draws from one seeded generator, so a given
// (Plan, operation sequence) pair replays the exact same fault
// schedule run after run — the property the testbed's chaos experiment
// and the regression tests depend on.
//
// The injector is the attacker the server's self-defense layer
// (deadlines, error budgets, quarantine, degraded quorum) is tested
// against; it has no role in production builds.
package chaos

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is the error surfaced by a wrapped writer or
// connection when the plan fires a reset fault. It satisfies
// net.Error's Timeout() == false; callers classifying errors see a
// peer-reset-shaped failure.
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// Plan describes which faults fire and how often. Probabilities are
// per operation in [0, 1]; zero values disable the corresponding
// fault, so the zero Plan is a transparent pass-through.
type Plan struct {
	// Seed seeds the injector's random source. Two injectors with the
	// same Seed and the same operation sequence fire identical faults.
	Seed int64

	// StallEvery stalls every Nth Write for StallFor before the bytes
	// move — the slow-loris AP that keeps a connection open without
	// feeding it. 0 disables.
	StallEvery int
	StallFor   time.Duration

	// PartialProb is the chance a Write delivers only a random prefix
	// of its buffer and then fails with ErrInjectedReset — a connection
	// dying mid-frame, the case that used to pin a pooled workspace.
	PartialProb float64

	// FlipProb is the chance a Write has one random bit flipped before
	// delivery — the corrupted-frame fault the decode validators and
	// the AP error budget must absorb.
	FlipProb float64

	// ResetAfterBytes fails every Write with ErrInjectedReset once
	// this many bytes have been delivered. 0 disables.
	ResetAfterBytes int64

	// TruncateAfterBytes silently swallows everything past this many
	// delivered bytes while still reporting success — the half-written
	// frame a crashing AP leaves on the wire. 0 disables.
	TruncateAfterBytes int64

	// DropProb, DupProb and ReorderProb apply to datagram writers
	// (PacketWriter): each datagram may be dropped, sent twice, or
	// held back one slot so the following datagram overtakes it.
	DropProb    float64
	DupProb     float64
	ReorderProb float64
}

// Stats counts the faults an injector actually fired.
type Stats struct {
	Stalls        uint64
	PartialWrites uint64
	BitFlips      uint64
	Resets        uint64
	Truncations   uint64
	Dropped       uint64
	Duplicated    uint64
	Reordered     uint64
}

// Injector owns the seeded random source and fault counters shared by
// every wrapper it hands out. Safe for concurrent use; concurrent
// writers serialize on the injector's lock (fault order across
// goroutines is then scheduling-dependent, but single-writer use —
// the deterministic-harness case — replays exactly).
type Injector struct {
	plan Plan

	mu        sync.Mutex
	rng       *rand.Rand
	stats     Stats
	delivered int64 // bytes actually passed to the underlying writer
	writes    int   // Write calls observed (stall schedule)
	scratch   []byte
	pocket    []byte // reorder hold slot (datagram writers)
}

// NewInjector returns an injector executing the given plan.
func NewInjector(plan Plan) *Injector {
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Stats returns a snapshot of the fired-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// chance draws one uniform variate under the injector lock.
func (in *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return in.rng.Float64() < p
}

// write runs one stream write through the fault schedule. Caller does
// NOT hold the lock.
func (in *Injector) write(w io.Writer, p []byte) (int, error) {
	in.mu.Lock()
	in.writes++
	stall := time.Duration(0)
	if in.plan.StallEvery > 0 && in.writes%in.plan.StallEvery == 0 && in.plan.StallFor > 0 {
		stall = in.plan.StallFor
		in.stats.Stalls++
	}
	if in.plan.ResetAfterBytes > 0 && in.delivered >= in.plan.ResetAfterBytes {
		in.stats.Resets++
		in.mu.Unlock()
		return 0, ErrInjectedReset
	}
	if in.plan.TruncateAfterBytes > 0 && in.delivered >= in.plan.TruncateAfterBytes {
		in.stats.Truncations++
		in.mu.Unlock()
		return len(p), nil // swallowed, reported as delivered
	}
	buf := p
	if in.chance(in.plan.FlipProb) && len(p) > 0 {
		if cap(in.scratch) < len(p) {
			in.scratch = make([]byte, len(p))
		}
		buf = in.scratch[:len(p)]
		copy(buf, p)
		bit := in.rng.Intn(len(buf) * 8)
		buf[bit/8] ^= 1 << (bit % 8)
		in.stats.BitFlips++
	}
	partial := -1
	if in.chance(in.plan.PartialProb) && len(buf) > 1 {
		partial = 1 + in.rng.Intn(len(buf)-1)
		in.stats.PartialWrites++
	}
	in.mu.Unlock()

	// The stall and the underlying write run outside the lock so a
	// stalled connection cannot freeze an injector shared with others.
	if stall > 0 {
		time.Sleep(stall)
	}
	if partial >= 0 {
		n, err := w.Write(buf[:partial])
		in.account(n)
		if err != nil {
			return n, err
		}
		return n, ErrInjectedReset
	}
	n, err := w.Write(buf)
	in.account(n)
	return n, err
}

func (in *Injector) account(n int) {
	if n <= 0 {
		return
	}
	in.mu.Lock()
	in.delivered += int64(n)
	in.mu.Unlock()
}

// faultWriter applies the injector's stream-fault schedule to Writes.
type faultWriter struct {
	in *Injector
	w  io.Writer
}

func (f *faultWriter) Write(p []byte) (int, error) { return f.in.write(f.w, p) }

// Writer wraps a stream writer (typically the AP side of a TCP
// connection) with the plan's stream faults.
func (in *Injector) Writer(w io.Writer) io.Writer { return &faultWriter{in: in, w: w} }

// faultConn is a net.Conn whose writes run through the fault schedule
// and whose reads may be chopped into 1-byte slivers (partial reads).
type faultConn struct {
	net.Conn
	in *Injector
}

func (c *faultConn) Write(p []byte) (int, error) { return c.in.write(c.Conn, p) }

func (c *faultConn) Read(p []byte) (int, error) {
	c.in.mu.Lock()
	sliver := c.in.chance(c.in.plan.PartialProb) && len(p) > 1
	c.in.mu.Unlock()
	if sliver {
		return c.Conn.Read(p[:1])
	}
	return c.Conn.Read(p)
}

// Conn wraps a connection with the plan's faults: writes get the
// stream schedule (stalls, flips, partial writes, resets,
// truncation), reads get PartialProb-driven 1-byte slivers.
func (in *Injector) Conn(c net.Conn) net.Conn { return &faultConn{Conn: c, in: in} }

// packetWriter applies datagram faults: each Write is one datagram.
type packetWriter struct {
	in *Injector
	w  io.Writer
}

func (pw *packetWriter) Write(p []byte) (int, error) {
	in := pw.in
	in.mu.Lock()
	switch {
	case in.chance(in.plan.DropProb):
		in.stats.Dropped++
		in.mu.Unlock()
		return len(p), nil
	case in.chance(in.plan.DupProb):
		in.stats.Duplicated++
		in.mu.Unlock()
		if _, err := pw.w.Write(p); err != nil {
			return 0, err
		}
		return pw.w.Write(p)
	case in.chance(in.plan.ReorderProb) && in.pocket == nil:
		// Hold this datagram; the next one overtakes it.
		in.stats.Reordered++
		in.pocket = append([]byte(nil), p...)
		in.mu.Unlock()
		return len(p), nil
	}
	held := in.pocket
	in.pocket = nil
	in.mu.Unlock()
	n, err := pw.w.Write(p)
	if err != nil {
		return n, err
	}
	if held != nil {
		if _, err := pw.w.Write(held); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Flush releases a datagram held for reordering, if any.
func (pw *packetWriter) Flush() error {
	pw.in.mu.Lock()
	held := pw.in.pocket
	pw.in.pocket = nil
	pw.in.mu.Unlock()
	if held == nil {
		return nil
	}
	_, err := pw.w.Write(held)
	return err
}

// PacketWriter wraps a datagram writer (each Write is one datagram,
// e.g. a UDP net.Conn) with the plan's drop/duplicate/reorder faults.
// Call Flush at end of stream to release a datagram held back for
// reordering.
func (in *Injector) PacketWriter(w io.Writer) *PacketConn {
	return &PacketConn{packetWriter{in: in, w: w}}
}

// PacketConn is the concrete datagram wrapper PacketWriter returns.
type PacketConn struct{ packetWriter }
