package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// run pushes a fixed write sequence through a fresh injector and
// returns what landed plus the fired-fault stats.
func run(t *testing.T, plan Plan, writes int, size int) ([]byte, Stats) {
	t.Helper()
	var sink bytes.Buffer
	in := NewInjector(plan)
	w := in.Writer(&sink)
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < writes; i++ {
		if _, err := w.Write(payload); err != nil && !errors.Is(err, ErrInjectedReset) {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	return sink.Bytes(), in.Stats()
}

func TestZeroPlanIsTransparent(t *testing.T) {
	got, st := run(t, Plan{Seed: 1}, 10, 100)
	if len(got) != 1000 {
		t.Fatalf("delivered %d bytes, want 1000", len(got))
	}
	if st != (Stats{}) {
		t.Fatalf("zero plan fired faults: %+v", st)
	}
}

func TestDeterministicReplay(t *testing.T) {
	plan := Plan{Seed: 42, FlipProb: 0.3, PartialProb: 0.2}
	a, sa := run(t, plan, 50, 64)
	b, sb := run(t, plan, 50, 64)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different byte streams (%d vs %d bytes)", len(a), len(b))
	}
	if sa != sb {
		t.Fatalf("same seed produced different stats: %+v vs %+v", sa, sb)
	}
	if sa.BitFlips == 0 || sa.PartialWrites == 0 {
		t.Fatalf("expected flips and partials to fire over 50 writes: %+v", sa)
	}
	c, _ := run(t, Plan{Seed: 43, FlipProb: 0.3, PartialProb: 0.2}, 50, 64)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestBitFlipCorruptsExactlyOneBit(t *testing.T) {
	got, st := run(t, Plan{Seed: 7, FlipProb: 1}, 1, 32)
	if st.BitFlips != 1 {
		t.Fatalf("BitFlips = %d, want 1", st.BitFlips)
	}
	clean := make([]byte, 32)
	for i := range clean {
		clean[i] = byte(i)
	}
	diff := 0
	for i := range clean {
		x := clean[i] ^ got[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", diff)
	}
}

func TestResetAfterBytes(t *testing.T) {
	var sink bytes.Buffer
	in := NewInjector(Plan{Seed: 1, ResetAfterBytes: 150})
	w := in.Writer(&sink)
	buf := make([]byte, 100)
	if _, err := w.Write(buf); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := w.Write(buf); err != nil {
		t.Fatalf("second write (crosses threshold mid-write, delivered): %v", err)
	}
	if _, err := w.Write(buf); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("third write err = %v, want ErrInjectedReset", err)
	}
	if st := in.Stats(); st.Resets != 1 {
		t.Fatalf("Resets = %d, want 1", st.Resets)
	}
}

func TestTruncateAfterBytesSwallowsSilently(t *testing.T) {
	var sink bytes.Buffer
	in := NewInjector(Plan{Seed: 1, TruncateAfterBytes: 100})
	w := in.Writer(&sink)
	buf := make([]byte, 100)
	for i := 0; i < 3; i++ {
		n, err := w.Write(buf)
		if err != nil || n != 100 {
			t.Fatalf("write %d: n=%d err=%v, want silent success", i, n, err)
		}
	}
	if sink.Len() != 100 {
		t.Fatalf("delivered %d bytes, want 100 (rest truncated)", sink.Len())
	}
	if st := in.Stats(); st.Truncations != 2 {
		t.Fatalf("Truncations = %d, want 2", st.Truncations)
	}
}

func TestStallSchedule(t *testing.T) {
	var sink bytes.Buffer
	in := NewInjector(Plan{Seed: 1, StallEvery: 2, StallFor: 10 * time.Millisecond})
	w := in.Writer(&sink)
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := w.Write([]byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("4 writes with StallEvery=2 took %v, want ≥ 20ms", el)
	}
	if st := in.Stats(); st.Stalls != 2 {
		t.Fatalf("Stalls = %d, want 2", st.Stalls)
	}
}

// datagramSink records each Write as one datagram.
type datagramSink struct{ grams [][]byte }

func (d *datagramSink) Write(p []byte) (int, error) {
	d.grams = append(d.grams, append([]byte(nil), p...))
	return len(p), nil
}

func TestPacketWriterDropDupReorder(t *testing.T) {
	mk := func(plan Plan, n int) [][]byte {
		var sink datagramSink
		in := NewInjector(plan)
		pw := in.PacketWriter(&sink)
		for i := 0; i < n; i++ {
			if _, err := pw.Write([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := pw.Flush(); err != nil {
			t.Fatal(err)
		}
		return sink.grams
	}
	if got := mk(Plan{Seed: 3, DropProb: 1}, 5); len(got) != 0 {
		t.Fatalf("DropProb=1 delivered %d datagrams, want 0", len(got))
	}
	if got := mk(Plan{Seed: 3, DupProb: 1}, 5); len(got) != 10 {
		t.Fatalf("DupProb=1 delivered %d datagrams, want 10", len(got))
	}
	got := mk(Plan{Seed: 3, ReorderProb: 1}, 3)
	if len(got) != 3 {
		t.Fatalf("reorder delivered %d datagrams, want 3", len(got))
	}
	// With ReorderProb=1 and a single hold slot: gram 0 is pocketed,
	// gram 1 finds the pocket occupied and goes straight out followed
	// by gram 0, gram 2 is pocketed and flushed at the end.
	want := []byte{1, 0, 2}
	for i, g := range got {
		if g[0] != want[i] {
			t.Fatalf("delivery order %v, want %v", flatten(got), want)
		}
	}
}

func flatten(grams [][]byte) []byte {
	var out []byte
	for _, g := range grams {
		out = append(out, g...)
	}
	return out
}

func TestConnPartialReadSlivers(t *testing.T) {
	in := NewInjector(Plan{Seed: 9, PartialProb: 1})
	r, w := io.Pipe()
	defer w.Close()
	go w.Write(bytes.Repeat([]byte{7}, 16))
	wrapped := in.Conn(pipeConn{r})
	buf := make([]byte, 16)
	n, err := wrapped.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("partial read returned %d bytes, want 1-byte sliver", n)
	}
}

// pipeConn adapts an io.Reader into the minimal net.Conn the wrapper
// needs for read-side tests.
type pipeConn struct{ io.Reader }

func (pipeConn) Write(p []byte) (int, error)      { return len(p), nil }
func (pipeConn) Close() error                     { return nil }
func (pipeConn) LocalAddr() net.Addr              { return nil }
func (pipeConn) RemoteAddr() net.Addr             { return nil }
func (pipeConn) SetDeadline(time.Time) error      { return nil }
func (pipeConn) SetReadDeadline(time.Time) error  { return nil }
func (pipeConn) SetWriteDeadline(time.Time) error { return nil }
