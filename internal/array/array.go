// Package array models the AP antenna array: element geometry (uniform
// linear arrays at half-wavelength spacing, the optional ninth off-row
// antenna used for symmetry removal, and circular arrays for the §6
// discussion), plane-wave steering vectors, per-radio oscillator phase
// offsets, and the splitter-swap phase calibration procedure of §3.
package array

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/geom"
)

// Geometry enumerates supported element layouts.
type Geometry int

const (
	// Linear is a uniform linear array (the paper's arrangement).
	Linear Geometry = iota
	// Circular is a uniform circular array (§6 discussion).
	Circular
)

// Array describes one AP's antenna array.
type Array struct {
	// Pos is the position of the array reference point (element 0 for
	// linear arrays, the centre for circular arrays).
	Pos geom.Point
	// Orient is the direction, in radians, along which a linear
	// array's elements are laid out (or the bearing of element 0 for a
	// circular array).
	Orient float64
	// Spacing is the inter-element spacing in metres (the radius for
	// circular arrays).
	Spacing float64
	// N is the number of elements in the main row/circle.
	N int
	// Geom selects the element layout.
	Geom Geometry
	// NinthAntenna, if true, adds one extra element displaced
	// perpendicular to a linear array's axis. Section 2.3.4 uses it to
	// resolve the 180° front/back ambiguity.
	NinthAntenna bool
	// PhaseOffsets holds the unknown per-radio downconversion phase
	// offsets ψ_k (radians) that the hardware introduces (§3). The
	// channel simulator applies them; localization must calibrate them
	// away. Zero-length means a perfectly calibrated array.
	PhaseOffsets []float64
	// Height is the antenna height above the floor in metres.
	Height float64
}

// NewLinear returns an N-element uniform linear array at half-wavelength
// spacing for wavelength lambda, positioned at pos with its element row
// along orient.
func NewLinear(pos geom.Point, orient float64, n int, lambda float64) *Array {
	return &Array{Pos: pos, Orient: orient, Spacing: lambda / 2, N: n, Geom: Linear}
}

// NewCircular returns an N-element uniform circular array of the given
// radius centred at pos.
func NewCircular(pos geom.Point, radius float64, n int) *Array {
	return &Array{Pos: pos, Spacing: radius, N: n, Geom: Circular}
}

// NumElements returns the total element count including the ninth
// antenna if present.
func (a *Array) NumElements() int {
	n := a.N
	if a.NinthAntenna && a.Geom == Linear {
		n++
	}
	return n
}

// ElementPos returns the position of element k. For linear arrays,
// elements 0..N-1 lie along Orient at multiples of Spacing; the ninth
// antenna (index N) sits half a row-length along the array displaced
// perpendicular to the row by a quarter wavelength (half the λ/2
// spacing), off the array axis as §2.3.4 requires. The λ/4 offset
// makes the front/back phase difference π·sin θ — unambiguous over the
// whole half-circle, where a λ/2 offset would alias to zero at
// broadside.
func (a *Array) ElementPos(k int) geom.Point {
	switch a.Geom {
	case Circular:
		ang := a.Orient + 2*math.Pi*float64(k)/float64(a.N)
		return a.Pos.Add(geom.FromAngle(ang).Scale(a.Spacing))
	default:
		if a.NinthAntenna && k == a.N {
			along := geom.FromAngle(a.Orient).Scale(a.Spacing * float64(a.N-1) / 2)
			perp := geom.FromAngle(a.Orient + math.Pi/2).Scale(a.Spacing / 2)
			return a.Pos.Add(along).Add(perp)
		}
		return a.Pos.Add(geom.FromAngle(a.Orient).Scale(a.Spacing * float64(k)))
	}
}

// Centroid returns the mean element position.
func (a *Array) Centroid() geom.Point {
	var sx, sy float64
	n := a.NumElements()
	for k := 0; k < n; k++ {
		p := a.ElementPos(k)
		sx += p.X
		sy += p.Y
	}
	return geom.Pt(sx/float64(n), sy/float64(n))
}

// SteeringVector returns the ideal (offset-free) array response
// a(θ) for a plane wave arriving from global bearing theta at
// wavelength lambda: element k has phase 2π·((r_k−r_0)·u)/λ where u is
// the unit vector from the array toward the source. Includes the ninth
// antenna if enabled. Element 0 is the phase reference.
func (a *Array) SteeringVector(theta, lambda float64) []complex128 {
	n := a.NumElements()
	u := geom.FromAngle(theta)
	r0 := a.ElementPos(0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		d := a.ElementPos(k).Sub(r0).Dot(u)
		out[k] = cmplx.Exp(complex(0, 2*math.Pi*d/lambda))
	}
	return out
}

// SteeringVectorRow is SteeringVector restricted to the main row
// (excludes the ninth antenna): the MUSIC spectrum is computed on the
// uniform row, while the ninth antenna only votes on front/back.
func (a *Array) SteeringVectorRow(theta, lambda float64) []complex128 {
	full := a.SteeringVector(theta, lambda)
	return full[:a.N]
}

// RandomizePhaseOffsets draws a fresh set of per-radio phase offsets
// uniformly from [0, 2π), simulating the unknown downconversion phases
// that make uncalibrated AoA impossible (§3). Element 0 keeps offset 0
// as the reference.
func (a *Array) RandomizePhaseOffsets(rng *rand.Rand) {
	n := a.NumElements()
	a.PhaseOffsets = make([]float64, n)
	for k := 1; k < n; k++ {
		a.PhaseOffsets[k] = rng.Float64() * 2 * math.Pi
	}
}

// ApplyOffsets multiplies a per-element sample vector by the hardware
// phase offsets in place. The channel simulator calls this on every
// received snapshot.
func (a *Array) ApplyOffsets(x []complex128) {
	if len(a.PhaseOffsets) == 0 {
		return
	}
	for k := range x {
		if k < len(a.PhaseOffsets) && a.PhaseOffsets[k] != 0 {
			x[k] *= cmplx.Exp(complex(0, a.PhaseOffsets[k]))
		}
	}
}

// CorrectOffsets removes previously measured calibration offsets from a
// sample vector in place (the "subtracting the measured phase offsets"
// step of §3).
func CorrectOffsets(x []complex128, measured []float64) {
	for k := range x {
		if k < len(measured) && measured[k] != 0 {
			x[k] *= cmplx.Exp(complex(0, -measured[k]))
		}
	}
}

// Validate checks the array for configuration errors.
func (a *Array) Validate() error {
	if a.N < 2 {
		return fmt.Errorf("array: need at least 2 elements, have %d", a.N)
	}
	if a.Spacing <= 0 {
		return fmt.Errorf("array: spacing %v must be positive", a.Spacing)
	}
	if len(a.PhaseOffsets) != 0 && len(a.PhaseOffsets) != a.NumElements() {
		return fmt.Errorf("array: %d phase offsets for %d elements", len(a.PhaseOffsets), a.NumElements())
	}
	return nil
}
