package array

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

const lambda = 0.1225

func TestLinearElementPositions(t *testing.T) {
	a := NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	if a.Spacing != lambda/2 {
		t.Errorf("spacing = %v", a.Spacing)
	}
	for k := 0; k < 8; k++ {
		p := a.ElementPos(k)
		if math.Abs(p.X-float64(k)*lambda/2) > 1e-12 || math.Abs(p.Y) > 1e-12 {
			t.Errorf("element %d at %v", k, p)
		}
	}
}

func TestLinearOrientRotates(t *testing.T) {
	a := NewLinear(geom.Pt(1, 1), math.Pi/2, 4, lambda)
	p := a.ElementPos(3)
	if math.Abs(p.X-1) > 1e-12 || math.Abs(p.Y-(1+3*lambda/2)) > 1e-12 {
		t.Errorf("rotated element at %v", p)
	}
}

func TestNinthAntennaOffRow(t *testing.T) {
	a := NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	a.NinthAntenna = true
	if a.NumElements() != 9 {
		t.Fatalf("NumElements = %d", a.NumElements())
	}
	p := a.ElementPos(8)
	if math.Abs(p.Y) < 1e-9 {
		t.Error("ninth antenna lies on the array axis; it must be off-row")
	}
}

func TestCircularElements(t *testing.T) {
	a := NewCircular(geom.Pt(0, 0), 0.1, 8)
	for k := 0; k < 8; k++ {
		p := a.ElementPos(k)
		if math.Abs(p.Dist(geom.Pt(0, 0))-0.1) > 1e-12 {
			t.Errorf("element %d not on circle: %v", k, p)
		}
	}
}

func TestSteeringVectorBroadside(t *testing.T) {
	// A wave from broadside (perpendicular to the row) reaches all
	// elements simultaneously: the steering vector is all ones.
	a := NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	v := a.SteeringVector(math.Pi/2, lambda)
	for k, x := range v {
		if cmplx.Abs(x-1) > 1e-12 {
			t.Errorf("broadside element %d = %v", k, x)
		}
	}
}

func TestSteeringVectorEndfire(t *testing.T) {
	// A wave from endfire (along the row, θ=0) advances by
	// 2π·(λ/2)/λ = π per element.
	a := NewLinear(geom.Pt(0, 0), 0, 4, lambda)
	v := a.SteeringVector(0, lambda)
	for k, x := range v {
		want := cmplx.Exp(complex(0, math.Pi*float64(k)))
		if cmplx.Abs(x-want) > 1e-12 {
			t.Errorf("endfire element %d = %v, want %v", k, x, want)
		}
	}
}

func TestSteeringVectorMirrorSymmetry(t *testing.T) {
	// A linear array cannot distinguish θ from −θ (mirror across its
	// axis): steering vectors must be identical.
	a := NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	for _, th := range []float64{0.3, 1.1, 2.0} {
		v1 := a.SteeringVector(th, lambda)
		v2 := a.SteeringVector(2*math.Pi-th, lambda)
		for k := range v1 {
			if cmplx.Abs(v1[k]-v2[k]) > 1e-12 {
				t.Fatalf("θ=%v: mirror steering differs at element %d", th, k)
			}
		}
	}
}

func TestNinthAntennaBreaksMirrorSymmetry(t *testing.T) {
	a := NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	a.NinthAntenna = true
	v1 := a.SteeringVector(0.7, lambda)
	v2 := a.SteeringVector(2*math.Pi-0.7, lambda)
	if cmplx.Abs(v1[8]-v2[8]) < 1e-6 {
		t.Error("ninth antenna fails to distinguish front from back")
	}
}

func TestSteeringVectorRowExcludesNinth(t *testing.T) {
	a := NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	a.NinthAntenna = true
	if got := len(a.SteeringVectorRow(1, lambda)); got != 8 {
		t.Errorf("row steering length = %d", got)
	}
	if got := len(a.SteeringVector(1, lambda)); got != 9 {
		t.Errorf("full steering length = %d", got)
	}
}

func TestApplyAndCorrectOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewLinear(geom.Pt(0, 0), 0, 4, lambda)
	a.RandomizePhaseOffsets(rng)
	if a.PhaseOffsets[0] != 0 {
		t.Error("element 0 must stay the zero-phase reference")
	}
	x := []complex128{1, 1, 1, 1}
	a.ApplyOffsets(x)
	// With offsets applied the vector is no longer all-ones.
	var changed bool
	for _, v := range x[1:] {
		if cmplx.Abs(v-1) > 1e-9 {
			changed = true
		}
	}
	if !changed {
		t.Fatal("offsets had no effect")
	}
	CorrectOffsets(x, a.PhaseOffsets)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("element %d not restored: %v", k, v)
		}
	}
}

func TestCalibrationCancelsCableImbalance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	a.RandomizePhaseOffsets(rng)
	tone := &CalibrationTone{
		ExternalPhases: NewImperfectCables(8, 0.3, rng), // generous imbalance
	}
	measured, err := Calibrate(a, tone)
	if err != nil {
		t.Fatal(err)
	}
	if e := OffsetError(a, measured); e > 1e-9 {
		t.Errorf("noise-free calibration residual = %v rad", e)
	}
}

func TestCalibrationSingleRunIsBiased(t *testing.T) {
	// Without the swap, cable imbalance leaks straight into the offset
	// estimate — the reason §3 runs the procedure twice.
	rng := rand.New(rand.NewSource(22))
	a := NewLinear(geom.Pt(0, 0), 0, 4, lambda)
	a.RandomizePhaseOffsets(rng)
	tone := &CalibrationTone{ExternalPhases: NewImperfectCables(4, 0.3, rng)}
	identity := []int{0, 1, 2, 3}
	obs, err := tone.Measure(a, identity)
	if err != nil {
		t.Fatal(err)
	}
	if e := OffsetError(a, obs); e < 0.01 {
		t.Errorf("single-run calibration suspiciously accurate (%v rad); cable imbalance should bias it", e)
	}
}

func TestCableImbalanceRecovered(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := NewLinear(geom.Pt(0, 0), 0, 4, lambda)
	a.RandomizePhaseOffsets(rng)
	ext := NewImperfectCables(4, 0.2, rng)
	tone := &CalibrationTone{ExternalPhases: ext}
	imb, err := CableImbalance(a, tone)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < 4; k++ {
		want := wrapPhase(ext[0] - ext[k])
		if math.Abs(wrapPhase(imb[k]-want)) > 1e-9 {
			t.Errorf("cable %d imbalance = %v, want %v", k, imb[k], want)
		}
	}
}

func TestCalibrationWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	a.RandomizePhaseOffsets(rng)
	tone := &CalibrationTone{
		ExternalPhases: NewImperfectCables(8, 0.3, rng),
		PhaseNoise:     0.01,
		Rng:            rng,
	}
	measured, err := Calibrate(a, tone)
	if err != nil {
		t.Fatal(err)
	}
	if e := OffsetError(a, measured); e > 0.05 {
		t.Errorf("noisy calibration residual = %v rad, want < 0.05", e)
	}
}

func TestCalibrateErrorOnMissingCables(t *testing.T) {
	a := NewLinear(geom.Pt(0, 0), 0, 4, lambda)
	tone := &CalibrationTone{ExternalPhases: []float64{0, 0}}
	if _, err := Calibrate(a, tone); err == nil {
		t.Error("expected error with too few cables")
	}
}

func TestValidate(t *testing.T) {
	a := NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	if err := a.Validate(); err != nil {
		t.Errorf("valid array rejected: %v", err)
	}
	bad := NewLinear(geom.Pt(0, 0), 0, 1, lambda)
	if err := bad.Validate(); err == nil {
		t.Error("1-element array accepted")
	}
	a.PhaseOffsets = []float64{0, 0}
	if err := a.Validate(); err == nil {
		t.Error("mismatched offsets accepted")
	}
}

func TestBearingTo(t *testing.T) {
	a := NewLinear(geom.Pt(0, 0), 0, 4, lambda)
	if got := a.BearingTo(geom.Pt(0, 5)); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("BearingTo = %v", got)
	}
}

func TestWrapPhase(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{3 * math.Pi, math.Pi},
		{-3 * math.Pi, math.Pi},
		{math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := wrapPhase(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("wrapPhase(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCentroid(t *testing.T) {
	a := NewLinear(geom.Pt(0, 0), 0, 8, lambda)
	c := a.Centroid()
	want := 3.5 * lambda / 2
	if math.Abs(c.X-want) > 1e-12 || math.Abs(c.Y) > 1e-12 {
		t.Errorf("Centroid = %v", c)
	}
}
