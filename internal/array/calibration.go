package array

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/geom"
)

// CalibrationTone models the USRP2 continuous-wave calibration source of
// §3: a tone split through SMA splitters and cables ("external paths")
// into each radio front end. Cable k adds external phase ext[k]; the
// radio adds its unknown internal offset ψ_k. A measurement therefore
// observes ψ_k + ext_k (+ noise), mirroring Equations 9–10.
type CalibrationTone struct {
	// ExternalPhases are the per-cable phases Phex_k in radians. Real
	// splitters and "identical" cables differ slightly; populate with
	// NewImperfectCables.
	ExternalPhases []float64
	// PhaseNoise is the standard deviation (radians) of measurement
	// noise per observation.
	PhaseNoise float64
	// Rng drives the measurement noise. Nil means noise-free.
	Rng *rand.Rand
}

// NewImperfectCables returns n external-path phases that are nominally
// equal but differ by manufacturing tolerances of ±tol radians,
// reproducing the "small manufacturing imperfections" of §3.
func NewImperfectCables(n int, tol float64, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = (rng.Float64()*2 - 1) * tol
	}
	return out
}

// Measure performs one calibration run: the tone is fed through cable
// perm[k] into radio k, and the observed phase of radio k relative to
// radio 0 is returned, i.e.
//
//	obs[k] = (ψ_k + ext_perm[k]) − (ψ_0 + ext_perm[0])  (mod 2π)
//
// matching Equation 9 of the paper (Equation 10 with a swapped perm).
func (c *CalibrationTone) Measure(a *Array, perm []int) ([]float64, error) {
	n := a.NumElements()
	if len(perm) != n || len(c.ExternalPhases) < n {
		return nil, errors.New("array: calibration needs one cable per element")
	}
	offsets := a.PhaseOffsets
	if len(offsets) == 0 {
		offsets = make([]float64, n)
	}
	obs := make([]float64, n)
	ref := offsets[0] + c.ExternalPhases[perm[0]]
	for k := 0; k < n; k++ {
		phase := offsets[k] + c.ExternalPhases[perm[k]] - ref
		if c.Rng != nil && c.PhaseNoise > 0 {
			phase += c.Rng.NormFloat64() * c.PhaseNoise
		}
		obs[k] = wrapPhase(phase)
	}
	return obs, nil
}

// Calibrate runs the paper's two-measurement swap procedure for every
// radio pair (0, k): measure once with the nominal cable assignment
// (Eq. 9), once with cables 0 and k exchanged (Eq. 10), and average the
// two observations (Eq. 11) so the unknown cable imbalance cancels.
// The returned slice is the per-element internal offset ψ_k − ψ_0,
// suitable for CorrectOffsets.
func Calibrate(a *Array, tone *CalibrationTone) ([]float64, error) {
	n := a.NumElements()
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	first, err := tone.Measure(a, identity)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for k := 1; k < n; k++ {
		swapped := make([]int, n)
		copy(swapped, identity)
		swapped[0], swapped[k] = k, 0
		second, err := tone.Measure(a, swapped)
		if err != nil {
			return nil, err
		}
		// Eq. 11: Phoff = (Phoff1 + Phoff2)/2, with circular averaging
		// because both observations are modulo 2π.
		out[k] = circularMean(first[k], second[k])
	}
	return out, nil
}

// CableImbalance returns the estimated external-path phase difference
// Phex_0 − Phex_k for each k from the same two measurements (Eq. 12).
// Useful as a hardware diagnostic.
func CableImbalance(a *Array, tone *CalibrationTone) ([]float64, error) {
	n := a.NumElements()
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	first, err := tone.Measure(a, identity)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for k := 1; k < n; k++ {
		swapped := make([]int, n)
		copy(swapped, identity)
		swapped[0], swapped[k] = k, 0
		second, err := tone.Measure(a, swapped)
		if err != nil {
			return nil, err
		}
		// Both observations are modulo 2π, so the doubled imbalance must
		// be unwrapped before halving. This is unambiguous as long as
		// the true imbalance is below π/2 — comfortably true for cables
		// labelled the same length.
		out[k] = wrapPhase(second[k]-first[k]) / 2
	}
	return out, nil
}

// wrapPhase maps a phase to (−π, π].
func wrapPhase(p float64) float64 {
	p = math.Mod(p, 2*math.Pi)
	if p > math.Pi {
		p -= 2 * math.Pi
	}
	if p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}

// circularMean averages two angles on the circle, robust to the ±π
// wrap.
func circularMean(a, b float64) float64 {
	z := cmplx.Exp(complex(0, a)) + cmplx.Exp(complex(0, b))
	return cmplx.Phase(z)
}

// OffsetError returns the largest absolute residual, over all elements,
// between a measured calibration and the array's true internal offsets
// (element 0 referenced), folded to (−π, π]. Zero means perfect
// calibration.
func OffsetError(a *Array, measured []float64) float64 {
	truth := a.PhaseOffsets
	if len(truth) == 0 {
		truth = make([]float64, a.NumElements())
	}
	var worst float64
	for k := 0; k < a.NumElements() && k < len(measured); k++ {
		want := wrapPhase(truth[k] - truth[0])
		got := wrapPhase(measured[k])
		if e := math.Abs(wrapPhase(got - want)); e > worst {
			worst = e
		}
	}
	return worst
}

// BearingTo returns the bearing from the array reference point to p,
// the θ that SteeringVector expects for a source at p in the far field.
func (a *Array) BearingTo(p geom.Point) float64 {
	return a.Pos.Bearing(p)
}
