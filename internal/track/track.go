// Package track adds the temporal layer the paper's introduction
// motivates ("track wireless clients at a very fine granularity in real
// time, as they roam about a building"): a constant-velocity Kalman
// filter over the per-frame position fixes produced by the ArrayTrack
// backend, plus gating that rejects the occasional catastrophic fix
// (mirror-ambiguity or end-fire failures) which would otherwise yank
// the track across the building.
package track

import (
	"errors"
	"math"

	"repro/internal/geom"
)

// Filter is a 2-D constant-velocity Kalman filter with state
// [x, y, vx, vy]. The zero value is not ready; use NewFilter.
type Filter struct {
	// x is the state estimate.
	x [4]float64
	// p is the state covariance (row-major 4×4).
	p [16]float64
	// processNoise is the white-acceleration spectral density q
	// (m²/s³); larger tolerates more manoeuvring.
	processNoise float64
	// measNoise is the per-axis measurement standard deviation σ (m).
	measNoise float64
	// gate is the Mahalanobis-distance gate (in σ units) beyond which
	// a fix is rejected as an outlier.
	gate        float64
	initialized bool
	rejects     int
	accepts     int
}

// NewFilter returns a tracker. processNoise is the acceleration
// spectral density in m²/s³ (≈1 suits walking), measSigma the expected
// per-axis fix error in metres (≈0.3–0.5 for ArrayTrack with several
// APs), and gate the outlier gate in standard deviations (0 disables
// gating; 3–5 is typical).
func NewFilter(processNoise, measSigma, gate float64) *Filter {
	return &Filter{
		processNoise: math.Max(processNoise, 1e-6),
		measNoise:    math.Max(measSigma, 1e-3),
		gate:         gate,
	}
}

// State returns the current position and velocity estimates.
func (f *Filter) State() (pos geom.Point, vel geom.Vec) {
	return geom.Pt(f.x[0], f.x[1]), geom.Vec{X: f.x[2], Y: f.x[3]}
}

// Rejected returns how many fixes the gate has discarded.
func (f *Filter) Rejected() int { return f.rejects }

// Accepted returns how many fixes have been folded into the state
// (the initializing fix included).
func (f *Filter) Accepted() int { return f.accepts }

// Gate returns the configured Mahalanobis gate in σ units (0 when
// gating is disabled).
func (f *Filter) Gate() float64 { return f.gate }

// Predict advances the state by dt seconds without a measurement.
func (f *Filter) Predict(dt float64) error {
	if !f.initialized {
		return errors.New("track: Predict before first Update")
	}
	if dt < 0 {
		return errors.New("track: negative dt")
	}
	f.predict(dt)
	return nil
}

func (f *Filter) predict(dt float64) {
	// x ← F x with F = [I, dt·I; 0, I].
	f.x[0] += dt * f.x[2]
	f.x[1] += dt * f.x[3]
	// P ← F P Fᵀ + Q, with the white-acceleration Q.
	var fp [16]float64
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			v := f.p[r*4+c]
			if r < 2 {
				v += dt * f.p[(r+2)*4+c]
			}
			fp[r*4+c] = v
		}
	}
	var pNew [16]float64
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			v := fp[r*4+c]
			if c < 2 {
				v += dt * fp[r*4+c+2]
			}
			pNew[r*4+c] = v
		}
	}
	q := f.processNoise
	dt2 := dt * dt
	dt3 := dt2 * dt / 2
	dt4 := dt2 * dt2 / 4
	for axis := 0; axis < 2; axis++ {
		pNew[axis*4+axis] += q * dt4
		pNew[axis*4+axis+2] += q * dt3
		pNew[(axis+2)*4+axis] += q * dt3
		pNew[(axis+2)*4+axis+2] += q * dt2
	}
	f.p = pNew
}

// Update folds a position fix taken dt seconds after the previous one
// into the track. The first call initializes the filter at the fix. It
// reports whether the fix was accepted (false means the gate rejected
// it and only the prediction advanced).
func (f *Filter) Update(fix geom.Point, dt float64) (accepted bool, err error) {
	return f.update(fix, dt, f.gate)
}

// UpdateScaled is Update with the Mahalanobis gate widened by scale
// for this one fix (scale ≤ 1 applies the configured gate unchanged).
// Degraded fixes — localized from fewer APs than the full quorum —
// carry more error than the gate's σ budget assumes; widening the gate
// for exactly those fixes lets an outage-degraded fix sustain a track
// the normal gate would starve, without loosening it for healthy
// traffic.
func (f *Filter) UpdateScaled(fix geom.Point, dt, scale float64) (accepted bool, err error) {
	gate := f.gate
	if scale > 1 && gate > 0 {
		gate *= scale
	}
	return f.update(fix, dt, gate)
}

func (f *Filter) update(fix geom.Point, dt, gate float64) (accepted bool, err error) {
	if !f.initialized {
		f.x = [4]float64{fix.X, fix.Y, 0, 0}
		// Generous initial uncertainty: position at measurement noise,
		// velocity unknown at walking scale.
		for i := range f.p {
			f.p[i] = 0
		}
		f.p[0] = f.measNoise * f.measNoise
		f.p[5] = f.measNoise * f.measNoise
		f.p[10] = 4
		f.p[15] = 4
		f.initialized = true
		f.accepts = 1
		return true, nil
	}
	if dt < 0 {
		return false, errors.New("track: negative dt")
	}
	f.predict(dt)

	// Innovation and its covariance S = H P Hᵀ + R (H picks x, y).
	iy0 := fix.X - f.x[0]
	iy1 := fix.Y - f.x[1]
	r2 := f.measNoise * f.measNoise
	s00 := f.p[0] + r2
	s01 := f.p[1]
	s10 := f.p[4]
	s11 := f.p[5] + r2
	det := s00*s11 - s01*s10
	if det <= 0 {
		return false, errors.New("track: degenerate innovation covariance")
	}
	// Mahalanobis gate.
	inv00, inv01, inv10, inv11 := s11/det, -s01/det, -s10/det, s00/det
	d2 := iy0*(inv00*iy0+inv01*iy1) + iy1*(inv10*iy0+inv11*iy1)
	if gate > 0 && d2 > gate*gate {
		f.rejects++
		return false, nil
	}

	// Kalman gain K = P Hᵀ S⁻¹ (4×2).
	var k [8]float64
	for r := 0; r < 4; r++ {
		pc0 := f.p[r*4+0]
		pc1 := f.p[r*4+1]
		k[r*2+0] = pc0*inv00 + pc1*inv10
		k[r*2+1] = pc0*inv01 + pc1*inv11
	}
	for r := 0; r < 4; r++ {
		f.x[r] += k[r*2+0]*iy0 + k[r*2+1]*iy1
	}
	// P ← (I − K H) P.
	var pNew [16]float64
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			v := f.p[r*4+c] - k[r*2+0]*f.p[0*4+c] - k[r*2+1]*f.p[1*4+c]
			pNew[r*4+c] = v
		}
	}
	f.p = pNew
	f.accepts++
	return true, nil
}

// PositionVariance returns the per-axis position variances, a measure
// of track confidence.
func (f *Filter) PositionVariance() (vx, vy float64) {
	return f.p[0], f.p[5]
}

// FilterState is the complete serializable state of a Filter: the
// state vector, the full covariance, the noise/gate parameters, and
// the accept/reject counters. It is the unit the engine's tracker
// snapshot/restore (and the shard-migration path built on it) ships
// across process boundaries; NewFilterFromState rebuilds a filter
// whose every subsequent Predict/Update/PredictState is bit-identical
// to the original's. All fields are plain numbers, so the struct
// round-trips exactly through encoding/json (Go emits the shortest
// decimal that parses back to the same float64).
type FilterState struct {
	// X is the state estimate [x, y, vx, vy].
	X [4]float64 `json:"x"`
	// P is the row-major 4×4 state covariance.
	P [16]float64 `json:"p"`
	// ProcessNoise, MeasNoise, Gate mirror the NewFilter parameters
	// (post-clamping, so restoring never re-clamps a live value).
	ProcessNoise float64 `json:"process_noise"`
	MeasNoise    float64 `json:"meas_noise"`
	Gate         float64 `json:"gate"`
	// Initialized reports whether the first fix has been folded in.
	Initialized bool `json:"initialized"`
	// Accepts and Rejects are the gate counters.
	Accepts int `json:"accepts"`
	Rejects int `json:"rejects"`
}

// Snapshot captures the filter's complete state.
func (f *Filter) Snapshot() FilterState {
	return FilterState{
		X:            f.x,
		P:            f.p,
		ProcessNoise: f.processNoise,
		MeasNoise:    f.measNoise,
		Gate:         f.gate,
		Initialized:  f.initialized,
		Accepts:      f.accepts,
		Rejects:      f.rejects,
	}
}

// Valid reports whether the state is restorable: finite numbers
// everywhere and positive noise parameters. It rejects snapshots that
// were corrupted in transit rather than trying to repair them.
func (s FilterState) Valid() bool {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	for _, v := range s.X {
		if !finite(v) {
			return false
		}
	}
	for _, v := range s.P {
		if !finite(v) {
			return false
		}
	}
	return finite(s.ProcessNoise) && s.ProcessNoise > 0 &&
		finite(s.MeasNoise) && s.MeasNoise > 0 &&
		finite(s.Gate) && s.Gate >= 0
}

// NewFilterFromState rebuilds a filter from a snapshot. The state is
// copied verbatim — no clamping, no re-derivation — so predictions and
// updates continue bit-identically from where the snapshotted filter
// left off. It returns an error for states Valid rejects.
func NewFilterFromState(s FilterState) (*Filter, error) {
	if !s.Valid() {
		return nil, errors.New("track: invalid filter state")
	}
	return &Filter{
		x:            s.X,
		p:            s.P,
		processNoise: s.ProcessNoise,
		measNoise:    s.MeasNoise,
		gate:         s.Gate,
		initialized:  s.Initialized,
		accepts:      s.Accepts,
		rejects:      s.Rejects,
	}, nil
}

// Prediction is the filter's state extrapolated forward without a
// measurement: where the next fix is expected and the innovation
// covariance S = H(FPFᵀ+Q)Hᵀ + R it will be gated against. It is the
// covariance→region export the predictive localization path consumes:
// Box bounds where a gate-accepted fix can land, so a search
// restricted to it provably never excludes a fix the tracker would
// have accepted.
type Prediction struct {
	// Pos is the predicted position, Vel the velocity estimate carried
	// with it.
	Pos geom.Point
	Vel geom.Vec
	// Sxx, Sxy, Syy are the innovation covariance entries (m²).
	Sxx, Sxy, Syy float64
	// Gate is the filter's Mahalanobis gate in σ units (0 = disabled).
	Gate float64
}

// PredictState returns the prediction dt seconds ahead of the last
// update without mutating the filter. It reports false before the
// first accepted fix. Negative dt is treated as zero (a simultaneous
// or slightly reordered capture, as in Update).
func (f *Filter) PredictState(dt float64) (Prediction, bool) {
	if !f.initialized {
		return Prediction{}, false
	}
	if dt < 0 || math.IsNaN(dt) {
		dt = 0
	}
	g := *f // value copy: predict scratch, the filter is untouched
	g.predict(dt)
	r2 := f.measNoise * f.measNoise
	return Prediction{
		Pos:  geom.Pt(g.x[0], g.x[1]),
		Vel:  geom.Vec{X: g.x[2], Y: g.x[3]},
		Sxx:  g.p[0] + r2,
		Sxy:  g.p[1],
		Syy:  g.p[5] + r2,
		Gate: f.gate,
	}, true
}

// MahalanobisSq returns the squared Mahalanobis distance of a fix
// under the prediction's innovation covariance — the quantity Update
// gates against. A degenerate covariance returns +Inf (nothing is
// accepted).
func (p Prediction) MahalanobisSq(fix geom.Point) float64 {
	det := p.Sxx*p.Syy - p.Sxy*p.Sxy
	if det <= 0 {
		return math.Inf(1)
	}
	y0, y1 := fix.X-p.Pos.X, fix.Y-p.Pos.Y
	return (y0*(p.Syy*y0-p.Sxy*y1) + y1*(p.Sxx*y1-p.Sxy*y0)) / det
}

// Accepts reports whether a fix at the given position would pass the
// prediction's Mahalanobis gate (always true when gating is disabled).
func (p Prediction) Accepts(fix geom.Point) bool {
	if p.Gate <= 0 {
		return true
	}
	return p.MahalanobisSq(fix) <= p.Gate*p.Gate
}

// Box returns the axis-aligned box covering the sigma-σ innovation
// ellipse around the predicted position: half-extents sigma·√Sxx and
// sigma·√Syy (the ellipse's exact axis-aligned bound, whatever the
// cross-correlation). Every fix with Mahalanobis distance ≤ sigma
// lies inside it, so with sigma ≥ Gate the box contains every fix the
// filter could accept.
func (p Prediction) Box(sigma float64) (min, max geom.Point) {
	hx := sigma * math.Sqrt(math.Max(p.Sxx, 0))
	hy := sigma * math.Sqrt(math.Max(p.Syy, 0))
	return geom.Pt(p.Pos.X-hx, p.Pos.Y-hy), geom.Pt(p.Pos.X+hx, p.Pos.Y+hy)
}

// Track is a convenience wrapper that feeds a sequence of fixes through
// a Filter and records the smoothed trail.
type Track struct {
	Filter *Filter
	// Trail holds the smoothed positions after each accepted or
	// predicted step.
	Trail []geom.Point
}

// NewTrack returns a Track around a freshly configured filter.
func NewTrack(processNoise, measSigma, gate float64) *Track {
	return &Track{Filter: NewFilter(processNoise, measSigma, gate)}
}

// Add folds one fix (dt seconds after the previous) and appends the
// smoothed position to the trail.
func (t *Track) Add(fix geom.Point, dt float64) error {
	if _, err := t.Filter.Update(fix, dt); err != nil {
		return err
	}
	pos, _ := t.Filter.State()
	t.Trail = append(t.Trail, pos)
	return nil
}
