package track

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestFilterInitializesAtFirstFix(t *testing.T) {
	f := NewFilter(1, 0.3, 0)
	ok, err := f.Update(geom.Pt(3, 4), 0)
	if err != nil || !ok {
		t.Fatalf("first update: %v %v", ok, err)
	}
	pos, vel := f.State()
	if pos != geom.Pt(3, 4) || vel != (geom.Vec{}) {
		t.Errorf("state after init = %v %v", pos, vel)
	}
}

func TestFilterSmoothsNoisyStraightWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewFilter(0.5, 0.4, 0)
	const dt = 0.5
	var rawErr, smoothErr float64
	n := 0
	for i := 0; i < 60; i++ {
		truth := geom.Pt(1.2*float64(i)*dt, 5)
		fix := truth.Add(geom.Vec{X: rng.NormFloat64() * 0.4, Y: rng.NormFloat64() * 0.4})
		if _, err := f.Update(fix, dt); err != nil {
			t.Fatal(err)
		}
		if i >= 10 { // after convergence
			pos, _ := f.State()
			rawErr += fix.Dist(truth)
			smoothErr += pos.Dist(truth)
			n++
		}
	}
	if smoothErr >= rawErr {
		t.Errorf("filter no better than raw fixes: %.2f vs %.2f", smoothErr/float64(n), rawErr/float64(n))
	}
	// Velocity should approach (1.2, 0).
	_, vel := f.State()
	if math.Abs(vel.X-1.2) > 0.4 || math.Abs(vel.Y) > 0.4 {
		t.Errorf("velocity = %v, want ≈(1.2, 0)", vel)
	}
}

func TestFilterGateRejectsOutlier(t *testing.T) {
	f := NewFilter(0.5, 0.3, 4)
	for i := 0; i < 20; i++ {
		if _, err := f.Update(geom.Pt(float64(i)*0.3, 2), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := f.State()
	// A catastrophic mirror fix 15 m away.
	ok, err := f.Update(geom.Pt(before.X, 17), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("outlier fix accepted")
	}
	if f.Rejected() != 1 {
		t.Errorf("Rejected = %d", f.Rejected())
	}
	after, _ := f.State()
	if after.Dist(before) > 1 {
		t.Errorf("outlier moved the track %v → %v", before, after)
	}
}

func TestFilterPredictWithoutMeasurement(t *testing.T) {
	f := NewFilter(0.5, 0.3, 0)
	if err := f.Predict(0.5); err == nil {
		t.Error("Predict before init should error")
	}
	// Converge on a moving target, then coast.
	for i := 0; i < 30; i++ {
		f.Update(geom.Pt(float64(i)*0.5, 0), 0.5)
	}
	pos0, _ := f.State()
	if err := f.Predict(1.0); err != nil {
		t.Fatal(err)
	}
	pos1, _ := f.State()
	if pos1.X <= pos0.X {
		t.Errorf("coasting did not advance: %v → %v", pos0, pos1)
	}
	vx0, _ := f.PositionVariance()
	f.Predict(5)
	vx1, _ := f.PositionVariance()
	if vx1 <= vx0 {
		t.Error("coasting should grow uncertainty")
	}
	if err := f.Predict(-1); err == nil {
		t.Error("negative dt should error")
	}
}

func TestFilterNegativeDtUpdate(t *testing.T) {
	f := NewFilter(1, 0.3, 0)
	f.Update(geom.Pt(0, 0), 0)
	if _, err := f.Update(geom.Pt(1, 1), -0.5); err == nil {
		t.Error("negative dt should error")
	}
}

func TestTrackTrail(t *testing.T) {
	tr := NewTrack(0.5, 0.3, 4)
	for i := 0; i < 5; i++ {
		if err := tr.Add(geom.Pt(float64(i), 0), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if len(tr.Trail) != 5 {
		t.Fatalf("trail = %d", len(tr.Trail))
	}
	// Trail is monotone in x for a straight walk.
	for i := 1; i < len(tr.Trail); i++ {
		if tr.Trail[i].X < tr.Trail[i-1].X-0.2 {
			t.Errorf("trail regressed at %d: %v", i, tr.Trail)
		}
	}
}

func TestCovarianceStaysSymmetricPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := NewFilter(1, 0.3, 0)
	for i := 0; i < 200; i++ {
		fix := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		if _, err := f.Update(fix, 0.2); err != nil {
			t.Fatal(err)
		}
		vx, vy := f.PositionVariance()
		if vx <= 0 || vy <= 0 || math.IsNaN(vx) || math.IsNaN(vy) {
			t.Fatalf("variance degenerate at step %d: %v %v", i, vx, vy)
		}
	}
}
