package track

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestFilterInitializesAtFirstFix(t *testing.T) {
	f := NewFilter(1, 0.3, 0)
	ok, err := f.Update(geom.Pt(3, 4), 0)
	if err != nil || !ok {
		t.Fatalf("first update: %v %v", ok, err)
	}
	pos, vel := f.State()
	if pos != geom.Pt(3, 4) || vel != (geom.Vec{}) {
		t.Errorf("state after init = %v %v", pos, vel)
	}
}

func TestFilterSmoothsNoisyStraightWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewFilter(0.5, 0.4, 0)
	const dt = 0.5
	var rawErr, smoothErr float64
	n := 0
	for i := 0; i < 60; i++ {
		truth := geom.Pt(1.2*float64(i)*dt, 5)
		fix := truth.Add(geom.Vec{X: rng.NormFloat64() * 0.4, Y: rng.NormFloat64() * 0.4})
		if _, err := f.Update(fix, dt); err != nil {
			t.Fatal(err)
		}
		if i >= 10 { // after convergence
			pos, _ := f.State()
			rawErr += fix.Dist(truth)
			smoothErr += pos.Dist(truth)
			n++
		}
	}
	if smoothErr >= rawErr {
		t.Errorf("filter no better than raw fixes: %.2f vs %.2f", smoothErr/float64(n), rawErr/float64(n))
	}
	// Velocity should approach (1.2, 0).
	_, vel := f.State()
	if math.Abs(vel.X-1.2) > 0.4 || math.Abs(vel.Y) > 0.4 {
		t.Errorf("velocity = %v, want ≈(1.2, 0)", vel)
	}
}

func TestFilterGateRejectsOutlier(t *testing.T) {
	f := NewFilter(0.5, 0.3, 4)
	for i := 0; i < 20; i++ {
		if _, err := f.Update(geom.Pt(float64(i)*0.3, 2), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := f.State()
	// A catastrophic mirror fix 15 m away.
	ok, err := f.Update(geom.Pt(before.X, 17), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("outlier fix accepted")
	}
	if f.Rejected() != 1 {
		t.Errorf("Rejected = %d", f.Rejected())
	}
	after, _ := f.State()
	if after.Dist(before) > 1 {
		t.Errorf("outlier moved the track %v → %v", before, after)
	}
}

func TestFilterPredictWithoutMeasurement(t *testing.T) {
	f := NewFilter(0.5, 0.3, 0)
	if err := f.Predict(0.5); err == nil {
		t.Error("Predict before init should error")
	}
	// Converge on a moving target, then coast.
	for i := 0; i < 30; i++ {
		f.Update(geom.Pt(float64(i)*0.5, 0), 0.5)
	}
	pos0, _ := f.State()
	if err := f.Predict(1.0); err != nil {
		t.Fatal(err)
	}
	pos1, _ := f.State()
	if pos1.X <= pos0.X {
		t.Errorf("coasting did not advance: %v → %v", pos0, pos1)
	}
	vx0, _ := f.PositionVariance()
	f.Predict(5)
	vx1, _ := f.PositionVariance()
	if vx1 <= vx0 {
		t.Error("coasting should grow uncertainty")
	}
	if err := f.Predict(-1); err == nil {
		t.Error("negative dt should error")
	}
}

func TestFilterNegativeDtUpdate(t *testing.T) {
	f := NewFilter(1, 0.3, 0)
	f.Update(geom.Pt(0, 0), 0)
	if _, err := f.Update(geom.Pt(1, 1), -0.5); err == nil {
		t.Error("negative dt should error")
	}
}

func TestTrackTrail(t *testing.T) {
	tr := NewTrack(0.5, 0.3, 4)
	for i := 0; i < 5; i++ {
		if err := tr.Add(geom.Pt(float64(i), 0), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if len(tr.Trail) != 5 {
		t.Fatalf("trail = %d", len(tr.Trail))
	}
	// Trail is monotone in x for a straight walk.
	for i := 1; i < len(tr.Trail); i++ {
		if tr.Trail[i].X < tr.Trail[i-1].X-0.2 {
			t.Errorf("trail regressed at %d: %v", i, tr.Trail)
		}
	}
}

func TestPredictStateMatchesPredictAndDoesNotMutate(t *testing.T) {
	f := NewFilter(0.5, 0.3, 4)
	if _, ok := f.PredictState(1); ok {
		t.Fatal("PredictState before init must report false")
	}
	for i := 0; i < 20; i++ {
		f.Update(geom.Pt(float64(i)*0.5, 2), 0.5)
	}
	posBefore, velBefore := f.State()
	vxB, vyB := f.PositionVariance()

	pred, ok := f.PredictState(0.5)
	if !ok {
		t.Fatal("PredictState after init must report true")
	}
	// Non-mutating: the filter is exactly where it was.
	posAfter, velAfter := f.State()
	vxA, vyA := f.PositionVariance()
	if posAfter != posBefore || velAfter != velBefore || vxA != vxB || vyA != vyB {
		t.Fatal("PredictState mutated the filter")
	}
	// Consistent with the mutating Predict: same predicted position
	// and position covariance.
	g := *f
	if err := g.Predict(0.5); err != nil {
		t.Fatal(err)
	}
	gpos, gvel := g.State()
	if pred.Pos != gpos || pred.Vel != gvel {
		t.Fatalf("PredictState pos %v vel %v != Predict %v %v", pred.Pos, pred.Vel, gpos, gvel)
	}
	gx, gy := g.PositionVariance()
	r2 := 0.3 * 0.3
	if math.Abs(pred.Sxx-(gx+r2)) > 1e-12 || math.Abs(pred.Syy-(gy+r2)) > 1e-12 {
		t.Fatalf("innovation covariance %v %v != predicted P + R (%v %v)", pred.Sxx, pred.Syy, gx+r2, gy+r2)
	}
	if pred.Gate != 4 {
		t.Fatalf("Gate = %v, want 4", pred.Gate)
	}
}

// TestPredictionGateMatchesFilterGate: a fix the prediction's
// Mahalanobis check accepts is exactly a fix Update would accept at
// the same dt, and vice versa — the predictive region path and the
// tracker gate agree by construction.
func TestPredictionGateMatchesFilterGate(t *testing.T) {
	mk := func() *Filter {
		f := NewFilter(0.5, 0.3, 4)
		for i := 0; i < 15; i++ {
			f.Update(geom.Pt(float64(i)*0.4, 1), 0.5)
		}
		return f
	}
	base := mk()
	pred, _ := base.PredictState(0.5)
	for _, fix := range []geom.Point{
		pred.Pos,                            // dead centre: accepted
		pred.Pos.Add(geom.Vec{X: 0.5}),      // near: accepted
		pred.Pos.Add(geom.Vec{X: 10, Y: 5}), // catastrophic: rejected
	} {
		f := mk()
		accepted, err := f.Update(fix, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if got := pred.Accepts(fix); got != accepted {
			t.Fatalf("fix %v: Prediction.Accepts=%v, Filter.Update accepted=%v", fix, got, accepted)
		}
	}
}

// TestPredictionBoxCoversGate: every fix at Mahalanobis distance ≤
// sigma lies inside Box(sigma), so a region search over the box never
// excludes a fix the gate would accept.
func TestPredictionBoxCoversGate(t *testing.T) {
	f := NewFilter(0.8, 0.4, 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 12; i++ {
		f.Update(geom.Pt(float64(i)*0.6+rng.NormFloat64()*0.2, 3+rng.NormFloat64()*0.2), 0.5)
	}
	pred, _ := f.PredictState(1.0)
	min, max := pred.Box(pred.Gate)
	if !(min.X < pred.Pos.X && pred.Pos.X < max.X && min.Y < pred.Pos.Y && pred.Pos.Y < max.Y) {
		t.Fatalf("box %v–%v does not contain predicted pos %v", min, max, pred.Pos)
	}
	// Sample the gate ellipse boundary densely: all inside the box.
	for k := 0; k < 360; k++ {
		// A point at Mahalanobis distance exactly Gate along direction θ:
		// solve y = d·u / sqrt(uᵀS⁻¹u) for unit u.
		th := 2 * math.Pi * float64(k) / 360
		ux, uy := math.Cos(th), math.Sin(th)
		det := pred.Sxx*pred.Syy - pred.Sxy*pred.Sxy
		q := (pred.Syy*ux*ux - 2*pred.Sxy*ux*uy + pred.Sxx*uy*uy) / det
		s := pred.Gate / math.Sqrt(q)
		p := geom.Pt(pred.Pos.X+s*ux, pred.Pos.Y+s*uy)
		if d2 := pred.MahalanobisSq(p); math.Abs(math.Sqrt(d2)-pred.Gate) > 1e-9 {
			t.Fatalf("boundary construction off: d=%v want %v", math.Sqrt(d2), pred.Gate)
		}
		if p.X < min.X-1e-9 || p.X > max.X+1e-9 || p.Y < min.Y-1e-9 || p.Y > max.Y+1e-9 {
			t.Fatalf("gate-ellipse point %v escapes box %v–%v", p, min, max)
		}
	}
	if !pred.Accepts(pred.Pos) {
		t.Fatal("predicted position itself must be accepted")
	}
}

func TestFilterAcceptedCount(t *testing.T) {
	f := NewFilter(0.5, 0.3, 4)
	if f.Accepted() != 0 {
		t.Fatalf("Accepted before init = %d", f.Accepted())
	}
	f.Update(geom.Pt(0, 0), 0)
	f.Update(geom.Pt(0.3, 0), 0.5)
	if f.Accepted() != 2 {
		t.Fatalf("Accepted = %d, want 2", f.Accepted())
	}
	f.Update(geom.Pt(40, 40), 0.5) // gated outlier
	if f.Accepted() != 2 || f.Rejected() != 1 {
		t.Fatalf("after outlier: accepts %d rejects %d", f.Accepted(), f.Rejected())
	}
}

func TestCovarianceStaysSymmetricPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := NewFilter(1, 0.3, 0)
	for i := 0; i < 200; i++ {
		fix := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		if _, err := f.Update(fix, 0.2); err != nil {
			t.Fatal(err)
		}
		vx, vy := f.PositionVariance()
		if vx <= 0 || vy <= 0 || math.IsNaN(vx) || math.IsNaN(vy) {
			t.Fatalf("variance degenerate at step %d: %v %v", i, vx, vy)
		}
	}
}

// TestFilterSnapshotRoundTripBitIdentical is the restore property
// test: for random fix histories (including gated outliers and
// degenerate dts), Snapshot → JSON → NewFilterFromState must yield a
// filter whose predictions, state, and future updates are bit-for-bit
// identical to the live one — a restarted server resumes tracks as if
// it never died.
func TestFilterSnapshotRoundTripBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		gate := float64(rng.Intn(4)) // 0 disables on some trials
		f := NewFilter(0.2+rng.Float64()*2, 0.1+rng.Float64(), gate)
		steps := 1 + rng.Intn(50)
		for i := 0; i < steps; i++ {
			fix := geom.Pt(rng.Float64()*40, rng.Float64()*16)
			if rng.Intn(8) == 0 {
				fix = geom.Pt(rng.Float64()*1e3, rng.Float64()*1e3) // outlier: exercise rejects
			}
			if _, err := f.Update(fix, rng.Float64()*2); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, i, err)
			}
		}

		data, err := json.Marshal(f.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var st FilterState
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		g, err := NewFilterFromState(st)
		if err != nil {
			t.Fatalf("trial %d: restore rejected a live filter's snapshot: %v", trial, err)
		}

		if g.Accepted() != f.Accepted() || g.Rejected() != f.Rejected() || g.Gate() != f.Gate() {
			t.Fatalf("trial %d: counters drifted across restore", trial)
		}
		for _, dt := range []float64{0, 0.37, 1.5, 10} {
			pa, oka := f.PredictState(dt)
			pb, okb := g.PredictState(dt)
			if oka != okb || pa != pb {
				t.Fatalf("trial %d dt=%v: restored prediction %+v != live %+v", trial, dt, pb, pa)
			}
		}

		// The filters must also continue identically.
		next := geom.Pt(rng.Float64()*40, rng.Float64()*16)
		accA, errA := f.Update(next, 0.5)
		accB, errB := g.Update(next, 0.5)
		if accA != accB || (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: post-restore update diverged: %v/%v vs %v/%v", trial, accA, errA, accB, errB)
		}
		pA, vA := f.State()
		pB, vB := g.State()
		if pA != pB || vA != vB {
			t.Fatalf("trial %d: post-restore state %v %v != live %v %v", trial, pB, vB, pA, vA)
		}
		vxA, vyA := f.PositionVariance()
		vxB, vyB := g.PositionVariance()
		if vxA != vxB || vyA != vyB {
			t.Fatalf("trial %d: post-restore variance diverged", trial)
		}
	}
}

// TestFilterStateValidation: restore refuses corrupted snapshots
// (NaN/Inf fields, non-positive noise) instead of installing them.
func TestFilterStateValidation(t *testing.T) {
	f := NewFilter(1, 0.3, 4)
	f.Update(geom.Pt(1, 2), 0)
	good := f.Snapshot()
	if !good.Valid() {
		t.Fatal("live snapshot must validate")
	}
	cases := map[string]func(*FilterState){
		"nan state":     func(s *FilterState) { s.X[2] = math.NaN() },
		"inf cov":       func(s *FilterState) { s.P[0] = math.Inf(1) },
		"zero process":  func(s *FilterState) { s.ProcessNoise = 0 },
		"neg meas":      func(s *FilterState) { s.MeasNoise = -1 },
		"negative gate": func(s *FilterState) { s.Gate = -2 },
	}
	for name, corrupt := range cases {
		s := good
		corrupt(&s)
		if _, err := NewFilterFromState(s); err == nil {
			t.Errorf("%s: corrupted snapshot restored without error", name)
		}
	}
}

func TestUpdateScaledWidensGate(t *testing.T) {
	// Two filters fed the same settled track; a fix chosen between the
	// base gate and the widened gate is rejected by Update but accepted
	// by UpdateScaled.
	mk := func() *Filter {
		f := NewFilter(0.5, 0.3, 4)
		for i := 0; i < 20; i++ {
			if _, err := f.Update(geom.Pt(float64(i)*0.3, 2), 0.5); err != nil {
				t.Fatal(err)
			}
		}
		return f
	}
	base, wide := mk(), mk()
	// Find an offset whose Mahalanobis distance lands in (gate, 1.5×gate).
	pred, ok := base.PredictState(0.5)
	if !ok {
		t.Fatal("no prediction")
	}
	var fix geom.Point
	found := false
	for dy := 0.1; dy < 20; dy += 0.05 {
		p := geom.Pt(pred.Pos.X, pred.Pos.Y+dy)
		d2 := pred.MahalanobisSq(p)
		if d2 > 4*4 && d2 < 6*6 {
			fix, found = p, true
			break
		}
	}
	if !found {
		t.Fatal("no fix between gate and 1.5×gate found")
	}
	if ok, err := base.Update(fix, 0.5); err != nil || ok {
		t.Fatalf("base gate: accepted=%v err=%v, want rejection", ok, err)
	}
	if ok, err := wide.UpdateScaled(fix, 0.5, 1.5); err != nil || !ok {
		t.Fatalf("widened gate: accepted=%v err=%v, want acceptance", ok, err)
	}
	if ok, err := mk().UpdateScaled(fix, 0.5, 1.0); err != nil || ok {
		t.Fatalf("scale 1: accepted=%v err=%v, want base-gate rejection", ok, err)
	}
}
