// Package baseline implements the RSS-based localization comparators
// that ArrayTrack's introduction and related-work sections position
// against: log-distance model trilateration (the RADAR/TIX family) and
// signal-strength fingerprinting with k-nearest-neighbours (the Horus
// family). Both consume only coarse whole-decibel RSS readings, which
// is exactly the quantization-limited information commodity APs export.
package baseline

import (
	"errors"
	"math"
	"sort"

	"repro/internal/geom"
)

// RSSReading is one AP's received signal strength for a client.
type RSSReading struct {
	// AP is the measuring access point's position.
	AP geom.Point
	// RSSdBm is the received power, quantized to whole dBm as
	// commodity hardware reports it.
	RSSdBm float64
}

// Quantize rounds an RSS value to the whole-decibel granularity of
// commodity WiFi readings.
func Quantize(rssDBm float64) float64 { return math.Round(rssDBm) }

// LogDistanceModel is the standard indoor propagation model
// P(d) = P₀ − 10·n·log₁₀(d/d₀), with reference power P₀ at d₀ = 1 m and
// path-loss exponent n (2 in free space, 3–4 indoors).
type LogDistanceModel struct {
	// P0dBm is the received power at one metre.
	P0dBm float64
	// Exponent is the path-loss exponent n.
	Exponent float64
}

// PredictRSS returns the modelled RSS at distance d metres.
func (m LogDistanceModel) PredictRSS(d float64) float64 {
	if d < 0.1 {
		d = 0.1
	}
	return m.P0dBm - 10*m.Exponent*math.Log10(d)
}

// InvertRSS returns the distance estimate for an RSS reading.
func (m LogDistanceModel) InvertRSS(rssDBm float64) float64 {
	return math.Pow(10, (m.P0dBm-rssDBm)/(10*m.Exponent))
}

// Trilaterate estimates a position from per-AP RSS readings by
// inverting the propagation model into per-AP range estimates and
// minimizing the squared range residual over a grid followed by local
// refinement — the model-based approach of TIX/Lim et al. At least
// three readings are required.
func Trilaterate(readings []RSSReading, model LogDistanceModel, min, max geom.Point) (geom.Point, error) {
	if len(readings) < 3 {
		return geom.Point{}, errors.New("baseline: trilateration needs ≥3 readings")
	}
	ranges := make([]float64, len(readings))
	for i, r := range readings {
		ranges[i] = model.InvertRSS(r.RSSdBm)
	}
	cost := func(p geom.Point) float64 {
		var c float64
		for i, r := range readings {
			d := p.Dist(r.AP) - ranges[i]
			c += d * d
		}
		return c
	}
	// Coarse grid.
	best := min
	bestC := math.Inf(1)
	const grid = 0.5
	for x := min.X; x <= max.X; x += grid {
		for y := min.Y; y <= max.Y; y += grid {
			p := geom.Pt(x, y)
			if c := cost(p); c < bestC {
				best, bestC = p, c
			}
		}
	}
	// Pattern-search refinement.
	step := grid
	for step > 0.01 {
		improved := false
		for _, d := range [4]geom.Vec{{X: step}, {X: -step}, {Y: step}, {Y: -step}} {
			cand := best.Add(d)
			if cand.X < min.X || cand.X > max.X || cand.Y < min.Y || cand.Y > max.Y {
				continue
			}
			if c := cost(cand); c < bestC {
				best, bestC = cand, c
				improved = true
			}
		}
		if !improved {
			step /= 2
		}
	}
	return best, nil
}

// Fingerprint is one surveyed calibration point: a position and the RSS
// vector observed there (indexed by AP).
type Fingerprint struct {
	Pos geom.Point
	RSS []float64
}

// FingerprintDB is a Horus-style radio map built in an offline survey
// phase.
type FingerprintDB struct {
	points []Fingerprint
}

// Add inserts a surveyed fingerprint.
func (db *FingerprintDB) Add(f Fingerprint) { db.points = append(db.points, f) }

// Len returns the number of surveyed points.
func (db *FingerprintDB) Len() int { return len(db.points) }

// Locate returns the weighted k-NN position estimate for an observed
// RSS vector: the k fingerprints with smallest Euclidean RSS distance,
// averaged with 1/(distance+ε) weights.
func (db *FingerprintDB) Locate(rss []float64, k int) (geom.Point, error) {
	if len(db.points) == 0 {
		return geom.Point{}, errors.New("baseline: empty fingerprint database")
	}
	if k < 1 {
		k = 1
	}
	if k > len(db.points) {
		k = len(db.points)
	}
	type scored struct {
		d float64
		p geom.Point
	}
	all := make([]scored, 0, len(db.points))
	for _, f := range db.points {
		if len(f.RSS) != len(rss) {
			return geom.Point{}, errors.New("baseline: fingerprint dimensionality mismatch")
		}
		var d float64
		for i := range rss {
			diff := rss[i] - f.RSS[i]
			d += diff * diff
		}
		all = append(all, scored{math.Sqrt(d), f.Pos})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	const eps = 0.5 // dB; avoids division blow-up on exact matches
	var wx, wy, wsum float64
	for _, s := range all[:k] {
		w := 1 / (s.d + eps)
		wx += w * s.p.X
		wy += w * s.p.Y
		wsum += w
	}
	return geom.Pt(wx/wsum, wy/wsum), nil
}

// FitLogDistance estimates (P0dBm, Exponent) from distance/RSS pairs by
// least squares on the log-distance line — how a deployment would
// calibrate the model from a handful of measurements.
func FitLogDistance(dists, rss []float64) (LogDistanceModel, error) {
	if len(dists) != len(rss) || len(dists) < 2 {
		return LogDistanceModel{}, errors.New("baseline: need ≥2 matched samples")
	}
	// Regress rss = P0 − 10n·log10(d):  y = a + b·x with x = log10(d).
	var sx, sy, sxx, sxy float64
	n := float64(len(dists))
	for i := range dists {
		d := dists[i]
		if d < 0.1 {
			d = 0.1
		}
		x := math.Log10(d)
		y := rss[i]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if math.Abs(denom) < 1e-12 {
		return LogDistanceModel{}, errors.New("baseline: degenerate fit (all distances equal)")
	}
	b := (n*sxy - sx*sy) / denom
	a := (sy - b*sx) / n
	return LogDistanceModel{P0dBm: a, Exponent: -b / 10}, nil
}
