package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestLogDistanceModelRoundTrip(t *testing.T) {
	m := LogDistanceModel{P0dBm: -40, Exponent: 3}
	for _, d := range []float64{1, 2.5, 7, 20} {
		rss := m.PredictRSS(d)
		if got := m.InvertRSS(rss); math.Abs(got-d) > 1e-9 {
			t.Errorf("InvertRSS(PredictRSS(%v)) = %v", d, got)
		}
	}
	if got := m.PredictRSS(1); got != -40 {
		t.Errorf("P(1m) = %v, want P0", got)
	}
	// Near-field clamp.
	if m.PredictRSS(0.01) != m.PredictRSS(0.1) {
		t.Error("near-field clamp missing")
	}
}

func TestQuantize(t *testing.T) {
	if Quantize(-47.4) != -47 || Quantize(-47.6) != -48 {
		t.Error("Quantize should round to whole dB")
	}
}

func TestTrilaterateExact(t *testing.T) {
	m := LogDistanceModel{P0dBm: -40, Exponent: 3}
	truth := geom.Pt(6, 4)
	aps := []geom.Point{{X: 0, Y: 0}, {X: 12, Y: 0}, {X: 6, Y: 10}, {X: 0, Y: 8}}
	var readings []RSSReading
	for _, ap := range aps {
		readings = append(readings, RSSReading{AP: ap, RSSdBm: m.PredictRSS(truth.Dist(ap))})
	}
	got, err := Trilaterate(readings, m, geom.Pt(0, 0), geom.Pt(12, 10))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(truth) > 0.1 {
		t.Errorf("trilateration error %.2f m (got %v)", got.Dist(truth), got)
	}
}

func TestTrilaterateQuantizedDegrades(t *testing.T) {
	// With whole-dB quantization plus shadowing noise the error should
	// grow but stay bounded — the "metres, not centimetres" regime the
	// paper ascribes to RSS methods.
	rng := rand.New(rand.NewSource(3))
	m := LogDistanceModel{P0dBm: -40, Exponent: 3.2}
	truth := geom.Pt(6, 4)
	aps := []geom.Point{{X: 0, Y: 0}, {X: 12, Y: 0}, {X: 6, Y: 10}, {X: 0, Y: 8}}
	var readings []RSSReading
	for _, ap := range aps {
		rss := m.PredictRSS(truth.Dist(ap)) + rng.NormFloat64()*4 // shadowing
		readings = append(readings, RSSReading{AP: ap, RSSdBm: Quantize(rss)})
	}
	got, err := Trilaterate(readings, m, geom.Pt(0, 0), geom.Pt(12, 10))
	if err != nil {
		t.Fatal(err)
	}
	e := got.Dist(truth)
	if e > 8 {
		t.Errorf("unreasonably large error %.1f m", e)
	}
	if e < 0.01 {
		t.Errorf("suspiciously exact (%.3f m) despite noise and quantization", e)
	}
}

func TestTrilaterateNeedsThree(t *testing.T) {
	m := LogDistanceModel{P0dBm: -40, Exponent: 3}
	_, err := Trilaterate([]RSSReading{{}, {}}, m, geom.Pt(0, 0), geom.Pt(1, 1))
	if err == nil {
		t.Error("two readings should error")
	}
}

func TestFingerprintKNN(t *testing.T) {
	var db FingerprintDB
	// Survey a 5×5 grid with a synthetic RSS field.
	aps := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 10}}
	m := LogDistanceModel{P0dBm: -40, Exponent: 3}
	field := func(p geom.Point) []float64 {
		out := make([]float64, len(aps))
		for i, ap := range aps {
			out[i] = Quantize(m.PredictRSS(p.Dist(ap)))
		}
		return out
	}
	for x := 0.0; x <= 10; x += 2.5 {
		for y := 0.0; y <= 10; y += 2.5 {
			p := geom.Pt(x, y)
			db.Add(Fingerprint{Pos: p, RSS: field(p)})
		}
	}
	if db.Len() != 25 {
		t.Fatalf("db size %d", db.Len())
	}
	truth := geom.Pt(6, 4)
	got, err := db.Locate(field(truth), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(truth) > 2.5 {
		t.Errorf("kNN error %.2f m", got.Dist(truth))
	}
}

func TestFingerprintErrors(t *testing.T) {
	var db FingerprintDB
	if _, err := db.Locate([]float64{1}, 1); err == nil {
		t.Error("empty DB should error")
	}
	db.Add(Fingerprint{Pos: geom.Pt(0, 0), RSS: []float64{-40, -50}})
	if _, err := db.Locate([]float64{-40}, 1); err == nil {
		t.Error("dimension mismatch should error")
	}
	// k larger than DB is clamped, k<1 raised.
	if _, err := db.Locate([]float64{-40, -50}, 99); err != nil {
		t.Errorf("k clamp failed: %v", err)
	}
	if _, err := db.Locate([]float64{-40, -50}, 0); err != nil {
		t.Errorf("k floor failed: %v", err)
	}
}

func TestFitLogDistance(t *testing.T) {
	m := LogDistanceModel{P0dBm: -38, Exponent: 3.4}
	var dists, rss []float64
	for _, d := range []float64{1, 2, 4, 8, 16} {
		dists = append(dists, d)
		rss = append(rss, m.PredictRSS(d))
	}
	got, err := FitLogDistance(dists, rss)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.P0dBm-m.P0dBm) > 1e-9 || math.Abs(got.Exponent-m.Exponent) > 1e-9 {
		t.Errorf("fit = %+v, want %+v", got, m)
	}
	if _, err := FitLogDistance([]float64{1}, []float64{-40}); err == nil {
		t.Error("single sample should error")
	}
	if _, err := FitLogDistance([]float64{5, 5}, []float64{-50, -50}); err == nil {
		t.Error("degenerate distances should error")
	}
}
