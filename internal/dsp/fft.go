// Package dsp provides the signal-processing substrate: FFT/IFFT,
// correlation, window functions, resampling, and the Schmidl–Cox OFDM
// timing metric used by ArrayTrack's packet-detection front end.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-order discrete Fourier transform of x. The length
// of x must be a power of two; FFT panics otherwise (OFDM symbol sizes
// are powers of two by construction). The input is not modified.
func FFT(x []complex128) []complex128 {
	return fftDir(x, false)
}

// IFFT computes the inverse DFT of x with 1/N normalization, so
// IFFT(FFT(x)) == x. The length must be a power of two.
func IFFT(x []complex128) []complex128 {
	y := fftDir(x, true)
	n := complex(float64(len(x)), 0)
	for i := range y {
		y[i] /= n
	}
	return y
}

func fftDir(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	y := make([]complex128, n)
	copy(y, x)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			y[i], y[j] = y[j], y[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		ang := sign * 2 * math.Pi / float64(size)
		wstep := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				u := y[start+k]
				v := y[start+k+half] * w
				y[start+k] = u + v
				y[start+k+half] = u - v
				w *= wstep
			}
		}
	}
	return y
}

// NextPow2 returns the smallest power of two ≥ n (and 1 for n ≤ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Energy returns Σ|x|² over the samples.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// Power returns the mean squared magnitude of x, or 0 for empty input.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// SNRdB returns the signal-to-noise ratio in dB given signal and noise
// powers (linear).
func SNRdB(signalPower, noisePower float64) float64 {
	if noisePower <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(signalPower/noisePower)
}

// DBToLinear converts a power ratio in dB to linear scale.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to dB.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// CrossCorrelate returns the sliding complex correlation of x against a
// (shorter) reference template:
//
//	c[k] = Σ_i conj(ref[i]) · x[k+i]
//
// for every alignment k where the template fits. This is the
// matched-filter peak detector used to locate training symbols.
func CrossCorrelate(x, ref []complex128) []complex128 {
	if len(ref) == 0 || len(x) < len(ref) {
		return nil
	}
	out := make([]complex128, len(x)-len(ref)+1)
	for k := range out {
		var s complex128
		for i, r := range ref {
			s += cmplx.Conj(r) * x[k+i]
		}
		out[k] = s
	}
	return out
}

// MaxAbsIndex returns the index and magnitude of the largest-magnitude
// element of x; (-1, 0) for empty input.
func MaxAbsIndex(x []complex128) (int, float64) {
	best, bestV := -1, 0.0
	for i, v := range x {
		if m := cmplx.Abs(v); m > bestV {
			best, bestV = i, m
		}
	}
	return best, bestV
}

// Upsample returns x interpolated by an integer factor using windowed
// sinc interpolation (8-tap Hann-windowed). It converts the 20 Msps
// 802.11 baseband preamble to the 40 Msps rate the WARP front ends
// sample at.
func Upsample(x []complex128, factor int) []complex128 {
	if factor <= 1 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	out := make([]complex128, len(x)*factor)
	const taps = 8
	for n := range out {
		// Position in input-sample units.
		pos := float64(n) / float64(factor)
		i0 := int(math.Floor(pos)) - taps/2 + 1
		var acc complex128
		for i := i0; i < i0+taps; i++ {
			if i < 0 || i >= len(x) {
				continue
			}
			d := pos - float64(i)
			acc += x[i] * complex(sincHann(d, taps), 0)
		}
		out[n] = acc
	}
	return out
}

func sincHann(t float64, taps int) float64 {
	if math.Abs(t) < 1e-12 {
		return 1
	}
	s := math.Sin(math.Pi*t) / (math.Pi * t)
	// Hann window over the tap span.
	w := 0.5 * (1 + math.Cos(2*math.Pi*t/float64(taps)))
	if math.Abs(t) > float64(taps)/2 {
		return 0
	}
	return s * w
}

// MovingAverage returns the simple moving average of x with the given
// window, evaluated at each position where the full window fits.
func MovingAverage(x []float64, window int) []float64 {
	if window <= 0 || len(x) < window {
		return nil
	}
	out := make([]float64, len(x)-window+1)
	var sum float64
	for i := 0; i < window; i++ {
		sum += x[i]
	}
	out[0] = sum / float64(window)
	for i := 1; i < len(out); i++ {
		sum += x[i+window-1] - x[i-1]
		out[i] = sum / float64(window)
	}
	return out
}
