package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func noisy(n int, sd float64, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * complex(sd, 0)
	}
	return x
}

func TestMatchedFilterDetectFindsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := noisy(320, 1, rng)
	x := noisy(2000, 1, rng) // 0 dB noise
	const at = 777
	for i, v := range ref {
		x[at+i] += v
	}
	idx, ok := MatchedFilterDetect(x, ref, 20)
	if !ok {
		t.Fatal("reference not detected at 0 dB")
	}
	if idx != at {
		t.Errorf("detected at %d, want %d", idx, at)
	}
}

func TestMatchedFilterDetectLowSNR(t *testing.T) {
	// −10 dB: amplitude scale sqrt(0.1). The 320-sample coherent gain
	// (~25 dB) must carry detection.
	rng := rand.New(rand.NewSource(2))
	ref := noisy(320, 1, rng)
	amp := math.Sqrt(0.1)
	hits := 0
	for trial := 0; trial < 20; trial++ {
		x := noisy(2000, 1, rng)
		for i, v := range ref {
			x[600+i] += v * complex(amp, 0)
		}
		if idx, ok := MatchedFilterDetect(x, ref, 15); ok && idx > 600-16 && idx < 600+16 {
			hits++
		}
	}
	if hits < 14 {
		t.Errorf("detected %d/20 at −10 dB, want ≥14", hits)
	}
}

func TestMatchedFilterDetectRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := noisy(320, 1, rng)
	falsePos := 0
	for trial := 0; trial < 20; trial++ {
		if _, ok := MatchedFilterDetect(noisy(2000, 1, rng), ref, 15); ok {
			falsePos++
		}
	}
	if falsePos > 1 {
		t.Errorf("false positives %d/20", falsePos)
	}
}

func TestMatchedFilterDetectDegenerate(t *testing.T) {
	if _, ok := MatchedFilterDetect(nil, []complex128{1}, 10); ok {
		t.Error("nil input should not detect")
	}
	if _, ok := MatchedFilterDetect(make([]complex128, 10), make([]complex128, 4), 10); ok {
		t.Error("all-zero input should not detect")
	}
}
