package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFFTKnownImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	for i, v := range FFT(x) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTKnownTone(t *testing.T) {
	// A complex exponential at bin k concentrates all energy in bin k.
	const n, k = 64, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k*i)/n))
	}
	y := FFT(x)
	for i, v := range y {
		want := 0.0
		if i == k {
			want = n
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Errorf("bin %d magnitude = %v, want %v", i, cmplx.Abs(v), want)
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << (1 + r.Intn(8)) // 2..256
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << (2 + r.Intn(6))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		// Parseval: Σ|x|² = (1/N)·Σ|X|².
		lhs := Energy(x)
		rhs := Energy(FFT(x)) / float64(n)
		return math.Abs(lhs-rhs) < 1e-9*math.Max(1, lhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 32
	x := make([]complex128, n)
	y := make([]complex128, n)
	z := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
		y[i] = complex(r.NormFloat64(), r.NormFloat64())
		z[i] = 2*x[i] + 3i*y[i]
	}
	fx, fy, fz := FFT(x), FFT(y), FFT(z)
	for i := range fz {
		if cmplx.Abs(fz[i]-(2*fx[i]+3i*fy[i])) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FFT(len 3) did not panic")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 64: 64, 65: 128}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestEnergyPowerDB(t *testing.T) {
	x := []complex128{3, 4i}
	if got := Energy(x); math.Abs(got-25) > 1e-12 {
		t.Errorf("Energy = %v", got)
	}
	if got := Power(x); math.Abs(got-12.5) > 1e-12 {
		t.Errorf("Power = %v", got)
	}
	if Power(nil) != 0 {
		t.Error("Power(nil) != 0")
	}
	if got := SNRdB(100, 1); math.Abs(got-20) > 1e-12 {
		t.Errorf("SNRdB = %v", got)
	}
	if !math.IsInf(SNRdB(1, 0), 1) {
		t.Error("SNRdB with zero noise should be +Inf")
	}
	if got := DBToLinear(LinearToDB(42)); math.Abs(got-42) > 1e-9 {
		t.Errorf("dB round trip = %v", got)
	}
	if !math.IsInf(LinearToDB(0), -1) {
		t.Error("LinearToDB(0) should be -Inf")
	}
}

func TestCrossCorrelatePeakAtAlignment(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ref := make([]complex128, 16)
	for i := range ref {
		ref[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	x := make([]complex128, 100)
	const offset = 37
	copy(x[offset:], ref)
	c := CrossCorrelate(x, ref)
	idx, _ := MaxAbsIndex(c)
	if idx != offset {
		t.Errorf("correlation peak at %d, want %d", idx, offset)
	}
}

func TestCrossCorrelateDegenerate(t *testing.T) {
	if CrossCorrelate(nil, []complex128{1}) != nil {
		t.Error("short input should return nil")
	}
	if CrossCorrelate([]complex128{1}, nil) != nil {
		t.Error("empty ref should return nil")
	}
	if i, _ := MaxAbsIndex(nil); i != -1 {
		t.Error("MaxAbsIndex(nil) != -1")
	}
}

func TestUpsamplePreservesTone(t *testing.T) {
	// A slow complex tone should upsample to the same tone at half the
	// normalized frequency.
	const n = 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*0.05*float64(i)))
	}
	y := Upsample(x, 2)
	if len(y) != 2*n {
		t.Fatalf("len = %d", len(y))
	}
	// Compare interior samples (edges suffer from filter transients)
	// against the ideal interpolation.
	for i := 8; i < 2*n-16; i++ {
		want := cmplx.Exp(complex(0, 2*math.Pi*0.05*float64(i)/2))
		if cmplx.Abs(y[i]-want) > 0.02 {
			t.Fatalf("sample %d = %v, want %v", i, y[i], want)
		}
	}
}

func TestUpsampleFactor1Copies(t *testing.T) {
	x := []complex128{1, 2, 3}
	y := Upsample(x, 1)
	if !reflect.DeepEqual(x, y) {
		t.Errorf("Upsample(1) = %v", y)
	}
	y[0] = 99
	if x[0] == 99 {
		t.Error("Upsample(1) aliases input")
	}
}

func TestMovingAverage(t *testing.T) {
	got := MovingAverage([]float64{1, 2, 3, 4}, 2)
	want := []float64{1.5, 2.5, 3.5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MovingAverage = %v", got)
	}
	if MovingAverage([]float64{1}, 2) != nil {
		t.Error("window larger than input should return nil")
	}
	if MovingAverage(nil, 0) != nil {
		t.Error("zero window should return nil")
	}
}

func TestSchmidlCoxPlateauOnRepeatedSignal(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const l = 16
	// Noise, then a signal that repeats with period l.
	x := make([]complex128, 300)
	for i := 0; i < 100; i++ {
		x[i] = complex(r.NormFloat64(), r.NormFloat64()) * 0.1
	}
	period := make([]complex128, l)
	for i := range period {
		period[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	for i := 100; i < 260; i++ {
		x[i] = period[(i-100)%l]
	}
	m := SchmidlCox(x, l)
	// Inside the repeated region the metric must be ≈1.
	for d := 110; d < 200; d++ {
		if m[d] < 0.98 {
			t.Fatalf("metric at %d = %v, want ≈1", d, m[d])
		}
	}
	// In the pure-noise region it should be well below 1.
	for d := 0; d < 60; d++ {
		if m[d] > 0.9 {
			t.Fatalf("noise metric at %d = %v unexpectedly high", d, m[d])
		}
	}
}

func TestDetectFrame(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const l = 16
	x := make([]complex128, 400)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64()) * 0.05
	}
	period := make([]complex128, l)
	for i := range period {
		period[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	const start = 150
	for i := start; i < start+10*l; i++ {
		x[i] += period[(i-start)%l]
	}
	idx, ok := DetectFrame(x, l, 0.8, 3*l)
	if !ok {
		t.Fatal("frame not detected")
	}
	if idx < start-l || idx > start+l {
		t.Errorf("detected at %d, want near %d", idx, start)
	}
	if _, ok := DetectFrame(x[:100], l, 0.8, 3*l); ok {
		t.Error("detected a frame in pure noise")
	}
}

func TestSchmidlCoxDegenerate(t *testing.T) {
	if SchmidlCox(make([]complex128, 10), 16) != nil {
		t.Error("too-short input should return nil")
	}
	if SchmidlCox(nil, 0) != nil {
		t.Error("zero period should return nil")
	}
	// All-zero input: metric must be 0, not NaN.
	m := SchmidlCox(make([]complex128, 64), 8)
	for _, v := range m {
		if v != 0 || math.IsNaN(v) {
			t.Fatalf("zero-input metric = %v", v)
		}
	}
}

func BenchmarkFFT64(b *testing.B) {
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkSchmidlCox(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SchmidlCox(x, 32)
	}
}
