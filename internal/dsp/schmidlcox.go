package dsp

import "math/cmplx"

// SchmidlCox computes the Schmidl–Cox timing metric M(d) over x for a
// repetition period L (in samples):
//
//	P(d) = Σ_{m=0}^{L-1} conj(x[d+m]) · x[d+m+L]
//	R(d) = Σ_{m=0}^{L-1} |x[d+m+L]|²
//	M(d) = |P(d)|² / R(d)²
//
// The 802.11 short training sequence repeats every 16 samples at
// 20 Msps (32 at 40 Msps), so a frame start produces a plateau of
// M(d) ≈ 1 regardless of the channel — that self-referencing structure
// is what lets ArrayTrack detect frames well below decoding SNR.
// The returned slice has len(x)-2L+1 entries.
func SchmidlCox(x []complex128, l int) []float64 {
	n := len(x) - 2*l + 1
	if l <= 0 || n <= 0 {
		return nil
	}
	out := make([]float64, n)
	var p complex128
	var r float64
	for m := 0; m < l; m++ {
		p += cmplx.Conj(x[m]) * x[m+l]
		r += sq(x[m+l])
	}
	out[0] = metric(p, r)
	for d := 1; d < n; d++ {
		// Slide the windows by one sample.
		p += cmplx.Conj(x[d+l-1])*x[d+2*l-1] - cmplx.Conj(x[d-1])*x[d+l-1]
		r += sq(x[d+2*l-1]) - sq(x[d+l-1])
		out[d] = metric(p, r)
	}
	return out
}

func sq(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }

func metric(p complex128, r float64) float64 {
	if r <= 1e-30 {
		return 0
	}
	m := cmplx.Abs(p)
	return m * m / (r * r)
}

// MatchedFilterDetect locates a known training waveform in x by
// cross-correlating against ref and testing the peak against the
// correlation noise floor: detection fires when the peak magnitude
// squared exceeds threshold times the mean squared correlation. This is
// the "complex conjugate with the known training symbol" detector of
// §4.3: the coherent integration gain over a 320-sample short-training
// sequence is ~25 dB, which is what lets ArrayTrack detect frames at
// −10 dB SNR where self-referencing metrics are hopeless.
func MatchedFilterDetect(x, ref []complex128, threshold float64) (int, bool) {
	c := CrossCorrelate(x, ref)
	if len(c) == 0 {
		return 0, false
	}
	idx, peak := MaxAbsIndex(c)
	mean := Energy(c) / float64(len(c))
	if mean <= 0 {
		return 0, false
	}
	if peak*peak >= threshold*mean {
		return idx, true
	}
	return 0, false
}

// DetectFrame scans the Schmidl–Cox metric of x (repetition period l)
// for a plateau exceeding threshold that is sustained for at least
// minRun samples, and returns the index of the first sample of the
// plateau. A second return of false means no frame was detected.
//
// The paper's modified detector integrates over all ten short training
// symbols; using a long minimum run is the equivalent noise-rejection
// mechanism and lets detection succeed at strongly negative SNR.
func DetectFrame(x []complex128, l int, threshold float64, minRun int) (int, bool) {
	m := SchmidlCox(x, l)
	run := 0
	for d := range m {
		if m[d] >= threshold {
			run++
			if run >= minRun {
				return d - run + 1, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}
