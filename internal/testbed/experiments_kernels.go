package testbed

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/music"
)

// KernelsOptions sizes the numeric-kernel benchmark experiment: the
// four hot kernels this sprint rebuilt — packed-complex
// eigendecomposition, the packed MUSIC scan, the rotation-guarded
// hill climb, the heap-ordered branch-and-bound — plus the two-choice
// SynthCache at dense pitch, each measured against its retained
// reference path on real testbed data.
type KernelsOptions struct {
	// MaxClients is the number of client positions sampled for the
	// eig/scan matrices and the localization scenes.
	MaxClients int
	// Sites indexes the AP sites contributing to every scene.
	Sites []int
	// Trials is the timing repeat count (best-of).
	Trials int
	// Rounds is the number of warm round-robin passes over the
	// dense-pitch LUT working set in the cache section.
	Rounds int
	// DenseCell is the LUT pitch for the cache section (the paper's
	// dense sweep; 2 cm yields multi-MB entries).
	DenseCell float64
	// Seed drives capture noise.
	Seed int64
}

// DefaultKernelsOptions measures four scenes at the paper geometry
// and the full six-AP working set at 2 cm pitch.
func DefaultKernelsOptions() KernelsOptions {
	return KernelsOptions{
		MaxClients: 4,
		Sites:      []int{0, 2, 4},
		Trials:     5,
		Rounds:     3,
		DenseCell:  0.02,
		Seed:       1,
	}
}

// interleavedBestOf alternates timed runs of a and b so slow drift on
// a shared host degrades both measurements alike, and returns each
// one's best duration.
func interleavedBestOf(trials int, a, b func()) (bestA, bestB time.Duration) {
	bestA, bestB = 1<<62, 1<<62
	for t := 0; t < trials; t++ {
		start := time.Now()
		a()
		if d := time.Since(start); d < bestA {
			bestA = d
		}
		start = time.Now()
		b()
		if d := time.Since(start); d < bestB {
			bestB = d
		}
	}
	return bestA, bestB
}

// kernelMatrices builds the spatially-smoothed covariance matrices
// and noise subspaces the pipeline hands to the eigensolver and the
// MUSIC scan, one per (client, site) pair, from real captures.
func (tb *Testbed) kernelMatrices(opt KernelsOptions) (smoothed, noise []*mat.Matrix, err error) {
	capOpt := DefaultCaptureOptions()
	rng := rand.New(rand.NewSource(opt.Seed))
	for ci := 0; ci < opt.MaxClients && ci < len(tb.Clients); ci++ {
		for _, si := range opt.Sites {
			frames := tb.CaptureClient(tb.Clients[ci], tb.Sites[si], capOpt, rng)
			streams := frames[0].Streams[:capOpt.Antennas]
			snaps := music.SnapshotsFromStreams(streams, 16)
			r, err := music.CorrelationMatrix(snaps)
			if err != nil {
				return nil, nil, err
			}
			rs, err := music.SpatialSmooth(music.ForwardBackward(r), 2)
			if err != nil {
				return nil, nil, err
			}
			en, _, _, err := music.Subspaces(rs, 0.05, rs.Rows/2)
			if err != nil {
				return nil, nil, err
			}
			smoothed = append(smoothed, rs)
			noise = append(noise, en)
		}
	}
	return smoothed, noise, nil
}

// RunKernels benchmarks the numeric kernels against their retained
// reference paths — packed split-plane eig vs the complex128 Jacobi,
// the packed table scan vs the closure scan, the rotation-guarded
// hill climb and heap-ordered branch-and-bound vs the scalar/linear
// pair, and two-choice SynthCache placement at dense pitch — and
// re-asserts on every scene that the fast paths are bit-identical.
// Emitted as metrics so `atbench -exp kernels -json` extends the
// BENCH_*.json perf trajectory.
func (tb *Testbed) RunKernels(opt KernelsOptions) (*Report, error) {
	r := &Report{ID: "kernels", Title: "numeric kernels: packed eig, guarded climb, heap B&B, two-choice cache"}

	// --- eigendecomposition + MUSIC scan, real smoothed matrices.
	smoothed, noise, err := tb.kernelMatrices(opt)
	if err != nil {
		return nil, err
	}
	// Each timed pass decomposes every matrix eigReps times so one
	// trial is long enough to mean something; packed and reference
	// trials interleave so drift on a shared host hits both alike.
	const eigReps = 32
	var ews mat.EigWorkspace
	nOps := len(smoothed)
	packedEig, refEig := interleavedBestOf(opt.Trials,
		func() {
			for rep := 0; rep < eigReps; rep++ {
				for _, m := range smoothed {
					if _, err := mat.EigHermitianWS(m, &ews); err != nil {
						panic(err)
					}
				}
			}
		},
		func() {
			for rep := 0; rep < eigReps; rep++ {
				for _, m := range smoothed {
					if _, err := mat.EigHermitianRefWS(m, &ews); err != nil {
						panic(err)
					}
				}
			}
		})
	eigPackedNS := float64(packedEig.Nanoseconds()) / float64(nOps*eigReps)
	eigRefNS := float64(refEig.Nanoseconds()) / float64(nOps*eigReps)
	r.AddMetric("kernels_eig_packed_ns", eigPackedNS, "ns/op")
	r.AddMetric("kernels_eig_ref_ns", eigRefNS, "ns/op")
	r.AddMetric("kernels_eig_speedup", eigRefNS/eigPackedNS, "x")
	r.Addf("eig %dx%d smoothed covariance (%d matrices): packed %.0f ns/op, ref %.0f ns/op, %.2fx",
		smoothed[0].Rows, smoothed[0].Cols, nOps, eigPackedNS, eigRefNS, eigRefNS/eigPackedNS)

	capOpt := DefaultCaptureOptions()
	var mws music.Workspace
	tabs := make([]*music.SteeringTable, len(opt.Sites))
	for i, si := range opt.Sites {
		tabs[i] = music.NewSteeringTable(tb.NewArray(tb.Sites[si], capOpt), tb.Wavelength, 360)
	}
	arrays := make([]interface {
		SteeringVectorRow(float64, float64) []complex128
	}, len(opt.Sites))
	for i, si := range opt.Sites {
		arrays[i] = tb.NewArray(tb.Sites[si], capOpt)
	}
	packedScan, closureScan := interleavedBestOf(opt.Trials,
		func() {
			for i, en := range noise {
				music.MUSICWithTableWS(&mws, en, tabs[i%len(tabs)])
			}
		},
		func() {
			for i, en := range noise {
				a := arrays[i%len(arrays)]
				sub := en.Rows
				music.MUSIC(en, func(theta float64) []complex128 {
					return a.SteeringVectorRow(theta, tb.Wavelength)[:sub]
				}, 360)
			}
		})
	scanPackedNS := float64(packedScan.Nanoseconds()) / float64(nOps)
	scanClosureNS := float64(closureScan.Nanoseconds()) / float64(nOps)
	r.AddMetric("kernels_scan_packed_ns", scanPackedNS, "ns/op")
	r.AddMetric("kernels_scan_closure_ns", scanClosureNS, "ns/op")
	r.AddMetric("kernels_scan_speedup", scanClosureNS/scanPackedNS, "x")
	r.Addf("MUSIC scan 360 bins: packed %.0f ns/op, closure %.0f ns/op, %.2fx",
		scanPackedNS, scanClosureNS, scanClosureNS/scanPackedNS)

	// --- hill climb + branch-and-bound on real scenes, fast vs the
	// retained reference pair, with the exactness claim re-checked.
	scenes, _, err := tb.synthScenes(SynthOptions{MaxClients: opt.MaxClients, Sites: opt.Sites, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	var mFast, mRef core.SynthMetrics
	fastGrid, err := core.NewSynthGrid(tb.Plan.Min, tb.Plan.Max, core.SynthOptions{
		Cell: 0.10, Workers: 1, Cache: core.NewSynthCache(), Metrics: &mFast,
	})
	if err != nil {
		return nil, err
	}
	refGrid, err := core.NewSynthGrid(tb.Plan.Min, tb.Plan.Max, core.SynthOptions{
		Cell: 0.10, Workers: 1, Cache: core.NewSynthCache(), Metrics: &mRef,
		LinearPick: true, ScalarHillClimb: true,
	})
	if err != nil {
		return nil, err
	}
	exact := 0
	for _, sc := range scenes { // warm LUTs; re-assert bit-identity
		pf, err := fastGrid.Localize(sc)
		if err != nil {
			return nil, err
		}
		pr, err := refGrid.Localize(sc)
		if err != nil {
			return nil, err
		}
		if pf == pr {
			exact++
		}
	}
	if exact != len(scenes) {
		return nil, fmt.Errorf("kernels: fast fix diverged from reference on %d/%d scenes", len(scenes)-exact, len(scenes))
	}
	r.AddMetric("kernels_exact_fix_match_pct", 100, "%")

	localize := func(sg *core.SynthGrid) {
		for _, sc := range scenes {
			if _, err := sg.Localize(sc); err != nil {
				panic(err)
			}
		}
	}
	// Interleave the timed trials so drift on a shared host hits both
	// paths alike.
	s0 := mFast.Snapshot()
	r0 := mRef.Snapshot()
	fastT, refT := time.Duration(1<<62), time.Duration(1<<62)
	var fastWall time.Duration
	for t := 0; t < opt.Trials; t++ {
		start := time.Now()
		localize(fastGrid)
		d := time.Since(start)
		fastWall += d
		if d < fastT {
			fastT = d
		}
		start = time.Now()
		localize(refGrid)
		if d := time.Since(start); d < refT {
			refT = d
		}
	}
	sF := mFast.Snapshot()
	sR := mRef.Snapshot()

	fastNS := float64(fastT.Nanoseconds()) / float64(len(scenes))
	refNS := float64(refT.Nanoseconds()) / float64(len(scenes))
	probes := sF.HillProbes - s0.HillProbes
	pruned := sF.HillPruned - s0.HillPruned
	prunedPct := 100 * float64(pruned) / float64(probes)
	probesPerSec := float64(probes) / fastWall.Seconds()
	fixes := int64(opt.Trials * len(scenes))
	heapVisits := float64(sF.BoundVisits-s0.BoundVisits) / float64(fixes)
	linVisits := float64(sR.BoundVisits-r0.BoundVisits) / float64(fixes)
	r.AddMetric("kernels_localize_fast_ns", fastNS, "ns/op")
	r.AddMetric("kernels_localize_ref_ns", refNS, "ns/op")
	r.AddMetric("kernels_localize_speedup", refNS/fastNS, "x")
	r.AddMetric("kernels_climb_probes_per_s", probesPerSec, "probes/s")
	r.AddMetric("kernels_climb_pruned_pct", prunedPct, "%")
	r.AddMetric("kernels_bnb_visits_adaptive_mean", heapVisits, "visits/fix")
	r.AddMetric("kernels_bnb_visits_linear_mean", linVisits, "visits/fix")
	r.Addf("localize 10 cm (%d scenes, fix bit-identical on all): fast %.0f ns/op, ref %.0f ns/op, %.2fx",
		len(scenes), fastNS, refNS, refNS/fastNS)
	r.Addf("hill climb: %.0f probes/s, %.0f%% pruned without a bearing; B&B bound visits/fix adaptive %.0f vs linear %.0f (equal = the switch never fired: benign screens stay linear)",
		probesPerSec, prunedPct, heapVisits, linVisits)

	// --- branch-and-bound worst case: a degenerate all-floor surface
	// ties every block bound, so the screen refines to its budget. The
	// linear pick rescans all bounds per refinement (quadratic); the
	// heap pays log per pop.
	degenRun := func(linear bool) (int, core.SynthMetricsSnapshot, error) {
		flat := []core.APSpectrum{
			{Pos: tb.Sites[0].Pos, Spectrum: music.NewSpectrum(360)},
			{Pos: tb.Sites[3].Pos, Spectrum: music.NewSpectrum(360)},
		}
		var m core.SynthMetrics
		sg, err := core.NewSynthGrid(tb.Plan.Min, tb.Plan.Max, core.SynthOptions{
			Cell: 0.05, Workers: 1, Cache: core.NewSynthCache(), Metrics: &m, LinearPick: linear,
		})
		if err != nil {
			return 0, core.SynthMetricsSnapshot{}, err
		}
		cell, err := sg.RefinedArgmaxCell(flat)
		return cell, m.Snapshot(), err
	}
	linCell, degLin, err := degenRun(true)
	if err != nil {
		return nil, err
	}
	heapCell, degHeap, err := degenRun(false)
	if err != nil {
		return nil, err
	}
	if linCell != heapCell {
		return nil, fmt.Errorf("kernels: degenerate argmax diverged (linear %d, heap %d)", linCell, heapCell)
	}
	degenRatio := float64(degLin.BoundVisits) / float64(degHeap.BoundVisits)
	r.AddMetric("kernels_bnb_degen_visits_linear", float64(degLin.BoundVisits), "visits")
	r.AddMetric("kernels_bnb_degen_visits_adaptive", float64(degHeap.BoundVisits), "visits")
	r.AddMetric("kernels_bnb_degen_ratio", degenRatio, "x")
	r.Addf("degenerate flat screen at 5 cm (identical argmax, %d blocks refined): bound visits linear %d, adaptive heap %d (%.0fx fewer)",
		degLin.BlocksRefined, degLin.BoundVisits, degHeap.BoundVisits, degenRatio)

	// --- two-choice SynthCache at dense pitch: the full six-site LUT
	// working set against a budget of one entry per shard. Single-
	// choice placement thrashes whenever two keys hash to one shard;
	// two-choice keeps the whole set resident, so warm round-robin
	// passes hit every lookup.
	denseSpecs, _, err := tb.synthScenes(SynthOptions{MaxClients: 1, Sites: []int{0, 1, 2, 3, 4, 5}, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	denseScene := denseSpecs[0]
	probeCache := core.NewSynthCache()
	probeGrid, err := core.NewSynthGrid(tb.Plan.Min, tb.Plan.Max, core.SynthOptions{
		Cell: opt.DenseCell, Workers: 1, Cache: probeCache,
	})
	if err != nil {
		return nil, err
	}
	var h core.Heatmap
	if err := probeGrid.LogHeatmapInto(&h, denseScene[:1]); err != nil {
		return nil, err
	}
	// Budget two entries per shard: globally the set fits three times
	// over, so any miss after warm-up is placement thrash, not
	// capacity. Single-choice hashing thrashes here whenever three
	// keys land on one shard; two-choice placement keeps the whole
	// working set resident.
	entryBytes := probeCache.Usage().Bytes // one dense LUT's accounted cost
	cache := core.NewSynthCacheBudget(entryBytes * 16)
	sg, err := core.NewSynthGrid(tb.Plan.Min, tb.Plan.Max, core.SynthOptions{
		Cell: opt.DenseCell, Workers: 1, Cache: cache,
	})
	if err != nil {
		return nil, err
	}
	if err := sg.LogHeatmapInto(&h, denseScene); err != nil { // cold build
		return nil, err
	}
	hits0, _ := cache.Stats()
	for round := 0; round < opt.Rounds; round++ {
		if err := sg.LogHeatmapInto(&h, denseScene); err != nil {
			return nil, err
		}
	}
	hits, _ := cache.Stats()
	lookups := uint64(opt.Rounds * len(denseScene))
	hitPct := 100 * float64(hits-hits0) / float64(lookups)
	u := cache.Usage()
	r.AddMetric("kernels_cache_dense_entry_mb", float64(entryBytes)/(1<<20), "MB")
	r.AddMetric("kernels_cache_dense_hit_pct", hitPct, "%")
	r.AddMetric("kernels_cache_second_choice", float64(u.SecondChoice), "placements")
	r.AddMetric("kernels_cache_spills", float64(u.Spills), "serves")
	r.AddMetric("kernels_cache_dense_evictions", float64(u.DenseEvictions), "evictions")
	r.Addf("two-choice cache at %.0f cm (%.1f MB/AP, %d APs, budget 2 entries/shard): warm hit rate %.0f%%, %d second-choice placements, %d spills, %d dense evictions",
		opt.DenseCell*100, float64(entryBytes)/(1<<20), len(denseScene), hitPct, u.SecondChoice, u.Spills, u.DenseEvictions)
	return r, nil
}
