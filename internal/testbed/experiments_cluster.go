package testbed

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/server"
)

// ClusterOptions sizes the sharded-cluster experiment: bit-identical
// fan-in versus a single-backend control, a zero-loss mid-walk (and
// mid-burst) shard migration, and a 1→N shard throughput sweep.
type ClusterOptions struct {
	// Steps is the number of fixes along the walk; MigrateStep is the
	// step during which the cluster grows from 1 to 2 shards — after
	// half the step's AP frames have been fed, so the migration moves a
	// below-quorum pending group as well as the live track.
	Steps, MigrateStep int
	// Dt is the seconds between fixes, Speed the walk speed in m/s.
	Dt, Speed float64
	// Sites indexes the AP sites that hear the clients.
	Sites []int
	// Capture configures the simulated radios.
	Capture CaptureOptions
	// GridCell is the synthesis pitch.
	GridCell float64
	// Tracker configures the Kalman layer (identically everywhere).
	Tracker engine.TrackerOptions
	// Seed drives the channel noise.
	Seed int64
	// MaxShards bounds the throughput sweep; 0 means
	// min(4, GOMAXPROCS). The sweep's near-linearity claim only holds
	// where cores allow, so CI gates it on the multicore flag.
	MaxShards int
	// ThroughputClients and ThroughputFixes size the sweep workload:
	// clients × fixes-per-client localization jobs per shard count.
	ThroughputClients, ThroughputFixes int
	// ThroughputTrials is how many times each shard count replays the
	// workload; the best rate is kept (scaling is a capacity claim, so
	// a descheduled trial must not masquerade as a scaling failure).
	// 0 means 3.
	ThroughputTrials int
}

// DefaultClusterOptions walks the corridor for 12 fixes, growing the
// cluster mid-way through step 6.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{
		Steps:             12,
		MigrateStep:       6,
		Dt:                1.0,
		Speed:             1.2,
		Sites:             []int{0, 1, 2, 3, 4, 5},
		Capture:           DefaultCaptureOptions(),
		GridCell:          0.25,
		Tracker:           engine.TrackerOptions{ProcessNoise: 0.3, MeasSigma: 0.8, Gate: 3},
		Seed:              71,
		ThroughputClients: 16,
		ThroughputFixes:   3,
	}
}

// ClusterResult is the machine-readable outcome of the cluster run.
type ClusterResult struct {
	// FanInMismatches counts smoothed positions from the static 2-shard
	// cluster that differ (at all) from the single-backend control.
	// Must be 0: the router's decode→re-encode is bit-identical.
	FanInMismatches int
	// StepMismatches counts positions from the migration run that
	// differ from the control. Must be 0: the handoff is invisible.
	StepMismatches int
	// TracksLost is how many clients lack a live track anywhere in the
	// cluster after the migration run. Must be 0.
	TracksLost int
	// RMSEDeltaCM is |control RMSE − migration-run RMSE| over the
	// walker's smoothed errors. Must be 0.
	RMSEDeltaCM float64
	// SmoothedRMSECM is the migration run's walker RMSE (context).
	SmoothedRMSECM float64
	// MovedClients/MovedTracks/MovedPending/HeldFlushed describe the
	// rebalance: clients that changed owner, Kalman tracks migrated,
	// buffered below-quorum captures re-routed, captures parked at the
	// router during the swap.
	MovedClients, MovedTracks, MovedPending, HeldFlushed int
	// WalkerMigrated reports the walker's track living on the gaining
	// shard and only there after the swap.
	WalkerMigrated bool
	// FixesPerSec[i] is the throughput with i+1 shards.
	FixesPerSec []float64
	// Multicore reports GOMAXPROCS ≥ 2 — the precondition for gating
	// the scaling numbers.
	Multicore bool
	// WorkspaceLeaks is the pooled ingest-workspace gauge delta across
	// the whole experiment. Must be 0.
	WorkspaceLeaks int64
}

// clusterHarness is one router-fronted cluster of in-process shards
// fed through a single synchronous pipe (sequential frames, so every
// run sees captures in the same order).
type clusterHarness struct {
	shards    []*cluster.LocalShard
	router    *cluster.Router
	feed      net.Conn
	routerErr chan error
	dir       string
}

func (tb *Testbed) startCluster(nShards, mapShards, quorum int, eopt engine.Options,
	trOpt engine.TrackerOptions, resolve func(uint32) *core.AP, onResult func(engine.Result)) (*clusterHarness, error) {
	dir, err := os.MkdirTemp("", "atcluster")
	if err != nil {
		return nil, err
	}
	h := &clusterHarness{routerErr: make(chan error, 1), dir: dir}
	views := make([]cluster.Shard, 0, nShards)
	for i := 0; i < nShards; i++ {
		s, err := cluster.NewLocalShard(cluster.LocalShardOptions{
			SocketPath:     filepath.Join(dir, fmt.Sprintf("s%d.sock", i)),
			Quorum:         quorum,
			Window:         time.Second,
			Engine:         eopt,
			TrackerOptions: trOpt,
			Resolve:        resolve,
			Min:            tb.Plan.Min,
			Max:            tb.Plan.Max,
			OnResult:       onResult,
		})
		if err != nil {
			h.close()
			return nil, err
		}
		h.shards = append(h.shards, s)
		views = append(views, s.Shard())
	}
	m, err := cluster.NewShardMap(1, mapShards, 0)
	if err != nil {
		h.close()
		return nil, err
	}
	if h.router, err = cluster.NewRouter(m, views); err != nil {
		h.close()
		return nil, err
	}
	pr, pw := net.Pipe()
	h.feed = pw
	go func() { h.routerErr <- h.router.ServeConn(pr) }()
	return h, nil
}

func (h *clusterHarness) close() {
	if h.feed != nil {
		h.feed.Close()
		<-h.routerErr
	}
	for _, s := range h.shards {
		s.Close()
	}
	os.RemoveAll(h.dir)
}

// writeFrames feeds pre-encoded v3 frames down a connection with a
// deadline, so a wedged consumer fails the run instead of hanging it.
func writeFrames(conn net.Conn, frames ...[]byte) error {
	for _, f := range frames {
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := conn.Write(f); err != nil {
			return err
		}
	}
	return nil
}

// collectFixes drains exactly want results, keyed by client. Each step
// produces one quorum flush per client, so want is deterministic.
func collectFixes(results chan engine.Result, want int) (map[uint32]engine.Result, error) {
	out := make(map[uint32]engine.Result, want)
	deadline := time.NewTimer(60 * time.Second)
	defer deadline.Stop()
	for k := 0; k < want; k++ {
		select {
		case r := <-results:
			if r.Err != nil {
				return nil, fmt.Errorf("testbed: cluster fix for client %d: %w", r.ClientID, r.Err)
			}
			out[r.ClientID] = r
		case <-deadline.C:
			return nil, fmt.Errorf("testbed: cluster run timed out waiting for fix %d/%d", k+1, want)
		}
	}
	return out, nil
}

// RunCluster regenerates the sharded-cluster claims against a
// single-backend control fed the identical serialized frames:
//
//   - fan-in bit-identity: a router fanning one AP stream out to two
//     static shards produces, fix for fix, exactly the control's
//     smoothed positions (the router's delta re-encode of the
//     quantized wire samples is lossless);
//   - zero-loss handoff: growing 1→2 shards mid-walk — and mid-burst,
//     with a below-quorum pending group buffered — moves the walker's
//     pending captures and Kalman track to the new shard with no fix
//     lost and an RMSE delta of exactly zero;
//   - scaling: fixes/sec from 1→N shards with one localization worker
//     per shard, near-linear where cores allow.
func (tb *Testbed) RunCluster(opt ClusterOptions) (*Report, *ClusterResult, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	cfg := core.DefaultConfig(tb.Wavelength)
	cfg.GridCell = opt.GridCell
	base := time.Unix(1700000000, 0)
	wsBaseline := server.LeasedIngestWorkspaces()

	res := &ClusterResult{Multicore: runtime.GOMAXPROCS(0) >= 2}
	r := &Report{ID: "cluster", Title: "sharded cluster: fan-in bit-identity, zero-loss mid-walk handoff, 1→N scaling"}

	// Pick client IDs by where consistent hashing sends them when the
	// cluster grows to 2 shards: the walker moves to the new shard, the
	// stationary client stays — so the migration moves a track that is
	// actively walking.
	m2, err := cluster.NewShardMap(2, 2, 0)
	if err != nil {
		return nil, nil, err
	}
	var walkerID, statID uint32
	for id := uint32(1); walkerID == 0 || statID == 0; id++ {
		if m2.Owner(id) == 1 && walkerID == 0 {
			walkerID = id
		}
		if m2.Owner(id) == 0 && statID == 0 {
			statID = id
		}
	}
	clients := []uint32{walkerID, statID}
	truthAt := func(i int) map[uint32]geom.Point {
		return map[uint32]geom.Point{
			walkerID: trackingTruth(TrackingOptions{Dt: opt.Dt, Speed: opt.Speed}, i),
			statID:   geom.Pt(33, 3),
		}
	}
	stepTime := func(i int) time.Time {
		return base.Add(time.Duration(float64(i) * opt.Dt * float64(time.Second)))
	}

	// Serialize every step once — one absolute v3 frame per AP carrying
	// both clients' captures — so all three runs decode identical
	// bytes and any divergence is the cluster path's fault.
	aps := tb.APsFor(opt.Sites, opt.Capture)
	apByID := make(map[uint32]*core.AP, len(opt.Sites))
	for si, s := range opt.Sites {
		apByID[uint32(s+1)] = aps[si]
	}
	resolve := func(apID uint32) *core.AP { return apByID[apID] }
	seqs := map[uint32]uint32{}
	stepFrames := make([][][]byte, opt.Steps) // [step][site]frame
	for i := 0; i < opt.Steps; i++ {
		truth := truthAt(i)
		frames := make([][]byte, len(opt.Sites))
		for si, s := range opt.Sites {
			apID := uint32(s + 1)
			var caps []server.Capture
			for _, id := range clients {
				for _, fc := range tb.CaptureClient(truth[id], tb.Sites[s], opt.Capture, rng) {
					seqs[apID]++
					caps = append(caps, server.Capture{
						APID: apID, ClientID: id, Seq: seqs[apID],
						Timestamp: stepTime(i), Streams: fc.Streams,
					})
				}
			}
			f, err := server.AppendBatch(nil, caps)
			if err != nil {
				return nil, nil, err
			}
			frames[si] = f
		}
		stepFrames[i] = frames
	}

	// All trackers run on the simulated clock (the walk replays
	// 2023-era timestamps); engine workers read it concurrently, so it
	// advances atomically.
	var simNow atomic.Int64
	simNow.Store(base.UnixNano())
	trOpt := opt.Tracker
	trOpt.Now = func() time.Time { return time.Unix(0, simNow.Load()) }

	// A flush needs every AP: quorum counts distinct APs, and the last
	// AP's burst is absorbed into the flush it completes.
	quorum := len(opt.Sites)
	eopt := engine.Options{Config: cfg}

	// runWalk feeds the steps and records each client's smoothed
	// positions; migrate, when non-nil, runs mid-step MigrateStep after
	// half the AP frames.
	runWalk := func(feed net.Conn, results chan engine.Result, migrate func() error) (map[uint32][]geom.Point, []float64, error) {
		smoothed := map[uint32][]geom.Point{}
		var walkErrs []float64
		for i := 0; i < opt.Steps; i++ {
			simNow.Store(stepTime(i).UnixNano())
			frames := stepFrames[i]
			if migrate != nil && i == opt.MigrateStep {
				if err := writeFrames(feed, frames[:len(frames)/2]...); err != nil {
					return nil, nil, err
				}
				if err := migrate(); err != nil {
					return nil, nil, err
				}
				if err := writeFrames(feed, frames[len(frames)/2:]...); err != nil {
					return nil, nil, err
				}
			} else if err := writeFrames(feed, frames...); err != nil {
				return nil, nil, err
			}
			fixes, err := collectFixes(results, len(clients))
			if err != nil {
				return nil, nil, err
			}
			for _, id := range clients {
				out, ok := fixes[id]
				if !ok || out.Track == nil {
					return nil, nil, fmt.Errorf("testbed: step %d: no tracked fix for client %d", i, id)
				}
				smoothed[id] = append(smoothed[id], out.Track.Smoothed)
				if id == walkerID {
					walkErrs = append(walkErrs, out.Track.Smoothed.Dist(truthAt(i)[walkerID])*100)
				}
			}
		}
		return smoothed, walkErrs, nil
	}

	// Control: one backend+engine fed directly, no router.
	var ctrlSmoothed map[uint32][]geom.Point
	var ctrlErrs []float64
	{
		results := make(chan engine.Result, 16)
		onResult := func(r engine.Result) { results <- r }
		dir, err := os.MkdirTemp("", "atclusterctl")
		if err != nil {
			return nil, nil, err
		}
		s, err := cluster.NewLocalShard(cluster.LocalShardOptions{
			SocketPath: filepath.Join(dir, "ctl.sock"),
			Quorum:     quorum, Window: time.Second,
			Engine: eopt, TrackerOptions: trOpt,
			Resolve: resolve, Min: tb.Plan.Min, Max: tb.Plan.Max,
			OnResult: onResult,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		ctrlSmoothed, ctrlErrs, err = runWalk(s.Conn(), results, nil)
		s.Close()
		os.RemoveAll(dir)
		if err != nil {
			return nil, nil, err
		}
	}

	// Static fan-in: two shards from the start, same frames through the
	// router. Every smoothed position must equal the control's exactly.
	{
		results := make(chan engine.Result, 16)
		h, err := tb.startCluster(2, 2, quorum, eopt, trOpt, resolve,
			func(r engine.Result) { results <- r })
		if err != nil {
			return nil, nil, err
		}
		fanSmoothed, _, err := runWalk(h.feed, results, nil)
		h.close()
		if err != nil {
			return nil, nil, err
		}
		for _, id := range clients {
			for i := range fanSmoothed[id] {
				if fanSmoothed[id][i] != ctrlSmoothed[id][i] {
					res.FanInMismatches++
				}
			}
		}
	}

	// Migration: start on 1 shard, grow to 2 mid-step. The walker's
	// half-fed pending group and live track both move.
	var migSmoothed map[uint32][]geom.Point
	var migErrs []float64
	{
		results := make(chan engine.Result, 16)
		h, err := tb.startCluster(2, 1, quorum, eopt, trOpt, resolve,
			func(r engine.Result) { results <- r })
		if err != nil {
			return nil, nil, err
		}
		capsPerStep := len(clients) * opt.Capture.Frames * len(opt.Sites)
		halfCaps := len(clients) * opt.Capture.Frames * (len(opt.Sites) / 2)
		migrate := func() error {
			// Let the half-step settle on shard 0 so the rebalance
			// deterministically finds the walker's pending group.
			wantIngested := uint64(opt.MigrateStep*capsPerStep + halfCaps)
			deadline := time.Now().Add(30 * time.Second)
			for {
				n, err := h.shards[0].Ingested()
				if err != nil {
					return err
				}
				if n >= wantIngested {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("testbed: shard 0 ingested %d of %d before migration", n, wantIngested)
				}
				time.Sleep(100 * time.Microsecond)
			}
			st, err := h.router.Rebalance(m2)
			if err != nil {
				return err
			}
			res.MovedClients = st.MovedClients
			res.MovedTracks = st.MovedTracks
			res.MovedPending = st.MovedPending
			res.HeldFlushed = st.HeldFlushed
			return nil
		}
		migSmoothed, migErrs, err = runWalk(h.feed, results, migrate)
		if err != nil {
			h.close()
			return nil, nil, err
		}
		// The walker's track must live on the gaining shard and only
		// there; cluster-wide, no client may have lost its track.
		_, onNew := h.shards[1].Tracker.Snapshot(walkerID)
		_, onOld := h.shards[0].Tracker.Snapshot(walkerID)
		res.WalkerMigrated = onNew && !onOld
		for _, id := range clients {
			found := false
			for _, s := range h.shards {
				if _, ok := s.Tracker.Snapshot(id); ok {
					found = true
				}
			}
			if !found {
				res.TracksLost++
			}
		}
		h.close()
	}

	for _, id := range clients {
		for i := range migSmoothed[id] {
			if migSmoothed[id][i] != ctrlSmoothed[id][i] {
				res.StepMismatches++
			}
		}
	}
	ctrlRMSE, migRMSE := rmseSqrt(ctrlErrs), rmseSqrt(migErrs)
	res.SmoothedRMSECM = migRMSE
	res.RMSEDeltaCM = migRMSE - ctrlRMSE
	if res.RMSEDeltaCM < 0 {
		res.RMSEDeltaCM = -res.RMSEDeltaCM
	}

	// Throughput: the same workload swept across 1..MaxShards clusters,
	// one localization worker per shard so added shards are the only
	// source of parallelism.
	maxShards := opt.MaxShards
	if maxShards <= 0 {
		maxShards = min(4, runtime.GOMAXPROCS(0))
	}
	if err := tb.clusterThroughput(opt, res, maxShards, base); err != nil {
		return nil, nil, err
	}

	res.WorkspaceLeaks = server.LeasedIngestWorkspaces() - wsBaseline

	r.Addf("clients: walker %d (moves to shard 1), stationary %d (stays on shard 0)", walkerID, statID)
	r.Addf("%4s  %-14s %-14s %-14s  %s", "step", "truth", "control", "migrated", "")
	for i := 0; i < opt.Steps; i++ {
		truth := truthAt(i)[walkerID]
		c, g := ctrlSmoothed[walkerID][i], migSmoothed[walkerID][i]
		mark := ""
		if i == opt.MigrateStep {
			mark = "<- grew 1→2 shards mid-step"
		}
		r.Addf("%4d  (%5.1f,%4.1f)   (%5.1f,%4.1f)   (%5.1f,%4.1f)  %s",
			i+1, truth.X, truth.Y, c.X, c.Y, g.X, g.Y, mark)
	}
	r.Addf("")
	r.Addf("rebalance: %d client moved, %d track migrated, %d pending captures re-routed, %d held at router",
		res.MovedClients, res.MovedTracks, res.MovedPending, res.HeldFlushed)
	r.Addf("walker track on gaining shard only: %v; tracks lost: %d", res.WalkerMigrated, res.TracksLost)
	r.Addf("fan-in mismatches (static 2-shard vs control): %d", res.FanInMismatches)
	r.Addf("migration mismatches vs control: %d", res.StepMismatches)
	r.Addf("walker smoothed RMSE: control %.1fcm, migrated %.1fcm (delta %.3fcm)",
		ctrlRMSE, migRMSE, res.RMSEDeltaCM)
	r.Addf("")
	r.Addf("throughput (%d clients × %d fixes, 1 worker/shard, GOMAXPROCS=%d):",
		opt.ThroughputClients, opt.ThroughputFixes, runtime.GOMAXPROCS(0))
	for i, fps := range res.FixesPerSec {
		speedup := fps / res.FixesPerSec[0]
		r.Addf("  %d shard(s): %7.1f fixes/sec  (%.2fx)", i+1, fps, speedup)
	}
	if !res.Multicore {
		r.Addf("  single-core host: scaling numbers not meaningful, not gated")
	}
	r.Addf("pooled ingest-workspace leak delta: %d", res.WorkspaceLeaks)

	r.AddMetric("fan_in_mismatches", float64(res.FanInMismatches), "")
	r.AddMetric("step_mismatches", float64(res.StepMismatches), "")
	r.AddMetric("tracks_lost", float64(res.TracksLost), "")
	r.AddMetric("rmse_delta_cm", res.RMSEDeltaCM, "cm")
	r.AddMetric("smoothed_rmse_cm", res.SmoothedRMSECM, "cm")
	r.AddMetric("moved_clients", float64(res.MovedClients), "")
	r.AddMetric("moved_tracks", float64(res.MovedTracks), "")
	r.AddMetric("moved_pending_captures", float64(res.MovedPending), "")
	walkerOK := 0.0
	if res.WalkerMigrated {
		walkerOK = 1
	}
	r.AddMetric("walker_migrated", walkerOK, "")
	for i, fps := range res.FixesPerSec {
		r.AddMetric(fmt.Sprintf("fixes_per_sec_%dshard", i+1), fps, "fixes/s")
	}
	if len(res.FixesPerSec) > 1 {
		r.AddMetric("scaling_speedup", res.FixesPerSec[len(res.FixesPerSec)-1]/res.FixesPerSec[0], "x")
	}
	multicore := 0.0
	if res.Multicore {
		multicore = 1
	}
	r.AddMetric("multicore", multicore, "")
	r.AddMetric("workspace_leaks", float64(res.WorkspaceLeaks), "")
	return r, res, nil
}

// clusterThroughput sweeps the same pre-serialized workload across
// cluster sizes 1..maxShards and records fixes/sec for each.
func (tb *Testbed) clusterThroughput(opt ClusterOptions, res *ClusterResult, maxShards int, base time.Time) error {
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	cfgT := core.DefaultConfig(tb.Wavelength)
	cfgT.GridCell = 0.5
	capT := opt.Capture
	capT.Frames = 1
	tsites := opt.Sites[:min(3, len(opt.Sites))]
	quorumT := len(tsites)

	apsT := tb.APsFor(tsites, capT)
	apByID := make(map[uint32]*core.AP, len(tsites))
	for si, s := range tsites {
		apByID[uint32(s+1)] = apsT[si]
	}
	resolve := func(apID uint32) *core.AP { return apByID[apID] }

	nClients := opt.ThroughputClients
	rounds := opt.ThroughputFixes
	positions := make(map[uint32]geom.Point, nClients)
	var clientIDs []uint32
	for c := 0; c < nClients; c++ {
		id := uint32(100 + c)
		clientIDs = append(clientIDs, id)
		positions[id] = geom.Pt(4+float64(c%8)*4, 3+float64(c/8)*8)
	}

	// Serialize the whole workload once: rounds × APs frames, each
	// carrying every client's capture at that AP.
	var frames [][]byte
	seqs := map[uint32]uint32{}
	for round := 0; round < rounds; round++ {
		at := base.Add(time.Duration(round) * time.Second)
		for _, s := range tsites {
			apID := uint32(s + 1)
			var caps []server.Capture
			for _, id := range clientIDs {
				fcs := tb.CaptureClient(positions[id], tb.Sites[s], capT, rng)
				for _, fc := range fcs {
					seqs[apID]++
					caps = append(caps, server.Capture{
						APID: apID, ClientID: id, Seq: seqs[apID],
						Timestamp: at, Streams: fc.Streams,
					})
				}
			}
			f, err := server.AppendBatch(nil, caps)
			if err != nil {
				return err
			}
			frames = append(frames, f)
		}
	}
	totalFixes := nClients * rounds

	trOpt := opt.Tracker
	trOpt.Now = func() time.Time { return base }
	// Deep queue: the backend must never block on Submit, or one slow
	// shard would stall the shared feed and understate the others.
	eopt := engine.Options{Workers: 1, Queue: totalFixes + 16, Config: cfgT}

	trials := opt.ThroughputTrials
	if trials <= 0 {
		trials = 3
	}
	for n := 1; n <= maxShards; n++ {
		best := 0.0
		for t := 0; t < trials; t++ {
			results := make(chan engine.Result, totalFixes+16)
			h, err := tb.startCluster(n, n, quorumT, eopt, trOpt, resolve,
				func(r engine.Result) { results <- r })
			if err != nil {
				return err
			}
			start := time.Now()
			if err := writeFrames(h.feed, frames...); err != nil {
				h.close()
				return err
			}
			if _, err := collectFixes(results, totalFixes); err != nil {
				h.close()
				return err
			}
			elapsed := time.Since(start)
			h.close()
			if rate := float64(totalFixes) / elapsed.Seconds(); rate > best {
				best = rate
			}
		}
		res.FixesPerSec = append(res.FixesPerSec, best)
	}
	return nil
}
