//go:build race

package testbed

// raceEnabled: perf-gate tests skip under the race detector (pool
// drops and instrumentation skew allocs and timings); the non-race CI
// step enforces them. See internal/core/race_on_test.go.
const raceEnabled = true
