package testbed

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/music"
)

// ThroughputOptions sizes the multi-client throughput experiment.
type ThroughputOptions struct {
	// ClientCounts are the concurrent-client batch sizes measured.
	ClientCounts []int
	// Sites indexes the AP sites every client is heard by.
	Sites []int
	// Capture configures the simulated radios.
	Capture CaptureOptions
	// GridCell overrides the synthesis pitch (coarser than the
	// paper's 0.10 m keeps one fix cheap enough to measure in bulk).
	GridCell float64
}

// DefaultThroughputOptions mirrors the paper's ~100 ms/fix scenario at
// batch sizes matching the benchmark suite.
func DefaultThroughputOptions() ThroughputOptions {
	return ThroughputOptions{
		ClientCounts: []int{1, 8, 64, 256},
		Sites:        []int{0, 2, 4},
		Capture:      DefaultCaptureOptions(),
		GridCell:     0.25,
	}
}

// ThroughputRequests synthesizes one localization request per client
// position (cycling through the testbed's 41 clients when n exceeds
// them, sharing the underlying captures), ready for the engine or a
// serial loop. The base request set is deterministic.
func (tb *Testbed) ThroughputRequests(n int, opt ThroughputOptions) []engine.Request {
	aps := tb.APsFor(opt.Sites, opt.Capture)
	base := len(tb.Clients)
	if n < base {
		base = n
	}
	captures := make([][][]core.FrameCapture, base)
	for ci := 0; ci < base; ci++ {
		rng := rand.New(rand.NewSource(int64(7000 + ci)))
		captures[ci] = make([][]core.FrameCapture, len(opt.Sites))
		for si, s := range opt.Sites {
			captures[ci][si] = tb.CaptureClient(tb.Clients[ci], tb.Sites[s], opt.Capture, rng)
		}
	}
	reqs := make([]engine.Request, n)
	for i := 0; i < n; i++ {
		reqs[i] = engine.Request{
			ClientID: uint32(i + 1),
			APs:      aps,
			Captures: captures[i%base],
			Min:      tb.Plan.Min,
			Max:      tb.Plan.Max,
		}
	}
	return reqs
}

// RunThroughput measures location fixes per second for batches of
// concurrent clients, comparing the seed's serial single-threaded loop
// (steering vectors recomputed per bin, one AP at a time) against the
// cached serial path and the concurrent engine. This is the system
// half of the paper's claim — many clients, many APs, bounded latency
// — measured rather than asserted.
func (tb *Testbed) RunThroughput(opt ThroughputOptions) (*Report, error) {
	r := &Report{ID: "throughput", Title: "multi-client localization throughput (fixes/sec)"}
	r.Addf("%8s %14s %14s %14s %9s", "clients", "seed-serial", "cached-serial", "engine", "speedup")

	serialCfg := core.DefaultConfig(tb.Wavelength)
	serialCfg.GridCell = opt.GridCell
	serialCfg.Steering = nil   // the seed recomputed steering per bin
	serialCfg.APWorkers = 0    // and processed APs serially
	serialCfg.SynthCache = nil // and synthesized on the product-domain grid

	cachedCfg := serialCfg
	cachedCfg.Steering = music.NewSteeringCache()

	engineCfg := core.DefaultConfig(tb.Wavelength)
	engineCfg.GridCell = opt.GridCell

	maxClients := 0
	for _, n := range opt.ClientCounts {
		if n > maxClients {
			maxClients = n
		}
	}
	all := tb.ThroughputRequests(maxClients, opt)

	for _, n := range opt.ClientCounts {
		reqs := all[:n]

		serial := func(cfg core.Config) (float64, error) {
			start := time.Now()
			for _, q := range reqs {
				if _, _, err := core.LocateClient(q.APs, q.Captures, q.Min, q.Max, cfg); err != nil {
					return 0, err
				}
			}
			return float64(n) / time.Since(start).Seconds(), nil
		}
		seedRate, err := serial(serialCfg)
		if err != nil {
			return nil, err
		}
		cachedRate, err := serial(cachedCfg)
		if err != nil {
			return nil, err
		}

		eng := engine.New(engine.Options{Config: engineCfg})
		start := time.Now()
		results := eng.LocateBatch(reqs)
		engRate := float64(n) / time.Since(start).Seconds()
		eng.Close()
		for _, res := range results {
			if res.Err != nil {
				return nil, res.Err
			}
		}

		r.Addf("%8d %14.1f %14.1f %14.1f %8.1fx", n, seedRate, cachedRate, engRate, engRate/seedRate)
		r.AddMetric(fmt.Sprintf("fixes_per_sec_seed_%d", n), seedRate, "fixes/sec")
		r.AddMetric(fmt.Sprintf("fixes_per_sec_cached_%d", n), cachedRate, "fixes/sec")
		r.AddMetric(fmt.Sprintf("fixes_per_sec_engine_%d", n), engRate, "fixes/sec")
	}
	return r, nil
}
