package testbed

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func TestNewDeterministic(t *testing.T) {
	a := New()
	b := New()
	if len(a.Clients) != 41 {
		t.Fatalf("clients = %d, want 41", len(a.Clients))
	}
	if len(a.Sites) != 6 {
		t.Fatalf("sites = %d, want 6", len(a.Sites))
	}
	for i := range a.Clients {
		if a.Clients[i] != b.Clients[i] {
			t.Fatal("testbed not deterministic")
		}
	}
	for _, c := range a.Clients {
		if !a.Plan.Contains(c) {
			t.Errorf("client %v outside the floor", c)
		}
	}
	for _, s := range a.Sites {
		if !a.Plan.Contains(s.Pos) {
			t.Errorf("site %v outside the floor", s.Pos)
		}
	}
}

func TestCombinations(t *testing.T) {
	cs := Combinations(6, 3)
	if len(cs) != 20 {
		t.Errorf("C(6,3) = %d, want 20", len(cs))
	}
	if len(Combinations(6, 6)) != 1 {
		t.Error("C(6,6) should be 1")
	}
	if Combinations(3, 5) != nil {
		t.Error("C(3,5) should be empty")
	}
	// Each combo strictly increasing and within range.
	for _, c := range cs {
		for i := range c {
			if c[i] < 0 || c[i] >= 6 || (i > 0 && c[i] <= c[i-1]) {
				t.Fatalf("bad combo %v", c)
			}
		}
	}
}

func TestSampleClients(t *testing.T) {
	all := New().Clients
	if got := sampleClients(all, 0); len(got) != len(all) {
		t.Error("max=0 should keep all")
	}
	got := sampleClients(all, 10)
	if len(got) != 10 {
		t.Fatalf("sampled %d", len(got))
	}
	// Spread: first and elements near the end both represented.
	if got[0] != all[0] || got[9] == all[9] {
		t.Error("sampling should stride across the population")
	}
}

func TestCaptureClientShapes(t *testing.T) {
	tb := New()
	rng := rand.New(rand.NewSource(1))
	opt := DefaultCaptureOptions()
	frames := tb.CaptureClient(tb.Clients[10], tb.Sites[0], opt, rng)
	if len(frames) != opt.Frames {
		t.Fatalf("frames = %d", len(frames))
	}
	for _, f := range frames {
		if len(f.Streams) != 9 { // 8 + ninth
			t.Fatalf("streams = %d", len(f.Streams))
		}
		if len(f.Streams[0]) != 640 {
			t.Fatalf("samples = %d", len(f.Streams[0]))
		}
	}
}

func TestEndToEndSingleClient(t *testing.T) {
	tb := New()
	rng := rand.New(rand.NewSource(3))
	opt := DefaultCaptureOptions()
	client := tb.Clients[20]
	aps := tb.APsFor([]int{0, 1, 2, 3, 4, 5}, opt)
	var captures [][]core.FrameCapture
	for _, site := range tb.Sites {
		captures = append(captures, tb.CaptureClient(client, site, opt, rng))
	}
	pos, specs, err := core.LocateClient(aps, captures, tb.Plan.Min, tb.Plan.Max, core.DefaultConfig(tb.Wavelength))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("spectra = %d", len(specs))
	}
	if d := pos.Dist(client); d > 1.5 {
		t.Errorf("6-AP location error %.2f m for a mid-floor client", d)
	}
}

func TestRunTable1Shape(t *testing.T) {
	tb := New()
	r, err := tb.RunTable1(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) != 4 {
		t.Fatalf("table rows = %d", len(r.Lines))
	}
	if !strings.Contains(r.Lines[0], "direct same; reflections changed") {
		t.Errorf("row 0 = %q", r.Lines[0])
	}
}

func TestRunFig7Shape(t *testing.T) {
	tb := New()
	r, err := tb.RunFig7(7)
	if err != nil {
		t.Fatal(err)
	}
	// Header plus NG=1..4.
	if len(r.Lines) != 5 {
		t.Fatalf("lines = %d", len(r.Lines))
	}
	if !strings.Contains(r.String(), "NG=2") {
		t.Error("missing NG=2 row")
	}
}

func TestRunAccuracySmall(t *testing.T) {
	tb := New()
	opt := DefaultAccuracyOptions()
	opt.MaxClients = 6
	opt.MaxCombos = 2
	opt.APCounts = []int{3}
	res, clients, err := tb.RunAccuracy(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(clients) != 6 {
		t.Fatalf("clients = %d", len(clients))
	}
	if got := len(res.ErrorsCM[3]); got != 12 {
		t.Fatalf("errors = %d, want 6 clients × 2 combos", got)
	}
	for _, e := range res.ErrorsCM[3] {
		if e < 0 || e > 5000 {
			t.Errorf("implausible error %v cm", e)
		}
	}
}

func TestRunHeightErrorMatchesClosedForm(t *testing.T) {
	tb := New()
	r, err := tb.RunHeightError()
	if err != nil {
		t.Fatal(err)
	}
	// Both rows must show closed-form and simulated agreeing (the
	// simulator implements exactly the Appendix A geometry).
	out := r.String()
	if !strings.Contains(out, "4.4%") || !strings.Contains(out, "1.1%") {
		t.Errorf("unexpected height error table:\n%s", out)
	}
}

func TestRunCollisionRecoversBoth(t *testing.T) {
	tb := New()
	r, err := tb.RunCollision(22)
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	if !strings.Contains(out, "after SIC") {
		t.Fatalf("missing SIC section:\n%s", out)
	}
}

func TestRunDetectionHighSNRPerfect(t *testing.T) {
	tb := New()
	r, err := tb.RunDetection(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The +10 dB row must show 100% detection.
	if !strings.Contains(r.Lines[1], "100%") {
		t.Errorf("high-SNR detection not perfect: %q", r.Lines[1])
	}
}

func TestReportString(t *testing.T) {
	r := &Report{ID: "x", Title: "y"}
	r.Addf("row %d", 1)
	out := r.String()
	if !strings.Contains(out, "== x: y ==") || !strings.Contains(out, "row 1") {
		t.Errorf("Report.String = %q", out)
	}
}

func TestSitesOrientBroadside(t *testing.T) {
	// Every site's array must face the floor: the centroid of clients
	// should be off-axis (not end-fire) for most sites.
	tb := New()
	var cx, cy float64
	for _, c := range tb.Clients {
		cx += c.X
		cy += c.Y
	}
	centroid := geom.Pt(cx/float64(len(tb.Clients)), cy/float64(len(tb.Clients)))
	for i, s := range tb.Sites {
		off := geom.AngleDiff(s.Pos.Bearing(centroid), s.Orient)
		if off < geom.Rad(20) || off > geom.Rad(160) {
			t.Errorf("site %d nearly end-fire to the floor centroid (%.0f°)", i, geom.Deg(off))
		}
	}
}
